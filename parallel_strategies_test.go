package sip

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/types"
)

// TestStrategiesParallelismDeterminism is the acceptance property of the
// radix-partitioned executor at the engine level: for every execution
// strategy, every partition fan-out produces exactly the result multiset of
// the single-partition Baseline, on a query exercising the partitioned
// join, aggregation (integer aggregates, so results are bit-exact across
// fold orders), and DISTINCT.
func TestStrategiesParallelismDeterminism(t *testing.T) {
	mk := func(name string, n, dom int, kcol, vcol string) *catalog.Table {
		sch := types.NewSchema(
			types.Column{Table: name, Name: kcol, Kind: types.KindInt},
			types.Column{Table: name, Name: vcol, Kind: types.KindInt},
		)
		rows := make([]types.Tuple, n)
		for i := range rows {
			rows[i] = types.Tuple{
				types.Int(int64((i * 7) % dom)),
				types.Int(int64(i % 23)),
			}
		}
		tbl := &catalog.Table{Name: name, Schema: sch, Rows: rows}
		tbl.SetDistinct(kcol, int64(dom))
		return tbl
	}
	// Inputs are sized so the optimizer's cardinality estimates survive the
	// executor's small-input partition clamp: the P sweep below must
	// actually run multi-partition joins, not degenerate to P=1.
	cat := catalog.New()
	cat.Add(mk("ta", 10000, 3000, "k", "v"))
	cat.Add(mk("tb", 9000, 3000, "k", "w"))
	eng := NewEngine(cat)

	queries := []string{
		`SELECT ta.k, v, w FROM ta, tb WHERE ta.k = tb.k`,
		`SELECT ta.k, count(*), sum(w), min(v), max(w) FROM ta, tb WHERE ta.k = tb.k GROUP BY ta.k`,
		`SELECT DISTINCT v FROM ta`,
	}
	render := func(rows []Row) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = r.String()
		}
		sort.Strings(out)
		return out
	}
	for qi, sql := range queries {
		res, err := eng.Query(context.Background(), sql, Options{Strategy: Baseline, Parallelism: 1})
		if err != nil {
			t.Fatalf("query %d baseline: %v", qi, err)
		}
		want := render(res.Rows)
		if len(want) == 0 {
			t.Fatalf("query %d baseline empty — test is vacuous", qi)
		}
		for _, s := range AllStrategies() {
			for _, p := range []int{1, 2, 4, 8} {
				res, err := eng.Query(context.Background(), sql, Options{Strategy: s, Parallelism: p})
				if err != nil {
					t.Fatalf("query %d %v P=%d: %v", qi, s, p, err)
				}
				got := render(res.Rows)
				label := fmt.Sprintf("query %d %v P=%d", qi, s, p)
				if len(got) != len(want) {
					t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: row %d = %s, want %s", label, i, got[i], want[i])
					}
				}
				if res.TuplesScanned != 10000+9000 && qi != 2 {
					t.Fatalf("%s: scanned %d tuples, want %d", label, res.TuplesScanned, 10000+9000)
				}
			}
		}
	}
}

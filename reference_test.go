package sip

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/types"
)

// TestRandomizedJoinAgainstReference is a differential test: random
// two-table equijoin + range-filter queries are evaluated both by the
// engine (under every strategy) and by a trivial nested-loop reference,
// and the multisets of results must match. This exercises the join's
// exactly-once concurrency discipline, filter pushdown, and AIP pruning on
// data with duplicates, empty keys, and skewed match counts.
func TestRandomizedJoinAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20080424)) // ICDE 2008 conference date
	for trial := 0; trial < 12; trial++ {
		na := 1 + rng.Intn(300)
		nb := 1 + rng.Intn(300)
		dom := 1 + rng.Intn(40)
		limit := int64(rng.Intn(100))

		mk := func(name string, n int, kcol, vcol string) *catalog.Table {
			sch := types.NewSchema(
				types.Column{Table: name, Name: kcol, Kind: types.KindInt},
				types.Column{Table: name, Name: vcol, Kind: types.KindInt},
			)
			rows := make([]types.Tuple, n)
			for i := range rows {
				rows[i] = types.Tuple{
					types.Int(int64(rng.Intn(dom))),
					types.Int(int64(rng.Intn(100))),
				}
			}
			tbl := &catalog.Table{Name: name, Schema: sch, Rows: rows}
			tbl.SetDistinct(kcol, int64(dom))
			return tbl
		}
		cat := catalog.New()
		ta := mk("ta", na, "k", "v")
		tb := mk("tb", nb, "k", "w")
		cat.Add(ta)
		cat.Add(tb)
		eng := NewEngine(cat)

		sql := fmt.Sprintf(
			`SELECT ta.k, v, w FROM ta, tb WHERE ta.k = tb.k AND v < %d`, limit)

		// Reference: nested loops.
		var want []string
		for _, ra := range ta.Rows {
			va, _ := ra[1].AsInt()
			if va >= limit {
				continue
			}
			for _, rb := range tb.Rows {
				if types.Equal(ra[0], rb[0]) {
					want = append(want, fmt.Sprintf("%v|%v|%v", ra[0], ra[1], rb[1]))
				}
			}
		}
		sort.Strings(want)

		for _, s := range AllStrategies() {
			res, err := eng.Query(context.Background(), sql, Options{Strategy: s})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, s, err)
			}
			got := make([]string, len(res.Rows))
			for i, r := range res.Rows {
				got[i] = fmt.Sprintf("%v|%v|%v", r[0], r[1], r[2])
			}
			sort.Strings(got)
			if len(got) != len(want) {
				t.Fatalf("trial %d (na=%d nb=%d dom=%d lim=%d) %v: %d rows, reference %d",
					trial, na, nb, dom, limit, s, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d %v row %d: %s vs %s", trial, s, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRandomizedAggregateAgainstReference cross-checks grouped SUM/COUNT
// over a random single table against a reference computed in the test.
func TestRandomizedAggregateAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(774)) // first page of the paper
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(500)
		dom := 1 + rng.Intn(20)
		sch := types.NewSchema(
			types.Column{Table: "t", Name: "g", Kind: types.KindInt},
			types.Column{Table: "t", Name: "v", Kind: types.KindInt},
		)
		rows := make([]types.Tuple, n)
		sums := map[int64]int64{}
		counts := map[int64]int64{}
		for i := range rows {
			g := int64(rng.Intn(dom))
			v := int64(rng.Intn(1000))
			rows[i] = types.Tuple{types.Int(g), types.Int(v)}
			sums[g] += v
			counts[g]++
		}
		cat := catalog.New()
		cat.Add(&catalog.Table{Name: "t", Schema: sch, Rows: rows})
		eng := NewEngine(cat)

		res, err := eng.Query(context.Background(), `SELECT g, sum(v), count(*) FROM t GROUP BY g`, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(sums) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(res.Rows), len(sums))
		}
		for _, r := range res.Rows {
			g, _ := r[0].AsInt()
			s, _ := r[1].AsInt()
			c, _ := r[2].AsInt()
			if s != sums[g] || c != counts[g] {
				t.Fatalf("trial %d group %d: sum=%d count=%d, want %d/%d",
					trial, g, s, c, sums[g], counts[g])
			}
		}
	}
}

// TestEmptyTables checks degenerate inputs end to end.
func TestEmptyTables(t *testing.T) {
	sch := types.NewSchema(
		types.Column{Table: "e", Name: "k", Kind: types.KindInt})
	cat := catalog.New()
	cat.Add(&catalog.Table{Name: "e", Schema: sch})
	cat.Add(&catalog.Table{Name: "f", Schema: types.NewSchema(
		types.Column{Table: "f", Name: "k", Kind: types.KindInt}),
		Rows: []types.Tuple{{types.Int(1)}}})
	eng := NewEngine(cat)
	for _, s := range AllStrategies() {
		res, err := eng.Query(context.Background(), `SELECT e.k FROM e, f WHERE e.k = f.k`, Options{Strategy: s})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(res.Rows) != 0 {
			t.Fatalf("%v: join with empty table produced rows", s)
		}
		agg, err := eng.Query(context.Background(), `SELECT count(*), sum(k) FROM e`, Options{Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		if c, _ := agg.Rows[0][0].AsInt(); c != 0 {
			t.Fatalf("count over empty = %v", agg.Rows[0][0])
		}
		if !agg.Rows[0][1].IsNull() {
			t.Fatalf("sum over empty must be NULL, got %v", agg.Rows[0][1])
		}
	}
}

package sip

import (
	"strconv"

	"repro/internal/sqlparser"
	"repro/internal/types"
)

// adhocPlan resolves the plan template for an ad-hoc (non-prepared) query,
// parameterizing constant literals so that queries differing only in
// constants share one cached template: the SQL is normalized at the token
// level (sqlparser.Normalize lifts literals to `?` placeholders), the
// normalized text keys the plan cache, and the lifted literals come back as
// execution arguments bound exactly like prepared-statement arguments. This
// is what keeps the serving tier's ad-hoc path cheap — a wire client that
// never prepares still pays parse/bind/optimize only once per query shape.
//
// Queries that cannot parameterize — caching disabled, user placeholders
// present, no literals, or a construct where a literal is legal but a
// parameter is not — fall back to the literal plan path unchanged.
func (e *Engine) adhocPlan(sql string, opts Options) (*enginePlan, []Value, error) {
	// The nil-Topology remote case never caches (see plan); parameterizing
	// it would buy nothing.
	if e.cache == nil || (len(opts.RemoteTables) > 0 && opts.Topology == nil) {
		p, err := e.plan(sql, opts)
		return p, nil, err
	}
	norm, lits, ok := sqlparser.Normalize(sql)
	if !ok {
		p, err := e.plan(sql, opts)
		return p, nil, err
	}
	args, err := litValues(lits)
	if err != nil {
		// A literal the binder would also reject (e.g. an out-of-range
		// integer): let the literal path produce its own error message.
		p, perr := e.plan(sql, opts)
		return p, nil, perr
	}
	key := planKey(norm, opts, e.cat.Version())
	if p, ok := e.cache.get(key); ok && p.numParams == len(args) {
		return p, args, nil
	}
	p, err := e.buildPlan(norm, opts)
	if err != nil || p.numParams != len(args) {
		// Either the statement is genuinely invalid — rebuild from the
		// original text so the error points at the user's own source — or
		// a parameter was rejected where the literal was fine; the literal
		// plan still caches under its exact text.
		p2, perr := e.plan(sql, opts)
		return p2, nil, perr
	}
	e.cache.put(key, p)
	return p, args, nil
}

// litValues converts the normalizer's lifted literals to typed values, the
// way the binder lowers the same literal tokens (strconv.ParseInt /
// ParseFloat; strings stay strings and coerce to dates at bind when the
// inferred parameter kind asks for one).
func litValues(lits []sqlparser.Lit) ([]Value, error) {
	args := make([]Value, len(lits))
	for i, l := range lits {
		switch l.Kind {
		case sqlparser.LitInt:
			n, err := strconv.ParseInt(l.Text, 10, 64)
			if err != nil {
				return nil, err
			}
			args[i] = types.Int(n)
		case sqlparser.LitFloat:
			f, err := strconv.ParseFloat(l.Text, 64)
			if err != nil {
				return nil, err
			}
			args[i] = types.Float(f)
		default:
			args[i] = types.Str(l.Text)
		}
	}
	return args, nil
}

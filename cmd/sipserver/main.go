// Command sipserver serves the engine over the wire protocol: one embedded
// engine, many client sessions, streamed results, per-tenant admission
// quotas, and an HTTP metrics endpoint.
//
// Usage:
//
//	sipserver -addr :7878 -metrics-addr :7879
//	sipserver -sf 0.05 -max-queries 16 -engine-mem-budget 268435456
//	sipserver -tenant-quota 4 -quota batch=1,etl=2
//	sipserver -slow-query 250ms -plan-cache 256
//
// Clients connect with `sipquery -connect host:port` or the server.Client
// API. SIGINT drains: the listener closes, in-flight result streams finish,
// and only after -drain-timeout are remaining queries force-canceled.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	sip "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7878", "wire-protocol listen address")
		metricsAddr = flag.String("metrics-addr", "", "HTTP /metrics and /stats listen address (empty = disabled)")

		sf       = flag.Float64("sf", 0.01, "TPC-H scale factor")
		skew     = flag.Bool("skew", false, "use the Zipf z=0.5 skewed data set")
		strategy = flag.String("strategy", "Cost-based", "base strategy for all sessions: Baseline | Magic | Feed-forward | Cost-based")

		maxQueries = flag.Int("max-queries", 0, "engine-wide cap on concurrently executing queries (0 = unlimited)")
		engineMem  = flag.Int64("engine-mem-budget", 0, "engine-wide memory pool in bytes, granted per query at admission (0 = ungoverned)")
		planCache  = flag.Int("plan-cache", 0, "plan cache size in entries (0 = default, negative disables)")
		slowQuery  = flag.Duration("slow-query", 0, "log queries at or above this wall time to the /stats slow-query log (0 = off)")

		tenantQuota = flag.String("quota", "", "per-tenant concurrent-query caps, e.g. batch=1,etl=2")
		defQuota    = flag.Int("tenant-quota", 0, "default per-tenant concurrent-query cap (0 = unlimited)")

		batchRows    = flag.Int("batch-rows", 0, "max rows per row-batch frame (0 = default 256)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight queries before force-canceling them")
	)
	flag.Parse()

	var strat sip.Strategy
	switch *strategy {
	case "Baseline":
		strat = sip.Baseline
	case "Magic":
		strat = sip.Magic
	case "Feed-forward":
		strat = sip.FeedForward
	case "Cost-based":
		strat = sip.CostBased
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	quotas := map[string]int{}
	if *tenantQuota != "" {
		for _, pair := range strings.Split(*tenantQuota, ",") {
			name, limit, ok := strings.Cut(strings.TrimSpace(pair), "=")
			var n int
			if ok {
				var err error
				n, err = strconv.Atoi(limit)
				ok = err == nil && n > 0
			}
			if !ok {
				fatal(fmt.Errorf("bad -quota entry %q (want tenant=limit)", pair))
			}
			quotas[name] = n
		}
	}

	cfg := sip.DataConfig{ScaleFactor: *sf}
	if *skew {
		cfg.Skew = true
		cfg.Z = 0.5
	}
	log.Printf("sipserver: generating TPC-H data at sf=%g", *sf)
	eng := sip.NewEngineWithConfig(sip.GenerateTPCH(cfg), sip.EngineConfig{
		PlanCacheSize:        *planCache,
		MaxConcurrentQueries: *maxQueries,
		MemBudget:            *engineMem,
		PooledStats:          true,
		SlowQueryThreshold:   *slowQuery,
	})

	srv, err := server.New(server.Config{
		Engine:      eng,
		BaseOptions: sip.Options{Strategy: strat},
		TenantQuota: *defQuota,
		Quotas:      quotas,
		BatchRows:   *batchRows,
		Logf:        log.Printf,
	})
	if err != nil {
		fatal(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	log.Printf("sipserver: serving on %s", l.Addr())

	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(err)
		}
		log.Printf("sipserver: metrics on http://%s/metrics", ml.Addr())
		go func() {
			if err := http.Serve(ml, srv.MetricsHandler()); err != nil {
				log.Printf("sipserver: metrics server stopped: %v", err)
			}
		}()
	}

	// SIGINT starts a drain; a second SIGINT (or -drain-timeout) forces it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	go func() {
		<-ctx.Done()
		stop() // restore default handling: a second ^C kills the process
		log.Printf("sipserver: draining (in-flight queries finish, %v limit)", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			log.Printf("sipserver: forced shutdown: %v", err)
		}
	}()

	if err := srv.Serve(l); err != nil {
		fatal(err)
	}
	log.Printf("sipserver: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sipserver:", err)
	os.Exit(1)
}

// Command sipgen inspects the built-in TPC-H data generator: table
// cardinalities, sizes, sample rows, and skew diagnostics. Useful when
// calibrating experiments.
//
// Usage:
//
//	sipgen -sf 0.05
//	sipgen -sf 0.05 -skew -table lineitem -sample 5
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	sip "repro"
)

func main() {
	var (
		sf     = flag.Float64("sf", 0.01, "scale factor")
		skew   = flag.Bool("skew", false, "Zipf z=0.5 skewed variant")
		table  = flag.String("table", "", "show details for one table")
		sample = flag.Int("sample", 0, "print N sample rows of -table")
	)
	flag.Parse()

	cfg := sip.DataConfig{ScaleFactor: *sf}
	if *skew {
		cfg.Skew = true
		cfg.Z = 0.5
	}
	cat := sip.GenerateTPCH(cfg)

	if *table == "" {
		fmt.Printf("%-10s %12s %14s\n", "table", "rows", "bytes")
		var total int64
		for _, name := range cat.Names() {
			t, _ := cat.Table(name)
			fmt.Printf("%-10s %12d %14d\n", name, t.NumRows(), t.MemBytes())
			total += t.MemBytes()
		}
		fmt.Printf("%-10s %12s %14d\n", "total", "", total)
		return
	}

	t, err := cat.Table(*table)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sipgen:", err)
		os.Exit(1)
	}
	fmt.Printf("table %s: %d rows, %d bytes\n", t.Name, t.NumRows(), t.MemBytes())
	fmt.Printf("primary key: %v\n", t.PrimaryKey)
	for _, fk := range t.ForeignKeys {
		fmt.Printf("foreign key: %v -> %s%v\n", fk.Cols, fk.RefTable, fk.RefCols)
	}
	fmt.Println("columns:")
	for _, c := range t.Schema.Cols {
		fmt.Printf("  %-20s %-10s distinct≈%d\n", c.Name, c.Kind, t.Distinct(c.Name))
	}
	if *sample > 0 {
		fmt.Println("sample rows:")
		for i := 0; i < *sample && i < len(t.Rows); i++ {
			fmt.Println(" ", t.Rows[i])
		}
	}
	// Skew diagnostic: top-5 most frequent values of the first FK column.
	if len(t.ForeignKeys) > 0 {
		col := t.ForeignKeys[0].Cols[0]
		idx := t.ColumnIndex(col)
		counts := map[string]int{}
		for _, r := range t.Rows {
			counts[r[idx].String()]++
		}
		type kv struct {
			k string
			n int
		}
		var all []kv
		for k, n := range counts {
			all = append(all, kv{k, n})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
		fmt.Printf("hottest %s values:\n", col)
		for i := 0; i < 5 && i < len(all); i++ {
			fmt.Printf("  %s: %d rows\n", all[i].k, all[i].n)
		}
	}
}

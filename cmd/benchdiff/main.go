// Command benchdiff compares the last two entries of the BENCH_joins.json
// trajectory and fails (exit 1) when any strategy's throughput regressed by
// more than the tolerance against the previous entry. It is the CI gate
// behind `make benchdiff`: because sipbench -joinbench appends an entry per
// PR instead of overwriting, the diff is always PR-over-PR.
//
// Usage:
//
//	benchdiff [-tolerance 0.10] [BENCH_joins.json]
//
// Both recorded rates are checked per strategy: input_tuples_per_sec (the
// plan-shape-independent volume) and operator_tuples_per_sec; for the
// strategy and parallel-scaling cells the tolerance widens to the larger of
// the two entries' recorded per-cell rep spreads (capped at 50%), so
// co-tenant load on a shared runner — measured directly by the reps'
// scatter — cannot flag a phantom regression. The
// expression microbench section (sipbench -exprbench) is gated the same
// way: scalar and vectorized tuples/s per shape; so is the scheduler
// section (sipbench -schedbench), which additionally carries an intra-entry
// gate — morsel within tolerance of chan at P=1 — and the spill section
// (sipbench -spillbench), whose intra-entry gates require the quarter-cap
// run to have actually spilled and to finish within 5× of the unbounded
// wall time, and the wire-serving section (sipbench -serverbench), whose
// intra-entry floor requires prepared execution over the wire to beat
// cache-disabled ad-hoc by ≥1.25× at 64 sessions. Entries with fewer than
// two data points pass trivially, as do strategy names present in only one
// entry. Entries recorded on different machines (the machine string
// includes core count and CPU model) are printed for reference but do not
// gate: throughput across different silicon is not a regression signal.
// Intra-entry gates, which compare cells measured in the same run, always
// apply.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

type strategyCell struct {
	Strategy             string  `json:"strategy"`
	InputTuplesPerSec    float64 `json:"input_tuples_per_sec"`
	OperatorTuplesPerSec float64 `json:"operator_tuples_per_sec"`
	RepSpread            float64 `json:"rep_spread"`
}

type scalingCell struct {
	Parallelism       int     `json:"parallelism"`
	InputTuplesPerSec float64 `json:"input_tuples_per_sec"`
	RepSpread         float64 `json:"rep_spread"`
}

type exprCell struct {
	Name               string  `json:"name"`
	ScalarTuplesPerSec float64 `json:"scalar_tuples_per_sec"`
	VectorTuplesPerSec float64 `json:"vector_tuples_per_sec"`
}

type stmtCell struct {
	Name        string  `json:"name"`
	AdhocQPS    float64 `json:"adhoc_queries_per_sec"`
	CachedQPS   float64 `json:"cached_queries_per_sec"`
	PreparedQPS float64 `json:"prepared_queries_per_sec"`
}

type schedCell struct {
	Scheduler         string  `json:"scheduler"`
	Parallelism       int     `json:"parallelism"`
	InputTuplesPerSec float64 `json:"input_tuples_per_sec"`
}

type filterCell struct {
	Name              string  `json:"name"`
	BuildTuplesPerSec float64 `json:"build_tuples_per_sec"`
	MergeTuplesPerSec float64 `json:"merge_tuples_per_sec"`
	ProbeTuplesPerSec float64 `json:"probe_tuples_per_sec"`
	WorkingSetBytesP8 int64   `json:"working_set_bytes_p8"`
}

type spillCell struct {
	Cap                string  `json:"cap"`
	BudgetBytes        int64   `json:"budget_bytes"`
	InputTuplesPerSec  float64 `json:"input_tuples_per_sec"`
	SpillEvents        int64   `json:"spill_events"`
	Rows               int     `json:"rows"`
	SlowdownVsUncapped float64 `json:"slowdown_vs_uncapped"`
}

type serverCell struct {
	Sessions        int     `json:"sessions"`
	AdhocQPS        float64 `json:"adhoc_queries_per_sec"`
	CachedQPS       float64 `json:"cached_queries_per_sec"`
	PreparedQPS     float64 `json:"prepared_queries_per_sec"`
	SpeedupPrepared float64 `json:"speedup_prepared_vs_adhoc"`
	RepSpread       float64 `json:"rep_spread"`
}

type entry struct {
	Generated       string         `json:"generated"`
	Machine         string         `json:"machine"`
	Strategies      []strategyCell `json:"strategies"`
	ParallelScaling []scalingCell  `json:"parallel_scaling"`
	ExprMicrobench  []exprCell     `json:"expr_microbench"`
	StmtMicrobench  []stmtCell     `json:"stmt_microbench"`
	SchedBench      []schedCell    `json:"sched_bench"`
	FilterBench     []filterCell   `json:"filter_bench"`
	SpillBench      []spillCell    `json:"spill_bench"`
	ServerBench     []serverCell   `json:"server_bench"`
}

type trajectory struct {
	Entries []entry `json:"entries"`
}

func main() {
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional throughput drop vs the previous entry")
	flag.Parse()
	path := "BENCH_joins.json"
	if flag.NArg() > 0 {
		path = flag.Arg(0)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var tr trajectory
	if err := json.Unmarshal(data, &tr); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if len(tr.Entries) < 2 {
		fmt.Printf("benchdiff: %s has %d entries, nothing to compare\n", path, len(tr.Entries))
		return
	}
	prev, cur := tr.Entries[len(tr.Entries)-2], tr.Entries[len(tr.Entries)-1]
	// Throughput on different silicon is not comparable: when the machine
	// string changes between entries the PR-over-PR diffs are printed for
	// reference but do not gate (the intra-entry scheduler floor still
	// does). The string includes the CPU model where available, so
	// same-image runs on a new host are caught, not just core-count changes.
	sameMachine := prev.Machine == "" || cur.Machine == "" || prev.Machine == cur.Machine
	if !sameMachine {
		fmt.Printf("benchdiff: note: machines differ (%q vs %q); cross-entry throughput shown for reference only\n",
			prev.Machine, cur.Machine)
	}

	prevBy := map[string]strategyCell{}
	for _, c := range prev.Strategies {
		prevBy[c.Strategy] = c
	}

	failed := false
	// gated compares against the previous entry (suspended across machine
	// changes); intra flags regressions within the current entry alone and
	// always gates.
	diff := func(gating bool, tol float64, strategy, metric string, old, new float64) {
		if old <= 0 || new <= 0 {
			return // metric absent in one of the entries (pre-split layout)
		}
		change := new/old - 1
		status := "ok"
		if change < -tol {
			if gating {
				status = "REGRESSION"
				failed = true
			} else {
				status = "machine-changed"
			}
		}
		fmt.Printf("%-14s %-24s %14.0f -> %14.0f  %+6.1f%%  %s\n",
			strategy, metric, old, new, change*100, status)
	}
	check := func(strategy, metric string, old, new float64) {
		diff(sameMachine, *tolerance, strategy, metric, old, new)
	}
	// noisy gates like check but widens the tolerance to the larger of the
	// two entries' recorded rep spreads (capped at 50%): the same machine
	// string under heavy co-tenant load measures tens of percent below its
	// quiet-hour self, and the spread — recorded per cell at measurement
	// time — is direct evidence of that noise. A real regression still
	// fails: it shifts the median beyond what the reps' own scatter covers.
	noisy := func(spread float64, strategy, metric string, old, new float64) {
		tol := *tolerance
		if spread > tol {
			tol = math.Min(spread, 0.5)
		}
		diff(sameMachine, tol, strategy, metric, old, new)
	}
	intra := func(strategy, metric string, old, new float64) {
		diff(true, *tolerance, strategy, metric, old, new)
	}
	for _, c := range cur.Strategies {
		p, ok := prevBy[c.Strategy]
		if !ok {
			continue
		}
		spread := math.Max(p.RepSpread, c.RepSpread)
		noisy(spread, c.Strategy, "input_tuples_per_sec", p.InputTuplesPerSec, c.InputTuplesPerSec)
		noisy(spread, c.Strategy, "operator_tuples_per_sec", p.OperatorTuplesPerSec, c.OperatorTuplesPerSec)
	}
	// The P-scaling curve is machine-bound (it measures cross-core
	// speedup), so diff it only between entries from the same machine.
	if prev.Machine == cur.Machine {
		prevScale := map[int]scalingCell{}
		for _, c := range prev.ParallelScaling {
			prevScale[c.Parallelism] = c
		}
		for _, c := range cur.ParallelScaling {
			if p, ok := prevScale[c.Parallelism]; ok {
				noisy(math.Max(p.RepSpread, c.RepSpread),
					fmt.Sprintf("join P=%d", c.Parallelism), "input_tuples_per_sec",
					p.InputTuplesPerSec, c.InputTuplesPerSec)
			}
		}
	} else if len(cur.ParallelScaling) > 0 {
		fmt.Println("benchdiff: note: parallel_scaling not compared across different machines")
	}
	// Expression microbench: gate both evaluation paths per shape at the
	// same tolerance. Cells absent from either entry pass trivially (the
	// section first appears with the vectorized-eval PR).
	prevExpr := map[string]exprCell{}
	for _, c := range prev.ExprMicrobench {
		prevExpr[c.Name] = c
	}
	for _, c := range cur.ExprMicrobench {
		if p, ok := prevExpr[c.Name]; ok {
			check("expr:"+c.Name, "scalar_tuples_per_sec", p.ScalarTuplesPerSec, c.ScalarTuplesPerSec)
			check("expr:"+c.Name, "vector_tuples_per_sec", p.VectorTuplesPerSec, c.VectorTuplesPerSec)
		}
	}
	// Prepared-statement microbench (sipbench -stmtbench): gate all three
	// execution paths per shape; cells absent from either entry pass
	// trivially (the section first appears with the streaming-API PR).
	prevStmt := map[string]stmtCell{}
	for _, c := range prev.StmtMicrobench {
		prevStmt[c.Name] = c
	}
	for _, c := range cur.StmtMicrobench {
		if p, ok := prevStmt[c.Name]; ok {
			check("stmt:"+c.Name, "adhoc_queries_per_sec", p.AdhocQPS, c.AdhocQPS)
			check("stmt:"+c.Name, "cached_queries_per_sec", p.CachedQPS, c.CachedQPS)
			check("stmt:"+c.Name, "prepared_queries_per_sec", p.PreparedQPS, c.PreparedQPS)
		}
	}
	// Scheduler benchmark (sipbench -schedbench). Two gates: per
	// (scheduler, P) cell against the previous entry — same-machine only,
	// like parallel_scaling, since the curve is core-bound — and an
	// intra-entry floor that holds even on the section's first appearance:
	// the morsel pool at P=1 must stay within tolerance of the chan
	// pipeline at P=1, so the work-stealing path never ships with a
	// single-core overhead regression hidden behind its scaling wins.
	if prev.Machine == cur.Machine {
		prevSched := map[string]schedCell{}
		for _, c := range prev.SchedBench {
			prevSched[fmt.Sprintf("%s/%d", c.Scheduler, c.Parallelism)] = c
		}
		for _, c := range cur.SchedBench {
			if p, ok := prevSched[fmt.Sprintf("%s/%d", c.Scheduler, c.Parallelism)]; ok {
				check(fmt.Sprintf("sched %s P=%d", c.Scheduler, c.Parallelism),
					"input_tuples_per_sec", p.InputTuplesPerSec, c.InputTuplesPerSec)
			}
		}
	} else if len(cur.SchedBench) > 0 {
		fmt.Println("benchdiff: note: sched_bench not compared across different machines")
	}
	var chanP1, morselP1 float64
	for _, c := range cur.SchedBench {
		if c.Parallelism != 1 {
			continue
		}
		switch c.Scheduler {
		case "chan":
			chanP1 = c.InputTuplesPerSec
		case "morsel":
			morselP1 = c.InputTuplesPerSec
		}
	}
	if chanP1 > 0 && morselP1 > 0 {
		intra("sched morsel-vs-chan", "P=1 input_tuples_per_sec", chanP1, morselP1)
	}
	// Filter benchmark (sipbench -filterbench). Cross-entry: the three
	// kernel rates per variant, same-machine only. Intra-entry, always
	// gating: the blocked-batch probe site must never fall below the live
	// flat-scalar site, must stay at least 1.5× above the frozen pre-PR
	// probe site (probe-site-pr6 — the recorded entries show ~2-2.5×; the
	// floor leaves noise margin so a noisy shared runner cannot spuriously
	// block an unrelated PR), and its P=8 working set must stay at or below
	// 1/4 of the flat full-geometry copies — enforced even on the section's
	// first appearance. The flat-scalar floor is 1×, not higher: the same
	// shared-encode fast path that feeds the batch kernel also feeds the
	// scalar site, so their gap measures batching alone.
	if prev.Machine == cur.Machine {
		prevFilter := map[string]filterCell{}
		for _, c := range prev.FilterBench {
			prevFilter[c.Name] = c
		}
		for _, c := range cur.FilterBench {
			if p, ok := prevFilter[c.Name]; ok {
				check("filter:"+c.Name, "build_tuples_per_sec", p.BuildTuplesPerSec, c.BuildTuplesPerSec)
				check("filter:"+c.Name, "probe_tuples_per_sec", p.ProbeTuplesPerSec, c.ProbeTuplesPerSec)
				check("filter:"+c.Name, "merge_tuples_per_sec", p.MergeTuplesPerSec, c.MergeTuplesPerSec)
			}
		}
	} else if len(cur.FilterBench) > 0 {
		fmt.Println("benchdiff: note: filter_bench not compared across different machines")
	}
	var flatF, blockedF, pr6F filterCell
	for _, c := range cur.FilterBench {
		switch c.Name {
		case "flat-scalar":
			flatF = c
		case "blocked-batch":
			blockedF = c
		case "probe-site-pr6":
			pr6F = c
		}
	}
	if flatF.ProbeTuplesPerSec > 0 && blockedF.ProbeTuplesPerSec > 0 {
		ratio := blockedF.ProbeTuplesPerSec / flatF.ProbeTuplesPerSec
		status := "ok"
		if ratio < 1 {
			status = "FLOOR VIOLATED"
			failed = true
		}
		fmt.Printf("%-14s %-24s %14.0f vs %11.0f  %5.2fx  %s\n",
			"filter intra", "blocked>=flat probe", flatF.ProbeTuplesPerSec,
			blockedF.ProbeTuplesPerSec, ratio, status)
	}
	if pr6F.ProbeTuplesPerSec > 0 && blockedF.ProbeTuplesPerSec > 0 {
		ratio := blockedF.ProbeTuplesPerSec / pr6F.ProbeTuplesPerSec
		status := "ok"
		if ratio < 1.5 {
			status = "FLOOR VIOLATED"
			failed = true
		}
		fmt.Printf("%-14s %-24s %14.0f vs %11.0f  %5.2fx  %s\n",
			"filter intra", "batch>=1.5x pr6 site", pr6F.ProbeTuplesPerSec,
			blockedF.ProbeTuplesPerSec, ratio, status)
	}
	if flatF.WorkingSetBytesP8 > 0 && blockedF.WorkingSetBytesP8 > 0 {
		ratio := float64(flatF.WorkingSetBytesP8) / float64(blockedF.WorkingSetBytesP8)
		status := "ok"
		if ratio < 4 {
			status = "FLOOR VIOLATED"
			failed = true
		}
		fmt.Printf("%-14s %-24s %14d vs %11d  %5.2fx  %s\n",
			"filter intra", "ws@P=8 <= flat/4 bytes", flatF.WorkingSetBytesP8,
			blockedF.WorkingSetBytesP8, ratio, status)
	}
	// Spill benchmark (sipbench -spillbench). Cross-entry: capped throughput
	// per cap name, same-machine only. Intra-entry, always gating: the
	// quarter-cap run must have actually evicted buckets (a spill section
	// whose capped run never spilled measures nothing) and must complete
	// within 5× of the unbounded wall time — out-of-core degradation has to
	// stay graceful, not cliff into thrashing.
	if prev.Machine == cur.Machine {
		prevSpill := map[string]spillCell{}
		for _, c := range prev.SpillBench {
			prevSpill[c.Cap] = c
		}
		for _, c := range cur.SpillBench {
			if p, ok := prevSpill[c.Cap]; ok {
				check("spill:"+c.Cap, "input_tuples_per_sec", p.InputTuplesPerSec, c.InputTuplesPerSec)
			}
		}
	} else if len(cur.SpillBench) > 0 {
		fmt.Println("benchdiff: note: spill_bench not compared across different machines")
	}
	var quarterSpill spillCell
	for _, c := range cur.SpillBench {
		if c.Cap == "quarter" {
			quarterSpill = c
		}
	}
	if quarterSpill.Cap != "" {
		status := "ok"
		if quarterSpill.SpillEvents == 0 {
			status = "FLOOR VIOLATED"
			failed = true
		}
		fmt.Printf("%-14s %-24s %14d evictions %24s  %s\n",
			"spill intra", "quarter cap spilled", quarterSpill.SpillEvents, "", status)
		status = "ok"
		if quarterSpill.SlowdownVsUncapped > 5 {
			status = "FLOOR VIOLATED"
			failed = true
		}
		fmt.Printf("%-14s %-24s %14.2fx slowdown %23s  %s\n",
			"spill intra", "quarter cap <= 5x wall", quarterSpill.SlowdownVsUncapped, "", status)
	}
	// Server benchmark (sipbench -serverbench). Cross-entry: the three wire
	// paths' q/s per session level, same-machine only (the wire round trip is
	// syscall- and core-bound) and spread-widened — the end-to-end TCP path
	// on a single shared core is the noisiest section in the file. Intra-entry,
	// always gating: prepared execution must beat cache-disabled ad-hoc by at
	// least 1.25x at 64 sessions. The floor is deliberately below the
	// in-process stmt microbench's 3x+: over TCP the ratio is
	// (plan+exec+wire)/(exec+wire), and on a single-core container the
	// four-syscall round trip (~15us) outweighs the planning tax (~12us),
	// capping honest runs at 1.5-1.9x. 1.25x leaves noise margin below the
	// observed minimum while still failing any change that breaks statement
	// reuse over the wire.
	if prev.Machine == cur.Machine {
		prevServer := map[int]serverCell{}
		for _, c := range prev.ServerBench {
			prevServer[c.Sessions] = c
		}
		for _, c := range cur.ServerBench {
			if p, ok := prevServer[c.Sessions]; ok {
				spread := math.Max(p.RepSpread, c.RepSpread)
				name := fmt.Sprintf("server S=%d", c.Sessions)
				noisy(spread, name, "adhoc_queries_per_sec", p.AdhocQPS, c.AdhocQPS)
				noisy(spread, name, "cached_queries_per_sec", p.CachedQPS, c.CachedQPS)
				noisy(spread, name, "prepared_queries_per_sec", p.PreparedQPS, c.PreparedQPS)
			}
		}
	} else if len(cur.ServerBench) > 0 {
		fmt.Println("benchdiff: note: server_bench not compared across different machines")
	}
	for _, c := range cur.ServerBench {
		if c.Sessions != 64 || c.AdhocQPS <= 0 || c.PreparedQPS <= 0 {
			continue
		}
		ratio := c.PreparedQPS / c.AdhocQPS
		status := "ok"
		if ratio < 1.25 {
			status = "FLOOR VIOLATED"
			failed = true
		}
		fmt.Printf("%-14s %-24s %14.0f vs %11.0f  %5.2fx  %s\n",
			"server intra", "prepared>=1.25x adhoc", c.AdhocQPS, c.PreparedQPS, ratio, status)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: throughput regressed more than %.0f%% vs entry %s\n",
			*tolerance*100, prev.Generated)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: entry %s vs %s within %.0f%% tolerance\n", cur.Generated, prev.Generated, *tolerance*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}

// Command sipquery runs ad-hoc SQL over generated TPC-H data under any of
// the four execution strategies.
//
// Usage:
//
//	sipquery -sql "SELECT n_name, count(*) FROM supplier, nation
//	               WHERE s_nationkey = n_nationkey GROUP BY n_name"
//	sipquery -strategy Cost-based -sf 0.05 -sql "..."
//	sipquery -explain -sql "..."
//	echo "SELECT ..." | sipquery
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	sip "repro"
)

func main() {
	var (
		sqlText  = flag.String("sql", "", "query text (default: read stdin)")
		sf       = flag.Float64("sf", 0.01, "TPC-H scale factor")
		skew     = flag.Bool("skew", false, "use the Zipf z=0.5 skewed data set")
		strategy = flag.String("strategy", "Baseline", "Baseline | Magic | Feed-forward | Cost-based")
		explain  = flag.Bool("explain", false, "print the bound block structure instead of executing")
		limit    = flag.Int("limit", 20, "max rows to print (0 = all)")
		delayed  = flag.String("delay", "", "comma-separated tables to delay per the paper's §VI-B model")
		stats    = flag.Bool("stats", false, "print per-operator statistics")
	)
	flag.Parse()

	text := *sqlText
	if text == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		text = string(data)
	}
	if strings.TrimSpace(text) == "" {
		fatal(fmt.Errorf("no query: pass -sql or pipe SQL on stdin"))
	}

	cfg := sip.DataConfig{ScaleFactor: *sf}
	if *skew {
		cfg.Skew = true
		cfg.Z = 0.5
	}
	eng := sip.NewEngine(sip.GenerateTPCH(cfg))

	if *explain {
		out, err := eng.Explain(text)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	var strat sip.Strategy
	switch *strategy {
	case "Baseline":
		strat = sip.Baseline
	case "Magic":
		strat = sip.Magic
	case "Feed-forward":
		strat = sip.FeedForward
	case "Cost-based":
		strat = sip.CostBased
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	opts := sip.Options{Strategy: strat}
	if *delayed != "" {
		opts.DelayedTables = strings.Split(*delayed, ",")
	}

	start := time.Now()
	res, err := eng.Query(text, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Print(sip.FormatRows(res.Schema, res.Rows, *limit))
	fmt.Printf("\n%d row(s) in %v; state peak %.2f MB; %d filter(s), %d tuple(s) pruned\n",
		len(res.Rows), time.Since(start).Round(time.Millisecond),
		float64(res.PeakStateBytes)/(1<<20), res.FiltersCreated, res.TuplesPruned)
	if *stats {
		fmt.Println()
		fmt.Print(res.Stats.Report())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sipquery:", err)
	os.Exit(1)
}

// Command sipquery runs ad-hoc SQL over generated TPC-H data under any of
// the four execution strategies. Results stream incrementally through the
// engine's Rows cursor, and Ctrl-C cancels the running query cleanly (the
// partial output is followed by a "cancelled" notice).
//
// Usage:
//
//	sipquery -sql "SELECT n_name, count(*) FROM supplier, nation
//	               WHERE s_nationkey = n_nationkey GROUP BY n_name"
//	sipquery -strategy Cost-based -sf 0.05 -sql "..."
//	sipquery -explain -sql "..."
//	sipquery -timeout 5s -sql "..."
//	echo "SELECT ..." | sipquery
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	sip "repro"
)

func main() {
	var (
		sqlText  = flag.String("sql", "", "query text (default: read stdin)")
		sf       = flag.Float64("sf", 0.01, "TPC-H scale factor")
		skew     = flag.Bool("skew", false, "use the Zipf z=0.5 skewed data set")
		strategy = flag.String("strategy", "Baseline", "Baseline | Magic | Feed-forward | Cost-based")
		explain  = flag.Bool("explain", false, "print the bound block structure instead of executing")
		limit    = flag.Int("limit", 20, "max rows to print (0 = all)")
		delayed  = flag.String("delay", "", "comma-separated tables to delay per the paper's §VI-B model")
		stats    = flag.Bool("stats", false, "print per-operator statistics")
		timeout  = flag.Duration("timeout", 0, "cancel the query after this long (0 = no deadline)")
	)
	flag.Parse()

	// Ctrl-C cancels the in-flight query via the engine's context plumbing:
	// every operator goroutine drains promptly and the cursor reports
	// context.Canceled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	text := *sqlText
	if text == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		text = string(data)
	}
	if strings.TrimSpace(text) == "" {
		fatal(fmt.Errorf("no query: pass -sql or pipe SQL on stdin"))
	}

	cfg := sip.DataConfig{ScaleFactor: *sf}
	if *skew {
		cfg.Skew = true
		cfg.Z = 0.5
	}
	eng := sip.NewEngine(sip.GenerateTPCH(cfg))

	if *explain {
		out, err := eng.Explain(text)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	var strat sip.Strategy
	switch *strategy {
	case "Baseline":
		strat = sip.Baseline
	case "Magic":
		strat = sip.Magic
	case "Feed-forward":
		strat = sip.FeedForward
	case "Cost-based":
		strat = sip.CostBased
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	opts := sip.Options{Strategy: strat}
	if *delayed != "" {
		opts.DelayedTables = strings.Split(*delayed, ",")
	}

	start := time.Now()
	rows, err := eng.QueryStream(ctx, text, opts)
	if err != nil {
		fatal(err)
	}
	defer rows.Close()

	// Print the header, then rows as they arrive — no buffering of the
	// full result.
	var sb strings.Builder
	for i, c := range rows.Schema().Cols {
		if i > 0 {
			sb.WriteString("\t")
		}
		sb.WriteString(c.Name)
	}
	fmt.Println(sb.String())
	n := 0
	for rows.Next() {
		n++
		if *limit > 0 && n > *limit {
			continue // keep draining for the exact row count and stats
		}
		sb.Reset()
		for j, v := range rows.Row() {
			if j > 0 {
				sb.WriteString("\t")
			}
			sb.WriteString(v.String())
		}
		fmt.Println(sb.String())
	}
	if *limit > 0 && n > *limit {
		fmt.Printf("... (%d more rows)\n", n-*limit)
	}
	exitCode := 0
	switch err := rows.Err(); {
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "sipquery: query cancelled (partial output)")
		exitCode = 1
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintln(os.Stderr, "sipquery: query timed out (partial output)")
		exitCode = 1
	case err != nil:
		fatal(err)
	}

	res := rows.Result()
	fmt.Printf("\n%d row(s) in %v; state peak %.2f MB; %d filter(s), %d tuple(s) pruned\n",
		n, time.Since(start).Round(time.Millisecond),
		float64(res.PeakStateBytes)/(1<<20), res.FiltersCreated, res.TuplesPruned)
	if *stats {
		fmt.Println()
		fmt.Print(res.Stats.Report())
	}
	// A truncated result must not look like success to scripts.
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sipquery:", err)
	os.Exit(1)
}

// Command sipquery runs ad-hoc SQL over generated TPC-H data under any of
// the four execution strategies. Results stream incrementally through the
// engine's Rows cursor, and Ctrl-C cancels the running query cleanly (the
// partial output is followed by a "cancelled" notice).
//
// Usage:
//
//	sipquery -sql "SELECT n_name, count(*) FROM supplier, nation
//	               WHERE s_nationkey = n_nationkey GROUP BY n_name"
//	sipquery -strategy Cost-based -sf 0.05 -sql "..."
//	sipquery -explain -sql "..."
//	sipquery -timeout 5s -sql "..."
//	sipquery -sched morsel -sql "..."
//	sipquery -remote partsupp=1 -fault-transient 0.1 -partial -sql "..."
//	sipquery -mem-budget 1048576 -stats -sql "..."
//	sipquery -connect 127.0.0.1:7878 -tenant batch -sql "..."
//	echo "SELECT ..." | sipquery
//
// -connect switches to client mode: instead of generating data and running
// the query in-process, sipquery dials a sipserver over the wire protocol
// and streams the result back. The output, warnings, and exit codes match
// local mode; -sched, -mem-budget, -partial, and -timeout travel with the
// session, and -tenant names the quota bucket the server meters.
//
// The -fault-* flags inject deterministic failures into remote links and
// delayed scans (see sip.FaultProfile); -retries/-attempt-timeout bound the
// recovery policy, and -partial degrades a dead source to a partial result
// (with a warning and exit code 1) instead of failing the query.
//
// -mem-budget caps the query's tracked operator-state bytes: over the cap
// the stateful operators evict hash buckets to disk and merge them back
// after their inputs finish, trading wall time for bounded memory. The
// footer reports the tracked peak and spill volume whenever a query went
// out-of-core (and always under -stats); a budget too small for even the
// spill merge fails with the minimum workable figure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	sip "repro"
	"repro/internal/server"
)

func main() {
	var (
		sqlText  = flag.String("sql", "", "query text (default: read stdin)")
		connect  = flag.String("connect", "", "run against a sipserver at host:port instead of in-process")
		tenant   = flag.String("tenant", "", "tenant name for the server's admission quotas (with -connect)")
		sf       = flag.Float64("sf", 0.01, "TPC-H scale factor")
		skew     = flag.Bool("skew", false, "use the Zipf z=0.5 skewed data set")
		strategy = flag.String("strategy", "Baseline", "Baseline | Magic | Feed-forward | Cost-based")
		explain  = flag.Bool("explain", false, "print the bound block structure instead of executing")
		limit    = flag.Int("limit", 20, "max rows to print (0 = all)")
		delayed  = flag.String("delay", "", "comma-separated tables to delay per the paper's §VI-B model")
		stats    = flag.Bool("stats", false, "print per-operator statistics")
		timeout  = flag.Duration("timeout", 0, "cancel the query after this long (0 = no deadline)")
		sched    = flag.String("sched", "", "execution scheduler: chan (default) | morsel")

		remote = flag.String("remote", "", "comma-separated table=site placements, e.g. partsupp=1 (site > 0)")

		faultSeed      = flag.Int64("fault-seed", 0, "seed for deterministic fault injection")
		faultTransient = flag.Float64("fault-transient", 0, "per-interaction transient-error rate [0,1]")
		faultDrop      = flag.Float64("fault-drop", 0, "per-message drop rate [0,1]")
		faultStall     = flag.Float64("fault-stall", 0, "per-interaction stall rate [0,1]")
		faultCut       = flag.Float64("fault-cut", 0, "per-message mid-flight cut rate [0,1]")

		retries        = flag.Int("retries", 0, "retry budget per source (0 = default 3, negative disables)")
		attemptTimeout = flag.Duration("attempt-timeout", 0, "per-attempt timeout (0 = default 2s, negative disables)")
		partial        = flag.Bool("partial", false, "degrade to a partial result instead of failing when a source stays dead")
		memBudget      = flag.Int64("mem-budget", 0, "cap on tracked operator-state bytes; over budget the engine spills hash buckets to disk (0 = unbounded)")
	)
	flag.Parse()

	// Ctrl-C cancels the in-flight query via the engine's context plumbing:
	// every operator goroutine drains promptly and the cursor reports
	// context.Canceled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	text := *sqlText
	if text == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		text = string(data)
	}
	if strings.TrimSpace(text) == "" {
		fatal(fmt.Errorf("no query: pass -sql or pipe SQL on stdin"))
	}

	if *connect != "" {
		os.Exit(runRemote(ctx, *connect, text, server.DialConfig{
			Tenant:    *tenant,
			Scheduler: *sched,
			MemBudget: *memBudget,
			Partial:   *partial,
		}, *limit, *stats))
	}

	cfg := sip.DataConfig{ScaleFactor: *sf}
	if *skew {
		cfg.Skew = true
		cfg.Z = 0.5
	}
	eng := sip.NewEngine(sip.GenerateTPCH(cfg))

	if *explain {
		out, err := eng.Explain(text)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	var strat sip.Strategy
	switch *strategy {
	case "Baseline":
		strat = sip.Baseline
	case "Magic":
		strat = sip.Magic
	case "Feed-forward":
		strat = sip.FeedForward
	case "Cost-based":
		strat = sip.CostBased
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	opts := sip.Options{Strategy: strat, Scheduler: *sched, MemBudget: *memBudget,
		Retry: sip.RetryPolicy{MaxRetries: *retries, AttemptTimeout: *attemptTimeout}}
	if *delayed != "" {
		opts.DelayedTables = strings.Split(*delayed, ",")
	}
	if *remote != "" {
		opts.RemoteTables = map[string]int{}
		for _, pair := range strings.Split(*remote, ",") {
			name, site, ok := strings.Cut(strings.TrimSpace(pair), "=")
			var n int
			if ok {
				_, err := fmt.Sscanf(site, "%d", &n)
				ok = err == nil
			}
			if !ok {
				fatal(fmt.Errorf("bad -remote entry %q (want table=site)", pair))
			}
			opts.RemoteTables[name] = n
		}
	}
	if prof := (sip.FaultProfile{Seed: *faultSeed, TransientRate: *faultTransient,
		DropRate: *faultDrop, StallRate: *faultStall, CutRate: *faultCut}); prof.Active() {
		opts.Faults = &prof
	}
	if *partial {
		opts.OnSourceFailure = sip.PartialOnSourceError
	}

	start := time.Now()
	rows, err := eng.QueryStream(ctx, text, opts)
	if err != nil {
		fatal(err)
	}
	defer rows.Close()

	// Print the header, then rows as they arrive — no buffering of the
	// full result.
	var sb strings.Builder
	for i, c := range rows.Schema().Cols {
		if i > 0 {
			sb.WriteString("\t")
		}
		sb.WriteString(c.Name)
	}
	fmt.Println(sb.String())
	n := 0
	for rows.Next() {
		n++
		if *limit > 0 && n > *limit {
			continue // keep draining for the exact row count and stats
		}
		sb.Reset()
		for j, v := range rows.Row() {
			if j > 0 {
				sb.WriteString("\t")
			}
			sb.WriteString(v.String())
		}
		fmt.Println(sb.String())
	}
	if *limit > 0 && n > *limit {
		fmt.Printf("... (%d more rows)\n", n-*limit)
	}
	exitCode := 0
	var srcErr *sip.SourceError
	var budgetErr *sip.BudgetError
	switch err := rows.Err(); {
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "sipquery: query cancelled (partial output)")
		exitCode = 1
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintln(os.Stderr, "sipquery: query timed out (partial output)")
		exitCode = 1
	case errors.As(err, &srcErr):
		fmt.Fprintf(os.Stderr, "sipquery: source failed: table %s (site %d) stayed dead after %d attempt(s): %v\n",
			srcErr.Table, srcErr.Site, srcErr.Attempts, srcErr.Cause)
		fmt.Fprintln(os.Stderr, "sipquery: rerun with -partial to degrade to a partial result instead")
		exitCode = 1
	case errors.As(err, &budgetErr):
		fmt.Fprintf(os.Stderr, "sipquery: memory budget too small: %v\n", budgetErr)
		fmt.Fprintf(os.Stderr, "sipquery: rerun with -mem-budget %d or higher\n", budgetErr.Need)
		exitCode = 1
	case err != nil:
		fatal(err)
	}

	res := rows.Result()
	// Degradation warnings: a partial result must never read like a
	// complete one.
	for _, se := range res.IncompleteTables {
		fmt.Fprintf(os.Stderr, "sipquery: WARNING: result incomplete — table %s (site %d) abandoned after %d attempt(s): %v\n",
			se.Table, se.Site, se.Attempts, se.Cause)
		exitCode = 1
	}
	fmt.Printf("\n%d row(s) in %v; state peak %.2f MB; %d filter(s), %d tuple(s) pruned\n",
		n, time.Since(start).Round(time.Millisecond),
		float64(res.PeakStateBytes)/(1<<20), res.FiltersCreated, res.TuplesPruned)
	// Filter-memory accounting is diagnostic detail: keep the default
	// footer identical across strategies (scripts diff it) and only print
	// it alongside the full report.
	if *stats && (res.FilterBytes > 0 || res.PeakFilterWorkingBytes > 0) {
		fmt.Printf("filter memory: %.2f KB total, %.2f KB working-set peak\n",
			float64(res.FilterBytes)/(1<<10), float64(res.PeakFilterWorkingBytes)/(1<<10))
	}
	if res.Retries > 0 || res.BreakerTransitions > 0 || res.WastedBytes > 0 {
		fmt.Printf("recovery: %d retr%s, %d breaker transition(s), %d wasted byte(s)\n",
			res.Retries, plural(res.Retries, "y", "ies"), res.BreakerTransitions, res.WastedBytes)
	}
	// Spill accounting: always visible when the query actually went
	// out-of-core (a spilling run should never look identical to an
	// in-memory one), and under -stats even when it did not.
	if *stats || res.SpillEvents > 0 {
		fmt.Printf("memory: %.2f MB tracked peak; %.2f MB spilled in %d eviction(s)\n",
			float64(res.PeakMemBytes)/(1<<20), float64(res.SpillBytes)/(1<<20), res.SpillEvents)
	}
	if *stats {
		fmt.Println()
		fmt.Print(res.Stats.Report())
	}
	// A truncated result must not look like success to scripts.
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}

// runRemote executes the query against a sipserver, mirroring local mode's
// output, warnings, and exit codes. Returns the process exit code.
func runRemote(ctx context.Context, addr, text string, dial server.DialConfig, limit int, stats bool) int {
	c, err := server.Dial(addr, dial)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sipquery:", err)
		return 1
	}
	defer c.Close()

	start := time.Now()
	rows, err := c.Query(ctx, text)
	if err != nil {
		return remoteFail(ctx, err)
	}
	defer rows.Close()

	var sb strings.Builder
	for i, col := range rows.Schema().Cols {
		if i > 0 {
			sb.WriteString("\t")
		}
		sb.WriteString(col.Name)
	}
	fmt.Println(sb.String())
	n := 0
	for rows.Next() {
		n++
		if limit > 0 && n > limit {
			continue // keep draining for the exact row count and summary
		}
		sb.Reset()
		for j, v := range rows.Row() {
			if j > 0 {
				sb.WriteString("\t")
			}
			sb.WriteString(v.String())
		}
		fmt.Println(sb.String())
	}
	if limit > 0 && n > limit {
		fmt.Printf("... (%d more rows)\n", n-limit)
	}
	exitCode := 0
	if err := rows.Err(); err != nil {
		exitCode = remoteFail(ctx, err)
	}

	sum := rows.Summary()
	if sum == nil {
		sum = &server.Summary{}
	}
	// Degradation warnings: a partial result must never read like a
	// complete one — same contract as local mode.
	for _, se := range sum.Incomplete {
		fmt.Fprintf(os.Stderr, "sipquery: WARNING: result incomplete — table %s (site %d) abandoned after %d attempt(s): %v\n",
			se.Table, se.Site, se.Attempts, se.Cause)
		exitCode = 1
	}
	fmt.Printf("\n%d row(s) in %v; state peak %.2f MB; %d filter(s), %d tuple(s) pruned\n",
		n, time.Since(start).Round(time.Millisecond),
		float64(sum.PeakStateBytes)/(1<<20), sum.FiltersCreated, sum.TuplesPruned)
	if sum.Retries > 0 || sum.BreakerTransitions > 0 || sum.WastedBytes > 0 {
		fmt.Printf("recovery: %d retr%s, %d breaker transition(s), %d wasted byte(s)\n",
			sum.Retries, plural(sum.Retries, "y", "ies"), sum.BreakerTransitions, sum.WastedBytes)
	}
	if stats || sum.SpillEvents > 0 {
		fmt.Printf("memory: %.2f MB tracked peak; %.2f MB spilled in %d eviction(s)\n",
			float64(sum.PeakMemBytes)/(1<<20), float64(sum.SpillBytes)/(1<<20), sum.SpillEvents)
	}
	if stats {
		fmt.Fprintln(os.Stderr, "sipquery: per-operator -stats is not available over the wire; see the server's /stats endpoint")
	}
	return exitCode
}

// remoteFail prints the same diagnostics local mode would for the class of
// failure a wire error reports, and returns exit code 1.
func remoteFail(ctx context.Context, err error) int {
	var we *server.WireError
	switch {
	case errors.Is(err, context.Canceled):
		if ctx.Err() == context.DeadlineExceeded {
			fmt.Fprintln(os.Stderr, "sipquery: query timed out (partial output)")
		} else {
			fmt.Fprintln(os.Stderr, "sipquery: query cancelled (partial output)")
		}
	case errors.As(err, &we) && we.Code == "source":
		fmt.Fprintf(os.Stderr, "sipquery: source failed: %s\n", we.Msg)
		fmt.Fprintln(os.Stderr, "sipquery: rerun with -partial to degrade to a partial result instead")
	case errors.As(err, &we) && we.Code == "memory":
		fmt.Fprintf(os.Stderr, "sipquery: memory budget too small: %s\n", we.Msg)
		fmt.Fprintln(os.Stderr, "sipquery: rerun with a higher -mem-budget")
	default:
		fmt.Fprintln(os.Stderr, "sipquery:", err)
	}
	return 1
}

func plural(n int64, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sipquery:", err)
	os.Exit(1)
}

package main

import (
	"context"
	"fmt"
	"math"
	"net"
	"runtime"
	"sort"
	"time"

	sip "repro"
	"repro/internal/server"
)

// The server benchmark measures the wire-protocol serving tier end to end —
// TCP framing, session dispatch, engine execution, row-batch encoding — on
// the point query the stmt microbench uses, at 1, 64, and 512 concurrent
// sessions. Three paths per level:
//
//   - adhoc: Query frames with a distinct literal per call against a server
//     whose engine has plan caching disabled — every call pays parse + bind
//     + optimize on top of the wire round trip.
//   - cached: the same distinct-literal Query frames against the default
//     server — the plan cache's literal parameterization folds them onto
//     one compiled template.
//   - prepared: Prepare once per session, then Execute frames with a bound
//     argument — the wire analog of Stmt.Query.
//
// Each cell records queries/sec plus p50/p99 client-observed latency and the
// rep spread. The section lands on the latest BENCH_joins.json entry
// ("server_bench"); `make benchdiff` gates it PR-over-PR (same machine only,
// spread-widened tolerance) and enforces the intra-entry floor that prepared
// execution beats cache-disabled ad-hoc by ≥1.25x at 64 sessions.
//
// Why 1.25x when the in-process stmt microbench shows 3x+: over TCP the
// ratio is (plan + exec + wire) / (exec + wire), and on this single-core
// container the four-syscall round trip costs ~15us — more than the ~12us
// planning tax the prepared path saves. Measured runs land at 1.5-1.9x;
// no query shape does better (join shapes raise exec cost as fast as plan
// cost). The floor is set below the observed minimum so ambient noise on a
// shared runner cannot flag a phantom regression, while a change that
// breaks statement reuse over the wire (ratio -> 1.0) still fails.

// serverBenchSF pins the data scale; the point query isolates per-call and
// per-frame overhead, not scan throughput.
const serverBenchSF = 0.01

// serverBenchTotal is the target number of queries per path per level,
// split across the sessions (at least serverBenchMinPer each).
const (
	serverBenchTotal  = 3072
	serverBenchMinPer = 6
)

var serverBenchSessions = []int{1, 64, 512}

type serverBenchCell struct {
	Sessions int `json:"sessions"`

	AdhocQPS       float64 `json:"adhoc_queries_per_sec"`
	AdhocP50Micros int64   `json:"adhoc_p50_micros"`
	AdhocP99Micros int64   `json:"adhoc_p99_micros"`

	CachedQPS       float64 `json:"cached_queries_per_sec"`
	CachedP50Micros int64   `json:"cached_p50_micros"`
	CachedP99Micros int64   `json:"cached_p99_micros"`

	PreparedQPS       float64 `json:"prepared_queries_per_sec"`
	PreparedP50Micros int64   `json:"prepared_p50_micros"`
	PreparedP99Micros int64   `json:"prepared_p99_micros"`

	SpeedupPrepared float64 `json:"speedup_prepared_vs_adhoc"`
	SpeedupCached   float64 `json:"speedup_cached_vs_adhoc"`

	// RepSpread is the worst (slowest-fastest)/median rep-time spread across
	// the cell's three measurements; benchdiff widens its cross-entry
	// tolerance to it, same as the join cells.
	RepSpread float64 `json:"rep_spread"`
}

// benchServer is one listening server plus its address.
type benchServer struct {
	srv  *server.Server
	addr string
}

func startBenchServer(eng *sip.Engine) (*benchServer, error) {
	srv, err := server.New(server.Config{Engine: eng})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(l)
	return &benchServer{srv: srv, addr: l.Addr().String()}, nil
}

func (b *benchServer) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	b.srv.Shutdown(ctx)
}

// pointSQL is the benchmark query; i selects the key so the adhoc/cached
// paths see a distinct literal per call.
func pointSQL(i int) string {
	return fmt.Sprintf("SELECT n_name, n_regionkey FROM nation WHERE n_nationkey = %d", i%25)
}

// runPoint executes one query on the client — ad-hoc text or the session's
// prepared statement — and drains it.
func runPoint(ctx context.Context, c *server.Client, stmt *server.Stmt, i int) error {
	var rows *server.Rows
	var err error
	if stmt != nil {
		rows, err = stmt.Query(ctx, sip.Int(int64(i%25)))
	} else {
		rows, err = c.Query(ctx, pointSQL(i))
	}
	if err != nil {
		return err
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		return err
	}
	if n != 1 {
		return fmt.Errorf("serverbench: point query returned %d rows, want 1", n)
	}
	return nil
}

// measureServer runs perSession queries on each of `sessions` concurrent
// client connections, reps times, and returns the median-rep queries/sec
// with that rep's p50/p99 latency and the rep spread. prepare selects the
// Execute path.
func measureServer(addr string, sessions, perSession, reps int, prepare bool) (qps float64, p50, p99 int64, spread float64, err error) {
	ctx := context.Background()
	clients := make([]*server.Client, sessions)
	stmts := make([]*server.Stmt, sessions)
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	for i := range clients {
		c, derr := server.Dial(addr, server.DialConfig{Tenant: "bench"})
		if derr != nil {
			return 0, 0, 0, 0, derr
		}
		clients[i] = c
		if prepare {
			s, perr := c.Prepare("SELECT n_name, n_regionkey FROM nation WHERE n_nationkey = ?")
			if perr != nil {
				return 0, 0, 0, 0, perr
			}
			stmts[i] = s
		}
		// Warm-up: the first call pays one-time costs (cache fill, pools).
		if werr := runPoint(ctx, c, stmts[i], i); werr != nil {
			return 0, 0, 0, 0, werr
		}
	}

	type repResult struct {
		wall time.Duration
		lats []time.Duration
	}
	repsRun := make([]repResult, reps)
	for r := 0; r < reps; r++ {
		runtime.GC()
		perClient := make([][]time.Duration, sessions)
		errs := make(chan error, sessions)
		start := time.Now()
		for ci := range clients {
			go func(ci int) {
				lats := make([]time.Duration, 0, perSession)
				var cerr error
				for i := 0; i < perSession; i++ {
					t0 := time.Now()
					if cerr = runPoint(ctx, clients[ci], stmts[ci], ci*perSession+i); cerr != nil {
						break
					}
					lats = append(lats, time.Since(t0))
				}
				perClient[ci] = lats
				errs <- cerr
			}(ci)
		}
		for range clients {
			if cerr := <-errs; cerr != nil {
				return 0, 0, 0, 0, cerr
			}
		}
		wall := time.Since(start)
		var all []time.Duration
		for _, lats := range perClient {
			all = append(all, lats...)
		}
		repsRun[r] = repResult{wall: wall, lats: all}
	}

	sort.Slice(repsRun, func(i, k int) bool { return repsRun[i].wall < repsRun[k].wall })
	med := repsRun[len(repsRun)/2]
	sort.Slice(med.lats, func(i, k int) bool { return med.lats[i] < med.lats[k] })
	pct := func(p float64) int64 {
		idx := int(p * float64(len(med.lats)-1))
		return med.lats[idx].Microseconds()
	}
	total := sessions * perSession
	spread = spreadFrac(repsRun[0].wall, repsRun[len(repsRun)-1].wall, med.wall)
	return float64(total) / med.wall.Seconds(), pct(0.50), pct(0.99), spread, nil
}

func runServerBench(outPath string, reps int, overwrite bool) error {
	if reps < 1 {
		reps = 1
	}
	cat := sip.GenerateTPCH(sip.DataConfig{ScaleFactor: serverBenchSF})
	// The adhoc path runs against its own server whose engine never caches
	// plans — the honest per-call floor. cached and prepared share the
	// default server, as real sessions would.
	cachedSrv, err := startBenchServer(sip.NewEngineWithConfig(cat, sip.EngineConfig{PooledStats: true}))
	if err != nil {
		return err
	}
	defer cachedSrv.stop()
	nocacheSrv, err := startBenchServer(sip.NewEngineWithConfig(cat, sip.EngineConfig{PooledStats: true, PlanCacheSize: -1}))
	if err != nil {
		return err
	}
	defer nocacheSrv.stop()

	var cells []serverBenchCell
	for _, sessions := range serverBenchSessions {
		perSession := serverBenchTotal / sessions
		if perSession < serverBenchMinPer {
			perSession = serverBenchMinPer
		}
		cell := serverBenchCell{Sessions: sessions}
		var err error
		var sA, sC, sP float64
		if cell.AdhocQPS, cell.AdhocP50Micros, cell.AdhocP99Micros, sA, err = measureServer(nocacheSrv.addr, sessions, perSession, reps, false); err != nil {
			return err
		}
		if cell.CachedQPS, cell.CachedP50Micros, cell.CachedP99Micros, sC, err = measureServer(cachedSrv.addr, sessions, perSession, reps, false); err != nil {
			return err
		}
		if cell.PreparedQPS, cell.PreparedP50Micros, cell.PreparedP99Micros, sP, err = measureServer(cachedSrv.addr, sessions, perSession, reps, true); err != nil {
			return err
		}
		cell.SpeedupPrepared = cell.PreparedQPS / cell.AdhocQPS
		cell.SpeedupCached = cell.CachedQPS / cell.AdhocQPS
		cell.RepSpread = math.Max(sA, math.Max(sC, sP))
		cells = append(cells, cell)
		fmt.Printf("%4d session(s)  adhoc %8.0f q/s (p50 %5dus p99 %5dus)  cached %8.0f q/s (%.2fx)  prepared %8.0f q/s (%.2fx, p50 %5dus p99 %5dus)\n",
			sessions, cell.AdhocQPS, cell.AdhocP50Micros, cell.AdhocP99Micros,
			cell.CachedQPS, cell.SpeedupCached,
			cell.PreparedQPS, cell.SpeedupPrepared, cell.PreparedP50Micros, cell.PreparedP99Micros)
	}
	return recordBenchSection(outPath, "server_bench", cells, overwrite)
}

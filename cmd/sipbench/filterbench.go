package main

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bloom"
	"repro/internal/exec"
	"repro/internal/filter"
	"repro/internal/types"
)

// The filter benchmark compares the AIP summary paths head to head at an
// equal false-positive budget (the paper's 5%), on three axes:
//
//   - build: inserting filterBenchN pre-hashed keys through the scalar
//     (flat, blocked) or batch (blocked-batch) insert kernels.
//   - probe: a half-present/half-absent tuple stream pushed through the
//     PROBE SITE each engine configuration actually runs — the flat-scalar
//     cell is the tuple-at-a-time site (one Hasher.KeyCols encode+hash and
//     one FilterBank.ProbeHashed interface dispatch per tuple), the
//     blocked-batch cell is the batch site (FilterBank.ProbeBatch: one
//     batched encode pass, one dispatch, and one two-pass probe kernel per
//     4096-tuple window). blocked-scalar isolates the layout change alone:
//     the raw blocked kernel probed one precomputed hash at a time.
//   - merge + working set at P=8: the per-slot working sets a partitioned
//     producer maintains, folded into the one published summary. Flat slots
//     are full-geometry copies (union compatibility); blocked slots are
//     bloom.Partial working sets whose stripes allocate lazily. Keys are
//     routed to slots by the top bits of their hash — exactly the
//     executor's radix partitioning — which is what clusters each slot's
//     block addresses into a contiguous stripe range.
//
// The probe-site-pr6 cell reconstructs the probe site as it shipped in
// the previous entry (pre-PR byte-at-a-time key encode, tuple-at-a-time
// ProbeHashed): the batch path's end-to-end speedup is measured against
// it, because the shared encode fast path this PR added speeds the live
// scalar site too — flat-scalar vs blocked-batch therefore isolates the
// batching win alone, while pr6 vs blocked-batch is the full site-level
// gain (~2-2.5× on the reference box).
//
// The section is recorded on the latest BENCH_joins.json entry
// ("filter_bench"); `make benchdiff` gates it PR-over-PR per (variant,
// metric) cell and — intra entry, so it holds even on the section's first
// appearance — enforces the blocked-batch floors: probe rate never below
// flat-scalar and at least 1.5× the frozen pr6 site, and P=8 working-set
// bytes at most 1/4 of the flat copies.

// filterBenchN sizes the benchmark filters well past L2 at the flat
// geometry (~2.5MB at the 5% budget) so the probe numbers include each
// layout's real cache footprint, not just its arithmetic.
const filterBenchN = 1 << 22

// filterBenchP is the simulated partition fan-out of the working-set
// measurement.
const filterBenchP = 8

// filterBenchWindow is the probe-site batch width, matching the executor's
// chunk size order of magnitude.
const filterBenchWindow = 4096

type filterBenchCell struct {
	Name              string  `json:"name"`
	Keys              int     `json:"keys"`
	FilterBytes       int64   `json:"filter_bytes"`
	BuildTuplesPerSec float64 `json:"build_tuples_per_sec"`
	ProbeTuplesPerSec float64 `json:"probe_tuples_per_sec"`
	MergeTuplesPerSec float64 `json:"merge_tuples_per_sec,omitempty"`
	WorkingSetBytesP8 int64   `json:"working_set_bytes_p8,omitempty"`
	FPRMeasured       float64 `json:"fpr_measured"`
}

// medianOf runs fn reps times and returns the median duration.
func medianOf(reps int, fn func()) time.Duration {
	times := make([]time.Duration, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, k int) bool { return times[i] < times[k] })
	return times[len(times)/2]
}

func runFilterBench(outPath string, reps int, overwrite bool) error {
	if reps < 1 {
		reps = 1
	}
	const n = filterBenchN
	const fpr = bloom.DefaultFPR
	keyCols := []int{0}

	// Present keys are the int64s 0..n-1; the probe stream interleaves
	// present keys (even lanes) with fresh keys (odd lanes — the absent
	// half measures the FPR and the short-circuit path). Hashes are the
	// canonical key-encoding hashes the engine routes and probes on.
	presentHash := make([]uint64, n)
	var kb []byte
	for i := range presentHash {
		kb = types.Tuple{types.Int(int64(i))}.AppendKeyCols(kb[:0], keyCols)
		presentHash[i] = types.Hash64(kb, 0)
	}
	probeTuples := make([]types.Tuple, n)
	probeHash := make([]uint64, n)
	absent := 0
	for i := range probeTuples {
		v := int64(i / 2)
		if i%2 == 1 {
			v = int64(n + i)
			absent++
		}
		probeTuples[i] = types.Tuple{types.Int(v)}
		kb = probeTuples[i].AppendKeyCols(kb[:0], keyCols)
		probeHash[i] = types.Hash64(kb, 0)
	}
	// Slot assignment by the hash's top bits, matching the executor's
	// radix partition routing.
	slotOf := func(h uint64) int { return int(h >> 61) }

	flatBits := bloom.BitsFor(n, fpr)
	blockedBits := bloom.BlockedBitsFor(n, fpr)
	blockedK := bloom.BlockedKFor(n, blockedBits)

	var cells []filterBenchCell
	record := func(c filterBenchCell) {
		cells = append(cells, c)
		fmt.Printf("filter %-14s %8.2e build/s %8.2e probe/s", c.Name,
			c.BuildTuplesPerSec, c.ProbeTuplesPerSec)
		if c.MergeTuplesPerSec > 0 {
			fmt.Printf(" %8.2e merge/s %8.2f MB ws@P=%d", c.MergeTuplesPerSec,
				float64(c.WorkingSetBytesP8)/(1<<20), filterBenchP)
		}
		fmt.Printf("  fpr=%.4f %6.2f MB\n", c.FPRMeasured, float64(c.FilterBytes)/(1<<20))
	}

	// ---- flat-scalar: the classic one-hash filter behind the
	// tuple-at-a-time probe site — Hasher.KeyCols then FilterBank.ProbeHashed
	// once per tuple, full-geometry per-slot copies on the build side.
	{
		var f *bloom.Filter
		build := medianOf(reps, func() {
			f = bloom.NewWithBits(flatBits, 0)
			for _, h := range presentHash {
				f.AddHash(h)
			}
		})
		bank := exec.NewFilterBank()
		bank.Attach(keyCols, filter.Bloom{F: f})
		var hasher types.Hasher
		hits := 0
		probe := medianOf(reps, func() {
			hits = 0
			for _, t := range probeTuples {
				h, key := hasher.KeyCols(t, keyCols)
				if bank.ProbeHashed(t, keyCols, h, key, &hasher) {
					hits++
				}
			}
		})
		copies := make([]*bloom.Filter, filterBenchP)
		var ws int64
		for i := range copies {
			copies[i] = bloom.NewWithBits(flatBits, 0)
			ws += int64(copies[i].SizeBytes())
		}
		for _, h := range presentHash {
			copies[slotOf(h)].AddHash(h)
		}
		merge := medianOf(reps, func() {
			dst := bloom.NewWithBits(flatBits, 0)
			for _, c := range copies {
				if err := dst.UnionWith(c); err != nil {
					fatal(err)
				}
			}
		})
		record(filterBenchCell{
			Name:              "flat-scalar",
			Keys:              n,
			FilterBytes:       int64(f.SizeBytes()),
			BuildTuplesPerSec: n / build.Seconds(),
			ProbeTuplesPerSec: float64(len(probeTuples)) / probe.Seconds(),
			MergeTuplesPerSec: n / merge.Seconds(),
			WorkingSetBytesP8: ws,
			FPRMeasured:       float64(hits-n/2) / float64(absent),
		})
	}

	// ---- probe-site-pr6: the probe site as it shipped in the previous
	// entry, reconstructed as a frozen baseline — per-tuple byte-at-a-time
	// key encoding (the pre-PR Value.AppendKey loop, preserved verbatim
	// below), Hash64 over the buffered bytes, then tuple-at-a-time
	// ProbeHashed against the flat filter. The live flat-scalar cell above
	// rides the shared encode fast path this PR added engine-wide, so it
	// tracks the scalar site as it now is; this cell pins what the site
	// cost before the PR, which is what the batch path's end-to-end
	// speedup is measured against PR-over-PR.
	{
		oldAppendKey := func(dst []byte, v int64) []byte {
			dst = append(dst, 0x01)
			u := uint64(v)
			return append(dst,
				byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
				byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
		}
		f := bloom.NewWithBits(flatBits, 0)
		for _, h := range presentHash {
			f.AddHash(h)
		}
		bank := exec.NewFilterBank()
		bank.Attach(keyCols, filter.Bloom{F: f})
		var scratch types.Hasher
		var buf []byte
		hits := 0
		probe := medianOf(reps, func() {
			hits = 0
			for _, t := range probeTuples {
				v, _ := t[0].AsInt()
				buf = oldAppendKey(buf[:0], v)
				h := types.Hash64(buf, 0)
				if bank.ProbeHashed(t, keyCols, h, buf, &scratch) {
					hits++
				}
			}
		})
		record(filterBenchCell{
			Name:              "probe-site-pr6",
			Keys:              n,
			FilterBytes:       int64(f.SizeBytes()),
			BuildTuplesPerSec: 0,
			ProbeTuplesPerSec: float64(len(probeTuples)) / probe.Seconds(),
			FPRMeasured:       float64(hits-n/2) / float64(absent),
		})
	}

	// ---- blocked-scalar: the cache-line-blocked layout probed one
	// precomputed hash at a time, outside any probe site; isolates the
	// layout change from the batch-site change.
	{
		var f *bloom.Blocked
		build := medianOf(reps, func() {
			f = bloom.NewBlockedWithGeometry(blockedBits, blockedK, 0)
			for _, h := range presentHash {
				f.AddHash(h)
			}
		})
		hits := 0
		probe := medianOf(reps, func() {
			hits = 0
			for _, h := range probeHash {
				if f.ProbeHash(h) {
					hits++
				}
			}
		})
		record(filterBenchCell{
			Name:              "blocked-scalar",
			Keys:              n,
			FilterBytes:       int64(f.SizeBytes()),
			BuildTuplesPerSec: n / build.Seconds(),
			ProbeTuplesPerSec: float64(len(probeHash)) / probe.Seconds(),
			FPRMeasured:       float64(hits-n/2) / float64(absent),
		})
	}

	// ---- blocked-batch: the batch probe site (FilterBank.ProbeBatch with
	// a per-worker ProbeScratch) over the blocked layout, plus striped
	// Partial working sets — the configuration the engine runs by default.
	{
		var f *bloom.Blocked
		build := medianOf(reps, func() {
			f = bloom.NewBlockedWithGeometry(blockedBits, blockedK, 0)
			f.AddHashBatch(presentHash)
		})
		bank := exec.NewFilterBank()
		bank.Attach(keyCols, filter.Blocked{F: f})
		var sc exec.ProbeScratch
		sel := make([]int32, filterBenchWindow)
		for i := range sel {
			sel[i] = int32(i)
		}
		out := make([]int32, 0, len(sel))
		hits := 0
		probe := medianOf(reps, func() {
			hits = 0
			for start := 0; start < len(probeTuples); start += len(sel) {
				c := len(probeTuples) - start
				if c > len(sel) {
					c = len(sel)
				}
				out = bank.ProbeBatch(probeTuples[start:start+c], keyCols, sel[:c], out[:0], &sc)
				hits += len(out)
			}
		})
		partials := make([]*bloom.Partial, filterBenchP)
		for i := range partials {
			partials[i] = bloom.NewPartial(blockedBits, blockedK, 0)
		}
		for _, h := range presentHash {
			partials[slotOf(h)].AddHash(h)
		}
		var ws int64
		for _, p := range partials {
			ws += int64(p.SizeBytes())
		}
		merge := medianOf(reps, func() {
			dst := bloom.NewBlockedWithGeometry(blockedBits, blockedK, 0)
			for _, p := range partials {
				if err := p.MergeInto(dst); err != nil {
					fatal(err)
				}
			}
		})
		record(filterBenchCell{
			Name:              "blocked-batch",
			Keys:              n,
			FilterBytes:       int64(f.SizeBytes()),
			BuildTuplesPerSec: n / build.Seconds(),
			ProbeTuplesPerSec: float64(len(probeTuples)) / probe.Seconds(),
			MergeTuplesPerSec: n / merge.Seconds(),
			WorkingSetBytesP8: ws,
			FPRMeasured:       float64(hits-n/2) / float64(absent),
		})
	}

	return recordBenchSection(outPath, "filter_bench", cells, overwrite)
}

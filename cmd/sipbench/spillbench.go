package main

import (
	"context"
	"fmt"
	"sort"
	"time"

	sip "repro"
)

// The spill benchmark measures what the memory budget costs: the join+agg
// query that memory_test.go's differential uses, run unbounded (to learn
// its natural peak) and then under caps of a quarter and a sixteenth of
// that peak, which force the bucket-discard spill path through its merge
// phase. Each capped run must produce the same number of rows as the
// unbounded one — a spilling run that drops rows is a correctness bug, not
// a slow run.
//
// The section is recorded on the latest BENCH_joins.json entry
// ("spill_bench"); `make benchdiff` gates it: the quarter-cap run must have
// actually spilled and must stay within 5× of the unbounded wall time, so
// the out-of-core path can never silently rot into either a no-op or a
// thrashing cliff. Cross-entry, same-machine throughput diffs apply like
// every other section.

// spillBenchSF pins the recorded scale factor; spillBenchP pins the
// partition count (the container may expose a single core, and P=1 both
// under-partitions the spill path and makes the peak step in whole-table
// doublings).
const (
	spillBenchSF = 0.01
	spillBenchP  = 4
)

const spillBenchSQL = `SELECT o_orderdate, count(*)
	FROM lineitem, orders WHERE l_orderkey = o_orderkey GROUP BY o_orderdate`

type spillBenchCell struct {
	Cap                string  `json:"cap"` // "unbounded", "quarter", "sixteenth"
	BudgetBytes        int64   `json:"budget_bytes"`
	NsPerOp            int64   `json:"ns_per_op"`
	InputTuplesPerSec  float64 `json:"input_tuples_per_sec"`
	PeakMemBytes       int64   `json:"peak_mem_bytes"`
	SpillBytes         int64   `json:"spill_bytes"`
	SpillEvents        int64   `json:"spill_events"`
	Rows               int     `json:"rows"`
	SlowdownVsUncapped float64 `json:"slowdown_vs_uncapped"`
}

func runSpillBench(outPath string, reps int, overwrite bool) error {
	if reps < 1 {
		reps = 1
	}
	eng := sip.NewEngine(sip.GenerateTPCH(sip.DataConfig{ScaleFactor: spillBenchSF}))

	measure := func(budget int64) (spillBenchCell, error) {
		opts := sip.Options{Parallelism: spillBenchP, MemBudget: budget}
		if _, err := eng.Query(context.Background(), spillBenchSQL, opts); err != nil {
			return spillBenchCell{}, err // warm-up
		}
		type rep struct {
			d        time.Duration
			res      *sip.Result
			inTuples int64
		}
		runs := make([]rep, reps)
		for i := 0; i < reps; i++ {
			start := time.Now()
			res, err := eng.Query(context.Background(), spillBenchSQL, opts)
			if err != nil {
				return spillBenchCell{}, err
			}
			runs[i] = rep{d: time.Since(start), res: res, inTuples: res.TuplesScanned}
		}
		sort.Slice(runs, func(i, k int) bool { return runs[i].d < runs[k].d })
		med := runs[len(runs)/2]
		return spillBenchCell{
			BudgetBytes:       budget,
			NsPerOp:           med.d.Nanoseconds(),
			InputTuplesPerSec: float64(med.inTuples) / med.d.Seconds(),
			PeakMemBytes:      med.res.PeakMemBytes,
			SpillBytes:        med.res.SpillBytes,
			SpillEvents:       med.res.SpillEvents,
			Rows:              len(med.res.Rows),
		}, nil
	}

	unbounded, err := measure(0)
	if err != nil {
		return err
	}
	unbounded.Cap = "unbounded"
	unbounded.SlowdownVsUncapped = 1
	cells := []spillBenchCell{unbounded}

	caps := []struct {
		name   string
		budget int64
	}{
		{"quarter", unbounded.PeakMemBytes / 4},
		{"sixteenth", unbounded.PeakMemBytes / 16},
	}
	for _, c := range caps {
		cell, err := measure(c.budget)
		if err != nil {
			return fmt.Errorf("spillbench %s cap (%d B): %w", c.name, c.budget, err)
		}
		cell.Cap = c.name
		cell.SlowdownVsUncapped = float64(cell.NsPerOp) / float64(unbounded.NsPerOp)
		if cell.Rows != unbounded.Rows {
			return fmt.Errorf("spillbench %s cap produced %d rows, unbounded %d",
				c.name, cell.Rows, unbounded.Rows)
		}
		cells = append(cells, cell)
	}

	for _, c := range cells {
		fmt.Printf("spill %-10s budget=%-9d %12v/op peak=%-9d spilled=%-9d (%d evictions) %5.2fx\n",
			c.Cap, c.BudgetBytes, time.Duration(c.NsPerOp).Round(time.Microsecond),
			c.PeakMemBytes, c.SpillBytes, c.SpillEvents, c.SlowdownVsUncapped)
	}
	return recordBenchSection(outPath, "spill_bench", cells, overwrite)
}

// Command sipbench regenerates the paper's experiment figures (5–14) and
// the repo's recorded performance trajectory.
//
// Usage:
//
//	sipbench -figure 6                 # one figure
//	sipbench -all                      # every figure
//	sipbench -figure 13 -sf 0.1 -reps 5
//	sipbench -query Q2A -strategy Feed-forward -v
//	sipbench -joinbench                # write BENCH_joins.json
//
// Output is the same series the paper's figures plot: per query, one
// running-time (or intermediate-state) value per execution strategy, with
// 95% confidence intervals across repetitions.
//
// -joinbench runs the join-heavy benchmark query once per strategy at the
// pinned SF 0.01 and writes ns/op, allocs/op, and tuples/sec to
// BENCH_joins.json (see -benchout); a pre-existing "microbench" section in
// that file — the recorded seed-vs-current numbers from
// `go test -bench BenchmarkJoin ./internal/exec` — is preserved.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	sip "repro"
	"repro/internal/harness"
	"repro/internal/workload"
)

func main() {
	var (
		figure   = flag.Int("figure", 0, "figure number to regenerate (5-14)")
		all      = flag.Bool("all", false, "run every figure")
		sf       = flag.Float64("sf", 0.05, "TPC-H scale factor")
		reps     = flag.Int("reps", 3, "repetitions per cell (the paper used ≥5)")
		fpr      = flag.Float64("fpr", 0.05, "Bloom filter false-positive target")
		mbps     = flag.Float64("src", 1000, "source stream rate in MB/s (<0 = unpaced)")
		query    = flag.String("query", "", "run a single workload query (e.g. Q2A)")
		strategy = flag.String("strategy", "Feed-forward", "strategy for -query")
		verbose  = flag.Bool("v", false, "per-operator statistics")
		summary  = flag.Bool("summary", true, "print shape summary after each figure")

		joinbench = flag.Bool("joinbench", false, "run the per-strategy join benchmark and write -benchout")
		benchout  = flag.String("benchout", "BENCH_joins.json", "output path for -joinbench")
	)
	flag.Parse()

	if *joinbench {
		if err := runJoinBench(*benchout, *reps); err != nil {
			fatal(err)
		}
		return
	}

	runner := harness.New(harness.Config{
		ScaleFactor: *sf,
		Repetitions: *reps,
		FPR:         *fpr,
		SourceMBps:  *mbps,
		Verbose:     *verbose,
	})

	switch {
	case *query != "":
		spec, err := workload.ByID(*query)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		cell, err := runner.RunCell(spec, *strategy, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s / %s: time=%v ±%v state=%.2fMB rows=%d filters=%d pruned=%d (wall %v)\n",
			cell.Query, cell.Strategy, cell.Mean.Round(time.Millisecond),
			cell.CI95.Round(time.Millisecond), cell.StateMB, cell.Rows,
			cell.Filters, cell.Pruned, time.Since(start).Round(time.Millisecond))
		if *verbose {
			eng := runner.Engine(spec.Skewed)
			sql := spec.SQL(eng.Catalog())
			fmt.Println("\nSQL:")
			fmt.Println(sql)
		}

	case *all:
		for _, fig := range workload.Figures() {
			cells, err := runner.RunFigure(fig, os.Stdout)
			if err != nil {
				fatal(err)
			}
			if *summary {
				fmt.Println("shape summary:")
				harness.Summarize(cells, fig.Metric, os.Stdout)
				fmt.Println()
			}
		}

	case *figure != 0:
		fig, err := workload.FigureByNumber(*figure)
		if err != nil {
			fatal(err)
		}
		cells, err := runner.RunFigure(fig, os.Stdout)
		if err != nil {
			fatal(err)
		}
		if *summary {
			fmt.Println("shape summary:")
			harness.Summarize(cells, fig.Metric, os.Stdout)
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sipbench:", err)
	os.Exit(1)
}

// joinBenchSF pins the scale factor of the recorded join benchmark so the
// BENCH_joins.json trajectory stays comparable across PRs.
const joinBenchSF = 0.01

// joinBenchQuery is the join-heavy workload query the per-strategy numbers
// are recorded on (same query BenchmarkStrategies uses).
const joinBenchQuery = "Q2A"

// strategyBench is one strategy's measured cell in BENCH_joins.json.
type strategyBench struct {
	Strategy     string  `json:"strategy"`
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	Rows         int     `json:"rows"`
}

// runJoinBench measures every strategy on the join-heavy query and writes
// the JSON trajectory file, preserving any recorded "microbench" section.
func runJoinBench(outPath string, reps int) error {
	if reps < 1 {
		reps = 1
	}
	runner := harness.New(harness.Config{ScaleFactor: joinBenchSF, Repetitions: reps, SourceMBps: -1})
	eng := runner.Engine(false)
	spec, err := workload.ByID(joinBenchQuery)
	if err != nil {
		return err
	}
	sql := spec.SQL(eng.Catalog())

	var cells []strategyBench
	for _, s := range sip.AllStrategies() {
		// Warm-up run excluded from measurement (catalog caches, pools).
		if _, err := eng.Query(sql, sip.Options{Strategy: s, SourceBytesPerSec: 1 << 30}); err != nil {
			return err
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		var tuples, rows int64
		for i := 0; i < reps; i++ {
			res, err := eng.Query(sql, sip.Options{Strategy: s, SourceBytesPerSec: 1 << 30})
			if err != nil {
				return err
			}
			tuples += res.TuplesProcessed
			rows = int64(len(res.Rows))
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		cells = append(cells, strategyBench{
			Strategy:     s.String(),
			NsPerOp:      elapsed.Nanoseconds() / int64(reps),
			AllocsPerOp:  int64(ms1.Mallocs-ms0.Mallocs) / int64(reps),
			TuplesPerSec: float64(tuples) / elapsed.Seconds(),
			Rows:         int(rows),
		})
		fmt.Printf("%-14s %12v/op %10d allocs/op %14.0f tuples/sec\n",
			s.String(), time.Duration(cells[len(cells)-1].NsPerOp).Round(time.Microsecond),
			cells[len(cells)-1].AllocsPerOp, cells[len(cells)-1].TuplesPerSec)
	}

	// Preserve the recorded microbench section across regenerations.
	doc := map[string]any{}
	if old, err := os.ReadFile(outPath); err == nil {
		var prev map[string]any
		if json.Unmarshal(old, &prev) == nil {
			if mb, ok := prev["microbench"]; ok {
				doc["microbench"] = mb
			}
		}
	}
	doc["generated"] = time.Now().UTC().Format(time.RFC3339)
	doc["scale_factor"] = joinBenchSF
	doc["query"] = joinBenchQuery
	doc["reps"] = reps
	doc["strategies"] = cells

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// Command sipbench regenerates the paper's experiment figures (5–14).
//
// Usage:
//
//	sipbench -figure 6                 # one figure
//	sipbench -all                      # every figure
//	sipbench -figure 13 -sf 0.1 -reps 5
//	sipbench -query Q2A -strategy Feed-forward -v
//
// Output is the same series the paper's figures plot: per query, one
// running-time (or intermediate-state) value per execution strategy, with
// 95% confidence intervals across repetitions.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/workload"
)

func main() {
	var (
		figure   = flag.Int("figure", 0, "figure number to regenerate (5-14)")
		all      = flag.Bool("all", false, "run every figure")
		sf       = flag.Float64("sf", 0.05, "TPC-H scale factor")
		reps     = flag.Int("reps", 3, "repetitions per cell (the paper used ≥5)")
		fpr      = flag.Float64("fpr", 0.05, "Bloom filter false-positive target")
		mbps     = flag.Float64("src", 1000, "source stream rate in MB/s (<0 = unpaced)")
		query    = flag.String("query", "", "run a single workload query (e.g. Q2A)")
		strategy = flag.String("strategy", "Feed-forward", "strategy for -query")
		verbose  = flag.Bool("v", false, "per-operator statistics")
		summary  = flag.Bool("summary", true, "print shape summary after each figure")
	)
	flag.Parse()

	runner := harness.New(harness.Config{
		ScaleFactor: *sf,
		Repetitions: *reps,
		FPR:         *fpr,
		SourceMBps:  *mbps,
		Verbose:     *verbose,
	})

	switch {
	case *query != "":
		spec, err := workload.ByID(*query)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		cell, err := runner.RunCell(spec, *strategy, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s / %s: time=%v ±%v state=%.2fMB rows=%d filters=%d pruned=%d (wall %v)\n",
			cell.Query, cell.Strategy, cell.Mean.Round(time.Millisecond),
			cell.CI95.Round(time.Millisecond), cell.StateMB, cell.Rows,
			cell.Filters, cell.Pruned, time.Since(start).Round(time.Millisecond))
		if *verbose {
			eng := runner.Engine(spec.Skewed)
			sql := spec.SQL(eng.Catalog())
			fmt.Println("\nSQL:")
			fmt.Println(sql)
		}

	case *all:
		for _, fig := range workload.Figures() {
			cells, err := runner.RunFigure(fig, os.Stdout)
			if err != nil {
				fatal(err)
			}
			if *summary {
				fmt.Println("shape summary:")
				harness.Summarize(cells, fig.Metric, os.Stdout)
				fmt.Println()
			}
		}

	case *figure != 0:
		fig, err := workload.FigureByNumber(*figure)
		if err != nil {
			fatal(err)
		}
		cells, err := runner.RunFigure(fig, os.Stdout)
		if err != nil {
			fatal(err)
		}
		if *summary {
			fmt.Println("shape summary:")
			harness.Summarize(cells, fig.Metric, os.Stdout)
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sipbench:", err)
	os.Exit(1)
}

// Command sipbench regenerates the paper's experiment figures (5–14) and
// the repo's recorded performance trajectory.
//
// Usage:
//
//	sipbench -figure 6                 # one figure
//	sipbench -all                      # every figure
//	sipbench -figure 13 -sf 0.1 -reps 5
//	sipbench -query Q2A -strategy Feed-forward -v
//	sipbench -joinbench                # write BENCH_joins.json
//	sipbench -schedbench               # record the chan-vs-morsel section
//	sipbench -filterbench              # record the blocked-vs-flat filter section
//	sipbench -spillbench               # record the memory-budget spill section
//	sipbench -serverbench              # record the wire-protocol serving section
//
// Output is the same series the paper's figures plot: per query, one
// running-time (or intermediate-state) value per execution strategy, with
// 95% confidence intervals across repetitions.
//
// -joinbench runs the join-heavy benchmark query once per strategy at the
// pinned SF 0.01, measures the partitioned join's scaling curve at
// P ∈ {1,2,4,8}, and appends one entry to the BENCH_joins.json trajectory
// (see -benchout): the file keeps one entry per PR instead of being
// overwritten, so `make benchdiff` can flag regressions against the
// previous entry. A pre-existing "microbench" section — the recorded
// seed-vs-current numbers from `go test -bench BenchmarkJoin
// ./internal/exec` — is preserved.
//
// Each strategy cell records two deliberately distinct rates:
//
//   - input_tuples_per_sec: base-table rows scanned per second
//     (Registry.TotalScanned), comparable across plan shapes and with the
//     microbench's input-tuples/sec.
//   - operator_tuples_per_sec: rows received across all operators per
//     second (Registry.TotalIn), the engine's processing volume; it shifts
//     with plan shape, so it is only comparable within one strategy's
//     history. Earlier revisions published this number as
//     "tuples_per_sec", which invited cross-metric comparisons.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	sip "repro"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/stats"
	"repro/internal/types"
	"repro/internal/workload"
)

func main() {
	var (
		figure   = flag.Int("figure", 0, "figure number to regenerate (5-14)")
		all      = flag.Bool("all", false, "run every figure")
		sf       = flag.Float64("sf", 0.05, "TPC-H scale factor")
		reps     = flag.Int("reps", 3, "repetitions per cell (the paper used ≥5)")
		fpr      = flag.Float64("fpr", 0.05, "Bloom filter false-positive target")
		mbps     = flag.Float64("src", 1000, "source stream rate in MB/s (<0 = unpaced)")
		query    = flag.String("query", "", "run a single workload query (e.g. Q2A)")
		strategy = flag.String("strategy", "Feed-forward", "strategy for -query")
		verbose  = flag.Bool("v", false, "per-operator statistics")
		summary  = flag.Bool("summary", true, "print shape summary after each figure")
		pipej    = flag.Int("pipedepth", 0, "per-edge channel buffer in batches (0 = executor default)")

		joinbench   = flag.Bool("joinbench", false, "run the per-strategy join benchmark and write -benchout")
		exprbench   = flag.Bool("exprbench", false, "run the scalar-vs-vectorized expression microbench and record it in -benchout")
		stmtbench   = flag.Bool("stmtbench", false, "run the prepare-once/execute-many point-query microbench and record it in -benchout")
		schedbench  = flag.Bool("schedbench", false, "run the chan-vs-morsel scheduler benchmark and record it in -benchout")
		filterbench = flag.Bool("filterbench", false, "run the blocked-vs-flat Bloom filter benchmark and record it in -benchout")
		spillbench  = flag.Bool("spillbench", false, "run the memory-budget spill benchmark (unbounded vs quarter vs sixteenth cap) and record it in -benchout")
		serverbench = flag.Bool("serverbench", false, "run the wire-protocol serving benchmark (adhoc vs cached vs prepared at 1/64/512 sessions) and record it in -benchout")
		benchout    = flag.String("benchout", "BENCH_joins.json", "output path for -joinbench / -exprbench / -stmtbench / -schedbench / -filterbench / -spillbench / -serverbench")
		overwrite   = flag.Bool("overwrite", false, "let -exprbench/-stmtbench/-schedbench/-filterbench/-spillbench/-serverbench replace a section already recorded on the latest entry (intra-PR re-measurement)")
	)
	flag.Parse()

	if *joinbench || *exprbench || *stmtbench || *schedbench || *filterbench || *spillbench || *serverbench {
		if *joinbench {
			if err := runJoinBench(*benchout, *reps); err != nil {
				fatal(err)
			}
		}
		if *exprbench {
			if err := runExprBench(*benchout, *reps, *overwrite); err != nil {
				fatal(err)
			}
		}
		if *stmtbench {
			if err := runStmtBench(*benchout, *reps, *overwrite); err != nil {
				fatal(err)
			}
		}
		if *schedbench {
			if err := runSchedBench(*benchout, *reps, *overwrite); err != nil {
				fatal(err)
			}
		}
		if *filterbench {
			if err := runFilterBench(*benchout, *reps, *overwrite); err != nil {
				fatal(err)
			}
		}
		if *spillbench {
			if err := runSpillBench(*benchout, *reps, *overwrite); err != nil {
				fatal(err)
			}
		}
		if *serverbench {
			if err := runServerBench(*benchout, *reps, *overwrite); err != nil {
				fatal(err)
			}
		}
		return
	}

	runner := harness.New(harness.Config{
		ScaleFactor:   *sf,
		Repetitions:   *reps,
		FPR:           *fpr,
		SourceMBps:    *mbps,
		PipelineDepth: *pipej,
		Verbose:       *verbose,
	})

	switch {
	case *query != "":
		spec, err := workload.ByID(*query)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		cell, err := runner.RunCell(spec, *strategy, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s / %s: time=%v ±%v state=%.2fMB rows=%d filters=%d pruned=%d (wall %v)\n",
			cell.Query, cell.Strategy, cell.Mean.Round(time.Millisecond),
			cell.CI95.Round(time.Millisecond), cell.StateMB, cell.Rows,
			cell.Filters, cell.Pruned, time.Since(start).Round(time.Millisecond))
		if *verbose {
			eng := runner.Engine(spec.Skewed)
			sql := spec.SQL(eng.Catalog())
			fmt.Println("\nSQL:")
			fmt.Println(sql)
		}

	case *all:
		for _, fig := range workload.Figures() {
			cells, err := runner.RunFigure(fig, os.Stdout)
			if err != nil {
				fatal(err)
			}
			if *summary {
				fmt.Println("shape summary:")
				harness.Summarize(cells, fig.Metric, os.Stdout)
				fmt.Println()
			}
		}

	case *figure != 0:
		fig, err := workload.FigureByNumber(*figure)
		if err != nil {
			fatal(err)
		}
		cells, err := runner.RunFigure(fig, os.Stdout)
		if err != nil {
			fatal(err)
		}
		if *summary {
			fmt.Println("shape summary:")
			harness.Summarize(cells, fig.Metric, os.Stdout)
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sipbench:", err)
	os.Exit(1)
}

// joinBenchSF pins the scale factor of the recorded join benchmark so the
// BENCH_joins.json trajectory stays comparable across PRs.
const joinBenchSF = 0.01

// joinBenchQuery is the join-heavy workload query the per-strategy numbers
// are recorded on (same query BenchmarkStrategies uses).
const joinBenchQuery = "Q2A"

// strategyBench is one strategy's measured cell in a BENCH_joins.json entry.
type strategyBench struct {
	Strategy             string  `json:"strategy"`
	NsPerOp              int64   `json:"ns_per_op"`
	AllocsPerOp          int64   `json:"allocs_per_op"`
	InputTuplesPerSec    float64 `json:"input_tuples_per_sec"`
	OperatorTuplesPerSec float64 `json:"operator_tuples_per_sec"`
	Rows                 int     `json:"rows"`
	// RepSpread is (slowest-fastest)/median across this cell's reps: the
	// run's own noise estimate. benchdiff widens its cross-entry tolerance
	// to the recorded spread (capped), so ambient load on a shared runner —
	// which this measures directly — cannot masquerade as a regression,
	// while quiet-machine entries keep the tight default gate.
	RepSpread float64 `json:"rep_spread"`
}

// scalingBench is one parallelism level of the partitioned-join scaling
// curve (the exec microbench's Unique shape, measured in-process).
type scalingBench struct {
	Parallelism       int     `json:"parallelism"`
	NsPerOp           int64   `json:"ns_per_op"`
	InputTuplesPerSec float64 `json:"input_tuples_per_sec"`
	SpeedupVsP1       float64 `json:"speedup_vs_p1"`
	RepSpread         float64 `json:"rep_spread"` // see strategyBench.RepSpread
}

// benchEntry is one PR's appended measurement in the trajectory.
type benchEntry struct {
	Generated       string          `json:"generated"`
	Machine         string          `json:"machine"`
	ScaleFactor     float64         `json:"scale_factor"`
	Query           string          `json:"query"`
	Reps            int             `json:"reps"`
	Strategies      []strategyBench `json:"strategies"`
	ParallelScaling []scalingBench  `json:"parallel_scaling,omitempty"`
}

// machineString identifies the measuring machine, including the CPU model
// when the platform exposes it: identical core counts on different silicon
// produce throughput numbers that must not be diffed against each other,
// and benchdiff keys its same-machine-only gates on this string.
func machineString() string {
	s := fmt.Sprintf("%d-core %s/%s %s", runtime.NumCPU(), runtime.GOOS, runtime.GOARCH, runtime.Version())
	if model := cpuModel(); model != "" {
		s += " (" + model + ")"
	}
	return s
}

func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, val, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(name) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}

// runJoinBench measures every strategy on the join-heavy query plus the
// partitioned join's P-scaling curve, and appends one entry to the JSON
// trajectory file, preserving the recorded "microbench" section and every
// previous entry.
func runJoinBench(outPath string, reps int) error {
	if reps < 1 {
		reps = 1
	}
	runner := harness.New(harness.Config{ScaleFactor: joinBenchSF, Repetitions: reps, SourceMBps: -1})
	eng := runner.Engine(false)
	spec, err := workload.ByID(joinBenchQuery)
	if err != nil {
		return err
	}
	sql := spec.SQL(eng.Catalog())

	var cells []strategyBench
	for _, s := range sip.AllStrategies() {
		// Warm-up run excluded from measurement (catalog caches, pools).
		if _, err := eng.Query(context.Background(), sql, sip.Options{Strategy: s, SourceBytesPerSec: 1 << 30}); err != nil {
			return err
		}
		// Per-rep measurement, reported as the median rep on every axis
		// (time, tuple rates, allocations): single-run noise on a loaded
		// machine easily exceeds the benchdiff tolerance, and the
		// trajectory gate is only as trustworthy as these numbers.
		type rep struct {
			d                  time.Duration
			opTuples, inTuples int64
			allocs             int64
		}
		repsRun := make([]rep, reps)
		var rows int64
		for i := 0; i < reps; i++ {
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			res, err := eng.Query(context.Background(), sql, sip.Options{Strategy: s, SourceBytesPerSec: 1 << 30})
			if err != nil {
				return err
			}
			d := time.Since(start)
			runtime.ReadMemStats(&ms1)
			repsRun[i] = rep{d: d, opTuples: res.TuplesProcessed, inTuples: res.TuplesScanned,
				allocs: int64(ms1.Mallocs - ms0.Mallocs)}
			rows = int64(len(res.Rows))
		}
		sort.Slice(repsRun, func(i, k int) bool { return repsRun[i].d < repsRun[k].d })
		med := repsRun[len(repsRun)/2]
		cells = append(cells, strategyBench{
			Strategy:             s.String(),
			NsPerOp:              med.d.Nanoseconds(),
			AllocsPerOp:          med.allocs,
			InputTuplesPerSec:    float64(med.inTuples) / med.d.Seconds(),
			OperatorTuplesPerSec: float64(med.opTuples) / med.d.Seconds(),
			Rows:                 int(rows),
			RepSpread:            spreadFrac(repsRun[0].d, repsRun[len(repsRun)-1].d, med.d),
		})
		c := cells[len(cells)-1]
		fmt.Printf("%-14s %12v/op %10d allocs/op %12.0f input-tuples/sec %12.0f op-tuples/sec\n",
			s.String(), time.Duration(c.NsPerOp).Round(time.Microsecond),
			c.AllocsPerOp, c.InputTuplesPerSec, c.OperatorTuplesPerSec)
	}

	scaling, err := runParallelScaling(reps)
	if err != nil {
		return err
	}

	entry := benchEntry{
		Generated:       time.Now().UTC().Format(time.RFC3339),
		Machine:         machineString(),
		ScaleFactor:     joinBenchSF,
		Query:           joinBenchQuery,
		Reps:            reps,
		Strategies:      cells,
		ParallelScaling: scaling,
	}

	// Load the existing trajectory: preserve the microbench section and all
	// previous entries, migrating the pre-trajectory layout (a single
	// top-level strategies list whose tuples_per_sec was operator volume)
	// into entry form.
	doc := map[string]any{}
	var entries []any
	if old, err := os.ReadFile(outPath); err == nil {
		var prev map[string]any
		if json.Unmarshal(old, &prev) == nil {
			if mb, ok := prev["microbench"]; ok {
				doc["microbench"] = mb
			}
			if es, ok := prev["entries"].([]any); ok {
				entries = es
			} else if legacy, ok := prev["strategies"].([]any); ok {
				for _, c := range legacy {
					if cell, ok := c.(map[string]any); ok {
						if tps, ok := cell["tuples_per_sec"]; ok {
							cell["operator_tuples_per_sec"] = tps
							delete(cell, "tuples_per_sec")
						}
					}
				}
				entries = append(entries, map[string]any{
					"generated":    prev["generated"],
					"scale_factor": prev["scale_factor"],
					"query":        prev["query"],
					"reps":         prev["reps"],
					"strategies":   legacy,
				})
			}
		}
	}
	entries = append(entries, entry)
	doc["entries"] = entries

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("appended entry %d to %s\n", len(entries), outPath)
	return nil
}

// spreadFrac is the (slowest-fastest)/median rep-time spread recorded on
// each measured cell as its noise estimate.
func spreadFrac(fastest, slowest, median time.Duration) float64 {
	if median <= 0 {
		return 0
	}
	return float64(slowest-fastest) / float64(median)
}

// scalingN sizes the scaling measurement to the exec microbench's Unique
// shape: scalingN tuples per side over as many distinct keys, one match
// per tuple.
const scalingN = 1 << 15

// runParallelScaling measures the symmetric join end to end at P ∈
// {1,2,4,8} partitions on the Unique shape and reports input-tuples/sec
// per level plus the speedup over P=1. On machines with fewer cores than
// P the curve flattens; Machine records the core count for that reason.
func runParallelScaling(reps int) ([]scalingBench, error) {
	lrows := make([]types.Tuple, scalingN)
	rrows := make([]types.Tuple, scalingN)
	for i := 0; i < scalingN; i++ {
		lrows[i] = types.Tuple{types.Int(int64(i)), types.Int(int64(i))}
		rrows[i] = types.Tuple{types.Int(int64(scalingN - 1 - i)), types.Int(int64(i))}
	}
	sch := func(b string) *types.Schema {
		return types.NewSchema(
			types.Column{Table: b, Name: "a", Kind: types.KindInt},
			types.Column{Table: b, Name: b, Kind: types.KindInt},
		)
	}
	var out []scalingBench
	for _, p := range []int{1, 2, 4, 8} {
		run := func() int {
			l := &exec.Scan{Name: "l", Rows: lrows, Sch: sch("x")}
			r := &exec.Scan{Name: "r", Rows: rrows, Sch: sch("y")}
			j := exec.NewHashJoin("scale", l, r, []int{0}, []int{0}, nil)
			ctx := exec.NewContext(stats.NewRegistry(), nil)
			ctx.Parallelism = p
			rows, err := exec.Run(ctx, j)
			if err != nil {
				fatal(err)
			}
			return len(rows)
		}
		run() // warm-up
		times := make([]time.Duration, reps)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if rows := run(); rows != scalingN {
				return nil, fmt.Errorf("parallel scaling P=%d produced %d rows, want %d", p, rows, scalingN)
			}
			times[i] = time.Since(start)
		}
		sort.Slice(times, func(i, k int) bool { return times[i] < times[k] })
		med := times[len(times)/2]
		cell := scalingBench{
			Parallelism:       p,
			NsPerOp:           med.Nanoseconds(),
			InputTuplesPerSec: float64(2*scalingN) / med.Seconds(),
			RepSpread:         spreadFrac(times[0], times[len(times)-1], med),
		}
		if len(out) > 0 {
			cell.SpeedupVsP1 = cell.InputTuplesPerSec / out[0].InputTuplesPerSec
		} else {
			cell.SpeedupVsP1 = 1
		}
		out = append(out, cell)
		fmt.Printf("parallel join  P=%d %12v/op %12.0f input-tuples/sec %5.2fx\n",
			p, time.Duration(cell.NsPerOp).Round(time.Microsecond), cell.InputTuplesPerSec, cell.SpeedupVsP1)
	}
	return out, nil
}

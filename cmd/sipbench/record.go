package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// recordBenchSection attaches a microbench section to the latest
// BENCH_joins.json trajectory entry — the one -joinbench appended for this
// PR. If that entry already carries the section (a previous PR's recorded
// baseline, when -joinbench has not yet appended this PR's entry) it
// refuses unless overwrite is set, so a baseline is never silently
// destroyed; with overwrite it replaces the section in place (intra-PR
// re-measurement). It never appends a section-only entry next to a full
// one: that would make the next benchdiff compare against an entry with
// no join/expr cells and pass those gates trivially. A section-only entry
// is created only when the file has no entries at all.
func recordBenchSection(outPath, key string, cells any, overwrite bool) error {
	doc := map[string]any{}
	if old, err := os.ReadFile(outPath); err == nil {
		var prev map[string]any
		if err := json.Unmarshal(old, &prev); err == nil {
			doc = prev
		}
	}
	entries, _ := doc["entries"].([]any)

	// Round-trip the typed cells through JSON so the section slots into the
	// generic document structure.
	var section []any
	raw, err := json.Marshal(cells)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, &section); err != nil {
		return err
	}

	if len(entries) > 0 {
		last, ok := entries[len(entries)-1].(map[string]any)
		if !ok {
			return fmt.Errorf("%s: %s has a malformed last entry", key, outPath)
		}
		if _, taken := last[key]; taken && !overwrite {
			return fmt.Errorf("entry %d of %s already has %s (a recorded baseline); run `make joinbench` to append this PR's entry first, or pass -overwrite to replace it",
				len(entries), outPath, key)
		}
		last[key] = section
	} else {
		entries = append(entries, map[string]any{
			"generated": time.Now().UTC().Format(time.RFC3339),
			"machine":   machineString(),
			key:         section,
		})
	}
	doc["entries"] = entries

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("recorded %s on entry %d of %s\n", key, len(entries), outPath)
	return nil
}

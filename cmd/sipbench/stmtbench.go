package main

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	sip "repro"
)

// The prepared-statement microbench measures the prepare-once/execute-many
// path against per-call ad-hoc execution on a point query: the shape a
// high-QPS serving workload runs millions of times. Three paths are
// recorded:
//
//   - adhoc: Engine.Query with a distinct literal per call — every call
//     pays parse + bind + optimize (each SQL text is a plan-cache miss),
//     the pre-redesign behavior of the public API.
//   - cached: Engine.Query with the same SQL text per call — the plan
//     cache absorbs parse/bind/optimize after the first call.
//   - prepared: Stmt.Query with a `?` argument — parse/bind/optimize ran
//     once at Prepare; each call instantiates and runs the compiled plan.
//
// The section is recorded on the latest BENCH_joins.json entry
// ("stmt_microbench") so `make benchdiff` can gate it PR-over-PR.

// stmtBenchN is the number of executions measured per path per rep.
const stmtBenchN = 400

// stmtBenchSF pins the data scale; the query touches a single small
// relation so the measurement isolates per-call overhead.
const stmtBenchSF = 0.01

type stmtBenchCell struct {
	Name            string  `json:"name"`
	AdhocQPS        float64 `json:"adhoc_queries_per_sec"`
	CachedQPS       float64 `json:"cached_queries_per_sec"`
	PreparedQPS     float64 `json:"prepared_queries_per_sec"`
	SpeedupPrepared float64 `json:"speedup_prepared_vs_adhoc"`
	SpeedupCached   float64 `json:"speedup_cached_vs_adhoc"`
}

// measureQPS runs fn (one query execution per call) stmtBenchN times per
// rep and returns the median-rep queries/sec.
func measureQPS(reps int, fn func(i int) error) (float64, error) {
	if err := fn(0); err != nil { // warm-up
		return 0, err
	}
	times := make([]time.Duration, reps)
	for r := 0; r < reps; r++ {
		// Collect between reps so one path's garbage is not billed to the
		// next path's measurement.
		runtime.GC()
		start := time.Now()
		for i := 0; i < stmtBenchN; i++ {
			if err := fn(i); err != nil {
				return 0, err
			}
		}
		times[r] = time.Since(start)
	}
	sort.Slice(times, func(i, k int) bool { return times[i] < times[k] })
	med := times[len(times)/2]
	return float64(stmtBenchN) / med.Seconds(), nil
}

func runStmtBench(outPath string, reps int, overwrite bool) error {
	if reps < 1 {
		reps = 1
	}
	ctx := context.Background()
	eng := sip.NewEngine(sip.GenerateTPCH(sip.DataConfig{ScaleFactor: stmtBenchSF}))

	// Point query: one row out of NATION by key. The ad-hoc path runs on an
	// engine with caching disabled, so every call pays parse + bind +
	// optimize — the pre-redesign per-call cost (a distinct literal per
	// call would equally defeat the cache, but would slowly pollute it).
	uncached := sip.NewEngineWithConfig(eng.Catalog(), sip.EngineConfig{PlanCacheSize: -1})
	adhocUncached := func(i int) error {
		sql := fmt.Sprintf("SELECT n_name, n_regionkey FROM nation WHERE n_nationkey = %d", i%25)
		_, err := uncached.Query(ctx, sql, sip.Options{})
		return err
	}

	cached := func(i int) error {
		_, err := eng.Query(ctx, "SELECT n_name, n_regionkey FROM nation WHERE n_nationkey = 7", sip.Options{})
		return err
	}

	stmt, err := eng.Prepare(ctx, "SELECT n_name, n_regionkey FROM nation WHERE n_nationkey = ?")
	if err != nil {
		return err
	}
	prepared := func(i int) error {
		res, err := stmt.Query(ctx, sip.Int(int64(i%25)))
		if err != nil {
			return err
		}
		if len(res.Rows) != 1 {
			return fmt.Errorf("stmtbench: point query returned %d rows, want 1", len(res.Rows))
		}
		return nil
	}

	adhocQPS, err := measureQPS(reps, adhocUncached)
	if err != nil {
		return err
	}
	cachedQPS, err := measureQPS(reps, cached)
	if err != nil {
		return err
	}
	preparedQPS, err := measureQPS(reps, prepared)
	if err != nil {
		return err
	}

	cell := stmtBenchCell{
		Name:            "point_nation",
		AdhocQPS:        adhocQPS,
		CachedQPS:       cachedQPS,
		PreparedQPS:     preparedQPS,
		SpeedupPrepared: preparedQPS / adhocQPS,
		SpeedupCached:   cachedQPS / adhocQPS,
	}
	fmt.Printf("%-14s adhoc %10.0f q/s  cached %10.0f q/s (%.2fx)  prepared %10.0f q/s (%.2fx)\n",
		cell.Name, cell.AdhocQPS, cell.CachedQPS, cell.SpeedupCached,
		cell.PreparedQPS, cell.SpeedupPrepared)
	return recordBenchSection(outPath, "stmt_microbench", []stmtBenchCell{cell}, overwrite)
}

package main

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/expr"
	"repro/internal/types"
)

// The expression microbench measures the vectorized evaluation layer
// (expr.Compile / EvalBatch / EvalBool) against the scalar reference Eval
// on the two shapes the executor runs hottest: a selective conjunctive
// filter and a 4-expression projection. Both paths process the same
// pre-batched tuples, so the comparison isolates expression evaluation
// from scan, channel, and operator overhead.
//
// Results are recorded on the latest BENCH_joins.json entry under
// "expr_microbench" (creating an entry when the file has none), so the
// benchdiff gate can flag >10% regressions PR-over-PR like the join
// numbers.

// exprBenchN is the total tuple count; exprBenchBatch mirrors the
// executor's BatchSize.
const (
	exprBenchN     = 1 << 16
	exprBenchBatch = 128
)

// exprBenchCell is one recorded microbench shape.
type exprBenchCell struct {
	Name                 string  `json:"name"`
	ScalarTuplesPerSec   float64 `json:"scalar_tuples_per_sec"`
	VectorTuplesPerSec   float64 `json:"vector_tuples_per_sec"`
	Speedup              float64 `json:"speedup"`
	ScalarAllocsPerBatch float64 `json:"scalar_allocs_per_batch"`
	VectorAllocsPerBatch float64 `json:"vector_allocs_per_batch"`
}

// exprBenchData builds the synthetic batches: a,b,d integers, c float.
func exprBenchData() [][]types.Tuple {
	var batches [][]types.Tuple
	for base := 0; base < exprBenchN; base += exprBenchBatch {
		b := make([]types.Tuple, 0, exprBenchBatch)
		for i := base; i < base+exprBenchBatch && i < exprBenchN; i++ {
			b = append(b, types.Tuple{
				types.Int(int64(i % 100)),
				types.Int(int64((i * 7) % 100)),
				types.Float(float64(i%1000) / 8),
				types.Int(int64(i % 13)),
			})
		}
		batches = append(batches, b)
	}
	return batches
}

func colRef(idx int) *expr.ColRef {
	return &expr.ColRef{Idx: idx, Col: types.Column{Name: fmt.Sprintf("c%d", idx), Kind: types.KindInt}}
}

// benchPass runs fn over every batch once and returns elapsed time plus
// mallocs performed, for tuples/s and allocs-per-batch reporting.
func benchPass(batches [][]types.Tuple, fn func(b []types.Tuple)) (time.Duration, int64) {
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for _, b := range batches {
		fn(b)
	}
	d := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return d, int64(ms1.Mallocs - ms0.Mallocs)
}

// measure reports the median-of-reps throughput and the allocs/batch of
// the median rep for one evaluation loop.
func measure(batches [][]types.Tuple, reps int, fn func(b []types.Tuple)) (tuplesPerSec float64, allocsPerBatch float64) {
	type rep struct {
		d      time.Duration
		allocs int64
	}
	fn(batches[0]) // warm scratch outside the measurement
	runs := make([]rep, reps)
	for i := range runs {
		d, a := benchPass(batches, fn)
		runs[i] = rep{d: d, allocs: a}
	}
	sort.Slice(runs, func(i, k int) bool { return runs[i].d < runs[k].d })
	med := runs[len(runs)/2]
	return float64(exprBenchN) / med.d.Seconds(), float64(med.allocs) / float64(len(batches))
}

// runExprBench measures both shapes and records the section.
func runExprBench(outPath string, reps int, overwrite bool) error {
	if reps < 1 {
		reps = 1
	}
	batches := exprBenchData()

	var cells []exprBenchCell

	// Shape 1: selective filter, the Filter operator's exact work loop.
	// (a < 10 AND b >= 50) keeps ~5% of tuples.
	pred := &expr.Binary{Op: expr.OpAnd,
		L: &expr.Binary{Op: expr.OpLt, L: colRef(0), R: &expr.Const{V: types.Int(10)}},
		R: &expr.Binary{Op: expr.OpGe, L: colRef(1), R: &expr.Const{V: types.Int(50)}},
	}
	var kept []types.Tuple
	scalarTPS, scalarAPB := measure(batches, reps, func(b []types.Tuple) {
		kept = kept[:0]
		for _, t := range b {
			if pred.Eval(t).Truth() {
				kept = append(kept, t)
			}
		}
	})
	cpred := expr.Compile(pred)
	ident := identity(exprBenchBatch)
	sel := make([]int32, 0, exprBenchBatch)
	vecTPS, vecAPB := measure(batches, reps, func(b []types.Tuple) {
		sel = cpred.EvalBool(b, ident[:len(b)], sel)
	})
	cells = append(cells, exprBenchCell{
		Name:               "filter_selective",
		ScalarTuplesPerSec: scalarTPS, VectorTuplesPerSec: vecTPS,
		Speedup:              vecTPS / scalarTPS,
		ScalarAllocsPerBatch: scalarAPB, VectorAllocsPerBatch: vecAPB,
	})

	// Shape 2: 4-expression projection, the Project operator's work loop
	// (rows are preallocated in both paths, mirroring the executor's
	// arena, so only evaluation differs).
	exprs := []expr.Expr{
		&expr.Binary{Op: expr.OpAdd, L: colRef(0), R: colRef(1)},
		&expr.Binary{Op: expr.OpMul, L: colRef(0), R: &expr.Const{V: types.Int(2)}},
		&expr.Binary{Op: expr.OpDiv, L: &expr.ColRef{Idx: 2, Col: types.Column{Name: "c2", Kind: types.KindFloat}}, R: &expr.Const{V: types.Float(2.5)}},
		&expr.Binary{Op: expr.OpSub, L: colRef(0), R: colRef(3)},
	}
	width := len(exprs)
	rows := make([]types.Tuple, exprBenchBatch)
	backing := make([]types.Value, exprBenchBatch*width)
	for i := range rows {
		rows[i] = backing[i*width : (i+1)*width : (i+1)*width]
	}
	scalarTPS, scalarAPB = measure(batches, reps, func(b []types.Tuple) {
		for i, t := range b {
			row := rows[i]
			for j, e := range exprs {
				row[j] = e.Eval(t)
			}
		}
	})
	compiled := make([]*expr.Compiled, width)
	for i, e := range exprs {
		compiled[i] = expr.Compile(e)
	}
	col := make([]types.Value, exprBenchBatch)
	vecTPS, vecAPB = measure(batches, reps, func(b []types.Tuple) {
		s := ident[:len(b)]
		for j, c := range compiled {
			c.EvalBatch(b, s, col)
			for _, lane := range s {
				rows[lane][j] = col[lane]
			}
		}
	})
	cells = append(cells, exprBenchCell{
		Name:               "project_4expr",
		ScalarTuplesPerSec: scalarTPS, VectorTuplesPerSec: vecTPS,
		Speedup:              vecTPS / scalarTPS,
		ScalarAllocsPerBatch: scalarAPB, VectorAllocsPerBatch: vecAPB,
	})

	for _, c := range cells {
		fmt.Printf("%-18s scalar %12.0f t/s  vector %12.0f t/s  %5.2fx  allocs/batch %.2f -> %.2f\n",
			c.Name, c.ScalarTuplesPerSec, c.VectorTuplesPerSec, c.Speedup,
			c.ScalarAllocsPerBatch, c.VectorAllocsPerBatch)
	}
	return recordBenchSection(outPath, "expr_microbench", cells, overwrite)
}

func identity(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}

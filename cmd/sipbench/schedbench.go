package main

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/types"
)

// The scheduler benchmark compares the two execution schedulers head to
// head on the partitioned join's Unique shape (scalingN tuples per side,
// one match per tuple — the same shape the parallel_scaling section
// measures):
//
//   - chan at P=1: the goroutine-per-operator pipeline, the engine default
//     and the baseline every PR's trajectory has recorded so far.
//   - morsel at P ∈ {1,2,4,8}: the work-stealing pool, whose scaling curve
//     is the point of the morsel path and whose P=1 cost is its overhead
//     floor (task dispatch + inboxes instead of channel sends).
//
// Each cell records the machine's core count: the curve flattens at
// P > cores, so a cell is only interpretable next to that number. The
// section is recorded on the latest BENCH_joins.json entry ("sched_bench");
// `make benchdiff` gates it PR-over-PR per (scheduler, P) cell and — intra
// entry, so it holds even on the section's first appearance — requires
// morsel to stay within tolerance of chan at P=1.

type schedBenchCell struct {
	Scheduler         string  `json:"scheduler"`
	Parallelism       int     `json:"parallelism"`
	Cores             int     `json:"cores"`
	NsPerOp           int64   `json:"ns_per_op"`
	InputTuplesPerSec float64 `json:"input_tuples_per_sec"`
	SpeedupVsP1       float64 `json:"speedup_vs_p1"` // vs the same scheduler's P=1 cell
}

func runSchedBench(outPath string, reps int, overwrite bool) error {
	if reps < 1 {
		reps = 1
	}
	lrows := make([]types.Tuple, scalingN)
	rrows := make([]types.Tuple, scalingN)
	for i := 0; i < scalingN; i++ {
		lrows[i] = types.Tuple{types.Int(int64(i)), types.Int(int64(i))}
		rrows[i] = types.Tuple{types.Int(int64(scalingN - 1 - i)), types.Int(int64(i))}
	}
	sch := func(b string) *types.Schema {
		return types.NewSchema(
			types.Column{Table: b, Name: "a", Kind: types.KindInt},
			types.Column{Table: b, Name: b, Kind: types.KindInt},
		)
	}
	run := func(scheduler string, p int) int {
		l := &exec.Scan{Name: "l", Rows: lrows, Sch: sch("x")}
		r := &exec.Scan{Name: "r", Rows: rrows, Sch: sch("y")}
		j := exec.NewHashJoin("sched", l, r, []int{0}, []int{0}, nil)
		ctx := exec.NewContext(stats.NewRegistry(), nil)
		ctx.Parallelism = p
		ctx.Scheduler = scheduler
		rows, err := exec.Run(ctx, j)
		if err != nil {
			fatal(err)
		}
		return len(rows)
	}
	measure := func(scheduler string, p int) (time.Duration, error) {
		run(scheduler, p) // warm-up
		times := make([]time.Duration, reps)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if rows := run(scheduler, p); rows != scalingN {
				return 0, fmt.Errorf("schedbench %s P=%d produced %d rows, want %d",
					scheduler, p, rows, scalingN)
			}
			times[i] = time.Since(start)
		}
		sort.Slice(times, func(i, k int) bool { return times[i] < times[k] })
		return times[len(times)/2], nil
	}

	type level struct {
		scheduler string
		p         int
	}
	levels := []level{{exec.SchedulerChan, 1}, {exec.SchedulerMorsel, 1},
		{exec.SchedulerMorsel, 2}, {exec.SchedulerMorsel, 4}, {exec.SchedulerMorsel, 8}}
	cores := runtime.NumCPU()
	var cells []schedBenchCell
	p1 := map[string]float64{} // per scheduler: its P=1 rate, for SpeedupVsP1
	for _, lv := range levels {
		med, err := measure(lv.scheduler, lv.p)
		if err != nil {
			return err
		}
		cell := schedBenchCell{
			Scheduler:         lv.scheduler,
			Parallelism:       lv.p,
			Cores:             cores,
			NsPerOp:           med.Nanoseconds(),
			InputTuplesPerSec: float64(2*scalingN) / med.Seconds(),
		}
		if base, ok := p1[lv.scheduler]; ok {
			cell.SpeedupVsP1 = cell.InputTuplesPerSec / base
		} else {
			p1[lv.scheduler] = cell.InputTuplesPerSec
			cell.SpeedupVsP1 = 1
		}
		cells = append(cells, cell)
		fmt.Printf("sched %-6s P=%d %12v/op %12.0f input-tuples/sec %5.2fx (%d cores)\n",
			lv.scheduler, lv.p, time.Duration(cell.NsPerOp).Round(time.Microsecond),
			cell.InputTuplesPerSec, cell.SpeedupVsP1, cores)
	}
	return recordBenchSection(outPath, "sched_bench", cells, overwrite)
}

package sip

import (
	"context"
	"sort"
	"strings"
	"testing"
)

// testEngine builds a small engine shared by the API tests.
func testEngine(t testing.TB) *Engine {
	t.Helper()
	cat := GenerateTPCH(DataConfig{ScaleFactor: 0.005})
	return NewEngine(cat)
}

// canon renders rows order-independently for comparison.
func canon(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = canonValue(v)
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func mustRows(t *testing.T, e *Engine, sql string, opts Options) []Row {
	t.Helper()
	res, err := e.Query(context.Background(), sql, opts)
	if err != nil {
		t.Fatalf("query failed: %v\nsql: %s", err, sql)
	}
	return res.Rows
}

func TestSimpleSelect(t *testing.T) {
	e := testEngine(t)
	rows := mustRows(t, e, `SELECT n_name FROM nation WHERE n_regionkey = 3`, Options{})
	if len(rows) != 5 {
		t.Fatalf("expected 5 European nations, got %d", len(rows))
	}
}

func TestJoinAndAggregate(t *testing.T) {
	e := testEngine(t)
	sql := `SELECT n_name, count(*) FROM supplier, nation
	        WHERE s_nationkey = n_nationkey GROUP BY n_name`
	rows := mustRows(t, e, sql, Options{})
	total := int64(0)
	for _, r := range rows {
		c, _ := r[1].AsInt()
		total += c
	}
	if total != 50 { // SF 0.005 → 50 suppliers
		t.Fatalf("expected counts summing to 50 suppliers, got %d", total)
	}
}

// strategiesAgree asserts every strategy returns the same multiset of rows.
func strategiesAgree(t *testing.T, e *Engine, sql string) {
	t.Helper()
	base := canon(mustRows(t, e, sql, Options{Strategy: Baseline}))
	for _, s := range []Strategy{Magic, FeedForward, CostBased} {
		got := canon(mustRows(t, e, sql, Options{Strategy: s}))
		if len(got) != len(base) {
			t.Fatalf("%v returned %d rows, baseline %d\nsql: %s", s, len(got), len(base), sql)
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("%v row %d = %q, baseline %q\nsql: %s", s, i, got[i], base[i], sql)
			}
		}
	}
}

func TestStrategiesAgreeOnJoin(t *testing.T) {
	e := testEngine(t)
	strategiesAgree(t, e, `
		SELECT s_name, p_name
		FROM part, supplier, partsupp
		WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
		  AND p_size = 15 AND s_nation = 'FRANCE'`)
}

func TestStrategiesAgreeOnCorrelatedSubquery(t *testing.T) {
	e := testEngine(t)
	strategiesAgree(t, e, `
		SELECT s_name, s_acctbal
		FROM part, supplier, partsupp
		WHERE p_size = 15
		  AND p_partkey = ps_partkey AND s_suppkey = ps_suppkey
		  AND ps_supplycost = (SELECT min(ps_supplycost) FROM partsupp, supplier
		       WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
		         AND s_nation = 'FRANCE')`)
}

func TestStrategiesAgreeOnDerivedTables(t *testing.T) {
	e := testEngine(t)
	strategiesAgree(t, e, `
		SELECT DISTINCT p_partkey
		FROM part, partsupp ps1,
		  (SELECT ps_partkey AS partkey, sum(ps_availqty) AS avail
		   FROM partsupp GROUP BY ps_partkey) avail
		WHERE p_partkey = ps_partkey
		  AND p_partkey = avail.partkey
		  AND 2 * ps_supplycost < p_retailprice
		  AND avail < 15000`)
}

func TestAggregateValuesMatchAcrossStrategies(t *testing.T) {
	e := testEngine(t)
	strategiesAgree(t, e, `
		SELECT n_name, sum(l_extendedprice * (1 - l_discount))
		FROM orders, lineitem, supplier, nation
		WHERE l_orderkey = o_orderkey AND l_suppkey = s_suppkey
		  AND s_nationkey = n_nationkey
		  AND o_orderdate >= '1995-01-01' AND o_orderdate < '1996-01-01'
		GROUP BY n_name`)
}

func TestExplain(t *testing.T) {
	e := testEngine(t)
	out, err := e.Explain(`SELECT p_name FROM part WHERE p_size = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "part") {
		t.Fatalf("explain output missing table: %s", out)
	}
}

// canonValue rounds floats for comparison: parallel execution accumulates
// SUM/AVG in nondeterministic order, so exact bit equality is not expected
// (or required) across strategies.
func canonValue(v Value) string { return FormatValueRounded(v, 9) }

package sip

// Chaos suite for the fault-injected source layer: deterministic (seeded)
// fault profiles on remote links and delayed scans, exercised against the
// recovery policy (retries, per-attempt timeouts, backoff, breakers) and
// both failure modes. The acceptance invariant, per run: the query either
// completes with results identical to a fault-free run, completes Partial
// with an accurate Result.IncompleteTables annotation and a row subset, or
// fails with a typed *SourceError — never a hang, a silent truncation, or a
// goroutine leak.
//
// The fixed-seed tests below run in tier-1 (`go test .`); the full
// seeds × profiles × modes × strategies matrix is gated behind SIP_CHAOS=1
// (`make chaos` runs it under -race).

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// chaosSQL is a pure select-project-join query (no aggregation), so a
// partial run's rows are necessarily a sub-multiset of the fault-free rows.
const chaosSQL = `
	SELECT s_name, ps_availqty FROM supplier, partsupp
	WHERE s_suppkey = ps_suppkey AND ps_availqty < 500`

// fastRetry keeps backoff short so dead-source tests spend milliseconds,
// not the default half-second caps.
func fastRetry() RetryPolicy {
	return RetryPolicy{
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     5 * time.Millisecond,
		AttemptTimeout: 250 * time.Millisecond,
	}
}

// TestChaosSmokeRemoteTransient: a flaky remote link (transient failures at
// a rate retries comfortably absorb) must not change the answer, and the
// recovery counters must show the absorbed faults.
func TestChaosSmokeRemoteTransient(t *testing.T) {
	e := testEngine(t)
	base := canon(mustRows(t, e, chaosSQL, Options{}))

	res, err := e.Query(context.Background(), chaosSQL, Options{
		RemoteTables: map[string]int{"partsupp": 1},
		Faults:       &FaultProfile{Seed: 7, TransientRate: 0.2},
		Retry:        fastRetry(),
	})
	if err != nil {
		t.Fatalf("transient faults were not absorbed by retries: %v", err)
	}
	if got := canon(res.Rows); len(got) != len(base) {
		t.Fatalf("faulty run returned %d rows, fault-free %d", len(got), len(base))
	} else {
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("faulty run row %d = %q, fault-free %q", i, got[i], base[i])
			}
		}
	}
	if !res.Complete() {
		t.Fatalf("recovered run marked incomplete: %+v", res.IncompleteTables[0])
	}
	if res.Retries == 0 {
		t.Fatal("seeded transient profile produced no retries")
	}
}

// TestChaosSmokeFailMode: a source that stays dead through the whole retry
// budget surfaces a typed *SourceError naming the table, site, and attempt
// count — under the default FailOnSourceError mode.
func TestChaosSmokeFailMode(t *testing.T) {
	e := testEngine(t)
	base := runtime.NumGoroutine()

	res, err := e.Query(context.Background(), chaosSQL, Options{
		DelayedTables: []string{"partsupp"},
		Delay:         &DelayConfig{Initial: time.Millisecond},
		Faults:        &FaultProfile{Seed: 1, TransientRate: 1},
		Retry:         fastRetry(),
	})
	if err == nil {
		t.Fatalf("permanently dead source did not fail the query (got %d rows)", len(res.Rows))
	}
	var se *SourceError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T (%v), want *SourceError", err, err)
	}
	if se.Table != "partsupp" {
		t.Fatalf("SourceError.Table = %q, want partsupp", se.Table)
	}
	if se.Attempts != 4 { // 1 try + default 3 retries
		t.Fatalf("SourceError.Attempts = %d, want 4", se.Attempts)
	}
	waitGoroutines(t, base)
}

// TestChaosSmokePartialMode: the same dead source under
// PartialOnSourceError completes the query without its tuples and annotates
// the result accurately.
func TestChaosSmokePartialMode(t *testing.T) {
	e := testEngine(t)
	res, err := e.Query(context.Background(), chaosSQL, Options{
		DelayedTables:   []string{"partsupp"},
		Delay:           &DelayConfig{Initial: time.Millisecond},
		Faults:          &FaultProfile{Seed: 1, TransientRate: 1},
		Retry:           fastRetry(),
		OnSourceFailure: PartialOnSourceError,
	})
	if err != nil {
		t.Fatalf("partial mode failed instead of degrading: %v", err)
	}
	if res.Complete() {
		t.Fatal("partial result not marked incomplete")
	}
	if len(res.IncompleteTables) != 1 || res.IncompleteTables[0].Table != "partsupp" {
		t.Fatalf("IncompleteTables = %+v, want exactly [partsupp]", res.IncompleteTables)
	}
	// The source died on its first flush, so none of its tuples (and hence
	// no join output) arrived.
	if len(res.Rows) != 0 {
		t.Fatalf("dead-from-the-start source still produced %d rows", len(res.Rows))
	}
	if res.Retries != 3 {
		t.Fatalf("Result.Retries = %d, want 3", res.Retries)
	}
}

// TestChaosSmokeStallBreaker: a remote site that stalls every transfer
// forces per-attempt timeouts; enough consecutive failures must open the
// site's circuit breaker, visible in Result.BreakerTransitions. Partial
// mode keeps the Result (and its counters) reachable.
func TestChaosSmokeStallBreaker(t *testing.T) {
	e := testEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := e.Query(ctx, chaosSQL, Options{
		RemoteTables: map[string]int{"partsupp": 1},
		Faults:       &FaultProfile{Seed: 3, StallRate: 1},
		Retry: RetryPolicy{
			MaxRetries:      6,
			AttemptTimeout:  20 * time.Millisecond,
			BaseBackoff:     time.Millisecond,
			MaxBackoff:      5 * time.Millisecond,
			BreakerFailures: 3,
			BreakerCooldown: 10 * time.Millisecond,
		},
		OnSourceFailure: PartialOnSourceError,
	})
	if err != nil {
		t.Fatalf("partial mode failed instead of degrading: %v", err)
	}
	if res.Complete() {
		t.Fatal("stalled source not reported incomplete")
	}
	if res.BreakerTransitions == 0 {
		t.Fatal("3 consecutive timeouts did not open the breaker")
	}
	if res.Retries == 0 {
		t.Fatal("stalled transfers recorded no retries")
	}
}

// TestChaosSmokeWastedBytes: messages cut mid-flight account the bytes that
// crossed the link before the failure as wasted, separate from the
// sent-byte figures.
func TestChaosSmokeWastedBytes(t *testing.T) {
	e := testEngine(t)
	res, err := e.Query(context.Background(), chaosSQL, Options{
		RemoteTables:    map[string]int{"partsupp": 1},
		Faults:          &FaultProfile{Seed: 11, CutRate: 0.4},
		Retry:           fastRetry(),
		OnSourceFailure: PartialOnSourceError,
	})
	if err != nil {
		t.Fatalf("cut profile failed the query: %v", err)
	}
	if res.WastedBytes == 0 {
		t.Fatal("cut transfers recorded no wasted bytes")
	}
}

// TestChaosCancelMidBackoff: cancelling the query while the retrier sleeps
// between attempts must return context.Canceled promptly — the backoff
// timer is interruptible, not slept out.
func TestChaosCancelMidBackoff(t *testing.T) {
	e := testEngine(t)
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := e.QueryStream(ctx, chaosSQL, Options{
		DelayedTables: []string{"partsupp"},
		Delay:         &DelayConfig{Initial: time.Millisecond},
		Faults:        &FaultProfile{Seed: 1, TransientRate: 1},
		Retry: RetryPolicy{
			BaseBackoff: 30 * time.Second, // cancellation must not wait this out
			MaxBackoff:  30 * time.Second,
			Jitter:      -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let the first attempt fail and the retrier enter its 30s backoff,
	// then cancel and require a prompt unwind.
	time.Sleep(100 * time.Millisecond)
	cancel()
	t0 := time.Now()
	for rows.Next() {
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("cancel during backoff took %v to unwind", elapsed)
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
	waitGoroutines(t, base)
}

// TestChaosSmokeSchedulerDifferential is the tier-1 chan-vs-morsel
// differential: on the same engine and fault seeds, the morsel scheduler
// must return exactly the chan scheduler's rows — fault-free, with
// transient remote faults absorbed by retries, and in partial mode with a
// dead delayed source, where the abandoned prefix (and hence the
// IncompleteTables annotation) must match too. Goroutine-leak checked.
func TestChaosSmokeSchedulerDifferential(t *testing.T) {
	e := testEngine(t)
	goroutineBase := runtime.NumGoroutine()

	cases := []struct {
		name string
		opts Options
	}{
		{"fault-free", Options{Strategy: CostBased}},
		{"remote-transient", Options{
			Strategy:     CostBased,
			RemoteTables: map[string]int{"partsupp": 1},
			Faults:       &FaultProfile{Seed: 7, TransientRate: 0.2},
			Retry:        fastRetry(),
		}},
		{"partial-dead-delayed", Options{
			DelayedTables:   []string{"partsupp"},
			Delay:           &DelayConfig{Initial: time.Millisecond, EveryN: 100, Pause: 0},
			Faults:          &FaultProfile{Seed: 5, TransientRate: 0.35},
			Retry:           fastRetry(),
			OnSourceFailure: PartialOnSourceError,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chanOpts, morselOpts := tc.opts, tc.opts
			chanOpts.Scheduler = SchedulerChan
			morselOpts.Scheduler = SchedulerMorsel
			cres, err := e.Query(context.Background(), chaosSQL, chanOpts)
			if err != nil {
				t.Fatalf("chan: %v", err)
			}
			mres, err := e.Query(context.Background(), chaosSQL, morselOpts)
			if err != nil {
				t.Fatalf("morsel: %v", err)
			}
			want, got := canon(cres.Rows), canon(mres.Rows)
			if len(want) != len(got) {
				t.Fatalf("morsel returned %d rows, chan %d", len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("row %d: morsel %q, chan %q", i, got[i], want[i])
				}
			}
			if cres.Complete() != mres.Complete() {
				t.Fatalf("completeness differs: chan %v, morsel %v",
					cres.Complete(), mres.Complete())
			}
			if len(cres.IncompleteTables) != len(mres.IncompleteTables) {
				t.Fatalf("IncompleteTables differ: chan %+v, morsel %+v",
					cres.IncompleteTables, mres.IncompleteTables)
			}
			for i := range cres.IncompleteTables {
				if cres.IncompleteTables[i].Table != mres.IncompleteTables[i].Table {
					t.Fatalf("incomplete table %d: chan %q, morsel %q", i,
						cres.IncompleteTables[i].Table, mres.IncompleteTables[i].Table)
				}
			}
		})
	}
	waitGoroutines(t, goroutineBase)
}

// TestChaosSmokeMorselCancelNoLeak cancels a morsel-scheduled streaming
// query mid-backoff and requires a prompt, leak-free unwind (the pool
// supervisor, workers, and sequential sources must all exit).
func TestChaosSmokeMorselCancelNoLeak(t *testing.T) {
	e := testEngine(t)
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := e.QueryStream(ctx, chaosSQL, Options{
		Scheduler:     SchedulerMorsel,
		DelayedTables: []string{"partsupp"},
		Delay:         &DelayConfig{Initial: time.Millisecond},
		Faults:        &FaultProfile{Seed: 1, TransientRate: 1},
		Retry: RetryPolicy{
			BaseBackoff: 30 * time.Second, // cancellation must not wait this out
			MaxBackoff:  30 * time.Second,
			Jitter:      -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	cancel()
	t0 := time.Now()
	for rows.Next() {
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("cancel during backoff took %v to unwind", elapsed)
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
	waitGoroutines(t, base)
}

// TestChaosDifferentialFailMode: under FailOnSourceError, fault injection
// plus retries must be invisible in the answer — every seed that completes
// returns rows identical to the fault-free run.
func TestChaosDifferentialFailMode(t *testing.T) {
	e := testEngine(t)
	base := canon(mustRows(t, e, chaosSQL, Options{Strategy: CostBased}))

	profile := FaultProfile{TransientRate: 0.08, DropRate: 0.04, CutRate: 0.08}
	completed, retries := 0, int64(0)
	for seed := int64(1); seed <= 5; seed++ {
		p := profile
		p.Seed = seed
		res, err := e.Query(context.Background(), chaosSQL, Options{
			Strategy:     CostBased,
			RemoteTables: map[string]int{"partsupp": 1},
			Faults:       &p,
			Retry:        fastRetry(),
		})
		if err != nil {
			var se *SourceError
			if !errors.As(err, &se) {
				t.Fatalf("seed %d: failed with %T (%v), want *SourceError", seed, err, err)
			}
			continue
		}
		completed++
		retries += res.Retries
		got := canon(res.Rows)
		if len(got) != len(base) {
			t.Fatalf("seed %d: %d rows, fault-free run has %d", seed, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("seed %d: row %d = %q, fault-free %q", seed, i, got[i], base[i])
			}
		}
	}
	if completed == 0 {
		t.Fatal("no seed completed; profile too hostile for a differential check")
	}
	if retries == 0 {
		t.Fatal("no retries across 5 seeds; profile injected nothing")
	}
}

// TestChaosPooledStats: the pooled per-query registry mode keeps the scalar
// Result counters while recycling the registry itself (Result.Stats nil),
// across sequential, concurrent, and faulty runs.
func TestChaosPooledStats(t *testing.T) {
	cat := GenerateTPCH(DataConfig{ScaleFactor: 0.005})
	plain := NewEngine(cat)
	pooled := NewEngineWithConfig(cat, EngineConfig{PooledStats: true})
	base := canon(mustRows(t, plain, chaosSQL, Options{}))

	check := func(res *Result) {
		t.Helper()
		if res.Stats != nil {
			t.Fatal("pooled mode leaked the recycled registry via Result.Stats")
		}
		if res.TuplesScanned == 0 {
			t.Fatal("pooled run lost its scalar counters")
		}
		got := canon(res.Rows)
		if len(got) != len(base) {
			t.Fatalf("pooled run returned %d rows, want %d", len(got), len(base))
		}
	}
	for i := 0; i < 3; i++ {
		res, err := pooled.Query(context.Background(), chaosSQL, Options{})
		if err != nil {
			t.Fatal(err)
		}
		check(res)
	}
	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 3; i++ {
				res, err := pooled.Query(context.Background(), chaosSQL, Options{})
				if err != nil {
					errc <- err
					return
				}
				if res.Stats != nil || res.TuplesScanned == 0 || len(res.Rows) != len(base) {
					errc <- fmt.Errorf("bad pooled result: stats=%v scanned=%d rows=%d",
						res.Stats, res.TuplesScanned, len(res.Rows))
					return
				}
			}
			errc <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	// Faulty pooled run: recovery counters survive the registry recycling.
	res, err := pooled.Query(context.Background(), chaosSQL, Options{
		RemoteTables: map[string]int{"partsupp": 1},
		Faults:       &FaultProfile{Seed: 7, TransientRate: 0.2},
		Retry:        fastRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	check(res)
	if res.Retries == 0 {
		t.Fatal("pooled faulty run lost its retry counter")
	}
}

// TestChaosMatrix is the full chaos sweep: seeds × fault profiles ×
// failure modes × strategies, each run bounded by a deadline. Gated behind
// SIP_CHAOS=1 (several minutes under -race); `make chaos` runs it.
func TestChaosMatrix(t *testing.T) {
	if os.Getenv("SIP_CHAOS") == "" {
		t.Skip("set SIP_CHAOS=1 (or run `make chaos`) for the full fault matrix")
	}
	e := testEngine(t)
	goroutineBase := runtime.NumGoroutine()
	base := canon(mustRows(t, e, chaosSQL, Options{}))
	baseCount := map[string]int{}
	for _, r := range base {
		baseCount[r]++
	}

	profiles := []struct {
		name string
		p    FaultProfile
	}{
		{"transient", FaultProfile{TransientRate: 0.15}},
		{"drop", FaultProfile{DropRate: 0.15}},
		{"stall", FaultProfile{StallRate: 0.10}},
		{"cut", FaultProfile{CutRate: 0.20}},
		{"mixed", FaultProfile{TransientRate: 0.05, DropRate: 0.05, StallRate: 0.05, CutRate: 0.05}},
	}
	modes := []FailureMode{FailOnSourceError, PartialOnSourceError}
	strategies := []Strategy{Baseline, FeedForward, CostBased}
	scheds := []string{SchedulerChan, SchedulerMorsel}
	// Memory-pressure axis: unbounded, a budget tight enough to force
	// bucket-discard spilling on this working set, and a comfortable one.
	// Faults and out-of-core execution compose: the same invariants hold.
	budgets := []int64{0, 64 << 10, 256 << 10}

	for _, prof := range profiles {
		for _, mode := range modes {
			for _, strat := range strategies {
				for _, sched := range scheds {
					for _, budget := range budgets {
						for seed := int64(1); seed <= 4; seed++ {
							name := fmt.Sprintf("%s/%v/%v/%s/mem%dk/seed%d", prof.name, mode, strat, sched, budget>>10, seed)
							t.Run(name, func(t *testing.T) {
								p := prof.p
								p.Seed = seed
								ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
								defer cancel()
								res, err := e.Query(ctx, chaosSQL, Options{
									Strategy:        strat,
									Scheduler:       sched,
									RemoteTables:    map[string]int{"partsupp": 1},
									DelayedTables:   []string{"supplier"},
									Delay:           &DelayConfig{Initial: time.Millisecond},
									Faults:          &p,
									Retry:           fastRetry(),
									OnSourceFailure: mode,
									MemBudget:       budget,
									Parallelism:     4,
								})
								if err != nil {
									if ctx.Err() != nil {
										t.Fatalf("run hit its deadline (hang): %v", err)
									}
									var be *BudgetError
									if budget > 0 && errors.As(err, &be) {
										// An unworkably tight budget is a legal
										// typed failure in either mode — but
										// never a hang or a silent truncation.
										return
									}
									if mode == PartialOnSourceError {
										t.Fatalf("partial mode must degrade, not fail: %v", err)
									}
									var se *SourceError
									if !errors.As(err, &se) {
										t.Fatalf("failed with %T (%v), want *SourceError", err, err)
									}
									if se.Table == "" || se.Attempts == 0 {
										t.Fatalf("SourceError missing context: %+v", se)
									}
									return
								}
								got := canon(res.Rows)
								if res.Complete() {
									if len(got) != len(base) {
										t.Fatalf("complete run returned %d rows, fault-free %d", len(got), len(base))
									}
									for i := range got {
										if got[i] != base[i] {
											t.Fatalf("complete run row %d = %q, fault-free %q", i, got[i], base[i])
										}
									}
									return
								}
								if mode != PartialOnSourceError {
									t.Fatal("fail mode produced an incomplete result instead of an error")
								}
								// Partial: rows must be a sub-multiset of the
								// fault-free answer — degraded, never wrong.
								seen := map[string]int{}
								for _, r := range got {
									seen[r]++
									if seen[r] > baseCount[r] {
										t.Fatalf("partial run invented row %q", r)
									}
								}
							})
						}
					}
				}
			}
		}
	}
	waitGoroutines(t, goroutineBase)
}

// TestChaosSpilledThenAbandoned composes the memory governor with graceful
// degradation: under a budget small enough that the join spills its build
// buckets to disk, the probe-side source dies mid-stream (no retries, so the
// first injected fault is fatal) in partial mode. The spilled state must not
// confuse the bookkeeping — the query completes, reports the dead table as
// incomplete, and its rows stay a sub-multiset of the fault-free answer.
func TestChaosSpilledThenAbandoned(t *testing.T) {
	eng := spillEngine(t)
	const q = `SELECT l_orderkey, o_orderdate
		FROM lineitem, orders WHERE l_orderkey = o_orderkey`
	base := canon(mustRows(t, eng, q, Options{Parallelism: 4}))
	baseCount := map[string]int{}
	for _, r := range base {
		baseCount[r]++
	}

	pol := fastRetry()
	pol.MaxRetries = -1 // first fault is fatal: the source dies mid-stream
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := eng.Query(ctx, q, Options{
		Parallelism:   4,
		MemBudget:     256 << 10,
		DelayedTables: []string{"lineitem"},
		Delay:         &DelayConfig{Initial: time.Millisecond},
		// Seed 20 lands the first injected fault ~20 flushes into the
		// lineitem stream: a third of the probe side arrives (spilling the
		// budget-capped join state along the way), then the source dies.
		Faults:          &FaultProfile{Seed: 20, TransientRate: 0.05},
		Retry:           pol,
		OnSourceFailure: PartialOnSourceError,
	})
	if err != nil {
		t.Fatalf("partial mode failed instead of degrading: %v", err)
	}
	if res.Complete() {
		t.Fatal("result not marked incomplete after the source died")
	}
	if len(res.IncompleteTables) != 1 || res.IncompleteTables[0].Table != "lineitem" {
		t.Fatalf("IncompleteTables = %+v, want exactly [lineitem]", res.IncompleteTables)
	}
	if res.SpillEvents == 0 || res.SpillBytes == 0 {
		t.Fatalf("no spill before abandonment (events=%d bytes=%d): budget too generous",
			res.SpillEvents, res.SpillBytes)
	}
	got := canon(res.Rows)
	if len(got) == 0 {
		t.Fatal("source died before delivering anything — scenario wants spilled-then-abandoned")
	}
	if len(got) >= len(base) {
		t.Fatalf("abandoned run returned %d rows, fault-free %d", len(got), len(base))
	}
	seen := map[string]int{}
	for _, r := range got {
		seen[r]++
		if seen[r] > baseCount[r] {
			t.Fatalf("partial run invented row %q", r)
		}
	}
}

// Faulty sources: the robustness layer on top of the paper's adaptive
// engine. PARTSUPP lives on a remote site whose link injects deterministic
// faults (transient errors, drops, mid-flight cuts, stalls); the recovery
// policy — bounded retries with capped exponential backoff, per-attempt
// timeouts, and a per-site circuit breaker — absorbs what it can, and
// Options.OnSourceFailure picks what happens when a source stays dead:
// fail fast with a typed *sip.SourceError, or degrade gracefully to a
// partial result annotated with exactly what is missing.
//
//	go run ./examples/faulty
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	sip "repro"
)

const q = `
	SELECT s_name, ps_availqty FROM supplier, partsupp
	WHERE s_suppkey = ps_suppkey AND ps_availqty < 500`

func main() {
	ctx := context.Background()
	eng := sip.NewEngine(sip.GenerateTPCH(sip.DataConfig{ScaleFactor: 0.01}))

	// The reference answer: same placement, no faults.
	clean, err := eng.Query(ctx, q, sip.Options{
		RemoteTables: map[string]int{"partsupp": 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free run: %d rows in %v\n\n",
		len(clean.Rows), clean.Duration.Round(time.Millisecond))

	// A flaky link: one transfer in ten fails transiently, one in twenty
	// is cut mid-flight. A retry budget sized for the flakiness absorbs
	// every fault; the answer is identical and the recovery counters show
	// the work it took.
	res, err := eng.Query(ctx, q, sip.Options{
		RemoteTables: map[string]int{"partsupp": 1},
		Faults:       &sip.FaultProfile{Seed: 42, TransientRate: 0.1, CutRate: 0.05},
		Retry:        sip.RetryPolicy{MaxRetries: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flaky link:     %d rows in %v — complete=%v, %d retries, %d wasted bytes\n\n",
		len(res.Rows), res.Duration.Round(time.Millisecond),
		res.Complete(), res.Retries, res.WastedBytes)

	// A dead source: every interaction fails. Under the default
	// FailOnSourceError the query surfaces a typed error naming the
	// source, the site, and the attempts made.
	dead := &sip.FaultProfile{Seed: 1, TransientRate: 1}
	retry := sip.RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond}
	_, err = eng.Query(ctx, q, sip.Options{
		RemoteTables: map[string]int{"partsupp": 1},
		Faults:       dead,
		Retry:        retry,
	})
	var se *sip.SourceError
	if !errors.As(err, &se) {
		log.Fatalf("expected a *sip.SourceError, got %v", err)
	}
	fmt.Printf("dead source, fail-fast: table %s (site %d) after %d attempts: %v\n\n",
		se.Table, se.Site, se.Attempts, se.Cause)

	// The same dead source under PartialOnSourceError: the query completes
	// without PARTSUPP's tuples and the result says so.
	res, err = eng.Query(ctx, q, sip.Options{
		RemoteTables:    map[string]int{"partsupp": 1},
		Faults:          dead,
		Retry:           retry,
		OnSourceFailure: sip.PartialOnSourceError,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dead source, degraded: %d rows, complete=%v\n", len(res.Rows), res.Complete())
	for _, inc := range res.IncompleteTables {
		fmt.Printf("  missing: table %s (site %d) abandoned after %d attempts: %v\n",
			inc.Table, inc.Site, inc.Attempts, inc.Cause)
	}
}

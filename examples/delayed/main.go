// Slow sources: the paper's §VI-B experiment. PARTSUPP is delayed by
// 100 ms and rate-limited (5 ms per 1000 tuples), as when a remote web
// source stalls. Running-time differences between strategies shrink — the
// pipeline is waiting on I/O — but the state savings persist, which is
// what matters when many queries share the engine's memory.
//
//	go run ./examples/delayed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sip "repro"
)

func main() {
	ctx := context.Background()
	eng := sip.NewEngine(sip.GenerateTPCH(sip.DataConfig{ScaleFactor: 0.02}))

	const q = `
		SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr
		FROM part, supplier, partsupp, nation, region
		WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
		  AND p_size = 1 AND p_type LIKE '%TIN'
		  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
		  AND r_name = 'AFRICA'
		  AND ps_supplycost = (SELECT min(ps_supplycost)
		       FROM partsupp, supplier, nation, region
		       WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
		         AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
		         AND r_name = 'AFRICA')`

	for _, delayed := range []bool{false, true} {
		label := "fast sources"
		opts := sip.Options{SourceBytesPerSec: 1 << 30}
		if delayed {
			label = "PARTSUPP delayed 100ms + 5ms/1000 tuples (the paper's §VI-B model)"
			opts.DelayedTables = []string{"partsupp"}
		}
		fmt.Printf("— %s —\n", label)
		fmt.Printf("%-14s %10s %12s %9s %9s\n", "strategy", "time", "state(MB)", "filters", "pruned")
		for _, s := range sip.AllStrategies() {
			opts.Strategy = s
			res, err := eng.Query(ctx, q, opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %10s %12.2f %9d %9d\n",
				s, res.Duration.Round(time.Millisecond),
				float64(res.PeakStateBytes)/(1<<20),
				res.FiltersCreated, res.TuplesPruned)
		}
		fmt.Println()
	}
}

// Streaming execution: the engine's cursor API. Results are consumed
// batch-at-a-time straight from the root operator's bounded pipeline edge
// — a slow consumer stalls the producers (backpressure) instead of forcing
// the engine to materialize the result — and a context deadline cancels
// the whole operator tree mid-flight, reclaiming every goroutine.
//
// Also shown: prepared statements (`?` placeholders), which pay
// parse/bind/optimize once and then execute the compiled plan per call.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	sip "repro"
)

func main() {
	ctx := context.Background()
	eng := sip.NewEngine(sip.GenerateTPCH(sip.DataConfig{ScaleFactor: 0.02}))

	// 1. Stream a join result through the cursor: rows arrive as the
	// pipelined hash joins produce them, not after the query finishes.
	const q = `
		SELECT n_name, s_name, s_acctbal
		FROM supplier, nation
		WHERE s_nationkey = n_nationkey AND s_acctbal > 9000`
	rows, err := eng.QueryStream(ctx, q, sip.Options{Strategy: sip.FeedForward})
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for rows.Next() {
		if n < 5 {
			r := rows.Row()
			fmt.Printf("  %-16s %-20s %8s\n", r[0].S, r[1].S, r[2])
		}
		n++
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	res := rows.Result() // stats finalize at cursor exhaustion
	fmt.Printf("streamed %d rows in %v (state peak %.2f MB)\n\n",
		n, res.Duration.Round(time.Millisecond), float64(res.PeakStateBytes)/(1<<20))

	// 2. The iterator adapter: range over rows, Close handled for you.
	rows, err = eng.QueryStream(ctx, `SELECT r_name FROM region`, sip.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("regions:")
	for row, err := range rows.All() {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", row[0].S)
	}
	fmt.Println()

	// 3. A deadline cancels mid-flight: the paced scan below would take
	// ~10s, but the 50ms budget cuts it off; every operator goroutine is
	// reclaimed and the cursor reports context.DeadlineExceeded.
	short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	rows, err = eng.QueryStream(short, `SELECT count(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey`,
		sip.Options{SourceBytesPerSec: 1 << 20}) // pace scans at 1 MB/s
	if err != nil {
		log.Fatal(err)
	}
	for rows.Next() {
	}
	if errors.Is(rows.Err(), context.DeadlineExceeded) {
		fmt.Println("deadline query: cancelled cleanly after 50ms, as intended")
	} else {
		fmt.Printf("deadline query: unexpected outcome err=%v\n", rows.Err())
	}
	fmt.Println()

	// 4. Prepared statement: parse/bind/optimize once, execute many times
	// with different arguments. The vectorized constant-comparison kernels
	// are reused because the argument lowers to a typed constant.
	stmt, err := eng.Prepare(ctx, `SELECT n_name FROM nation WHERE n_regionkey = ?`)
	if err != nil {
		log.Fatal(err)
	}
	for region := int64(0); region < 3; region++ {
		res, err := stmt.Query(ctx, sip.Int(region))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("region %d: %d nations\n", region, len(res.Rows))
	}

	// 5. The ad-hoc path gets prepare-once behavior automatically from the
	// engine's plan cache.
	for i := 0; i < 3; i++ {
		if _, err := eng.Query(ctx, `SELECT count(*) FROM supplier`, sip.Options{}); err != nil {
			log.Fatal(err)
		}
	}
	cs := eng.PlanCacheStats()
	fmt.Printf("plan cache: %d hits, %d misses, %d entries\n", cs.Hits, cs.Misses, cs.Entries)
}

// Distributed adaptive Bloomjoin: the paper's §VI-C remote experiments
// (Q1C/Q3C). PARTSUPP lives at a remote site behind a modeled 100 Mbps
// link; the Cost-Based AIP Manager decides at runtime to ship a Bloom
// filter of the qualifying partkeys to the remote site, so non-matching
// partsupp tuples are pruned *before* they cross the wire — an adaptive
// version of the classical Bloomjoin.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sip "repro"
)

func main() {
	ctx := context.Background()
	eng := sip.NewEngine(sip.GenerateTPCH(sip.DataConfig{ScaleFactor: 0.02}))

	// The IBM decorrelation query with PARTSUPP fetched remotely.
	const q = `
		SELECT s_name, s_acctbal, s_address, s_phone, s_comment
		FROM part, supplier, partsupp
		WHERE s_nation = 'FRANCE' AND p_size = 15 AND p_type LIKE '%BRASS'
		  AND p_partkey = ps_partkey AND s_suppkey = ps_suppkey
		  AND ps_supplycost = (SELECT min(ps_supplycost) FROM partsupp, supplier
		       WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
		         AND s_nation = 'FRANCE')`

	// Model a wide-area link: 10 Mbps with 5 ms latency (the paper's cost
	// model assumes 10 Mbps; §VI-C also measures 100 Mbps Ethernet).
	for _, link := range []struct {
		name string
		bps  int64
	}{
		{"10 Mbps", sip.Mbps(10)},
		{"100 Mbps", sip.Mbps(100)},
	} {
		topo := sip.NewTopology(&sip.Link{BytesPerSec: link.bps, Latency: 5 * time.Millisecond})
		fmt.Printf("— remote PARTSUPP over %s —\n", link.name)
		fmt.Printf("%-14s %10s %12s %12s %9s\n", "strategy", "time", "net(MB)", "state(MB)", "pruned")
		for _, s := range []sip.Strategy{sip.Baseline, sip.FeedForward, sip.CostBased} {
			res, err := eng.Query(ctx, q, sip.Options{
				Strategy:     s,
				RemoteTables: map[string]int{"partsupp": 1},
				Topology:     topo,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %10s %12.2f %12.2f %9d\n",
				s, res.Duration.Round(time.Millisecond),
				float64(res.NetworkBytes)/(1<<20),
				float64(res.PeakStateBytes)/(1<<20),
				res.TuplesPruned)
		}
		fmt.Println()
	}
	fmt.Println("The net(MB) column is the Bloomjoin effect: AIP ships a small")
	fmt.Println("filter to the remote site and saves the partsupp tuples that")
	fmt.Println("would never have joined.")
}

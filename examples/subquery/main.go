// Subquery decorrelation and information passing across blocking
// operators: the paper's headline scenario (TPC-H Q17).
//
// The query's correlated scalar subquery — "lineitems bought in quantities
// below 20% of that part's average" — decorrelates into an aggregation over
// the entire LINEITEM table. Baseline execution buffers every lineitem
// group; with AIP, the moment the (tiny, brand/container-filtered) PART
// side completes, its partkey Bloom filter is injected *below the blocking
// aggregation*, pruning the lineitem stream before it creates groups.
//
//	go run ./examples/subquery
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sip "repro"
)

func main() {
	ctx := context.Background()
	eng := sip.NewEngine(sip.GenerateTPCH(sip.DataConfig{ScaleFactor: 0.02}))

	const q17 = `
		SELECT sum(l_extendedprice) / 7.0
		FROM lineitem, part
		WHERE p_partkey = l_partkey
		  AND p_brand = 'Brand#34' AND p_container = 'MED CAN'
		  AND l_quantity < (SELECT 0.2 * avg(l_quantity) FROM lineitem
		       WHERE l_partkey = p_partkey)`

	// Show how the binder decorrelates the block (the subquery becomes a
	// grouped relation joined on partkey — the paper's Figure 1 shape).
	explained, err := eng.Explain(q17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Decorrelated block structure:")
	fmt.Println(explained)

	fmt.Printf("%-14s %10s %12s %9s %10s\n", "strategy", "time", "state(MB)", "filters", "pruned")
	var answer string
	for _, s := range sip.AllStrategies() {
		res, err := eng.Query(ctx, q17, sip.Options{Strategy: s, SourceBytesPerSec: 1 << 30})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10s %12.2f %9d %10d\n",
			s, res.Duration.Round(time.Millisecond),
			float64(res.PeakStateBytes)/(1<<20),
			res.FiltersCreated, res.TuplesPruned)
		if len(res.Rows) > 0 {
			answer = sip.FormatValueRounded(res.Rows[0][0], 6)
		}
	}
	fmt.Printf("\nanswer (identical under every strategy): %s\n", answer)
	fmt.Println("\nNote the state column: the Bloom filter crossing the blocking")
	fmt.Println("aggregation is what shrinks the lineitem hash state — magic sets")
	fmt.Println("can only restrict the subquery, and must duplicate parent work")
	fmt.Println("to do it (its state is the largest of all four).")
}

// The serving tier: one embedded engine behind a wire-protocol TCP front
// end. A server session streams result rows in batches straight off the
// engine's cursor — a slow client backpressures only its own query — and
// per-tenant quotas gate admission before the engine's own concurrency cap
// and memory governor.
//
// Shown here: starting a server on a loopback listener, dialing it with the
// package's client, running an ad-hoc query and a prepared statement over
// the wire, reading the execution summary a Done frame carries, and
// sampling the /metrics counters. Production setups run `sipserver` and
// `sipquery -connect` instead of embedding both ends in one process.
//
//	go run ./examples/server
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	sip "repro"
	"repro/internal/server"
)

func main() {
	ctx := context.Background()

	// An engine configured for serving: bounded concurrency, a shared
	// memory pool sliced into per-query grants, pooled stats registries,
	// and a slow-query log the /stats endpoint exposes.
	eng := sip.NewEngineWithConfig(
		sip.GenerateTPCH(sip.DataConfig{ScaleFactor: 0.02}),
		sip.EngineConfig{
			MaxConcurrentQueries: 8,
			MemBudget:            64 << 20,
			PooledStats:          true,
			SlowQueryThreshold:   time.Millisecond,
		})

	srv, err := server.New(server.Config{
		Engine:      eng,
		BaseOptions: sip.Options{Strategy: sip.CostBased},
		TenantQuota: 4, // each tenant runs at most 4 queries at once
	})
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)

	// 1. Dial and handshake. The tenant names the quota bucket; the
	// scheduler and memory budget travel with the session.
	c, err := server.Dial(l.Addr().String(), server.DialConfig{Tenant: "demo"})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// 2. Ad-hoc SQL over the wire. Rows arrive in batches as the engine
	// produces them; nothing is materialized server-side.
	rows, err := c.Query(ctx, `
		SELECT n_name, count(*)
		FROM supplier, nation
		WHERE s_nationkey = n_nationkey
		GROUP BY n_name`)
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for rows.Next() {
		if n < 3 {
			r := rows.Row()
			fmt.Printf("  %-12s %s\n", r[0].String(), r[1].String())
		}
		n++
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	sum := rows.Summary()
	fmt.Printf("ad-hoc: %d rows (showed 3); server ran it in %v, %d tuples pruned\n\n",
		n, rows.Duration().Round(time.Microsecond), sum.TuplesPruned)

	// 3. A prepared statement: compiled once server-side, executed per
	// binding. The engine's plan cache parameterizes ad-hoc literals too,
	// but an explicit statement also skips the per-call cache lookup.
	stmt, err := c.Prepare(`
		SELECT count(*) FROM supplier, nation
		WHERE s_nationkey = n_nationkey AND s_acctbal > ?`)
	if err != nil {
		log.Fatal(err)
	}
	for _, bal := range []int64{0, 5000, 9000} {
		rs, err := stmt.Query(ctx, sip.Int(bal))
		if err != nil {
			log.Fatal(err)
		}
		for rs.Next() {
			fmt.Printf("prepared: suppliers with acctbal > %-5d = %s\n", bal, rs.Row()[0].String())
		}
		if err := rs.Err(); err != nil {
			log.Fatal(err)
		}
	}
	stmt.Close()

	// 4. The observability surface. srv.MetricsHandler() serves these same
	// counters as flat text on GET /metrics and a JSON snapshot (with the
	// slow-query log) on GET /stats — mount it on any mux.
	for _, name := range []string{"sip_queries_ok_total", "sip_rows_sent_total", "sip_plan_cache_hits_total"} {
		fmt.Printf("metric %-26s %d\n", name, metricValue(srv, name))
	}

	// 5. Graceful shutdown: in-flight streams finish, then sessions close.
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserver drained cleanly")
}

// metricValue samples one named counter from the server's metrics set.
func metricValue(srv *server.Server, name string) int64 {
	switch name {
	case "sip_queries_ok_total":
		return srv.Metrics().QueriesOK.Load()
	case "sip_rows_sent_total":
		return srv.Metrics().RowsSent.Load()
	case "sip_plan_cache_hits_total":
		return srv.Engine().PlanCacheStats().Hits
	}
	return 0
}

// Quickstart: generate data, run one query under every strategy, compare.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sip "repro"
)

func main() {
	ctx := context.Background()

	// 1. Generate a TPC-H-shaped catalog (SF 0.02 ≈ 20 MB).
	cat := sip.GenerateTPCH(sip.DataConfig{ScaleFactor: 0.02})
	eng := sip.NewEngine(cat)

	// 2. A multi-join query with a selective dimension side: the kind of
	// plan where a completed subexpression's key set can prune the big
	// fact-table inputs (the paper's §VI-C join experiments).
	const q = `
		SELECT n_name, sum(l_extendedprice * (1 - l_discount))
		FROM orders, lineitem, supplier, nation, region
		WHERE l_orderkey = o_orderkey AND l_suppkey = s_suppkey
		  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
		  AND r_name = 'EUROPE'
		  AND o_orderdate >= '1995-01-01' AND o_orderdate < '1996-01-01'
		GROUP BY n_name`

	// 3. Run it under each strategy and compare.
	fmt.Printf("%-14s %10s %12s %9s %9s\n", "strategy", "time", "state(MB)", "filters", "pruned")
	for _, s := range sip.AllStrategies() {
		res, err := eng.Query(ctx, q, sip.Options{
			Strategy: s,
			// Pace scans like a source stream so completion times stagger
			// (see DESIGN.md §2); drop this option for raw in-memory runs.
			SourceBytesPerSec: 1 << 30,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10s %12.2f %9d %9d\n",
			s, res.Duration.Round(time.Millisecond),
			float64(res.PeakStateBytes)/(1<<20),
			res.FiltersCreated, res.TuplesPruned)
	}

	// 4. Show the actual result rows (same under every strategy).
	res, err := eng.Query(ctx, q, sip.Options{Strategy: sip.FeedForward})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(sip.FormatRows(res.Schema, res.Rows, 10))
}

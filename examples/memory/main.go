// Memory governance: heavy queries degrade to disk instead of OOM-killing
// the process. The same join+aggregation runs three ways — unbounded (to
// learn its natural in-memory peak), under a per-query budget of a quarter
// of that peak (the stateful operators evict hash buckets to spill files
// and merge them back after their inputs finish, returning the exact same
// rows), and under an engine-wide pool that arbitrates grants across
// concurrent queries. A budget too small for even the spill merge fails
// fast with a typed *sip.BudgetError carrying the minimum workable figure.
//
//	go run ./examples/memory
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	sip "repro"
)

const q = `
	SELECT o_orderdate, count(*)
	FROM lineitem, orders WHERE l_orderkey = o_orderkey
	GROUP BY o_orderdate`

func main() {
	ctx := context.Background()
	cat := sip.GenerateTPCH(sip.DataConfig{ScaleFactor: 0.01})
	eng := sip.NewEngine(cat)

	// Unbounded reference run: its tracked peak is the query's appetite.
	opts := sip.Options{Parallelism: 4}
	base, err := eng.Query(ctx, q, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unbounded: %d rows in %v, peak %s, no spilling\n",
		len(base.Rows), base.Duration.Round(time.Millisecond), mb(base.PeakMemBytes))

	// A quarter of the appetite: same rows, bounded memory, disk absorbs
	// the difference.
	opts.MemBudget = base.PeakMemBytes / 4
	capped, err := eng.Query(ctx, q, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget %s: %d rows in %v, peak %s, spilled %s in %d eviction(s)\n",
		mb(opts.MemBudget), len(capped.Rows), capped.Duration.Round(time.Millisecond),
		mb(capped.PeakMemBytes), mb(capped.SpillBytes), capped.SpillEvents)

	// An impossible budget fails fast and typed — with the number to fix it.
	_, err = eng.Query(ctx, q, sip.Options{Parallelism: 4, MemBudget: 4 << 10})
	var be *sip.BudgetError
	if errors.As(err, &be) {
		fmt.Printf("budget %d B: %v\n\n", be.Budget, be)
	}

	// Engine-wide governance: one pool, many queries. Each admitted query
	// gets a grant (half the pool when alone, never below a sixteenth);
	// admission waits when the pool runs dry, and per-query budgets compose
	// with grants — the tighter one wins.
	pooled := sip.NewEngineWithConfig(cat, sip.EngineConfig{
		MemBudget:            base.PeakMemBytes,
		MaxConcurrentQueries: 3,
	})
	var wg sync.WaitGroup
	results := make([]*sip.Result, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := pooled.Query(ctx, q, sip.Options{Parallelism: 4})
			if err != nil {
				log.Fatal(err)
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	fmt.Printf("governed pool %s, 4 concurrent queries:\n", mb(base.PeakMemBytes))
	for i, res := range results {
		fmt.Printf("  query %d: %d rows, peak %s, spilled %s\n",
			i, len(res.Rows), mb(res.PeakMemBytes), mb(res.SpillBytes))
	}
}

func mb(n int64) string { return fmt.Sprintf("%.2f MB", float64(n)/(1<<20)) }

GO ?= go

.PHONY: all build test vet bench-smoke bench joinbench verify

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# bench-smoke: one iteration of the join/agg hot-path benchmarks, enough to
# catch "it no longer runs" and gross allocation regressions.
bench-smoke:
	$(GO) test ./internal/exec -run '^$$' -bench BenchmarkJoin -benchmem -benchtime 1x

# bench: the recorded numbers (median-of-count comparisons belong in
# BENCH_joins.json; see cmd/sipbench -joinbench).
bench:
	$(GO) test ./internal/exec -run '^$$' -bench BenchmarkJoin -benchmem -benchtime 5x -count 3

# joinbench: regenerate the per-strategy section of BENCH_joins.json
# (the recorded microbench section is preserved).
joinbench:
	$(GO) run ./cmd/sipbench -joinbench

# verify: the tier-1 gate plus a bench smoke run.
verify: vet build test bench-smoke

GO ?= go

.PHONY: all build test vet test-race chaos bench-smoke bench joinbench stmtbench schedbench filterbench spillbench serverbench benchdiff verify

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# bench-smoke: one iteration of the join/agg hot-path benchmarks, enough to
# catch "it no longer runs" and gross allocation regressions.
bench-smoke:
	$(GO) test ./internal/exec -run '^$$' -bench BenchmarkJoin -benchmem -benchtime 1x

# bench: the recorded numbers (median-of-count comparisons belong in
# BENCH_joins.json; see cmd/sipbench -joinbench).
bench:
	$(GO) test ./internal/exec -run '^$$' -bench BenchmarkJoin -benchmem -benchtime 5x -count 3

# test-race: the executor's concurrency tests (partitioned join/agg
# determinism, cancellation, the morsel scheduler differentials, the
# bucket-discard spill differentials), the spill run-file frame codec, the
# work-stealing pool's park/steal races, the scalar-vs-vectorized
# expression differential tests, the network fault/breaker tests, the
# blocked-filter / striped-Partial merge-exactness differentials, and the
# wire server's concurrent-session soak / disconnect-cancellation / quota
# tests under the race detector.
test-race:
	$(GO) test -race ./internal/exec ./internal/spill ./internal/sched ./internal/core ./internal/expr ./internal/network ./internal/bloom ./internal/filter ./internal/server .

# chaos: the full fault-injection matrix (seeds × fault profiles ×
# Fail/Partial × strategies) plus the recovery smoke tests, under the race
# detector with goroutine-leak checks. A fixed-seed smoke subset of the same
# suite runs in tier-1 `test` (and under -race in `test-race`); this target
# adds the SIP_CHAOS-gated sweep.
chaos:
	SIP_CHAOS=1 $(GO) test -race -run TestChaos -count=1 -timeout 15m .

# joinbench: append this revision's per-strategy + parallel-scaling entry
# to the BENCH_joins.json trajectory (the recorded microbench section and
# all previous entries are preserved).
joinbench:
	$(GO) run ./cmd/sipbench -joinbench

# exprbench: measure the scalar-vs-vectorized filter/project expression
# microbench and record it on the latest BENCH_joins.json entry. Run after
# joinbench so the section lands on this PR's entry.
exprbench:
	$(GO) run ./cmd/sipbench -exprbench

# stmtbench: measure the prepare-once/execute-many point-query microbench
# (ad-hoc vs plan-cache vs prepared statement) and record it on the latest
# BENCH_joins.json entry. Run after joinbench so the section lands on this
# PR's entry.
stmtbench:
	$(GO) run ./cmd/sipbench -stmtbench

# schedbench: measure the chan-vs-morsel scheduler comparison (P=1 head to
# head plus the morsel pool's P ∈ {1,2,4,8} scaling curve) and record it on
# the latest BENCH_joins.json entry. Run after joinbench so the section
# lands on this PR's entry.
schedbench:
	$(GO) run ./cmd/sipbench -schedbench

# filterbench: measure the blocked-vs-flat Bloom filter kernels (build,
# merge, probe rates plus the P=8 working-set bytes) and record them on the
# latest BENCH_joins.json entry. Run after joinbench so the section lands on
# this PR's entry.
filterbench:
	$(GO) run ./cmd/sipbench -filterbench

# spillbench: measure the memory-budget spill benchmark (unbounded vs
# quarter vs sixteenth cap of the measured peak) and record it on the
# latest BENCH_joins.json entry. Run after joinbench so the section lands
# on this PR's entry; `make benchdiff` gates the quarter-cap run (must have
# spilled, must stay within 5× of the unbounded wall time).
spillbench:
	$(GO) run ./cmd/sipbench -spillbench

# serverbench: measure the wire-protocol serving tier (ad-hoc vs cached vs
# prepared execution over TCP at 1/64/512 sessions) and record it on the
# latest BENCH_joins.json entry. Run after joinbench so the section lands on
# this PR's entry; `make benchdiff` gates it PR-over-PR and enforces the
# prepared ≥1.25× ad-hoc floor at 64 sessions.
serverbench:
	$(GO) run ./cmd/sipbench -serverbench

# benchdiff: fail when the last BENCH_joins.json entry regressed >10%
# against the previous one. Run after joinbench.
benchdiff:
	$(GO) run ./cmd/benchdiff

# verify: the tier-1 gate (go vet, build, tests) plus a bench smoke run.
verify: vet build test bench-smoke

// Package filter defines the summary-structure abstraction probed by
// executor operators when an AIP filter has been injected, plus a hash-set
// implementation. The Bloom implementation lives in internal/bloom; this
// package keeps the executor decoupled from the AIP decision logic in
// internal/core.
package filter

import (
	"fmt"
	"sync"

	"repro/internal/bloom"
	"repro/internal/types"
)

// Summary is a one-sided membership summary of a completed subexpression's
// key values: MayContainHash never returns a false negative, so probing it
// as a semijoin preserves query answers (paper §III-B). Implementations
// must be safe for concurrent probes.
//
// Probing is hash-once only: the executor computes types.Hash64 of the
// canonical key encoding exactly once per (tuple, column set) and reuses it
// across every summary probed for that key; there is deliberately no
// re-encoding probe entry point.
type Summary interface {
	// MayContainHash reports whether the key may be present. hash must be
	// types.Hash64(key, 0), computed once by the caller.
	MayContainHash(hash uint64, key []byte) bool
	// MayContainHashBatch narrows a selection vector to the lanes whose
	// keys may be present. hashes is lane-indexed (hashes[i] is lane i's
	// key hash); sel lists the live lanes in ascending order; survivors are
	// appended to out — owned by the caller, passed with length 0 — and out
	// is returned. keyAt resolves a lane's canonical key bytes; exact
	// summaries call it per probed lane, probabilistic ones never do. The
	// selection semantics mirror expr kernels: the callee only reads sel
	// and only appends to out.
	MayContainHashBatch(hashes []uint64, sel []int32, out []int32, keyAt func(lane int32) []byte) []int32
	// SizeBytes is the summary's memory footprint (and shipping cost).
	SizeBytes() int
	// Len is the (approximate) number of distinct keys summarized.
	Len() int
}

// Bloom adapts a bloom.Filter to the Summary interface.
type Bloom struct{ F *bloom.Filter }

// MayContainHash probes by precomputed key hash without touching the bytes.
func (b Bloom) MayContainHash(hash uint64, _ []byte) bool { return b.F.ProbeHash(hash) }

// MayContainHashBatch probes lane by lane; the flat filter is the scalar
// differential oracle, so it deliberately has no batched kernel.
func (b Bloom) MayContainHashBatch(hashes []uint64, sel []int32, out []int32, _ func(int32) []byte) []int32 {
	for _, i := range sel {
		if b.F.ProbeHash(hashes[i]) {
			out = append(out, i)
		}
	}
	return out
}

// SizeBytes returns the bit-array footprint.
func (b Bloom) SizeBytes() int { return b.F.SizeBytes() }

// Len returns the insertion count.
func (b Bloom) Len() int { return b.F.Len() }

// Blocked adapts a cache-line-blocked bloom.Blocked to the Summary
// interface; batch probes go through the filter's two-pass kernel.
type Blocked struct{ F *bloom.Blocked }

// MayContainHash probes by precomputed key hash without touching the bytes.
func (b Blocked) MayContainHash(hash uint64, _ []byte) bool { return b.F.ProbeHash(hash) }

// MayContainHashBatch narrows sel through the blocked batch kernel.
func (b Blocked) MayContainHashBatch(hashes []uint64, sel []int32, out []int32, _ func(int32) []byte) []int32 {
	return b.F.ProbeHashBatch(hashes, sel, out)
}

// SizeBytes returns the bit-array footprint.
func (b Blocked) SizeBytes() int { return b.F.SizeBytes() }

// Len returns the insertion count.
func (b Blocked) Len() int { return b.F.Len() }

// HashSet is an exact summary backed by a hash set of key encodings. It has
// no false positives but costs more memory and probe time than a Bloom
// filter; the paper found Bloom superior in nearly all cases (§V), and this
// implementation exists for the ablation benchmarks and for the Cost-based
// algorithm's direct reuse of operator hash tables.
//
// Memory overflow is handled per the paper: buckets may be discarded, and a
// probe that lands in a discarded bucket passes (never a false negative).
type HashSet struct {
	mu        sync.RWMutex
	buckets   []map[string]struct{}
	discarded []bool
	nbuckets  uint64
	size      int
	bytes     int
}

// NewHashSet creates a hash-set summary with the given bucket count
// (rounded up to at least 1).
func NewHashSet(nbuckets int) *HashSet {
	if nbuckets < 1 {
		nbuckets = 1
	}
	h := &HashSet{
		buckets:   make([]map[string]struct{}, nbuckets),
		discarded: make([]bool, nbuckets),
		nbuckets:  uint64(nbuckets),
	}
	for i := range h.buckets {
		h.buckets[i] = make(map[string]struct{})
	}
	return h
}

// AddHash inserts a key encoding by its precomputed hash (types.Hash64 of
// key with seed 0). Adding to a discarded bucket is a no-op (the bucket
// already passes everything).
func (h *HashSet) AddHash(hash uint64, key []byte) {
	b := hash % h.nbuckets
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.discarded[b] {
		return
	}
	s := string(key)
	if _, ok := h.buckets[b][s]; !ok {
		h.buckets[b][s] = struct{}{}
		h.size++
		h.bytes += len(s) + 16
	}
}

// Add inserts a key encoding.
func (h *HashSet) Add(key []byte) { h.AddHash(types.Hash64(key, 0), key) }

// MayContainHashBatch probes lane by lane under one read lock, resolving
// each lane's key bytes through keyAt for the exact comparison.
func (h *HashSet) MayContainHashBatch(hashes []uint64, sel []int32, out []int32, keyAt func(int32) []byte) []int32 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for _, i := range sel {
		b := hashes[i] % h.nbuckets
		if h.discarded[b] {
			out = append(out, i)
			continue
		}
		if _, ok := h.buckets[b][string(keyAt(i))]; ok {
			out = append(out, i)
		}
	}
	return out
}

// MayContainHash reports membership by precomputed hash; bucket selection
// reuses the hash, so only the final exact comparison reads the key bytes.
func (h *HashSet) MayContainHash(hash uint64, key []byte) bool {
	b := hash % h.nbuckets
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.discarded[b] {
		return true
	}
	_, ok := h.buckets[b][string(key)]
	return ok
}

// MergeFrom unions other's keys into h (bucket-wise, so a discarded bucket
// on either side stays discarded and keeps passing everything). Both sets
// must have the same bucket count — the Feed-Forward controller merges the
// per-partition working sets of one producer, which it sizes identically.
func (h *HashSet) MergeFrom(other *HashSet) error {
	if h.nbuckets != other.nbuckets {
		return fmt.Errorf("filter: cannot merge hash sets with %d and %d buckets", h.nbuckets, other.nbuckets)
	}
	other.mu.RLock()
	defer other.mu.RUnlock()
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range other.buckets {
		if other.discarded[i] {
			if !h.discarded[i] {
				for k := range h.buckets[i] {
					h.size--
					h.bytes -= len(k) + 16
				}
				h.buckets[i] = nil
				h.discarded[i] = true
			}
			continue
		}
		if h.discarded[i] {
			continue
		}
		for k := range other.buckets[i] {
			if _, ok := h.buckets[i][k]; !ok {
				h.buckets[i][k] = struct{}{}
				h.size++
				h.bytes += len(k) + 16
			}
		}
	}
	return nil
}

// DiscardBucket drops one bucket's contents to relieve memory pressure;
// probes to that bucket subsequently pass unconditionally (§V).
func (h *HashSet) DiscardBucket(i int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if i < 0 || i >= len(h.buckets) || h.discarded[i] {
		return
	}
	for k := range h.buckets[i] {
		h.size--
		h.bytes -= len(k) + 16
	}
	h.buckets[i] = nil
	h.discarded[i] = true
}

// DiscardedBuckets returns how many buckets have been dropped.
func (h *HashSet) DiscardedBuckets() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	n := 0
	for _, d := range h.discarded {
		if d {
			n++
		}
	}
	return n
}

// SizeBytes returns the approximate footprint of the retained keys.
func (h *HashSet) SizeBytes() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.bytes
}

// Len returns the number of retained distinct keys.
func (h *HashSet) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.size
}

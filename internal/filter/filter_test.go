package filter

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/bloom"
	"repro/internal/types"
)

// mayContain probes a summary through the hash-once production entry point
// (the cold-path re-encode probes were removed from the Summary interface).
func mayContain(s Summary, key []byte) bool {
	return s.MayContainHash(types.Hash64(key, 0), key)
}

func TestBloomAdapter(t *testing.T) {
	bf := bloom.New(100, 0.05)
	bf.Add([]byte("k"))
	var s Summary = Bloom{F: bf}
	if !mayContain(s, []byte("k")) {
		t.Fatal("adapter lost key")
	}
	if s.SizeBytes() != bf.SizeBytes() || s.Len() != 1 {
		t.Fatal("adapter metadata wrong")
	}
}

func TestHashSetExactness(t *testing.T) {
	h := NewHashSet(16)
	for i := 0; i < 1000; i++ {
		h.Add([]byte(fmt.Sprintf("k%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !mayContain(h, []byte(fmt.Sprintf("k%d", i))) {
			t.Fatalf("lost k%d", i)
		}
	}
	// Exact: zero false positives.
	for i := 0; i < 1000; i++ {
		if mayContain(h, []byte(fmt.Sprintf("absent%d", i))) {
			t.Fatalf("false positive for absent%d", i)
		}
	}
	if h.Len() != 1000 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestHashSetDuplicates(t *testing.T) {
	h := NewHashSet(4)
	h.Add([]byte("a"))
	h.Add([]byte("a"))
	if h.Len() != 1 {
		t.Fatalf("duplicates must not grow the set: %d", h.Len())
	}
}

// TestHashSetBucketDiscard verifies the paper's memory-overflow behavior
// (§V): a discarded bucket passes everything (never a false negative), and
// retained buckets keep exact membership.
func TestHashSetBucketDiscard(t *testing.T) {
	h := NewHashSet(8)
	keys := make([][]byte, 200)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%d", i))
		h.Add(keys[i])
	}
	before := h.SizeBytes()
	h.DiscardBucket(3)
	if h.DiscardedBuckets() != 1 {
		t.Fatal("bucket not discarded")
	}
	if h.SizeBytes() >= before {
		t.Fatal("discard must free memory")
	}
	// No false negatives ever.
	for _, k := range keys {
		if !mayContain(h, k) {
			t.Fatalf("false negative after discard for %s", k)
		}
	}
	// Probes landing in the discarded bucket pass; at least one absent key
	// that hashes there must pass, while absent keys in live buckets fail.
	passes, fails := 0, 0
	for i := 0; i < 1000; i++ {
		if mayContain(h, []byte(fmt.Sprintf("absent-%d", i))) {
			passes++
		} else {
			fails++
		}
	}
	if passes == 0 {
		t.Fatal("discarded bucket should pass unknown keys")
	}
	if fails == 0 {
		t.Fatal("live buckets should still reject unknown keys")
	}
	// Idempotent / bounds-safe.
	h.DiscardBucket(3)
	h.DiscardBucket(-1)
	h.DiscardBucket(999)
	if h.DiscardedBuckets() != 1 {
		t.Fatal("discard bookkeeping wrong")
	}
	// Adding to a discarded bucket is a no-op but must not panic.
	for i := 0; i < 50; i++ {
		h.Add([]byte(fmt.Sprintf("more-%d", i)))
	}
}

func TestHashSetConcurrency(t *testing.T) {
	h := NewHashSet(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("g%d-%d", g, i))
				h.Add(k)
				if !mayContain(h, k) {
					t.Errorf("lost %s", k)
				}
			}
		}(g)
	}
	wg.Wait()
	if h.Len() != 8*500 {
		t.Fatalf("Len = %d, want 4000", h.Len())
	}
}

func TestHashSetMinimumBuckets(t *testing.T) {
	h := NewHashSet(0)
	h.Add([]byte("x"))
	if !mayContain(h, []byte("x")) {
		t.Fatal("degenerate bucket count broken")
	}
}

func TestQuickHashSetNeverFalseNegative(t *testing.T) {
	f := func(keys [][]byte, discard uint8) bool {
		h := NewHashSet(8)
		for _, k := range keys {
			h.Add(k)
		}
		h.DiscardBucket(int(discard % 8))
		for _, k := range keys {
			if !mayContain(h, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

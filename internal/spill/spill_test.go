package spill

import (
	"encoding/binary"
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/types"
)

func sampleRecords() []Record {
	return []Record{
		{Side: 0, Seq: 1, Hash: 0xdeadbeef, Key: []byte("k1"),
			Tuple: types.Tuple{types.Int(42), types.Str("hello"), types.Float(3.5)}},
		{Side: 1, Seq: 9, Hash: 7, Key: []byte{},
			Tuple: types.Tuple{types.Null(), types.Date(19000), types.Bool(true)}},
		{Side: 1, Seq: 1 << 40, Hash: math.MaxUint64, Key: []byte("key-only"), Tuple: nil},
		{Side: 0, Seq: 0, Hash: 0, Key: []byte(strings.Repeat("x", 300)),
			Tuple: types.Tuple{types.Int(-5), types.Float(math.Inf(1)), types.Str("")}},
	}
}

func equalRecords(a, b *Record) bool {
	if a.Side != b.Side || a.Seq != b.Seq || a.Hash != b.Hash || string(a.Key) != string(b.Key) {
		return false
	}
	if (a.Tuple == nil) != (b.Tuple == nil) || len(a.Tuple) != len(b.Tuple) {
		return false
	}
	for i := range a.Tuple {
		if a.Tuple[i] != b.Tuple[i] {
			return false
		}
	}
	return true
}

// TestRoundTrip: every appended record decodes back exactly, across frame
// boundaries, and the run supports multiple independent read passes.
func TestRoundTrip(t *testing.T) {
	run, err := NewRun(t.TempDir(), "test")
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()

	want := sampleRecords()
	// Enough volume to force several frame cuts.
	const copies = 2000
	for c := 0; c < copies; c++ {
		for i := range want {
			if err := run.Append(&want[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got, exp := run.Records(), int64(copies*len(want)); got != exp {
		t.Fatalf("Records() = %d, want %d", got, exp)
	}
	if err := run.Flush(); err != nil {
		t.Fatal(err)
	}
	if run.Bytes() == 0 {
		t.Fatal("Flush wrote no bytes")
	}

	for pass := 0; pass < 3; pass++ {
		rd, err := run.Reader()
		if err != nil {
			t.Fatal(err)
		}
		var rec Record
		n := 0
		for {
			ok, err := rd.Next(&rec)
			if err != nil {
				t.Fatalf("pass %d record %d: %v", pass, n, err)
			}
			if !ok {
				break
			}
			if exp := &want[n%len(want)]; !equalRecords(&rec, exp) {
				t.Fatalf("pass %d record %d = %+v, want %+v", pass, n, rec, *exp)
			}
			n++
		}
		if n != copies*len(want) {
			t.Fatalf("pass %d decoded %d records, want %d", pass, n, copies*len(want))
		}
		rd.Close()
	}
}

// TestEmptyRun: a run with no records reads back as empty, from a reader
// opened before any write.
func TestEmptyRun(t *testing.T) {
	run, err := NewRun(t.TempDir(), "empty")
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	rd, err := run.Reader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	var rec Record
	if ok, err := rd.Next(&rec); ok || err != nil {
		t.Fatalf("empty run Next = (%v, %v), want (false, nil)", ok, err)
	}
}

// TestCorruptionDetected: flipping a payload byte must surface as a checksum
// error, not as silently wrong records.
func TestCorruptionDetected(t *testing.T) {
	run, err := NewRun(t.TempDir(), "corrupt")
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	recs := sampleRecords()
	for i := range recs {
		if err := run.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := run.Flush(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the first frame's payload (offset 8 skips the
	// header).
	f, err := os.OpenFile(run.path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 12); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rd, err := run.Reader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	var rec Record
	for {
		ok, err := rd.Next(&rec)
		if err != nil {
			if !strings.Contains(err.Error(), "checksum") {
				t.Fatalf("corruption surfaced as %v, want a checksum error", err)
			}
			return
		}
		if !ok {
			t.Fatal("corrupted frame read back without error")
		}
	}
}

// TestTruncationDetected: a run cut off mid-frame surfaces a truncation
// error.
func TestTruncationDetected(t *testing.T) {
	run, err := NewRun(t.TempDir(), "trunc")
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	recs := sampleRecords()
	for i := range recs {
		if err := run.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := run.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(run.path, run.Bytes()-3); err != nil {
		t.Fatal(err)
	}

	rd, err := run.Reader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	var rec Record
	for {
		ok, err := rd.Next(&rec)
		if err != nil {
			return // truncation detected, as required
		}
		if !ok {
			t.Fatal("truncated frame read back as clean EOF")
		}
	}
}

// TestCloseRemovesFile: Close deletes the run's backing file (the per-query
// temp dir must not accumulate finished runs).
func TestCloseRemovesFile(t *testing.T) {
	dir := t.TempDir()
	run, err := NewRun(dir, "rm")
	if err != nil {
		t.Fatal(err)
	}
	path := run.path
	if err := run.Append(&Record{Key: []byte("k")}); err != nil {
		t.Fatal(err)
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("run file still exists after Close (stat err %v)", err)
	}
	if err := run.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestVarintBoundary pins the zigzag encoding of extreme ints.
func TestVarintBoundary(t *testing.T) {
	run, err := NewRun(t.TempDir(), "varint")
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	want := Record{Seq: math.MaxUint64, Hash: 1,
		Key: binary.BigEndian.AppendUint64(nil, 1),
		Tuple: types.Tuple{types.Int(math.MinInt64), types.Int(math.MaxInt64),
			types.Float(math.NaN())}}
	if err := run.Append(&want); err != nil {
		t.Fatal(err)
	}
	rd, err := run.Reader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	var rec Record
	if ok, err := rd.Next(&rec); !ok || err != nil {
		t.Fatalf("Next = (%v, %v)", ok, err)
	}
	if rec.Seq != want.Seq || rec.Tuple[0].I != math.MinInt64 || rec.Tuple[1].I != math.MaxInt64 {
		t.Fatalf("extremes decoded as %+v", rec)
	}
	if !math.IsNaN(rec.Tuple[2].F) {
		t.Fatalf("NaN decoded as %v", rec.Tuple[2].F)
	}
}

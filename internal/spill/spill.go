// Package spill is the out-of-core state layer behind the executor's
// bucket-discard eviction policy: when a partitioned operator's hash state
// exceeds its memory share, whole buckets are serialized to a spill run on
// disk and the memory is reclaimed; a merge/rescan phase drains the runs
// after input-done.
//
// A Run is an append-only file of Records, batch-serialized into CRC-guarded
// frames: records accumulate in an in-memory payload buffer and are written
// as one frame — [u32 payload length][u32 CRC-32 (Castagnoli)][payload] —
// when the buffer fills or Flush is called, so the per-record write cost is
// one buffer append, not one syscall. Readers verify each frame's checksum
// before decoding, so a torn or corrupted run surfaces as a typed error
// instead of wrong query results. A Run may be read concurrently with
// nothing (readers come after the writer's Flush) and re-read any number of
// times — the executor's merge phase makes one pass per hash sub-bucket.
//
// Record values are encoded kind-tagged: integer-backed kinds as zigzag
// varints, floats as raw IEEE bits, strings length-prefixed, NULL as a bare
// tag. The encoding is exact — a decoded Record compares equal to what was
// appended — which is what lets capped (spilling) executions return
// byte-identical results to unbounded ones.
//
// Temp-file lifecycle is owned by the caller: runs are created inside a
// caller-supplied directory (the executor uses one temp dir per query,
// removed when the query finishes), and Close removes the run's file
// eagerly.
package spill

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/types"
)

// Record is one spilled hash-table entry. Side distinguishes an operator's
// two inputs (join build sides; the distinct operator reuses it to mark
// already-emitted keys), Seq is the entry's partition ticket (the symmetric
// join's arrival clock), Hash/Key are the entry's hash-table identity, and
// Tuple is the stored row (nil for key-only records).
type Record struct {
	Side  uint8
	Seq   uint64
	Hash  uint64
	Key   []byte
	Tuple types.Tuple
}

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameTarget is the payload size at which a frame is cut: large enough to
// amortize the 8-byte frame header and the write syscall, small enough that
// a reader's frame buffer stays cache-friendly.
const frameTarget = 64 << 10

// Run is an append-only spill file. Append and Flush are the writer side;
// Reader opens an independent decode pass over everything flushed so far.
// A Run is not concurrency-safe: the executor serializes access per
// operator partition.
type Run struct {
	f       *os.File
	path    string
	payload []byte // current frame under construction
	bytes   int64  // total frame bytes written (header + payload)
	records int64
}

// NewRun creates a run file inside dir (pattern names the operator for
// debuggability; the actual filename is unique).
func NewRun(dir, pattern string) (*Run, error) {
	f, err := os.CreateTemp(dir, pattern+"-*.run")
	if err != nil {
		return nil, fmt.Errorf("spill: create run: %w", err)
	}
	return &Run{f: f, path: f.Name()}, nil
}

// Append serializes one record into the current frame, cutting the frame to
// disk when it reaches the target size. The record's Key and Tuple are
// copied by encoding; the caller may reuse them immediately.
func (r *Run) Append(rec *Record) error {
	r.payload = appendRecord(r.payload, rec)
	r.records++
	if len(r.payload) >= frameTarget {
		return r.cut()
	}
	return nil
}

// Flush writes any buffered records as a final (possibly short) frame. Call
// before opening a Reader.
func (r *Run) Flush() error {
	if len(r.payload) == 0 {
		return nil
	}
	return r.cut()
}

// cut writes the buffered payload as one CRC'd frame.
func (r *Run) cut() error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(r.payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(r.payload, castagnoli))
	if _, err := r.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("spill: write frame: %w", err)
	}
	if _, err := r.f.Write(r.payload); err != nil {
		return fmt.Errorf("spill: write frame: %w", err)
	}
	r.bytes += int64(8 + len(r.payload))
	r.payload = r.payload[:0]
	return nil
}

// Bytes returns the total bytes written to disk so far (frame headers
// included, unflushed buffer excluded).
func (r *Run) Bytes() int64 { return r.bytes }

// Records returns the number of records appended (flushed or not).
func (r *Run) Records() int64 { return r.records }

// Close removes the run's file. Safe to call more than once.
func (r *Run) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	if rmErr := os.Remove(r.path); err == nil {
		err = rmErr
	}
	return err
}

// Reader opens an independent sequential pass over everything flushed so
// far. The executor's merge phase calls it once per hash sub-bucket, so a
// run must support many passes; each Reader holds its own file handle.
func (r *Run) Reader() (*Reader, error) {
	if err := r.Flush(); err != nil {
		return nil, err
	}
	f, err := os.Open(r.path)
	if err != nil {
		return nil, fmt.Errorf("spill: reopen run: %w", err)
	}
	return &Reader{br: bufio.NewReaderSize(f, 64<<10), f: f}, nil
}

// Reader decodes a Run front to back in append order.
type Reader struct {
	br    *bufio.Reader
	f     *os.File
	frame []byte // current verified frame payload
	off   int    // decode cursor into frame
}

// Next decodes the next record into rec, returning false at end of run.
// rec.Key aliases the reader's frame buffer and is valid until the next
// Next call; rec.Tuple is freshly allocated.
func (rd *Reader) Next(rec *Record) (bool, error) {
	for rd.off >= len(rd.frame) {
		ok, err := rd.nextFrame()
		if err != nil || !ok {
			return false, err
		}
	}
	n, err := decodeRecord(rd.frame[rd.off:], rec)
	if err != nil {
		return false, err
	}
	rd.off += n
	return true, nil
}

// nextFrame reads and CRC-verifies the next frame; false means clean EOF.
func (rd *Reader) nextFrame() (bool, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(rd.br, hdr[:]); err != nil {
		if err == io.EOF {
			return false, nil
		}
		return false, fmt.Errorf("spill: frame header: %w", err)
	}
	size := binary.LittleEndian.Uint32(hdr[0:])
	want := binary.LittleEndian.Uint32(hdr[4:])
	if cap(rd.frame) < int(size) {
		rd.frame = make([]byte, size)
	}
	rd.frame = rd.frame[:size]
	if _, err := io.ReadFull(rd.br, rd.frame); err != nil {
		return false, fmt.Errorf("spill: truncated frame: %w", err)
	}
	if got := crc32.Checksum(rd.frame, castagnoli); got != want {
		return false, fmt.Errorf("spill: frame checksum mismatch (got %08x, want %08x)", got, want)
	}
	rd.off = 0
	return true, nil
}

// Close releases the reader's file handle.
func (rd *Reader) Close() error { return rd.f.Close() }

// Record encoding, inside a frame:
//
//	side u8 · seq uvarint · hash fixed64 · keyLen uvarint · key bytes ·
//	ncols+1 uvarint (0 = nil tuple) · per value: kind u8 + payload
//
// Value payloads: NULL none; INT/DATE/BOOL zigzag varint; FLOAT raw IEEE
// bits fixed64; STRING uvarint length + bytes.
func appendRecord(dst []byte, rec *Record) []byte {
	dst = append(dst, rec.Side)
	dst = binary.AppendUvarint(dst, rec.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, rec.Hash)
	dst = binary.AppendUvarint(dst, uint64(len(rec.Key)))
	dst = append(dst, rec.Key...)
	if rec.Tuple == nil {
		return binary.AppendUvarint(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(rec.Tuple))+1)
	for _, v := range rec.Tuple {
		dst = append(dst, byte(v.K))
		switch v.K {
		case types.KindNull:
		case types.KindInt, types.KindDate, types.KindBool:
			dst = binary.AppendVarint(dst, v.I)
		case types.KindFloat:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
		case types.KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		default:
			panic(fmt.Sprintf("spill: unencodable kind %v", v.K))
		}
	}
	return dst
}

var errCorrupt = fmt.Errorf("spill: corrupt record encoding")

// decodeRecord decodes one record from b (which starts at a record
// boundary), returning the encoded length. rec.Key aliases b.
func decodeRecord(b []byte, rec *Record) (int, error) {
	if len(b) < 1 {
		return 0, errCorrupt
	}
	rec.Side = b[0]
	off := 1
	seq, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return 0, errCorrupt
	}
	off += n
	rec.Seq = seq
	if len(b) < off+8 {
		return 0, errCorrupt
	}
	rec.Hash = binary.LittleEndian.Uint64(b[off:])
	off += 8
	klen, n := binary.Uvarint(b[off:])
	if n <= 0 || len(b) < off+n+int(klen) {
		return 0, errCorrupt
	}
	off += n
	rec.Key = b[off : off+int(klen)]
	off += int(klen)
	ncols, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return 0, errCorrupt
	}
	off += n
	if ncols == 0 {
		rec.Tuple = nil
		return off, nil
	}
	t := make(types.Tuple, ncols-1)
	for i := range t {
		if len(b) <= off {
			return 0, errCorrupt
		}
		k := types.Kind(b[off])
		off++
		switch k {
		case types.KindNull:
			t[i] = types.Null()
		case types.KindInt, types.KindDate, types.KindBool:
			v, n := binary.Varint(b[off:])
			if n <= 0 {
				return 0, errCorrupt
			}
			off += n
			t[i] = types.Value{K: k, I: v}
		case types.KindFloat:
			if len(b) < off+8 {
				return 0, errCorrupt
			}
			t[i] = types.Float(math.Float64frombits(binary.LittleEndian.Uint64(b[off:])))
			off += 8
		case types.KindString:
			slen, n := binary.Uvarint(b[off:])
			if n <= 0 || len(b) < off+n+int(slen) {
				return 0, errCorrupt
			}
			off += n
			t[i] = types.Str(string(b[off : off+int(slen)]))
			off += int(slen)
		default:
			return 0, fmt.Errorf("spill: unknown value kind %d", k)
		}
	}
	rec.Tuple = t
	return off, nil
}

package magic

import (
	"testing"

	"repro/internal/plan"
	"repro/internal/tpch"
)

func bind(t *testing.T, sql string) *plan.Block {
	t.Helper()
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002})
	blk, err := plan.BindSQL(cat, sql)
	if err != nil {
		t.Fatal(err)
	}
	return blk
}

const correlatedSQL = `
	SELECT s_name FROM part, supplier, partsupp
	WHERE p_size = 15
	  AND p_partkey = ps_partkey AND s_suppkey = ps_suppkey
	  AND ps_supplycost = (SELECT min(ps_supplycost) FROM partsupp, supplier
	       WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey)`

func TestHasCorrelatedSubquery(t *testing.T) {
	if !HasCorrelatedSubquery(bind(t, correlatedSQL)) {
		t.Fatal("correlated subquery not detected")
	}
	plain := bind(t, "SELECT p_name FROM part WHERE p_size = 1")
	if HasCorrelatedSubquery(plain) {
		t.Fatal("phantom correlation")
	}
}

func TestRewriteInjectsFilterSet(t *testing.T) {
	blk := bind(t, correlatedSQL)
	origInnerRels := len(blk.Rels[3].Sub.Rels)
	rewritten := Rewrite(blk)

	// Original untouched.
	if len(blk.Rels[3].Sub.Rels) != origInnerRels {
		t.Fatal("rewrite mutated the original block")
	}
	inner := rewritten.Rels[3].Sub
	if len(inner.Rels) != origInnerRels+1 {
		t.Fatalf("inner rels = %d, want %d", len(inner.Rels), origInnerRels+1)
	}
	fsRel := inner.Rels[len(inner.Rels)-1]
	if fsRel.Alias != "_magic" || fsRel.Sub == nil {
		t.Fatalf("filter-set rel malformed: %+v", fsRel)
	}
	// The filter set is a DISTINCT projection of the correlation attrs.
	if !fsRel.Sub.Distinct {
		t.Fatal("filter set must be DISTINCT")
	}
	if len(fsRel.Sub.Output) != len(blk.Rels[3].Correlated) {
		t.Fatalf("filter set outputs = %d, want %d", len(fsRel.Sub.Output), len(blk.Rels[3].Correlated))
	}
	// The filter set excludes the subquery itself (only base parent rels).
	for _, r := range fsRel.Sub.Rels {
		if r.Sub != nil {
			t.Fatal("filter set must not contain subquery relations")
		}
	}
	// Parent predicates carried over (p_size = 15 must appear).
	found := false
	for _, c := range fsRel.Sub.Conjuncts {
		if c.E.String() == "(part.p_size = 15)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("parent predicate missing from filter set: %v", fsRel.Sub.Conjuncts)
	}
	// The inner block gained a semijoin conjunct to the filter set.
	joins := 0
	for _, c := range inner.Conjuncts {
		for _, r := range c.Rels {
			if r == len(inner.Rels)-1 {
				joins++
			}
		}
	}
	if joins == 0 {
		t.Fatal("no semijoin conjunct added to the subquery block")
	}
}

func TestRewriteNoopWithoutCorrelation(t *testing.T) {
	blk := bind(t, `SELECT n_name FROM nation WHERE n_regionkey = 1`)
	rewritten := Rewrite(blk)
	if len(rewritten.Rels) != len(blk.Rels) {
		t.Fatal("rewrite changed an uncorrelated query")
	}
}

func TestRewritePlainDerivedTableUntouched(t *testing.T) {
	blk := bind(t, `
		SELECT partkey FROM
		  (SELECT ps_partkey AS partkey, sum(ps_availqty) AS a
		   FROM partsupp GROUP BY ps_partkey) d
		WHERE a < 100`)
	rewritten := Rewrite(blk)
	if len(rewritten.Rels[0].Sub.Rels) != 1 {
		t.Fatal("plain derived tables must not receive filter sets")
	}
}

// Package magic implements the magic-sets rewriting baseline the paper
// compares against (§VI, "we extended Tukwila to perform magic sets
// rewritings using the approach of [Seshadri et al., SIGMOD 1996]").
//
// Following that paper's heuristics as adopted here: (1) the filter set is
// computed from the entire outer query — the join of the parent block's
// relations under the parent's own predicates — and (2) the filter set
// contains the largest number of attributes that can be joined (every
// correlation attribute). The rewritten plan computes the filter set fully
// pipelined, simultaneously with the main query and the subquery, and each
// decorrelated subquery block gains a semijoin (an extra equijoin against
// the DISTINCT filter set) that restricts its computation to
// possibly-relevant bindings.
//
// Note the structural consequence the paper observes experimentally: the
// filter-set computation duplicates parent work and adds state of its own
// (the Q2C space blow-up), and when the parent predicates are weak the
// filter set filters nothing (Q2E's slowdown).
package magic

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/types"
)

// Rewrite returns a clone of the block with a magic filter set injected
// into every decorrelated subquery relation. Blocks without correlated
// subqueries are returned as an unmodified clone.
func Rewrite(root *plan.Block) *plan.Block {
	nb := root.Clone()
	for _, rel := range nb.Rels {
		if rel.Sub == nil || len(rel.Correlated) == 0 {
			continue
		}
		fs := buildFilterSet(nb, rel)
		if fs == nil {
			continue
		}
		injectFilterSet(rel, fs)
	}
	return nb
}

// HasCorrelatedSubquery reports whether the rewrite would change the block.
func HasCorrelatedSubquery(b *plan.Block) bool {
	for _, rel := range b.Rels {
		if rel.Sub != nil && len(rel.Correlated) > 0 {
			return true
		}
	}
	return false
}

// buildFilterSet constructs the magic-set block: DISTINCT projection of the
// correlation attributes over the join of the parent's non-subquery
// relations under the parent-only predicates.
func buildFilterSet(parent *plan.Block, target *plan.Rel) *plan.Block {
	fs := &plan.Block{Global: types.NewSchema(), Distinct: true}
	colMap := map[int]int{} // parent global col -> filter-set global col
	included := map[int]bool{}

	for ri, rel := range parent.Rels {
		if rel.Sub != nil && len(rel.Correlated) > 0 {
			continue // exclude every decorrelated subquery, not just target
		}
		included[ri] = true
		nr := &plan.Rel{
			Alias:   rel.Alias,
			Table:   rel.Table,
			Schema:  types.NewSchema(append([]types.Column(nil), rel.Schema.Cols...)...),
			Offset:  fs.Global.Len(),
			Site:    rel.Site,
			Delayed: rel.Delayed,
		}
		if rel.Sub != nil {
			nr.Sub = rel.Sub.Clone()
		}
		for i := 0; i < rel.Schema.Len(); i++ {
			colMap[rel.Offset+i] = nr.Offset + i
			fs.EqIDs = append(fs.EqIDs, -1)
		}
		fs.Rels = append(fs.Rels, nr)
		fs.Global = fs.Global.Concat(nr.Schema)
	}
	if len(fs.Rels) == 0 {
		return nil
	}

	// Parent-only predicates, remapped into the filter-set block.
	for _, c := range parent.Conjuncts {
		all := true
		for _, r := range c.Rels {
			if !included[r] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		mapped, ok := expr.Remap(c.E, colMap)
		if !ok {
			continue
		}
		fs.AddConjunct(mapped)
	}

	// Output: the correlation attributes (heuristic 2 — all of them).
	for k, cp := range target.Correlated {
		ng, ok := colMap[cp.OuterCol]
		if !ok {
			return nil // correlation attribute lives in another subquery
		}
		fs.Output = append(fs.Output, plan.OutputCol{
			E:    &expr.ColRef{Idx: ng, Col: fs.Global.Cols[ng]},
			Name: fmt.Sprintf("mk%d", k),
		})
	}
	return fs
}

// injectFilterSet appends the filter set as a relation of the subquery
// block, joined on the correlation attributes — the logical semijoin of the
// magic-sets rewriting.
func injectFilterSet(target *plan.Rel, fs *plan.Block) {
	inner := target.Sub
	offset := inner.Global.Len()
	outSchema := fs.OutputSchema()
	cols := make([]types.Column, outSchema.Len())
	for i, c := range outSchema.Cols {
		cols[i] = types.Column{Table: "_magic", Name: c.Name, Kind: c.Kind}
	}
	fsRel := &plan.Rel{
		Alias:  "_magic",
		Sub:    fs,
		Schema: types.NewSchema(cols...),
		Offset: offset,
	}
	inner.Rels = append(inner.Rels, fsRel)
	inner.Global = inner.Global.Concat(fsRel.Schema)
	for range cols {
		inner.EqIDs = append(inner.EqIDs, -1)
	}
	for k, cp := range target.Correlated {
		gb, ok := inner.GroupBy[cp.InnerOutCol].(*expr.ColRef)
		if !ok {
			continue
		}
		fcol := offset + k
		inner.AddConjunct(&expr.Binary{
			Op: expr.OpEq,
			L:  &expr.ColRef{Idx: gb.Idx, Col: inner.Global.Cols[gb.Idx]},
			R:  &expr.ColRef{Idx: fcol, Col: inner.Global.Cols[fcol]},
		})
	}
}

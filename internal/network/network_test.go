package network

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestTransferTime(t *testing.T) {
	l := &Link{BytesPerSec: 1000, Latency: 10 * time.Millisecond}
	if got := l.TransferTime(1000); got != 10*time.Millisecond+time.Second {
		t.Fatalf("TransferTime = %v", got)
	}
	// Infinite bandwidth: latency only.
	fast := &Link{Latency: 5 * time.Millisecond}
	if got := fast.TransferTime(1 << 30); got != 5*time.Millisecond {
		t.Fatalf("latency-only TransferTime = %v", got)
	}
	// Scale compresses time.
	scaled := &Link{BytesPerSec: 1000, Scale: 10}
	if got := scaled.TransferTime(1000); got != 100*time.Millisecond {
		t.Fatalf("scaled TransferTime = %v", got)
	}
}

func TestTransferBlocksAndAccounts(t *testing.T) {
	l := &Link{BytesPerSec: 1 << 20, Latency: 20 * time.Millisecond}
	start := time.Now()
	if err := l.Transfer(1024, nil); err != nil {
		t.Fatalf("transfer failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("transfer returned too fast: %v", elapsed)
	}
	if l.SentBytes() != 1024 || l.SentMessages() != 1 {
		t.Fatalf("accounting: %d bytes, %d msgs", l.SentBytes(), l.SentMessages())
	}
}

func TestTransferCancellation(t *testing.T) {
	l := &Link{BytesPerSec: 10, Latency: 0} // 10 B/s: 100 bytes = 10 s
	cancel := make(chan struct{})
	done := make(chan error)
	go func() { done <- l.Transfer(100, cancel) }()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	select {
	case err := <-done:
		if err != ErrCancelled {
			t.Fatalf("cancelled transfer returned %v, want ErrCancelled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled transfer did not return")
	}
}

// TestTransferCancelRollsBackReservation pins the reserve-on-success
// contract: a cancelled transfer must not advance busyUntil for later
// transfers, must not count toward SentBytes/SentMessages, and must be
// accounted under AbortedBytes instead.
func TestTransferCancelRollsBackReservation(t *testing.T) {
	l := &Link{BytesPerSec: 100, Latency: 0} // 1000 bytes = 10 s
	cancel := make(chan struct{})
	done := make(chan error)
	go func() { done <- l.Transfer(1000, cancel) }()
	time.Sleep(20 * time.Millisecond)
	close(cancel)
	if err := <-done; err != ErrCancelled {
		t.Fatalf("cancelled transfer returned %v", err)
	}
	if l.SentBytes() != 0 || l.SentMessages() != 0 {
		t.Fatalf("cancelled transfer counted as sent: %d bytes, %d msgs", l.SentBytes(), l.SentMessages())
	}
	if l.AbortedBytes() != 1000 || l.AbortedMessages() != 1 {
		t.Fatalf("aborted accounting: %d bytes, %d msgs", l.AbortedBytes(), l.AbortedMessages())
	}
	// The reservation must have been rolled back: a fast follow-up transfer
	// does not wait out the cancelled message's ten-second slot.
	fast := &Link{BytesPerSec: 1 << 30}
	_ = fast
	start := time.Now()
	if err := l.Transfer(1, nil); err != nil { // 10 ms at 100 B/s
		t.Fatalf("follow-up transfer failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled reservation not rolled back: follow-up took %v", elapsed)
	}
	if l.SentBytes() != 1 {
		t.Fatalf("follow-up not accounted: %d bytes", l.SentBytes())
	}
}

// TestCutFaultChargesPartialBytes: a cut message consumes bandwidth for the
// bytes that crossed before the break, accounted as aborted.
func TestCutFaultChargesPartialBytes(t *testing.T) {
	l := &Link{
		BytesPerSec: 1 << 30,
		Faults:      &FaultProfile{Seed: 1, CutRate: 1, FailAfterBytes: 64},
	}
	err := l.Transfer(1000, nil)
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != FaultCut || fe.Sent != 64 {
		t.Fatalf("cut transfer returned %v", err)
	}
	if l.SentBytes() != 0 || l.AbortedBytes() != 64 {
		t.Fatalf("cut accounting: sent %d, aborted %d", l.SentBytes(), l.AbortedBytes())
	}
}

// TestFaultInjectionDeterministic: the same seed yields the same fault
// sequence; a different seed diverges (with overwhelming probability over
// 64 draws).
func TestFaultInjectionDeterministic(t *testing.T) {
	p := &FaultProfile{Seed: 42, TransientRate: 0.3, DropRate: 0.2, StallRate: 0.1}
	draw := func(seed int64) []FaultKind {
		q := *p
		q.Seed = seed
		inj := q.Injector("stream")
		out := make([]FaultKind, 64)
		for i := range out {
			out[i] = inj.Next()
		}
		return out
	}
	a, b, c := draw(42), draw(42), draw(7)
	same := func(x, y []FaultKind) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same seed produced different fault sequences")
	}
	if same(a, c) {
		t.Fatal("different seeds produced identical fault sequences")
	}
	if inj := p.Injector("s"); inj.Injected() != 0 {
		t.Fatal("fresh injector reports injected faults")
	}
}

// TestBreakerLifecycle walks closed → open → half-open → closed and
// half-open → open, checking Allow gating and transition counting.
func TestBreakerLifecycle(t *testing.T) {
	pol := RetryPolicy{BreakerFailures: 2, BreakerCooldown: 10 * time.Millisecond}.WithDefaults()
	var seen []string
	b := NewBreaker(pol, func(from, to BreakerState) {
		seen = append(seen, from.String()+">"+to.String())
	})
	now := time.Now()
	if !b.Allow(now) || b.State() != BreakerClosed {
		t.Fatal("fresh breaker must be closed and allowing")
	}
	b.Failure(now)
	if b.State() != BreakerClosed {
		t.Fatal("one failure must not open the breaker")
	}
	b.Failure(now)
	if b.State() != BreakerOpen {
		t.Fatal("threshold failures must open the breaker")
	}
	if b.Allow(now.Add(time.Millisecond)) {
		t.Fatal("open breaker allowed an attempt before cooldown")
	}
	trial := now.Add(pol.BreakerCooldown)
	if !b.Allow(trial) || b.State() != BreakerHalfOpen {
		t.Fatal("cooldown must admit a half-open trial")
	}
	if b.Allow(trial) {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}
	b.Failure(trial)
	if b.State() != BreakerOpen {
		t.Fatal("failed half-open trial must re-open")
	}
	if !b.Allow(trial.Add(pol.BreakerCooldown)) {
		t.Fatal("second cooldown must admit another trial")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("successful trial must close the breaker")
	}
	if b.Transitions() != 5 || len(seen) != 5 {
		t.Fatalf("transitions = %d, callbacks = %v", b.Transitions(), seen)
	}
}

// TestBreakerSetPerSite: breakers are independent per site and the set's
// transition callback carries the site.
func TestBreakerSetPerSite(t *testing.T) {
	s := NewBreakerSet(RetryPolicy{BreakerFailures: 1}.WithDefaults())
	var sites []int
	s.OnTransition = func(site int, from, to BreakerState) { sites = append(sites, site) }
	now := time.Now()
	s.For(1).Failure(now)
	if s.For(1).State() != BreakerOpen || s.For(2).State() != BreakerClosed {
		t.Fatalf("breaker states not per-site: %v", s.States())
	}
	if len(sites) != 1 || sites[0] != 1 {
		t.Fatalf("transition callback sites = %v", sites)
	}
	if s.For(1) != s.For(1) {
		t.Fatal("For must return a stable breaker per site")
	}
}

// TestBackoffCappedExponential: backoff doubles from BaseBackoff and caps
// at MaxBackoff; jitter stays within ±Jitter.
func TestBackoffCappedExponential(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Jitter: -1}.WithDefaults()
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.Backoff(i, nil); got != w*time.Millisecond {
			t.Fatalf("Backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	j := RetryPolicy{BaseBackoff: 100 * time.Millisecond, Jitter: 0.5}.WithDefaults()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		d := j.Backoff(0, rng)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered backoff %v outside ±50%%", d)
		}
	}
}

// TestLinkSerializesConcurrentTransfers: two concurrent transfers share the
// modeled bandwidth, so together they take about twice one transfer's time.
func TestLinkSerializesConcurrentTransfers(t *testing.T) {
	l := &Link{BytesPerSec: 1 << 20} // 1 MiB/s; 64 KiB ≈ 62 ms
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Transfer(64<<10, nil)
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("concurrent transfers did not serialize: %v", elapsed)
	}
}

func TestTopology(t *testing.T) {
	def := &Link{BytesPerSec: Mbps(10)}
	topo := NewTopology(def)
	if topo.LinkBetween(0, 0) != nil {
		t.Fatal("same-site traffic must be free")
	}
	if topo.LinkBetween(0, 1) != def {
		t.Fatal("default link not used")
	}
	fast := &Link{BytesPerSec: Mbps(100)}
	topo.SetLink(0, 2, fast)
	if topo.LinkBetween(0, 2) != fast || topo.LinkBetween(2, 0) != fast {
		t.Fatal("dedicated link must be symmetric")
	}
	if topo.LinkBetween(0, 1) != def {
		t.Fatal("dedicated link leaked to other pairs")
	}
	if topo.String() == "" || (*Topology)(nil).String() != "local" {
		t.Fatal("String rendering broken")
	}
	bare := NewTopology(nil)
	if bare.LinkBetween(0, 5) != nil {
		t.Fatal("no-default topology should return nil link")
	}
}

func TestMbps(t *testing.T) {
	if Mbps(8) != 1e6 {
		t.Fatalf("Mbps(8) = %d, want 1e6 bytes/s", Mbps(8))
	}
	if Mbps(100) != 12500000 {
		t.Fatalf("Mbps(100) = %d", Mbps(100))
	}
}

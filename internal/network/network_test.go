package network

import (
	"sync"
	"testing"
	"time"
)

func TestTransferTime(t *testing.T) {
	l := &Link{BytesPerSec: 1000, Latency: 10 * time.Millisecond}
	if got := l.TransferTime(1000); got != 10*time.Millisecond+time.Second {
		t.Fatalf("TransferTime = %v", got)
	}
	// Infinite bandwidth: latency only.
	fast := &Link{Latency: 5 * time.Millisecond}
	if got := fast.TransferTime(1 << 30); got != 5*time.Millisecond {
		t.Fatalf("latency-only TransferTime = %v", got)
	}
	// Scale compresses time.
	scaled := &Link{BytesPerSec: 1000, Scale: 10}
	if got := scaled.TransferTime(1000); got != 100*time.Millisecond {
		t.Fatalf("scaled TransferTime = %v", got)
	}
}

func TestTransferBlocksAndAccounts(t *testing.T) {
	l := &Link{BytesPerSec: 1 << 20, Latency: 20 * time.Millisecond}
	start := time.Now()
	if !l.Transfer(1024, nil) {
		t.Fatal("transfer failed")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("transfer returned too fast: %v", elapsed)
	}
	if l.SentBytes() != 1024 || l.SentMessages() != 1 {
		t.Fatalf("accounting: %d bytes, %d msgs", l.SentBytes(), l.SentMessages())
	}
}

func TestTransferCancellation(t *testing.T) {
	l := &Link{BytesPerSec: 10, Latency: 0} // 10 B/s: 100 bytes = 10 s
	cancel := make(chan struct{})
	done := make(chan bool)
	go func() { done <- l.Transfer(100, cancel) }()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("cancelled transfer reported success")
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled transfer did not return")
	}
}

// TestLinkSerializesConcurrentTransfers: two concurrent transfers share the
// modeled bandwidth, so together they take about twice one transfer's time.
func TestLinkSerializesConcurrentTransfers(t *testing.T) {
	l := &Link{BytesPerSec: 1 << 20} // 1 MiB/s; 64 KiB ≈ 62 ms
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Transfer(64<<10, nil)
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("concurrent transfers did not serialize: %v", elapsed)
	}
}

func TestTopology(t *testing.T) {
	def := &Link{BytesPerSec: Mbps(10)}
	topo := NewTopology(def)
	if topo.LinkBetween(0, 0) != nil {
		t.Fatal("same-site traffic must be free")
	}
	if topo.LinkBetween(0, 1) != def {
		t.Fatal("default link not used")
	}
	fast := &Link{BytesPerSec: Mbps(100)}
	topo.SetLink(0, 2, fast)
	if topo.LinkBetween(0, 2) != fast || topo.LinkBetween(2, 0) != fast {
		t.Fatal("dedicated link must be symmetric")
	}
	if topo.LinkBetween(0, 1) != def {
		t.Fatal("dedicated link leaked to other pairs")
	}
	if topo.String() == "" || (*Topology)(nil).String() != "local" {
		t.Fatal("String rendering broken")
	}
	bare := NewTopology(nil)
	if bare.LinkBetween(0, 5) != nil {
		t.Fatal("no-default topology should return nil link")
	}
}

func TestMbps(t *testing.T) {
	if Mbps(8) != 1e6 {
		t.Fatalf("Mbps(8) = %d, want 1e6 bytes/s", Mbps(8))
	}
	if Mbps(100) != 12500000 {
		t.Fatalf("Mbps(100) = %d", Mbps(100))
	}
}

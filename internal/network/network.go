// Package network simulates the wide-area links of the paper's distributed
// experiments. The paper runs its distributed setting over 10 Mbps (cost
// model assumption, §V) and 100 Mbps Ethernet (§VI-C); this package models
// a link as latency + bandwidth and charges real wall-clock time for
// transfers, so running-time figures reflect shipping costs exactly the way
// the paper's testbed did.
//
// A Topology names a set of sites (site 0 is the master query node) and the
// links between them; filters shipped by the distributed AIP Manager and
// tuples shipped by exec.Ship both pay the link's transfer cost and are
// accounted in stats.Registry.NetworkBytes.
package network

import (
	"fmt"
	"sync"
	"time"
)

// Link models one directed connection.
type Link struct {
	// BytesPerSec is the modeled bandwidth; zero means infinite.
	BytesPerSec int64
	// Latency is the fixed per-message delay.
	Latency time.Duration
	// Scale divides all sleep times, letting experiments compress
	// wall-clock time uniformly; 0 or 1 means real time.
	Scale float64
	// Faults, when non-nil, injects per-message failures (drop, stall,
	// transient error, mid-message cut) drawn deterministically from the
	// profile's seed. A nil profile is a reliable link.
	Faults *FaultProfile

	mu           sync.Mutex
	sentBytes    int64
	sentMsgs     int64
	abortedBytes int64
	abortedMsgs  int64
	busyUntil    time.Time
	inj          *FaultInjector
}

// TransferTime returns the modeled time for a message of n bytes.
func (l *Link) TransferTime(n int) time.Duration {
	d := l.Latency
	if l.BytesPerSec > 0 {
		d += time.Duration(float64(n) / float64(l.BytesPerSec) * float64(time.Second))
	}
	if l.Scale > 0 && l.Scale != 1 {
		d = time.Duration(float64(d) / l.Scale)
	}
	return d
}

// Transfer blocks for the modeled transfer time of an n-byte message and
// records the traffic. Concurrent transfers share the link: they serialize
// on the modeled bandwidth, as a real link would.
//
// Bandwidth is reserved while the message is in flight and committed to the
// sent counters only on success; a cancelled or faulted transfer rolls its
// reservation back when possible and is accounted under AbortedBytes, so a
// failed attempt never inflates the sent-byte figures.
//
// It returns nil on success, ErrCancelled when cancel fired first, or a
// *FaultError when the link's fault profile failed the message.
func (l *Link) Transfer(n int, cancel <-chan struct{}) error {
	l.mu.Lock()
	fault := FaultNone
	if l.Faults.Active() {
		if l.inj == nil {
			l.inj = l.Faults.Injector("link")
		}
		fault = l.inj.Next()
	}
	switch fault {
	case FaultTransient:
		// Fails before any bytes move: no bandwidth, no reservation.
		l.abortedMsgs++
		l.mu.Unlock()
		return &FaultError{Kind: FaultTransient}
	case FaultStall:
		// Hangs without consuming modeled bandwidth — the wire is idle, the
		// far end just never answers.
		l.abortedMsgs++
		l.mu.Unlock()
		if cancel == nil {
			// Nothing can end the stall; treat as an immediate timeout
			// rather than wedging the caller forever.
			return &FaultError{Kind: FaultStall}
		}
		<-cancel
		return ErrCancelled
	case FaultCut:
		n = l.inj.cutBytes(n)
	}

	// Reserve the link: the message occupies [start, end) of modeled
	// bandwidth. Counters are not advanced yet (reserve now, commit on
	// success).
	now := time.Now()
	start := now
	if l.busyUntil.After(now) {
		start = l.busyUntil
	}
	end := start.Add(l.TransferTime(n))
	l.busyUntil = end
	l.mu.Unlock()

	wait := time.Until(end)
	completed := true
	if wait > 0 {
		select {
		case <-time.After(wait):
		case <-cancel:
			completed = false
		}
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if !completed {
		// Roll the reservation back when no later transfer queued behind
		// it; otherwise the slot is already promised and stays consumed,
		// like frames already handed to the NIC.
		if l.busyUntil.Equal(end) {
			l.busyUntil = start
		}
		l.abortedBytes += int64(n)
		l.abortedMsgs++
		return ErrCancelled
	}
	switch fault {
	case FaultDrop:
		// The message crossed (and consumed) the wire but was lost.
		l.abortedBytes += int64(n)
		l.abortedMsgs++
		return &FaultError{Kind: FaultDrop, Sent: n}
	case FaultCut:
		l.abortedBytes += int64(n)
		l.abortedMsgs++
		return &FaultError{Kind: FaultCut, Sent: n}
	}
	l.sentBytes += int64(n)
	l.sentMsgs++
	return nil
}

// SentBytes returns the total bytes successfully transferred over the link.
func (l *Link) SentBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sentBytes
}

// SentMessages returns the number of messages successfully transferred.
func (l *Link) SentMessages() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sentMsgs
}

// AbortedBytes returns the modeled bytes consumed by cancelled, dropped, or
// cut transfers — bandwidth wasted on work that never completed.
func (l *Link) AbortedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.abortedBytes
}

// AbortedMessages returns the number of failed or cancelled transfers.
func (l *Link) AbortedMessages() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.abortedMsgs
}

// Topology is the set of sites and pairwise links of one experiment.
type Topology struct {
	mu    sync.Mutex
	links map[[2]int]*Link
	// Default is used for site pairs without an explicit link.
	Default *Link
}

// NewTopology creates a topology with the given default link parameters.
func NewTopology(def *Link) *Topology {
	return &Topology{links: make(map[[2]int]*Link), Default: def}
}

// SetLink installs a dedicated link between two sites (symmetric).
func (t *Topology) SetLink(a, b int, l *Link) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.links[[2]int{a, b}] = l
	t.links[[2]int{b, a}] = l
}

// LinkBetween returns the link connecting two sites; same-site traffic is
// free (returns nil).
func (t *Topology) LinkBetween(a, b int) *Link {
	if a == b {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok := t.links[[2]int{a, b}]; ok {
		return l
	}
	if t.Default != nil {
		return t.Default
	}
	return nil
}

// String describes the topology.
func (t *Topology) String() string {
	if t == nil {
		return "local"
	}
	if t.Default != nil {
		return fmt.Sprintf("topology(default %d B/s, %v latency)", t.Default.BytesPerSec, t.Default.Latency)
	}
	return "topology(custom links)"
}

// Mbps converts megabits/second to bytes/second for link construction.
func Mbps(m float64) int64 { return int64(m * 1e6 / 8) }

// Package network simulates the wide-area links of the paper's distributed
// experiments. The paper runs its distributed setting over 10 Mbps (cost
// model assumption, §V) and 100 Mbps Ethernet (§VI-C); this package models
// a link as latency + bandwidth and charges real wall-clock time for
// transfers, so running-time figures reflect shipping costs exactly the way
// the paper's testbed did.
//
// A Topology names a set of sites (site 0 is the master query node) and the
// links between them; filters shipped by the distributed AIP Manager and
// tuples shipped by exec.Ship both pay the link's transfer cost and are
// accounted in stats.Registry.NetworkBytes.
package network

import (
	"fmt"
	"sync"
	"time"
)

// Link models one directed connection.
type Link struct {
	// BytesPerSec is the modeled bandwidth; zero means infinite.
	BytesPerSec int64
	// Latency is the fixed per-message delay.
	Latency time.Duration
	// Scale divides all sleep times, letting experiments compress
	// wall-clock time uniformly; 0 or 1 means real time.
	Scale float64

	mu        sync.Mutex
	sentBytes int64
	sentMsgs  int64
	busyUntil time.Time
}

// TransferTime returns the modeled time for a message of n bytes.
func (l *Link) TransferTime(n int) time.Duration {
	d := l.Latency
	if l.BytesPerSec > 0 {
		d += time.Duration(float64(n) / float64(l.BytesPerSec) * float64(time.Second))
	}
	if l.Scale > 0 && l.Scale != 1 {
		d = time.Duration(float64(d) / l.Scale)
	}
	return d
}

// Transfer blocks for the modeled transfer time of an n-byte message and
// records the traffic. Concurrent transfers share the link: they serialize
// on the modeled bandwidth, as a real link would.
func (l *Link) Transfer(n int, cancel <-chan struct{}) bool {
	l.mu.Lock()
	now := time.Now()
	start := now
	if l.busyUntil.After(now) {
		start = l.busyUntil
	}
	end := start.Add(l.TransferTime(n))
	l.busyUntil = end
	l.sentBytes += int64(n)
	l.sentMsgs++
	l.mu.Unlock()

	wait := time.Until(end)
	if wait <= 0 {
		return true
	}
	select {
	case <-time.After(wait):
		return true
	case <-cancel:
		return false
	}
}

// SentBytes returns the total bytes transferred over the link.
func (l *Link) SentBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sentBytes
}

// SentMessages returns the number of messages transferred.
func (l *Link) SentMessages() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sentMsgs
}

// Topology is the set of sites and pairwise links of one experiment.
type Topology struct {
	mu    sync.Mutex
	links map[[2]int]*Link
	// Default is used for site pairs without an explicit link.
	Default *Link
}

// NewTopology creates a topology with the given default link parameters.
func NewTopology(def *Link) *Topology {
	return &Topology{links: make(map[[2]int]*Link), Default: def}
}

// SetLink installs a dedicated link between two sites (symmetric).
func (t *Topology) SetLink(a, b int, l *Link) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.links[[2]int{a, b}] = l
	t.links[[2]int{b, a}] = l
}

// LinkBetween returns the link connecting two sites; same-site traffic is
// free (returns nil).
func (t *Topology) LinkBetween(a, b int) *Link {
	if a == b {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok := t.links[[2]int{a, b}]; ok {
		return l
	}
	if t.Default != nil {
		return t.Default
	}
	return nil
}

// String describes the topology.
func (t *Topology) String() string {
	if t == nil {
		return "local"
	}
	if t.Default != nil {
		return fmt.Sprintf("topology(default %d B/s, %v latency)", t.Default.BytesPerSec, t.Default.Latency)
	}
	return "topology(custom links)"
}

// Mbps converts megabits/second to bytes/second for link construction.
func Mbps(m float64) int64 { return int64(m * 1e6 / 8) }

package network

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// FaultKind classifies one injected failure.
type FaultKind int

// Injected fault classes. The symptom the *sender* observes is what matters
// for recovery policy, so the classes are named for how a failure manifests,
// not for its root cause.
const (
	// FaultNone: the interaction proceeds normally.
	FaultNone FaultKind = iota
	// FaultTransient: the interaction fails immediately (connection
	// refused, HTTP 503) without consuming modeled bandwidth.
	FaultTransient
	// FaultDrop: the message is lost in flight. The sender pays the full
	// modeled transfer time before discovering the loss — the way a lost
	// message surfaces as an acknowledgement timeout.
	FaultDrop
	// FaultStall: the interaction hangs until cancelled (a wedged source
	// that neither answers nor closes). Only a per-attempt timeout or query
	// cancellation ends a stalled attempt.
	FaultStall
	// FaultCut: the connection breaks mid-message after FailAfterBytes
	// bytes; the partial transfer consumes proportional bandwidth.
	FaultCut
)

var faultNames = map[FaultKind]string{
	FaultNone: "none", FaultTransient: "transient", FaultDrop: "drop",
	FaultStall: "stall", FaultCut: "cut",
}

// String names the fault class.
func (k FaultKind) String() string {
	if n, ok := faultNames[k]; ok {
		return n
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// FaultProfile parameterizes deterministic fault injection for one link or
// source stream. Rates are independent per-attempt probabilities evaluated
// in the order transient, drop, stall, cut; the first match wins. The zero
// profile injects nothing.
//
// Chaos runs are reproducible: every injector derived from a profile draws
// its decisions from a PRNG seeded with Seed mixed with the stream's name,
// so the same (profile, plan, seed) triple injects the same fault sequence.
type FaultProfile struct {
	// Seed makes the injected fault sequence deterministic. Two injectors
	// with the same Seed and stream name inject identical sequences.
	Seed int64

	// TransientRate is the probability of an immediate transient error.
	TransientRate float64
	// DropRate is the probability a message is lost in flight (full
	// transfer time consumed before the failure surfaces).
	DropRate float64
	// StallRate is the probability an interaction hangs until cancelled.
	StallRate float64
	// CutRate is the probability a message is cut after FailAfterBytes.
	CutRate float64
	// FailAfterBytes bounds how much of a cut message crosses the link
	// before the failure; zero cuts messages at half their size.
	FailAfterBytes int64
}

// Active reports whether the profile injects any faults at all.
func (p *FaultProfile) Active() bool {
	return p != nil && (p.TransientRate > 0 || p.DropRate > 0 || p.StallRate > 0 || p.CutRate > 0)
}

// Injector creates a deterministic fault source for one named stream.
func (p *FaultProfile) Injector(stream string) *FaultInjector {
	seed := p.Seed
	for _, c := range []byte(stream) {
		seed = seed*131 + int64(c)
	}
	return &FaultInjector{p: *p, rng: rand.New(rand.NewSource(seed))}
}

// FaultInjector draws per-attempt fault decisions from a seeded PRNG. It is
// safe for concurrent use (decisions serialize on an internal lock), though
// determinism across runs additionally requires that the draw *order* is
// deterministic — one injector per single-goroutine stream achieves that.
type FaultInjector struct {
	mu       sync.Mutex
	p        FaultProfile
	rng      *rand.Rand
	injected int64
}

// Next draws the fault decision for one attempt.
func (fi *FaultInjector) Next() FaultKind {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	r := fi.rng.Float64()
	for _, c := range [...]struct {
		rate float64
		kind FaultKind
	}{
		{fi.p.TransientRate, FaultTransient},
		{fi.p.DropRate, FaultDrop},
		{fi.p.StallRate, FaultStall},
		{fi.p.CutRate, FaultCut},
	} {
		if r < c.rate {
			fi.injected++
			return c.kind
		}
		r -= c.rate
	}
	return FaultNone
}

// Injected returns how many faults this injector has produced.
func (fi *FaultInjector) Injected() int64 {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.injected
}

// cutBytes returns how many bytes of an n-byte message cross the link
// before a cut fault breaks it.
func (fi *FaultInjector) cutBytes(n int) int {
	if fi.p.FailAfterBytes > 0 && int64(n) > fi.p.FailAfterBytes {
		return int(fi.p.FailAfterBytes)
	}
	return n / 2
}

// FaultError is the typed failure of one injected fault. It is transient by
// construction — every injected fault models a condition a retry might
// outlast — so recovery layers treat any FaultError as retryable.
type FaultError struct {
	Kind FaultKind
	// Sent is how many bytes of the message consumed modeled bandwidth
	// before the failure (wasted work the retry layer accounts for).
	Sent int
}

// Error renders the fault.
func (e *FaultError) Error() string {
	if e.Sent > 0 {
		return fmt.Sprintf("network: injected %s fault after %d bytes", e.Kind, e.Sent)
	}
	return fmt.Sprintf("network: injected %s fault", e.Kind)
}

// ErrCancelled reports a transfer aborted by its cancel channel. It is not
// retryable: the caller is shutting down.
var ErrCancelled = errors.New("network: transfer cancelled")

// ErrBreakerOpen reports an attempt rejected by an open circuit breaker
// without touching the link. It is retryable — the breaker may close.
var ErrBreakerOpen = errors.New("network: circuit breaker open")

// Retryable reports whether an attempt error may be retried: injected
// faults, attempt timeouts (which surface as ErrCancelled from the per-
// attempt stop channel — callers distinguish via their own context), and
// breaker rejections are; a true cancellation is not.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var fe *FaultError
	return errors.As(err, &fe) || errors.Is(err, ErrBreakerOpen)
}

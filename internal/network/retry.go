// Recovery policy for unreliable sources: bounded retries with capped
// exponential backoff and jitter, per-attempt timeouts, and a per-site
// circuit breaker (closed → open → half-open). The policy is pure
// configuration plus small state machines; the executor drives the attempt
// loops (see internal/exec) so cancellation and stats stay in one place.
package network

import (
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy bounds how hard the engine fights for one remote interaction
// (a shipped batch, a delayed-source read, an AIP filter transfer) before
// declaring the source failed.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first try (so a
	// source gets 1+MaxRetries attempts). Negative disables retries
	// entirely; zero means the default (3).
	MaxRetries int

	// AttemptTimeout bounds one attempt; a stalled attempt is abandoned and
	// retried after this long. Zero means the default (2s); negative
	// disables the per-attempt timeout (a stalled source then hangs until
	// the query's own deadline or cancellation).
	AttemptTimeout time.Duration

	// BaseBackoff is the first retry's backoff; each further retry doubles
	// it up to MaxBackoff, with ±Jitter randomization. Zero means the
	// default (10ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Zero means the default
	// (500ms).
	MaxBackoff time.Duration
	// Jitter is the fraction of the backoff randomized symmetrically
	// around it (0.2 = ±20%, the default). Negative disables jitter.
	Jitter float64

	// BreakerFailures is the number of consecutive failed attempts against
	// one site that opens its circuit breaker. Zero means the default (5);
	// negative disables the breaker.
	BreakerFailures int
	// BreakerCooldown is how long an open breaker rejects attempts before
	// letting one half-open trial through. Zero means the default (500ms).
	BreakerCooldown time.Duration

	// Seed makes backoff jitter deterministic for reproducible chaos runs.
	Seed int64
}

// WithDefaults resolves the zero-means-default fields.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.AttemptTimeout == 0 {
		p.AttemptTimeout = 2 * time.Second
	}
	if p.AttemptTimeout < 0 {
		p.AttemptTimeout = 0
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 500 * time.Millisecond
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.BreakerFailures == 0 {
		p.BreakerFailures = 5
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 500 * time.Millisecond
	}
	return p
}

// Backoff returns the delay before retry number retry (0-based: the delay
// between the first failure and the second attempt), capped exponential
// with jitter drawn from rng (nil rng means no jitter).
func (p RetryPolicy) Backoff(retry int, rng *rand.Rand) time.Duration {
	d := p.BaseBackoff
	for i := 0; i < retry && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 && rng != nil {
		// Symmetric jitter: d * (1 ± Jitter).
		f := 1 + p.Jitter*(2*rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// BreakerState is a circuit breaker's position.
type BreakerState int32

// Breaker states.
const (
	// BreakerClosed: attempts flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: attempts are rejected without touching the site.
	BreakerOpen
	// BreakerHalfOpen: one trial attempt is in flight; its outcome closes
	// or re-opens the breaker.
	BreakerHalfOpen
)

var breakerNames = map[BreakerState]string{
	BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
}

// String names the state.
func (s BreakerState) String() string { return breakerNames[s] }

// Breaker is one site's circuit breaker. BreakerFailures consecutive failed
// attempts open it; while open, Allow rejects attempts without touching the
// site; after BreakerCooldown one half-open trial is admitted, and its
// outcome closes the breaker or re-opens it for another cooldown.
type Breaker struct {
	mu       sync.Mutex
	pol      RetryPolicy
	state    BreakerState
	fails    int
	openedAt time.Time

	transitions int64
	onChange    func(from, to BreakerState)
}

// NewBreaker creates a closed breaker under the (already defaulted) policy.
func NewBreaker(pol RetryPolicy, onChange func(from, to BreakerState)) *Breaker {
	return &Breaker{pol: pol, onChange: onChange}
}

func (b *Breaker) to(s BreakerState) {
	if b.state == s {
		return
	}
	from := b.state
	b.state = s
	b.transitions++
	if b.onChange != nil {
		b.onChange(from, s)
	}
}

// Allow reports whether an attempt may proceed now. In the open state it
// rejects until the cooldown elapses, then admits exactly one half-open
// trial (the caller that got true); further callers are rejected until the
// trial reports Success or Failure.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) >= b.pol.BreakerCooldown {
			b.to(BreakerHalfOpen)
			return true
		}
		return false
	default: // half-open: a trial is already in flight
		return false
	}
}

// Success records a successful attempt: the failure streak resets and a
// half-open trial closes the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.to(BreakerClosed)
}

// Failure records a failed attempt; enough consecutive failures (or any
// failed half-open trial) open the breaker.
func (b *Breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.pol.BreakerFailures < 0 {
		return
	}
	if b.state == BreakerHalfOpen || b.fails >= b.pol.BreakerFailures {
		b.openedAt = now
		b.to(BreakerOpen)
	}
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Transitions returns how many state changes the breaker has made.
func (b *Breaker) Transitions() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.transitions
}

// BreakerSet is the per-site breaker registry of one query execution (or of
// a longer-lived serving tier, if callers share it across queries).
type BreakerSet struct {
	pol RetryPolicy
	// OnTransition, when set before any breaker is created, observes every
	// state change of every breaker in the set.
	OnTransition func(site int, from, to BreakerState)

	mu sync.Mutex
	m  map[int]*Breaker
}

// NewBreakerSet creates an empty set under the (already defaulted) policy.
func NewBreakerSet(pol RetryPolicy) *BreakerSet {
	return &BreakerSet{pol: pol, m: map[int]*Breaker{}}
}

// For returns (creating on first use) the breaker guarding a site.
func (s *BreakerSet) For(site int) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[site]
	if !ok {
		var onChange func(from, to BreakerState)
		if cb := s.OnTransition; cb != nil {
			onChange = func(from, to BreakerState) { cb(site, from, to) }
		}
		b = NewBreaker(s.pol, onChange)
		s.m[site] = b
	}
	return b
}

// States snapshots every site's breaker position.
func (s *BreakerSet) States() map[int]BreakerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]BreakerState, len(s.m))
	for site, b := range s.m {
		out[site] = b.State()
	}
	return out
}

package sched

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// startPool spawns the pool on plain goroutines and returns a stopper.
func startPool(p *Pool) func() {
	p.Start(func(f func()) { go f() })
	return func() {
		p.Stop()
		p.Wait()
	}
}

// drainTo busy-waits until the counter reaches want (tasks are async).
func drainTo(t *testing.T, c *atomic.Int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Load() != want {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %d, want %d", c.Load(), want)
		}
		runtime.Gosched()
	}
}

func TestPoolRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		stop := startPool(p)
		var ran atomic.Int64
		const n = 10_000
		for i := 0; i < n; i++ {
			p.Submit(func(w int) { ran.Add(1) })
		}
		drainTo(t, &ran, n)
		stop()
		if got := p.Stats().Morsels; got != n {
			t.Fatalf("workers=%d: Morsels = %d, want %d", workers, got, n)
		}
	}
}

func TestPoolWorkerIDsInRange(t *testing.T) {
	p := New(4)
	stop := startPool(p)
	defer stop()
	var bad atomic.Int64
	var ran atomic.Int64
	const n = 1000
	for i := 0; i < n; i++ {
		p.Submit(func(w int) {
			if w < 0 || w >= 4 {
				bad.Add(1)
			}
			ran.Add(1)
		})
	}
	drainTo(t, &ran, n)
	if bad.Load() != 0 {
		t.Fatalf("%d tasks saw an out-of-range worker id", bad.Load())
	}
}

// TestPoolStealing pins the work-stealing path: worker 0's deque is loaded
// with quick tasks plus one blocking task at the LIFO tail. Worker 0 pops
// the blocker and stalls, so every quick task that completes while it is
// blocked must have been stolen by another worker.
func TestPoolStealing(t *testing.T) {
	p := New(4)
	var ran atomic.Int64
	const n = 200
	for i := 0; i < n; i++ {
		p.SubmitFrom(0, func(w int) { ran.Add(1) })
	}
	release := make(chan struct{})
	p.SubmitFrom(0, func(w int) { <-release }) // tail: worker 0 pops this first
	stop := startPool(p)
	defer stop()
	drainTo(t, &ran, n) // all quick tasks done while one worker is blocked
	close(release)
	if p.Stats().Steals == 0 {
		t.Fatal("no steals recorded with a single loaded deque and 3 idle workers")
	}
}

// TestPoolSubmitFromPseudoWorker: ids at or beyond the pool size go through
// the injector rather than indexing a deque (the sequential-source path).
func TestPoolSubmitFromPseudoWorker(t *testing.T) {
	p := New(2)
	stop := startPool(p)
	defer stop()
	var ran atomic.Int64
	p.SubmitFrom(2, func(w int) { ran.Add(1) })  // first pseudo id
	p.SubmitFrom(-1, func(w int) { ran.Add(1) }) // defensive: invalid id
	drainTo(t, &ran, 2)
}

// TestPoolParkWake: workers park when idle and are woken by later
// submissions; no task is lost across the idle period.
func TestPoolParkWake(t *testing.T) {
	p := New(2)
	stop := startPool(p)
	defer stop()
	var ran atomic.Int64
	p.Submit(func(w int) { ran.Add(1) })
	drainTo(t, &ran, 1)
	// Give the workers a moment to go idle and park.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Parks == 0 && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	for i := 0; i < 100; i++ {
		p.Submit(func(w int) { ran.Add(1) })
	}
	drainTo(t, &ran, 101)
	if st := p.Stats(); st.Parks == 0 {
		t.Fatalf("no park transitions recorded across an idle period: %+v", st)
	}
}

// TestPoolSubmitDuringParkRace hammers the submit/park race: tiny task
// bursts separated by idle gaps, so submissions constantly land while
// workers are deciding to park. A lost wakeup would hang drainTo.
func TestPoolSubmitDuringParkRace(t *testing.T) {
	p := New(4)
	stop := startPool(p)
	defer stop()
	var ran atomic.Int64
	var want int64
	for round := 0; round < 200; round++ {
		for i := 0; i < 3; i++ {
			p.Submit(func(w int) { ran.Add(1) })
			want++
		}
		drainTo(t, &ran, want)
	}
}

func TestPoolStopAbandonsQueuedTasks(t *testing.T) {
	p := New(1)
	var ran atomic.Int64
	// Not started: everything stays queued.
	for i := 0; i < 10; i++ {
		p.Submit(func(w int) { ran.Add(1) })
	}
	p.Stop()
	p.Start(func(f func()) { go f() })
	p.Wait() // workers observe stopped and exit without draining
	if got := ran.Load(); got != 0 {
		t.Fatalf("stopped pool ran %d tasks", got)
	}
}

func TestPoolBusyAccounting(t *testing.T) {
	p := New(2)
	stop := startPool(p)
	var ran atomic.Int64
	p.Submit(func(w int) {
		time.Sleep(5 * time.Millisecond)
		ran.Add(1)
	})
	drainTo(t, &ran, 1)
	stop()
	st := p.Stats()
	var total time.Duration
	for _, d := range st.Busy {
		total += d
	}
	if total < 5*time.Millisecond {
		t.Fatalf("busy time %v does not cover the 5ms task", total)
	}
	if len(st.Busy) != 2 || st.Workers != 2 {
		t.Fatalf("stats shape: %+v", st)
	}
}

func TestNewFloorsWorkers(t *testing.T) {
	if got := New(0).Workers(); got != 1 {
		t.Fatalf("New(0).Workers() = %d, want 1", got)
	}
	if got := New(-3).Workers(); got != 1 {
		t.Fatalf("New(-3).Workers() = %d, want 1", got)
	}
}

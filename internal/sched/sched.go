// Package sched is the morsel-driven work-stealing scheduler behind the
// exec engine's "morsel" path (Context.Scheduler), in the style of HyPer's
// morsel model: instead of one goroutine per operator per partition glued
// by channels, a per-query pool of worker goroutines runs small tasks, each
// of which pushes one morsel (one exec.Batch, BatchSize tuples) through a
// fused operator chain or drains one operator partition's inbox.
//
// # Task contract
//
// A Task is one unit of work: run one operator partition over one morsel
// (or one range chunk of a scan). Tasks receive the integer id of the
// worker executing them; operator code uses that id to index per-worker
// scratch state (compiled expression kernels, hashers, row arenas), so a
// task may run on any worker but never runs concurrently with itself.
// Tasks must not block indefinitely on anything but query cancellation:
// the only blocking point in the engine's task bodies is the root output
// edge, whose send always selects on the query's cancel channel.
//
// # Queues and stealing
//
// Each worker owns a local deque: the owner pushes and pops at the tail
// (LIFO — a drain task scheduled by the morsel just produced is the
// cache-hottest work available), while idle workers steal single tasks
// from the head (FIFO — the oldest task is the least likely to be in any
// cache and the most likely to represent a large unit of pending work).
// Tasks submitted from outside the pool (scan range chunks, sequential
// source goroutines) go to a shared injector queue consumed FIFO. A worker
// looks for work in order: local tail, injector head, steal from victims.
//
// # Parking
//
// A worker that finds no work parks on a private channel and costs
// nothing until woken. The park protocol is lost-wakeup-free: producers
// enqueue the task, increment the pending-task count, and then wake one
// parked worker; a parker re-checks the pending count (and the stop flag)
// under the park lock before sleeping, so a submission that raced with
// the park decision is always observed either by the re-check or by the
// wake that follows the count increment.
//
// # Barriers and exactly-once
//
// The pool itself provides no ordering between tasks; the exec layer
// builds its pipeline-breaker barriers (input completion, AIP PointDone,
// the paper's §VI-A short-circuit, partial-result teardown) from atomic
// task counters: every enqueued partition message increments a per-input
// pending counter and every completed drain decrements it, so "input
// done" fires exactly once, after the input's last probe, regardless of
// which workers ran the drains or in what interleaving. Per-partition
// state is serialized not by the pool but by a single-claimant inbox
// (CAS-guarded drain) in the exec layer, which preserves the chan
// engine's exactly-once-per-partition emission argument: equal keys land
// in one partition, one drain at a time owns that partition's tables and
// ticket counter, and a probing tuple emits only smaller-ticket matches.
//
// Stop abandons queued tasks; the exec layer only stops the pool after
// the root's completion barrier fired (queue provably empty) or the query
// was cancelled (remaining work is moot and every task body checks the
// cancel channel).
package sched

import (
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Task is one schedulable unit of work. worker is the id of the pool
// worker executing it (0..Workers-1), used to index per-worker scratch.
type Task func(worker int)

// workerQ is one worker's deque. The owner pushes/pops the tail; thieves
// take one task from the head. A plain mutex is fine at morsel
// granularity: a task processes ~BatchSize tuples, so queue operations
// are orders of magnitude rarer than tuple operations.
type workerQ struct {
	mu sync.Mutex
	q  []Task
}

// Pool is a work-stealing worker pool for one query execution.
type Pool struct {
	// OnPanic, when non-nil, is called with a task's recovered panic value
	// and stack; the worker survives and keeps draining tasks. The exec
	// layer installs a hook that cancels the owning query with a typed
	// error, so one poisoned task fails its query instead of the process.
	// When nil, task panics propagate and crash as usual. Set before Start.
	OnPanic func(v any, stack []byte)

	workers []workerQ

	injectMu sync.Mutex
	inject   []Task

	// pending counts submitted-but-not-yet-dequeued tasks. It may read
	// transiently negative (a task can be dequeued between its enqueue and
	// its count increment); the park re-check only needs "> 0" to be
	// eventually true while work is queued.
	pending atomic.Int64

	stopping atomic.Bool // fast-path mirror of stopped for the run loop

	parkMu  sync.Mutex
	parked  []chan struct{}
	stopped bool

	wg sync.WaitGroup

	morsels atomic.Int64
	steals  atomic.Int64
	parks   atomic.Int64
	unparks atomic.Int64
	busy    []atomic.Int64 // per worker: nanoseconds spent running tasks
}

// New creates a pool with the given number of workers (floored at 1).
// Start must be called before any task runs.
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{
		workers: make([]workerQ, workers),
		busy:    make([]atomic.Int64, workers),
	}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return len(p.workers) }

// Start launches the worker goroutines through spawn (the exec layer
// passes Context.Spawn so pooled-stats quiescence can account for them).
func (p *Pool) Start(spawn func(func())) {
	p.wg.Add(len(p.workers))
	for w := range p.workers {
		w := w
		spawn(func() {
			defer p.wg.Done()
			p.run(w)
		})
	}
}

// Submit enqueues a task on the shared injector queue. Safe from any
// goroutine.
func (p *Pool) Submit(t Task) {
	p.injectMu.Lock()
	p.inject = append(p.inject, t)
	p.injectMu.Unlock()
	p.pending.Add(1)
	p.wake()
}

// SubmitFrom enqueues a task from worker w's own context: pool workers
// push their local deque's tail (LIFO, cache-hot), while pseudo-worker
// ids at or beyond the pool size (sequential source goroutines) fall back
// to the injector.
func (p *Pool) SubmitFrom(w int, t Task) {
	if w < 0 || w >= len(p.workers) {
		p.Submit(t)
		return
	}
	wq := &p.workers[w]
	wq.mu.Lock()
	wq.q = append(wq.q, t)
	wq.mu.Unlock()
	p.pending.Add(1)
	p.wake()
}

// Stop makes every worker exit once it finishes its current task,
// abandoning any still-queued tasks, and wakes all parked workers. Safe
// to call more than once.
func (p *Pool) Stop() {
	p.stopping.Store(true)
	p.parkMu.Lock()
	p.stopped = true
	parked := p.parked
	p.parked = nil
	p.parkMu.Unlock()
	for _, ch := range parked {
		close(ch)
	}
}

// Wait blocks until every worker goroutine has exited (after Stop).
func (p *Pool) Wait() { p.wg.Wait() }

// Stats is a snapshot of the pool's scheduling counters.
type Stats struct {
	Workers int
	Morsels int64           // tasks executed
	Steals  int64           // tasks taken from another worker's deque
	Parks   int64           // times a worker went to sleep
	Unparks int64           // times a sleeping worker was woken for work
	Busy    []time.Duration // per worker: time spent running tasks
}

// Stats snapshots the counters. Call after Wait for exact totals.
func (p *Pool) Stats() Stats {
	s := Stats{
		Workers: len(p.workers),
		Morsels: p.morsels.Load(),
		Steals:  p.steals.Load(),
		Parks:   p.parks.Load(),
		Unparks: p.unparks.Load(),
		Busy:    make([]time.Duration, len(p.busy)),
	}
	for i := range p.busy {
		s.Busy[i] = time.Duration(p.busy[i].Load())
	}
	return s
}

// run is one worker's main loop: dequeue, execute, park when dry.
func (p *Pool) run(w int) {
	for {
		if p.stopping.Load() {
			return
		}
		t := p.dequeue(w)
		if t == nil {
			if !p.park() {
				return
			}
			continue
		}
		start := time.Now()
		p.exec(w, t)
		p.busy[w].Add(int64(time.Since(start)))
		p.morsels.Add(1)
	}
}

// exec runs one task, containing its panic via OnPanic when installed. The
// recover lives in its own frame so a panicking task never unwinds the
// worker loop.
func (p *Pool) exec(w int, t Task) {
	if p.OnPanic != nil {
		defer func() {
			if r := recover(); r != nil {
				p.OnPanic(r, debug.Stack())
			}
		}()
	}
	t(w)
}

// dequeue finds the next task for worker w: local tail, then injector
// head, then a single steal from the first non-empty victim. Returns nil
// when no work is visible.
func (p *Pool) dequeue(w int) Task {
	wq := &p.workers[w]
	wq.mu.Lock()
	if n := len(wq.q); n > 0 {
		t := wq.q[n-1]
		wq.q[n-1] = nil
		wq.q = wq.q[:n-1]
		wq.mu.Unlock()
		p.pending.Add(-1)
		return t
	}
	wq.mu.Unlock()

	p.injectMu.Lock()
	if len(p.inject) > 0 {
		t := p.inject[0]
		p.inject[0] = nil
		p.inject = p.inject[1:]
		p.injectMu.Unlock()
		p.pending.Add(-1)
		return t
	}
	p.injectMu.Unlock()

	for i := 1; i < len(p.workers); i++ {
		vq := &p.workers[(w+i)%len(p.workers)]
		vq.mu.Lock()
		if len(vq.q) > 0 {
			t := vq.q[0]
			vq.q[0] = nil
			vq.q = vq.q[1:]
			vq.mu.Unlock()
			p.pending.Add(-1)
			p.steals.Add(1)
			return t
		}
		vq.mu.Unlock()
	}
	return nil
}

// park puts the calling worker to sleep until woken. It returns false
// when the pool is stopped (the worker must exit) and true when the
// worker should retry dequeuing.
func (p *Pool) park() bool {
	p.parkMu.Lock()
	if p.stopped {
		p.parkMu.Unlock()
		return false
	}
	// Re-check under the park lock: a producer that incremented pending
	// before we got here would otherwise have had no parked worker to
	// wake (its wake ran against an empty parked list).
	if p.pending.Load() > 0 {
		p.parkMu.Unlock()
		return true
	}
	ch := make(chan struct{})
	p.parked = append(p.parked, ch)
	p.parks.Add(1)
	p.parkMu.Unlock()
	<-ch
	p.parkMu.Lock()
	stopped := p.stopped
	p.parkMu.Unlock()
	return !stopped
}

// wake rouses one parked worker, if any.
func (p *Pool) wake() {
	p.parkMu.Lock()
	var ch chan struct{}
	if n := len(p.parked); n > 0 {
		ch = p.parked[n-1]
		p.parked = p.parked[:n-1]
		p.unparks.Add(1)
	}
	p.parkMu.Unlock()
	if ch != nil {
		close(ch)
	}
}

package sqlparser

import "strings"

// LitKind classifies one extracted literal of a normalized statement.
type LitKind uint8

// Literal kinds extracted by Normalize.
const (
	LitInt LitKind = iota
	LitFloat
	LitString
)

// Lit is one constant Normalize lifted out of the statement, in placeholder
// order. Text is the literal's source spelling: for LitInt/LitFloat the
// numeric token text (sign excluded — a leading unary minus stays in the
// normalized statement), for LitString the unquoted, unescaped value.
type Lit struct {
	Kind LitKind
	Text string
}

// Normalize rewrites the statement's constant literals to `?` placeholders,
// returning the normalized text and the lifted literals in placeholder
// (source) order. Two statements that differ only in constants normalize to
// the same text, so they can share one compiled plan template — the
// plan-cache parameterization the ad-hoc serving path relies on.
//
// The rewrite is purely token-level: the input is lexed with the SQL lexer
// (so comments and whitespace differences also normalize away) and
// reassembled with number and string tokens replaced by `?`. Grammar
// positions that require a literal token are left untouched: a LIKE
// pattern must stay a string literal. Statements that already contain `?`
// placeholders are returned with ok=false — they are prepared-statement
// texts, and mixing user placeholders with lifted literals would scramble
// the argument order.
//
// ok=false also means "nothing to parameterize" (no literals); callers
// should then use the original text unchanged.
func Normalize(src string) (norm string, lits []Lit, ok bool) {
	toks, _, err := lexAll(src)
	if err != nil {
		return "", nil, false // the parser will surface the lex error
	}
	var sb strings.Builder
	sb.Grow(len(src))
	for i, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if i > 0 {
			sb.WriteByte(' ')
		}
		switch t.kind {
		case tokOp:
			if t.text == "?" {
				return "", nil, false // already a prepared-statement text
			}
			sb.WriteString(t.text)
		case tokNumber:
			lits = append(lits, Lit{Kind: numberLitKind(t.text), Text: t.text})
			sb.WriteByte('?')
		case tokString:
			// A string directly after LIKE is a pattern: the grammar
			// requires a literal there, so it cannot become a placeholder.
			if i > 0 && toks[i-1].kind == tokKeyword && toks[i-1].text == "LIKE" {
				writeQuoted(&sb, t.text)
				continue
			}
			lits = append(lits, Lit{Kind: LitString, Text: t.text})
			sb.WriteByte('?')
		default: // keywords, identifiers
			sb.WriteString(t.text)
		}
	}
	if len(lits) == 0 {
		return "", nil, false
	}
	return sb.String(), lits, true
}

func numberLitKind(text string) LitKind {
	if strings.Contains(text, ".") {
		return LitFloat
	}
	return LitInt
}

// writeQuoted re-quotes a string literal, doubling embedded quotes.
func writeQuoted(sb *strings.Builder, s string) {
	sb.WriteByte('\'')
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			sb.WriteString("''")
			continue
		}
		sb.WriteByte(s[i])
	}
	sb.WriteByte('\'')
}

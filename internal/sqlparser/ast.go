package sqlparser

import "strings"

// Node is the interface of all AST nodes (marker plus display).
type Node interface{ String() string }

// SelectStmt is one query block.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr // nil when absent
	GroupBy  []Expr

	// NumParams is the number of `?` placeholders in the whole statement,
	// subqueries included. Parse sets it on the root statement only.
	NumParams int
}

// SelectItem is one output column: an expression with an optional alias, or
// a bare `*`.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// TableRef is a FROM-list entry: a base table with optional alias, or a
// parenthesized derived table with a mandatory alias.
type TableRef struct {
	Name     string // base table name; empty for derived tables
	Alias    string
	Subquery *SelectStmt // non-nil for derived tables
}

// EffectiveAlias returns the name this relation is referenced by.
func (t TableRef) EffectiveAlias() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// Expr is an unbound scalar expression.
type Expr interface{ Node }

// Ident is a possibly-qualified column reference.
type Ident struct {
	Qualifier string // table alias, may be empty
	Name      string
}

func (i *Ident) String() string {
	if i.Qualifier != "" {
		return i.Qualifier + "." + i.Name
	}
	return i.Name
}

// NumberLit is an integer or decimal literal (text preserved for exactness).
type NumberLit struct {
	Text  string
	IsInt bool
}

func (n *NumberLit) String() string { return n.Text }

// StringLit is a quoted string literal.
type StringLit struct{ Val string }

func (s *StringLit) String() string { return "'" + s.Val + "'" }

// BinaryExpr is an infix operation; Op is the SQL spelling (=, <>, <, <=,
// >, >=, +, -, *, /, AND, OR).
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (b *BinaryExpr) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// NotExpr negates a boolean expression.
type NotExpr struct{ E Expr }

func (n *NotExpr) String() string { return "NOT " + n.E.String() }

// LikeExpr is `expr [NOT] LIKE 'pattern'`.
type LikeExpr struct {
	E       Expr
	Pattern string
	Negate  bool
}

func (l *LikeExpr) String() string {
	op := " LIKE "
	if l.Negate {
		op = " NOT LIKE "
	}
	return l.E.String() + op + "'" + l.Pattern + "'"
}

// Call is a function application: the aggregates sum/min/max/avg/count and
// the scalar function year. Star marks count(*).
type Call struct {
	Name string // lower-cased
	Args []Expr
	Star bool
}

func (c *Call) String() string {
	if c.Star {
		return c.Name + "(*)"
	}
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return c.Name + "(" + strings.Join(args, ", ") + ")"
}

// Placeholder is a `?` parameter marker of a prepared statement. Ord is its
// zero-based ordinal in source order across the whole statement (subqueries
// included), matching the position of the argument bound at execute time.
type Placeholder struct{ Ord int }

func (p *Placeholder) String() string { return "?" }

// SubqueryExpr is a parenthesized scalar subquery used as a value.
type SubqueryExpr struct{ Sel *SelectStmt }

func (s *SubqueryExpr) String() string { return "(" + s.Sel.String() + ")" }

// String renders the statement back to SQL-ish text (for diagnostics).
func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if it.Star {
			sb.WriteString("*")
			continue
		}
		sb.WriteString(it.Expr.String())
		if it.Alias != "" {
			sb.WriteString(" AS " + it.Alias)
		}
	}
	sb.WriteString(" FROM ")
	for i, f := range s.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		if f.Subquery != nil {
			sb.WriteString("(" + f.Subquery.String() + ") " + f.Alias)
		} else {
			sb.WriteString(f.Name)
			if f.Alias != "" && f.Alias != f.Name {
				sb.WriteString(" " + f.Alias)
			}
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	return sb.String()
}

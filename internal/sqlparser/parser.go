package sqlparser

import (
	"fmt"
	"strings"
)

// Parse parses one SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, lx, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, lx: lx}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errHere("unexpected trailing input %q", p.peek().text)
	}
	stmt.NumParams = p.nParams
	return stmt, nil
}

type parser struct {
	toks    []token
	i       int
	lx      *lexer
	nParams int // `?` placeholders seen so far, in source order
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errHere(format string, args ...any) error {
	return p.lx.errorf(p.peek().pos, format, args...)
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errHere("expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

// acceptOp consumes the operator token if present.
func (p *parser) acceptOp(op string) bool {
	if t := p.peek(); t.kind == tokOp && t.text == op {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errHere("expected %q, found %q", op, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errHere("expected identifier, found %q", t.text)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Distinct: p.acceptKeyword("DISTINCT")}

	for {
		if p.acceptOp("*") {
			stmt.Items = append(stmt.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				a, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if t := p.peek(); t.kind == tokIdent {
				// Bare alias (SELECT x y).
				p.advance()
				item.Alias = t.text
			}
			stmt.Items = append(stmt.Items, item)
		}
		if !p.acceptOp(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if !p.acceptOp(",") {
			break
		}
	}

	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}

	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	return stmt, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	if p.acceptOp("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return TableRef{}, err
		}
		if err := p.expectOp(")"); err != nil {
			return TableRef{}, err
		}
		p.acceptKeyword("AS")
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, fmt.Errorf("derived table requires an alias: %w", err)
		}
		return TableRef{Alias: alias, Subquery: sub}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a
	} else if t := p.peek(); t.kind == tokIdent {
		p.advance()
		ref.Alias = t.text
	}
	return ref, nil
}

// Expression grammar, loosest to tightest:
//
//	expr     := orExpr
//	orExpr   := andExpr (OR andExpr)*
//	andExpr  := notExpr (AND notExpr)*
//	notExpr  := NOT notExpr | cmpExpr
//	cmpExpr  := addExpr ((= | <> | < | <= | > | >=) addExpr
//	            | [NOT] LIKE 'pat')?
//	addExpr  := mulExpr ((+|-) mulExpr)*
//	mulExpr  := unary ((*|/) unary)*
//	unary    := - unary | primary
//	primary  := literal | ident[.ident] | func(args) | ( expr | SELECT... )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: inner}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// [NOT] LIKE
	negate := false
	if t := p.peek(); t.kind == tokKeyword && t.text == "NOT" {
		// Lookahead for LIKE; plain NOT is handled at parseNot level.
		if p.i+1 < len(p.toks) && p.toks[p.i+1].kind == tokKeyword && p.toks[p.i+1].text == "LIKE" {
			p.advance()
			negate = true
		}
	}
	if p.acceptKeyword("LIKE") {
		t := p.peek()
		if t.kind != tokString {
			return nil, p.errHere("LIKE requires a string pattern")
		}
		p.advance()
		return &LikeExpr{E: l, Pattern: t.text, Negate: negate}, nil
	}
	if negate {
		return nil, p.errHere("expected LIKE after NOT")
	}
	for _, op := range []string{"=", "<>", "<=", ">=", "<", ">"} {
		if p.acceptOp(op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "+", L: l, R: r}
		case p.acceptOp("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "*", L: l, R: r}
		case p.acceptOp("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "-", L: &NumberLit{Text: "0", IsInt: true}, R: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		return &NumberLit{Text: t.text, IsInt: !strings.Contains(t.text, ".")}, nil
	case tokString:
		p.advance()
		return &StringLit{Val: t.text}, nil
	case tokIdent:
		p.advance()
		// Function call?
		if p.acceptOp("(") {
			name := strings.ToLower(t.text)
			call := &Call{Name: name}
			if p.acceptOp("*") {
				call.Star = true
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if !p.acceptOp(")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.acceptOp(",") {
						break
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		// Qualified column?
		if p.acceptOp(".") {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &Ident{Qualifier: t.text, Name: name}, nil
		}
		return &Ident{Name: t.text}, nil
	case tokOp:
		if t.text == "?" {
			p.advance()
			ph := &Placeholder{Ord: p.nParams}
			p.nParams++
			return ph, nil
		}
		if t.text == "(" {
			p.advance()
			// Scalar subquery or parenthesized expression.
			if nt := p.peek(); nt.kind == tokKeyword && nt.text == "SELECT" {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Sel: sub}, nil
			}
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
	}
	return nil, p.errHere("unexpected token %q", t.text)
}

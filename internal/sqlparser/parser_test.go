package sqlparser

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return stmt
}

func TestBasicSelect(t *testing.T) {
	stmt := mustParse(t, "SELECT a, b FROM t WHERE a = 1")
	if len(stmt.Items) != 2 || len(stmt.From) != 1 || stmt.Where == nil {
		t.Fatalf("structure wrong: %+v", stmt)
	}
	if stmt.From[0].Name != "t" {
		t.Fatalf("table = %q", stmt.From[0].Name)
	}
}

func TestSelectStar(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t")
	if !stmt.Items[0].Star {
		t.Fatal("star not detected")
	}
}

func TestDistinct(t *testing.T) {
	if !mustParse(t, "SELECT DISTINCT a FROM t").Distinct {
		t.Fatal("DISTINCT lost")
	}
	if mustParse(t, "SELECT a FROM t").Distinct {
		t.Fatal("phantom DISTINCT")
	}
}

func TestAliases(t *testing.T) {
	stmt := mustParse(t, "SELECT a AS x, b y FROM t1 AS u, t2 v")
	if stmt.Items[0].Alias != "x" || stmt.Items[1].Alias != "y" {
		t.Fatalf("item aliases: %+v", stmt.Items)
	}
	if stmt.From[0].Alias != "u" || stmt.From[1].Alias != "v" {
		t.Fatalf("table aliases: %+v", stmt.From)
	}
	if stmt.From[0].EffectiveAlias() != "u" {
		t.Fatal("effective alias wrong")
	}
	bare := mustParse(t, "SELECT a FROM t")
	if bare.From[0].EffectiveAlias() != "t" {
		t.Fatal("effective alias should default to table name")
	}
}

func TestOperatorPrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE a + b * c = d")
	be := stmt.Where.(*BinaryExpr)
	if be.Op != "=" {
		t.Fatalf("top op = %q", be.Op)
	}
	add := be.L.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("second op = %q", add.Op)
	}
	if add.R.(*BinaryExpr).Op != "*" {
		t.Fatal("* must bind tighter than +")
	}
}

func TestAndOrPrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
	or := stmt.Where.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top must be OR, got %q", or.Op)
	}
	if or.R.(*BinaryExpr).Op != "AND" {
		t.Fatal("AND must bind tighter than OR")
	}
}

func TestParenthesesOverridePrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE (a + b) * c = 1")
	mul := stmt.Where.(*BinaryExpr).L.(*BinaryExpr)
	if mul.Op != "*" || mul.L.(*BinaryExpr).Op != "+" {
		t.Fatal("parentheses ignored")
	}
}

func TestComparisonOperators(t *testing.T) {
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		stmt := mustParse(t, "SELECT a FROM t WHERE a "+op+" 1")
		if got := stmt.Where.(*BinaryExpr).Op; got != op {
			t.Errorf("op %q parsed as %q", op, got)
		}
	}
	// != normalizes to <>.
	stmt := mustParse(t, "SELECT a FROM t WHERE a != 1")
	if stmt.Where.(*BinaryExpr).Op != "<>" {
		t.Fatal("!= must normalize to <>")
	}
}

func TestLike(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE p_type LIKE '%TIN'")
	like := stmt.Where.(*LikeExpr)
	if like.Pattern != "%TIN" || like.Negate {
		t.Fatalf("like = %+v", like)
	}
	neg := mustParse(t, "SELECT a FROM t WHERE x NOT LIKE 'a%'").Where.(*LikeExpr)
	if !neg.Negate {
		t.Fatal("NOT LIKE lost negation")
	}
	if _, err := Parse("SELECT a FROM t WHERE x LIKE 5"); err == nil {
		t.Fatal("LIKE with non-string pattern must error")
	}
}

func TestNot(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE NOT a = 1")
	if _, ok := stmt.Where.(*NotExpr); !ok {
		t.Fatalf("NOT not parsed: %T", stmt.Where)
	}
}

func TestStringEscapes(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE s = 'it''s'")
	lit := stmt.Where.(*BinaryExpr).R.(*StringLit)
	if lit.Val != "it's" {
		t.Fatalf("escape handling: %q", lit.Val)
	}
}

func TestNumbers(t *testing.T) {
	stmt := mustParse(t, "SELECT 1, 2.5, 0.2 FROM t")
	if !stmt.Items[0].Expr.(*NumberLit).IsInt {
		t.Fatal("1 must be integer")
	}
	if stmt.Items[1].Expr.(*NumberLit).IsInt {
		t.Fatal("2.5 must be decimal")
	}
	if stmt.Items[2].Expr.(*NumberLit).Text != "0.2" {
		t.Fatal("0.2 text lost")
	}
}

func TestUnaryMinus(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE a = -5")
	sub := stmt.Where.(*BinaryExpr).R.(*BinaryExpr)
	if sub.Op != "-" {
		t.Fatal("unary minus must desugar to 0 - x")
	}
}

func TestFunctionCalls(t *testing.T) {
	stmt := mustParse(t, "SELECT sum(a), count(*), year(d) FROM t")
	if c := stmt.Items[0].Expr.(*Call); c.Name != "sum" || len(c.Args) != 1 {
		t.Fatalf("sum call: %+v", c)
	}
	if c := stmt.Items[1].Expr.(*Call); !c.Star || c.Name != "count" {
		t.Fatalf("count(*): %+v", c)
	}
	if c := stmt.Items[2].Expr.(*Call); c.Name != "year" {
		t.Fatalf("year call: %+v", c)
	}
}

func TestGroupBy(t *testing.T) {
	stmt := mustParse(t, "SELECT a, sum(b) FROM t GROUP BY a, c")
	if len(stmt.GroupBy) != 2 {
		t.Fatalf("group by = %d exprs", len(stmt.GroupBy))
	}
}

func TestQualifiedColumns(t *testing.T) {
	stmt := mustParse(t, "SELECT t.a FROM t WHERE t.a = u.b")
	id := stmt.Items[0].Expr.(*Ident)
	if id.Qualifier != "t" || id.Name != "a" {
		t.Fatalf("qualified ident: %+v", id)
	}
}

func TestDerivedTable(t *testing.T) {
	stmt := mustParse(t, `SELECT x FROM (SELECT a AS x FROM t GROUP BY a) d WHERE x = 1`)
	if stmt.From[0].Subquery == nil || stmt.From[0].Alias != "d" {
		t.Fatalf("derived table: %+v", stmt.From[0])
	}
	if _, err := Parse("SELECT x FROM (SELECT a FROM t)"); err == nil {
		t.Fatal("derived table without alias must error")
	}
}

func TestScalarSubquery(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE c = (SELECT min(c) FROM u WHERE u.k = t.k)`)
	sub, ok := stmt.Where.(*BinaryExpr).R.(*SubqueryExpr)
	if !ok {
		t.Fatalf("scalar subquery not parsed: %T", stmt.Where.(*BinaryExpr).R)
	}
	if len(sub.Sel.From) != 1 || sub.Sel.From[0].Name != "u" {
		t.Fatal("subquery body wrong")
	}
}

func TestComments(t *testing.T) {
	stmt := mustParse(t, "SELECT a -- trailing comment\nFROM t -- another\nWHERE a = 1")
	if stmt.Where == nil {
		t.Fatal("comment swallowed the query")
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	stmt := mustParse(t, "select A fRoM t wHeRe A = 1 gRoUp By A")
	if stmt.Where == nil || len(stmt.GroupBy) != 1 {
		t.Fatal("case-insensitive keywords broken")
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t trailing garbage (",
		"SELECT a FROM t WHERE a = 'unterminated",
		"SELECT a FROM t WHERE a ! b",
		"SELECT a FROM t WHERE @",
		"SELECT a, FROM t",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("expected error for %q", sql)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("SELECT a\nFROM t\nWHERE @")
	if err == nil || !strings.Contains(err.Error(), "sql:3:") {
		t.Fatalf("error should carry line info, got %v", err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	sqls := []string{
		"SELECT DISTINCT a FROM t WHERE (a = 1)",
		"SELECT sum(a) AS s FROM t, u WHERE t.k = u.k GROUP BY b",
		"SELECT a FROM (SELECT b AS a FROM t) d",
	}
	for _, sql := range sqls {
		s1 := mustParse(t, sql)
		// The rendered text must itself parse to the same rendering.
		s2 := mustParse(t, s1.String())
		if s1.String() != s2.String() {
			t.Errorf("unstable round trip:\n%s\n%s", s1, s2)
		}
	}
}

func TestTableIStyleQuery(t *testing.T) {
	// The paper's running example (Section II) must parse end to end.
	stmt := mustParse(t, `
SELECT DISTINCT p_partkey FROM part p, partsupp ps1,
  (SELECT ps_partkey AS partkey, SUM(ps_availqty) AS avail
   FROM partsupp ps2 GROUP BY ps_partkey) avail,
  (SELECT l_partkey AS partkey, SUM(l_quantity) AS numsold
   FROM lineitem l WHERE l_receiptdate > '2007-1-1'
   GROUP BY l_partkey) sold
WHERE p_partkey = ps_partkey
  AND p_partkey = avail.partkey
  AND p_partkey = sold.partkey
  AND 10 * avail < numsold
  AND 2 * ps_supplycost < p_retailprice`)
	if len(stmt.From) != 4 || !stmt.Distinct {
		t.Fatalf("running example structure wrong: %d relations", len(stmt.From))
	}
}

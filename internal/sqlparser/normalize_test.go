package sqlparser

import (
	"fmt"
	"testing"
)

func TestNormalizeLiftsLiterals(t *testing.T) {
	cases := []struct {
		sql      string
		wantLits []Lit
	}{
		{
			"SELECT n_name FROM nation WHERE n_nationkey = 7",
			[]Lit{{LitInt, "7"}},
		},
		{
			"SELECT * FROM part WHERE p_retailprice > 901.00 AND p_type = 'BRASS'",
			[]Lit{{LitFloat, "901.00"}, {LitString, "BRASS"}},
		},
		{
			"SELECT * FROM orders WHERE o_orderdate < '1995-03-15'",
			[]Lit{{LitString, "1995-03-15"}},
		},
		{
			// Unary minus stays in the text; only the magnitude lifts.
			"SELECT * FROM nation WHERE n_nationkey > -3",
			[]Lit{{LitInt, "3"}},
		},
		{
			// Embedded quote round-trips through the value.
			"SELECT * FROM nation WHERE n_comment = 'it''s'",
			[]Lit{{LitString, "it's"}},
		},
	}
	for _, c := range cases {
		norm, lits, ok := Normalize(c.sql)
		if !ok {
			t.Fatalf("Normalize(%q): not parameterizable", c.sql)
		}
		if len(lits) != len(c.wantLits) {
			t.Fatalf("Normalize(%q): lits %v, want %v", c.sql, lits, c.wantLits)
		}
		for i := range lits {
			if lits[i] != c.wantLits[i] {
				t.Errorf("Normalize(%q): lit %d = %+v, want %+v", c.sql, i, lits[i], c.wantLits[i])
			}
		}
		// The normalized text must parse, with one placeholder per literal.
		stmt, err := Parse(norm)
		if err != nil {
			t.Fatalf("normalized %q does not parse: %v", norm, err)
		}
		if stmt.NumParams != len(lits) {
			t.Errorf("normalized %q has %d params, want %d", norm, stmt.NumParams, len(lits))
		}
	}
}

func TestNormalizeSameTemplate(t *testing.T) {
	a, _, ok := Normalize("SELECT n_name FROM nation WHERE n_nationkey = 7")
	if !ok {
		t.Fatal("not parameterizable")
	}
	b, _, ok := Normalize("SELECT n_name  FROM nation -- point lookup\n WHERE n_nationkey = 23")
	if !ok {
		t.Fatal("not parameterizable")
	}
	if a != b {
		t.Errorf("literal-only variants normalize differently:\n%q\n%q", a, b)
	}
}

func TestNormalizeRefusals(t *testing.T) {
	for _, sql := range []string{
		"SELECT n_name FROM nation WHERE n_nationkey = ?", // user placeholder
		"SELECT n_name FROM nation",                       // no literals
		"SELECT FROM WHERE 'unterminated",                 // lex error
	} {
		if _, _, ok := Normalize(sql); ok {
			t.Errorf("Normalize(%q): ok, want refusal", sql)
		}
	}
}

func TestNormalizeKeepsLikePattern(t *testing.T) {
	norm, lits, ok := Normalize("SELECT * FROM part WHERE p_type LIKE '%BRASS%' AND p_size = 15")
	if !ok {
		t.Fatal("not parameterizable")
	}
	if len(lits) != 1 || lits[0] != (Lit{LitInt, "15"}) {
		t.Fatalf("lits = %v, want just the 15", lits)
	}
	if _, err := Parse(norm); err != nil {
		t.Fatalf("normalized %q does not parse: %v", norm, err)
	}
	// NOT LIKE keeps its pattern too.
	norm, _, ok = Normalize("SELECT * FROM part WHERE p_type NOT LIKE '%TIN%' AND p_size = 1")
	if !ok {
		t.Fatal("not parameterizable")
	}
	if _, err := Parse(norm); err != nil {
		t.Fatalf("normalized %q does not parse: %v", norm, err)
	}
}

// TestNormalizeRoundTrip drives the normalizer across a family of generated
// statements: every parameterizable output must re-parse with exactly
// len(lits) placeholders, and normalizing the normalized text must refuse
// (its literals are gone).
func TestNormalizeRoundTrip(t *testing.T) {
	preds := []string{
		"n_nationkey = %d", "n_nationkey > %d", "n_nationkey <= -%d",
		"n_name = 'N%d'", "n_nationkey + %d < 20", "n_nationkey * 1.%d > 2.0",
	}
	for i, p := range preds {
		for k := 0; k < 5; k++ {
			sql := "SELECT n_name FROM nation WHERE " + fmt.Sprintf(p, i*10+k)
			norm, lits, ok := Normalize(sql)
			if !ok {
				t.Fatalf("Normalize(%q) refused", sql)
			}
			stmt, err := Parse(norm)
			if err != nil {
				t.Fatalf("normalized %q does not parse: %v", norm, err)
			}
			if stmt.NumParams != len(lits) {
				t.Fatalf("normalized %q: %d params vs %d lits", norm, stmt.NumParams, len(lits))
			}
			if _, _, again := Normalize(norm); again {
				t.Fatalf("re-normalizing %q succeeded; want refusal (placeholders present)", norm)
			}
		}
	}
}

// Package sqlparser implements the SQL front end for the fragment the paper
// exercises: select-project-join blocks with DISTINCT, GROUP BY,
// aggregation, LIKE, arithmetic, derived tables, and correlated scalar
// subqueries (Table I of the paper).
package sqlparser

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp // operators and punctuation
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased; idents keep original case
	pos  int    // byte offset, for error messages
}

var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "LIKE": true, "ORDER": true, "ASC": true, "DESC": true,
	"IS": true, "NULL": true, "BETWEEN": true, "IN": true, "EXISTS": true,
	"HAVING": true, "LIMIT": true,
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	line, col := 1, 1
	for i := 0; i < pos && i < len(l.src); i++ {
		if l.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("sql:%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans one token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if keywords[strings.ToUpper(text)] {
			return token{kind: tokKeyword, text: strings.ToUpper(text), pos: start}, nil
		}
		return token{kind: tokIdent, text: text, pos: start}, nil

	case isDigit(c) || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if isDigit(ch) {
				l.pos++
				continue
			}
			if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			break
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil

	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf(start, "unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				// '' escapes a quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return token{kind: tokString, text: sb.String(), pos: start}, nil

	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return token{kind: tokOp, text: l.src[start:l.pos], pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokOp, text: l.src[start:l.pos], pos: start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: "<>", pos: start}, nil
		}
		return token{}, l.errorf(start, "unexpected '!'")
	case strings.IndexByte("=+-*/(),.?", c) >= 0:
		l.pos++
		return token{kind: tokOp, text: string(c), pos: start}, nil
	default:
		return token{}, l.errorf(start, "unexpected character %q", string(c))
	}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, *lexer, error) {
	l := &lexer{src: src}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, l, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, l, nil
		}
	}
}

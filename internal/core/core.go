// Package core implements Adaptive Information Passing (AIP), the paper's
// primary contribution: runtime decision making that reuses the
// intermediate state of completed subexpressions to prune other,
// still-running subexpressions of the same query plan — across blocking
// operators and between correlated query blocks.
//
// Two strategies are provided, matching §IV of the paper:
//
//   - FeedForward (§IV-A): optimistically builds a working AIP set for
//     every attribute with an interested party, publishes it to a central
//     AIP Registry when its input completes, and injects it (merging
//     compatible Bloom filters by bitwise intersection) into every
//     interested operator.
//
//   - CostBased (§IV-B): does nothing incrementally; when an input to a
//     stateful operator completes, an AIP Manager re-invokes the
//     optimizer's cost machinery (ESTIMATEBENEFIT, Fig. 4) to decide
//     whether scanning the state, building a summary, and injecting it
//     elsewhere pays for itself — including network shipping costs in the
//     distributed setting (§V, "Distributed query extensions").
//
// Both plug into the executor through the exec.Controller interface and the
// per-operator injection points (exec.Point) created by the optimizer.
package core

import (
	"math"

	"repro/internal/bloom"
	"repro/internal/exec"
	"repro/internal/network"
	"repro/internal/stats"
)

// SummaryKind selects the AIP-set representation.
type SummaryKind int

const (
	// SummaryBloom uses single-hash Bloom filters sized for Options.FPR —
	// the representation the paper's implementation settled on (§V).
	SummaryBloom SummaryKind = iota
	// SummaryHashSet uses exact hash sets; kept for the ablation study
	// (the paper found the precision "generally countered by its increased
	// creation and probing cost").
	SummaryHashSet
)

// FilterVariant selects the Bloom-filter layout used for AIP sets (it is
// irrelevant under SummaryHashSet).
type FilterVariant int

const (
	// BlockedBloom (default) uses cache-line-blocked filters: one cache
	// line per probe, batch add/probe kernels, and size-doubling per-slot
	// working sets merged stripe-wise at publication.
	BlockedBloom FilterVariant = iota
	// FlatBloom uses the original flat single-hash filter — the scalar
	// differential oracle the blocked path is validated against.
	FlatBloom
)

// CostParams are the constants of the cost model used by CostBased. Units
// are abstract "work units per tuple"; only ratios matter.
type CostParams struct {
	// Tuple is the cost of moving one tuple through one operator.
	Tuple float64
	// Probe is the per-tuple cost of probing one injected filter.
	Probe float64
	// Build is the per-key cost of scanning state into a new AIP set.
	Build float64
	// Fixed is the fixed overhead of creating any AIP set.
	Fixed float64
	// NetworkByte is the cost per byte of shipping a filter to a remote
	// site (the paper assumes 10 Mbps when costing transfers).
	NetworkByte float64
}

// DefaultCostParams returns the calibration used by the experiments.
func DefaultCostParams() CostParams {
	return CostParams{
		Tuple:       1.0,
		Probe:       0.15,
		Build:       0.4,
		Fixed:       64,
		NetworkByte: 0.002,
	}
}

// Options configure a controller.
type Options struct {
	// FPR is the Bloom-filter false-positive target (paper: 5%).
	FPR float64
	// Kind selects Bloom filters or exact hash sets.
	Kind SummaryKind
	// Variant selects the Bloom-filter layout (blocked by default).
	Variant FilterVariant
	// Stats receives filter accounting; required.
	Stats *stats.Registry
	// Topology models filter-shipping costs for remote points; nil means
	// everything is local.
	Topology *network.Topology
	// Cost parameterizes the CostBased manager.
	Cost CostParams
	// ShipFilter, when set, performs remote filter transfers on behalf of
	// the controller; the engine installs a hook bound to the query's
	// execution context so filter shipments run under its recovery policy
	// (retries, per-attempt timeouts, the site's circuit breaker). A non-nil
	// error means the shipment failed and the filter must not be attached.
	// nil falls back to a direct, unguarded link.Transfer.
	ShipFilter func(link *network.Link, site int, nbytes int) error
}

// shipFilter routes a filter transfer through the installed hook.
func (o Options) shipFilter(link *network.Link, site, nbytes int) error {
	if o.ShipFilter != nil {
		return o.ShipFilter(link, site, nbytes)
	}
	return link.Transfer(nbytes, nil)
}

func (o Options) fpr() float64 {
	if o.FPR <= 0 || o.FPR >= 1 {
		return bloom.DefaultFPR
	}
	return o.FPR
}

// ---------------------------------------------------------------------------
// Shared class analysis — the runtime analog of AIPCANDIDATES (Fig. 3).

// classUse is one (point, column) attachment site for a class.
type classUse struct {
	point *exec.Point
	col   int
}

// classInfo aggregates the producers and consumers of one attribute
// equivalence class in the source-predicate graph.
type classInfo struct {
	id        int
	producers []classUse // stateful points; col indexes the state schema
	consumers []classUse // any points; col indexes the input schema
	domain    float64    // distinct-value estimate for the attribute domain
	bits      uint64     // shared Bloom sizing so filters intersect
	k         uint32     // blocked in-block probe count (BlockedBloom only)
}

// analyze computes the per-class producer/consumer sets from the
// registered points, discarding classes without both a producer and an
// interested (distinct) consumer — "any potential AIP sets without
// interested parties are then eliminated" (§IV-A).
func analyze(points []*exec.Point, fpr float64, variant FilterVariant) map[int]*classInfo {
	classes := make(map[int]*classInfo)
	get := func(id int) *classInfo {
		ci, ok := classes[id]
		if !ok {
			ci = &classInfo{id: id}
			classes[id] = ci
		}
		return ci
	}
	for _, p := range points {
		if p.Stateful {
			for _, col := range p.KeyCols {
				id := p.StateEqIDs[col]
				if id < 0 {
					continue
				}
				get(id).producers = append(get(id).producers, classUse{p, col})
			}
		}
		for col, id := range p.EqIDs {
			if id < 0 {
				continue
			}
			ci := get(id)
			ci.consumers = append(ci.consumers, classUse{p, col})
			if d := p.DomainDistinct[col]; d > ci.domain {
				ci.domain = d
			}
		}
	}
	for id, ci := range classes {
		useful := false
		for _, pr := range ci.producers {
			for _, co := range ci.consumers {
				if co.point != pr.point {
					useful = true
					break
				}
			}
			if useful {
				break
			}
		}
		if !useful {
			delete(classes, id)
			continue
		}
		// Shared sizing: the largest expected producer population governs
		// the class's filter length so all of its filters are
		// intersection-compatible. The blocked variant rounds the budget up
		// to whole cache-line blocks and derives the class-wide probe count
		// from the resulting bits-per-key ratio.
		maxN := 1.0
		for _, pr := range ci.producers {
			n := pr.point.EstRows
			if ci.domain > 0 {
				n = math.Min(n, ci.domain)
			}
			if n > maxN {
				maxN = n
			}
		}
		if variant == BlockedBloom {
			ci.bits = bloom.BlockedBitsFor(int(maxN), fpr)
			ci.k = bloom.BlockedKFor(int(maxN), ci.bits)
		} else {
			ci.bits = bloom.BitsFor(int(maxN), fpr)
		}
	}
	return classes
}

// linkFor returns the link used to ship a filter between two sites, or nil
// when they are co-located (or no topology is configured).
func (o Options) linkFor(a, b int) *network.Link {
	if o.Topology == nil || a == b {
		return nil
	}
	return o.Topology.LinkBetween(a, b)
}

package core

import (
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/types"
)

func intSchema(names ...string) *types.Schema {
	cols := make([]types.Column, len(names))
	for i, n := range names {
		cols[i] = types.Column{Table: "t", Name: n, Kind: types.KindInt}
	}
	return types.NewSchema(cols...)
}

func intRows(n int, key func(i int) int64) []types.Tuple {
	out := make([]types.Tuple, n)
	for i := range out {
		out[i] = types.Tuple{types.Int(key(i)), types.Int(int64(i))}
	}
	return out
}

// mkPoint builds a stateful point over schema (k, v) with class cls on the
// key column.
func mkPoint(name string, cls int, domain float64, est float64) *exec.Point {
	return &exec.Point{
		Name:           name,
		EqIDs:          []int{cls, -1},
		StateEqIDs:     []int{cls, -1},
		KeyCols:        []int{0},
		Bank:           exec.NewFilterBank(),
		Stateful:       true,
		EstRows:        est,
		DomainDistinct: []float64{domain, 0},
		Schema:         intSchema("k", "v"),
	}
}

func TestAnalyzeDropsClassesWithoutInterest(t *testing.T) {
	// Two points, different classes: no cross-interest → both dropped.
	p1 := mkPoint("p1", 1, 10, 10)
	p2 := mkPoint("p2", 2, 10, 10)
	classes := analyze([]*exec.Point{p1, p2}, 0.05, BlockedBloom)
	if len(classes) != 0 {
		t.Fatalf("expected no useful classes, got %d", len(classes))
	}
	// Same class: both are producer+consumer of class 1 → kept.
	p3 := mkPoint("p3", 1, 10, 10)
	classes = analyze([]*exec.Point{p1, p3}, 0.05, BlockedBloom)
	if len(classes) != 1 {
		t.Fatalf("expected one class, got %d", len(classes))
	}
	ci := classes[1]
	if len(ci.producers) != 2 || len(ci.consumers) != 2 {
		t.Fatalf("producers=%d consumers=%d", len(ci.producers), len(ci.consumers))
	}
	if ci.domain != 10 {
		t.Fatalf("domain = %v", ci.domain)
	}
	if ci.bits == 0 {
		t.Fatal("class sizing missing")
	}
}

func TestAnalyzeSelfOnlyClassDropped(t *testing.T) {
	// A single point both producing and consuming its own class is not a
	// sideways-passing opportunity.
	p := mkPoint("p", 1, 10, 10)
	if classes := analyze([]*exec.Point{p}, 0.05, BlockedBloom); len(classes) != 0 {
		t.Fatalf("self-only class must be dropped, got %d", len(classes))
	}
}

// joinFixture runs one join with a controller attached; the left side is
// small and fast, the right side big and delayed, so the left completes
// first and its AIP set should prune the right.
func joinFixture(t *testing.T, ctl exec.Controller, nLeft, nRight int) (*exec.HashJoin, *stats.Registry, []types.Tuple) {
	t.Helper()
	lrows := intRows(nLeft, func(i int) int64 { return int64(i) })
	rrows := intRows(nRight, func(i int) int64 { return int64(i) })
	l := &exec.Scan{Name: "l", Rows: lrows, Sch: intSchema("k", "v")}
	r := &exec.Scan{Name: "r", Rows: rrows, Sch: intSchema("k", "v"),
		Delay: &exec.DelayConfig{Initial: 30 * time.Millisecond}}
	j := exec.NewHashJoin("j", l, r, []int{0}, []int{0}, nil)
	j.LPoint = mkPoint("j.left", 1, float64(nRight), float64(nLeft))
	j.RPoint = mkPoint("j.right", 1, float64(nRight), float64(nRight))
	j.RPoint.Ancestors = nil
	reg := stats.NewRegistry()
	ctx := exec.NewContext(reg, ctl)
	ctx.Register(j.LPoint)
	ctx.Register(j.RPoint)
	rows, _ := exec.Run(ctx, j)
	return j, reg, rows
}

func TestFeedForwardPrunesAndPreservesResults(t *testing.T) {
	reg0 := stats.NewRegistry()
	_ = reg0
	ff := NewFeedForward(Options{Stats: stats.NewRegistry()})
	// Rebuild options with the registry actually used by the fixture.
	reg := stats.NewRegistry()
	ff = NewFeedForward(Options{Stats: reg})
	lrows := intRows(10, func(i int) int64 { return int64(i) })
	rrows := intRows(200, func(i int) int64 { return int64(i) })
	l := &exec.Scan{Name: "l", Rows: lrows, Sch: intSchema("k", "v")}
	r := &exec.Scan{Name: "r", Rows: rrows, Sch: intSchema("k", "v"),
		Delay: &exec.DelayConfig{Initial: 30 * time.Millisecond}}
	j := exec.NewHashJoin("j", l, r, []int{0}, []int{0}, nil)
	j.LPoint = mkPoint("j.left", 1, 200, 10)
	j.RPoint = mkPoint("j.right", 1, 200, 200)
	ctx := exec.NewContext(reg, ff)
	ctx.Register(j.LPoint)
	ctx.Register(j.RPoint)
	rows, _ := exec.Run(ctx, j)

	// Results: keys 0..9 match → 10 rows, unaffected by pruning.
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	if reg.FiltersMade.Load() == 0 {
		t.Fatal("feed-forward created no filters")
	}
	// The left set {0..9} prunes most of the right's 200 arrivals before
	// they are buffered (modulo Bloom false positives).
	if got := reg.TotalPruned(); got < 150 {
		t.Fatalf("pruned = %d, want most of the right input", got)
	}
	if j.RPoint.StoredRows() > 50 {
		t.Fatalf("right stored %d rows; filter did not limit state", j.RPoint.StoredRows())
	}
}

func TestFeedForwardHashSetMode(t *testing.T) {
	reg := stats.NewRegistry()
	ff := NewFeedForward(Options{Stats: reg, Kind: SummaryHashSet})
	_, _, rows := joinFixtureWithCtl(t, ff, reg)
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	if reg.TotalPruned() < 150 {
		t.Fatalf("hash-set mode pruned %d", reg.TotalPruned())
	}
}

func joinFixtureWithCtl(t *testing.T, ctl exec.Controller, reg *stats.Registry) (*exec.HashJoin, *stats.Registry, []types.Tuple) {
	t.Helper()
	lrows := intRows(10, func(i int) int64 { return int64(i) })
	rrows := intRows(200, func(i int) int64 { return int64(i) })
	l := &exec.Scan{Name: "l", Rows: lrows, Sch: intSchema("k", "v")}
	r := &exec.Scan{Name: "r", Rows: rrows, Sch: intSchema("k", "v"),
		Delay: &exec.DelayConfig{Initial: 30 * time.Millisecond}}
	j := exec.NewHashJoin("j", l, r, []int{0}, []int{0}, nil)
	j.LPoint = mkPoint("j.left", 1, 200, 10)
	j.RPoint = mkPoint("j.right", 1, 200, 200)
	ctx := exec.NewContext(reg, ctl)
	ctx.Register(j.LPoint)
	ctx.Register(j.RPoint)
	rows, _ := exec.Run(ctx, j)
	return j, reg, rows
}

func TestCostBasedCreatesBeneficialFilter(t *testing.T) {
	reg := stats.NewRegistry()
	cb := NewCostBased(Options{Stats: reg, Cost: DefaultCostParams()})
	j, _, rows := joinFixtureWithCtl(t, cb, reg)
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	_ = j
	if cb.Created() == 0 {
		t.Fatalf("cost-based created no filters (skipped=%d)", cb.Skipped())
	}
	if j.RPoint.StoredRows() > 60 {
		t.Fatalf("right stored %d rows", j.RPoint.StoredRows())
	}
}

func TestCostBasedRejectsUselessFilter(t *testing.T) {
	// Left set size == domain: selectivity 1, no benefit.
	reg := stats.NewRegistry()
	cb := NewCostBased(Options{Stats: reg, Cost: DefaultCostParams()})
	lrows := intRows(200, func(i int) int64 { return int64(i) })
	rrows := intRows(200, func(i int) int64 { return int64(i) })
	l := &exec.Scan{Name: "l", Rows: lrows, Sch: intSchema("k", "v")}
	r := &exec.Scan{Name: "r", Rows: rrows, Sch: intSchema("k", "v"),
		Delay: &exec.DelayConfig{Initial: 20 * time.Millisecond}}
	j := exec.NewHashJoin("j", l, r, []int{0}, []int{0}, nil)
	j.LPoint = mkPoint("j.left", 1, 200, 200)
	j.RPoint = mkPoint("j.right", 1, 200, 200)
	ctx := exec.NewContext(reg, cb)
	ctx.Register(j.LPoint)
	ctx.Register(j.RPoint)
	_, _ = exec.Run(ctx, j)
	if cb.Created() != 0 {
		t.Fatalf("cost-based built %d useless filters", cb.Created())
	}
	if cb.Skipped() == 0 {
		t.Fatal("expected skip decisions to be recorded")
	}
}

func TestCostBasedSkipsIncompleteState(t *testing.T) {
	// The big side short-circuits (small side completes first while big is
	// delayed); its PointDone must not produce an AIP set.
	reg := stats.NewRegistry()
	cb := NewCostBased(Options{Stats: reg, Cost: CostParams{Tuple: 100, Probe: 0.01, Build: 0.001, Fixed: 0}})
	_, _, _ = joinFixtureWithCtl(t, cb, reg)
	// Only the left (complete) point may produce; count stays ≤ 1 per class.
	if cb.Created() > 1 {
		t.Fatalf("created %d sets; incomplete state must be skipped", cb.Created())
	}
}

func TestFeedForwardInterestDiscard(t *testing.T) {
	// Three points share a class; when all consumers finish, remaining
	// working sets are discarded (no crash, no further publishes).
	reg := stats.NewRegistry()
	ff := NewFeedForward(Options{Stats: reg})
	p1 := mkPoint("p1", 1, 100, 10)
	p2 := mkPoint("p2", 1, 100, 10)
	ff.RegisterPoint(p1)
	ff.RegisterPoint(p2)
	ff.Begin()
	if p1.OnStore == nil || p2.OnStore == nil {
		t.Fatal("working-set hooks not installed")
	}
	p1.OnStore(0, types.Tuple{types.Int(1), types.Int(0)})
	markDone(p1)
	ff.PointDone(p1)
	markDone(p2)
	ff.PointDone(p2)
	// Interest is now zero; state must be cleaned up without panics.
	ff.End()
}

// markDone flips a point to done via its public surface: completing a
// trivial operator would be overkill, so reach the atomic directly through
// the exported test hook on Point (IterState requires doneness only for
// meaningful state; done flag is set by operators — emulate via reflection-
// free helper on the exec side).
func markDone(p *exec.Point) {
	p.MarkDoneForTest()
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	if o.fpr() != 0.05 {
		t.Fatalf("default fpr = %v", o.fpr())
	}
	o.FPR = 0.5
	if o.fpr() != 0.5 {
		t.Fatal("explicit fpr ignored")
	}
	o.FPR = 2
	if o.fpr() != 0.05 {
		t.Fatal("invalid fpr must fall back")
	}
	if o.linkFor(0, 0) != nil || o.linkFor(0, 1) != nil {
		t.Fatal("nil topology must yield nil links")
	}
	cp := DefaultCostParams()
	if cp.Tuple <= 0 || cp.Probe <= 0 || cp.Build <= 0 {
		t.Fatal("cost params must be positive")
	}
}

package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/bloom"
	"repro/internal/exec"
	"repro/internal/filter"
	"repro/internal/types"
)

// FeedForward is the greedy feed-forward filtering strategy of §IV-A: it
// requires no runtime statistics and "optimistically creates and uses every
// potentially useful AIP set".
//
// Query initialization registers, for every stateful operator input, a
// candidate AIP set per produced attribute and interest in the sets of
// every transitively-equated attribute produced elsewhere; candidates
// without interested parties are dropped. During execution each operator
// builds a local working copy incrementally (via the OnStore hook, called
// when a tuple is recorded by the operator); when its input completes, the
// working copy is published to the central AIP Registry, merged by bitwise
// intersection with previously published Bloom sets of the same class, and
// injected into every live interested operator.
type FeedForward struct {
	opts Options

	mu      sync.Mutex
	classes map[int]*classInfo
	points  []*exec.Point
	state   map[int]*ffClassState
}

// workingSet is one producer's incrementally built AIP set, sharded by the
// executor's partition slots: OnStore(slot, t) feeds slot-private summaries
// (each slot has exactly one writer goroutine, so the per-tuple path takes
// no lock), and PointDone merges the slots — striped/replayed merge for
// blocked Bloom partials, bitwise OR for flat Bloom filters, bucket union
// for hash sets — into the published summary. discarded is flipped when
// interest drops to zero; in-flight writers observe it and stop cheaply.
//
// Memory: under the blocked variant a slot holds a bloom.Partial — a
// size-doubling key-hash log that converts to lazily-allocated block
// stripes — so a producer running at partition fan-out P pays for what its
// slots actually saw, not P full-geometry copies; the exact merge into the
// class geometry happens once, at PointDone. The flat variant keeps the
// original full-sized per-slot copies (union compatibility requires equal
// geometry) and serves as the memory baseline the benchmarks compare
// against. Hash-set slots grow only with their content. bytes tracks the
// working memory currently allocated across slots, released from the
// owning operator's FilterWorking gauge when the set is merged or
// discarded.
type workingSet struct {
	class   int
	col     int    // state-schema column holding the attribute
	bits    uint64 // Bloom geometry shared by every slot (merge-compatible)
	k       uint32 // blocked in-block probe count
	blocked bool   // blocked Bloom partial slots
	exact   bool   // hash-set slots instead of Bloom slots

	discarded atomic.Bool
	bytes     atomic.Int64
	slots     [exec.MaxPartitions]atomic.Pointer[slotSet]
}

// slotSet is one partition slot's private summary plus its key-encoding
// scratch. Only the owning partition goroutine touches it before the merge;
// the atomic slot pointer publishes it to the merger (every OnStore call
// happens-before PointDone). Exactly one of pb/bf/hs is set, per the
// working set's variant.
type slotSet struct {
	pb  *bloom.Partial
	bf  *bloom.Filter
	hs  *filter.HashSet
	buf []byte
}

// ffSlotBuckets is the bucket count of per-slot hash-set summaries; slots
// of one working set share it so they merge bucket-wise.
const ffSlotBuckets = 256

// slot returns the slot's summary, allocating it on first use by the
// owning goroutine. bytesAdded reports fresh Bloom allocations so the
// caller can account summary memory.
func (ws *workingSet) slot(i int) (ss *slotSet, bytesAdded int) {
	if ss = ws.slots[i].Load(); ss != nil {
		return ss, 0
	}
	ss = &slotSet{}
	switch {
	case ws.exact:
		ss.hs = filter.NewHashSet(ffSlotBuckets)
	case ws.blocked:
		ss.pb = bloom.NewPartial(ws.bits, ws.k, 0)
		bytesAdded = ss.pb.SizeBytes()
	default:
		ss.bf = bloom.NewWithBits(ws.bits, 0)
		bytesAdded = ss.bf.SizeBytes()
	}
	ws.slots[i].Store(ss)
	return ss, bytesAdded
}

// ffClassState is the AIP Registry entry for one attribute class.
type ffClassState struct {
	interest int // live consumer points
	working  map[*exec.Point]*workingSet
	merged   *bloom.Filter  // intersection of published flat Bloom sets
	mergedB  *bloom.Blocked // intersection of published blocked Bloom sets
	// attached tracks the summary currently injected per consumer point so
	// a stronger merge can replace it in place.
	attached map[*exec.Point]filter.Summary
}

// NewFeedForward creates the controller.
func NewFeedForward(opts Options) *FeedForward {
	return &FeedForward{opts: opts, state: map[int]*ffClassState{}}
}

// RegisterPoint records an injection point (query initialization).
func (f *FeedForward) RegisterPoint(p *exec.Point) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.points = append(f.points, p)
}

// Begin runs the registry analysis and installs the OnStore hooks that
// build the working AIP sets.
func (f *FeedForward) Begin() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.classes = analyze(f.points, f.opts.fpr(), f.opts.Variant)

	producedBy := map[*exec.Point][]*workingSet{}
	for id, ci := range f.classes {
		st := &ffClassState{
			working:  map[*exec.Point]*workingSet{},
			attached: map[*exec.Point]filter.Summary{},
		}
		f.state[id] = st
		seenConsumer := map[*exec.Point]bool{}
		for _, co := range ci.consumers {
			if !seenConsumer[co.point] {
				seenConsumer[co.point] = true
				st.interest++
			}
		}
		seenProducer := map[*exec.Point]bool{}
		for _, pr := range ci.producers {
			if seenProducer[pr.point] {
				continue
			}
			seenProducer[pr.point] = true
			ws := &workingSet{
				class: id, col: pr.col, bits: ci.bits, k: ci.k,
				blocked: f.opts.Kind != SummaryHashSet && f.opts.Variant == BlockedBloom,
				exact:   f.opts.Kind == SummaryHashSet,
			}
			st.working[pr.point] = ws
			producedBy[pr.point] = append(producedBy[pr.point], ws)
		}
	}

	for p, sets := range producedBy {
		sets := sets
		// The partitioned executor invokes OnStore from several partition
		// workers of the same point concurrently (HashAgg and Distinct call
		// it once per new group/tuple from every worker), but each call
		// carries its partition slot, and a slot has exactly one writer:
		// the hook feeds slot-private summaries without taking any lock,
		// and PointDone merges the slots. The key is still encoded and
		// hashed once per (tuple, attribute), then fed to the summary by
		// hash.
		p := p
		p.OnStore = func(slot int, t types.Tuple) {
			for _, ws := range sets {
				if ws.discarded.Load() {
					continue
				}
				ss, added := ws.slot(slot)
				ss.buf = t[ws.col].AppendKey(ss.buf[:0])
				h := types.Hash64(ss.buf, 0)
				switch {
				case ss.pb != nil:
					// The partial's log doubles and its stripes allocate
					// lazily; account the growth as it happens so the
					// working-set gauge tracks real allocation, not the
					// full class geometry.
					before := ss.pb.SizeBytes()
					ss.pb.AddHash(h)
					added += ss.pb.SizeBytes() - before
				case ss.bf != nil:
					ss.bf.AddHash(h)
				default:
					ss.hs.AddHash(h, ss.buf)
				}
				if added > 0 {
					f.opts.Stats.FilterBytes.Add(int64(added))
					ws.bytes.Add(int64(added))
					if op := p.Op; op != nil {
						op.FilterWorking.Add(int64(added))
					}
				}
			}
		}
	}
}

// mergeSlots folds a retired working set's partition slots into one
// summary: stripe/replay merge of blocked partials into one full-geometry
// blocked filter, bitwise OR for flat Bloom slots (same geometry by
// construction), bucket union for hash-set slots. A producer that stored
// nothing still yields an empty summary — a completed empty input
// legitimately prunes everything downstream. Exactly one return value is
// non-nil.
func (ws *workingSet) mergeSlots() (*bloom.Filter, *bloom.Blocked, *filter.HashSet) {
	if ws.exact {
		var merged *filter.HashSet
		for i := range ws.slots {
			ss := ws.slots[i].Load()
			if ss == nil {
				continue
			}
			if merged == nil {
				merged = ss.hs
				continue
			}
			// Same bucket count by construction; the error path is a
			// safety net and keeps the slot's keys by swapping roles.
			if err := merged.MergeFrom(ss.hs); err != nil {
				merged = ss.hs
			}
		}
		if merged == nil {
			merged = filter.NewHashSet(ffSlotBuckets)
		}
		return nil, nil, merged
	}
	if ws.blocked {
		// The full class geometry is allocated exactly once, here — this is
		// the moment P striped partials become one union-compatible filter.
		merged := bloom.NewBlockedWithGeometry(ws.bits, ws.k, 0)
		for i := range ws.slots {
			ss := ws.slots[i].Load()
			if ss == nil {
				continue
			}
			// Same geometry by construction; the error cannot fire.
			_ = ss.pb.MergeInto(merged)
		}
		return nil, merged, nil
	}
	var merged *bloom.Filter
	for i := range ws.slots {
		ss := ws.slots[i].Load()
		if ss == nil {
			continue
		}
		if merged == nil {
			merged = ss.bf
			continue
		}
		if err := merged.UnionWith(ss.bf); err != nil {
			merged = ss.bf // incompatible geometry: cannot happen, safety net
		}
	}
	if merged == nil {
		merged = bloom.NewWithBits(ws.bits, 0)
	}
	return merged, nil, nil
}

// PointDone publishes the completed input's working sets, injects them into
// interested operators, and retires the point's interest so unneeded
// working sets can be discarded (§IV-A, query execution).
func (f *FeedForward) PointDone(p *exec.Point) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for id, ci := range f.classes {
		st := f.state[id]
		if st == nil {
			continue
		}
		// A truncated input (a dead source degraded to a partial result) has
		// a working set missing tuples that never arrived; publishing it
		// would prune rows that belong in the answer. Drop it unpublished —
		// interest accounting below still runs.
		if ws, ok := st.working[p]; ok && !p.StateComplete() {
			delete(st.working, p)
			ws.discarded.Store(true)
			releaseWorking(p, ws)
		} else if ok {
			delete(st.working, p)
			ws.discarded.Store(true)
			// Working sets cover every tuple that passed the input's
			// filters — complete summaries of the subexpression even when
			// the join short-circuited its buffering. The partition slots
			// are merged (striped merge for blocked partials, bitwise OR
			// for flat Bloom, bucket union for hash sets) into the one
			// summary that gets published; slot writes happen-before
			// PointDone, so the merge needs no locks.
			bf, bb, hs := ws.mergeSlots()
			releaseWorking(p, ws)
			switch {
			case bb != nil:
				if op := p.Op; op != nil {
					op.FilterBytes.Add(int64(bb.SizeBytes()))
				}
				f.publishBlocked(ci, st, bb)
			case bf != nil:
				if op := p.Op; op != nil {
					op.FilterBytes.Add(int64(bf.SizeBytes()))
				}
				f.publishBloom(ci, st, bf)
			default:
				f.opts.Stats.FiltersMade.Inc()
				f.opts.Stats.FilterBytes.Add(int64(hs.SizeBytes()))
				if op := p.Op; op != nil {
					op.FilterBytes.Add(int64(hs.SizeBytes()))
				}
				f.attachAll(ci, st, hs)
			}
		}
		if consumes(ci, p) {
			st.interest--
			if st.interest <= 0 {
				// Nobody left to prune with these sets: discard them.
				// In-flight partition writers observe the flag and stop;
				// their slots are dropped with the working set.
				for q, ws := range st.working {
					ws.discarded.Store(true)
					delete(st.working, q)
					releaseWorking(q, ws)
				}
			}
		}
	}
}

// releaseWorking returns a retired working set's bytes to the owning
// operator's in-progress gauge: the slot memory is dead after a merge or
// discard (the published summary is accounted separately via FilterBytes).
func releaseWorking(p *exec.Point, ws *workingSet) {
	if op := p.Op; op != nil {
		if n := ws.bytes.Load(); n > 0 {
			op.FilterWorking.Add(-n)
		}
	}
}

func consumes(ci *classInfo, p *exec.Point) bool {
	for _, co := range ci.consumers {
		if co.point == p {
			return true
		}
	}
	return false
}

// publishBloom merges a completed Bloom working set into the registry and
// (re-)injects the merged summary into live consumers. Caller holds f.mu.
func (f *FeedForward) publishBloom(ci *classInfo, st *ffClassState, bf *bloom.Filter) {
	f.opts.Stats.FiltersMade.Inc()
	if st.merged == nil {
		st.merged = bf
	} else {
		next := st.merged.Clone()
		if err := next.IntersectWith(bf); err != nil {
			// Incompatible geometry (cannot happen with class-wide
			// sizing, kept as a safety net): attach separately.
			f.attachAll(ci, st, filter.Bloom{F: bf})
			return
		}
		st.merged = next
		f.opts.Stats.FilterBytes.Add(int64(next.SizeBytes()))
	}
	newSum := filter.Bloom{F: st.merged}
	for _, co := range ci.consumers {
		if co.point.Done() {
			continue
		}
		old := st.attached[co.point]
		if old == nil {
			co.point.Bank.Attach([]int{co.col}, newSum)
			f.opts.Stats.FiltersUsed.Inc()
		} else {
			co.point.Bank.Replace([]int{co.col}, old, newSum)
		}
		st.attached[co.point] = newSum
	}
}

// publishBlocked merges a completed blocked-Bloom working set into the
// registry and (re-)injects the merged summary into live consumers. The
// full-geometry filter was allocated by mergeSlots, so its bytes are
// charged here. Caller holds f.mu.
func (f *FeedForward) publishBlocked(ci *classInfo, st *ffClassState, bb *bloom.Blocked) {
	f.opts.Stats.FiltersMade.Inc()
	f.opts.Stats.FilterBytes.Add(int64(bb.SizeBytes()))
	if st.mergedB == nil {
		st.mergedB = bb
	} else {
		next := st.mergedB.Clone()
		if err := next.IntersectWith(bb); err != nil {
			// Incompatible geometry (cannot happen with class-wide
			// sizing, kept as a safety net): attach separately.
			f.attachAll(ci, st, filter.Blocked{F: bb})
			return
		}
		st.mergedB = next
		f.opts.Stats.FilterBytes.Add(int64(next.SizeBytes()))
	}
	newSum := filter.Blocked{F: st.mergedB}
	for _, co := range ci.consumers {
		if co.point.Done() {
			continue
		}
		old := st.attached[co.point]
		if old == nil {
			co.point.Bank.Attach([]int{co.col}, newSum)
			f.opts.Stats.FiltersUsed.Inc()
		} else {
			co.point.Bank.Replace([]int{co.col}, old, newSum)
		}
		st.attached[co.point] = newSum
	}
}

// attachAll injects a summary into every live consumer of the class.
func (f *FeedForward) attachAll(ci *classInfo, st *ffClassState, sum filter.Summary) {
	seen := map[*exec.Point]bool{}
	for _, co := range ci.consumers {
		if co.point.Done() || seen[co.point] {
			continue
		}
		seen[co.point] = true
		co.point.Bank.Attach([]int{co.col}, sum)
		f.opts.Stats.FiltersUsed.Inc()
	}
}

// End is a no-op for Feed-Forward.
func (f *FeedForward) End() {}

package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/bloom"
	"repro/internal/exec"
	"repro/internal/filter"
	"repro/internal/types"
)

// FeedForward is the greedy feed-forward filtering strategy of §IV-A: it
// requires no runtime statistics and "optimistically creates and uses every
// potentially useful AIP set".
//
// Query initialization registers, for every stateful operator input, a
// candidate AIP set per produced attribute and interest in the sets of
// every transitively-equated attribute produced elsewhere; candidates
// without interested parties are dropped. During execution each operator
// builds a local working copy incrementally (via the OnStore hook, called
// when a tuple is recorded by the operator); when its input completes, the
// working copy is published to the central AIP Registry, merged by bitwise
// intersection with previously published Bloom sets of the same class, and
// injected into every live interested operator.
type FeedForward struct {
	opts Options

	mu      sync.Mutex
	classes map[int]*classInfo
	points  []*exec.Point
	state   map[int]*ffClassState
}

// workingSet is one producer's incrementally built AIP set. The owning
// operator goroutine is the only writer; a nil pointer means the set was
// discarded because interest dropped to zero.
type workingSet struct {
	class int
	col   int // state-schema column holding the attribute
	bf    atomic.Pointer[bloom.Filter]
	hs    atomic.Pointer[filter.HashSet]
}

// ffClassState is the AIP Registry entry for one attribute class.
type ffClassState struct {
	interest int // live consumer points
	working  map[*exec.Point]*workingSet
	merged   *bloom.Filter // intersection of published Bloom sets
	// attached tracks the summary currently injected per consumer point so
	// a stronger merge can replace it in place.
	attached map[*exec.Point]filter.Summary
}

// NewFeedForward creates the controller.
func NewFeedForward(opts Options) *FeedForward {
	return &FeedForward{opts: opts, state: map[int]*ffClassState{}}
}

// RegisterPoint records an injection point (query initialization).
func (f *FeedForward) RegisterPoint(p *exec.Point) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.points = append(f.points, p)
}

// Begin runs the registry analysis and installs the OnStore hooks that
// build the working AIP sets.
func (f *FeedForward) Begin() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.classes = analyze(f.points, f.opts.fpr())

	producedBy := map[*exec.Point][]*workingSet{}
	for id, ci := range f.classes {
		st := &ffClassState{
			working:  map[*exec.Point]*workingSet{},
			attached: map[*exec.Point]filter.Summary{},
		}
		f.state[id] = st
		seenConsumer := map[*exec.Point]bool{}
		for _, co := range ci.consumers {
			if !seenConsumer[co.point] {
				seenConsumer[co.point] = true
				st.interest++
			}
		}
		seenProducer := map[*exec.Point]bool{}
		for _, pr := range ci.producers {
			if seenProducer[pr.point] {
				continue
			}
			seenProducer[pr.point] = true
			ws := &workingSet{class: id, col: pr.col}
			if f.opts.Kind == SummaryHashSet {
				ws.hs.Store(filter.NewHashSet(256))
			} else {
				bf := bloom.NewWithBits(ci.bits, 0)
				ws.bf.Store(bf)
				f.opts.Stats.FilterBytes.Add(int64(bf.SizeBytes()))
			}
			st.working[pr.point] = ws
			producedBy[pr.point] = append(producedBy[pr.point], ws)
		}
	}

	for p, sets := range producedBy {
		sets := sets
		// buf is reused across calls under mu. The partitioned executor may
		// invoke OnStore from several partition workers of the same point
		// concurrently (HashAgg calls it for new groups), and Bloom AddHash
		// is not atomic, so the hook serializes itself; the key is still
		// encoded and hashed once, then fed to the summary by hash.
		var mu sync.Mutex
		var buf []byte
		p.OnStore = func(t types.Tuple) {
			mu.Lock()
			defer mu.Unlock()
			for _, ws := range sets {
				buf = buf[:0]
				buf = t[ws.col].AppendKey(buf)
				h := types.Hash64(buf, 0)
				if bf := ws.bf.Load(); bf != nil {
					bf.AddHash(h)
				} else if hs := ws.hs.Load(); hs != nil {
					hs.AddHash(h, buf)
				}
			}
		}
	}
}

// PointDone publishes the completed input's working sets, injects them into
// interested operators, and retires the point's interest so unneeded
// working sets can be discarded (§IV-A, query execution).
func (f *FeedForward) PointDone(p *exec.Point) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for id, ci := range f.classes {
		st := f.state[id]
		if st == nil {
			continue
		}
		if ws, ok := st.working[p]; ok {
			delete(st.working, p)
			// Working sets cover every tuple that passed the input's
			// filters — complete summaries of the subexpression even when
			// the join short-circuited its buffering.
			if bf := ws.bf.Swap(nil); bf != nil {
				f.publishBloom(ci, st, bf)
			}
			if hs := ws.hs.Swap(nil); hs != nil {
				f.opts.Stats.FiltersMade.Inc()
				f.opts.Stats.FilterBytes.Add(int64(hs.SizeBytes()))
				f.attachAll(ci, st, hs)
			}
		}
		if consumes(ci, p) {
			st.interest--
			if st.interest <= 0 {
				// Nobody left to prune with these sets: discard them.
				for q, ws := range st.working {
					ws.bf.Store(nil)
					ws.hs.Store(nil)
					delete(st.working, q)
				}
			}
		}
	}
}

func consumes(ci *classInfo, p *exec.Point) bool {
	for _, co := range ci.consumers {
		if co.point == p {
			return true
		}
	}
	return false
}

// publishBloom merges a completed Bloom working set into the registry and
// (re-)injects the merged summary into live consumers. Caller holds f.mu.
func (f *FeedForward) publishBloom(ci *classInfo, st *ffClassState, bf *bloom.Filter) {
	f.opts.Stats.FiltersMade.Inc()
	if st.merged == nil {
		st.merged = bf
	} else {
		next := st.merged.Clone()
		if err := next.IntersectWith(bf); err != nil {
			// Incompatible geometry (cannot happen with class-wide
			// sizing, kept as a safety net): attach separately.
			f.attachAll(ci, st, filter.Bloom{F: bf})
			return
		}
		st.merged = next
		f.opts.Stats.FilterBytes.Add(int64(next.SizeBytes()))
	}
	newSum := filter.Bloom{F: st.merged}
	for _, co := range ci.consumers {
		if co.point.Done() {
			continue
		}
		old := st.attached[co.point]
		if old == nil {
			co.point.Bank.Attach([]int{co.col}, newSum)
			f.opts.Stats.FiltersUsed.Inc()
		} else {
			co.point.Bank.Replace([]int{co.col}, old, newSum)
		}
		st.attached[co.point] = newSum
	}
}

// attachAll injects a summary into every live consumer of the class.
func (f *FeedForward) attachAll(ci *classInfo, st *ffClassState, sum filter.Summary) {
	seen := map[*exec.Point]bool{}
	for _, co := range ci.consumers {
		if co.point.Done() || seen[co.point] {
			continue
		}
		seen[co.point] = true
		co.point.Bank.Attach([]int{co.col}, sum)
		f.opts.Stats.FiltersUsed.Inc()
	}
}

// End is a no-op for Feed-Forward.
func (f *FeedForward) End() {}

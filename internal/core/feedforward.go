package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/bloom"
	"repro/internal/exec"
	"repro/internal/filter"
	"repro/internal/types"
)

// FeedForward is the greedy feed-forward filtering strategy of §IV-A: it
// requires no runtime statistics and "optimistically creates and uses every
// potentially useful AIP set".
//
// Query initialization registers, for every stateful operator input, a
// candidate AIP set per produced attribute and interest in the sets of
// every transitively-equated attribute produced elsewhere; candidates
// without interested parties are dropped. During execution each operator
// builds a local working copy incrementally (via the OnStore hook, called
// when a tuple is recorded by the operator); when its input completes, the
// working copy is published to the central AIP Registry, merged by bitwise
// intersection with previously published Bloom sets of the same class, and
// injected into every live interested operator.
type FeedForward struct {
	opts Options

	mu      sync.Mutex
	classes map[int]*classInfo
	points  []*exec.Point
	state   map[int]*ffClassState
}

// workingSet is one producer's incrementally built AIP set, sharded by the
// executor's partition slots: OnStore(slot, t) feeds slot-private summaries
// (each slot has exactly one writer goroutine, so the per-tuple path takes
// no lock), and PointDone merges the slots — bitwise OR for Bloom filters,
// bucket union for hash sets — into the published summary. discarded is
// flipped when interest drops to zero; in-flight writers observe it and
// stop cheaply.
//
// Memory: a slot's Bloom filter must be full-sized (union compatibility
// requires equal geometry), so a producer running at partition fan-out P
// holds up to P copies of the working filter until PointDone. That is the
// price of a lock-free state-build phase that scales with P; hash-set
// slots grow only with their content.
type workingSet struct {
	class int
	col   int    // state-schema column holding the attribute
	bits  uint64 // Bloom geometry shared by every slot (merge-compatible)
	exact bool   // hash-set slots instead of Bloom slots

	discarded atomic.Bool
	slots     [exec.MaxPartitions]atomic.Pointer[slotSet]
}

// slotSet is one partition slot's private summary plus its key-encoding
// scratch. Only the owning partition goroutine touches it before the merge;
// the atomic slot pointer publishes it to the merger (every OnStore call
// happens-before PointDone).
type slotSet struct {
	bf  *bloom.Filter
	hs  *filter.HashSet
	buf []byte
}

// ffSlotBuckets is the bucket count of per-slot hash-set summaries; slots
// of one working set share it so they merge bucket-wise.
const ffSlotBuckets = 256

// slot returns the slot's summary, allocating it on first use by the
// owning goroutine. bytesAdded reports fresh Bloom allocations so the
// caller can account summary memory.
func (ws *workingSet) slot(i int) (ss *slotSet, bytesAdded int) {
	if ss = ws.slots[i].Load(); ss != nil {
		return ss, 0
	}
	ss = &slotSet{}
	if ws.exact {
		ss.hs = filter.NewHashSet(ffSlotBuckets)
	} else {
		ss.bf = bloom.NewWithBits(ws.bits, 0)
		bytesAdded = ss.bf.SizeBytes()
	}
	ws.slots[i].Store(ss)
	return ss, bytesAdded
}

// ffClassState is the AIP Registry entry for one attribute class.
type ffClassState struct {
	interest int // live consumer points
	working  map[*exec.Point]*workingSet
	merged   *bloom.Filter // intersection of published Bloom sets
	// attached tracks the summary currently injected per consumer point so
	// a stronger merge can replace it in place.
	attached map[*exec.Point]filter.Summary
}

// NewFeedForward creates the controller.
func NewFeedForward(opts Options) *FeedForward {
	return &FeedForward{opts: opts, state: map[int]*ffClassState{}}
}

// RegisterPoint records an injection point (query initialization).
func (f *FeedForward) RegisterPoint(p *exec.Point) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.points = append(f.points, p)
}

// Begin runs the registry analysis and installs the OnStore hooks that
// build the working AIP sets.
func (f *FeedForward) Begin() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.classes = analyze(f.points, f.opts.fpr())

	producedBy := map[*exec.Point][]*workingSet{}
	for id, ci := range f.classes {
		st := &ffClassState{
			working:  map[*exec.Point]*workingSet{},
			attached: map[*exec.Point]filter.Summary{},
		}
		f.state[id] = st
		seenConsumer := map[*exec.Point]bool{}
		for _, co := range ci.consumers {
			if !seenConsumer[co.point] {
				seenConsumer[co.point] = true
				st.interest++
			}
		}
		seenProducer := map[*exec.Point]bool{}
		for _, pr := range ci.producers {
			if seenProducer[pr.point] {
				continue
			}
			seenProducer[pr.point] = true
			ws := &workingSet{class: id, col: pr.col, bits: ci.bits, exact: f.opts.Kind == SummaryHashSet}
			st.working[pr.point] = ws
			producedBy[pr.point] = append(producedBy[pr.point], ws)
		}
	}

	for p, sets := range producedBy {
		sets := sets
		// The partitioned executor invokes OnStore from several partition
		// workers of the same point concurrently (HashAgg and Distinct call
		// it once per new group/tuple from every worker), but each call
		// carries its partition slot, and a slot has exactly one writer:
		// the hook feeds slot-private summaries without taking any lock,
		// and PointDone merges the slots. The key is still encoded and
		// hashed once per (tuple, attribute), then fed to the summary by
		// hash.
		p.OnStore = func(slot int, t types.Tuple) {
			for _, ws := range sets {
				if ws.discarded.Load() {
					continue
				}
				ss, added := ws.slot(slot)
				if added > 0 {
					f.opts.Stats.FilterBytes.Add(int64(added))
				}
				ss.buf = t[ws.col].AppendKey(ss.buf[:0])
				h := types.Hash64(ss.buf, 0)
				if ss.bf != nil {
					ss.bf.AddHash(h)
				} else {
					ss.hs.AddHash(h, ss.buf)
				}
			}
		}
	}
}

// mergeSlots folds a retired working set's partition slots into one
// summary: bitwise OR for Bloom slots (same geometry by construction),
// bucket union for hash-set slots. A producer that stored nothing still
// yields an empty summary — a completed empty input legitimately prunes
// everything downstream.
func (ws *workingSet) mergeSlots() (*bloom.Filter, *filter.HashSet) {
	if ws.exact {
		var merged *filter.HashSet
		for i := range ws.slots {
			ss := ws.slots[i].Load()
			if ss == nil {
				continue
			}
			if merged == nil {
				merged = ss.hs
				continue
			}
			// Same bucket count by construction; the error path is a
			// safety net and keeps the slot's keys by swapping roles.
			if err := merged.MergeFrom(ss.hs); err != nil {
				merged = ss.hs
			}
		}
		if merged == nil {
			merged = filter.NewHashSet(ffSlotBuckets)
		}
		return nil, merged
	}
	var merged *bloom.Filter
	for i := range ws.slots {
		ss := ws.slots[i].Load()
		if ss == nil {
			continue
		}
		if merged == nil {
			merged = ss.bf
			continue
		}
		if err := merged.UnionWith(ss.bf); err != nil {
			merged = ss.bf // incompatible geometry: cannot happen, safety net
		}
	}
	if merged == nil {
		merged = bloom.NewWithBits(ws.bits, 0)
	}
	return merged, nil
}

// PointDone publishes the completed input's working sets, injects them into
// interested operators, and retires the point's interest so unneeded
// working sets can be discarded (§IV-A, query execution).
func (f *FeedForward) PointDone(p *exec.Point) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for id, ci := range f.classes {
		st := f.state[id]
		if st == nil {
			continue
		}
		// A truncated input (a dead source degraded to a partial result) has
		// a working set missing tuples that never arrived; publishing it
		// would prune rows that belong in the answer. Drop it unpublished —
		// interest accounting below still runs.
		if ws, ok := st.working[p]; ok && !p.StateComplete() {
			delete(st.working, p)
			ws.discarded.Store(true)
		} else if ok {
			delete(st.working, p)
			ws.discarded.Store(true)
			// Working sets cover every tuple that passed the input's
			// filters — complete summaries of the subexpression even when
			// the join short-circuited its buffering. The partition slots
			// are merged (bitwise OR for Bloom, bucket union for hash
			// sets) into the one summary that gets published; slot writes
			// happen-before PointDone, so the merge needs no locks.
			bf, hs := ws.mergeSlots()
			if bf != nil {
				f.publishBloom(ci, st, bf)
			} else {
				f.opts.Stats.FiltersMade.Inc()
				f.opts.Stats.FilterBytes.Add(int64(hs.SizeBytes()))
				f.attachAll(ci, st, hs)
			}
		}
		if consumes(ci, p) {
			st.interest--
			if st.interest <= 0 {
				// Nobody left to prune with these sets: discard them.
				// In-flight partition writers observe the flag and stop;
				// their slots are dropped with the working set.
				for q, ws := range st.working {
					ws.discarded.Store(true)
					delete(st.working, q)
				}
			}
		}
	}
}

func consumes(ci *classInfo, p *exec.Point) bool {
	for _, co := range ci.consumers {
		if co.point == p {
			return true
		}
	}
	return false
}

// publishBloom merges a completed Bloom working set into the registry and
// (re-)injects the merged summary into live consumers. Caller holds f.mu.
func (f *FeedForward) publishBloom(ci *classInfo, st *ffClassState, bf *bloom.Filter) {
	f.opts.Stats.FiltersMade.Inc()
	if st.merged == nil {
		st.merged = bf
	} else {
		next := st.merged.Clone()
		if err := next.IntersectWith(bf); err != nil {
			// Incompatible geometry (cannot happen with class-wide
			// sizing, kept as a safety net): attach separately.
			f.attachAll(ci, st, filter.Bloom{F: bf})
			return
		}
		st.merged = next
		f.opts.Stats.FilterBytes.Add(int64(next.SizeBytes()))
	}
	newSum := filter.Bloom{F: st.merged}
	for _, co := range ci.consumers {
		if co.point.Done() {
			continue
		}
		old := st.attached[co.point]
		if old == nil {
			co.point.Bank.Attach([]int{co.col}, newSum)
			f.opts.Stats.FiltersUsed.Inc()
		} else {
			co.point.Bank.Replace([]int{co.col}, old, newSum)
		}
		st.attached[co.point] = newSum
	}
}

// attachAll injects a summary into every live consumer of the class.
func (f *FeedForward) attachAll(ci *classInfo, st *ffClassState, sum filter.Summary) {
	seen := map[*exec.Point]bool{}
	for _, co := range ci.consumers {
		if co.point.Done() || seen[co.point] {
			continue
		}
		seen[co.point] = true
		co.point.Bank.Attach([]int{co.col}, sum)
		f.opts.Stats.FiltersUsed.Inc()
	}
}

// End is a no-op for Feed-Forward.
func (f *FeedForward) End() {}

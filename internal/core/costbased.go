package core

import (
	"math"
	"sort"
	"sync"

	"repro/internal/bloom"
	"repro/internal/exec"
	"repro/internal/filter"
	"repro/internal/types"
)

// CostBased is the cost-based AIP strategy of §IV-B. Normal query
// processing proceeds with no incremental filter maintenance; whenever an
// input expression to a stateful operator completes, the AIP Manager is
// invoked. It evaluates the cost/benefit ratio of scanning the state within
// the operator, creating an AIP set, and adding the AIP set as a filter
// elsewhere in the query plan — re-using the optimizer's cardinality
// machinery exposed on each injection point (EstRows, DomainDistinct,
// ancestor chains) together with the engine's live cardinality counters.
//
// The decision procedure mirrors ESTIMATEBENEFIT (Fig. 4): candidate users
// are visited in inverse order of depth; once filtering a node is judged
// beneficial, its ancestors up to the common ancestor with the source are
// excluded to avoid double-counting; accepted filters make the revised
// cardinality estimates permanent. In the distributed setting a filter
// shipped to a remote site is additionally charged its transfer cost, and
// the transfer consumes (simulated) wall-clock time when the filter is
// actually injected.
type CostBased struct {
	opts Options

	mu      sync.Mutex
	points  []*exec.Point
	classes map[int]*classInfo

	// discount is the "permanent" revised-cardinality factor per point:
	// accepted filters scale the expected inflow of the target's
	// ancestors (Fig. 4 line 10).
	discount map[*exec.Point]float64

	// attached records the strength (|A|) of the filter currently injected
	// at a (point, class) pair, so only strictly stronger filters replace
	// it (§IV-B: intersect or replace).
	attached map[*exec.Point]map[int]*cbAttached

	// decisions counts create/skip outcomes for introspection and tests.
	created    int
	skipped    int
	shipFailed int // filter shipments abandoned after recovery was exhausted
}

type cbAttached struct {
	sum  filter.Summary
	size int // |A| of the injected set
}

// NewCostBased creates the controller.
func NewCostBased(opts Options) *CostBased {
	return &CostBased{
		opts:     opts,
		discount: map[*exec.Point]float64{},
		attached: map[*exec.Point]map[int]*cbAttached{},
	}
}

// RegisterPoint records an injection point.
func (c *CostBased) RegisterPoint(p *exec.Point) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.points = append(c.points, p)
}

// Begin precomputes candidate AIP-set producers and users, the runtime
// analog of AIPCANDIDATES (Fig. 3).
func (c *CostBased) Begin() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.classes = analyze(c.points, c.opts.fpr(), c.opts.Variant)
}

// Created returns how many AIP sets the manager decided to build.
func (c *CostBased) Created() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.created
}

// Skipped returns how many candidate AIP sets the manager rejected.
func (c *CostBased) Skipped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.skipped
}

// ShipFailed returns how many filter shipments were abandoned because the
// remote site stayed dead through the recovery policy.
func (c *CostBased) ShipFailed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shipFailed
}

// PointDone triggers the AIP Manager for a completed stateful input.
func (c *CostBased) PointDone(p *exec.Point) {
	if !p.Stateful || !p.StateComplete() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, col := range p.KeyCols {
		id := p.StateEqIDs[col]
		if id < 0 {
			continue
		}
		ci, ok := c.classes[id]
		if !ok {
			continue
		}
		c.considerSet(p, col, ci)
	}
}

// candidate is one prospective filter user with its computed benefit.
type candidate struct {
	point   *exec.Point
	col     int
	benefit float64
	sigma   float64
	link    int           // remote site to ship to, 0 when local
	anc     []*exec.Point // ancestors whose estimates this filter revises
}

// considerSet is ESTIMATEBENEFIT plus the injection step. Caller holds c.mu.
func (c *CostBased) considerSet(src *exec.Point, stateCol int, ci *classInfo) {
	cp := c.opts.Cost
	setSize := float64(src.StoredRows())
	createCost := cp.Fixed + setSize*cp.Build

	// Candidate users in inverse order of depth (deepest first), so a
	// filter applied low in the plan propagates its cardinality reduction
	// upward before shallower candidates are costed.
	cands := make([]classUse, 0, len(ci.consumers))
	seen := map[*exec.Point]bool{}
	for _, co := range ci.consumers {
		if co.point == src || co.point.Done() || seen[co.point] {
			continue
		}
		seen[co.point] = true
		cands = append(cands, co)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].point.Depth > cands[j].point.Depth })

	srcAnc := map[*exec.Point]bool{src: true}
	for _, a := range src.Ancestors {
		srcAnc[a] = true
	}

	used := map[*exec.Point]bool{}
	tentative := map[*exec.Point]float64{}
	var accepted []candidate
	savings := 0.0

	for _, co := range cands {
		n := co.point
		if used[n] {
			continue
		}
		// Existing stronger (smaller) filter already injected here?
		if prev := c.attached[n][ci.id]; prev != nil && prev.size <= int(setSize) {
			continue
		}
		sigma := 1.0
		domain := n.DomainDistinct[co.col]
		if domain <= 0 {
			domain = ci.domain
		}
		if domain > 0 {
			sigma = math.Min(1, setSize/domain)
		}
		// Expected tuples still to arrive at n, after previously accepted
		// filters' revisions (permanent discounts plus this invocation's
		// tentative ones).
		rem := n.EstRows*c.factor(n)*tentFactor(tentative, n) - float64(n.Received())
		if rem < 0 {
			rem = 0
		}
		// Pruned tuples save their processing here and at every ancestor;
		// every arriving tuple pays one extra probe.
		downstream := cp.Tuple * float64(1+len(n.Ancestors))
		benefit := rem*(1-sigma)*downstream - rem*cp.Probe
		if c.opts.Topology != nil && n.Site != src.Site {
			shipBits := bloom.BitsFor(int(setSize), c.opts.fpr())
			if c.opts.Variant == BlockedBloom {
				shipBits = bloom.BlockedBitsFor(int(setSize), c.opts.fpr())
			}
			benefit -= float64(shipBits/8) * cp.NetworkByte
		}
		if benefit <= 0 {
			continue
		}
		savings += benefit
		ca := candidate{point: n, col: co.col, benefit: benefit, sigma: sigma, link: n.Site}
		// Propagate revised cardinality estimates to n's ancestors
		// (tentatively), and exclude ancestors up to the common ancestor
		// of n and src from further consideration.
		for _, a := range n.Ancestors {
			if srcAnc[a] {
				break
			}
			used[a] = true
			tentative[a] = tentFactor(tentative, a) * sigma
			ca.anc = append(ca.anc, a)
		}
		used[n] = true
		accepted = append(accepted, ca)
	}

	if savings <= createCost || len(accepted) == 0 {
		c.skipped++
		return
	}

	// Build the AIP set by scanning the operator's state.
	sum := c.buildSummary(src, stateCol, ci)
	c.created++
	c.opts.Stats.FiltersMade.Inc()
	c.opts.Stats.FilterBytes.Add(int64(sum.SizeBytes()))
	if op := src.Op; op != nil {
		op.FilterBytes.Add(int64(sum.SizeBytes()))
	}

	// Inject, making each candidate's revised estimates permanent only once
	// its filter is actually in place: a filter whose shipment failed (dead
	// remote site, recovery exhausted) is neither attached nor allowed to
	// discount the estimates other decisions will read.
	for _, a := range accepted {
		if link := c.opts.linkFor(src.Site, a.point.Site); link != nil {
			// Shipping the filter costs real (simulated) time and bytes —
			// and may fail; the shipment runs under the engine's recovery
			// policy when the hook is installed.
			n := sum.SizeBytes()
			c.mu.Unlock()
			err := c.opts.shipFilter(link, a.point.Site, n)
			c.mu.Lock()
			if err != nil {
				c.shipFailed++
				continue
			}
			c.opts.Stats.NetworkBytes.Add(int64(n))
			c.opts.Stats.FilterNetWork.Add(int64(n))
		}
		prev := c.attached[a.point][ci.id]
		if prev != nil {
			a.point.Bank.Replace([]int{a.col}, prev.sum, sum)
		} else {
			a.point.Bank.Attach([]int{a.col}, sum)
		}
		if c.attached[a.point] == nil {
			c.attached[a.point] = map[int]*cbAttached{}
		}
		c.attached[a.point][ci.id] = &cbAttached{sum: sum, size: int(setSize)}
		c.opts.Stats.FiltersUsed.Inc()
		for _, p := range a.anc {
			c.discount[p] = c.factor(p) * a.sigma
		}
	}
}

// End is a no-op for the Cost-Based manager.
func (c *CostBased) End() {}

func (c *CostBased) factor(p *exec.Point) float64 {
	if f, ok := c.discount[p]; ok {
		return f
	}
	return 1
}

func tentFactor(m map[*exec.Point]float64, p *exec.Point) float64 {
	if f, ok := m[p]; ok {
		return f
	}
	return 1
}

// buildSummary scans the completed state into a summary structure. With
// SummaryBloom the filter uses the class-wide geometry so later sets over
// the same class could be intersected; with SummaryHashSet an exact set is
// built (the §IV-B note about reusing an operator's hash table directly).
// Blocked filters are fed through the batch insert kernel: the state scan
// buffers hashes and flushes them 256 at a time so block addresses are
// computed and warmed in bulk.
func (c *CostBased) buildSummary(src *exec.Point, stateCol int, ci *classInfo) filter.Summary {
	var buf []byte
	if c.opts.Kind == SummaryHashSet {
		hs := filter.NewHashSet(256)
		src.IterState(func(t types.Tuple) bool {
			buf = buf[:0]
			buf = t[stateCol].AppendKey(buf)
			hs.AddHash(types.Hash64(buf, 0), buf)
			return true
		})
		return hs
	}
	if c.opts.Variant == BlockedBloom {
		bb := bloom.NewBlockedWithGeometry(ci.bits, ci.k, 0)
		hashes := make([]uint64, 0, 256)
		src.IterState(func(t types.Tuple) bool {
			buf = buf[:0]
			buf = t[stateCol].AppendKey(buf)
			hashes = append(hashes, types.Hash64(buf, 0))
			if len(hashes) == cap(hashes) {
				bb.AddHashBatch(hashes)
				hashes = hashes[:0]
			}
			return true
		})
		bb.AddHashBatch(hashes)
		return filter.Blocked{F: bb}
	}
	bf := bloom.NewWithBits(ci.bits, 0)
	src.IterState(func(t types.Tuple) bool {
		buf = buf[:0]
		buf = t[stateCol].AppendKey(buf)
		bf.AddHash(types.Hash64(buf, 0))
		return true
	})
	return filter.Bloom{F: bf}
}

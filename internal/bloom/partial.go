// Partial: a memory-frugal per-slot builder for one Blocked filter.
//
// The Feed-Forward controller gives every producer slot (partition worker)
// a private working set so insertions need no synchronization, then merges
// the slots when the point completes. Giving each of P slots a full copy of
// the final geometry costs P× the filter's footprint even when a slot only
// ever sees a handful of keys. Partial fixes that with two stages:
//
//  1. A size-doubling log: an open-addressed set of the raw 64-bit key
//     hashes, starting at 64 entries (512 bytes) and doubling on a 3/4
//     load factor. Small slots never leave this stage.
//  2. Stripes of the final geometry, entered once the log would outgrow
//     max(1 KB, final/8) bytes: the block range is cut into up to 64
//     stripes and each stripe's words are allocated only when a key lands
//     in it. Because the block index is monotone in the high hash bits —
//     the same bits that drive radix partitioning — a partition-confined
//     slot touches one contiguous run of blocks and allocates ~1/P of the
//     geometry, so P striped slots together cost about ONE full filter
//     instead of P.
//
// MergeInto is exact: a key's final (block, bits) are pure functions of its
// hash, so replaying the log or ORing stripes at their block offsets yields
// bit-for-bit the filter direct insertion would have built.
package bloom

import (
	"fmt"

	"repro/internal/types"
)

const (
	partialLogInit   = 64 // initial log capacity (entries)
	partialLogMin    = 1 << 10
	partialMaxStripe = 64 // stripes the final geometry is cut into
)

// Partial accumulates one slot's insertions for a Blocked filter of the
// given final geometry. It is not concurrency-safe: the executor serializes
// all calls for one slot (the OnStore contract).
type Partial struct {
	nblocks uint64
	k       uint32
	seed    uint64

	// Stage 1: open-addressed log of distinct key hashes. hasZero covers
	// the one hash that collides with the empty-slot sentinel.
	log     []uint64
	logN    int
	hasZero bool

	// Stage 2: lazily allocated stripes of the final block range.
	stripes      [][]uint64
	stripeBlocks uint64 // blocks per stripe (last stripe may be short)

	inserts int // every AddHash call, duplicates included (matches Blocked.n)
	bytes   int // currently allocated filter bytes (log + stripes)
}

// NewPartial creates a slot working set whose MergeInto target is
// NewBlockedWithGeometry(nbits, k, seed). Geometry is normalized exactly
// like NewBlockedWithGeometry so the two always agree.
func NewPartial(nbits uint64, k uint32, seed uint64) *Partial {
	if nbits < BlockBits {
		nbits = BlockBits
	}
	nblocks := (nbits + BlockBits - 1) / BlockBits
	if k < 1 {
		k = 1
	}
	if k > MaxBlockedK {
		k = MaxBlockedK
	}
	p := &Partial{
		nblocks: nblocks,
		k:       k,
		seed:    seed,
		log:     make([]uint64, partialLogInit),
	}
	p.bytes = len(p.log) * 8
	return p
}

// AddHash records a key by its precomputed hash (types.Hash64 of the
// canonical key encoding with seed 0).
func (p *Partial) AddHash(h uint64) {
	p.inserts++
	if p.stripes != nil {
		p.addStriped(h)
		return
	}
	if h == 0 {
		if !p.hasZero {
			p.hasZero = true
			p.logN++
		}
		return
	}
	mask := uint64(len(p.log) - 1)
	i := h & mask
	for {
		v := p.log[i]
		if v == h {
			return
		}
		if v == 0 {
			p.log[i] = h
			p.logN++
			break
		}
		i = (i + 1) & mask
	}
	if p.logN*4 >= len(p.log)*3 {
		p.growLog()
	}
}

// growLog doubles the log, converting to stripes once the doubled log
// would cost more than an eighth of the final geometry (small geometries
// convert past a 1 KB floor so tiny filters don't thrash between stages).
func (p *Partial) growLog() {
	limit := int(p.nblocks) * (BlockBits / 8) / 8
	if limit < partialLogMin {
		limit = partialLogMin
	}
	if len(p.log)*2*8 > limit {
		p.convert()
		return
	}
	old := p.log
	p.log = make([]uint64, len(old)*2)
	p.bytes += len(p.log)*8 - len(old)*8
	mask := uint64(len(p.log) - 1)
	for _, h := range old {
		if h == 0 {
			continue
		}
		i := h & mask
		for p.log[i] != 0 {
			i = (i + 1) & mask
		}
		p.log[i] = h
	}
}

// convert switches to stage 2, replaying every logged hash into stripes.
func (p *Partial) convert() {
	p.stripeBlocks = (p.nblocks + partialMaxStripe - 1) / partialMaxStripe
	nstripes := (p.nblocks + p.stripeBlocks - 1) / p.stripeBlocks
	p.stripes = make([][]uint64, nstripes)
	old := p.log
	p.log = nil
	p.bytes -= len(old) * 8
	for _, h := range old {
		if h != 0 {
			p.addStriped(h)
		}
	}
	if p.hasZero {
		p.addStriped(0)
	}
}

func (p *Partial) addStriped(h uint64) {
	block := ((h >> 32) * p.nblocks) >> 32
	s := block / p.stripeBlocks
	st := p.stripes[s]
	if st == nil {
		blocks := p.stripeBlocks
		if rem := p.nblocks - s*p.stripeBlocks; rem < blocks {
			blocks = rem
		}
		st = make([]uint64, blocks*blockWords)
		p.stripes[s] = st
		p.bytes += len(st) * 8
	}
	base := (block - s*p.stripeBlocks) * blockWords
	w, mask := blockedMask(types.Mix64(h, p.seed^blockedSalt), p.k)
	st[base+w] |= mask
}

// Len returns the number of AddHash calls recorded (duplicates included),
// matching what Blocked.Len would report after the same insertions.
func (p *Partial) Len() int { return p.inserts }

// SizeBytes returns the currently allocated working-set bytes — the
// number the striped design exists to shrink.
func (p *Partial) SizeBytes() int { return p.bytes }

// MergeInto ORs the slot's accumulated keys into dst, which must have the
// geometry the Partial was created for. The result is bit-identical to
// having called dst.AddHash for every AddHash the Partial received.
func (p *Partial) MergeInto(dst *Blocked) error {
	if dst == nil || dst.nblocks != p.nblocks || dst.k != p.k || dst.seed != p.seed {
		return fmt.Errorf("bloom: cannot merge partial (%d blocks, k=%d, seed=%d) into mismatched filter",
			p.nblocks, p.k, p.seed)
	}
	if p.stripes == nil {
		for _, h := range p.log {
			if h != 0 {
				dst.setHash(h)
			}
		}
		if p.hasZero {
			dst.setHash(0)
		}
	} else {
		for s, st := range p.stripes {
			if st == nil {
				continue
			}
			base := uint64(s) * p.stripeBlocks * blockWords
			for i, w := range st {
				dst.words[base+uint64(i)] |= w
			}
		}
	}
	dst.n += p.inserts
	return nil
}

// Cache-line-blocked Bloom filter.
//
// The flat Filter's k probes touch k random cache lines; at AIP probe rates
// (every tuple entering every filtered operator input) the memory stalls
// dominate the probe cost. Blocked confines each key to one 512-bit block —
// exactly one cache line — so a probe costs one line fetch regardless of k:
//
//   - The block is chosen by the HIGH 32 bits of the key's Hash64 via a
//     multiply-shift range reduction, which is monotone in those bits. The
//     executor's radix partitioning uses the same high bits, so one
//     partition's keys land in one contiguous stripe of blocks — Partial
//     exploits this to build per-slot working sets stripe by stripe.
//   - Within the block the layout is SECTORIZED: one remixed 64-bit hash
//     picks a single 64-bit word of the block (3 bits) and k bit positions
//     inside that word (6-bit chunks), so a probe is one load and one mask
//     compare — w & mask == mask — regardless of k. k is capped at 7
//     (3 + 7·6 = 45 hash bits) and no second hash of the key bytes is ever
//     computed.
//
// Confining the k bits to one word costs accuracy twice over a classic
// filter (the key count per block AND per word fluctuates), so the sizing
// helpers inflate the classic m = n·ln(1/p)/ln²2 optimum by a constant
// density relief; see BlockedBitsFor.
//
// Two filters are merge-compatible when they share (nblocks, k, seed);
// geometry helpers round bit budgets up to whole blocks so equal budgets
// always negotiate equal geometry.
package bloom

import (
	"fmt"
	"math"

	"repro/internal/types"
)

// BlockBits is the blocked filter's block size: 512 bits = 64 bytes = one
// cache line on every mainstream CPU.
const BlockBits = 512

const (
	blockWords = BlockBits / 64
	// blockedSalt separates the in-block bit hash from the flat filter's
	// remix and from block selection, so the bit pattern inside a block is
	// independent of which block was chosen.
	blockedSalt = 0x9e3779b97f4a7c15
	// MaxBlockedK is the probe count cap: one 64-bit remix yields a 3-bit
	// word selector plus seven independent 6-bit in-word positions.
	MaxBlockedK = 7
	// blockedDensityRelief inflates the classic Bloom sizing to compensate
	// for sectorization: the per-word key count is doubly stochastic
	// (Poisson across blocks, then across the 8 words of a block), and
	// Jensen's inequality makes the average FPR of fluctuating word
	// densities worse than the FPR at the average density. 1.3× extra bits
	// brings the measured rate back under the classic budget with margin.
	blockedDensityRelief = 1.3
	// batchChunk is the internal two-pass window of the batch kernels; it
	// bounds the stack-resident address arrays while staying large enough
	// to give the prefetcher a full batch of independent lines.
	batchChunk = 128
)

// BlockedBitsFor returns the blocked geometry for n expected elements at
// false-positive budget p: the classic multi-hash optimum
// m = n·ln(1/p)/ln²2 bits inflated by blockedDensityRelief, rounded UP to
// a whole number of 512-bit blocks and never less than one block (covering
// n = 0 and tiny n, where naive sizing would underflow to a sub-block
// array). At the paper's 5% budget this is ~8.1 bits per key — well under
// half of the one-hash flat filter's m = n/p — because the blocked filter
// checks k bit positions per probe while still touching a single cache
// line.
func BlockedBitsFor(n int, p float64) uint64 {
	if n < 1 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = DefaultFPR
	}
	m := uint64(math.Ceil(blockedDensityRelief * float64(n) * math.Log(1/p) / (math.Ln2 * math.Ln2)))
	return (m + BlockBits - 1) / BlockBits * BlockBits
}

// BlockedKFor returns the probe count for a filter of nbits total bits
// holding n expected elements: the classic optimum k = ln2 · bits/key at
// the pre-relief density (the relief bits lower the fill ratio, they do
// not buy extra probes), clamped to [1, MaxBlockedK]. n < 1 is treated
// as 1.
func BlockedKFor(n int, nbits uint64) uint32 {
	if n < 1 {
		n = 1
	}
	k := int(math.Round(math.Ln2 * float64(nbits) / (blockedDensityRelief * float64(n))))
	if k < 1 {
		k = 1
	}
	if k > MaxBlockedK {
		k = MaxBlockedK
	}
	return uint32(k)
}

// Blocked is a cache-line-blocked Bloom filter over precomputed key hashes.
// The zero value is not usable; construct with NewBlocked or
// NewBlockedWithGeometry.
type Blocked struct {
	words   []uint64 // nblocks * blockWords
	nblocks uint64
	k       uint32
	seed    uint64
	n       int // inserted element count (approximate under merge)

	// sink keeps the batch kernels' warming loads observable so the
	// compiler cannot delete them.
	sink uint64
}

// NewBlocked creates a blocked filter sized for n expected elements at
// false-positive budget p with hash seed 0.
func NewBlocked(n int, p float64) *Blocked {
	nbits := BlockedBitsFor(n, p)
	return NewBlockedWithGeometry(nbits, BlockedKFor(n, nbits), 0)
}

// NewBlockedWithGeometry creates a blocked filter with an explicit
// geometry. nbits is rounded up to a whole number of blocks (minimum one);
// k is clamped to [1, MaxBlockedK]. Filters built with equal (nbits, k,
// seed) are intersection/union compatible.
func NewBlockedWithGeometry(nbits uint64, k uint32, seed uint64) *Blocked {
	if nbits < BlockBits {
		nbits = BlockBits
	}
	nblocks := (nbits + BlockBits - 1) / BlockBits
	if k < 1 {
		k = 1
	}
	if k > MaxBlockedK {
		k = MaxBlockedK
	}
	return &Blocked{
		words:   make([]uint64, nblocks*blockWords),
		nblocks: nblocks,
		k:       k,
		seed:    seed,
	}
}

// blockBase returns the index of the block's first word for a key hash:
// a multiply-shift range reduction of the high 32 bits, monotone in them.
func (f *Blocked) blockBase(h uint64) uint64 {
	return (((h >> 32) * f.nblocks) >> 32) * blockWords
}

// bitHash returns the remixed hash whose low bits select the in-block
// word and in-word bit positions.
func (f *Blocked) bitHash(h uint64) uint64 {
	return types.Mix64(h, f.seed^blockedSalt)
}

// blockedMask decodes a remixed bit hash into the key's in-block word
// offset (the low 3 bits) and the mask of its k bits within that word
// (6-bit chunks of the remaining hash). Every representation of a key —
// direct insertion, batch insertion, Partial stripes — funnels through
// this one derivation, which is what makes striped merge bit-exact.
func blockedMask(g uint64, k uint32) (word uint64, mask uint64) {
	word = g & (blockWords - 1)
	g >>= 3
	for i := uint32(0); i < k; i++ {
		mask |= 1 << (g & 63)
		g >>= 6
	}
	return word, mask
}

// mask4 is blockedMask's k = 4 bit mask, hand-unrolled. k = 4 is what
// BlockedKFor picks at the paper's 5% budget regardless of n, so the
// kernels special-case it: the generic helper's variable-count loop keeps
// it from inlining, and a per-lane function call costs more than the mask
// arithmetic itself.
func mask4(g uint64) uint64 {
	g >>= 3
	return 1<<(g&63) | 1<<(g>>6&63) | 1<<(g>>12&63) | 1<<(g>>18&63)
}

// AddHash inserts a key by its precomputed hash (types.Hash64 of the
// canonical key encoding with seed 0).
func (f *Blocked) AddHash(h uint64) {
	f.setHash(h)
	f.n++
}

// setHash sets the key's bits without counting an insertion; Partial's
// merge replays through it and accounts insertions separately.
func (f *Blocked) setHash(h uint64) {
	w, mask := blockedMask(f.bitHash(h), f.k)
	f.words[f.blockBase(h)+w] |= mask
}

// Add inserts a key encoding.
func (f *Blocked) Add(key []byte) { f.AddHash(types.Hash64(key, 0)) }

// ProbeHash reports whether a key with the given precomputed hash may be
// present: one word load, one mask compare.
func (f *Blocked) ProbeHash(h uint64) bool {
	g := f.bitHash(h)
	var mask uint64
	if f.k == 4 {
		mask = mask4(g)
	} else {
		_, mask = blockedMask(g, f.k)
	}
	return f.words[f.blockBase(h)+(g&(blockWords-1))]&mask == mask
}

// Contains reports whether the key may be present.
func (f *Blocked) Contains(key []byte) bool { return f.ProbeHash(types.Hash64(key, 0)) }

// AddHashBatch inserts a batch of precomputed hashes. It runs two passes
// per chunk: the first computes every lane's word address and remixed bit
// hash and touches the word (warming the line for the coming
// read-modify-write), the second ORs in the masks — the independent loads
// of pass one overlap in the memory system instead of serializing behind
// each insert.
func (f *Blocked) AddHashBatch(hashes []uint64) {
	var idx [batchChunk]uint64
	var mk [batchChunk]uint64
	for len(hashes) > 0 {
		c := len(hashes)
		if c > batchChunk {
			c = batchChunk
		}
		var warm uint64
		if f.k == 4 {
			for j := 0; j < c; j++ {
				h := hashes[j]
				gg := f.bitHash(h)
				w := f.blockBase(h) + (gg & (blockWords - 1))
				idx[j] = w
				mk[j] = mask4(gg)
				warm ^= f.words[w]
			}
		} else {
			for j := 0; j < c; j++ {
				h := hashes[j]
				gg := f.bitHash(h)
				w := f.blockBase(h) + (gg & (blockWords - 1))
				idx[j] = w
				_, mk[j] = blockedMask(gg, f.k)
				warm ^= f.words[w]
			}
		}
		f.sink ^= warm
		for j := 0; j < c; j++ {
			f.words[idx[j]] |= mk[j]
		}
		f.n += c
		hashes = hashes[c:]
	}
}

// ProbeHashBatch narrows a selection vector to the lanes whose hashes may
// be present. hashes is lane-indexed (hashes[i] belongs to lane i); sel
// lists the live lanes in order. Survivors are appended to out — the
// caller owns out and passes it with length 0 — and out is returned. sel
// and out must not alias unless they are the very same slice narrowed in
// place. It runs two passes per chunk: pass one computes each lane's
// remixed hash and bit mask while loading its single filter word — the
// mask arithmetic fills the ALU slots left idle by the overlapping loads —
// and pass two is a pure compare-and-append over the staged words.
func (f *Blocked) ProbeHashBatch(hashes []uint64, sel []int32, out []int32) []int32 {
	var mk [batchChunk]uint64
	var wv [batchChunk]uint64
	k := f.k
	for start := 0; start < len(sel); start += batchChunk {
		c := len(sel) - start
		if c > batchChunk {
			c = batchChunk
		}
		if k == 4 {
			for j := 0; j < c; j++ {
				h := hashes[sel[start+j]]
				g := f.bitHash(h)
				wv[j] = f.words[f.blockBase(h)+(g&(blockWords-1))]
				mk[j] = mask4(g)
			}
		} else {
			for j := 0; j < c; j++ {
				h := hashes[sel[start+j]]
				w, mask := blockedMask(f.bitHash(h), k)
				wv[j] = f.words[f.blockBase(h)+w]
				mk[j] = mask
			}
		}
		for j := 0; j < c; j++ {
			if m := mk[j]; wv[j]&m == m {
				out = append(out, sel[start+j])
			}
		}
	}
	return out
}

// Len returns the number of insertions performed (after IntersectWith the
// count is the minimum of the operands', an upper bound on the true size).
func (f *Blocked) Len() int { return f.n }

// NumBits returns the filter's total bit length (always whole blocks).
func (f *Blocked) NumBits() uint64 { return f.nblocks * BlockBits }

// K returns the per-key probe count.
func (f *Blocked) K() uint32 { return f.k }

// SizeBytes returns the bit-array footprint (and shipping cost).
func (f *Blocked) SizeBytes() int { return len(f.words) * 8 }

// Compatible reports whether two blocked filters can be merged bitwise:
// same block count, probe count, and seed.
func (f *Blocked) Compatible(other *Blocked) bool {
	return other != nil && f.nblocks == other.nblocks && f.k == other.k && f.seed == other.seed
}

// IntersectWith ANDs other into f, narrowing f to keys present in both.
func (f *Blocked) IntersectWith(other *Blocked) error {
	if !f.Compatible(other) {
		return fmt.Errorf("bloom: cannot intersect incompatible blocked filters (%d/%d blocks, k %d/%d, seeds %d/%d)",
			f.nblocks, other.nblocks, f.k, other.k, f.seed, other.seed)
	}
	for i := range f.words {
		f.words[i] &= other.words[i]
	}
	if other.n < f.n {
		f.n = other.n
	}
	return nil
}

// UnionWith ORs other into f, widening f to keys present in either.
func (f *Blocked) UnionWith(other *Blocked) error {
	if !f.Compatible(other) {
		return fmt.Errorf("bloom: cannot union incompatible blocked filters (%d/%d blocks, k %d/%d, seeds %d/%d)",
			f.nblocks, other.nblocks, f.k, other.k, f.seed, other.seed)
	}
	for i := range f.words {
		f.words[i] |= other.words[i]
	}
	f.n += other.n
	return nil
}

// Clone returns an independent copy of the filter.
func (f *Blocked) Clone() *Blocked {
	words := make([]uint64, len(f.words))
	copy(words, f.words)
	return &Blocked{words: words, nblocks: f.nblocks, k: f.k, seed: f.seed, n: f.n}
}

// FillRatio returns the fraction of set bits.
func (f *Blocked) FillRatio() float64 {
	var set int
	for _, w := range f.words {
		set += popcount(w)
	}
	return float64(set) / float64(f.nblocks*BlockBits)
}

// Marshal serializes the filter for shipping across the simulated network.
func (f *Blocked) Marshal() []byte {
	out := make([]byte, 0, 32+len(f.words)*8)
	out = appendU64(out, f.nblocks)
	out = appendU64(out, uint64(f.k))
	out = appendU64(out, f.seed)
	out = appendU64(out, uint64(f.n))
	for _, w := range f.words {
		out = appendU64(out, w)
	}
	return out
}

// UnmarshalBlocked reconstructs a filter produced by (*Blocked).Marshal.
func UnmarshalBlocked(data []byte) (*Blocked, error) {
	if len(data) < 32 || (len(data)-32)%8 != 0 {
		return nil, fmt.Errorf("bloom: malformed blocked filter payload (%d bytes)", len(data))
	}
	f := &Blocked{
		nblocks: readU64(data[0:]),
		k:       uint32(readU64(data[8:])),
		seed:    readU64(data[16:]),
		n:       int(readU64(data[24:])),
	}
	nwords := (len(data) - 32) / 8
	if f.nblocks == 0 || f.k == 0 || f.k > MaxBlockedK || uint64(nwords) != f.nblocks*blockWords {
		return nil, fmt.Errorf("bloom: blocked payload has %d words for %d blocks (k=%d)", nwords, f.nblocks, f.k)
	}
	f.words = make([]uint64, nwords)
	for i := range f.words {
		f.words[i] = readU64(data[32+i*8:])
	}
	return f, nil
}

// Package bloom implements the Bloom filter used for AIP sets.
//
// Following the paper's implementation (§VI, "our Bloom filters use one hash
// function and are sized for a 5% false positive rate"), the default filter
// uses a single hash function with m = n/ln(1/(1-p)) bits. Filters of the
// same length built with the same hash seed can be merged by bitwise
// intersection, which the Feed-Forward algorithm uses to combine AIP sets
// over the same key (§IV-A).
package bloom

import (
	"fmt"
	"math"

	"repro/internal/types"
)

// DefaultFPR is the paper's target false-positive rate.
const DefaultFPR = 0.05

// Filter is a single-hash Bloom filter over canonical key encodings.
type Filter struct {
	bits  []uint64
	nbits uint64
	seed  uint64
	n     int // inserted element count (approximate under merge)
}

// BitsFor returns the number of bits needed for n expected elements at
// false-positive rate p with a single hash function: the FPR of a one-hash
// filter with n inserts is 1-(1-1/m)^n ≈ n/m, so m = n/p.
func BitsFor(n int, p float64) uint64 {
	if n < 1 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = DefaultFPR
	}
	m := uint64(math.Ceil(float64(n) / p))
	if m < 64 {
		m = 64
	}
	return m
}

// New creates a filter sized for n expected elements at false-positive
// rate p, using hash seed 0. Filters with equal sizing and seed are
// intersect-compatible.
func New(n int, p float64) *Filter {
	return NewSeeded(n, p, 0)
}

// NewSeeded creates a filter with an explicit hash seed.
func NewSeeded(n int, p float64, seed uint64) *Filter {
	return NewWithBits(BitsFor(n, p), seed)
}

// NewWithBits creates a filter with an explicit bit length; filters built
// with equal nbits and seed are intersection/union compatible.
func NewWithBits(nbits, seed uint64) *Filter {
	if nbits < 64 {
		nbits = 64
	}
	return &Filter{
		bits:  make([]uint64, (nbits+63)/64),
		nbits: nbits,
		seed:  seed,
	}
}

// pos derives the filter's bit position from a precomputed key hash. The
// base hash (types.Hash64 of the canonical key encoding, seed 0) is computed
// once per tuple by the executor; filters with different seeds remix it
// rather than rehashing the key bytes.
func (f *Filter) pos(h uint64) uint64 {
	return types.Mix64(h, f.seed) % f.nbits
}

// AddHash inserts a key by its precomputed hash (types.Hash64 of the
// canonical key encoding with seed 0): the hash-once fast path used by the
// AIP-set builders.
func (f *Filter) AddHash(h uint64) {
	pos := f.pos(h)
	f.bits[pos>>6] |= 1 << (pos & 63)
	f.n++
}

// Add inserts a key encoding into the filter.
func (f *Filter) Add(key []byte) { f.AddHash(types.Hash64(key, 0)) }

// ProbeHash reports whether a key with the given precomputed hash may be in
// the filter: the hash-once fast path probed per tuple by the executor.
func (f *Filter) ProbeHash(h uint64) bool {
	pos := f.pos(h)
	return f.bits[pos>>6]&(1<<(pos&63)) != 0
}

// Contains reports whether the key may be in the filter. False positives
// occur at roughly the configured rate; false negatives never occur.
func (f *Filter) Contains(key []byte) bool { return f.ProbeHash(types.Hash64(key, 0)) }

// Len returns the number of insertions performed (after IntersectWith the
// count is the minimum of the operands', an upper bound on the true size).
func (f *Filter) Len() int { return f.n }

// NumBits returns the filter's bit-array length.
func (f *Filter) NumBits() uint64 { return f.nbits }

// SizeBytes returns the memory footprint of the bit array, which is also
// the number of bytes shipped when the filter crosses the simulated network
// (the paper's distributed cost model charges exactly these bytes).
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// Compatible reports whether two filters can be merged bitwise: same
// length and same hash seed (§IV-A: "they can be merged via bitwise
// intersection if they are of the same length and based on the same hash
// function").
func (f *Filter) Compatible(other *Filter) bool {
	return other != nil && f.nbits == other.nbits && f.seed == other.seed
}

// IntersectWith ANDs other into f, narrowing f to keys present in both.
// It returns an error when the filters are not compatible.
func (f *Filter) IntersectWith(other *Filter) error {
	if !f.Compatible(other) {
		return fmt.Errorf("bloom: cannot intersect incompatible filters (%d/%d bits, seeds %d/%d)",
			f.nbits, other.nbits, f.seed, other.seed)
	}
	for i := range f.bits {
		f.bits[i] &= other.bits[i]
	}
	if other.n < f.n {
		f.n = other.n
	}
	return nil
}

// UnionWith ORs other into f, widening f to keys present in either. Used
// when multiple producers contribute partitions of the same logical result.
func (f *Filter) UnionWith(other *Filter) error {
	if !f.Compatible(other) {
		return fmt.Errorf("bloom: cannot union incompatible filters (%d/%d bits, seeds %d/%d)",
			f.nbits, other.nbits, f.seed, other.seed)
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.n += other.n
	return nil
}

// Clone returns an independent copy of the filter.
func (f *Filter) Clone() *Filter {
	bits := make([]uint64, len(f.bits))
	copy(bits, f.bits)
	return &Filter{bits: bits, nbits: f.nbits, seed: f.seed, n: f.n}
}

// FillRatio returns the fraction of set bits, a diagnostic for observed
// false-positive rate (FPR ≈ fill ratio for a one-hash filter).
func (f *Filter) FillRatio() float64 {
	var set int
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(f.nbits)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Marshal serializes the filter for shipping across the simulated network.
func (f *Filter) Marshal() []byte {
	out := make([]byte, 0, 24+len(f.bits)*8)
	out = appendU64(out, f.nbits)
	out = appendU64(out, f.seed)
	out = appendU64(out, uint64(f.n))
	for _, w := range f.bits {
		out = appendU64(out, w)
	}
	return out
}

// Unmarshal reconstructs a filter produced by Marshal.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < 24 || (len(data)-24)%8 != 0 {
		return nil, fmt.Errorf("bloom: malformed filter payload (%d bytes)", len(data))
	}
	f := &Filter{
		nbits: readU64(data[0:]),
		seed:  readU64(data[8:]),
		n:     int(readU64(data[16:])),
	}
	nwords := (len(data) - 24) / 8
	if uint64(nwords) != (f.nbits+63)/64 {
		return nil, fmt.Errorf("bloom: payload has %d words, want %d", nwords, (f.nbits+63)/64)
	}
	f.bits = make([]uint64, nwords)
	for i := range f.bits {
		f.bits[i] = readU64(data[24+i*8:])
	}
	return f, nil
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func readU64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

package bloom

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 0.05)
	for i := 0; i < 1000; i++ {
		f.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !f.Contains([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
	if f.Len() != 1000 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestFalsePositiveRateNear5Percent(t *testing.T) {
	const n = 20000
	f := New(n, 0.05)
	for i := 0; i < n; i++ {
		f.Add([]byte(fmt.Sprintf("in-%d", i)))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.Contains([]byte(fmt.Sprintf("out-%d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// One-hash filter at m = n/p: FPR ≈ 1-e^(-n/m) ≈ 4.9%. Allow slack.
	if rate > 0.08 {
		t.Fatalf("observed FPR %.3f, want ≈0.05", rate)
	}
	if rate < 0.01 {
		t.Fatalf("observed FPR %.3f suspiciously low — sizing wrong?", rate)
	}
	if fill := f.FillRatio(); math.Abs(fill-rate) > 0.02 {
		t.Fatalf("fill ratio %.3f should approximate FPR %.3f for one-hash filter", fill, rate)
	}
}

func TestBitsFor(t *testing.T) {
	if BitsFor(1000, 0.05) != 20000 {
		t.Fatalf("BitsFor(1000, 0.05) = %d, want 20000", BitsFor(1000, 0.05))
	}
	if BitsFor(0, 0.05) < 64 {
		t.Fatal("minimum size must be at least 64 bits")
	}
	if BitsFor(100, 0) != BitsFor(100, DefaultFPR) {
		t.Fatal("invalid p should fall back to the default")
	}
}

func TestIntersect(t *testing.T) {
	a := New(1000, 0.05)
	b := New(1000, 0.05)
	for i := 0; i < 100; i++ {
		a.Add([]byte(fmt.Sprintf("both-%d", i)))
		b.Add([]byte(fmt.Sprintf("both-%d", i)))
		a.Add([]byte(fmt.Sprintf("a-%d", i)))
		b.Add([]byte(fmt.Sprintf("b-%d", i)))
	}
	if err := a.IntersectWith(b); err != nil {
		t.Fatal(err)
	}
	// Intersection keeps everything in both (no false negatives).
	for i := 0; i < 100; i++ {
		if !a.Contains([]byte(fmt.Sprintf("both-%d", i))) {
			t.Fatalf("intersection lost shared key both-%d", i)
		}
	}
	// Most a-only keys must be gone (they were never in b).
	gone := 0
	for i := 0; i < 100; i++ {
		if !a.Contains([]byte(fmt.Sprintf("a-%d", i))) {
			gone++
		}
	}
	if gone < 80 {
		t.Fatalf("intersection retained %d/100 a-only keys", 100-gone)
	}
}

func TestIntersectIncompatible(t *testing.T) {
	a := New(100, 0.05)
	b := New(100000, 0.05)
	if err := a.IntersectWith(b); err == nil {
		t.Fatal("expected incompatibility error for different sizes")
	}
	c := NewSeeded(100, 0.05, 7)
	if err := a.IntersectWith(c); err == nil {
		t.Fatal("expected incompatibility error for different seeds")
	}
	if a.Compatible(nil) {
		t.Fatal("nil is not compatible")
	}
}

func TestUnion(t *testing.T) {
	a := New(1000, 0.05)
	b := New(1000, 0.05)
	a.Add([]byte("only-a"))
	b.Add([]byte("only-b"))
	if err := a.UnionWith(b); err != nil {
		t.Fatal(err)
	}
	if !a.Contains([]byte("only-a")) || !a.Contains([]byte("only-b")) {
		t.Fatal("union must contain both sides")
	}
	if err := a.UnionWith(New(5000000, 0.05)); err == nil {
		t.Fatal("expected union incompatibility error")
	}
}

func TestClone(t *testing.T) {
	a := New(100, 0.05)
	a.Add([]byte("x"))
	b := a.Clone()
	b.Add([]byte("y"))
	if a.Contains([]byte("y")) && !a.Contains([]byte("x")) {
		t.Fatal("clone aliases original")
	}
	if !b.Contains([]byte("x")) {
		t.Fatal("clone must keep contents")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	a := NewSeeded(500, 0.05, 3)
	for i := 0; i < 200; i++ {
		a.Add([]byte(fmt.Sprintf("k%d", i)))
	}
	data := a.Marshal()
	if len(data) != 24+len(a.bits)*8 {
		t.Fatalf("marshal length %d", len(data))
	}
	b, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumBits() != a.NumBits() || b.Len() != a.Len() {
		t.Fatal("metadata lost in round trip")
	}
	for i := 0; i < 200; i++ {
		if !b.Contains([]byte(fmt.Sprintf("k%d", i))) {
			t.Fatalf("round trip lost k%d", i)
		}
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil payload must error")
	}
	if _, err := Unmarshal(make([]byte, 25)); err == nil {
		t.Fatal("misaligned payload must error")
	}
	// Valid length but inconsistent header.
	a := New(100, 0.05)
	data := a.Marshal()
	data[0] = 0x01 // corrupt nbits so the word count disagrees
	if _, err := Unmarshal(data); err == nil {
		t.Fatal("inconsistent header must error")
	}
}

func TestSizeBytes(t *testing.T) {
	f := New(1000, 0.05)
	want := int((BitsFor(1000, 0.05) + 63) / 64 * 8)
	if f.SizeBytes() != want {
		t.Fatalf("SizeBytes = %d, want %d", f.SizeBytes(), want)
	}
}

func TestQuickNoFalseNegativesProperty(t *testing.T) {
	f := func(keys [][]byte) bool {
		bf := New(len(keys)+1, 0.05)
		for _, k := range keys {
			bf.Add(k)
		}
		for _, k := range keys {
			if !bf.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectionPreservesSharedKeys(t *testing.T) {
	f := func(shared [][]byte) bool {
		a := NewWithBits(4096, 0)
		b := NewWithBits(4096, 0)
		for _, k := range shared {
			a.Add(k)
			b.Add(k)
		}
		if err := a.IntersectWith(b); err != nil {
			return false
		}
		for _, k := range shared {
			if !a.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

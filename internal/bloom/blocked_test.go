package bloom

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func blockedForKeys(t *testing.T, hashes []uint64) *Blocked {
	t.Helper()
	f := NewBlocked(len(hashes), DefaultFPR)
	for _, h := range hashes {
		f.AddHash(h)
	}
	return f
}

func TestBlockedNoFalseNegatives(t *testing.T) {
	hashes := make([]uint64, 5000)
	for i := range hashes {
		hashes[i] = splitmix64(uint64(i))
	}
	f := blockedForKeys(t, hashes)
	for i, h := range hashes {
		if !f.ProbeHash(h) {
			t.Fatalf("false negative for key %d", i)
		}
	}
	sel := make([]int32, len(hashes))
	for i := range sel {
		sel[i] = int32(i)
	}
	out := f.ProbeHashBatch(hashes, sel, nil)
	if len(out) != len(sel) {
		t.Fatalf("batch probe dropped present keys: %d of %d survived", len(out), len(sel))
	}
}

// TestBlockedFPRWithinBudget checks the sized geometry against its
// false-positive budget across populations and budgets.
func TestBlockedFPRWithinBudget(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{
		{10_000, 0.05},
		{100_000, 0.05},
		{100_000, 0.10},
		{50_000, 0.01},
	} {
		t.Run(fmt.Sprintf("n=%d_p=%v", tc.n, tc.p), func(t *testing.T) {
			f := NewBlocked(tc.n, tc.p)
			for i := 0; i < tc.n; i++ {
				f.AddHash(splitmix64(uint64(i)))
			}
			const probes = 200_000
			fp := 0
			for i := 0; i < probes; i++ {
				if f.ProbeHash(splitmix64(uint64(tc.n + i))) {
					fp++
				}
			}
			got := float64(fp) / probes
			// Allow 1.3× the budget for sampling noise; the sizing itself
			// targets comfortably under the budget.
			if got > 1.3*tc.p {
				t.Fatalf("measured FPR %.4f exceeds budget %.4f", got, tc.p)
			}
		})
	}
}

// TestBlockedFPRNotWorseThanFlatAtEqualBits is the property the blocked
// layout ships on: at the SAME total bit budget, confining a key's bits to
// one cache line must not cost more than 1.5× the flat filter's
// false-positive rate. (In practice the blocked filter is far more
// accurate bit for bit: it spends k bit positions per key where the flat
// filter's single-hash design spends one.)
func TestBlockedFPRNotWorseThanFlatAtEqualBits(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		n := 5_000 + rng.Intn(50_000)
		// Sweep budgets; both filters get the FLAT geometry's bit count.
		p := []float64{0.01, 0.05, 0.1}[trial%3]
		bits := BitsFor(n, p)
		flat := NewWithBits(bits, 0)
		blocked := NewBlockedWithGeometry(bits, BlockedKFor(n, bits), 0)
		base := rng.Uint64()
		for i := 0; i < n; i++ {
			h := splitmix64(base + uint64(i))
			flat.AddHash(h)
			blocked.AddHash(h)
		}
		const probes = 100_000
		flatFP, blockedFP := 0, 0
		for i := 0; i < probes; i++ {
			h := splitmix64(base + uint64(n+i))
			if flat.ProbeHash(h) {
				flatFP++
			}
			if blocked.ProbeHash(h) {
				blockedFP++
			}
		}
		// Epsilon absorbs sampling noise when both rates are near zero.
		const eps = 0.002
		if float64(blockedFP) > 1.5*float64(flatFP)+eps*probes {
			t.Fatalf("trial %d (n=%d p=%v bits=%d): blocked FPR %.5f > 1.5x flat FPR %.5f",
				trial, n, p, bits, float64(blockedFP)/probes, float64(flatFP)/probes)
		}
	}
}

// TestBlockedBatchMatchesScalar is the batch-vs-scalar differential: the
// batch kernel must agree with the scalar probe lane for lane, including
// the empty-sel, all-pass, and all-fail edges.
func TestBlockedBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	present := make([]uint64, 20_000)
	for i := range present {
		present[i] = rng.Uint64()
	}
	f := blockedForKeys(t, present)
	empty := NewBlocked(len(present), DefaultFPR)

	check := func(name string, f *Blocked, hashes []uint64, sel []int32) {
		t.Helper()
		var want []int32
		for _, i := range sel {
			if f.ProbeHash(hashes[i]) {
				want = append(want, i)
			}
		}
		got := f.ProbeHashBatch(hashes, sel, nil)
		if len(got) != len(want) {
			t.Fatalf("%s: batch survivors %d, scalar %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: survivor %d: batch lane %d, scalar lane %d", name, i, got[i], want[i])
			}
		}
	}

	// Mixed random stream, random subsets of lanes.
	probes := make([]uint64, 4096)
	for i := range probes {
		if i%2 == 0 {
			probes[i] = present[rng.Intn(len(present))]
		} else {
			probes[i] = rng.Uint64()
		}
	}
	full := make([]int32, len(probes))
	for i := range full {
		full[i] = int32(i)
	}
	check("mixed/full", f, probes, full)
	sub := full[:0:0]
	for _, i := range full {
		if rng.Intn(3) == 0 {
			sub = append(sub, i)
		}
	}
	check("mixed/subset", f, probes, sub)
	check("empty-sel", f, probes, nil)
	check("all-pass", f, present[:4096], full)
	// An empty filter rejects everything: the all-fail edge with no
	// false-positive escape hatch.
	check("all-fail", empty, probes, full)
	if got := empty.ProbeHashBatch(probes, full, nil); len(got) != 0 {
		t.Fatalf("empty filter passed %d lanes", len(got))
	}
	// Odd chunk tails: selections not divisible by the internal window.
	check("tail", f, probes, full[:batchChunk+batchChunk/2+1])
}

// TestAddHashBatchMatchesScalar: batch insertion must produce a
// bit-identical filter to one-at-a-time insertion.
func TestAddHashBatchMatchesScalar(t *testing.T) {
	for _, n := range []int{0, 1, batchChunk - 1, batchChunk, batchChunk + 1, 10_000} {
		hashes := make([]uint64, n)
		for i := range hashes {
			hashes[i] = splitmix64(uint64(i))
		}
		a := NewBlocked(1000, DefaultFPR)
		b := NewBlockedWithGeometry(a.NumBits(), a.K(), 0)
		for _, h := range hashes {
			a.AddHash(h)
		}
		b.AddHashBatch(hashes)
		if !bytes.Equal(a.Marshal(), b.Marshal()) {
			t.Fatalf("n=%d: batch insertion diverged from scalar", n)
		}
	}
}

// TestBlockedVsFlatDifferential: the two layouts disagree on WHICH absent
// keys false-positive, but must agree exactly on present keys (no false
// negatives in either) across a shared insertion stream.
func TestBlockedVsFlatDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 30_000
	flat := New(n, DefaultFPR)
	blocked := NewBlocked(n, DefaultFPR)
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%d-%d", i, rng.Int63()))
		flat.Add(keys[i])
		blocked.Add(keys[i])
	}
	for i, k := range keys {
		if !flat.Contains(k) {
			t.Fatalf("flat false negative at %d", i)
		}
		if !blocked.Contains(k) {
			t.Fatalf("blocked false negative at %d", i)
		}
	}
}

func TestBlockedGeometryEdges(t *testing.T) {
	// n = 0 and tiny n must round up to one whole block, never underflow.
	for _, n := range []int{0, 1, 2, 7} {
		bits := BlockedBitsFor(n, DefaultFPR)
		if bits < BlockBits || bits%BlockBits != 0 {
			t.Fatalf("BlockedBitsFor(%d) = %d: want whole blocks >= %d", n, bits, BlockBits)
		}
		if k := BlockedKFor(n, bits); k < 1 || k > MaxBlockedK {
			t.Fatalf("BlockedKFor(%d, %d) = %d out of [1,%d]", n, bits, k, MaxBlockedK)
		}
	}
	// Degenerate budgets fall back to the default rather than exploding.
	if bits := BlockedBitsFor(100, 0); bits == 0 || bits%BlockBits != 0 {
		t.Fatalf("BlockedBitsFor(100, 0) = %d", bits)
	}
	if bits := BlockedBitsFor(100, 1.5); bits == 0 || bits%BlockBits != 0 {
		t.Fatalf("BlockedBitsFor(100, 1.5) = %d", bits)
	}
	// Geometry constructor normalizes sub-block sizes and out-of-range k.
	f := NewBlockedWithGeometry(1, 0, 0)
	if f.NumBits() != BlockBits || f.K() != 1 {
		t.Fatalf("normalized geometry: bits=%d k=%d", f.NumBits(), f.K())
	}
	f = NewBlockedWithGeometry(BlockBits+1, 99, 0)
	if f.NumBits() != 2*BlockBits || f.K() != MaxBlockedK {
		t.Fatalf("rounded geometry: bits=%d k=%d", f.NumBits(), f.K())
	}
	// A tiny filter stays usable.
	tiny := NewBlocked(0, DefaultFPR)
	tiny.Add([]byte("x"))
	if !tiny.Contains([]byte("x")) {
		t.Fatal("tiny filter lost its only key")
	}
}

func TestBlockedIntersectUnion(t *testing.T) {
	n := 5000
	a := NewBlocked(n, DefaultFPR)
	b := NewBlockedWithGeometry(a.NumBits(), a.K(), 0)
	shared := make([]uint64, 0, n/2)
	for i := 0; i < n; i++ {
		h := splitmix64(uint64(i))
		if i%2 == 0 {
			a.AddHash(h)
			b.AddHash(h)
			shared = append(shared, h)
		} else if i%4 == 1 {
			a.AddHash(h)
		} else {
			b.AddHash(h)
		}
	}
	inter := a.Clone()
	if err := inter.IntersectWith(b); err != nil {
		t.Fatal(err)
	}
	for _, h := range shared {
		if !inter.ProbeHash(h) {
			t.Fatal("intersection lost a shared key")
		}
	}
	uni := a.Clone()
	if err := uni.UnionWith(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !uni.ProbeHash(splitmix64(uint64(i))) {
			t.Fatalf("union lost key %d", i)
		}
	}
	// Incompatible geometries refuse to merge.
	other := NewBlockedWithGeometry(a.NumBits()+BlockBits, a.K(), 0)
	if err := a.Clone().IntersectWith(other); err == nil {
		t.Fatal("intersect across geometries should fail")
	}
	if err := a.Clone().UnionWith(other); err == nil {
		t.Fatal("union across geometries should fail")
	}
}

func TestBlockedMarshalRoundTrip(t *testing.T) {
	f := NewBlocked(1000, DefaultFPR)
	for i := 0; i < 1000; i++ {
		f.AddHash(splitmix64(uint64(i)))
	}
	g, err := UnmarshalBlocked(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Marshal(), g.Marshal()) {
		t.Fatal("round trip diverged")
	}
	if g.Len() != f.Len() || g.K() != f.K() || g.NumBits() != f.NumBits() {
		t.Fatal("round trip lost metadata")
	}
	if _, err := UnmarshalBlocked([]byte("short")); err == nil {
		t.Fatal("malformed payload accepted")
	}
}

// TestPartialMergeExactness: merging per-slot Partials — in both the
// hash-log stage and the striped stage — must produce bit-for-bit the
// filter that direct insertion builds, with slots routed by the hash's top
// bits exactly as the executor's radix partitioning routes tuples.
func TestPartialMergeExactness(t *testing.T) {
	for _, n := range []int{0, 10, 500, 5_000, 200_000} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			nbits := BlockedBitsFor(n, DefaultFPR)
			k := BlockedKFor(n, nbits)
			direct := NewBlockedWithGeometry(nbits, k, 0)
			const P = 8
			slots := make([]*Partial, P)
			for i := range slots {
				slots[i] = NewPartial(nbits, k, 0)
			}
			for i := 0; i < n; i++ {
				h := splitmix64(uint64(i))
				direct.AddHash(h)
				slots[h>>61].AddHash(h)
			}
			merged := NewBlockedWithGeometry(nbits, k, 0)
			var ws int
			for _, s := range slots {
				ws += s.SizeBytes()
				if err := s.MergeInto(merged); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(direct.Marshal(), merged.Marshal()) {
				t.Fatal("striped merge diverged from direct insertion")
			}
			if merged.Len() != direct.Len() {
				t.Fatalf("merged count %d, direct %d", merged.Len(), direct.Len())
			}
			// The working-set claim: striped slots must cost well under
			// P full-geometry copies once the population is partitioned.
			if n >= 5_000 {
				full := P * int(nbits) / 8
				if ws >= full/2 {
					t.Fatalf("P=%d working set %d bytes, full copies %d: striping bought <2x", P, ws, full)
				}
			}
		})
	}
}

// TestPartialLogDoubling drives one slot through the size-doubling log
// stage into stripe conversion and checks bytes accounting at each step.
func TestPartialLogDoubling(t *testing.T) {
	n := 300_000
	nbits := BlockedBitsFor(n, DefaultFPR)
	k := BlockedKFor(n, nbits)
	p := NewPartial(nbits, k, 0)
	if p.SizeBytes() != partialLogInit*8 {
		t.Fatalf("initial working set %d bytes, want %d", p.SizeBytes(), partialLogInit*8)
	}
	last := p.SizeBytes()
	grew := 0
	for i := 0; i < n; i++ {
		p.AddHash(splitmix64(uint64(i)))
		if s := p.SizeBytes(); s != last {
			grew++
			last = s
		}
	}
	if grew == 0 {
		t.Fatal("working set never grew")
	}
	if p.Len() != n {
		t.Fatalf("Len = %d, want %d", p.Len(), n)
	}
	// One slot holding the full population converts to stripes; its
	// footprint must stay bounded by the full geometry plus slack.
	if p.SizeBytes() > int(nbits)/8+int(nbits)/32 {
		t.Fatalf("converted slot costs %d bytes, full geometry is %d", p.SizeBytes(), nbits/8)
	}
	// Duplicate-heavy inserts must not grow the log (it is a set).
	q := NewPartial(nbits, k, 0)
	for i := 0; i < 10_000; i++ {
		q.AddHash(splitmix64(uint64(i % 8)))
	}
	if q.SizeBytes() != partialLogInit*8 {
		t.Fatalf("duplicates grew the log to %d bytes", q.SizeBytes())
	}
	if q.Len() != 10_000 {
		t.Fatalf("insert count %d, want 10000 (duplicates included)", q.Len())
	}
	// The zero hash collides with the log's empty sentinel; it must still
	// be stored and merged exactly.
	z := NewPartial(nbits, k, 0)
	z.AddHash(0)
	dst := NewBlockedWithGeometry(nbits, k, 0)
	if err := z.MergeInto(dst); err != nil {
		t.Fatal(err)
	}
	if !dst.ProbeHash(0) {
		t.Fatal("zero hash lost in log stage")
	}
	// Geometry mismatch is refused.
	if err := z.MergeInto(NewBlockedWithGeometry(nbits+BlockBits, k, 0)); err == nil {
		t.Fatal("merge into mismatched geometry should fail")
	}
}

package bloom

import (
	"testing"
)

// The benchmark population mirrors cmd/sipbench -filterbench: a
// half-present/half-absent probe stream over 1M keys at the paper's 5%
// budget.
const benchN = 1 << 20

func benchHashes() (present, probes []uint64) {
	present = make([]uint64, benchN)
	for i := range present {
		present[i] = splitmix64(uint64(i))
	}
	probes = make([]uint64, benchN)
	for i := range probes {
		if i%2 == 0 {
			probes[i] = present[i/2]
		} else {
			probes[i] = splitmix64(uint64(benchN + i))
		}
	}
	return present, probes
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func BenchmarkFlatProbeScalar(b *testing.B) {
	present, probes := benchHashes()
	f := NewWithBits(BitsFor(benchN, DefaultFPR), 0)
	for _, h := range present {
		f.AddHash(h)
	}
	b.SetBytes(benchN)
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		for _, h := range probes {
			if f.ProbeHash(h) {
				hits++
			}
		}
	}
	sinkInt = hits
}

func BenchmarkBlockedProbeScalar(b *testing.B) {
	present, probes := benchHashes()
	f := NewBlocked(benchN, DefaultFPR)
	f.AddHashBatch(present)
	b.SetBytes(benchN)
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		for _, h := range probes {
			if f.ProbeHash(h) {
				hits++
			}
		}
	}
	sinkInt = hits
}

func BenchmarkBlockedProbeBatch(b *testing.B) {
	present, probes := benchHashes()
	f := NewBlocked(benchN, DefaultFPR)
	f.AddHashBatch(present)
	sel := make([]int32, 4096)
	for i := range sel {
		sel[i] = int32(i)
	}
	out := make([]int32, 0, len(sel))
	b.SetBytes(benchN)
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		for start := 0; start < len(probes); start += len(sel) {
			out = f.ProbeHashBatch(probes[start:start+len(sel)], sel, out[:0])
			hits += len(out)
		}
	}
	sinkInt = hits
}

var sinkInt int

package tpch

import (
	"math"
	"testing"

	"repro/internal/types"
)

func TestDeterminism(t *testing.T) {
	a := Generate(Config{ScaleFactor: 0.002})
	b := Generate(Config{ScaleFactor: 0.002})
	for _, name := range a.Names() {
		ta, _ := a.Table(name)
		tb, _ := b.Table(name)
		if ta.NumRows() != tb.NumRows() {
			t.Fatalf("%s cardinality differs", name)
		}
		for i := range ta.Rows {
			if ta.Rows[i].String() != tb.Rows[i].String() {
				t.Fatalf("%s row %d differs", name, i)
			}
		}
	}
}

func TestSeedChangesData(t *testing.T) {
	a := Generate(Config{ScaleFactor: 0.002, Seed: 1})
	b := Generate(Config{ScaleFactor: 0.002, Seed: 2})
	sa, _ := a.Table("supplier")
	sb, _ := b.Table("supplier")
	same := true
	for i := range sa.Rows {
		if sa.Rows[i].String() != sb.Rows[i].String() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestCardinalities(t *testing.T) {
	c := Generate(Config{ScaleFactor: 0.01})
	want := map[string]int64{
		"region":   5,
		"nation":   25,
		"supplier": 100,
		"part":     2000,
		"partsupp": 8000,
		"customer": 1500,
		"orders":   15000,
	}
	for name, n := range want {
		tbl, err := c.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if tbl.NumRows() != n {
			t.Errorf("%s rows = %d, want %d", name, tbl.NumRows(), n)
		}
	}
	li, _ := c.Table("lineitem")
	// 1-7 lines per order, mean ≈ 4.
	if li.NumRows() < 45000 || li.NumRows() > 75000 {
		t.Errorf("lineitem rows = %d, want ≈60000", li.NumRows())
	}
}

func TestReferentialIntegrity(t *testing.T) {
	c := Generate(Config{ScaleFactor: 0.005})
	for _, name := range c.Names() {
		tbl, _ := c.Table(name)
		for _, fk := range tbl.ForeignKeys {
			ref, err := c.Table(fk.RefTable)
			if err != nil {
				t.Fatalf("%s FK references missing table %s", name, fk.RefTable)
			}
			// Build the referenced key set.
			refIdx := ref.ColumnIndex(fk.RefCols[0])
			keys := map[int64]bool{}
			for _, r := range ref.Rows {
				v, _ := r[refIdx].AsInt()
				keys[v] = true
			}
			colIdx := tbl.ColumnIndex(fk.Cols[0])
			for i, r := range tbl.Rows {
				v, _ := r[colIdx].AsInt()
				if !keys[v] {
					t.Fatalf("%s row %d: %s=%d has no match in %s.%s",
						name, i, fk.Cols[0], v, fk.RefTable, fk.RefCols[0])
				}
			}
		}
	}
}

func TestPrimaryKeyUniqueness(t *testing.T) {
	c := Generate(Config{ScaleFactor: 0.005})
	for _, name := range []string{"part", "supplier", "customer", "orders", "nation", "region"} {
		tbl, _ := c.Table(name)
		idx := tbl.ColumnIndex(tbl.PrimaryKey[0])
		seen := map[int64]bool{}
		for _, r := range tbl.Rows {
			v, _ := r[idx].AsInt()
			if seen[v] {
				t.Fatalf("%s duplicate key %d", name, v)
			}
			seen[v] = true
		}
	}
	// partsupp composite key.
	ps, _ := c.Table("partsupp")
	seen := map[[2]int64]bool{}
	for _, r := range ps.Rows {
		p, _ := r[0].AsInt()
		s, _ := r[1].AsInt()
		k := [2]int64{p, s}
		if seen[k] {
			t.Fatalf("partsupp duplicate (%d,%d)", p, s)
		}
		seen[k] = true
	}
}

func TestPartsuppFourPerPart(t *testing.T) {
	c := Generate(Config{ScaleFactor: 0.01})
	ps, _ := c.Table("partsupp")
	counts := map[int64]int{}
	for _, r := range ps.Rows {
		p, _ := r[0].AsInt()
		counts[p]++
	}
	for p, n := range counts {
		if n != 4 {
			t.Fatalf("part %d has %d suppliers, want 4", p, n)
		}
	}
}

func TestValueDomains(t *testing.T) {
	c := Generate(Config{ScaleFactor: 0.005})
	part, _ := c.Table("part")
	sizeIdx := part.ColumnIndex("p_size")
	brandIdx := part.ColumnIndex("p_brand")
	for _, r := range part.Rows {
		size, _ := r[sizeIdx].AsInt()
		if size < 1 || size > 50 {
			t.Fatalf("p_size out of domain: %d", size)
		}
		b := r[brandIdx].S
		if len(b) != 8 || b[:6] != "Brand#" {
			t.Fatalf("p_brand malformed: %q", b)
		}
	}
	li, _ := c.Table("lineitem")
	qIdx := li.ColumnIndex("l_quantity")
	dIdx := li.ColumnIndex("l_discount")
	for _, r := range li.Rows {
		q, _ := r[qIdx].AsFloat()
		if q < 1 || q > 50 {
			t.Fatalf("l_quantity out of domain: %v", q)
		}
		d, _ := r[dIdx].AsFloat()
		if d < 0 || d > 0.10001 {
			t.Fatalf("l_discount out of domain: %v", d)
		}
	}
	orders, _ := c.Table("orders")
	oIdx := orders.ColumnIndex("o_orderdate")
	for _, r := range orders.Rows {
		if r[oIdx].K != types.KindDate {
			t.Fatal("o_orderdate not a date")
		}
		if r[oIdx].I < dateLo || r[oIdx].I > dateHi {
			t.Fatalf("o_orderdate out of range: %v", r[oIdx])
		}
	}
}

func TestReceiptAfterOrder(t *testing.T) {
	c := Generate(Config{ScaleFactor: 0.005})
	orders, _ := c.Table("orders")
	odates := map[int64]int64{}
	for _, r := range orders.Rows {
		k, _ := r[0].AsInt()
		odates[k] = r[2].I
	}
	li, _ := c.Table("lineitem")
	for _, r := range li.Rows {
		ok, _ := r[0].AsInt()
		if r[6].I <= odates[ok] {
			t.Fatalf("l_receiptdate %d not after o_orderdate %d", r[6].I, odates[ok])
		}
	}
}

func TestNationsMatchTPCH(t *testing.T) {
	c := Generate(Config{ScaleFactor: 0.005})
	nation, _ := c.Table("nation")
	if nation.NumRows() != 25 {
		t.Fatal("must have 25 nations")
	}
	byName := map[string]int64{}
	for _, r := range nation.Rows {
		byName[r[1].S] = r[2].I
	}
	// Spot-check assignments the workload depends on.
	if byName["FRANCE"] != 3 {
		t.Fatal("FRANCE must be in EUROPE (3)")
	}
	if byName["ALGERIA"] != 0 {
		t.Fatal("ALGERIA must be in AFRICA (0)")
	}
	if byName["IRAN"] != 4 {
		t.Fatal("IRAN must be in MIDDLE EAST (4)")
	}
}

// TestZipfSkewConcentration verifies that the skewed generator concentrates
// lineitem foreign keys: the most popular part must receive many more
// lineitems than the uniform generator's most popular part.
func TestZipfSkewConcentration(t *testing.T) {
	count := func(cfg Config) (max int, gini float64) {
		c := Generate(cfg)
		li, _ := c.Table("lineitem")
		counts := map[int64]int{}
		for _, r := range li.Rows {
			p, _ := r[1].AsInt()
			counts[p]++
		}
		var total, sq float64
		for _, n := range counts {
			if n > max {
				max = n
			}
			total += float64(n)
			sq += float64(n) * float64(n)
		}
		// Herfindahl-style concentration index.
		return max, sq / (total * total)
	}
	uMax, uConc := count(Config{ScaleFactor: 0.01})
	sMax, sConc := count(Config{ScaleFactor: 0.01, Skew: true, Z: 0.5})
	if sMax <= uMax {
		t.Fatalf("skewed max %d should exceed uniform max %d", sMax, uMax)
	}
	if sConc <= uConc {
		t.Fatalf("skewed concentration %g should exceed uniform %g", sConc, uConc)
	}
}

func TestZipfSampler(t *testing.T) {
	z := newZipf(100, 0.5)
	r := newRNG(42)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.draw(r)]++
	}
	// Rank 0 must dominate rank 99 by roughly (100/1)^0.5 = 10x.
	ratio := float64(counts[0]) / math.Max(1, float64(counts[99]))
	if ratio < 5 || ratio > 20 {
		t.Fatalf("zipf(0.5) rank ratio = %.1f, want ≈10", ratio)
	}
	// Degenerate sizes.
	z1 := newZipf(0, 0.5)
	if z1.draw(r) != 0 {
		t.Fatal("degenerate zipf must return 0")
	}
}

func TestPermutedKeyBijective(t *testing.T) {
	const n = 997
	seen := map[int64]bool{}
	for rank := int64(0); rank < n; rank++ {
		k := permutedKey(rank, n)
		if k < 1 || k > n {
			t.Fatalf("key %d out of [1,%d]", k, n)
		}
		if seen[k] {
			t.Fatalf("permutation collision at rank %d", rank)
		}
		seen[k] = true
	}
	if permutedKey(0, 1) != 1 {
		t.Fatal("n=1 must map to 1")
	}
}

func TestRNGUniformRange(t *testing.T) {
	r := newRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.rangeInclusive(5, 10)
		if v < 5 || v > 10 {
			t.Fatalf("rangeInclusive out of bounds: %d", v)
		}
	}
	if r.intn(0) != 0 || r.intn(-5) != 0 {
		t.Fatal("intn of non-positive must be 0")
	}
	for i := 0; i < 1000; i++ {
		f := r.float()
		if f < 0 || f >= 1 {
			t.Fatalf("float out of [0,1): %v", f)
		}
	}
}

func TestDefaultConfigs(t *testing.T) {
	if DefaultConfig().ScaleFactor != 0.01 {
		t.Fatal("default SF changed")
	}
	sc := SkewedConfig()
	if !sc.Skew || sc.Z != 0.5 {
		t.Fatal("skewed config wrong")
	}
	// Zero scale factor falls back.
	c := Generate(Config{})
	if _, err := c.Table("lineitem"); err != nil {
		t.Fatal("zero-config generation failed")
	}
}

package tpch

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/types"
)

// Config controls generation.
type Config struct {
	// ScaleFactor scales table cardinalities relative to TPC-H SF 1
	// (supplier 10k, part 200k, orders 1.5M, …). The paper ran at SF 1;
	// this reproduction defaults to much smaller scales (see DESIGN.md §2).
	ScaleFactor float64
	// Skew enables the Zipf-skewed variant standing in for the Microsoft
	// skewed TPC-D generator; Z is the skew factor (the paper used 0.5).
	Skew bool
	Z    float64
	// Seed makes generation deterministic; 0 selects a fixed default.
	Seed uint64
}

// DefaultConfig returns the configuration used by tests and examples:
// SF 0.01, uniform.
func DefaultConfig() Config { return Config{ScaleFactor: 0.01} }

// SkewedConfig returns the Zipf z=0.5 variant of DefaultConfig.
func SkewedConfig() Config { return Config{ScaleFactor: 0.01, Skew: true, Z: 0.5} }

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 0x5349502d32303038 // "SIP-2008"
	}
	return c.Seed
}

func (c Config) scaled(base int64) int64 {
	n := int64(float64(base) * c.ScaleFactor)
	if n < 1 {
		n = 1
	}
	return n
}

// Standard TPC-H nation → region assignment.
var nations = []struct {
	name   string
	region int64
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"ROMANIA", 3}, {"SAUDI ARABIA", 4},
	{"VIETNAM", 2}, {"RUSSIA", 3}, {"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
	{"CHINA", 2},
}

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var (
	typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

	containerSyl1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	containerSyl2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}

	nameWords = []string{
		"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
		"blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
		"chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
		"dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
		"frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
		"hot", "hotpink", "indian", "ivory", "khaki", "lace", "lavender", "lawn",
		"lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
		"midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
		"orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
		"puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
		"sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
		"steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white",
		"yellow",
	}
)

const (
	dateLo = 8035 // 1992-01-01 as days since 1970-01-01
	dateHi = 10440
)

// Generate builds the full catalog for the configuration.
func Generate(cfg Config) *catalog.Catalog {
	if cfg.ScaleFactor <= 0 {
		cfg.ScaleFactor = 0.01
	}
	if cfg.Skew && cfg.Z <= 0 {
		cfg.Z = 0.5
	}
	g := &generator{cfg: cfg, r: newRNG(cfg.seed())}
	c := catalog.New()
	c.Add(g.region())
	c.Add(g.nation())
	c.Add(g.supplier())
	c.Add(g.part())
	c.Add(g.partsupp())
	c.Add(g.customer())
	orders, lineitem := g.ordersAndLineitem()
	c.Add(orders)
	c.Add(lineitem)
	return c
}

type generator struct {
	cfg cfgAlias
	r   *rng

	nSupplier int64
	nPart     int64
	nCustomer int64
	nOrders   int64
}

// cfgAlias exists so the generator struct literal above stays readable.
type cfgAlias = Config

func col(table, name string, k types.Kind) types.Column {
	return types.Column{Table: table, Name: name, Kind: k}
}

func (g *generator) region() *catalog.Table {
	sch := types.NewSchema(
		col("region", "r_regionkey", types.KindInt),
		col("region", "r_name", types.KindString),
		col("region", "r_comment", types.KindString),
	)
	rows := make([]types.Tuple, len(regions))
	for i, name := range regions {
		rows[i] = types.Tuple{types.Int(int64(i)), types.Str(name), types.Str("region " + name)}
	}
	t := &catalog.Table{Name: "region", Schema: sch, Rows: rows, PrimaryKey: []string{"r_regionkey"}}
	t.SetDistinct("r_name", int64(len(regions)))
	return t
}

func (g *generator) nation() *catalog.Table {
	sch := types.NewSchema(
		col("nation", "n_nationkey", types.KindInt),
		col("nation", "n_name", types.KindString),
		col("nation", "n_regionkey", types.KindInt),
	)
	rows := make([]types.Tuple, len(nations))
	for i, n := range nations {
		rows[i] = types.Tuple{types.Int(int64(i)), types.Str(n.name), types.Int(n.region)}
	}
	t := &catalog.Table{
		Name: "nation", Schema: sch, Rows: rows,
		PrimaryKey: []string{"n_nationkey"},
		ForeignKeys: []catalog.ForeignKey{
			{Cols: []string{"n_regionkey"}, RefTable: "region", RefCols: []string{"r_regionkey"}},
		},
	}
	t.SetDistinct("n_name", int64(len(nations)))
	t.SetDistinct("n_regionkey", int64(len(regions)))
	return t
}

func (g *generator) supplier() *catalog.Table {
	g.nSupplier = g.cfg.scaled(10000)
	sch := types.NewSchema(
		col("supplier", "s_suppkey", types.KindInt),
		col("supplier", "s_name", types.KindString),
		col("supplier", "s_address", types.KindString),
		col("supplier", "s_nationkey", types.KindInt),
		col("supplier", "s_nation", types.KindString),
		col("supplier", "s_phone", types.KindString),
		col("supplier", "s_acctbal", types.KindFloat),
		col("supplier", "s_comment", types.KindString),
	)
	rows := make([]types.Tuple, g.nSupplier)
	for i := int64(0); i < g.nSupplier; i++ {
		key := i + 1
		nk := g.r.intn(int64(len(nations)))
		rows[i] = types.Tuple{
			types.Int(key),
			types.Str(fmt.Sprintf("Supplier#%09d", key)),
			types.Str(fmt.Sprintf("addr-%d", g.r.intn(100000))),
			types.Int(nk),
			types.Str(nations[nk].name),
			types.Str(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+nk, g.r.intn(1000), g.r.intn(1000), g.r.intn(10000))),
			types.Float(float64(g.r.rangeInclusive(-99999, 999999)) / 100),
			types.Str("supplier comment"),
		}
	}
	t := &catalog.Table{
		Name: "supplier", Schema: sch, Rows: rows,
		PrimaryKey: []string{"s_suppkey"},
		ForeignKeys: []catalog.ForeignKey{
			{Cols: []string{"s_nationkey"}, RefTable: "nation", RefCols: []string{"n_nationkey"}},
		},
	}
	t.SetDistinct("s_nationkey", int64(len(nations)))
	t.SetDistinct("s_nation", int64(len(nations)))
	return t
}

func (g *generator) part() *catalog.Table {
	g.nPart = g.cfg.scaled(200000)
	sch := types.NewSchema(
		col("part", "p_partkey", types.KindInt),
		col("part", "p_name", types.KindString),
		col("part", "p_mfgr", types.KindString),
		col("part", "p_brand", types.KindString),
		col("part", "p_type", types.KindString),
		col("part", "p_size", types.KindInt),
		col("part", "p_container", types.KindString),
		col("part", "p_retailprice", types.KindFloat),
	)
	// Skewed mode concentrates brand/container/size on popular values.
	var zp *zipf
	if g.cfg.Skew {
		zp = newZipf(50, g.cfg.Z)
	}
	rows := make([]types.Tuple, g.nPart)
	for i := int64(0); i < g.nPart; i++ {
		key := i + 1
		m := g.r.rangeInclusive(1, 5)
		n := g.r.rangeInclusive(1, 5)
		size := g.r.rangeInclusive(1, 50)
		if zp != nil {
			size = zp.draw(g.r) + 1
			m = size%5 + 1
		}
		name := nameWords[g.r.intn(int64(len(nameWords)))] + " " +
			nameWords[g.r.intn(int64(len(nameWords)))]
		ptype := typeSyl1[g.r.intn(int64(len(typeSyl1)))] + " " +
			typeSyl2[g.r.intn(int64(len(typeSyl2)))] + " " +
			typeSyl3[g.r.intn(int64(len(typeSyl3)))]
		cont := containerSyl1[g.r.intn(int64(len(containerSyl1)))] + " " +
			containerSyl2[g.r.intn(int64(len(containerSyl2)))]
		retail := (90000 + float64((key/10)%20001) + 100*float64(key%1000)) / 100
		rows[i] = types.Tuple{
			types.Int(key),
			types.Str(name),
			types.Str(fmt.Sprintf("Manufacturer#%d", m)),
			types.Str(fmt.Sprintf("Brand#%d%d", m, n)),
			types.Str(ptype),
			types.Int(size),
			types.Str(cont),
			types.Float(retail),
		}
	}
	t := &catalog.Table{Name: "part", Schema: sch, Rows: rows, PrimaryKey: []string{"p_partkey"}}
	t.SetDistinct("p_brand", 25)
	t.SetDistinct("p_type", int64(len(typeSyl1)*len(typeSyl2)*len(typeSyl3)))
	t.SetDistinct("p_size", 50)
	t.SetDistinct("p_container", int64(len(containerSyl1)*len(containerSyl2)))
	t.SetDistinct("p_mfgr", 5)
	return t
}

func (g *generator) partsupp() *catalog.Table {
	sch := types.NewSchema(
		col("partsupp", "ps_partkey", types.KindInt),
		col("partsupp", "ps_suppkey", types.KindInt),
		col("partsupp", "ps_availqty", types.KindInt),
		col("partsupp", "ps_supplycost", types.KindFloat),
	)
	rows := make([]types.Tuple, 0, g.nPart*4)
	perPart := int64(4)
	if perPart > g.nSupplier {
		perPart = g.nSupplier
	}
	for p := int64(1); p <= g.nPart; p++ {
		used := make(map[int64]bool, perPart)
		for j := int64(0); j < perPart; j++ {
			// TPC-H's supplier spreading formula distributes each part
			// across distant suppliers; at the tiny scale factors this
			// reproduction runs, the stride can wrap onto itself, so
			// collisions advance to the next free supplier to keep
			// (partkey, suppkey) a key.
			s := (p+(j*((g.nSupplier/4)+(p-1)/g.nSupplier)))%g.nSupplier + 1
			for used[s] {
				s = s%g.nSupplier + 1
			}
			used[s] = true
			rows = append(rows, types.Tuple{
				types.Int(p),
				types.Int(s),
				types.Int(g.r.rangeInclusive(1, 9999)),
				types.Float(float64(g.r.rangeInclusive(100, 100000)) / 100),
			})
		}
	}
	t := &catalog.Table{
		Name: "partsupp", Schema: sch, Rows: rows,
		PrimaryKey: []string{"ps_partkey", "ps_suppkey"},
		ForeignKeys: []catalog.ForeignKey{
			{Cols: []string{"ps_partkey"}, RefTable: "part", RefCols: []string{"p_partkey"}},
			{Cols: []string{"ps_suppkey"}, RefTable: "supplier", RefCols: []string{"s_suppkey"}},
		},
	}
	t.SetDistinct("ps_partkey", g.nPart)
	t.SetDistinct("ps_suppkey", g.nSupplier)
	return t
}

func (g *generator) customer() *catalog.Table {
	g.nCustomer = g.cfg.scaled(150000)
	sch := types.NewSchema(
		col("customer", "c_custkey", types.KindInt),
		col("customer", "c_name", types.KindString),
		col("customer", "c_nationkey", types.KindInt),
		col("customer", "c_acctbal", types.KindFloat),
	)
	rows := make([]types.Tuple, g.nCustomer)
	for i := int64(0); i < g.nCustomer; i++ {
		key := i + 1
		rows[i] = types.Tuple{
			types.Int(key),
			types.Str(fmt.Sprintf("Customer#%09d", key)),
			types.Int(g.r.intn(int64(len(nations)))),
			types.Float(float64(g.r.rangeInclusive(-99999, 999999)) / 100),
		}
	}
	t := &catalog.Table{
		Name: "customer", Schema: sch, Rows: rows,
		PrimaryKey: []string{"c_custkey"},
		ForeignKeys: []catalog.ForeignKey{
			{Cols: []string{"c_nationkey"}, RefTable: "nation", RefCols: []string{"n_nationkey"}},
		},
	}
	t.SetDistinct("c_nationkey", int64(len(nations)))
	return t
}

func (g *generator) ordersAndLineitem() (*catalog.Table, *catalog.Table) {
	g.nOrders = g.cfg.scaled(1500000)
	oSch := types.NewSchema(
		col("orders", "o_orderkey", types.KindInt),
		col("orders", "o_custkey", types.KindInt),
		col("orders", "o_orderdate", types.KindDate),
		col("orders", "o_totalprice", types.KindFloat),
	)
	lSch := types.NewSchema(
		col("lineitem", "l_orderkey", types.KindInt),
		col("lineitem", "l_partkey", types.KindInt),
		col("lineitem", "l_suppkey", types.KindInt),
		col("lineitem", "l_quantity", types.KindFloat),
		col("lineitem", "l_extendedprice", types.KindFloat),
		col("lineitem", "l_discount", types.KindFloat),
		col("lineitem", "l_receiptdate", types.KindDate),
	)

	var zpPart, zpSupp, zpCust *zipf
	if g.cfg.Skew {
		zpPart = newZipf(g.nPart, g.cfg.Z)
		zpSupp = newZipf(g.nSupplier, g.cfg.Z)
		zpCust = newZipf(g.nCustomer, g.cfg.Z)
	}
	pickPart := func() int64 {
		if zpPart != nil {
			return permutedKey(zpPart.draw(g.r), g.nPart)
		}
		return g.r.rangeInclusive(1, g.nPart)
	}
	pickSupp := func() int64 {
		if zpSupp != nil {
			return permutedKey(zpSupp.draw(g.r), g.nSupplier)
		}
		return g.r.rangeInclusive(1, g.nSupplier)
	}
	pickCust := func() int64 {
		if zpCust != nil {
			return permutedKey(zpCust.draw(g.r), g.nCustomer)
		}
		return g.r.rangeInclusive(1, g.nCustomer)
	}

	oRows := make([]types.Tuple, 0, g.nOrders)
	lRows := make([]types.Tuple, 0, g.nOrders*4)
	for o := int64(1); o <= g.nOrders; o++ {
		odate := g.r.rangeInclusive(dateLo, dateHi)
		nLines := g.r.rangeInclusive(1, 7)
		var total float64
		for li := int64(0); li < nLines; li++ {
			qty := float64(g.r.rangeInclusive(1, 50))
			price := float64(g.r.rangeInclusive(90000, 200000)) / 100 * qty / 10
			disc := float64(g.r.rangeInclusive(0, 10)) / 100
			total += price * (1 - disc)
			lRows = append(lRows, types.Tuple{
				types.Int(o),
				types.Int(pickPart()),
				types.Int(pickSupp()),
				types.Float(qty),
				types.Float(price),
				types.Float(disc),
				types.Date(odate + g.r.rangeInclusive(1, 121)),
			})
		}
		oRows = append(oRows, types.Tuple{
			types.Int(o),
			types.Int(pickCust()),
			types.Date(odate),
			types.Float(total),
		})
	}

	oT := &catalog.Table{
		Name: "orders", Schema: oSch, Rows: oRows,
		PrimaryKey: []string{"o_orderkey"},
		ForeignKeys: []catalog.ForeignKey{
			{Cols: []string{"o_custkey"}, RefTable: "customer", RefCols: []string{"c_custkey"}},
		},
	}
	oT.SetDistinct("o_custkey", g.nCustomer)
	oT.SetDistinct("o_orderdate", dateHi-dateLo+1)

	lT := &catalog.Table{
		Name: "lineitem", Schema: lSch, Rows: lRows,
		ForeignKeys: []catalog.ForeignKey{
			{Cols: []string{"l_orderkey"}, RefTable: "orders", RefCols: []string{"o_orderkey"}},
			{Cols: []string{"l_partkey"}, RefTable: "part", RefCols: []string{"p_partkey"}},
			{Cols: []string{"l_suppkey"}, RefTable: "supplier", RefCols: []string{"s_suppkey"}},
		},
	}
	lT.SetDistinct("l_orderkey", g.nOrders)
	lT.SetDistinct("l_partkey", g.nPart)
	lT.SetDistinct("l_suppkey", g.nSupplier)
	lT.SetDistinct("l_quantity", 50)
	return oT, lT
}

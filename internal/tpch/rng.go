// Package tpch generates deterministic TPC-H-shaped data at a configurable
// scale factor, in uniform mode (standard TPC-H) and in a Zipf-skewed mode
// that stands in for the Microsoft skewed TPC-D generator the paper used
// (z = 0.5). See DESIGN.md §2 for the substitution rationale.
package tpch

import "math"

// rng is a splitmix64 generator: tiny, fast, and fully deterministic across
// platforms (math/rand's stream is also stable, but owning the generator
// keeps the data bit-identical regardless of Go version).
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// rangeInclusive returns a uniform integer in [lo, hi].
func (r *rng) rangeInclusive(lo, hi int64) int64 {
	return lo + r.intn(hi-lo+1)
}

// float returns a uniform float in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// zipf draws ranks in [0, n) with probability proportional to 1/(rank+1)^z,
// via inverse transform over a precomputed CDF. z = 0.5 matches the paper's
// skew factor; z = 0 degenerates to uniform.
type zipf struct {
	cdf []float64
}

func newZipf(n int64, z float64) *zipf {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	var total float64
	for i := int64(0); i < n; i++ {
		total += 1.0 / math.Pow(float64(i+1), z)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &zipf{cdf: cdf}
}

// draw returns a rank in [0, n) using r as the randomness source.
func (zp *zipf) draw(r *rng) int64 {
	u := r.float()
	// Binary search the CDF.
	lo, hi := 0, len(zp.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if zp.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo)
}

// permutedKey maps a Zipf rank onto a key in [1, n] with a fixed affine
// permutation so the popular keys are scattered across the key domain
// rather than clustered at the low end, mirroring how the Microsoft
// generator skews values independently of key order.
func permutedKey(rank, n int64) int64 {
	if n <= 1 {
		return 1
	}
	// Multiplier coprime with n: use the largest odd number below n that is
	// coprime; 2654435761 mod n works for the table sizes we generate as
	// long as we retry until coprime.
	mult := int64(2654435761 % uint64(n))
	for mult <= 1 || gcd(mult, n) != 1 {
		mult++
		if mult >= n {
			mult = 3
			if gcd(mult, n) != 1 {
				// n divisible by 3: fall back to identity scatter.
				return rank%n + 1
			}
		}
	}
	return (rank*mult)%n + 1
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

package plan

import "repro/internal/types"

// Clone deep-copies the block structure (relations, conjuncts, outputs).
// Bound expressions are immutable and shared; slices and Rel/Block nodes
// are copied so rewriters (magic sets, the workload's delay/site tagging)
// can mutate a clone without affecting the binder's output.
func (b *Block) Clone() *Block {
	nb := &Block{
		Global:    cloneSchema(b.Global),
		EqIDs:     append([]int(nil), b.EqIDs...),
		Distinct:  b.Distinct,
		NumParams: b.NumParams,
	}
	nb.GroupBy = append(nb.GroupBy, b.GroupBy...)
	nb.Aggs = append([]AggSpec(nil), b.Aggs...)
	nb.Conjuncts = append([]Conjunct(nil), b.Conjuncts...)
	for i := range nb.Conjuncts {
		nb.Conjuncts[i].Rels = append([]int(nil), b.Conjuncts[i].Rels...)
	}
	nb.Output = append([]OutputCol(nil), b.Output...)
	nb.Rels = make([]*Rel, len(b.Rels))
	for i, r := range b.Rels {
		nr := &Rel{
			Alias:      r.Alias,
			Table:      r.Table,
			Schema:     cloneSchema(r.Schema),
			Offset:     r.Offset,
			Site:       r.Site,
			Delayed:    r.Delayed,
			Correlated: append([]CorrPair(nil), r.Correlated...),
		}
		if r.Sub != nil {
			nr.Sub = r.Sub.Clone()
		}
		nb.Rels[i] = nr
	}
	return nb
}

func cloneSchema(s *types.Schema) *types.Schema {
	return types.NewSchema(append([]types.Column(nil), s.Cols...)...)
}

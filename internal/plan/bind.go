package plan

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/sqlparser"
	"repro/internal/types"
)

// CorrPair records one correlation equality of a decorrelated subquery:
// the outer block's global column and the position (within the derived
// relation's output schema) of the matching group-by column.
type CorrPair struct {
	OuterCol    int // global column id in the outer block
	InnerOutCol int // output position within the derived relation
}

// Bind parses nothing — it binds an already-parsed statement against the
// catalog, decorrelating scalar subqueries, and returns the root block.
func Bind(cat *catalog.Catalog, stmt *sqlparser.SelectStmt) (*Block, error) {
	b := &binder{cat: cat, eq: newEqAlloc()}
	blk, err := b.bindSelect(stmt, nil)
	if err != nil {
		return nil, err
	}
	b.eq.finalize(blk)
	blk.NumParams = stmt.NumParams
	if b.numParams > blk.NumParams {
		blk.NumParams = b.numParams
	}
	return blk, nil
}

// BindSQL parses and binds in one step.
func BindSQL(cat *catalog.Catalog, sql string) (*Block, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return Bind(cat, stmt)
}

// ---------------------------------------------------------------------------
// Equivalence-class allocation (the source-predicate graph of §IV-A).

type eqAlloc struct {
	parent []int
}

func newEqAlloc() *eqAlloc { return &eqAlloc{} }

func (e *eqAlloc) fresh() int {
	id := len(e.parent)
	e.parent = append(e.parent, id)
	return id
}

func (e *eqAlloc) find(x int) int {
	for e.parent[x] != x {
		e.parent[x] = e.parent[e.parent[x]]
		x = e.parent[x]
	}
	return x
}

func (e *eqAlloc) union(a, b int) {
	ra, rb := e.find(a), e.find(b)
	if ra != rb {
		e.parent[ra] = rb
	}
}

// finalize rewrites every block's EqIDs to canonical class roots.
func (e *eqAlloc) finalize(b *Block) {
	for i := range b.EqIDs {
		b.EqIDs[i] = e.find(b.EqIDs[i])
	}
	for _, r := range b.Rels {
		if r.Sub != nil {
			e.finalize(r.Sub)
		}
	}
}

// ---------------------------------------------------------------------------
// Binder.

type binder struct {
	cat       *catalog.Catalog
	eq        *eqAlloc
	nextID    int
	numParams int // highest placeholder ordinal seen + 1
}

// scope is the name-resolution environment: the block being bound plus its
// lexical parent (for correlated subqueries).
type scope struct {
	block  *Block
	parent *scope
	// outerRefs collects the outer global columns referenced while binding
	// the current block (correlation witnesses).
	outerRefs map[int]types.Column
}

// outerRef is a transient expression node standing for a correlated
// reference to an enclosing block; decorrelation removes every instance
// before the block is returned.
type outerRef struct {
	outerCol int
	col      types.Column
}

func (o *outerRef) Eval(types.Tuple) types.Value {
	panic("plan: correlated reference survived decorrelation")
}
func (o *outerRef) Kind() types.Kind { return o.col.Kind }
func (o *outerRef) String() string   { return "outer:" + o.col.QualifiedName() }

// aggRef is a transient marker for an aggregate call inside a SELECT item;
// it is replaced by a post-aggregation column reference.
type aggRef struct {
	idx  int // index into the block's Aggs
	kind types.Kind
	name string
}

func (a *aggRef) Eval(types.Tuple) types.Value { panic("plan: unresolved aggregate reference") }
func (a *aggRef) Kind() types.Kind             { return a.kind }
func (a *aggRef) String() string               { return "agg:" + a.name }

func (b *binder) bindSelect(stmt *sqlparser.SelectStmt, parent *scope) (*Block, error) {
	blk := &Block{Global: types.NewSchema()}
	sc := &scope{block: blk, parent: parent, outerRefs: map[int]types.Column{}}

	// FROM list.
	for _, ref := range stmt.From {
		if ref.Subquery != nil {
			sub, err := b.bindSelect(ref.Subquery, nil) // derived tables are uncorrelated
			if err != nil {
				return nil, err
			}
			if err := b.addDerivedRel(blk, ref.Alias, sub, nil); err != nil {
				return nil, err
			}
			continue
		}
		tbl, err := b.cat.Table(ref.Name)
		if err != nil {
			return nil, err
		}
		b.addBaseRel(blk, ref.EffectiveAlias(), tbl)
	}

	// WHERE: split into conjuncts at the AST level so each scalar subquery
	// is decorrelated in the context of its own conjunct.
	if stmt.Where != nil {
		for _, conj := range splitASTConjuncts(stmt.Where) {
			bound, err := b.bindExpr(conj, sc)
			if err != nil {
				return nil, err
			}
			if hasOuterRef(bound) {
				// This conjunct correlates the block with its parent; the
				// caller (decorrelation) extracts it. Stash it with a
				// marker conjunct; extraction happens in decorrelate().
				blk.Conjuncts = append(blk.Conjuncts, Conjunct{E: bound, Rels: nil})
				continue
			}
			blk.AddConjunct(bound)
			b.noteEquality(blk, bound)
		}
	}

	// GROUP BY.
	for _, g := range stmt.GroupBy {
		ge, err := b.bindExpr(g, sc)
		if err != nil {
			return nil, err
		}
		if hasOuterRef(ge) {
			return nil, fmt.Errorf("plan: correlated GROUP BY expression %s is not supported", ge)
		}
		blk.GroupBy = append(blk.GroupBy, ge)
	}

	// SELECT items: extract aggregates, then bind outputs.
	if err := b.bindOutputs(stmt, blk, sc); err != nil {
		return nil, err
	}
	blk.Distinct = stmt.Distinct
	return blk, nil
}

// addBaseRel appends a base-table relation, assigning fresh equivalence
// nodes to its columns.
func (b *binder) addBaseRel(blk *Block, alias string, tbl *catalog.Table) *Rel {
	cols := make([]types.Column, len(tbl.Schema.Cols))
	for i, c := range tbl.Schema.Cols {
		cols[i] = types.Column{Table: alias, Name: c.Name, Kind: c.Kind}
	}
	rel := &Rel{
		Alias:  alias,
		Table:  tbl,
		Schema: types.NewSchema(cols...),
		Offset: blk.Global.Len(),
	}
	blk.Rels = append(blk.Rels, rel)
	blk.Global = blk.Global.Concat(rel.Schema)
	for range cols {
		blk.EqIDs = append(blk.EqIDs, b.eq.fresh())
	}
	return rel
}

// addDerivedRel appends a nested-block relation. corr carries decorrelation
// pairs (nil for plain derived tables); equivalence nodes flow through from
// the sub-block's outputs so AIP classes span the block boundary.
func (b *binder) addDerivedRel(blk *Block, alias string, sub *Block, corr []CorrPair) error {
	outSchema := sub.OutputSchema()
	cols := make([]types.Column, outSchema.Len())
	for i, c := range outSchema.Cols {
		cols[i] = types.Column{Table: alias, Name: c.Name, Kind: c.Kind}
	}
	rel := &Rel{
		Alias:      alias,
		Sub:        sub,
		Schema:     types.NewSchema(cols...),
		Offset:     blk.Global.Len(),
		Correlated: corr,
	}
	blk.Rels = append(blk.Rels, rel)
	blk.Global = blk.Global.Concat(rel.Schema)
	outEq := b.outputEqNodes(sub)
	for i := range cols {
		if outEq[i] >= 0 {
			blk.EqIDs = append(blk.EqIDs, outEq[i])
		} else {
			blk.EqIDs = append(blk.EqIDs, b.eq.fresh())
		}
	}
	return nil
}

// outputEqNodes maps each output column of a block to the equivalence node
// of its source attribute, or -1 when the output is computed (aggregates,
// arithmetic) and therefore starts a fresh class.
func (b *binder) outputEqNodes(blk *Block) []int {
	out := make([]int, len(blk.Output))
	for i, o := range blk.Output {
		out[i] = -1
		if len(blk.Aggs) > 0 || len(blk.GroupBy) > 0 {
			// Output is bound against the post-agg schema: positions
			// [0,len(GroupBy)) are group-by columns.
			if cr, ok := o.E.(*expr.ColRef); ok && cr.Idx < len(blk.GroupBy) {
				if src, ok2 := blk.GroupBy[cr.Idx].(*expr.ColRef); ok2 {
					out[i] = blk.EqIDs[src.Idx]
				}
			}
			continue
		}
		if cr, ok := o.E.(*expr.ColRef); ok {
			out[i] = blk.EqIDs[cr.Idx]
		}
	}
	return out
}

// noteEquality unions the equivalence nodes of `col = col` conjuncts.
func (b *binder) noteEquality(blk *Block, e expr.Expr) {
	if l, r, ok := expr.EquiPair(e); ok {
		b.eq.union(blk.EqIDs[l.Idx], blk.EqIDs[r.Idx])
	}
}

// splitASTConjuncts flattens top-level ANDs in the unbound AST.
func splitASTConjuncts(e sqlparser.Expr) []sqlparser.Expr {
	if be, ok := e.(*sqlparser.BinaryExpr); ok && be.Op == "AND" {
		return append(splitASTConjuncts(be.L), splitASTConjuncts(be.R)...)
	}
	return []sqlparser.Expr{e}
}

func hasOuterRef(e expr.Expr) bool {
	found := false
	walkExpr(e, func(x expr.Expr) {
		if _, ok := x.(*outerRef); ok {
			found = true
		}
	})
	return found
}

func walkExpr(e expr.Expr, f func(expr.Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch v := e.(type) {
	case *expr.Binary:
		walkExpr(v.L, f)
		walkExpr(v.R, f)
	case *expr.Not:
		walkExpr(v.E, f)
	case *expr.Like:
		walkExpr(v.E, f)
	case *expr.Year:
		walkExpr(v.E, f)
	}
}

// ---------------------------------------------------------------------------
// Expression binding.

var aggFuncs = map[string]AggFunc{
	"sum": AggSum, "min": AggMin, "max": AggMax, "avg": AggAvg, "count": AggCount,
}

func (b *binder) bindExpr(e sqlparser.Expr, sc *scope) (expr.Expr, error) {
	switch v := e.(type) {
	case *sqlparser.NumberLit:
		if v.IsInt {
			n, err := strconv.ParseInt(v.Text, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("plan: bad integer literal %q: %w", v.Text, err)
			}
			return &expr.Const{V: types.Int(n)}, nil
		}
		f, err := strconv.ParseFloat(v.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("plan: bad numeric literal %q: %w", v.Text, err)
		}
		return &expr.Const{V: types.Float(f)}, nil

	case *sqlparser.StringLit:
		return &expr.Const{V: types.Str(v.Val)}, nil

	case *sqlparser.Placeholder:
		if v.Ord+1 > b.numParams {
			b.numParams = v.Ord + 1
		}
		// The kind starts unconstrained; bindBinary infers it from the
		// expression the placeholder is compared against.
		return &expr.Param{Idx: v.Ord}, nil

	case *sqlparser.Ident:
		return b.resolveIdent(v, sc)

	case *sqlparser.NotExpr:
		inner, err := b.bindExpr(v.E, sc)
		if err != nil {
			return nil, err
		}
		return &expr.Not{E: inner}, nil

	case *sqlparser.LikeExpr:
		inner, err := b.bindExpr(v.E, sc)
		if err != nil {
			return nil, err
		}
		return &expr.Like{E: inner, Pattern: v.Pattern, Negate: v.Negate}, nil

	case *sqlparser.Call:
		if _, isAgg := aggFuncs[v.Name]; isAgg {
			return nil, fmt.Errorf("plan: aggregate %s not allowed here", v.Name)
		}
		if v.Name == "year" {
			if len(v.Args) != 1 {
				return nil, fmt.Errorf("plan: year() takes one argument")
			}
			arg, err := b.bindExpr(v.Args[0], sc)
			if err != nil {
				return nil, err
			}
			return &expr.Year{E: arg}, nil
		}
		return nil, fmt.Errorf("plan: unknown function %q", v.Name)

	case *sqlparser.BinaryExpr:
		return b.bindBinary(v, sc)

	case *sqlparser.SubqueryExpr:
		return b.decorrelate(v.Sel, sc)

	default:
		return nil, fmt.Errorf("plan: unsupported expression %T", e)
	}
}

var binOps = map[string]expr.BinOp{
	"+": expr.OpAdd, "-": expr.OpSub, "*": expr.OpMul, "/": expr.OpDiv,
	"=": expr.OpEq, "<>": expr.OpNe, "<": expr.OpLt, "<=": expr.OpLe,
	">": expr.OpGt, ">=": expr.OpGe, "AND": expr.OpAnd, "OR": expr.OpOr,
}

func (b *binder) bindBinary(v *sqlparser.BinaryExpr, sc *scope) (expr.Expr, error) {
	op, ok := binOps[v.Op]
	if !ok {
		return nil, fmt.Errorf("plan: unknown operator %q", v.Op)
	}
	l, err := b.bindExpr(v.L, sc)
	if err != nil {
		return nil, err
	}
	r, err := b.bindExpr(v.R, sc)
	if err != nil {
		return nil, err
	}
	// Coerce string literals compared against dates into date values, and
	// infer placeholder kinds from the opposite operand.
	if op.IsComparison() {
		l, r = coerceDate(l, r)
		r, l = coerceDate(r, l)
		inferParamKind(l, r)
		inferParamKind(r, l)
	}
	return &expr.Binary{Op: op, L: l, R: r}, nil
}

// inferParamKind types an unconstrained `?` placeholder from the expression
// it is compared against, so date and float arguments coerce correctly at
// execute time.
func inferParamKind(p, other expr.Expr) {
	pp, ok := p.(*expr.Param)
	if !ok || pp.Knd != types.KindNull {
		return
	}
	if _, otherIsParam := other.(*expr.Param); otherIsParam {
		return
	}
	pp.Knd = other.Kind()
}

// coerceDate converts rhs string constants to dates when lhs is a date.
func coerceDate(l, r expr.Expr) (expr.Expr, expr.Expr) {
	if l.Kind() != types.KindDate {
		return l, r
	}
	c, ok := r.(*expr.Const)
	if !ok || c.V.K != types.KindString {
		return l, r
	}
	if d, err := parseLooseDate(c.V.S); err == nil {
		return l, &expr.Const{V: d}
	}
	return l, r
}

// parseLooseDate accepts 'YYYY-MM-DD' and 'YYYY-M-D' forms (the paper's
// queries write '2007-1-1').
func parseLooseDate(s string) (types.Value, error) {
	return types.DateFromLooseString(s)
}

// resolveIdent looks the identifier up in the current block, then in the
// enclosing scope (producing a correlated outerRef).
func (b *binder) resolveIdent(id *sqlparser.Ident, sc *scope) (expr.Expr, error) {
	idx, err := sc.block.Global.Resolve(id.Qualifier, id.Name)
	if err == nil {
		return &expr.ColRef{Idx: idx, Col: sc.block.Global.Cols[idx]}, nil
	}
	if strings.Contains(err.Error(), "ambiguous") {
		return nil, err
	}
	if sc.parent != nil {
		pidx, perr := sc.parent.block.Global.Resolve(id.Qualifier, id.Name)
		if perr == nil {
			col := sc.parent.block.Global.Cols[pidx]
			sc.outerRefs[pidx] = col
			return &outerRef{outerCol: pidx, col: col}, nil
		}
	}
	return nil, err
}

// ---------------------------------------------------------------------------
// Output binding (aggregate extraction).

func (b *binder) bindOutputs(stmt *sqlparser.SelectStmt, blk *Block, sc *scope) error {
	grouped := len(stmt.GroupBy) > 0
	// First pass: detect aggregates anywhere in the select list.
	for _, item := range stmt.Items {
		if !item.Star && containsAgg(item.Expr) {
			grouped = true
		}
	}
	for _, item := range stmt.Items {
		if item.Star {
			if grouped {
				return fmt.Errorf("plan: SELECT * with aggregation is not supported")
			}
			for i, c := range blk.Global.Cols {
				blk.Output = append(blk.Output, OutputCol{
					E:    &expr.ColRef{Idx: i, Col: c},
					Name: c.Name,
				})
			}
			continue
		}
		var bound expr.Expr
		var err error
		if grouped {
			bound, err = b.bindGroupedItem(item.Expr, blk, sc)
		} else {
			bound, err = b.bindExpr(item.Expr, sc)
		}
		if err != nil {
			return err
		}
		if hasOuterRef(bound) {
			return fmt.Errorf("plan: correlated select item %s is not supported", item.Expr)
		}
		name := item.Alias
		if name == "" {
			name = defaultName(item.Expr)
		}
		blk.Output = append(blk.Output, OutputCol{E: bound, Name: name})
	}
	if grouped {
		// Rewrite output expressions from Global-binding + aggRef markers
		// into post-agg schema positions.
		post := blk.PostAggSchema()
		for i := range blk.Output {
			rewritten, err := b.toPostAgg(blk.Output[i].E, blk, post)
			if err != nil {
				return err
			}
			blk.Output[i].E = rewritten
		}
	}
	return nil
}

// bindGroupedItem binds a select item of an aggregating block: aggregate
// calls become aggRef markers (and their args are bound against Global).
func (b *binder) bindGroupedItem(e sqlparser.Expr, blk *Block, sc *scope) (expr.Expr, error) {
	if call, ok := e.(*sqlparser.Call); ok {
		if f, isAgg := aggFuncs[call.Name]; isAgg {
			spec := AggSpec{Func: f}
			if call.Star {
				if f != AggCount {
					return nil, fmt.Errorf("plan: %s(*) is not valid", call.Name)
				}
				spec.Func = AggCountStar
			} else {
				if len(call.Args) != 1 {
					return nil, fmt.Errorf("plan: %s takes one argument", call.Name)
				}
				arg, err := b.bindExpr(call.Args[0], sc)
				if err != nil {
					return nil, err
				}
				if hasOuterRef(arg) {
					return nil, fmt.Errorf("plan: correlated aggregate argument is not supported")
				}
				spec.Arg = arg
			}
			spec.Name = fmt.Sprintf("%s_%d", call.Name, len(blk.Aggs))
			blk.Aggs = append(blk.Aggs, spec)
			return &aggRef{idx: len(blk.Aggs) - 1, kind: spec.Kind(), name: spec.Name}, nil
		}
	}
	switch v := e.(type) {
	case *sqlparser.BinaryExpr:
		op, ok := binOps[v.Op]
		if !ok {
			return nil, fmt.Errorf("plan: unknown operator %q", v.Op)
		}
		l, err := b.bindGroupedItem(v.L, blk, sc)
		if err != nil {
			return nil, err
		}
		r, err := b.bindGroupedItem(v.R, blk, sc)
		if err != nil {
			return nil, err
		}
		return &expr.Binary{Op: op, L: l, R: r}, nil
	default:
		return b.bindExpr(e, sc)
	}
}

// toPostAgg rewrites an output expression (bound against Global, with
// aggRef markers) into the post-aggregation schema: group-by columns first,
// then aggregate results.
func (b *binder) toPostAgg(e expr.Expr, blk *Block, post *types.Schema) (expr.Expr, error) {
	switch v := e.(type) {
	case *aggRef:
		pos := len(blk.GroupBy) + v.idx
		return &expr.ColRef{Idx: pos, Col: post.Cols[pos]}, nil
	case *expr.ColRef:
		for gi, g := range blk.GroupBy {
			if gc, ok := g.(*expr.ColRef); ok && gc.Idx == v.Idx {
				return &expr.ColRef{Idx: gi, Col: post.Cols[gi]}, nil
			}
		}
		return nil, fmt.Errorf("plan: select item column %s is neither grouped nor aggregated", v.Col.QualifiedName())
	case *expr.Const:
		return v, nil
	case *expr.Binary:
		l, err := b.toPostAgg(v.L, blk, post)
		if err != nil {
			return nil, err
		}
		r, err := b.toPostAgg(v.R, blk, post)
		if err != nil {
			return nil, err
		}
		return &expr.Binary{Op: v.Op, L: l, R: r}, nil
	case *expr.Year:
		inner, err := b.toPostAgg(v.E, blk, post)
		if err != nil {
			return nil, err
		}
		return &expr.Year{E: inner}, nil
	default:
		return nil, fmt.Errorf("plan: unsupported grouped select expression %T", e)
	}
}

func containsAgg(e sqlparser.Expr) bool {
	switch v := e.(type) {
	case *sqlparser.Call:
		if _, ok := aggFuncs[v.Name]; ok {
			return true
		}
		for _, a := range v.Args {
			if containsAgg(a) {
				return true
			}
		}
	case *sqlparser.BinaryExpr:
		return containsAgg(v.L) || containsAgg(v.R)
	case *sqlparser.NotExpr:
		return containsAgg(v.E)
	case *sqlparser.LikeExpr:
		return containsAgg(v.E)
	}
	return false
}

func defaultName(e sqlparser.Expr) string {
	if id, ok := e.(*sqlparser.Ident); ok {
		return id.Name
	}
	return strings.ReplaceAll(e.String(), " ", "")
}

// ---------------------------------------------------------------------------
// Decorrelation of scalar subqueries.

// decorrelate binds a correlated scalar subquery, converts it into a
// grouped derived relation of the enclosing block (grouped on its
// correlation attributes), adds the correlation equijoins, and returns a
// reference to the scalar result column. This is the classic magic-style
// decorrelation the paper's Figure 1 plan exhibits.
func (b *binder) decorrelate(sub *sqlparser.SelectStmt, sc *scope) (expr.Expr, error) {
	inner, err := b.bindSelect(sub, sc)
	if err != nil {
		return nil, err
	}
	if len(inner.Output) != 1 || len(inner.Aggs) != 1 || len(inner.GroupBy) != 0 {
		return nil, fmt.Errorf("plan: scalar subquery must compute exactly one aggregate")
	}

	// Extract correlation conjuncts (those containing outerRef markers).
	var corr []CorrPair
	kept := inner.Conjuncts[:0]
	for _, c := range inner.Conjuncts {
		if !hasOuterRef(c.E) {
			kept = append(kept, c)
			continue
		}
		innerCol, outerCol, ok := corrEquiPair(c.E)
		if !ok {
			return nil, fmt.Errorf("plan: unsupported correlated predicate %s (only inner = outer equality is supported)", c.E)
		}
		// Group the inner block by the correlation attribute and expose it.
		gidx := -1
		for i, g := range inner.GroupBy {
			if gc, isCol := g.(*expr.ColRef); isCol && gc.Idx == innerCol {
				gidx = i
				break
			}
		}
		if gidx == -1 {
			inner.GroupBy = append(inner.GroupBy, &expr.ColRef{Idx: innerCol, Col: inner.Global.Cols[innerCol]})
			gidx = len(inner.GroupBy) - 1
		}
		corr = append(corr, CorrPair{OuterCol: outerCol, InnerOutCol: gidx})
	}
	inner.Conjuncts = kept

	// Rebuild the inner output list: correlation group-by columns first,
	// then the scalar aggregate. The scalar expression was already bound
	// against the (previously group-free) post-agg schema [aggs...]; the
	// new layout is [corr group-by columns..., aggs...], so its aggregate
	// references shift right by the number of group-by columns added.
	post := inner.PostAggSchema()
	scalar := inner.Output[0]
	rewritten := expr.Shift(scalar.E, len(inner.GroupBy))
	inner.Output = nil
	for gi := range inner.GroupBy {
		name := post.Cols[gi].Name
		inner.Output = append(inner.Output, OutputCol{
			E:    &expr.ColRef{Idx: gi, Col: post.Cols[gi]},
			Name: name,
		})
	}
	scalarName := scalar.Name
	if scalarName == "" {
		scalarName = "scalar"
	}
	inner.Output = append(inner.Output, OutputCol{E: rewritten, Name: scalarName})
	scalarPos := len(inner.Output) - 1

	// Attach as a derived relation of the outer block. The correlation
	// pairs are recorded so the magic-sets rewriter can locate them.
	blk := sc.block
	b.nextID++
	alias := fmt.Sprintf("_sq%d", b.nextID)
	if err := b.addDerivedRel(blk, alias, inner, corr); err != nil {
		return nil, err
	}
	rel := blk.Rels[len(blk.Rels)-1]

	// Join conjuncts: outer correlation column = derived group-by column.
	for _, cp := range corr {
		dcol := rel.Offset + cp.InnerOutCol
		join := &expr.Binary{
			Op: expr.OpEq,
			L:  &expr.ColRef{Idx: cp.OuterCol, Col: blk.Global.Cols[cp.OuterCol]},
			R:  &expr.ColRef{Idx: dcol, Col: blk.Global.Cols[dcol]},
		}
		blk.AddConjunct(join)
		b.eq.union(blk.EqIDs[cp.OuterCol], blk.EqIDs[dcol])
	}

	sp := rel.Offset + scalarPos
	return &expr.ColRef{Idx: sp, Col: blk.Global.Cols[sp]}, nil
}

// corrEquiPair matches `innerCol = outerRef` (either order) and returns the
// inner global column and the outer global column.
func corrEquiPair(e expr.Expr) (innerCol, outerCol int, ok bool) {
	bin, isBin := e.(*expr.Binary)
	if !isBin || bin.Op != expr.OpEq {
		return 0, 0, false
	}
	if ic, isCol := bin.L.(*expr.ColRef); isCol {
		if or, isOut := bin.R.(*outerRef); isOut {
			return ic.Idx, or.outerCol, true
		}
	}
	if ic, isCol := bin.R.(*expr.ColRef); isCol {
		if or, isOut := bin.L.(*outerRef); isOut {
			return ic.Idx, or.outerCol, true
		}
	}
	return 0, 0, false
}

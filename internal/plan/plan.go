// Package plan turns parsed SQL into bound query blocks: the form consumed
// by the optimizer, the magic-sets rewriter, and the AIP planner.
//
// A Block is one decorrelated query block: a set of relations (base tables
// or nested blocks), a conjunct list bound against the concatenation of the
// relations' schemas ("global" column ids), output expressions, grouping,
// and aggregation. Correlated scalar subqueries are decorrelated at bind
// time into additional grouped relations joined on their correlation
// attributes — exactly the plan shape of the paper's Figure 1.
//
// The binder also computes the source-predicate graph of §IV-A: every
// attribute in the query gets an equivalence-class id (EqID), where two
// attributes share a class iff the query transitively equates them. AIP
// uses the classes to decide which operators can produce and consume AIP
// sets; crucially the classes span block boundaries, so a filter built over
// a subquery's aggregation state can prune the parent block and vice versa.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/types"
)

// AggFunc enumerates aggregate functions.
type AggFunc int

// Aggregate functions supported by the engine.
const (
	AggSum AggFunc = iota
	AggMin
	AggMax
	AggAvg
	AggCount
	AggCountStar
)

var aggNames = map[AggFunc]string{
	AggSum: "sum", AggMin: "min", AggMax: "max",
	AggAvg: "avg", AggCount: "count", AggCountStar: "count(*)",
}

// String returns the SQL name of the aggregate.
func (f AggFunc) String() string { return aggNames[f] }

// ResultKind returns the output type of the aggregate given its input type.
func (f AggFunc) ResultKind(arg types.Kind) types.Kind {
	switch f {
	case AggCount, AggCountStar:
		return types.KindInt
	case AggAvg:
		return types.KindFloat
	case AggSum:
		if arg == types.KindInt {
			return types.KindInt
		}
		return types.KindFloat
	default: // min/max preserve the input type
		return arg
	}
}

// AggSpec is one aggregate computation: Func applied to Arg (bound against
// the block's global schema; nil for count(*)).
type AggSpec struct {
	Func AggFunc
	Arg  expr.Expr
	Name string // output column name
}

// Kind returns the aggregate's output type.
func (a AggSpec) Kind() types.Kind {
	if a.Arg == nil {
		return a.Func.ResultKind(types.KindInt)
	}
	return a.Func.ResultKind(a.Arg.Kind())
}

func (a AggSpec) String() string {
	if a.Arg == nil {
		return a.Func.String()
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Arg)
}

// Rel is one relation of a block: a base table or a nested (derived /
// decorrelated) block.
type Rel struct {
	Alias  string
	Table  *catalog.Table // non-nil for base relations
	Sub    *Block         // non-nil for nested blocks
	Schema *types.Schema  // output schema, columns qualified by Alias
	Offset int            // first global column id of this relation

	// Site assigns the relation to an execution site for the distributed
	// experiments; 0 is the master node.
	Site int

	// Delayed marks the relation for the §VI-B delay injection.
	Delayed bool

	// Correlated records decorrelation provenance: this relation was built
	// from a correlated scalar subquery joined to the outer block on these
	// pairs. The magic-sets rewriter consumes this.
	Correlated []CorrPair
}

// IsBase reports whether the relation is a base-table scan.
func (r *Rel) IsBase() bool { return r.Table != nil }

// Conjunct is one WHERE conjunct bound against the block's global schema.
type Conjunct struct {
	E    expr.Expr
	Rels []int // indices of relations referenced, ascending

	// Equi join metadata, set when E is `col = col` across two relations.
	IsEqui     bool
	LCol, RCol int // global column ids
	LRel, RRel int // relation indices (LRel < RRel)
}

func (c Conjunct) String() string { return c.E.String() }

// OutputCol is one SELECT-list item: an expression over the block's global
// schema extended with aggregate result columns (see Block.AggBase).
type OutputCol struct {
	E    expr.Expr
	Name string
}

// Block is a bound, decorrelated query block.
type Block struct {
	Rels      []*Rel
	Global    *types.Schema // concatenation of relation schemas
	EqIDs     []int         // equivalence-class id per global column
	Conjuncts []Conjunct

	// Grouping and aggregation. GroupBy expressions are bound against
	// Global. When Aggs is non-empty the block output feeds from the
	// virtual schema [GroupBy..., Aggs...]; otherwise from Global.
	GroupBy []expr.Expr
	Aggs    []AggSpec

	// Output expressions are bound against the post-aggregation schema
	// when Aggs is non-empty (group-by columns first, then aggregates),
	// or against Global otherwise.
	Output   []OutputCol
	Distinct bool

	// NumParams is the number of `?` placeholders in the statement; set on
	// the root block only. Plans built from a block with parameters must
	// have them substituted (expr.BindParams) before execution.
	NumParams int
}

// PostAggSchema returns the virtual schema that Output is bound against for
// an aggregating block: group-by columns followed by aggregate results.
func (b *Block) PostAggSchema() *types.Schema {
	cols := make([]types.Column, 0, len(b.GroupBy)+len(b.Aggs))
	for i, g := range b.GroupBy {
		name := fmt.Sprintf("_g%d", i)
		if cr, ok := g.(*expr.ColRef); ok {
			name = cr.Col.Name
		}
		cols = append(cols, types.Column{Name: name, Kind: g.Kind()})
	}
	for _, a := range b.Aggs {
		cols = append(cols, types.Column{Name: a.Name, Kind: a.Kind()})
	}
	return types.NewSchema(cols...)
}

// OutputSchema returns the block's result schema.
func (b *Block) OutputSchema() *types.Schema {
	cols := make([]types.Column, len(b.Output))
	for i, o := range b.Output {
		cols[i] = types.Column{Name: o.Name, Kind: o.E.Kind()}
	}
	return types.NewSchema(cols...)
}

// RelOf returns the relation index owning global column g.
func (b *Block) RelOf(g int) int {
	for i := len(b.Rels) - 1; i >= 0; i-- {
		if g >= b.Rels[i].Offset {
			return i
		}
	}
	return -1
}

// RelsOf returns the ascending set of relation indices referenced by e.
func (b *Block) RelsOf(e expr.Expr) []int {
	seen := map[int]bool{}
	for _, c := range expr.CollectCols(e, nil) {
		seen[b.RelOf(c)] = true
	}
	out := make([]int, 0, len(seen))
	for i := range b.Rels {
		if seen[i] {
			out = append(out, i)
		}
	}
	return out
}

// String renders the block structure for debugging.
func (b *Block) String() string {
	var sb strings.Builder
	b.describe(&sb, 0)
	return sb.String()
}

func (b *Block) describe(sb *strings.Builder, depth int) {
	ind := strings.Repeat("  ", depth)
	fmt.Fprintf(sb, "%sBlock(distinct=%v, groupby=%d, aggs=%d)\n", ind, b.Distinct, len(b.GroupBy), len(b.Aggs))
	for _, c := range b.Conjuncts {
		fmt.Fprintf(sb, "%s  pred %s (rels %v)\n", ind, c, c.Rels)
	}
	for i, r := range b.Rels {
		if r.IsBase() {
			fmt.Fprintf(sb, "%s  rel[%d] %s -> table %s (site %d)\n", ind, i, r.Alias, r.Table.Name, r.Site)
		} else {
			fmt.Fprintf(sb, "%s  rel[%d] %s -> subblock:\n", ind, i, r.Alias)
			r.Sub.describe(sb, depth+2)
		}
	}
}

// mkConjunct builds conjunct metadata for a bound predicate.
func (b *Block) mkConjunct(e expr.Expr) Conjunct {
	c := Conjunct{E: e, Rels: b.RelsOf(e)}
	if l, r, ok := expr.EquiPair(e); ok {
		lr, rr := b.RelOf(l.Idx), b.RelOf(r.Idx)
		if lr != rr {
			c.IsEqui = true
			if lr < rr {
				c.LCol, c.RCol, c.LRel, c.RRel = l.Idx, r.Idx, lr, rr
			} else {
				c.LCol, c.RCol, c.LRel, c.RRel = r.Idx, l.Idx, rr, lr
			}
		}
	}
	return c
}

// AddConjunct appends a bound predicate with computed metadata.
func (b *Block) AddConjunct(e expr.Expr) {
	b.Conjuncts = append(b.Conjuncts, b.mkConjunct(e))
}

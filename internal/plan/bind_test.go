package plan

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/tpch"
)

func testCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	return tpch.Generate(tpch.Config{ScaleFactor: 0.002})
}

func mustBind(t *testing.T, sql string) *Block {
	t.Helper()
	blk, err := BindSQL(testCatalog(t), sql)
	if err != nil {
		t.Fatalf("bind %q: %v", sql, err)
	}
	return blk
}

func TestBindSimpleScan(t *testing.T) {
	blk := mustBind(t, "SELECT p_name FROM part WHERE p_size = 1")
	if len(blk.Rels) != 1 || !blk.Rels[0].IsBase() {
		t.Fatalf("rels: %+v", blk.Rels)
	}
	if len(blk.Conjuncts) != 1 || len(blk.Conjuncts[0].Rels) != 1 {
		t.Fatalf("conjuncts: %+v", blk.Conjuncts)
	}
	if blk.OutputSchema().Cols[0].Name != "p_name" {
		t.Fatal("output name lost")
	}
}

func TestBindUnknownTableAndColumn(t *testing.T) {
	cat := testCatalog(t)
	if _, err := BindSQL(cat, "SELECT x FROM missing"); err == nil {
		t.Fatal("unknown table must error")
	}
	if _, err := BindSQL(cat, "SELECT nope FROM part"); err == nil {
		t.Fatal("unknown column must error")
	}
	if _, err := BindSQL(cat, "SELECT p_partkey FROM part, partsupp WHERE partkey = 1"); err == nil {
		t.Fatal("unknown column in join must error")
	}
}

func TestBindEquiConjunctMetadata(t *testing.T) {
	blk := mustBind(t, `SELECT p_name FROM part, partsupp WHERE p_partkey = ps_partkey`)
	var equi *Conjunct
	for i := range blk.Conjuncts {
		if blk.Conjuncts[i].IsEqui {
			equi = &blk.Conjuncts[i]
		}
	}
	if equi == nil {
		t.Fatal("join conjunct not marked equi")
	}
	if equi.LRel >= equi.RRel {
		t.Fatal("equi rel ordering violated")
	}
	// Equivalence classes must be unified.
	if blk.EqIDs[equi.LCol] != blk.EqIDs[equi.RCol] {
		t.Fatal("equated columns must share an equivalence class")
	}
}

func TestTransitiveEquivalence(t *testing.T) {
	blk := mustBind(t, `
		SELECT p_name FROM part, partsupp, lineitem
		WHERE p_partkey = ps_partkey AND ps_partkey = l_partkey`)
	// p_partkey, ps_partkey, l_partkey all in one class.
	p, _ := blk.Global.Resolve("part", "p_partkey")
	ps, _ := blk.Global.Resolve("partsupp", "ps_partkey")
	l, _ := blk.Global.Resolve("lineitem", "l_partkey")
	if blk.EqIDs[p] != blk.EqIDs[ps] || blk.EqIDs[ps] != blk.EqIDs[l] {
		t.Fatal("transitive equivalence not computed (function EQ of the paper)")
	}
	// An unrelated column stays in its own class.
	nm, _ := blk.Global.Resolve("part", "p_name")
	if blk.EqIDs[nm] == blk.EqIDs[p] {
		t.Fatal("unrelated column joined the class")
	}
}

func TestDateCoercion(t *testing.T) {
	blk := mustBind(t, `SELECT o_orderkey FROM orders WHERE o_orderdate >= '1995-01-01'`)
	bin := blk.Conjuncts[0].E.(*expr.Binary)
	c, ok := bin.R.(*expr.Const)
	if !ok || c.V.K.String() != "DATE" {
		t.Fatalf("date literal not coerced: %v", bin.R)
	}
	// Loose form too ('2007-1-1').
	blk2 := mustBind(t, `SELECT o_orderkey FROM orders WHERE o_orderdate > '1995-1-1'`)
	c2 := blk2.Conjuncts[0].E.(*expr.Binary).R.(*expr.Const)
	if c2.V.K.String() != "DATE" {
		t.Fatal("loose date literal not coerced")
	}
}

func TestAggregateBinding(t *testing.T) {
	blk := mustBind(t, `
		SELECT n_name, sum(s_acctbal), count(*) FROM supplier, nation
		WHERE s_nationkey = n_nationkey GROUP BY n_name`)
	if len(blk.Aggs) != 2 || blk.Aggs[0].Func != AggSum || blk.Aggs[1].Func != AggCountStar {
		t.Fatalf("aggs: %+v", blk.Aggs)
	}
	if len(blk.GroupBy) != 1 {
		t.Fatalf("group by: %d", len(blk.GroupBy))
	}
	sch := blk.OutputSchema()
	if sch.Cols[0].Name != "n_name" {
		t.Fatalf("output schema: %v", sch)
	}
}

func TestAggregateArithmeticOutput(t *testing.T) {
	blk := mustBind(t, `SELECT sum(l_extendedprice) / 7.0 FROM lineitem`)
	if len(blk.Aggs) != 1 || len(blk.GroupBy) != 0 {
		t.Fatalf("aggs=%d groupby=%d", len(blk.Aggs), len(blk.GroupBy))
	}
	// Output expression must be division over the post-agg schema.
	if _, ok := blk.Output[0].E.(*expr.Binary); !ok {
		t.Fatalf("output: %T", blk.Output[0].E)
	}
}

func TestUngroupedColumnRejected(t *testing.T) {
	if _, err := BindSQL(testCatalog(t),
		`SELECT n_name, s_name, count(*) FROM supplier, nation
		 WHERE s_nationkey = n_nationkey GROUP BY n_name`); err == nil ||
		!strings.Contains(err.Error(), "neither grouped nor aggregated") {
		t.Fatalf("ungrouped select item must be rejected, got %v", err)
	}
}

func TestDerivedTableBinding(t *testing.T) {
	blk := mustBind(t, `
		SELECT partkey, avail
		FROM (SELECT ps_partkey AS partkey, sum(ps_availqty) AS avail
		      FROM partsupp GROUP BY ps_partkey) a
		WHERE avail < 1000`)
	if len(blk.Rels) != 1 || blk.Rels[0].Sub == nil {
		t.Fatal("derived table not bound as sub-block")
	}
	inner := blk.Rels[0].Sub
	if len(inner.GroupBy) != 1 || len(inner.Aggs) != 1 {
		t.Fatalf("inner block: groupby=%d aggs=%d", len(inner.GroupBy), len(inner.Aggs))
	}
	// Equivalence must flow through the derived output: outer partkey col
	// shares a class with the inner ps_partkey.
	outerPK, _ := blk.Global.Resolve("a", "partkey")
	innerPK, _ := inner.Global.Resolve("partsupp", "ps_partkey")
	if blk.EqIDs[outerPK] != inner.EqIDs[innerPK] {
		t.Fatal("equivalence class must span the derived-table boundary")
	}
	// The aggregate output gets a fresh class.
	availCol, _ := blk.Global.Resolve("a", "avail")
	if blk.EqIDs[availCol] == blk.EqIDs[outerPK] {
		t.Fatal("aggregate output should not share the group-key class")
	}
}

func TestDecorrelation(t *testing.T) {
	blk := mustBind(t, `
		SELECT s_name FROM part, supplier, partsupp
		WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
		  AND ps_supplycost = (SELECT min(ps_supplycost) FROM partsupp, supplier
		       WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey)`)
	// The subquery becomes a 4th relation.
	if len(blk.Rels) != 4 {
		t.Fatalf("rels = %d, want 4 (part, supplier, partsupp, subquery)", len(blk.Rels))
	}
	sq := blk.Rels[3]
	if sq.Sub == nil || len(sq.Correlated) != 1 {
		t.Fatalf("subquery rel: sub=%v corr=%v", sq.Sub != nil, sq.Correlated)
	}
	// The inner block is grouped on the correlation attribute.
	if len(sq.Sub.GroupBy) != 1 || len(sq.Sub.Aggs) != 1 {
		t.Fatalf("inner: groupby=%d aggs=%d", len(sq.Sub.GroupBy), len(sq.Sub.Aggs))
	}
	// Inner output = [corr key, scalar].
	if len(sq.Sub.Output) != 2 {
		t.Fatalf("inner outputs = %d", len(sq.Sub.Output))
	}
	// Outer gains: a join conjunct on the correlation attr plus the
	// rewritten comparison on the scalar column (here `ps_supplycost =
	// min(...)`, itself an equi conjunct the optimizer may hash on), so at
	// least two conjuncts reference the subquery relation.
	refs := 0
	for _, c := range blk.Conjuncts {
		for _, r := range c.Rels {
			if r == 3 {
				refs++
			}
		}
	}
	if refs < 2 {
		t.Fatalf("expected ≥2 conjuncts referencing the subquery rel, got %d:\n%s", refs, blk)
	}
	// The correlation class spans blocks: outer p_partkey ≡ inner
	// ps_partkey.
	outerP, _ := blk.Global.Resolve("part", "p_partkey")
	innerPS, _ := sq.Sub.Global.Resolve("partsupp", "ps_partkey")
	if blk.EqIDs[outerP] != sq.Sub.EqIDs[innerPS] {
		t.Fatal("correlation equivalence class must span blocks")
	}
}

func TestDecorrelationMultiplePairs(t *testing.T) {
	// Q17-style with a single correlation.
	blk := mustBind(t, `
		SELECT sum(l_extendedprice) / 7.0 FROM lineitem, part
		WHERE p_partkey = l_partkey
		  AND l_quantity < (SELECT 0.2 * avg(l_quantity) FROM lineitem
		       WHERE l_partkey = p_partkey)`)
	sq := blk.Rels[2]
	if len(sq.Correlated) != 1 {
		t.Fatalf("correlations = %d", len(sq.Correlated))
	}
	// The scalar output is an expression (0.2 * avg), shifted past the
	// correlation group-by column.
	inner := sq.Sub
	scalarOut := inner.Output[len(inner.Output)-1].E
	if _, ok := scalarOut.(*expr.Binary); !ok {
		t.Fatalf("scalar output: %T", scalarOut)
	}
	cols := expr.CollectCols(scalarOut, nil)
	for _, c := range cols {
		if c < len(inner.GroupBy) {
			t.Fatal("scalar output references a group-by slot; shift failed")
		}
	}
}

func TestUnsupportedCorrelatedPredicates(t *testing.T) {
	cat := testCatalog(t)
	// Non-equality correlation.
	if _, err := BindSQL(cat, `
		SELECT p_name FROM part
		WHERE p_retailprice > (SELECT avg(ps_supplycost) FROM partsupp
		     WHERE ps_partkey < p_partkey)`); err == nil {
		t.Fatal("range correlation must be rejected")
	}
	// Multi-output scalar subquery.
	if _, err := BindSQL(cat, `
		SELECT p_name FROM part
		WHERE p_partkey = (SELECT ps_partkey FROM partsupp WHERE ps_partkey = p_partkey)`); err == nil {
		t.Fatal("non-aggregate scalar subquery must be rejected")
	}
}

func TestSelectStarExpansion(t *testing.T) {
	blk := mustBind(t, "SELECT * FROM region")
	if len(blk.Output) != 3 {
		t.Fatalf("star expansion = %d columns", len(blk.Output))
	}
}

func TestCloneIndependence(t *testing.T) {
	blk := mustBind(t, `
		SELECT s_name FROM supplier, partsupp
		WHERE s_suppkey = ps_suppkey AND s_nation = 'FRANCE'`)
	cp := blk.Clone()
	cp.Rels[0].Delayed = true
	cp.Rels[0].Site = 3
	cp.Conjuncts = cp.Conjuncts[:0]
	if blk.Rels[0].Delayed || blk.Rels[0].Site != 0 {
		t.Fatal("clone mutates original rels")
	}
	if len(blk.Conjuncts) == 0 {
		t.Fatal("clone shares conjunct slice")
	}
}

func TestBlockString(t *testing.T) {
	blk := mustBind(t, `SELECT s_name FROM supplier WHERE s_nation = 'FRANCE'`)
	if s := blk.String(); !strings.Contains(s, "supplier") {
		t.Fatalf("block description: %s", s)
	}
}

func TestAmbiguousColumnRejected(t *testing.T) {
	if _, err := BindSQL(testCatalog(t),
		`SELECT ps_partkey FROM partsupp ps1, partsupp ps2`); err == nil {
		t.Fatal("ambiguous column must be rejected")
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	blk := mustBind(t, `
		SELECT ps1.ps_suppkey FROM partsupp ps1, partsupp ps2
		WHERE ps1.ps_partkey = ps2.ps_partkey AND ps2.ps_availqty < 10`)
	if len(blk.Rels) != 2 {
		t.Fatalf("rels = %d", len(blk.Rels))
	}
	if blk.Rels[0].Alias != "ps1" || blk.Rels[1].Alias != "ps2" {
		t.Fatal("aliases lost")
	}
}

func TestAggFuncMetadata(t *testing.T) {
	if AggSum.String() != "sum" || AggCountStar.String() != "count(*)" {
		t.Fatal("agg names wrong")
	}
	if AggCount.ResultKind(0) != 1 { // KindInt
		t.Fatal("count must be integer")
	}
	spec := AggSpec{Func: AggAvg, Name: "a"}
	if spec.Kind().String() != "DECIMAL" {
		t.Fatal("avg must be decimal")
	}
}

package server

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/types"
)

// TestHostileLengths pins the fix for the uvarint-length overflow class: a
// 64-bit length near MaxUint64 used to convert to a negative int, slip past
// signed upper-bound checks, and panic in a slice expression or make().
// Every decoder must instead report a sticky protocol error.
func TestHostileLengths(t *testing.T) {
	huge := []uint64{1<<63 - 2, 1<<63 - 1, 1 << 63, math.MaxUint64}
	for _, u := range huge {
		pfx := binary.AppendUvarint(nil, u)
		payload := append(append([]byte{}, pfx...), "padding"...)

		p := payloadReader{buf: payload}
		if p.string(); p.err == nil {
			t.Fatalf("string() accepted length %d", u)
		}
		p = payloadReader{buf: payload}
		if p.schema(); p.err == nil {
			t.Fatalf("schema() accepted column count %d", u)
		}
		sum := appendSummary(nil, &Summary{})
		sum = sum[:len(sum)-1] // drop the encoded 0 incomplete-count
		p = payloadReader{buf: append(sum, pfx...)}
		if p.summary(); p.err == nil {
			t.Fatalf("summary() accepted incomplete count %d", u)
		}

		// Execute frame: statement id 1, then a hostile argument count.
		exec := binary.AppendUvarint(nil, 1)
		exec = append(exec, pfx...)
		if req := decodeRequest(frameExecute, exec); !req.bad {
			t.Fatalf("decodeRequest accepted %d execute args", u)
		}

		// KindString value with a hostile payload length.
		val := append([]byte{byte(types.KindString)}, pfx...)
		p = payloadReader{buf: val}
		if p.value(); p.err == nil {
			t.Fatalf("value() accepted string length %d", u)
		}
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []types.Value{
		types.Null(),
		types.Int(0),
		types.Int(-1),
		types.Int(math.MaxInt64),
		types.Int(math.MinInt64),
		types.Float(0),
		types.Float(3.14159),
		types.Float(math.Inf(-1)),
		types.Str(""),
		types.Str("BRASS"),
		types.Str("it's\x00\xffweird"),
		types.Date(9131),
		types.Bool(true),
		types.Bool(false),
	}
	var buf []byte
	for _, v := range vals {
		buf = appendValue(buf, v)
	}
	p := payloadReader{buf: buf}
	for i, want := range vals {
		got := p.value()
		if p.err != nil {
			t.Fatalf("value %d: decode error", i)
		}
		if got != want {
			t.Fatalf("value %d: %+v, want %+v", i, got, want)
		}
	}
	if p.off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", p.off, len(buf))
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	sch := &types.Schema{Cols: []types.Column{
		{Table: "n", Name: "n_name", Kind: types.KindString},
		{Table: "", Name: "count(*)", Kind: types.KindInt},
		{Table: "o", Name: "o_orderdate", Kind: types.KindDate},
	}}
	buf := appendSchema(nil, sch)
	p := payloadReader{buf: buf}
	got := p.schema()
	if p.err != nil || got == nil {
		t.Fatal("decode failed")
	}
	if len(got.Cols) != len(sch.Cols) {
		t.Fatalf("%d cols, want %d", len(got.Cols), len(sch.Cols))
	}
	for i := range sch.Cols {
		if got.Cols[i] != sch.Cols[i] {
			t.Fatalf("col %d: %+v, want %+v", i, got.Cols[i], sch.Cols[i])
		}
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	sum := &Summary{
		Rows: 42, DurationMicros: 1234, PeakStateBytes: 1 << 20,
		FiltersCreated: 3, FiltersInjected: 2, TuplesPruned: 999,
		PeakMemBytes: 5 << 20, SpillBytes: 7, SpillEvents: 1,
		Retries: 4, BreakerTransitions: 2, WastedBytes: 100,
		Incomplete: []IncompleteTable{
			{Table: "partsupp", Site: 1, Attempts: 3, Cause: "link down"},
		},
	}
	buf := appendSummary(nil, sum)
	p := payloadReader{buf: buf}
	got := p.summary()
	if p.err != nil || got == nil {
		t.Fatal("decode failed")
	}
	if got.Rows != sum.Rows || got.DurationMicros != sum.DurationMicros ||
		got.TuplesPruned != sum.TuplesPruned || len(got.Incomplete) != 1 ||
		got.Incomplete[0] != sum.Incomplete[0] {
		t.Fatalf("summary mismatch: %+v vs %+v", got, sum)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var w bytes.Buffer
	payload := []byte("hello frames")
	if err := writeFrame(&w, frameQuery, payload); err != nil {
		t.Fatal(err)
	}
	if err := writeFrameParts(&w, frameRowBatch, []byte{1, 2}, []byte{3}); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readFrame(&w, DefaultMaxFrame)
	if err != nil || typ != frameQuery || !bytes.Equal(got, payload) {
		t.Fatalf("frame 1: typ=%#x payload=%q err=%v", typ, got, err)
	}
	typ, got, err = readFrame(&w, DefaultMaxFrame)
	if err != nil || typ != frameRowBatch || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("frame 2: typ=%#x payload=%q err=%v", typ, got, err)
	}
}

func TestFrameBound(t *testing.T) {
	var w bytes.Buffer
	if err := writeFrame(&w, frameQuery, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readFrame(&w, 1024); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// FuzzPayloadReader feeds arbitrary bytes through every decoder: none may
// panic or read out of bounds, and any value that decodes cleanly must
// survive an encode/decode round trip (overlong varints mean the raw bytes
// themselves need not be canonical).
func FuzzPayloadReader(f *testing.F) {
	f.Add(appendValue(nil, types.Int(7)))
	f.Add(appendValue(nil, types.Str("x")))
	f.Add(appendSchema(nil, &types.Schema{Cols: []types.Column{{Name: "a", Kind: types.KindInt}}}))
	f.Add(appendSummary(nil, &Summary{Rows: 1}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	// Lengths near 2^63/2^64: negative after an unchecked int conversion.
	f.Add(binary.AppendUvarint(nil, 1<<63-2))
	f.Add(binary.AppendUvarint(nil, 1<<63))
	f.Add(binary.AppendUvarint(nil, math.MaxUint64))
	f.Add(append(binary.AppendUvarint(nil, 1), binary.AppendUvarint(nil, 1<<63)...))
	f.Add(append([]byte{byte(types.KindString)}, binary.AppendUvarint(nil, 1<<63)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		{
			p := payloadReader{buf: data}
			v := p.value()
			if p.err == nil {
				re := payloadReader{buf: appendValue(nil, v)}
				got := re.value()
				if re.err != nil || got != v {
					t.Fatalf("value %+v did not round-trip: %+v (err %v)", v, got, re.err)
				}
			}
		}
		{
			p := payloadReader{buf: data}
			p.schema()
		}
		{
			p := payloadReader{buf: data}
			p.summary()
		}
		{
			p := payloadReader{buf: data}
			p.string()
			p.uvarint()
			p.varint()
			p.byte()
			p.take(3)
		}
		// The server-side request decoders must be panic-free on arbitrary
		// payloads too — they run in the read loop, which has no recover.
		for _, typ := range []byte{frameQuery, framePrepare, frameExecute, frameCloseStmt, frameHello} {
			decodeRequest(typ, data)
		}
	})
}

// FuzzReadFrame ensures a hostile stream cannot crash the frame layer or
// defeat the size bound.
func FuzzReadFrame(f *testing.F) {
	var w bytes.Buffer
	writeFrame(&w, frameHello, []byte(protoMagic))
	f.Add(w.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bytes.NewReader(data), 1<<16)
		if err == nil && len(payload) > 1<<16 {
			t.Fatalf("frame type %#x exceeded bound: %d bytes", typ, len(payload))
		}
	})
}

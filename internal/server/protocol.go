package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/types"
)

// Protocol constants. A frame is a 4-byte big-endian payload length, one
// type byte, and the payload; see the package comment for the full frame
// contract.
const (
	// protoMagic opens every connection; a server greeted with anything
	// else drops the connection without a reply (it is not speaking our
	// protocol, so an error frame would be noise on its wire).
	protoMagic = "SIPW"

	// ProtoVersion is the newest protocol revision this package speaks.
	// The handshake negotiates min(client max, server max); version 0 is
	// never valid, so a client older than MinProtoVersion is refused with
	// an error frame.
	ProtoVersion = 1

	// MinProtoVersion is the oldest revision the server still accepts.
	MinProtoVersion = 1

	// DefaultMaxFrame bounds a single frame's payload. Row batches are cut
	// well below this; the bound exists so a corrupt or hostile length
	// prefix cannot make either side allocate gigabytes.
	DefaultMaxFrame = 16 << 20
)

// Frame types. The high bit marks server→client frames.
const (
	frameHello     = 0x01 // magic, max version, tenant, session options
	frameQuery     = 0x02 // ad-hoc SQL text
	framePrepare   = 0x03 // SQL text to compile
	frameExecute   = 0x04 // statement id + arguments
	frameCloseStmt = 0x05 // statement id
	frameCancel    = 0x06 // cancel the in-flight query (out of band)
	frameQuit      = 0x07 // clean session end

	frameHelloOK  = 0x81 // negotiated version + server banner
	frameError    = 0x82 // code + message; terminates the current exchange
	frameStmtOK   = 0x83 // statement id, param count, result schema
	frameSchema   = 0x84 // result schema; opens a row stream
	frameRowBatch = 0x85 // n rows × schema-width values
	frameDone     = 0x86 // execution summary; closes a row stream
)

// Error codes carried by frameError. Codes are part of the wire contract;
// messages are human-readable detail.
const (
	errCodePlan     = "plan"     // parse/bind/optimize failed
	errCodeExec     = "exec"     // execution failed
	errCodeSource   = "source"   // a source stayed dead (fail-fast mode)
	errCodeMemory   = "memory"   // memory budget too small to run
	errCodeCanceled = "canceled" // query canceled (client Cancel or disconnect)
	errCodeProto    = "protocol" // malformed or out-of-sequence frame
	errCodeShutdown = "shutdown" // server is draining; no new queries
	errCodeVersion  = "version"  // handshake version mismatch
)

// frameHeaderLen is the fixed prefix: 4-byte payload length + 1 type byte.
const frameHeaderLen = 5

// writeFrame appends a complete frame to w. The payload must already be
// encoded; writeFrame adds the length/type header.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// writeFrameParts writes one frame whose payload is the concatenation of
// parts, without joining them first — the row-batch path prepends its
// varint row count to the accumulated row bytes this way.
func writeFrameParts(w io.Writer, typ byte, parts ...[]byte) error {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(total))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, p := range parts {
		if _, err := w.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame from r, enforcing the payload bound.
func readFrame(r io.Reader, maxFrame int) (typ byte, payload []byte, err error) {
	typ, payload, _, err = readFrameInto(r, maxFrame, nil)
	return typ, payload, err
}

// readFrameInto is readFrame with a caller-owned scratch buffer: the payload
// slice aliases scratch (grown as needed and returned). Safe only when the
// caller fully consumes or copies the payload before the next read — the
// client's strictly sequential exchanges qualify; the server's read loop
// does not (it may read a pipelined frame while the previous request is
// still being executed).
func readFrameInto(r io.Reader, maxFrame int, scratch []byte) (typ byte, payload, grown []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, scratch, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if int64(n) > int64(maxFrame) {
		return 0, nil, scratch, fmt.Errorf("server: frame of %d bytes exceeds the %d-byte bound", n, maxFrame)
	}
	if uint64(cap(scratch)) < uint64(n) {
		scratch = make([]byte, n)
	}
	payload = scratch[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, scratch, err
	}
	return hdr[4], payload, scratch, nil
}

// ---- payload encoding ------------------------------------------------------
//
// Payloads are built from three primitives: unsigned varints, length-
// prefixed strings, and tagged values (one kind byte, then the kind's
// natural encoding). Appending into a caller-owned buffer keeps the row
// stream allocation-free once the per-session scratch buffer has grown to
// its working size.

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendValue encodes one tagged value.
func appendValue(b []byte, v types.Value) []byte {
	b = append(b, byte(v.K))
	switch v.K {
	case types.KindNull:
	case types.KindInt, types.KindDate, types.KindBool:
		b = appendVarint(b, v.I)
	case types.KindFloat:
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(v.F))
	case types.KindString:
		b = appendString(b, v.S)
	}
	return b
}

// appendSchema encodes a result schema: column count, then per column the
// qualifier, name, and kind.
func appendSchema(b []byte, sch *types.Schema) []byte {
	if sch == nil {
		return appendUvarint(b, 0)
	}
	b = appendUvarint(b, uint64(len(sch.Cols)))
	for _, c := range sch.Cols {
		b = appendString(b, c.Table)
		b = appendString(b, c.Name)
		b = append(b, byte(c.Kind))
	}
	return b
}

// payloadReader is a sticky-error cursor over one frame's payload. Every
// decode helper checks err first, so a malformed payload degrades to a
// single "short payload" error instead of a panic.
type payloadReader struct {
	buf []byte
	off int
	err error
}

func (p *payloadReader) fail() {
	if p.err == nil {
		p.err = fmt.Errorf("server: short or malformed frame payload")
	}
}

func (p *payloadReader) uvarint() uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.buf[p.off:])
	if n <= 0 {
		p.fail()
		return 0
	}
	p.off += n
	return v
}

func (p *payloadReader) varint() int64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Varint(p.buf[p.off:])
	if n <= 0 {
		p.fail()
		return 0
	}
	p.off += n
	return v
}

func (p *payloadReader) byte() byte {
	if p.err != nil {
		return 0
	}
	if p.off >= len(p.buf) {
		p.fail()
		return 0
	}
	b := p.buf[p.off]
	p.off++
	return b
}

// take returns the next n raw bytes (the handshake magic).
func (p *payloadReader) take(n int) []byte {
	if p.err != nil {
		return nil
	}
	if p.off+n > len(p.buf) {
		p.fail()
		return nil
	}
	b := p.buf[p.off : p.off+n]
	p.off += n
	return b
}

// length decodes a uvarint that will be used as an element count or byte
// length, rejecting anything above max while still a uint64 — converting
// first would let a hostile 64-bit value wrap to a negative int and slip
// past a signed bound into a panicking make() or slice expression.
func (p *payloadReader) length(max int) int {
	u := p.uvarint()
	if p.err != nil {
		return 0
	}
	if u > uint64(max) {
		p.fail()
		return 0
	}
	return int(u)
}

func (p *payloadReader) string() string {
	u := p.uvarint()
	if p.err != nil {
		return ""
	}
	// Compare against the bytes remaining after the varint, as a uint64:
	// converting u to int first would let a 64-bit length wrap negative.
	if u > uint64(len(p.buf)-p.off) {
		p.fail()
		return ""
	}
	n := int(u)
	s := string(p.buf[p.off : p.off+n])
	p.off += n
	return s
}

func (p *payloadReader) value() types.Value {
	k := types.Kind(p.byte())
	switch k {
	case types.KindNull:
		return types.Null()
	case types.KindInt, types.KindDate, types.KindBool:
		return types.Value{K: k, I: p.varint()}
	case types.KindFloat:
		if p.err != nil || p.off+8 > len(p.buf) {
			p.fail()
			return types.Null()
		}
		f := math.Float64frombits(binary.BigEndian.Uint64(p.buf[p.off:]))
		p.off += 8
		return types.Float(f)
	case types.KindString:
		return types.Str(p.string())
	default:
		p.fail()
		return types.Null()
	}
}

func (p *payloadReader) schema() *types.Schema {
	n := p.length(1 << 16)
	if p.err != nil {
		return nil
	}
	cols := make([]types.Column, n)
	for i := range cols {
		cols[i].Table = p.string()
		cols[i].Name = p.string()
		cols[i].Kind = types.Kind(p.byte())
	}
	if p.err != nil {
		return nil
	}
	return &types.Schema{Cols: cols}
}

// Summary is the execution footer carried by a frameDone: the row count,
// server-side duration, the result counters a client-side footer needs, and
// the list of sources a degraded (partial) result abandoned.
type Summary struct {
	Rows               int64
	DurationMicros     int64
	PeakStateBytes     int64
	FiltersCreated     int64
	FiltersInjected    int64
	TuplesPruned       int64
	PeakMemBytes       int64
	SpillBytes         int64
	SpillEvents        int64
	Retries            int64
	BreakerTransitions int64
	WastedBytes        int64
	Incomplete         []IncompleteTable
}

// IncompleteTable names one source a partial result is missing, mirroring
// sip.SourceError across the wire.
type IncompleteTable struct {
	Table    string
	Site     int
	Attempts int
	Cause    string
}

func appendSummary(b []byte, s *Summary) []byte {
	b = appendVarint(b, s.Rows)
	b = appendVarint(b, s.DurationMicros)
	b = appendVarint(b, s.PeakStateBytes)
	b = appendVarint(b, s.FiltersCreated)
	b = appendVarint(b, s.FiltersInjected)
	b = appendVarint(b, s.TuplesPruned)
	b = appendVarint(b, s.PeakMemBytes)
	b = appendVarint(b, s.SpillBytes)
	b = appendVarint(b, s.SpillEvents)
	b = appendVarint(b, s.Retries)
	b = appendVarint(b, s.BreakerTransitions)
	b = appendVarint(b, s.WastedBytes)
	b = appendUvarint(b, uint64(len(s.Incomplete)))
	for _, t := range s.Incomplete {
		b = appendString(b, t.Table)
		b = appendVarint(b, int64(t.Site))
		b = appendVarint(b, int64(t.Attempts))
		b = appendString(b, t.Cause)
	}
	return b
}

func (p *payloadReader) summary() *Summary {
	s := &Summary{
		Rows:               p.varint(),
		DurationMicros:     p.varint(),
		PeakStateBytes:     p.varint(),
		FiltersCreated:     p.varint(),
		FiltersInjected:    p.varint(),
		TuplesPruned:       p.varint(),
		PeakMemBytes:       p.varint(),
		SpillBytes:         p.varint(),
		SpillEvents:        p.varint(),
		Retries:            p.varint(),
		BreakerTransitions: p.varint(),
		WastedBytes:        p.varint(),
	}
	n := p.length(1 << 16)
	if p.err != nil {
		return nil
	}
	for i := 0; i < n; i++ {
		s.Incomplete = append(s.Incomplete, IncompleteTable{
			Table:    p.string(),
			Site:     int(p.varint()),
			Attempts: int(p.varint()),
			Cause:    p.string(),
		})
	}
	if p.err != nil {
		return nil
	}
	return s
}

package server

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"

	sip "repro"
)

// request is one client frame awaiting the session goroutine, decoded by
// the read loop so the frame payload buffer can be reused across requests.
// Cancel and Quit never become requests: the read loop services them
// directly. bad marks a frame that failed to decode (protocol error).
type request struct {
	typ  byte
	sql  string      // Query, Prepare
	id   uint64      // Execute, CloseStmt
	args []sip.Value // Execute
	bad  bool
}

// decodeRequest decodes one request frame into owned data: every string and
// value is copied out of payload, which the read loop overwrites on its
// next read.
func decodeRequest(typ byte, payload []byte) request {
	p := payloadReader{buf: payload}
	req := request{typ: typ}
	switch typ {
	case frameQuery, framePrepare:
		req.sql = p.string()
	case frameExecute:
		req.id = p.uvarint()
		nargs := p.length(1 << 16)
		if p.err != nil {
			req.bad = true
			return req
		}
		req.args = make([]sip.Value, nargs)
		for i := range req.args {
			req.args[i] = p.value()
		}
	case frameCloseStmt:
		req.id = p.uvarint()
	default:
		req.bad = true
		return req
	}
	if p.err != nil {
		req.bad = true
	}
	return req
}

// session is one connection's state: the negotiated identity and options,
// the prepared-statement table, and the in-flight query's cancel hook. Two
// goroutines share it — the session goroutine (handles requests, writes
// every response frame) and the read loop (decodes frames, services Cancel
// out of band) — so the cancel hook is the only mutable state they share,
// and it is mutex-guarded.
type session struct {
	srv  *Server
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	tenant  string
	version int
	opts    sip.Options

	stmts  map[uint64]*sip.Stmt
	nextID uint64

	// scratch buffers amortize frame encoding across the session: row
	// batches and response payloads reuse them, so the steady-state row
	// stream does not allocate per batch.
	scratch []byte
	head    []byte

	// done closes when the session goroutine exits, releasing a read loop
	// blocked on the request channel (drain or protocol-error exits leave
	// the final request undelivered).
	done chan struct{}

	mu     sync.Mutex
	cancel context.CancelFunc // in-flight query, nil when idle
}

func newSession(s *Server, conn net.Conn) *session {
	return &session{
		srv:  s,
		conn: conn,
		br:   bufio.NewReaderSize(conn, 8<<10),
		// A small write buffer keeps backpressure honest: a stalled client
		// blocks the session goroutine after at most a few KiB of slack,
		// which stops the cursor, which stalls only that query's pipeline.
		bw:    bufio.NewWriterSize(conn, 4<<10),
		stmts: map[uint64]*sip.Stmt{},
		done:  make(chan struct{}),
	}
}

// run drives the session to completion; the caller owns deregistration.
func (sess *session) run() {
	defer sess.conn.Close()
	defer close(sess.done)
	if !sess.handshake() {
		return
	}
	reqCh := make(chan request)
	go sess.readLoop(reqCh)

	for {
		select {
		case req, ok := <-reqCh:
			if !ok {
				return // client closed, Quit, or read error
			}
			if !sess.handle(req) {
				return
			}
		case <-sess.srv.drainCh:
			// Draining while idle: close now. A request mid-handle never
			// reaches this select, so in-flight statements finish first.
			return
		}
	}
}

// handshake performs the Hello/HelloOK exchange. A connection that is not
// speaking the protocol (bad magic, malformed frame) is dropped without a
// reply; a well-formed but too-old client gets a "version" error frame.
func (sess *session) handshake() bool {
	typ, payload, err := readFrame(sess.br, sess.srv.cfg.MaxFrameBytes)
	if err != nil || typ != frameHello {
		return false
	}
	p := payloadReader{buf: payload}
	magic := p.take(len(protoMagic))
	clientMax := p.uvarint()
	tenant := p.string()
	sched := p.string()
	memBudget := p.varint()
	mode := p.byte()
	if p.err != nil || string(magic) != protoMagic {
		return false
	}
	if clientMax < MinProtoVersion {
		sess.writeError(errCodeVersion, "client protocol version too old")
		sess.bw.Flush()
		return false
	}
	sess.version = ProtoVersion
	if clientMax < uint64(sess.version) {
		sess.version = int(clientMax)
	}
	sess.tenant = tenant

	// Session options overlay the server's base options: the client picks
	// its scheduler, memory budget, and failure mode; plan-shaping options
	// stay server-controlled.
	sess.opts = sess.srv.cfg.BaseOptions
	if sched != "" {
		sess.opts.Scheduler = sched
	}
	if memBudget > 0 {
		sess.opts.MemBudget = memBudget
	}
	if mode == 1 {
		sess.opts.OnSourceFailure = sip.PartialOnSourceError
	}

	buf := appendUvarint(sess.scratch[:0], uint64(sess.version))
	buf = appendString(buf, sess.srv.cfg.Banner)
	sess.scratch = buf
	if err := writeFrame(sess.bw, frameHelloOK, buf); err != nil {
		return false
	}
	return sess.bw.Flush() == nil
}

// readLoop decodes frames off the wire and feeds them to the session
// goroutine. Cancel is serviced here — while the session goroutine streams
// a result it never reads the wire, so out-of-band cancellation must not
// queue behind it. A read error (client disconnect) cancels the in-flight
// query the same way, so an abandoned query releases its admission slot and
// memory grant promptly.
func (sess *session) readLoop(reqCh chan<- request) {
	defer close(reqCh)
	var scratch []byte
	for {
		typ, payload, grown, err := readFrameInto(sess.br, sess.srv.cfg.MaxFrameBytes, scratch)
		scratch = grown
		if err != nil {
			sess.cancelInflight()
			return
		}
		switch typ {
		case frameCancel:
			sess.cancelInflight()
		case frameQuit:
			return
		default:
			select {
			case reqCh <- decodeRequest(typ, payload):
			case <-sess.done:
				return
			}
		}
	}
}

func (sess *session) setCancel(c context.CancelFunc) {
	sess.mu.Lock()
	sess.cancel = c
	sess.mu.Unlock()
}

func (sess *session) cancelInflight() {
	sess.mu.Lock()
	c := sess.cancel
	sess.mu.Unlock()
	if c != nil {
		c()
	}
}

// handle dispatches one request frame. It returns false when the session
// must close (protocol error or dead connection); response-position errors
// keep the session alive.
func (sess *session) handle(req request) bool {
	if req.bad {
		return sess.protoError()
	}
	switch req.typ {
	case frameQuery:
		return sess.runQuery(req.sql, nil, nil)
	case framePrepare:
		return sess.prepare(req.sql)
	case frameExecute:
		stmt, ok := sess.stmts[req.id]
		if !ok {
			return sess.writeError(errCodeProto, "unknown statement id") && sess.bw.Flush() == nil
		}
		return sess.runQuery(stmt.SQL(), stmt, req.args)
	case frameCloseStmt:
		delete(sess.stmts, req.id)
		buf := appendSummary(sess.scratch[:0], &Summary{})
		sess.scratch = buf
		return writeFrame(sess.bw, frameDone, buf) == nil && sess.bw.Flush() == nil
	default:
		return sess.protoError()
	}
}

// protoError reports a malformed or out-of-sequence frame and closes the
// session: once framing trust is lost, resynchronizing is guesswork.
func (sess *session) protoError() bool {
	sess.writeError(errCodeProto, "malformed frame")
	sess.bw.Flush()
	return false
}

func (sess *session) prepare(sql string) bool {
	if sess.srv.isDraining() {
		return sess.writeErrorFlush(errCodeShutdown, errShuttingDown.Error())
	}
	stmt, err := sess.srv.eng.PrepareWithOptions(sess.srv.baseCtx, sql, sess.opts)
	if err != nil {
		return sess.writeErrorFlush(errCodePlan, err.Error())
	}
	sess.nextID++
	id := sess.nextID
	sess.stmts[id] = stmt
	buf := appendUvarint(sess.scratch[:0], id)
	buf = appendUvarint(buf, uint64(stmt.NumParams()))
	buf = appendSchema(buf, stmt.Schema())
	sess.scratch = buf
	return writeFrame(sess.bw, frameStmtOK, buf) == nil && sess.bw.Flush() == nil
}

// runQuery admits, executes, and streams one statement. stmt is nil for
// ad-hoc text queries. The bool result follows handle's contract.
func (sess *session) runQuery(sql string, stmt *sip.Stmt, args []sip.Value) bool {
	srv := sess.srv
	if srv.isDraining() {
		return sess.writeErrorFlush(errCodeShutdown, errShuttingDown.Error())
	}
	ctx, cancel := context.WithCancel(srv.baseCtx)
	defer cancel()
	sess.setCancel(cancel)
	defer sess.setCancel(nil)

	// Tenant quota first, engine admission second: a tenant at its cap
	// queues here without holding an engine slot or memory grant.
	release, err := srv.quotas.acquire(ctx, sess.tenant, func() {
		srv.metrics.QuotaWaits.Add(1)
	})
	if err != nil {
		srv.metrics.QueriesCanceled.Add(1)
		return sess.writeErrorFlush(errCodeCanceled, "canceled while queued for tenant quota")
	}
	defer release()

	srv.metrics.QueriesStarted.Add(1)
	var rows *sip.Rows
	if stmt != nil {
		rows, err = stmt.QueryStream(ctx, args...)
	} else {
		rows, err = srv.eng.QueryStream(ctx, sql, sess.opts)
	}
	if err != nil {
		code, msg := classifyError(err, errCodePlan)
		sess.countOutcome(code)
		return sess.writeErrorFlush(code, msg)
	}
	defer rows.Close()
	return sess.streamRows(rows)
}

// streamRows encodes the cursor straight into wire frames: Schema, row
// batches as rows arrive, then Done or Error. Nothing is materialized — a
// batch lives only in the session scratch buffer between cuts, and a
// blocked conn.Write stops the Next loop, backpressuring exactly this
// query's pipeline.
func (sess *session) streamRows(rows *sip.Rows) bool {
	srv := sess.srv
	// The schema frame is written but not flushed: a small result ships
	// schema, rows, and summary in one conn.Write instead of three — on a
	// loopback serving workload the per-query syscalls are a measurable
	// share of the round trip. Mid-stream batches still flush eagerly so a
	// long result streams at batch granularity.
	buf := appendSchema(sess.scratch[:0], rows.Schema())
	if writeFrame(sess.bw, frameSchema, buf) != nil {
		sess.countOutcome(errCodeCanceled)
		return false
	}

	const cutBytes = 64 << 10
	batchRows := srv.cfg.BatchRows
	var sent int64
	buf = buf[:0]
	n := 0
	writeBatch := func(flush bool) bool {
		if n == 0 {
			return true
		}
		sess.head = appendUvarint(sess.head[:0], uint64(n))
		if writeFrameParts(sess.bw, frameRowBatch, sess.head, buf) != nil {
			return false
		}
		if flush && sess.bw.Flush() != nil {
			return false
		}
		srv.metrics.BatchesSent.Add(1)
		srv.metrics.RowsSent.Add(int64(n))
		srv.metrics.BytesSent.Add(int64(frameHeaderLen + len(sess.head) + len(buf)))
		sent += int64(n)
		buf = buf[:0]
		n = 0
		return true
	}

	for rows.Next() {
		for _, v := range rows.Row() {
			buf = appendValue(buf, v)
		}
		n++
		if n >= batchRows || len(buf) >= cutBytes {
			if !writeBatch(true) {
				sess.scratch = buf
				sess.countOutcome(errCodeCanceled)
				return false
			}
		}
	}
	// The final partial batch rides in the same flush as Done (or Error).
	ok := writeBatch(false)
	sess.scratch = buf
	if !ok {
		sess.countOutcome(errCodeCanceled)
		return false
	}

	if err := rows.Err(); err != nil {
		code, msg := classifyError(err, errCodeExec)
		sess.countOutcome(code)
		return sess.writeErrorFlush(code, msg)
	}

	res := rows.Result()
	srv.metrics.QueriesOK.Add(1)
	srv.metrics.addResult(res)
	sum := wireSummary(sent, res)
	out := appendSummary(sess.scratch[:0], sum)
	sess.scratch = out
	return writeFrame(sess.bw, frameDone, out) == nil && sess.bw.Flush() == nil
}

// countOutcome bumps the failure counter matching a terminal error code.
func (sess *session) countOutcome(code string) {
	if code == errCodeCanceled {
		sess.srv.metrics.QueriesCanceled.Add(1)
	} else {
		sess.srv.metrics.QueriesFailed.Add(1)
	}
}

func (sess *session) writeError(code, msg string) bool {
	buf := appendString(sess.scratch[:0], code)
	buf = appendString(buf, msg)
	sess.scratch = buf
	return writeFrame(sess.bw, frameError, buf) == nil
}

func (sess *session) writeErrorFlush(code, msg string) bool {
	return sess.writeError(code, msg) && sess.bw.Flush() == nil
}

// classifyError maps an engine error to a wire error code; fallback is the
// code for errors with no more specific class (plan-time vs execution).
func classifyError(err error, fallback string) (code, msg string) {
	var srcErr *sip.SourceError
	var budErr *sip.BudgetError
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return errCodeCanceled, err.Error()
	case errors.As(err, &srcErr):
		return errCodeSource, err.Error()
	case errors.As(err, &budErr):
		return errCodeMemory, err.Error()
	default:
		return fallback, err.Error()
	}
}

// wireSummary folds a finished query's Result into the Done payload.
func wireSummary(rows int64, res *sip.Result) *Summary {
	s := &Summary{Rows: rows}
	if res == nil {
		return s
	}
	s.DurationMicros = res.Duration.Microseconds()
	s.PeakStateBytes = res.PeakStateBytes
	s.FiltersCreated = res.FiltersCreated
	s.FiltersInjected = res.FiltersInjected
	s.TuplesPruned = res.TuplesPruned
	s.PeakMemBytes = res.PeakMemBytes
	s.SpillBytes = res.SpillBytes
	s.SpillEvents = res.SpillEvents
	s.Retries = res.Retries
	s.BreakerTransitions = res.BreakerTransitions
	s.WastedBytes = res.WastedBytes
	for _, se := range res.IncompleteTables {
		s.Incomplete = append(s.Incomplete, IncompleteTable{
			Table:    se.Table,
			Site:     se.Site,
			Attempts: se.Attempts,
			Cause:    se.Cause.Error(),
		})
	}
	return s
}

package server

import (
	"context"
	"sync"
)

// tenantQuotas enforces per-tenant concurrent-query caps. The quota is the
// outermost admission layer: a session acquires its tenant's slot before
// the engine's MaxConcurrentQueries semaphore and memory-governor grant, so
// a tenant that floods the server queues behind its own cap while other
// tenants' queries keep reaching the engine. Slots are plain buffered
// channels, created lazily per tenant; acquisition is abandoned cleanly
// when the query's context fires (client cancel, disconnect, or forced
// shutdown).
type tenantQuotas struct {
	def int            // default cap (<=0: unlimited)
	per map[string]int // per-tenant overrides

	mu   sync.Mutex
	sems map[string]chan struct{}
}

func newTenantQuotas(def int, per map[string]int) *tenantQuotas {
	q := &tenantQuotas{def: def, sems: map[string]chan struct{}{}}
	if len(per) > 0 {
		q.per = make(map[string]int, len(per))
		for k, v := range per {
			q.per[k] = v
		}
	}
	return q
}

// limit returns the tenant's cap; <= 0 means unlimited.
func (q *tenantQuotas) limit(tenant string) int {
	if v, ok := q.per[tenant]; ok {
		return v
	}
	return q.def
}

// acquire blocks until the tenant has a free slot (or ctx fires) and
// returns the release func. Unlimited tenants return a no-op immediately.
// onWait fires once, before blocking, when the tenant is at its cap — the
// metrics layer counts those as quota waits while they are still queued.
func (q *tenantQuotas) acquire(ctx context.Context, tenant string, onWait func()) (release func(), err error) {
	n := q.limit(tenant)
	if n <= 0 {
		return func() {}, nil
	}
	q.mu.Lock()
	sem, ok := q.sems[tenant]
	if !ok {
		sem = make(chan struct{}, n)
		q.sems[tenant] = sem
	}
	q.mu.Unlock()

	select {
	case sem <- struct{}{}:
		return func() { <-sem }, nil
	default:
	}
	// Slow path: the tenant is at its cap.
	if onWait != nil {
		onWait()
	}
	select {
	case sem <- struct{}{}:
		return func() { <-sem }, nil
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
}

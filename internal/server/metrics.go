package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// serveMetricsText renders the flat counter set, one `name value` line per
// counter, in a stable order — trivially scrapable and diffable.
func (s *Server) serveMetricsText(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, c := range s.counters() {
		fmt.Fprintf(w, "%s %d\n", c.name, c.value)
	}
}

// statsSnapshot is the /stats JSON shape: the same counters as /metrics
// plus the structured views a flat counter cannot carry (the slow-query
// log with its statement texts).
type statsSnapshot struct {
	Counters    map[string]int64 `json:"counters"`
	SlowQueries []slowQueryJSON  `json:"slow_queries"`
}

type slowQueryJSON struct {
	SQL      string    `json:"sql"`
	Duration string    `json:"duration"`
	At       time.Time `json:"at"`
}

func (s *Server) serveStatsJSON(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	snap := statsSnapshot{Counters: map[string]int64{}, SlowQueries: []slowQueryJSON{}}
	for _, c := range s.counters() {
		snap.Counters[c.name] = c.value
	}
	for _, q := range s.eng.SlowQueries() {
		snap.SlowQueries = append(snap.SlowQueries, slowQueryJSON{
			SQL:      q.SQL,
			Duration: q.Duration.String(),
			At:       q.At,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}

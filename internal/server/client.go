package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	sip "repro"
)

// WireError is a server-reported error decoded from an Error frame. Code is
// machine-readable (see the package comment); Msg is the server's detail.
type WireError struct {
	Code string
	Msg  string
}

func (e *WireError) Error() string { return fmt.Sprintf("server: %s: %s", e.Code, e.Msg) }

// Is lets callers keep their local-engine error handling: a "canceled" wire
// error matches errors.Is(err, context.Canceled).
func (e *WireError) Is(target error) bool {
	return target == context.Canceled && e.Code == errCodeCanceled
}

// DialConfig carries the client side of the handshake: the tenant identity
// the server meters quotas by, and the session execution options.
type DialConfig struct {
	Tenant    string
	Scheduler string
	MemBudget int64
	// Partial selects PartialOnSourceError for the session: queries degrade
	// to partial results (with incomplete-table warnings in the summary)
	// instead of failing when a source stays dead.
	Partial bool
	// MaxFrameBytes bounds inbound frames (default DefaultMaxFrame).
	MaxFrameBytes int
}

// Client is a wire-protocol connection to a Server. A Client is safe for
// use from one request goroutine at a time — the protocol itself is
// sequential per connection — plus concurrent Cancel deliveries, which the
// write mutex serializes. Open a Client per concurrent query.
type Client struct {
	conn     net.Conn
	br       *bufio.Reader
	version  int
	maxFrame int

	wmu sync.Mutex // serializes frame writes (Cancel is cross-goroutine)
	bw  *bufio.Writer

	// rbuf and sbuf are per-exchange scratch: the protocol is strictly
	// sequential per connection and every decoded field copies out of the
	// frame payload, so one read buffer and one request-encode buffer are
	// reused for the connection's lifetime. rbuf is owned by whichever
	// cursor or call currently holds the read side (the busy flag); sbuf by
	// the request sender.
	rbuf []byte
	sbuf []byte

	mu     sync.Mutex
	busy   bool // an unfinished Rows owns the read side
	closed bool
}

// readFrame reads one frame into the connection's reusable buffer. The
// returned payload is valid until the next readFrame call.
func (c *Client) readFrame() (byte, []byte, error) {
	typ, payload, grown, err := readFrameInto(c.br, c.maxFrame, c.rbuf)
	c.rbuf = grown
	return typ, payload, err
}

// Dial connects to a server over TCP and performs the handshake.
func Dial(addr string, cfg DialConfig) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient performs the handshake over an existing connection (tests use
// net.Pipe ends). It takes ownership of conn on success.
func NewClient(conn net.Conn, cfg DialConfig) (*Client, error) {
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = DefaultMaxFrame
	}
	c := &Client{
		conn:     conn,
		br:       bufio.NewReaderSize(conn, 32<<10),
		bw:       bufio.NewWriterSize(conn, 8<<10),
		maxFrame: cfg.MaxFrameBytes,
	}
	buf := append([]byte(nil), protoMagic...)
	buf = appendUvarint(buf, ProtoVersion)
	buf = appendString(buf, cfg.Tenant)
	buf = appendString(buf, cfg.Scheduler)
	buf = appendVarint(buf, cfg.MemBudget)
	mode := byte(0)
	if cfg.Partial {
		mode = 1
	}
	buf = append(buf, mode)
	if err := c.send(frameHello, buf); err != nil {
		return nil, err
	}
	typ, payload, err := c.readFrame()
	if err != nil {
		return nil, fmt.Errorf("server: handshake: %w", err)
	}
	switch typ {
	case frameHelloOK:
		p := payloadReader{buf: payload}
		c.version = p.length(1 << 16)
		p.string() // banner
		if p.err != nil {
			return nil, fmt.Errorf("server: malformed HelloOK")
		}
		return c, nil
	case frameError:
		return nil, decodeError(payload)
	default:
		return nil, fmt.Errorf("server: unexpected handshake frame 0x%02x", typ)
	}
}

// ProtoVersion returns the negotiated protocol version.
func (c *Client) ProtoVersion() int { return c.version }

// send writes one frame and flushes, under the write mutex.
func (c *Client) send(typ byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := writeFrame(c.bw, typ, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// sendCancel is fired by the context watcher; best-effort by design.
func (c *Client) sendCancel() { c.send(frameCancel, nil) }

// Close sends a best-effort Quit and closes the connection. Any open Rows
// becomes invalid; the server cancels the in-flight query on disconnect.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.send(frameQuit, nil)
	return c.conn.Close()
}

// acquire marks the read side busy for a new request.
func (c *Client) acquire() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("server: client is closed")
	}
	if c.busy {
		return errors.New("server: previous result not closed")
	}
	c.busy = true
	return nil
}

func (c *Client) releaseBusy() {
	c.mu.Lock()
	c.busy = false
	c.mu.Unlock()
}

// Query runs ad-hoc SQL and returns a streaming cursor. Cancelling ctx
// sends a wire Cancel; the cursor then terminates with an error matching
// errors.Is(err, context.Canceled).
func (c *Client) Query(ctx context.Context, sql string) (*Rows, error) {
	if err := c.acquire(); err != nil {
		return nil, err
	}
	c.sbuf = appendString(c.sbuf[:0], sql)
	if err := c.send(frameQuery, c.sbuf); err != nil {
		c.releaseBusy()
		return nil, err
	}
	return c.openStream(ctx)
}

// openStream reads the stream-opening frame (Schema or Error) and arms the
// context watcher.
func (c *Client) openStream(ctx context.Context) (*Rows, error) {
	typ, payload, err := c.readFrame()
	if err != nil {
		c.releaseBusy()
		return nil, err
	}
	p := payloadReader{buf: payload}
	switch typ {
	case frameSchema:
		sch := p.schema()
		if p.err != nil {
			c.releaseBusy()
			return nil, fmt.Errorf("server: malformed schema frame")
		}
		r := &Rows{c: c, schema: sch}
		if ctx.Done() != nil {
			r.stopWatch = context.AfterFunc(ctx, c.sendCancel)
		}
		return r, nil
	case frameError:
		c.releaseBusy()
		return nil, decodeError(payload)
	default:
		c.releaseBusy()
		return nil, fmt.Errorf("server: unexpected frame 0x%02x opening a result", typ)
	}
}

// Prepare compiles sql on the server and returns the statement handle.
func (c *Client) Prepare(sql string) (*Stmt, error) {
	if err := c.acquire(); err != nil {
		return nil, err
	}
	defer c.releaseBusy()
	c.sbuf = appendString(c.sbuf[:0], sql)
	if err := c.send(framePrepare, c.sbuf); err != nil {
		return nil, err
	}
	typ, payload, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	p := payloadReader{buf: payload}
	switch typ {
	case frameStmtOK:
		id := p.uvarint()
		nparams := p.length(1 << 16)
		sch := p.schema()
		if p.err != nil {
			return nil, fmt.Errorf("server: malformed StmtOK frame")
		}
		return &Stmt{c: c, id: id, numParams: nparams, schema: sch, sql: sql}, nil
	case frameError:
		return nil, decodeError(payload)
	default:
		return nil, fmt.Errorf("server: unexpected frame 0x%02x answering Prepare", typ)
	}
}

// Stmt is a server-side prepared statement.
type Stmt struct {
	c         *Client
	id        uint64
	numParams int
	schema    *sip.Schema
	sql       string
}

// SQL returns the statement's source text.
func (s *Stmt) SQL() string { return s.sql }

// NumParams returns the number of `?` placeholders.
func (s *Stmt) NumParams() int { return s.numParams }

// Schema returns the statement's result schema.
func (s *Stmt) Schema() *sip.Schema { return s.schema }

// Query executes the prepared statement with args and returns a cursor.
func (s *Stmt) Query(ctx context.Context, args ...sip.Value) (*Rows, error) {
	if len(args) != s.numParams {
		return nil, fmt.Errorf("server: statement has %d parameter(s), got %d argument(s)", s.numParams, len(args))
	}
	if err := s.c.acquire(); err != nil {
		return nil, err
	}
	buf := appendUvarint(s.c.sbuf[:0], s.id)
	buf = appendUvarint(buf, uint64(len(args)))
	for _, v := range args {
		buf = appendValue(buf, v)
	}
	s.c.sbuf = buf
	if err := s.c.send(frameExecute, buf); err != nil {
		s.c.releaseBusy()
		return nil, err
	}
	return s.c.openStream(ctx)
}

// Close releases the server-side statement.
func (s *Stmt) Close() error {
	if err := s.c.acquire(); err != nil {
		return err
	}
	defer s.c.releaseBusy()
	s.c.sbuf = appendUvarint(s.c.sbuf[:0], s.id)
	if err := s.c.send(frameCloseStmt, s.c.sbuf); err != nil {
		return err
	}
	typ, payload, err := s.c.readFrame()
	if err != nil {
		return err
	}
	if typ == frameError {
		return decodeError(payload)
	}
	return nil
}

// Rows is the client-side streaming cursor, shaped like sip.Rows: Next /
// Row / Err / Close, plus the server's execution Summary once the stream
// ends. Row batches decode lazily out of the last frame's payload, so the
// client never holds more than one wire batch.
type Rows struct {
	c         *Client
	schema    *sip.Schema
	stopWatch func() bool

	batch    payloadReader
	remain   int // rows left in the current batch
	cur      sip.Row
	sum      *Summary
	err      error
	done     bool
	released bool
}

// Schema returns the result schema; available immediately.
func (r *Rows) Schema() *sip.Schema { return r.schema }

// Next advances to the next row, blocking on the wire as needed. It
// returns false at end of stream; consult Err to distinguish completion
// from failure.
func (r *Rows) Next() bool {
	if r.done {
		return false
	}
	for r.remain == 0 {
		typ, payload, err := r.c.readFrame()
		if err != nil {
			r.terminate(nil, err)
			return false
		}
		switch typ {
		case frameRowBatch:
			r.batch = payloadReader{buf: payload}
			// Batches are cut at BatchRows or 64KiB server-side; the bound
			// only has to keep a hostile count from wrapping negative.
			r.remain = r.batch.length(1 << 24)
			if r.batch.err != nil {
				r.terminate(nil, fmt.Errorf("server: malformed row batch"))
				return false
			}
		case frameDone:
			p := payloadReader{buf: payload}
			sum := p.summary()
			if p.err != nil {
				r.terminate(nil, fmt.Errorf("server: malformed summary"))
				return false
			}
			r.terminate(sum, nil)
			return false
		case frameError:
			r.terminate(nil, decodeError(payload))
			return false
		default:
			r.terminate(nil, fmt.Errorf("server: unexpected frame 0x%02x in a result stream", typ))
			return false
		}
	}
	row := make(sip.Row, len(r.schema.Cols))
	for i := range row {
		row[i] = r.batch.value()
	}
	if r.batch.err != nil {
		r.terminate(nil, fmt.Errorf("server: malformed row"))
		return false
	}
	r.remain--
	r.cur = row
	return true
}

// Row returns the current row; valid after a true Next.
func (r *Rows) Row() sip.Row { return r.cur }

// Err returns the terminal error, nil after clean exhaustion or Close.
func (r *Rows) Err() error { return r.err }

// Summary returns the server's execution summary; non-nil only after the
// stream completed successfully.
func (r *Rows) Summary() *Summary { return r.sum }

// Incomplete lists the sources a partial result abandoned (empty for
// complete results); available once the stream has ended.
func (r *Rows) Incomplete() []IncompleteTable {
	if r.sum == nil {
		return nil
	}
	return r.sum.Incomplete
}

// Duration returns the server-side execution time once the stream ended.
func (r *Rows) Duration() time.Duration {
	if r.sum == nil {
		return 0
	}
	return time.Duration(r.sum.DurationMicros) * time.Microsecond
}

// Close cancels the query if it is still streaming and drains the stream's
// terminal frame, leaving the connection ready for the next request. It is
// idempotent and always returns nil.
func (r *Rows) Close() error {
	if r.done {
		return nil
	}
	// Cancel server-side, then drain to the stream terminator. The drain
	// also unblocks a server stalled on conn.Write to us.
	r.c.sendCancel()
	for {
		typ, payload, err := r.c.readFrame()
		if err != nil {
			r.terminate(nil, err)
			r.err = nil // consumer-initiated close is not an error
			return nil
		}
		switch typ {
		case frameDone:
			p := payloadReader{buf: payload}
			sum := p.summary()
			r.terminate(sum, nil)
			return nil
		case frameError:
			r.terminate(nil, nil) // expected "canceled" terminator
			return nil
		}
	}
}

// terminate finalizes the cursor exactly once: stops the context watcher
// and releases the connection's read side.
func (r *Rows) terminate(sum *Summary, err error) {
	if r.done {
		return
	}
	r.done = true
	r.sum = sum
	r.err = err
	r.remain = 0
	if r.stopWatch != nil {
		r.stopWatch()
	}
	if !r.released {
		r.released = true
		r.c.releaseBusy()
	}
}

func decodeError(payload []byte) error {
	p := payloadReader{buf: payload}
	code := p.string()
	msg := p.string()
	if p.err != nil {
		return fmt.Errorf("server: malformed error frame")
	}
	return &WireError{Code: code, Msg: msg}
}

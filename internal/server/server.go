// Package server is the engine's wire-protocol serving tier: a TCP front
// end that multiplexes many client sessions onto one embedded sip.Engine,
// streaming results without materializing them, enforcing per-tenant
// admission quotas on top of the engine's own admission controls, and
// exposing the engine's observability counters over HTTP.
//
// # Wire-frame contract
//
// Every message is a frame:
//
//	+-------------------+----------+------------------+
//	| length (4B BE)    | type (1B)| payload (length) |
//	+-------------------+----------+------------------+
//
// The length covers the payload only. Payload fields are unsigned/signed
// varints (encoding/binary), length-prefixed UTF-8 strings, and tagged
// values (one types.Kind byte followed by the kind's natural encoding:
// varint for INTEGER/DATE/BOOLEAN, 8-byte big-endian IEEE 754 for DECIMAL,
// a string for VARCHAR, nothing for NULL). Client→server frame types have
// the high bit clear; server→client types have it set.
//
// A session opens with a handshake: the client sends Hello (0x01) — the
// 4-byte magic "SIPW", its maximum protocol version (uvarint), a tenant
// name (string), and the session options (scheduler string, memory-budget
// varint, one failure-mode byte: 0 fail-fast, 1 partial). The server
// answers HelloOK (0x81) carrying the negotiated version
// min(client, server) and a banner string, or Error (0x82, code "version")
// when the client is too old. A connection that does not open with the
// magic is dropped without a reply.
//
// After the handshake the session is a sequential request/response loop —
// at most one statement in flight per connection:
//
//	Query     (0x02) sql                    → result stream
//	Prepare   (0x03) sql                    → StmtOK (0x83) id, nparams, schema
//	Execute   (0x04) id, nargs, args...     → result stream
//	CloseStmt (0x05) id                     → Done (0x86) with a zero summary
//	Quit      (0x07)                        → connection close
//
// A result stream is Schema (0x84), zero or more RowBatch (0x85) frames
// (uvarint row count, then rows × schema-width tagged values), and a
// terminal Done (0x86) summary (row count, duration, the execution counters
// a client footer needs, and the incomplete-table list of a partial
// result), or a terminal Error (0x82) in place of Done if the query failed
// mid-stream. Row batches are encoded straight off the engine's streaming
// cursor: a client that stops reading blocks the server's conn.Write, which
// stops the cursor, which backpressures that query's operator pipeline —
// and nothing else.
//
// Cancel (0x06) is the one out-of-band frame: a reader goroutine services
// it while the session goroutine streams, aborting the in-flight query,
// whose stream then terminates with Error code "canceled". A client
// disconnect cancels the same way (the read loop fails), so an abandoned
// query releases its engine admission slot and memory grant promptly.
//
// Error frames carry a machine-readable code ("plan", "exec", "source",
// "memory", "canceled", "protocol", "shutdown", "version") and a
// human-readable message. After a response-position error the session
// continues; after a protocol error the connection closes.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	sip "repro"
)

// Config configures a Server. The zero value of every field except Engine
// is usable.
type Config struct {
	// Engine is the embedded query engine. Required.
	Engine *sip.Engine

	// BaseOptions seeds every session's execution options (strategy,
	// placement, pacing). The session's Hello options (scheduler, memory
	// budget, failure mode) overlay it.
	BaseOptions sip.Options

	// TenantQuota caps each tenant's concurrent queries (0 = unlimited).
	// The quota gates BEFORE the engine's MaxConcurrentQueries admission
	// and memory-governor grant, so one greedy tenant queues at its own
	// cap instead of occupying every engine slot.
	TenantQuota int

	// Quotas overrides TenantQuota per tenant name.
	Quotas map[string]int

	// MaxFrameBytes bounds one frame's payload (default DefaultMaxFrame).
	MaxFrameBytes int

	// BatchRows caps rows per RowBatch frame (default 256). Batches also
	// cut early at ~64 KiB of encoded payload so wide rows cannot build
	// outsized frames.
	BatchRows int

	// Banner is the HelloOK server string (default "sip").
	Banner string

	// Logf, when set, receives connection-level diagnostics. Per-query
	// errors are wire responses, not log lines.
	Logf func(format string, args ...any)
}

// Server accepts wire-protocol sessions and serves them against one engine.
type Server struct {
	cfg     Config
	eng     *sip.Engine
	quotas  *tenantQuotas
	metrics Metrics

	baseCtx context.Context // parent of every query; canceled on forced stop
	stop    context.CancelFunc

	mu       sync.Mutex
	listener net.Listener
	sessions map[*session]struct{}
	draining bool
	drainCh  chan struct{} // closed when draining starts

	wg sync.WaitGroup
}

// New builds a Server. It does not listen; pass a listener to Serve.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: Config.Engine is required")
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = DefaultMaxFrame
	}
	if cfg.BatchRows <= 0 {
		cfg.BatchRows = 256
	}
	if cfg.Banner == "" {
		cfg.Banner = "sip"
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:      cfg,
		eng:      cfg.Engine,
		quotas:   newTenantQuotas(cfg.TenantQuota, cfg.Quotas),
		baseCtx:  ctx,
		stop:     cancel,
		sessions: map[*session]struct{}{},
		drainCh:  make(chan struct{}),
	}, nil
}

// Serve accepts connections from l until Shutdown (or a permanent accept
// error) and blocks while sessions run. It always closes l.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		l.Close()
		return errors.New("server: already shut down")
	}
	s.listener = l
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			// Shutdown closes the listener; that is a clean exit.
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			s.wg.Wait()
			if draining {
				return nil
			}
			return err
		}
		s.startSession(conn)
	}
}

// startSession registers and launches one connection's session goroutines.
// Exported-path tests use ServeConn directly with a net.Pipe end.
func (s *Server) startSession(conn net.Conn) {
	sess := newSession(s, conn)
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	s.metrics.SessionsTotal.Add(1)
	s.metrics.SessionsActive.Add(1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		sess.run()
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
		s.metrics.SessionsActive.Add(-1)
	}()
}

// ServeConn runs one already-accepted connection as a session, blocking
// until it ends. It lets tests and in-process clients use net.Pipe without
// a listener.
func (s *Server) ServeConn(conn net.Conn) {
	sess := newSession(s, conn)
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	s.metrics.SessionsTotal.Add(1)
	s.metrics.SessionsActive.Add(1)
	s.wg.Add(1)
	defer s.wg.Done()
	sess.run()
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
	s.metrics.SessionsActive.Add(-1)
}

// Shutdown drains the server: the listener closes, idle sessions close
// immediately, and sessions with a statement in flight finish streaming it
// first. When ctx expires before the drain completes, every remaining query
// is canceled and every connection force-closed. Shutdown returns when all
// session goroutines have exited.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	l := s.listener
	if !already {
		close(s.drainCh)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Forced: cancel every in-flight query, then cut the wires.
		s.stop()
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		<-done
		return context.Cause(ctx)
	}
}

// Metrics returns the server's live counters.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Engine returns the embedded engine (for stats endpoints and tests).
func (s *Server) Engine() *sip.Engine { return s.eng }

// MetricsHandler returns an http.Handler serving GET /metrics (flat
// counters, one `name value` line each) and GET /stats (a JSON snapshot
// including the slow-query log). Mount it on any mux or serve it with
// http.Serve on a dedicated listener.
func (s *Server) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetricsText)
	mux.HandleFunc("/stats", s.serveStatsJSON)
	return mux
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// draining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// counterValue pairs a metric name with its sampled value for the text
// endpoint; kept ordered so /metrics output is diffable.
type counterValue struct {
	name  string
	value int64
}

func (s *Server) counters() []counterValue {
	m := &s.metrics
	pc := s.eng.PlanCacheStats()
	gov := s.eng.GovernorStats()
	return []counterValue{
		{"sip_sessions_active", m.SessionsActive.Load()},
		{"sip_sessions_total", m.SessionsTotal.Load()},
		{"sip_queries_started_total", m.QueriesStarted.Load()},
		{"sip_queries_ok_total", m.QueriesOK.Load()},
		{"sip_queries_failed_total", m.QueriesFailed.Load()},
		{"sip_queries_canceled_total", m.QueriesCanceled.Load()},
		{"sip_quota_waits_total", m.QuotaWaits.Load()},
		{"sip_rows_sent_total", m.RowsSent.Load()},
		{"sip_batches_sent_total", m.BatchesSent.Load()},
		{"sip_bytes_sent_total", m.BytesSent.Load()},
		{"sip_tuples_scanned_total", m.TuplesScanned.Load()},
		{"sip_tuples_pruned_total", m.TuplesPruned.Load()},
		{"sip_filters_created_total", m.FiltersCreated.Load()},
		{"sip_spill_bytes_total", m.SpillBytes.Load()},
		{"sip_retries_total", m.Retries.Load()},
		{"sip_engine_running_queries", int64(s.eng.RunningQueries())},
		{"sip_plan_cache_hits_total", pc.Hits},
		{"sip_plan_cache_misses_total", pc.Misses},
		{"sip_plan_cache_evictions_total", pc.Evictions},
		{"sip_plan_cache_entries", int64(pc.Entries)},
		{"sip_governor_total_bytes", gov.TotalBytes},
		{"sip_governor_available_bytes", gov.AvailableBytes},
		{"sip_governor_admitted", int64(gov.Admitted)},
		{"sip_slow_queries_total", s.eng.SlowQueryCount()},
	}
}

// Metrics is the server's counter set. All fields are atomic and safe to
// read while serving.
type Metrics struct {
	SessionsActive  atomic.Int64
	SessionsTotal   atomic.Int64
	QueriesStarted  atomic.Int64
	QueriesOK       atomic.Int64
	QueriesFailed   atomic.Int64
	QueriesCanceled atomic.Int64
	QuotaWaits      atomic.Int64
	RowsSent        atomic.Int64
	BatchesSent     atomic.Int64
	BytesSent       atomic.Int64

	// Cumulative execution counters folded in from each finished query's
	// Result, so the metrics endpoint can expose engine work without a
	// per-query registry surviving the pool.
	TuplesScanned  atomic.Int64
	TuplesPruned   atomic.Int64
	FiltersCreated atomic.Int64
	SpillBytes     atomic.Int64
	Retries        atomic.Int64
}

// addResult folds one finished query's counters into the cumulative totals.
func (m *Metrics) addResult(res *sip.Result) {
	if res == nil {
		return
	}
	m.TuplesScanned.Add(res.TuplesScanned)
	m.TuplesPruned.Add(res.TuplesPruned)
	m.FiltersCreated.Add(res.FiltersCreated)
	m.SpillBytes.Add(res.SpillBytes)
	m.Retries.Add(res.Retries)
}

// errShuttingDown is the response-position error sent to a session that
// submits a statement while the server drains.
var errShuttingDown = fmt.Errorf("server is shutting down")

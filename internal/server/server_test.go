package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	sip "repro"
)

// testCatalog is generated once: the serving-tier tests exercise the wire
// layer, not the data generator.
var (
	catOnce sync.Once
	testCat *sip.Catalog
)

func catalog() *sip.Catalog {
	catOnce.Do(func() {
		testCat = sip.GenerateTPCH(sip.DataConfig{ScaleFactor: 0.005})
	})
	return testCat
}

// startServer launches a Server on a loopback listener and registers a
// drain-or-force shutdown cleanup. Tests that hold long-running queries
// must close their clients before cleanup runs (t.Cleanup is LIFO, so
// client cleanups registered later already do).
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = sip.NewEngine(catalog())
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-served; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, l.Addr().String()
}

func dialT(t *testing.T, addr string, cfg DialConfig) *Client {
	t.Helper()
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// waitGoroutines polls until the goroutine count drops back to base,
// failing with a stack dump if it does not.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// drainAll consumes a cursor fully and returns the rows.
func drainAll(t *testing.T, rows *Rows) []sip.Row {
	t.Helper()
	var out []sip.Row
	for rows.Next() {
		out = append(out, rows.Row())
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("stream failed: %v", err)
	}
	rows.Close()
	return out
}

// TestSessionLifecycle drives the full protocol arc — handshake, ad-hoc
// query, prepare/execute/execute, statement close, session close — and
// checks the wire results against the embedded engine, with a goroutine
// leak check over the whole arc.
func TestSessionLifecycle(t *testing.T) {
	eng := sip.NewEngine(catalog())
	srv, addr := startServer(t, Config{Engine: eng})
	base := runtime.NumGoroutine()

	func() {
		c, err := Dial(addr, DialConfig{Tenant: "acme"})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if c.ProtoVersion() != ProtoVersion {
			t.Fatalf("negotiated version %d, want %d", c.ProtoVersion(), ProtoVersion)
		}

		const sql = `SELECT n_name, count(*) FROM supplier, nation
			WHERE s_nationkey = n_nationkey GROUP BY n_name`
		want, err := eng.Query(context.Background(), sql, sip.Options{})
		if err != nil {
			t.Fatal(err)
		}

		rows, err := c.Query(context.Background(), sql)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows.Schema().Cols) != 2 {
			t.Fatalf("schema %v", rows.Schema().Cols)
		}
		got := drainAll(t, rows)
		if len(got) != len(want.Rows) {
			t.Fatalf("wire query: %d rows, want %d", len(got), len(want.Rows))
		}
		if rows.Summary() == nil || rows.Summary().Rows != int64(len(got)) {
			t.Fatalf("summary %+v, want %d rows", rows.Summary(), len(got))
		}

		// Prepared: same statement, two different bindings.
		stmt, err := c.Prepare(`SELECT n_name FROM nation WHERE n_nationkey = ?`)
		if err != nil {
			t.Fatal(err)
		}
		if stmt.NumParams() != 1 {
			t.Fatalf("NumParams = %d", stmt.NumParams())
		}
		for _, key := range []int64{3, 7} {
			r, err := stmt.Query(context.Background(), sip.Int(key))
			if err != nil {
				t.Fatal(err)
			}
			got := drainAll(t, r)
			if len(got) != 1 {
				t.Fatalf("key %d: %d rows", key, len(got))
			}
		}
		if err := stmt.Close(); err != nil {
			t.Fatal(err)
		}

		// A plan error is a response, not a dead session.
		if _, err := c.Query(context.Background(), `SELECT nope FROM nowhere`); err == nil {
			t.Fatal("bad query succeeded")
		} else {
			var we *WireError
			if !errors.As(err, &we) || we.Code != errCodePlan {
				t.Fatalf("bad query error %v, want plan code", err)
			}
		}
		rows, err = c.Query(context.Background(), `SELECT count(*) FROM region`)
		if err != nil {
			t.Fatalf("session dead after plan error: %v", err)
		}
		drainAll(t, rows)
	}()

	if n := srv.Metrics().QueriesOK.Load(); n != 4 {
		t.Fatalf("QueriesOK = %d, want 4", n)
	}
	waitGoroutines(t, base)
}

// TestConcurrentSessionsSoak hammers one server with many sessions mixing
// ad-hoc and prepared traffic (run under -race via make test-race), then
// checks the books balance and nothing leaked.
func TestConcurrentSessionsSoak(t *testing.T) {
	eng := sip.NewEngineWithConfig(catalog(), sip.EngineConfig{
		MaxConcurrentQueries: 8,
		MemBudget:            64 << 20,
	})
	srv, addr := startServer(t, Config{Engine: eng, TenantQuota: 4})
	base := runtime.NumGoroutine()

	const sessions = 12
	const perSession = 8
	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, DialConfig{Tenant: fmt.Sprintf("t%d", i%3)})
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			stmt, err := c.Prepare(`SELECT n_name FROM nation WHERE n_nationkey = ?`)
			if err != nil {
				errCh <- err
				return
			}
			for j := 0; j < perSession; j++ {
				if j%2 == 0 {
					rows, err := c.Query(context.Background(),
						fmt.Sprintf(`SELECT count(*) FROM supplier WHERE s_nationkey = %d`, j%25))
					if err != nil {
						errCh <- err
						return
					}
					for rows.Next() {
					}
					if err := rows.Err(); err != nil {
						errCh <- err
						return
					}
					rows.Close()
				} else {
					rows, err := stmt.Query(context.Background(), sip.Int(int64(j%25)))
					if err != nil {
						errCh <- err
						return
					}
					for rows.Next() {
					}
					if err := rows.Err(); err != nil {
						errCh <- err
						return
					}
					rows.Close()
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	m := srv.Metrics()
	if got := m.QueriesOK.Load(); got != sessions*perSession {
		t.Fatalf("QueriesOK = %d, want %d", got, sessions*perSession)
	}
	if got := m.SessionsTotal.Load(); got != sessions {
		t.Fatalf("SessionsTotal = %d, want %d", got, sessions)
	}
	// Engine admission and governor fully released.
	if n := eng.RunningQueries(); n != 0 {
		t.Fatalf("%d queries still running", n)
	}
	if gov := eng.GovernorStats(); gov.Admitted != 0 || gov.AvailableBytes != gov.TotalBytes {
		t.Fatalf("governor not drained: %+v", gov)
	}
	waitGoroutines(t, base)
}

// TestTenantQuotaFairness pins the quota contract: a greedy tenant whose
// long queries exceed its cap queues at the quota, NOT inside the engine,
// so another tenant's short queries keep flowing through the engine slots
// the greedy tenant would otherwise monopolize.
func TestTenantQuotaFairness(t *testing.T) {
	eng := sip.NewEngineWithConfig(catalog(), sip.EngineConfig{MaxConcurrentQueries: 2})
	srv, addr := startServer(t, Config{
		Engine: eng,
		// Greedy is capped at 1 concurrent query; the victim is unlimited.
		Quotas: map[string]int{"greedy": 1},
		// Pace scans so the greedy lineitem scan holds its slot for the
		// whole test (lineitem at SF 0.005 is ~1 MB: minutes at 20 KB/s).
		BaseOptions: sip.Options{SourceBytesPerSec: 20_000},
	})

	// Three greedy connections all start long scans. Without the quota,
	// two would occupy both engine slots and starve everyone. The first
	// takes the tenant's only quota slot; the other two block awaiting a
	// server response, queued at the quota gate WITHOUT engine slots.
	const longSQL = `SELECT l_orderkey FROM lineitem`
	c0 := dialT(t, addr, DialConfig{Tenant: "greedy"})
	rows0, err := c0.Query(context.Background(), longSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !rows0.Next() {
		t.Fatalf("greedy query produced nothing: %v", rows0.Err())
	}
	for i := 0; i < 2; i++ {
		c := dialT(t, addr, DialConfig{Tenant: "greedy"})
		go func() {
			// Blocks at the quota until the test tears the client down
			// (or the first greedy cursor closes); either way the rows
			// are irrelevant — only the queuing matters.
			if rows, err := c.Query(context.Background(), longSQL); err == nil {
				rows.Close()
			}
		}()
	}
	// Wait until both extras are provably queued at the quota gate.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().QuotaWaits.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("greedy backlog never queued: QuotaWaits = %d", srv.Metrics().QuotaWaits.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The victim's short queries must all complete while the greedy
	// tenant's backlog exists.
	victim := dialT(t, addr, DialConfig{Tenant: "victim"})
	start := time.Now()
	for i := 0; i < 5; i++ {
		rows, err := victim.Query(context.Background(), `SELECT count(*) FROM nation`)
		if err != nil {
			t.Fatalf("victim query %d: %v", i, err)
		}
		drainAll(t, rows)
	}
	victimTime := time.Since(start)

	// The greedy tenant still holds exactly one engine slot (its quota):
	// the victim's burst proceeded because the backlog never reached the
	// engine.
	if n := eng.RunningQueries(); n < 1 {
		t.Fatalf("greedy long query no longer running (victim took %v)", victimTime)
	}
	rows0.Close()
}

// TestClientDisconnectCancelsQuery proves an abrupt client disconnect (no
// Cancel, no Quit) cancels the in-flight query server-side and returns its
// engine admission slot and memory-governor grant.
func TestClientDisconnectCancelsQuery(t *testing.T) {
	eng := sip.NewEngineWithConfig(catalog(), sip.EngineConfig{
		MaxConcurrentQueries: 2,
		MemBudget:            32 << 20,
	})
	_, addr := startServer(t, Config{
		Engine:      eng,
		BaseOptions: sip.Options{SourceBytesPerSec: 20_000},
	})
	base := runtime.NumGoroutine()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(conn, DialConfig{Tenant: "flaky"})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.Query(context.Background(), `SELECT l_orderkey FROM lineitem`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no rows before disconnect: %v", rows.Err())
	}
	if gov := eng.GovernorStats(); gov.Admitted != 1 {
		t.Fatalf("governor admitted %d, want 1", gov.Admitted)
	}

	// Yank the wire.
	conn.Close()

	// The server must notice, cancel the query, and give everything back.
	deadline := time.Now().Add(5 * time.Second)
	for {
		gov := eng.GovernorStats()
		if eng.RunningQueries() == 0 && gov.Admitted == 0 && gov.AvailableBytes == gov.TotalBytes {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query not reclaimed: running=%d governor=%+v", eng.RunningQueries(), gov)
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitGoroutines(t, base)
}

// TestStalledClientBackpressure pins the tentpole streaming claim: a client
// that stops reading stalls only its own query — the server does not
// buffer the result, the query stays running (backpressured), and other
// sessions on the same server keep completing queries the whole time.
func TestStalledClientBackpressure(t *testing.T) {
	eng := sip.NewEngine(catalog())
	srv, addr := startServer(t, Config{Engine: eng})

	// The stalled session runs over an unbuffered in-memory pipe, so the
	// moment the client stops reading, the server's next write blocks.
	srvConn, cliConn := net.Pipe()
	go srv.ServeConn(srvConn)
	c, err := NewClient(cliConn, DialConfig{Tenant: "stall"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rows, err := c.Query(context.Background(), `SELECT l_orderkey, l_extendedprice FROM lineitem`)
	if err != nil {
		t.Fatal(err)
	}
	// Read a handful of rows to get the stream moving, then stall.
	for i := 0; i < 10; i++ {
		if !rows.Next() {
			t.Fatalf("stream ended early: %v", rows.Err())
		}
	}
	time.Sleep(200 * time.Millisecond) // let the pipeline fill and block

	// While stalled, the query must still be RUNNING — a server that
	// materialized the result would have finished it by now.
	if n := eng.RunningQueries(); n != 1 {
		t.Fatalf("stalled query not running (running=%d): result was buffered?", n)
	}

	// Other sessions are unaffected: a second client completes a burst of
	// queries while the first is stalled.
	other := dialT(t, addr, DialConfig{Tenant: "fine"})
	for i := 0; i < 10; i++ {
		r, err := other.Query(context.Background(), `SELECT count(*) FROM supplier`)
		if err != nil {
			t.Fatalf("unaffected session query %d: %v", i, err)
		}
		drainAll(t, r)
	}
	if n := eng.RunningQueries(); n != 1 {
		t.Fatalf("after other session's burst: running=%d, want the stalled 1", n)
	}

	// Resume: the stalled stream picks up where it left off and completes
	// with every remaining row intact.
	n := 10
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	want, err := eng.Query(context.Background(), `SELECT count(*) FROM lineitem`, sip.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) != want.Rows[0][0].I {
		t.Fatalf("resumed stream delivered %d rows, want %d", n, want.Rows[0][0].I)
	}
	rows.Close()
}

// TestGracefulShutdownDrains starts a query, begins Shutdown mid-stream,
// and requires the in-flight stream to finish cleanly while new statements
// are refused.
func TestGracefulShutdownDrains(t *testing.T) {
	eng := sip.NewEngine(catalog())
	srv, err := New(Config{Engine: eng, BaseOptions: sip.Options{SourceBytesPerSec: 500_000}})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()

	c, err := Dial(l.Addr().String(), DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows, err := c.Query(context.Background(), `SELECT l_orderkey FROM lineitem`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no rows before shutdown: %v", rows.Err())
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// New connections are refused while draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := Dial(l.Addr().String(), DialConfig{}); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("new connections still accepted while draining")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The in-flight stream survives the drain to completion.
	n := 1
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("draining killed the in-flight stream after %d rows: %v", n, err)
	}
	if rows.Summary() == nil || rows.Summary().Rows != int64(n) {
		t.Fatalf("summary %+v after drain, want %d rows", rows.Summary(), n)
	}
	rows.Close()

	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestMetricsEndpoints exercises /metrics and /stats over the real handler
// after real traffic, including the slow-query log.
func TestMetricsEndpoints(t *testing.T) {
	eng := sip.NewEngineWithConfig(catalog(), sip.EngineConfig{
		MemBudget:          16 << 20,
		SlowQueryThreshold: time.Nanosecond, // everything is slow
	})
	srv, addr := startServer(t, Config{Engine: eng})

	c := dialT(t, addr, DialConfig{Tenant: "ops"})
	rows, err := c.Query(context.Background(), `SELECT count(*) FROM nation WHERE n_regionkey = 2`)
	if err != nil {
		t.Fatal(err)
	}
	drainAll(t, rows)

	ts := httptest.NewServer(srv.MetricsHandler())
	defer ts.Close()

	body := httpGet(t, ts.URL+"/metrics")
	for _, want := range []string{
		"sip_queries_ok_total 1",
		"sip_sessions_total 1",
		"sip_slow_queries_total 1",
		"sip_governor_total_bytes 16777216",
		"sip_plan_cache_misses_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	stats := httpGet(t, ts.URL+"/stats")
	if !strings.Contains(stats, `"sip_rows_sent_total": 1`) {
		t.Errorf("/stats missing rows counter:\n%s", stats)
	}
	if !strings.Contains(stats, "n_regionkey") {
		t.Errorf("/stats slow-query log missing the statement:\n%s", stats)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	return string(body)
}

// Package harness runs the paper's experiments (Figures 5–14) and prints
// the same series each figure reports: per-query running time or
// intermediate-state size for each execution strategy. It is shared by the
// sipbench command and the root bench_test.go benchmarks.
package harness

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	sip "repro"
	"repro/internal/workload"
)

// Config parameterizes a harness run.
type Config struct {
	// ScaleFactor for the generated data (the paper ran 1 GB = SF 1; the
	// default reproduction scale is 0.05).
	ScaleFactor float64
	// Repetitions per (query, strategy) cell; the paper used ≥5.
	Repetitions int
	// FPR is the Bloom false-positive target (default 5%).
	FPR float64
	// SourceMBps paces scans like local source streams (default 1000 MB/s
	// — fast enough that CPU dominates, as in the paper's "optimum data
	// transfer conditions", while still staggering completion times by
	// relation size; set negative for unpaced).
	SourceMBps float64
	// PipelineDepth overrides the executor's per-edge channel buffer in
	// batches; zero keeps the default.
	PipelineDepth int
	// Verbose adds per-operator detail to the output writer.
	Verbose bool

	// Faults optionally injects deterministic source/link failures into
	// every measured run (robustness experiments rather than the paper's
	// figures); Retry bounds the recovery policy applied to them, and
	// OnSourceFailure picks fail-fast or graceful partial degradation.
	Faults          *sip.FaultProfile
	Retry           sip.RetryPolicy
	OnSourceFailure sip.FailureMode
}

func (c Config) withDefaults() Config {
	if c.ScaleFactor <= 0 {
		c.ScaleFactor = 0.05
	}
	if c.Repetitions < 1 {
		c.Repetitions = 1
	}
	if c.SourceMBps == 0 {
		c.SourceMBps = 1000
	}
	return c
}

// Runner executes experiment cells, caching the generated catalogs.
type Runner struct {
	cfg     Config
	engines map[bool]*sip.Engine // keyed by skew
}

// New creates a runner.
func New(cfg Config) *Runner {
	return &Runner{cfg: cfg.withDefaults(), engines: map[bool]*sip.Engine{}}
}

// Engine returns the (cached) engine for the uniform or skewed data set.
func (r *Runner) Engine(skewed bool) *sip.Engine {
	if e, ok := r.engines[skewed]; ok {
		return e
	}
	cfg := sip.DataConfig{ScaleFactor: r.cfg.ScaleFactor}
	if skewed {
		cfg.Skew = true
		cfg.Z = 0.5
	}
	e := sip.NewEngine(sip.GenerateTPCH(cfg))
	r.engines[skewed] = e
	return e
}

// Cell is one measured (query, strategy) data point.
type Cell struct {
	Query    string
	Strategy string

	Mean time.Duration
	// CI95 is the 95% confidence half-interval across repetitions.
	CI95 time.Duration

	StateMB float64
	Rows    int
	Pruned  int64
	Filters int64
	NetMB   float64
}

// StrategyByName maps the figure labels to strategies.
func StrategyByName(name string) (sip.Strategy, error) {
	switch name {
	case "Baseline":
		return sip.Baseline, nil
	case "Magic":
		return sip.Magic, nil
	case "Feed-forward":
		return sip.FeedForward, nil
	case "Cost-based":
		return sip.CostBased, nil
	default:
		return 0, fmt.Errorf("harness: unknown strategy %q", name)
	}
}

// RunCell measures one query under one strategy.
func (r *Runner) RunCell(spec workload.Spec, strategyName string, delayed []string) (Cell, error) {
	strat, err := StrategyByName(strategyName)
	if err != nil {
		return Cell{}, err
	}
	eng := r.Engine(spec.Skewed)
	opts := sip.Options{
		Strategy:      strat,
		FPR:           r.cfg.FPR,
		DelayedTables: delayed,
		RemoteTables:  spec.Remote,
		PipelineDepth: r.cfg.PipelineDepth,
	}
	if r.cfg.SourceMBps > 0 {
		opts.SourceBytesPerSec = int64(r.cfg.SourceMBps * 1e6)
	}
	if r.cfg.Faults != nil {
		opts.Faults = r.cfg.Faults
		opts.Retry = r.cfg.Retry
		opts.OnSourceFailure = r.cfg.OnSourceFailure
	}
	sql := spec.SQL(eng.Catalog())

	cell := Cell{Query: spec.ID, Strategy: strategyName}
	times := make([]float64, 0, r.cfg.Repetitions)
	for i := 0; i < r.cfg.Repetitions; i++ {
		res, err := eng.Query(context.Background(), sql, opts)
		if err != nil {
			return Cell{}, fmt.Errorf("%s/%s: %w", spec.ID, strategyName, err)
		}
		times = append(times, float64(res.Duration))
		// State and counters are deterministic up to scheduling noise;
		// keep the max across reps (high-water semantics).
		mb := float64(res.PeakStateBytes) / (1 << 20)
		if mb > cell.StateMB {
			cell.StateMB = mb
		}
		cell.Rows = len(res.Rows)
		cell.Pruned = res.TuplesPruned
		cell.Filters = res.FiltersCreated
		cell.NetMB = float64(res.NetworkBytes) / (1 << 20)
	}
	mean, ci := meanCI95(times)
	cell.Mean = time.Duration(mean)
	cell.CI95 = time.Duration(ci)
	return cell, nil
}

// meanCI95 returns the mean and the 95% confidence half-interval (normal
// approximation; the paper reports 95% intervals over ≥5 repetitions).
func meanCI95(xs []float64) (mean, ci float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(ss / (n - 1))
	return mean, 1.96 * sd / math.Sqrt(n)
}

// RunFigure executes every cell of a figure and prints its series.
func (r *Runner) RunFigure(fig workload.Figure, w io.Writer) ([]Cell, error) {
	fmt.Fprintf(w, "Figure %d: %s\n", fig.Number, fig.Title)
	fmt.Fprintf(w, "(scale factor %g, %d repetition(s); metric: %s)\n\n",
		r.cfg.ScaleFactor, r.cfg.Repetitions, fig.Metric)

	header := fmt.Sprintf("%-6s", "query")
	for _, s := range fig.Strategies {
		header += fmt.Sprintf("%16s", s)
	}
	fmt.Fprintln(w, header)

	var cells []Cell
	for _, qid := range fig.Queries {
		spec, err := workload.ByID(qid)
		if err != nil {
			return nil, err
		}
		row := fmt.Sprintf("%-6s", qid)
		for _, strat := range fig.Strategies {
			cell, err := r.RunCell(spec, strat, fig.Delayed[qid])
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
			switch fig.Metric {
			case "state":
				row += fmt.Sprintf("%13.2fMB", cell.StateMB)
			default:
				row += fmt.Sprintf("%11s±%3dms", cell.Mean.Round(time.Millisecond),
					cell.CI95.Milliseconds())
			}
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintln(w)
	return cells, nil
}

// Summarize renders shape checks over a figure's cells: per query, which
// strategy won and the baseline-relative factors. EXPERIMENTS.md is built
// from this output.
func Summarize(cells []Cell, metric string, w io.Writer) {
	byQuery := map[string][]Cell{}
	var order []string
	for _, c := range cells {
		if _, ok := byQuery[c.Query]; !ok {
			order = append(order, c.Query)
		}
		byQuery[c.Query] = append(byQuery[c.Query], c)
	}
	for _, q := range order {
		group := byQuery[q]
		val := func(c Cell) float64 {
			if metric == "state" {
				return c.StateMB
			}
			return float64(c.Mean)
		}
		var base float64
		for _, c := range group {
			if c.Strategy == "Baseline" {
				base = val(c)
			}
		}
		sort.Slice(group, func(i, j int) bool { return val(group[i]) < val(group[j]) })
		fmt.Fprintf(w, "%s: winner=%s", q, group[0].Strategy)
		if base > 0 {
			for _, c := range group {
				fmt.Fprintf(w, "  %s=%.2fx", c.Strategy, val(c)/base)
			}
		}
		fmt.Fprintln(w)
	}
}

package harness

import (
	"bytes"
	"context"
	"sort"
	"strings"
	"testing"

	sip "repro"
	"repro/internal/workload"
)

// sharedRunner caches the generated catalogs across tests in this package.
var sharedRunner = New(Config{ScaleFactor: 0.005, Repetitions: 1})

func canon(rows []sip.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = canonValue(v)
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// TestAllWorkloadQueriesAgreeAcrossStrategies is the central correctness
// gate: every Table I query must produce identical results under Baseline,
// Magic, Feed-forward, and Cost-based execution.
func TestAllWorkloadQueriesAgreeAcrossStrategies(t *testing.T) {
	for _, spec := range workload.Queries() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			eng := sharedRunner.Engine(spec.Skewed)
			sql := spec.SQL(eng.Catalog())
			var baseline []string
			for _, strat := range []sip.Strategy{sip.Baseline, sip.Magic, sip.FeedForward, sip.CostBased} {
				res, err := eng.Query(context.Background(), sql, sip.Options{Strategy: strat, RemoteTables: spec.Remote})
				if err != nil {
					t.Fatalf("%v failed: %v", strat, err)
				}
				got := canon(res.Rows)
				if strat == sip.Baseline {
					baseline = got
					if len(baseline) == 0 {
						t.Logf("note: %s returns no rows at this scale", spec.ID)
					}
					continue
				}
				if len(got) != len(baseline) {
					t.Fatalf("%v: %d rows, baseline %d", strat, len(got), len(baseline))
				}
				for i := range got {
					if got[i] != baseline[i] {
						t.Fatalf("%v row %d:\n got %q\nwant %q", strat, i, got[i], baseline[i])
					}
				}
			}
		})
	}
}

func TestRunCellProducesMeasurement(t *testing.T) {
	spec, err := workload.ByID("Q3A")
	if err != nil {
		t.Fatal(err)
	}
	cell, err := sharedRunner.RunCell(spec, "Feed-forward", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Mean <= 0 {
		t.Fatalf("expected positive runtime, got %v", cell.Mean)
	}
	if cell.StateMB <= 0 {
		t.Fatalf("expected state accounting, got %v MB", cell.StateMB)
	}
}

func TestRunFigurePrintsSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run in -short mode")
	}
	fig, err := workload.FigureByNumber(6)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cells, err := sharedRunner.RunFigure(fig, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(fig.Queries) * len(fig.Strategies); len(cells) != want {
		t.Fatalf("expected %d cells, got %d", want, len(cells))
	}
	out := buf.String()
	for _, q := range fig.Queries {
		if !strings.Contains(out, q) {
			t.Fatalf("figure output missing query %s:\n%s", q, out)
		}
	}
	var sum bytes.Buffer
	Summarize(cells, fig.Metric, &sum)
	if !strings.Contains(sum.String(), "winner=") {
		t.Fatalf("summary missing winners:\n%s", sum.String())
	}
}

func canonValue(v sip.Value) string { return sip.FormatValueRounded(v, 9) }

// Package catalog holds table metadata and data for the engine: schemas,
// keys, foreign keys, and the statistics the optimizer's cost modeler uses.
// Per the paper (§V-A), the cost modeler "does not require histograms:
// instead, it relies on cardinality estimates and information about keys and
// foreign keys when estimating the selectivity of join conditions."
package catalog

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/types"
)

// ForeignKey declares that Cols in this table reference RefCols of RefTable.
type ForeignKey struct {
	Cols     []string
	RefTable string
	RefCols  []string
}

// Table is a base relation: schema, data, and optimizer metadata.
type Table struct {
	Name        string
	Schema      *types.Schema
	Rows        []types.Tuple
	PrimaryKey  []string
	ForeignKeys []ForeignKey

	// DistinctEst maps a column name to an estimated distinct-value count.
	// Populated by the generator; consulted by the cost modeler.
	DistinctEst map[string]int64
}

// NumRows returns the table cardinality.
func (t *Table) NumRows() int64 { return int64(len(t.Rows)) }

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Schema.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// IsKey reports whether the named column is (the whole of) the primary key,
// i.e. whether it is unique. Used for key/FK-based join selectivity.
func (t *Table) IsKey(col string) bool {
	return len(t.PrimaryKey) == 1 && strings.EqualFold(t.PrimaryKey[0], col)
}

// Distinct returns the estimated number of distinct values in the column,
// falling back to the row count for key columns and a heuristic fraction
// otherwise.
func (t *Table) Distinct(col string) int64 {
	if d, ok := t.DistinctEst[strings.ToLower(col)]; ok {
		return d
	}
	if t.IsKey(col) {
		return t.NumRows()
	}
	if n := t.NumRows(); n > 0 {
		// Uniform fallback: assume one-tenth distinct, at least 1.
		d := n / 10
		if d < 1 {
			d = 1
		}
		return d
	}
	return 1
}

// SetDistinct records a distinct-count estimate for a column.
func (t *Table) SetDistinct(col string, n int64) {
	if t.DistinctEst == nil {
		t.DistinctEst = make(map[string]int64)
	}
	t.DistinctEst[strings.ToLower(col)] = n
}

// MemBytes returns the approximate memory footprint of the table data.
func (t *Table) MemBytes() int64 {
	var n int64
	for _, row := range t.Rows {
		n += int64(row.MemSize())
	}
	return n
}

// Catalog is a named collection of tables.
type Catalog struct {
	tables  map[string]*Table
	order   []string
	version atomic.Int64
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Add registers a table; it replaces any previous table of the same name
// and bumps the catalog version, invalidating plans compiled against the
// old contents.
func (c *Catalog) Add(t *Table) {
	key := strings.ToLower(t.Name)
	if _, exists := c.tables[key]; !exists {
		c.order = append(c.order, key)
	}
	c.tables[key] = t
	c.version.Add(1)
}

// Version is the catalog's mutation counter: it changes every time Add
// registers or replaces a table. Plan caches key compiled plans by it, so
// a stale plan (snapshotting a replaced table's rows or statistics) is
// never served after the catalog moves on. Mutating a *Table in place does
// not bump the version; replace it through Add.
func (c *Catalog) Version() int64 { return c.version.Load() }

// Table looks up a table by (case-insensitive) name.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %q", name)
	}
	return t, nil
}

// Has reports whether the named table exists.
func (c *Catalog) Has(name string) bool {
	_, ok := c.tables[strings.ToLower(name)]
	return ok
}

// Names returns table names in registration order.
func (c *Catalog) Names() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// FKJoinSelectivity estimates the fraction of the cross product surviving an
// equijoin between left.lcol and right.rcol using key/FK knowledge: when one
// side is a key the selectivity is 1/|keyside| (each non-key row matches at
// most one key row); otherwise 1/max(distinct(l), distinct(r)), the
// classical System-R estimate.
func FKJoinSelectivity(left *Table, lcol string, right *Table, rcol string) float64 {
	switch {
	case left.IsKey(lcol) && left.NumRows() > 0:
		return 1.0 / float64(left.NumRows())
	case right.IsKey(rcol) && right.NumRows() > 0:
		return 1.0 / float64(right.NumRows())
	default:
		dl, dr := left.Distinct(lcol), right.Distinct(rcol)
		d := dl
		if dr > d {
			d = dr
		}
		if d < 1 {
			d = 1
		}
		return 1.0 / float64(d)
	}
}

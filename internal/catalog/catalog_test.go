package catalog

import (
	"testing"

	"repro/internal/types"
)

func sampleTable() *Table {
	sch := types.NewSchema(
		types.Column{Table: "t", Name: "id", Kind: types.KindInt},
		types.Column{Table: "t", Name: "grp", Kind: types.KindInt},
	)
	rows := make([]types.Tuple, 100)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i)), types.Int(int64(i % 10))}
	}
	t := &Table{Name: "t", Schema: sch, Rows: rows, PrimaryKey: []string{"id"}}
	t.SetDistinct("grp", 10)
	return t
}

func TestCatalogAddLookup(t *testing.T) {
	c := New()
	c.Add(sampleTable())
	tbl, err := c.Table("T") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 100 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if !c.Has("t") || c.Has("missing") {
		t.Fatal("Has() wrong")
	}
	if _, err := c.Table("missing"); err == nil {
		t.Fatal("missing table must error")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "t" {
		t.Fatalf("Names = %v", names)
	}
	// Replacing keeps single entry.
	c.Add(sampleTable())
	if len(c.Names()) != 1 {
		t.Fatal("replacement duplicated name")
	}
}

func TestTableMetadata(t *testing.T) {
	tbl := sampleTable()
	if tbl.ColumnIndex("grp") != 1 || tbl.ColumnIndex("GRP") != 1 {
		t.Fatal("ColumnIndex wrong")
	}
	if tbl.ColumnIndex("nope") != -1 {
		t.Fatal("missing column should be -1")
	}
	if !tbl.IsKey("id") || tbl.IsKey("grp") {
		t.Fatal("IsKey wrong")
	}
	if tbl.Distinct("id") != 100 {
		t.Fatalf("key distinct = %d", tbl.Distinct("id"))
	}
	if tbl.Distinct("grp") != 10 {
		t.Fatalf("recorded distinct = %d", tbl.Distinct("grp"))
	}
	// Fallback heuristic for unknown columns.
	if d := tbl.Distinct("unknown"); d != 10 {
		t.Fatalf("fallback distinct = %d, want rows/10", d)
	}
	if tbl.MemBytes() <= 0 {
		t.Fatal("MemBytes must be positive")
	}
}

func TestCompositeKeyIsNotSingleKey(t *testing.T) {
	tbl := sampleTable()
	tbl.PrimaryKey = []string{"id", "grp"}
	if tbl.IsKey("id") {
		t.Fatal("part of a composite key is not unique by itself")
	}
}

func TestFKJoinSelectivity(t *testing.T) {
	key := sampleTable() // 100 rows, id is key
	fact := &Table{
		Name: "f",
		Schema: types.NewSchema(
			types.Column{Table: "f", Name: "tid", Kind: types.KindInt}),
		Rows: make([]types.Tuple, 1000),
	}
	fact.SetDistinct("tid", 100)

	// Key side: selectivity = 1/|key table|.
	if got := FKJoinSelectivity(key, "id", fact, "tid"); got != 0.01 {
		t.Fatalf("key selectivity = %v", got)
	}
	if got := FKJoinSelectivity(fact, "tid", key, "id"); got != 0.01 {
		t.Fatalf("reversed key selectivity = %v", got)
	}
	// Non-key: 1/max(distincts).
	if got := FKJoinSelectivity(fact, "tid", fact, "tid"); got != 0.01 {
		t.Fatalf("non-key selectivity = %v", got)
	}
	// Empty tables must not divide by zero.
	empty := &Table{Name: "e", Schema: key.Schema, PrimaryKey: []string{"id"}}
	if got := FKJoinSelectivity(empty, "id", fact, "tid"); got <= 0 {
		t.Fatalf("empty-table selectivity = %v", got)
	}
}

func TestDistinctOnEmptyTable(t *testing.T) {
	empty := &Table{Name: "e", Schema: sampleTable().Schema}
	if empty.Distinct("grp") != 1 {
		t.Fatal("empty table distinct should floor at 1")
	}
}

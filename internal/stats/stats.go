// Package stats provides the runtime instrumentation the paper's engine
// exposes: per-operator cardinality counters (§V-A, "all query operators are
// supplemented with cardinality counters") and intermediate-state accounting
// used to reproduce the space-usage figures (7, 8, 11, 12, 14).
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a concurrency-safe monotonic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// reset zeroes the counter (registry pooling; no concurrent users).
func (c *Counter) reset() { c.v.Store(0) }

// Gauge tracks a current value and its high-water mark.
type Gauge struct {
	cur  atomic.Int64
	peak atomic.Int64
}

// Add moves the gauge by delta (which may be negative) and updates the peak.
func (g *Gauge) Add(delta int64) {
	n := g.cur.Add(delta)
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			return
		}
	}
}

// Current returns the present value.
func (g *Gauge) Current() int64 { return g.cur.Load() }

// Peak returns the high-water mark.
func (g *Gauge) Peak() int64 { return g.peak.Load() }

// PartStats is one partition's contribution to a partitioned operator's
// buffered state. The totals are still folded into the owning OpStats
// (StateRows/StateBytes); the per-partition breakdown exposes radix skew.
type PartStats struct {
	Rows  Counter // tuples buffered by this partition
	Bytes Counter // bytes buffered by this partition
}

// OpStats is the per-operator instrumentation block. Operators update it as
// they run; the AIP Manager and the figure harness read it.
type OpStats struct {
	Name  string
	Class string // operator kind, the Name prefix before ':' (scan, join, agg, …)

	In         Counter // tuples received
	Out        Counter // tuples emitted
	Pruned     Counter // tuples dropped by injected AIP filters
	StateRows  Counter // tuples buffered into operator state
	StateBytes Gauge   // bytes of buffered state (current/peak)

	// FilterBytes counts bytes of published AIP summaries built from this
	// operator's state; FilterWorking tracks the in-progress working-set
	// bytes while those summaries are being built (current/peak), released
	// when the working sets are merged or discarded at PointDone.
	FilterBytes   Counter
	FilterWorking Gauge

	Attempts    Counter // remote interactions attempted (first tries + retries)
	Retries     Counter // re-attempts after a failed remote interaction
	WastedBytes Counter // modeled bytes consumed by attempts that failed

	// SpillBytes counts bytes this operator wrote to spill runs under memory
	// pressure; SpillEvents counts its bucket-discard evictions. Partitioned
	// two-input operators (the join) carry both on their left-side block.
	SpillBytes  Counter
	SpillEvents Counter

	parts []PartStats // per-partition state counters; nil for unpartitioned ops
}

// reset returns the block to its zero state for reuse (registry pooling).
func (o *OpStats) reset() {
	o.Name, o.Class = "", ""
	o.In.reset()
	o.Out.reset()
	o.Pruned.reset()
	o.StateRows.reset()
	o.StateBytes.cur.Store(0)
	o.StateBytes.peak.Store(0)
	o.FilterBytes.reset()
	o.FilterWorking.cur.Store(0)
	o.FilterWorking.peak.Store(0)
	o.Attempts.reset()
	o.Retries.reset()
	o.WastedBytes.reset()
	o.SpillBytes.reset()
	o.SpillEvents.reset()
	o.parts = nil
}

// SetPartitions sizes the per-partition counter blocks. Partitioned
// operators call it once at Start, before any worker runs.
func (o *OpStats) SetPartitions(n int) {
	if n > 0 {
		o.parts = make([]PartStats, n)
	}
}

// Part returns partition i's counter block; SetPartitions must have covered i.
func (o *OpStats) Part(i int) *PartStats { return &o.parts[i] }

// Partitions returns the partition fan-out (0 for unpartitioned operators).
func (o *OpStats) Partitions() int { return len(o.parts) }

// PartitionSkew summarizes radix balance: the largest and the mean
// per-partition buffered row count. A max far above the mean means the key
// distribution defeated the radix split. Returns zeros when unpartitioned.
func (o *OpStats) PartitionSkew() (maxRows, meanRows int64) {
	if len(o.parts) == 0 {
		return 0, 0
	}
	var total int64
	for i := range o.parts {
		r := o.parts[i].Rows.Load()
		total += r
		if r > maxRows {
			maxRows = r
		}
	}
	return maxRows, total / int64(len(o.parts))
}

// Registry aggregates the OpStats of one query execution.
type Registry struct {
	mu   sync.Mutex
	ops  []*OpStats
	free []*OpStats // retired blocks awaiting reuse (registry pooling)

	FilterBytes        Counter // memory spent on AIP summary structures
	FiltersMade        Counter // AIP sets constructed
	FiltersUsed        Counter // filter injections performed
	NetworkBytes       Counter // bytes shipped across simulated links
	FilterNetWork      Counter // of which, AIP filter payloads
	BreakerTransitions Counter // circuit-breaker state changes across sites

	// Work-stealing scheduler counters (morsel engine only; all zero on
	// the chan path). Morsels/steals/parks sit next to the per-partition
	// skew counters so steal storms and idle workers are visible in the
	// same report as radix skew.
	SchedMorsels Counter // pool tasks executed
	SchedSteals  Counter // tasks taken from another worker's deque
	SchedParks   Counter // worker park (sleep) transitions
	SchedUnparks Counter // worker wakeups for new work

	schedMu      sync.Mutex
	schedWorkers int
	schedBusy    []time.Duration // per pool worker: time spent running tasks
}

// NewRegistry creates an empty stats registry.
func NewRegistry() *Registry { return &Registry{} }

var registryPool = sync.Pool{New: func() any { return &Registry{} }}

// GetRegistry returns a pooled, zeroed registry. Pair with Release once no
// goroutine can touch the registry or any OpStats handed out from it — the
// engine's pooled-stats mode waits for every operator goroutine to exit
// before releasing. Saves the per-query allocation of the registry and its
// OpStats blocks on hot serving paths.
func GetRegistry() *Registry { return registryPool.Get().(*Registry) }

// Release resets the registry and returns it to the pool. The caller must
// guarantee exclusive access: no operator may still hold an OpStats from it.
func (r *Registry) Release() {
	r.Reset()
	registryPool.Put(r)
}

// Reset clears all counters and retires the operator blocks for reuse by
// later NewOp calls. Callers must have exclusive access.
func (r *Registry) Reset() {
	r.mu.Lock()
	for _, op := range r.ops {
		op.reset()
	}
	r.free = append(r.free, r.ops...)
	r.ops = r.ops[:0]
	r.mu.Unlock()
	r.FilterBytes.reset()
	r.FiltersMade.reset()
	r.FiltersUsed.reset()
	r.NetworkBytes.reset()
	r.FilterNetWork.reset()
	r.BreakerTransitions.reset()
	r.SchedMorsels.reset()
	r.SchedSteals.reset()
	r.SchedParks.reset()
	r.SchedUnparks.reset()
	r.schedMu.Lock()
	r.schedWorkers = 0
	r.schedBusy = nil
	r.schedMu.Unlock()
}

// RecordSched publishes one execution's work-stealing pool counters. The
// exec layer calls it once, after the pool has fully quiesced.
func (r *Registry) RecordSched(workers int, morsels, steals, parks, unparks int64, busy []time.Duration) {
	r.SchedMorsels.Add(morsels)
	r.SchedSteals.Add(steals)
	r.SchedParks.Add(parks)
	r.SchedUnparks.Add(unparks)
	r.schedMu.Lock()
	r.schedWorkers = workers
	r.schedBusy = append([]time.Duration(nil), busy...)
	r.schedMu.Unlock()
}

// SchedBusy returns the last recorded pool width and per-worker busy
// times (nil when the execution ran on the chan scheduler).
func (r *Registry) SchedBusy() (workers int, busy []time.Duration) {
	r.schedMu.Lock()
	defer r.schedMu.Unlock()
	return r.schedWorkers, append([]time.Duration(nil), r.schedBusy...)
}

// NewOp registers and returns a stats block for a named operator. The
// operator class is derived from the conventional "kind:name" form.
func (r *Registry) NewOp(name string) *OpStats {
	r.mu.Lock()
	var op *OpStats
	if n := len(r.free); n > 0 {
		op = r.free[n-1]
		r.free = r.free[:n-1]
	} else {
		op = &OpStats{}
	}
	op.Name = name
	if i := strings.IndexByte(name, ':'); i > 0 {
		op.Class = name[:i]
	}
	r.ops = append(r.ops, op)
	r.mu.Unlock()
	return op
}

// Ops returns a snapshot of the registered operator blocks.
func (r *Registry) Ops() []*OpStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*OpStats, len(r.ops))
	copy(out, r.ops)
	return out
}

// PeakStateBytes totals the per-operator state high-water marks plus AIP
// summary memory: the "intermediate state" series of the space figures.
func (r *Registry) PeakStateBytes() int64 {
	var total int64
	for _, op := range r.Ops() {
		total += op.StateBytes.Peak()
	}
	return total + r.FilterBytes.Load()
}

// PeakFilterWorkingBytes totals the per-operator high-water marks of
// in-progress AIP working-set memory: the transient cost of building
// summaries, the quantity the striped per-slot working sets shrink.
func (r *Registry) PeakFilterWorkingBytes() int64 {
	var total int64
	for _, op := range r.Ops() {
		total += op.FilterWorking.Peak()
	}
	return total
}

// TotalIn sums tuples received across all operators: the engine's total
// tuple-processing volume, the numerator of benchmark tuples/sec.
func (r *Registry) TotalIn() int64 {
	var total int64
	for _, op := range r.Ops() {
		total += op.In.Load()
	}
	return total
}

// TotalScanned sums tuples emitted by base-table scans: the query's input
// volume, comparable across plan shapes and with the join microbench's
// input-tuples/sec (unlike TotalIn, which shifts with operator count).
func (r *Registry) TotalScanned() int64 {
	var total int64
	for _, op := range r.Ops() {
		if op.Class == "scan" {
			total += op.Out.Load()
		}
	}
	return total
}

// TotalPruned sums tuples dropped by AIP filters across operators.
func (r *Registry) TotalPruned() int64 {
	var total int64
	for _, op := range r.Ops() {
		total += op.Pruned.Load()
	}
	return total
}

// TotalRetries sums remote-interaction re-attempts across operators.
func (r *Registry) TotalRetries() int64 {
	var total int64
	for _, op := range r.Ops() {
		total += op.Retries.Load()
	}
	return total
}

// TotalWastedBytes sums the modeled bytes consumed by failed remote
// attempts across operators — bandwidth the recovery layer burned.
func (r *Registry) TotalWastedBytes() int64 {
	var total int64
	for _, op := range r.Ops() {
		total += op.WastedBytes.Load()
	}
	return total
}

// TotalSpillBytes sums bytes written to spill runs across operators.
func (r *Registry) TotalSpillBytes() int64 {
	var total int64
	for _, op := range r.Ops() {
		total += op.SpillBytes.Load()
	}
	return total
}

// TotalSpillEvents sums bucket-discard evictions across operators.
func (r *Registry) TotalSpillEvents() int64 {
	var total int64
	for _, op := range r.Ops() {
		total += op.SpillEvents.Load()
	}
	return total
}

// Report renders a per-operator table, sorted by name, for debugging and
// the CLI's -v mode.
func (r *Registry) Report() string {
	ops := r.Ops()
	sort.Slice(ops, func(i, j int) bool { return ops[i].Name < ops[j].Name })
	out := fmt.Sprintf("%-40s %10s %10s %10s %12s %s\n", "operator", "in", "out", "pruned", "state-peak", "partitions")
	for _, op := range ops {
		parts := ""
		if n := op.Partitions(); n > 0 {
			mx, mean := op.PartitionSkew()
			parts = fmt.Sprintf("P=%d max/mean=%d/%d", n, mx, mean)
		}
		if a := op.Attempts.Load(); a > 0 {
			if parts != "" {
				parts += " "
			}
			parts += fmt.Sprintf("attempts=%d retries=%d wasted=%dB",
				a, op.Retries.Load(), op.WastedBytes.Load())
		}
		if fb, fw := op.FilterBytes.Load(), op.FilterWorking.Peak(); fb > 0 || fw > 0 {
			if parts != "" {
				parts += " "
			}
			parts += fmt.Sprintf("filter=%dB work-peak=%dB", fb, fw)
		}
		if se := op.SpillEvents.Load(); se > 0 {
			if parts != "" {
				parts += " "
			}
			parts += fmt.Sprintf("spills=%d spill-bytes=%dB", se, op.SpillBytes.Load())
		}
		out += fmt.Sprintf("%-40s %10d %10d %10d %12d %s\n",
			op.Name, op.In.Load(), op.Out.Load(), op.Pruned.Load(), op.StateBytes.Peak(), parts)
	}
	out += fmt.Sprintf("filters: made=%d used=%d bytes=%d work-peak=%d; network bytes=%d (filters %d)\n",
		r.FiltersMade.Load(), r.FiltersUsed.Load(), r.FilterBytes.Load(),
		r.PeakFilterWorkingBytes(), r.NetworkBytes.Load(), r.FilterNetWork.Load())
	if t := r.BreakerTransitions.Load() + r.TotalRetries(); t > 0 {
		out += fmt.Sprintf("recovery: retries=%d wasted-bytes=%d breaker-transitions=%d\n",
			r.TotalRetries(), r.TotalWastedBytes(), r.BreakerTransitions.Load())
	}
	if se := r.TotalSpillEvents(); se > 0 {
		out += fmt.Sprintf("spill: events=%d bytes=%d\n", se, r.TotalSpillBytes())
	}
	if r.SchedMorsels.Load() > 0 {
		w, busy := r.SchedBusy()
		var bs []string
		for _, d := range busy {
			bs = append(bs, d.Round(time.Microsecond).String())
		}
		out += fmt.Sprintf("sched: workers=%d morsels=%d steals=%d parks=%d unparks=%d busy=[%s]\n",
			w, r.SchedMorsels.Load(), r.SchedSteals.Load(),
			r.SchedParks.Load(), r.SchedUnparks.Load(), strings.Join(bs, " "))
	}
	return out
}

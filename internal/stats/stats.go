// Package stats provides the runtime instrumentation the paper's engine
// exposes: per-operator cardinality counters (§V-A, "all query operators are
// supplemented with cardinality counters") and intermediate-state accounting
// used to reproduce the space-usage figures (7, 8, 11, 12, 14).
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a concurrency-safe monotonic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge tracks a current value and its high-water mark.
type Gauge struct {
	cur  atomic.Int64
	peak atomic.Int64
}

// Add moves the gauge by delta (which may be negative) and updates the peak.
func (g *Gauge) Add(delta int64) {
	n := g.cur.Add(delta)
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			return
		}
	}
}

// Current returns the present value.
func (g *Gauge) Current() int64 { return g.cur.Load() }

// Peak returns the high-water mark.
func (g *Gauge) Peak() int64 { return g.peak.Load() }

// PartStats is one partition's contribution to a partitioned operator's
// buffered state. The totals are still folded into the owning OpStats
// (StateRows/StateBytes); the per-partition breakdown exposes radix skew.
type PartStats struct {
	Rows  Counter // tuples buffered by this partition
	Bytes Counter // bytes buffered by this partition
}

// OpStats is the per-operator instrumentation block. Operators update it as
// they run; the AIP Manager and the figure harness read it.
type OpStats struct {
	Name  string
	Class string // operator kind, the Name prefix before ':' (scan, join, agg, …)

	In         Counter // tuples received
	Out        Counter // tuples emitted
	Pruned     Counter // tuples dropped by injected AIP filters
	StateRows  Counter // tuples buffered into operator state
	StateBytes Gauge   // bytes of buffered state (current/peak)

	parts []PartStats // per-partition state counters; nil for unpartitioned ops
}

// SetPartitions sizes the per-partition counter blocks. Partitioned
// operators call it once at Start, before any worker runs.
func (o *OpStats) SetPartitions(n int) {
	if n > 0 {
		o.parts = make([]PartStats, n)
	}
}

// Part returns partition i's counter block; SetPartitions must have covered i.
func (o *OpStats) Part(i int) *PartStats { return &o.parts[i] }

// Partitions returns the partition fan-out (0 for unpartitioned operators).
func (o *OpStats) Partitions() int { return len(o.parts) }

// PartitionSkew summarizes radix balance: the largest and the mean
// per-partition buffered row count. A max far above the mean means the key
// distribution defeated the radix split. Returns zeros when unpartitioned.
func (o *OpStats) PartitionSkew() (maxRows, meanRows int64) {
	if len(o.parts) == 0 {
		return 0, 0
	}
	var total int64
	for i := range o.parts {
		r := o.parts[i].Rows.Load()
		total += r
		if r > maxRows {
			maxRows = r
		}
	}
	return maxRows, total / int64(len(o.parts))
}

// Registry aggregates the OpStats of one query execution.
type Registry struct {
	mu  sync.Mutex
	ops []*OpStats

	FilterBytes   Counter // memory spent on AIP summary structures
	FiltersMade   Counter // AIP sets constructed
	FiltersUsed   Counter // filter injections performed
	NetworkBytes  Counter // bytes shipped across simulated links
	FilterNetWork Counter // of which, AIP filter payloads
}

// NewRegistry creates an empty stats registry.
func NewRegistry() *Registry { return &Registry{} }

// NewOp registers and returns a stats block for a named operator. The
// operator class is derived from the conventional "kind:name" form.
func (r *Registry) NewOp(name string) *OpStats {
	op := &OpStats{Name: name}
	if i := strings.IndexByte(name, ':'); i > 0 {
		op.Class = name[:i]
	}
	r.mu.Lock()
	r.ops = append(r.ops, op)
	r.mu.Unlock()
	return op
}

// Ops returns a snapshot of the registered operator blocks.
func (r *Registry) Ops() []*OpStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*OpStats, len(r.ops))
	copy(out, r.ops)
	return out
}

// PeakStateBytes totals the per-operator state high-water marks plus AIP
// summary memory: the "intermediate state" series of the space figures.
func (r *Registry) PeakStateBytes() int64 {
	var total int64
	for _, op := range r.Ops() {
		total += op.StateBytes.Peak()
	}
	return total + r.FilterBytes.Load()
}

// TotalIn sums tuples received across all operators: the engine's total
// tuple-processing volume, the numerator of benchmark tuples/sec.
func (r *Registry) TotalIn() int64 {
	var total int64
	for _, op := range r.Ops() {
		total += op.In.Load()
	}
	return total
}

// TotalScanned sums tuples emitted by base-table scans: the query's input
// volume, comparable across plan shapes and with the join microbench's
// input-tuples/sec (unlike TotalIn, which shifts with operator count).
func (r *Registry) TotalScanned() int64 {
	var total int64
	for _, op := range r.Ops() {
		if op.Class == "scan" {
			total += op.Out.Load()
		}
	}
	return total
}

// TotalPruned sums tuples dropped by AIP filters across operators.
func (r *Registry) TotalPruned() int64 {
	var total int64
	for _, op := range r.Ops() {
		total += op.Pruned.Load()
	}
	return total
}

// Report renders a per-operator table, sorted by name, for debugging and
// the CLI's -v mode.
func (r *Registry) Report() string {
	ops := r.Ops()
	sort.Slice(ops, func(i, j int) bool { return ops[i].Name < ops[j].Name })
	out := fmt.Sprintf("%-40s %10s %10s %10s %12s %s\n", "operator", "in", "out", "pruned", "state-peak", "partitions")
	for _, op := range ops {
		parts := ""
		if n := op.Partitions(); n > 0 {
			mx, mean := op.PartitionSkew()
			parts = fmt.Sprintf("P=%d max/mean=%d/%d", n, mx, mean)
		}
		out += fmt.Sprintf("%-40s %10d %10d %10d %12d %s\n",
			op.Name, op.In.Load(), op.Out.Load(), op.Pruned.Load(), op.StateBytes.Peak(), parts)
	}
	out += fmt.Sprintf("filters: made=%d used=%d bytes=%d; network bytes=%d (filters %d)\n",
		r.FiltersMade.Load(), r.FiltersUsed.Load(), r.FilterBytes.Load(),
		r.NetworkBytes.Load(), r.FilterNetWork.Load())
	return out
}

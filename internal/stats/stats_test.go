package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d", c.Load())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
}

func TestGaugePeak(t *testing.T) {
	var g Gauge
	g.Add(10)
	g.Add(5)
	g.Add(-12)
	if g.Current() != 3 {
		t.Fatalf("current = %d", g.Current())
	}
	if g.Peak() != 15 {
		t.Fatalf("peak = %d", g.Peak())
	}
	g.Add(100)
	if g.Peak() != 103 {
		t.Fatalf("peak after growth = %d", g.Peak())
	}
}

func TestGaugeConcurrentPeak(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if g.Peak() != 8000 || g.Current() != 8000 {
		t.Fatalf("peak=%d current=%d", g.Peak(), g.Current())
	}
}

func TestRegistryAggregation(t *testing.T) {
	r := NewRegistry()
	a := r.NewOp("scan:x")
	b := r.NewOp("join:y")
	a.StateBytes.Add(100)
	a.StateBytes.Add(-50)
	b.StateBytes.Add(200)
	r.FilterBytes.Add(10)
	if got := r.PeakStateBytes(); got != 100+200+10 {
		t.Fatalf("PeakStateBytes = %d", got)
	}
	a.Pruned.Add(3)
	b.Pruned.Add(4)
	if r.TotalPruned() != 7 {
		t.Fatalf("TotalPruned = %d", r.TotalPruned())
	}
	if len(r.Ops()) != 2 {
		t.Fatal("ops lost")
	}
}

func TestReportFormat(t *testing.T) {
	r := NewRegistry()
	op := r.NewOp("agg:test")
	op.In.Add(10)
	op.Out.Add(2)
	rep := r.Report()
	for _, want := range []string{"agg:test", "10", "filters:"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

package exec

import (
	"repro/internal/network"
	"repro/internal/types"
)

// Ship moves its child's output across a simulated network link: the
// sender side of a distributed exchange. Its Point is a probe-only AIP
// injection point executing at the remote site — attaching a filter here
// prunes tuples *before* they cross the wire, which is exactly the
// Bloomjoin-style saving the paper's distributed experiments (Q1C, Q3C)
// measure.
type Ship struct {
	Name  string
	Child Op
	Link  *network.Link
	Point *Point
}

// Schema returns the child schema.
func (s *Ship) Schema() *types.Schema { return s.Child.Schema() }

// Start launches the shipping goroutine.
func (s *Ship) Start(ctx *Context) <-chan Batch {
	in := s.Child.Start(ctx)
	out := make(chan Batch, ctx.pipeDepth())
	op := ctx.Stats.NewOp("ship:" + s.Name)
	go func() {
		defer close(out)
		var bankHasher types.Hasher
		for b := range in {
			nIn := int64(b.Len())
			var pruned int64
			nbytes := 0
			// Mark the tuples that survive the remote-side AIP filters with
			// a selection vector instead of copying them; only survivors
			// are charged to the simulated link.
			var kept []int32
			if b.Sel != nil {
				kept = b.Sel[:0]
			} else {
				kept = getSel()
			}
			for _, l := range b.Live() {
				t := b.Tuples[l]
				if s.Point != nil && !s.Point.Bank.ProbeHashed(t, nil, 0, nil, &bankHasher) {
					pruned++
					continue
				}
				kept = append(kept, l)
				nbytes += t.MemSize()
			}
			op.In.Add(nIn)
			op.Pruned.Add(pruned)
			if s.Point != nil {
				s.Point.received.Add(nIn)
			}
			if len(kept) > 0 && s.Link != nil {
				if !s.Link.Transfer(nbytes, ctx.Cancelled()) {
					return
				}
				ctx.Stats.NetworkBytes.Add(int64(nbytes))
			}
			b.Sel = kept
			if len(kept) == 0 {
				PutBatch(b)
				continue
			}
			n := int64(len(kept))
			if !send(ctx, out, b) {
				return
			}
			op.Out.Add(n)
		}
		if s.Point != nil {
			s.Point.done.Store(true)
			ctx.pointDone(s.Point)
		}
	}()
	return out
}

package exec

import (
	"errors"

	"repro/internal/network"
	"repro/internal/types"
)

// Ship moves its child's output across a simulated network link: the
// sender side of a distributed exchange. Its Point is a probe-only AIP
// injection point executing at the remote site — attaching a filter here
// prunes tuples *before* they cross the wire, which is exactly the
// Bloomjoin-style saving the paper's distributed experiments (Q1C, Q3C)
// measure.
//
// When the link carries a fault profile, every batch transfer runs under
// the Context's recovery policy: per-attempt timeouts, bounded retries with
// backoff, and the remote site's circuit breaker. A batch is delivered
// downstream only after its transfer succeeds, so retries never duplicate
// tuples; a source that stays dead fails the query or degrades it to a
// partial result per the FailureMode.
type Ship struct {
	Name  string
	Child Op
	Link  *network.Link
	Point *Point

	// Table is the base table being shipped (names the source in
	// SourceError); Site is the remote site, keying its circuit breaker.
	Table string
	Site  int
}

// Schema returns the child schema.
func (s *Ship) Schema() *types.Schema { return s.Child.Schema() }

// Start launches the shipping goroutine.
func (s *Ship) Start(ctx *Context) <-chan Batch {
	in := s.Child.Start(ctx)
	out := make(chan Batch, ctx.pipeDepth())
	op := ctx.Stats.NewOp("ship:" + s.Name)
	if s.Point != nil {
		s.Point.Op = op
	}
	// The retry driver exists only for faulty links: a reliable simulated
	// link cannot fail (only cancellation interrupts it), so the fault-free
	// path stays identical to the baseline engine.
	var ret *retrier
	if s.Link != nil && s.Link.Faults.Active() {
		ret = newRetrier(ctx, op, s.Site, "ship:"+s.Name)
	}
	ctx.Spawn(func() {
		defer close(out)
		var sc ProbeScratch
		for b := range in {
			nIn := int64(b.Len())
			nbytes := 0
			// Mark the tuples that survive the remote-side AIP filters with
			// a selection vector instead of copying them; only survivors
			// are charged to the simulated link.
			var kept []int32
			if b.Sel != nil {
				kept = b.Sel[:0]
			} else {
				kept = getSel()
			}
			if s.Point != nil && s.Point.Bank.Len() > 0 {
				kept = s.Point.Bank.ProbeBatch(b.Tuples, nil, b.Live(), kept, &sc)
			} else {
				kept = append(kept, b.Live()...)
			}
			pruned := nIn - int64(len(kept))
			for _, l := range kept {
				nbytes += b.Tuples[l].MemSize()
			}
			op.In.Add(nIn)
			op.Pruned.Add(pruned)
			if s.Point != nil {
				s.Point.received.Add(nIn)
			}
			b.Sel = kept
			if len(kept) > 0 && s.Link != nil {
				var err error
				if ret != nil {
					err = ret.do(func(stop <-chan struct{}) error {
						aerr := s.Link.Transfer(nbytes, stop)
						var fe *network.FaultError
						if errors.As(aerr, &fe) && fe.Sent > 0 {
							op.WastedBytes.Add(int64(fe.Sent))
						}
						return aerr
					})
				} else {
					err = s.Link.Transfer(nbytes, ctx.Cancelled())
				}
				if err != nil {
					if errors.Is(err, network.ErrCancelled) {
						return
					}
					attempts := 1
					if ret != nil {
						attempts = ret.attempts
					}
					ctx.FailSource(&SourceError{
						Table: s.Table, Site: s.Site,
						Attempts: attempts, Cause: err,
					})
					if ctx.Recovery.Mode != PartialOnSourceError {
						return // query is being cancelled with the SourceError
					}
					// Partial mode: the query keeps running without this
					// source. Drain the child so its goroutines finish
					// (upstream scans also observe the abandoned table and
					// stop early), then complete the stream as done.
					PutBatch(b)
					for rest := range in {
						PutBatch(rest)
					}
					break
				}
				ctx.Stats.NetworkBytes.Add(int64(nbytes))
			}
			if len(kept) == 0 {
				PutBatch(b)
				continue
			}
			n := int64(len(kept))
			if !send(ctx, out, b) {
				return
			}
			op.Out.Add(n)
		}
		if s.Point != nil {
			s.Point.done.Store(true)
			ctx.pointDone(s.Point)
		}
	})
	return out
}

package exec

import (
	"repro/internal/expr"
	"repro/internal/stats"
	"repro/internal/types"
)

// InlineMaxRows bounds the scan size eligible for inline execution. Beyond
// it the goroutine pipeline's backpressure matters more than its fixed
// cost, so the plan runs on the normal channel-connected operator tree.
const InlineMaxRows = 4096

// TryRunInline executes a small, linear, stateless plan — an optional
// Project over zero or more Filters over one unpaced, undelayed Scan of at
// most InlineMaxRows rows — synchronously in the caller's goroutine,
// returning (rows, true). Plans with any other shape (joins, aggregation,
// distinct, ship, injection points, paced or delayed scans, big scans)
// return (nil, false) and must run through Op.Start.
//
// This is the point-query fast path: the goroutine pipeline costs a fixed
// ~10µs per query in goroutine spawns, channel buffers, and the garbage
// they feed the collector — more than executing a dimension-table point
// lookup itself. Per-operator stats are recorded under the same names as
// the pipelined path, so Result counters and -stats reports are identical.
func TryRunInline(ctx *Context, root Op) ([]types.Tuple, bool) {
	op := root
	var proj *Project
	if p, ok := op.(*Project); ok {
		proj = p
		op = p.Child
	}
	// Filters, outermost first; execution applies them innermost first.
	var filters []*Filter
	for {
		f, ok := op.(*Filter)
		if !ok {
			break
		}
		filters = append(filters, f)
		op = f.Child
	}
	scan, ok := op.(*Scan)
	if !ok || scan.Delay != nil || scan.BytesPerSec > 0 || len(scan.Rows) > InlineMaxRows {
		return nil, false
	}

	scanOp := ctx.Stats.NewOp("scan:" + scan.Name)
	type inlineFilter struct {
		op   *stats.OpStats
		pred *expr.Compiled
	}
	fs := make([]inlineFilter, len(filters))
	for i := range filters {
		// Reverse so fs[0] is the filter nearest the scan.
		f := filters[len(filters)-1-i]
		fs[i] = inlineFilter{op: ctx.Stats.NewOp("filter:" + f.Name), pred: expr.Compile(f.Pred)}
	}
	var (
		projOp   *stats.OpStats
		compiled []*expr.Compiled
		col      []types.Value
	)
	if proj != nil {
		projOp = ctx.Stats.NewOp("project:" + proj.Name)
		compiled = make([]*expr.Compiled, len(proj.Exprs))
		for i, e := range proj.Exprs {
			compiled[i] = expr.Compile(e)
		}
	}

	var out []types.Tuple
	rows := scan.Rows
	for base := 0; base < len(rows); base += BatchSize {
		select {
		case <-ctx.Cancelled():
			return out, true
		default:
		}
		end := base + BatchSize
		if end > len(rows) {
			end = len(rows)
		}
		chunk := rows[base:end]
		scanOp.Out.Add(int64(len(chunk)))

		sel := identSel(len(chunk))
		for i := range fs {
			fs[i].op.In.Add(int64(len(sel)))
			if i == 0 {
				sel = fs[i].pred.EvalBool(chunk, sel, getSel())
			} else {
				sel = fs[i].pred.EvalBool(chunk, sel, sel)
			}
			fs[i].op.Out.Add(int64(len(sel)))
			if len(sel) == 0 {
				break
			}
		}
		if len(sel) == 0 {
			putSel(sel) // pool-owned: at least one filter ran
			continue
		}

		if proj == nil {
			for _, l := range sel {
				out = append(out, chunk[l])
			}
		} else {
			projOp.In.Add(int64(len(sel)))
			start := len(out)
			// One exactly-sized backing block per chunk (a point query
			// produces a handful of rows; an arena's BatchSize-row blocks
			// would allocate 100× the result).
			w := len(compiled)
			backing := make([]types.Value, len(sel)*w)
			for k := range sel {
				out = append(out, backing[k*w:(k+1)*w:(k+1)*w])
			}
			col = growVals(col, len(chunk))
			for j, c := range compiled {
				c.EvalBatch(chunk, sel, col)
				for k, lane := range sel {
					out[start+k][j] = col[lane]
				}
			}
			projOp.Out.Add(int64(len(sel)))
		}
		if len(fs) > 0 {
			putSel(sel)
		}
	}
	return out, true
}

package exec

import (
	"runtime/debug"

	"repro/internal/expr"
	"repro/internal/stats"
	"repro/internal/types"
)

// InlineMaxRows bounds the scan size eligible for inline execution. Beyond
// it the goroutine pipeline's backpressure matters more than its fixed
// cost, so the plan runs on the normal channel-connected operator tree.
const InlineMaxRows = 4096

// TryRunInline executes a small, linear, stateless plan — an optional
// Project over zero or more Filters over either one unpaced, undelayed Scan
// of at most InlineMaxRows rows, or a single HashJoin whose two inputs are
// both such Filter*/Scan chains — synchronously in the caller's goroutine,
// returning (rows, true). Plans with any other shape (deeper join trees,
// aggregation, distinct, ship, paced or delayed scans, big scans) return
// (nil, false) and must run through Op.Start, as does any plan running
// under an AIP controller: the controller's working-set and injection
// lifecycle lives on the pipelined operators.
//
// This is the point-query fast path: the goroutine pipeline costs a fixed
// ~10µs per query in goroutine spawns, channel buffers, and the garbage
// they feed the collector — more than executing a dimension-table point
// lookup (or a point lookup joined against a dimension table) itself.
// Per-operator stats are recorded under the same names as the pipelined
// path, so Result counters and -stats reports are identical.
func TryRunInline(ctx *Context, root Op) (rows []types.Tuple, ran bool) {
	// Inline execution runs in the caller's goroutine, outside Spawn's
	// recover: contain a panic here the same way, failing the query with a
	// typed error instead of unwinding into the caller.
	defer func() {
		if r := recover(); r != nil {
			ctx.CancelCause(&PanicError{Val: r, Stack: debug.Stack()})
			rows, ran = nil, true
		}
	}()
	op := root
	var proj *Project
	if p, ok := op.(*Project); ok {
		proj = p
		op = p.Child
	}
	// Filters, outermost first; execution applies them innermost first.
	var filters []*Filter
	for {
		f, ok := op.(*Filter)
		if !ok {
			break
		}
		filters = append(filters, f)
		op = f.Child
	}
	if j, ok := op.(*HashJoin); ok {
		return runInlineJoin(ctx, proj, filters, j)
	}
	scan, ok := inlineScan(op)
	if !ok {
		return nil, false
	}
	scanOp := ctx.Stats.NewOp("scan:" + scan.Name)
	return inlinePost(ctx, proj, filters, scan.Rows, scanOp), true
}

// inlineScan accepts a leaf eligible for inline execution: an unpaced,
// undelayed Scan of at most InlineMaxRows rows.
func inlineScan(op Op) (*Scan, bool) {
	scan, ok := op.(*Scan)
	if !ok || scan.Delay != nil || scan.BytesPerSec > 0 || len(scan.Rows) > InlineMaxRows {
		return nil, false
	}
	return scan, true
}

// inlineLeafShape accepts a join input of shape Filter* over an inline-able
// Scan, without recording any stats: shape validation must be side-effect
// free so a rejected plan runs pipelined with untouched counters.
func inlineLeafShape(op Op) (*Scan, []*Filter, bool) {
	var filters []*Filter
	for {
		f, ok := op.(*Filter)
		if !ok {
			break
		}
		filters = append(filters, f)
		op = f.Child
	}
	scan, ok := inlineScan(op)
	if !ok {
		return nil, nil, false
	}
	return scan, filters, true
}

// runInlineJoin executes Project? / Filter* / HashJoin(leaf, leaf)
// synchronously: both inputs are materialized through their filters, the
// smaller side is built into a hash table (the same joinTable the pipelined
// operator partitions), and the larger side probes it. The result set is
// identical to the symmetric pipelined join's — every match pair is emitted
// exactly once — just computed in build/probe order instead of by arrival.
func runInlineJoin(ctx *Context, proj *Project, above []*Filter, j *HashJoin) ([]types.Tuple, bool) {
	// An AIP controller expects the pipelined lifecycle (OnStore hooks,
	// PointDone publication); bypassing it would silently disable SIP.
	if ctx.Ctl != nil {
		return nil, false
	}
	lScan, lFilters, ok := inlineLeafShape(j.Left)
	if !ok {
		return nil, false
	}
	rScan, rFilters, ok := inlineLeafShape(j.Right)
	if !ok {
		return nil, false
	}

	left := inlinePost(ctx, nil, lFilters, lScan.Rows, ctx.Stats.NewOp("scan:"+lScan.Name))
	right := inlinePost(ctx, nil, rFilters, rScan.Rows, ctx.Stats.NewOp("scan:"+rScan.Name))

	lop := ctx.Stats.NewOp("join:" + j.Name + ".left")
	rop := ctx.Stats.NewOp("join:" + j.Name + ".right")
	lop.In.Add(int64(len(left)))
	rop.In.Add(int64(len(right)))

	// Build over the smaller side; matches are attributed to the probing
	// side's Out, mirroring the pipelined join where the later-arriving
	// tuple emits the pair.
	build, probe := left, right
	bKeys, pKeys := j.LKeys, j.RKeys
	bop, pop := lop, rop
	buildIsLeft := true
	if len(right) < len(left) {
		build, probe = right, left
		bKeys, pKeys = j.RKeys, j.LKeys
		bop, pop = rop, lop
		buildIsLeft = false
	}

	var jt joinTable
	jt.reserve(len(build))
	var buf []byte
	var storedBytes int64
	for i, t := range build {
		buf = t.AppendKeyCols(buf[:0], bKeys)
		jt.insert(types.Hash64(buf, 0), buf, t, uint64(i+1))
		storedBytes += int64(t.MemSize())
	}
	bop.StateRows.Add(int64(len(build)))
	bop.StateBytes.Add(storedBytes)

	resC := expr.Compile(j.Residual) // nil residual compiles to nil
	maxSeq := uint64(len(build)) + 1 // every build ticket qualifies
	var (
		joined  []types.Tuple
		matches []types.Tuple
		arena   rowArena
	)
	for _, t := range probe {
		buf = t.AppendKeyCols(buf[:0], pKeys)
		matches = jt.probe(types.Hash64(buf, 0), buf, maxSeq, matches[:0])
		for _, m := range matches {
			if buildIsLeft {
				joined = append(joined, arena.concat(m, t))
			} else {
				joined = append(joined, arena.concat(t, m))
			}
		}
	}
	if resC != nil && len(joined) > 0 {
		sel := resC.EvalBool(joined, identSel(len(joined)), getSel())
		kept := joined[:0]
		for _, l := range sel {
			kept = append(kept, joined[l])
		}
		putSel(sel)
		joined = kept
	}
	pop.Out.Add(int64(len(joined)))

	return inlinePost(ctx, proj, above, joined, nil), true
}

// inlinePost applies a Filter chain (outermost first, as collected by shape
// parsing) and an optional Project to rows, chunk at a time, recording
// per-operator stats under the pipelined names. leafOp, when non-nil, is
// credited with the rows as its scan output.
func inlinePost(ctx *Context, proj *Project, filters []*Filter, rows []types.Tuple, leafOp *stats.OpStats) []types.Tuple {
	type inlineFilter struct {
		op   *stats.OpStats
		pred *expr.Compiled
	}
	fs := make([]inlineFilter, len(filters))
	for i := range filters {
		// Reverse so fs[0] is the filter nearest the leaf.
		f := filters[len(filters)-1-i]
		fs[i] = inlineFilter{op: ctx.Stats.NewOp("filter:" + f.Name), pred: expr.Compile(f.Pred)}
	}
	var (
		projOp   *stats.OpStats
		compiled []*expr.Compiled
		col      []types.Value
	)
	if proj != nil {
		projOp = ctx.Stats.NewOp("project:" + proj.Name)
		compiled = make([]*expr.Compiled, len(proj.Exprs))
		for i, e := range proj.Exprs {
			compiled[i] = expr.Compile(e)
		}
	}

	var out []types.Tuple
	for base := 0; base < len(rows); base += BatchSize {
		select {
		case <-ctx.Cancelled():
			return out
		default:
		}
		end := base + BatchSize
		if end > len(rows) {
			end = len(rows)
		}
		chunk := rows[base:end]
		if leafOp != nil {
			leafOp.Out.Add(int64(len(chunk)))
		}

		sel := identSel(len(chunk))
		for i := range fs {
			fs[i].op.In.Add(int64(len(sel)))
			if i == 0 {
				sel = fs[i].pred.EvalBool(chunk, sel, getSel())
			} else {
				sel = fs[i].pred.EvalBool(chunk, sel, sel)
			}
			fs[i].op.Out.Add(int64(len(sel)))
			if len(sel) == 0 {
				break
			}
		}
		if len(sel) == 0 {
			putSel(sel) // pool-owned: at least one filter ran
			continue
		}

		if proj == nil {
			for _, l := range sel {
				out = append(out, chunk[l])
			}
		} else {
			projOp.In.Add(int64(len(sel)))
			start := len(out)
			// One exactly-sized backing block per chunk (a point query
			// produces a handful of rows; an arena's BatchSize-row blocks
			// would allocate 100× the result).
			w := len(compiled)
			backing := make([]types.Value, len(sel)*w)
			for k := range sel {
				out = append(out, backing[k*w:(k+1)*w:(k+1)*w])
			}
			col = growVals(col, len(chunk))
			for j, c := range compiled {
				c.EvalBatch(chunk, sel, col)
				for k, lane := range sel {
					out[start+k][j] = col[lane]
				}
			}
			projOp.Out.Add(int64(len(sel)))
		}
		if len(fs) > 0 {
			putSel(sel)
		}
	}
	return out
}

package exec

// This file is the morsel-driven execution path (Context.Scheduler =
// SchedulerMorsel): instead of one goroutine per operator per partition
// glued by channels, the plan is compiled into a chain of push-style
// state machines (mChain) driven by a work-stealing worker pool
// (internal/sched). One exec.Batch is one morsel.
//
//   - Scans range-split their table into morselScanRows chunks, each a
//     pool task, so a single big scan uses every worker (the chan
//     engine's one-goroutine-per-scan bottleneck disappears). Delayed,
//     paced, or fault-injected scans stay sequential — their pacing and
//     deterministic fault-draw sequence depend on flush order — and run
//     on a dedicated goroutine with a pseudo worker id, so a sleeping
//     source never occupies a pool worker.
//   - Filter / Project / Ship fuse into the producing task: a scan chunk
//     pushes its batches straight through them with no handoff.
//   - The partitioned stateful operators (join, aggregation, distinct)
//     keep the chan engine's radix layout, but the per-partition scatter
//     channels become actor inboxes: a producing task enqueues a scatter
//     and, if the partition has no active drain, schedules one as a pool
//     task. The CAS claim serializes each partition (preserving the
//     exactly-once ticket argument and the one-writer-per-slot OnStore
//     contract) while letting any worker run the drain.
//   - Pipeline-breaker barriers (input completion, PointDone, the §VI-A
//     short-circuit, partial-result teardown) are task-count barriers:
//     pending = 1 router hold + in-flight scatters, and completion runs
//     exactly once when the count reaches zero after the upstream done
//     cascade released the hold — the same protocol the chan join uses,
//     generalized to every partitioned operator.
//
// The done cascade fires on normal completion and on partial-mode source
// abandonment (matching the chan engine, where a truncated-but-uncancelled
// input channel closing counts as completed input), and never under
// cancellation: a push returns false only when the query is cancelled, so
// "push returned false implies ctx.Err() != nil" holds everywhere and no
// barrier can publish partial AIP state as complete.
//
// Plans containing operators this compiler does not know, or whose
// worker-id space would exceed MaxPartitions, transparently fall back to
// the chan engine.

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expr"
	"repro/internal/network"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/types"
)

// morselScanRows is the range-split granule of parallel scans: small
// enough that a table splits across workers, large enough that per-task
// overhead is amortized over many batches.
const morselScanRows = 1024

// mChain is one compiled operator stage. push delivers one batch from
// pool worker (or pseudo-worker) w, consuming it; it returns false only
// when the query has been cancelled. done signals that one upstream input
// has delivered its last batch; every push of that input happens-before
// its done. Implementations must tolerate concurrent push calls from
// different worker ids.
type mChain interface {
	push(w int, b Batch) bool
	done(w int)
}

// morselRun is the shared state of one morsel-scheduled execution.
type morselRun struct {
	ctx  *Context
	pool *sched.Pool
	nw   int // worker-id space: pool workers + sequential-source pseudo ids
	out  chan Batch

	rootDone chan struct{}
	rootOnce sync.Once

	seqWg   sync.WaitGroup
	nextSeq int // next pseudo-worker id (starts at the pool size)

	starts []func() // per-scan launch closures, run after the pool starts
}

// morselSurvey is the first compile pass: operator support check, scan
// classification, and total base-table cardinality for the worker clamp.
type morselSurvey struct {
	seq  int   // sequential sources (delayed / paced / fault-injected)
	rows int64 // total base-table rows
}

// scanSequential reports whether a scan must run as a single ordered
// stream: pacing and delay model flush boundaries, and the deterministic
// fault injector draws one decision per flush, so range-splitting such a
// scan would change the failure sequence a seed reproduces.
func scanSequential(s *Scan) bool {
	return s.Delay != nil || s.BytesPerSec > 0
}

func surveyMorsel(op Op, sv *morselSurvey) bool {
	switch o := op.(type) {
	case *Scan:
		if scanSequential(o) {
			sv.seq++
		}
		sv.rows += int64(len(o.Rows))
		return true
	case *Filter:
		return surveyMorsel(o.Child, sv)
	case *Project:
		return surveyMorsel(o.Child, sv)
	case *Ship:
		return surveyMorsel(o.Child, sv)
	case *HashJoin:
		return surveyMorsel(o.Left, sv) && surveyMorsel(o.Right, sv)
	case *HashAgg:
		return surveyMorsel(o.Child, sv)
	case *Distinct:
		return surveyMorsel(o.Child, sv)
	default:
		return false
	}
}

// startMorsel compiles and launches root on the work-stealing pool. It
// reports false when the plan cannot run on the morsel path (unknown
// operator, worker-id space overflow); the caller falls back to the chan
// engine.
//
// The pool size is adaptive: Parallelism (GOMAXPROCS by default), clamped
// by the plan's total base-table cardinality exactly like the partition
// fan-out, then divided by the engine's concurrent-query load (Context.
// Load) so a saturated server runs more queries with fewer workers each
// instead of oversubscribing goroutines.
func startMorsel(ctx *Context, root Op) (<-chan Batch, bool) {
	var sv morselSurvey
	if !surveyMorsel(root, &sv) {
		return nil, false
	}
	w := ctx.partitions()
	w = clampPartitions(w, float64(sv.rows))
	if ctx.Load != nil {
		if l := ctx.Load(); l > 1 {
			w /= l
			if w < 1 {
				w = 1
			}
		}
	}
	if w+sv.seq > MaxPartitions {
		// Worker ids double as OnStore slots, which are capped at
		// MaxPartitions; an absurdly wide plan keeps the chan engine.
		return nil, false
	}
	r := &morselRun{
		ctx:      ctx,
		pool:     sched.New(w),
		out:      make(chan Batch, ctx.pipeDepth()),
		rootDone: make(chan struct{}),
	}
	r.nextSeq = r.pool.Workers()
	r.nw = r.pool.Workers() + sv.seq
	// Contain task panics to this query: the pool worker survives, the
	// query fails with a typed *PanicError, and the supervisor below tears
	// the pool down through the normal cancellation path.
	r.pool.OnPanic = func(v any, stack []byte) {
		ctx.CancelCause(&PanicError{Val: v, Stack: stack})
	}
	r.build(root, &mSink{run: r})
	r.pool.Start(ctx.Spawn)
	for _, f := range r.starts {
		f()
	}
	// Supervisor: tear the pool down once the root's completion barrier
	// fires or the query is cancelled. Workers blocked on the root edge
	// always select on the cancel channel, so Wait terminates; the output
	// channel closes only after every producer has provably exited.
	ctx.Spawn(func() {
		select {
		case <-r.rootDone:
		case <-ctx.Cancelled():
		}
		r.pool.Stop()
		r.pool.Wait()
		r.seqWg.Wait()
		st := r.pool.Stats()
		ctx.Stats.RecordSched(st.Workers, st.Morsels, st.Steals, st.Parks, st.Unparks, st.Busy)
		close(r.out)
	})
	return r.out, true
}

// build compiles op and its inputs onto the chain ending at down.
// surveyMorsel vetted the tree, so the type switch is exhaustive.
func (r *morselRun) build(op Op, down mChain) {
	switch o := op.(type) {
	case *Scan:
		r.buildScan(o, down)
	case *Filter:
		r.build(o.Child, newMFilter(r, o, down))
	case *Project:
		r.build(o.Child, newMProject(r, o, down))
	case *Ship:
		r.build(o.Child, newMShip(r, o, down))
	case *HashJoin:
		m := newMJoin(r, o, down)
		r.build(o.Left, &mJoinSide{j: m, side: 0})
		r.build(o.Right, &mJoinSide{j: m, side: 1})
	case *HashAgg:
		r.build(o.Child, newMAgg(r, o, down))
	case *Distinct:
		r.build(o.Child, newMDistinct(r, o, down))
	default:
		panic("exec: operator escaped the morsel survey")
	}
}

// mSink is the chain terminator: batches go to the run's output channel,
// and the root done cascade fires the completion barrier.
type mSink struct{ run *morselRun }

func (s *mSink) push(w int, b Batch) bool { return send(s.run.ctx, s.run.out, b) }

func (s *mSink) done(w int) {
	s.run.rootOnce.Do(func() { close(s.run.rootDone) })
}

// mInbox is a partition's actor inbox: producers enqueue scatters from
// any worker, and a CAS claim guarantees at most one drain owns the
// partition state at a time. The drain releases the claim only after
// re-checking the queue, so an enqueue that lost the CAS race is always
// observed by the active drain or re-claims itself.
type mInbox struct {
	running atomic.Int32
	mu      sync.Mutex
	queue   []*scatter
}

// put enqueues sb; true means the caller won the claim and must schedule
// a drain.
func (ib *mInbox) put(sb *scatter) bool {
	ib.mu.Lock()
	ib.queue = append(ib.queue, sb)
	ib.mu.Unlock()
	return ib.running.CompareAndSwap(0, 1)
}

// drainLoop runs process over queued scatters until the inbox is empty,
// then releases the claim. process returns false to abandon the drain
// (cancellation); the claim is then kept forever, parking the partition.
func (ib *mInbox) drainLoop(process func(*scatter) bool) {
	for {
		ib.mu.Lock()
		q := ib.queue
		ib.queue = nil
		ib.mu.Unlock()
		if len(q) == 0 {
			ib.running.Store(0)
			ib.mu.Lock()
			n := len(ib.queue)
			ib.mu.Unlock()
			if n == 0 || !ib.running.CompareAndSwap(0, 1) {
				return
			}
			continue
		}
		for _, sb := range q {
			if !process(sb) {
				return
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Scans

// mScanRange is a range-split parallel scan of a plain (unpaced,
// fault-free) table: each morselScanRows chunk is one pool task, and the
// last chunk to finish fires the done cascade.
type mScanRange struct {
	run       *morselRun
	s         *Scan
	op        *stats.OpStats
	down      mChain
	remaining atomic.Int64
	partial   bool // PartialOnSourceError: stop when the table is abandoned
}

func (r *morselRun) buildScan(s *Scan, down mChain) {
	op := r.ctx.Stats.NewOp("scan:" + s.Name)
	if scanSequential(s) {
		wid := r.nextSeq
		r.nextSeq++
		r.starts = append(r.starts, func() {
			r.seqWg.Add(1)
			r.ctx.Spawn(func() {
				defer r.seqWg.Done()
				r.runSeqScan(wid, s, op, down)
			})
		})
		return
	}
	node := &mScanRange{
		run: r, s: s, op: op, down: down,
		partial: r.ctx.Recovery.Mode == PartialOnSourceError && s.Table != "",
	}
	n := len(s.Rows)
	chunks := (n + morselScanRows - 1) / morselScanRows
	if chunks < 1 {
		chunks = 1 // empty table: one task, just to run the done cascade
	}
	node.remaining.Store(int64(chunks))
	r.starts = append(r.starts, func() {
		for c := 0; c < chunks; c++ {
			lo := c * morselScanRows
			hi := lo + morselScanRows
			if hi > n {
				hi = n
			}
			r.pool.Submit(func(w int) { node.runChunk(w, lo, hi) })
		}
	})
}

func (n *mScanRange) runChunk(w, lo, hi int) {
	ctx := n.run.ctx
	if ctx.Err() == nil && !(n.partial && ctx.SourceAbandoned(n.s.Table)) {
		ok := true
		batch := GetBatch()
		flush := func() bool {
			nn := int64(len(batch.Tuples))
			if nn == 0 {
				return true
			}
			if !n.down.push(w, batch) {
				batch = Batch{}
				return false
			}
			n.op.Out.Add(nn)
			batch = GetBatch()
			return true
		}
		for _, t := range n.s.Rows[lo:hi] {
			batch.Tuples = append(batch.Tuples, t)
			if len(batch.Tuples) == BatchSize && !flush() {
				ok = false
				break
			}
		}
		if ok && flush() {
			PutBatch(batch)
		}
	}
	// The last chunk fires the cascade — including after a partial-mode
	// abandonment (truncated input still completes, as in the chan engine)
	// but never under cancellation.
	if n.remaining.Add(-1) == 0 && ctx.Err() == nil {
		n.down.done(w)
	}
}

// runSeqScan is the sequential-source body: a line-for-line counterpart
// of Scan.Start's goroutine (same flush boundaries, pacing, and fault
// draws, so a seeded failure sequence reproduces identically on both
// schedulers), pushing into the chain instead of a channel. It runs on a
// dedicated goroutine — a source sleeping out its delay or backoff never
// occupies a pool worker — under pseudo-worker id wid.
func (r *morselRun) runSeqScan(wid int, s *Scan, op *stats.OpStats, down mChain) {
	ctx := r.ctx
	var inj *network.FaultInjector
	var ret *retrier
	if s.Delay != nil && s.Delay.Fault.Active() {
		inj = s.Delay.Fault.Injector("scan:" + s.Name)
		ret = newRetrier(ctx, op, s.Site, "scan:"+s.Name)
	}
	partialMode := ctx.Recovery.Mode == PartialOnSourceError && s.Table != ""
	defer func() {
		// Every uncancelled exit — exhausted input, partial-mode
		// abandonment, partial-mode source failure — completes the input.
		if ctx.Err() == nil {
			down.done(wid)
		}
	}()
	if s.Delay != nil && s.Delay.Initial > 0 {
		select {
		case <-time.After(s.Delay.Initial):
		case <-ctx.Cancelled():
			return
		}
	}
	batch := GetBatch()
	count := 0
	var cumBytes int64
	start := time.Now()
	readAttempt := func(stop <-chan struct{}) error {
		switch k := inj.Next(); k {
		case network.FaultNone:
			return nil
		case network.FaultStall:
			<-stop
			return network.ErrCancelled // timeout converts this to ErrAttemptTimeout
		default:
			return &network.FaultError{Kind: k}
		}
	}
	flush := func(last bool) bool {
		if len(batch.Tuples) == 0 {
			if last {
				PutBatch(batch)
			}
			return true
		}
		if partialMode && ctx.SourceAbandoned(s.Table) {
			PutBatch(batch)
			batch = Batch{}
			return false
		}
		if ret != nil {
			if err := ret.do(readAttempt); err != nil {
				PutBatch(batch)
				batch = Batch{}
				if !errors.Is(err, network.ErrCancelled) {
					ctx.FailSource(&SourceError{
						Table: s.Table, Site: s.Site,
						Attempts: ret.attempts, Cause: err,
					})
				}
				return false
			}
		}
		n := int64(len(batch.Tuples))
		if !down.push(wid, batch) {
			batch = Batch{}
			return false
		}
		op.Out.Add(n)
		if s.BytesPerSec > 0 {
			target := time.Duration(float64(cumBytes) / float64(s.BytesPerSec) * float64(time.Second))
			if debt := target - time.Since(start); debt > 2*time.Millisecond {
				select {
				case <-time.After(debt):
				case <-ctx.Cancelled():
					return false
				}
			}
		}
		if last {
			batch = Batch{}
		} else {
			batch = GetBatch()
		}
		return true
	}
	for _, t := range s.Rows {
		batch.Tuples = append(batch.Tuples, t)
		count++
		if s.BytesPerSec > 0 {
			cumBytes += int64(t.MemSize())
		}
		if s.Delay != nil && s.Delay.EveryN > 0 && count%s.Delay.EveryN == 0 {
			if !flush(false) {
				return
			}
			select {
			case <-time.After(s.Delay.Pause):
			case <-ctx.Cancelled():
				return
			}
			continue
		}
		if s.Delay != nil && s.Delay.BurstEveryN > 0 && count%s.Delay.BurstEveryN == 0 {
			if !flush(false) {
				return
			}
			select {
			case <-time.After(s.Delay.BurstPause):
			case <-ctx.Cancelled():
				return
			}
			continue
		}
		if len(batch.Tuples) == BatchSize {
			if !flush(false) {
				return
			}
		}
	}
	flush(true)
}

// ---------------------------------------------------------------------------
// Fused stateless stages

// mFilter narrows each batch's selection vector in place (the chan
// Filter's body, fused into the producing task). Compiled predicates
// carry scratch, so one kernel per worker id.
type mFilter struct {
	down  mChain
	op    *stats.OpStats
	preds []*expr.Compiled
}

func newMFilter(r *morselRun, f *Filter, down mChain) *mFilter {
	n := &mFilter{down: down, op: r.ctx.Stats.NewOp("filter:" + f.Name)}
	n.preds = make([]*expr.Compiled, r.nw)
	for i := range n.preds {
		n.preds[i] = expr.Compile(f.Pred)
	}
	return n
}

func (f *mFilter) push(w int, b Batch) bool {
	f.op.In.Add(int64(b.Len()))
	pred := f.preds[w]
	var sel []int32
	if b.Sel != nil {
		sel = pred.EvalBool(b.Tuples, b.Sel, b.Sel)
	} else {
		sel = pred.EvalBool(b.Tuples, identSel(len(b.Tuples)), getSel())
	}
	b.Sel = sel
	if len(sel) == 0 {
		PutBatch(b)
		return true
	}
	n := int64(len(sel))
	if !f.down.push(w, b) {
		return false
	}
	f.op.Out.Add(n)
	return true
}

func (f *mFilter) done(w int) { f.down.done(w) }

// mProject evaluates output expressions batch-at-a-time into arena rows
// (the chan Project's body), with per-worker kernels and scratch.
type mProject struct {
	down  mChain
	op    *stats.OpStats
	width int
	ws    []mProjectWorker
}

type mProjectWorker struct {
	compiled []*expr.Compiled
	arena    rowArena
	col      []types.Value
	rows     []types.Tuple
}

func newMProject(r *morselRun, p *Project, down mChain) *mProject {
	n := &mProject{down: down, op: r.ctx.Stats.NewOp("project:" + p.Name), width: len(p.Exprs)}
	n.ws = make([]mProjectWorker, r.nw)
	for i := range n.ws {
		c := make([]*expr.Compiled, len(p.Exprs))
		for j, e := range p.Exprs {
			c[j] = expr.Compile(e)
		}
		n.ws[i].compiled = c
	}
	return n
}

func (p *mProject) push(w int, b Batch) bool {
	ws := &p.ws[w]
	sel := b.Live()
	n := len(sel)
	p.op.In.Add(int64(n))
	if n == 0 {
		PutBatch(b)
		return true
	}
	ws.rows = ws.rows[:0]
	for k := 0; k < n; k++ {
		ws.rows = append(ws.rows, ws.arena.alloc(p.width))
	}
	ws.col = growVals(ws.col, len(b.Tuples))
	for j, c := range ws.compiled {
		c.EvalBatch(b.Tuples, sel, ws.col)
		for k, lane := range sel {
			ws.rows[k][j] = ws.col[lane]
		}
	}
	res := GetBatch()
	res.Tuples = append(res.Tuples, ws.rows...)
	PutBatch(b)
	if !p.down.push(w, res) {
		return false
	}
	p.op.Out.Add(int64(n))
	return true
}

func (p *mProject) done(w int) { p.down.done(w) }

// mShip is the chan Ship fused into the producing task. A mutex
// serializes pushes: the simulated link models one wire, the retrier is
// single-stream, and serializing keeps the per-link fault-draw sequence
// well-defined. Under partial-mode source failure the stage keeps
// accepting (and dropping) input — the chan engine's drain — until the
// upstream done cascade completes the stream.
type mShip struct {
	run  *morselRun
	s    *Ship
	down mChain
	op   *stats.OpStats

	mu        sync.Mutex
	ret       *retrier
	sc        ProbeScratch
	abandoned bool
}

func newMShip(r *morselRun, s *Ship, down mChain) *mShip {
	n := &mShip{run: r, s: s, down: down, op: r.ctx.Stats.NewOp("ship:" + s.Name)}
	if s.Point != nil {
		s.Point.Op = n.op
	}
	if s.Link != nil && s.Link.Faults.Active() {
		n.ret = newRetrier(r.ctx, n.op, s.Site, "ship:"+s.Name)
	}
	return n
}

func (m *mShip) push(w int, b Batch) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ctx := m.run.ctx
	if m.abandoned {
		PutBatch(b)
		return true
	}
	nIn := int64(b.Len())
	nbytes := 0
	var kept []int32
	if b.Sel != nil {
		kept = b.Sel[:0]
	} else {
		kept = getSel()
	}
	if m.s.Point != nil && m.s.Point.Bank.Len() > 0 {
		kept = m.s.Point.Bank.ProbeBatch(b.Tuples, nil, b.Live(), kept, &m.sc)
	} else {
		kept = append(kept, b.Live()...)
	}
	for _, l := range kept {
		nbytes += b.Tuples[l].MemSize()
	}
	m.op.In.Add(nIn)
	m.op.Pruned.Add(nIn - int64(len(kept)))
	if m.s.Point != nil {
		m.s.Point.received.Add(nIn)
	}
	b.Sel = kept
	if len(kept) > 0 && m.s.Link != nil {
		var err error
		if m.ret != nil {
			err = m.ret.do(func(stop <-chan struct{}) error {
				aerr := m.s.Link.Transfer(nbytes, stop)
				var fe *network.FaultError
				if errors.As(aerr, &fe) && fe.Sent > 0 {
					m.op.WastedBytes.Add(int64(fe.Sent))
				}
				return aerr
			})
		} else {
			err = m.s.Link.Transfer(nbytes, ctx.Cancelled())
		}
		if err != nil {
			if errors.Is(err, network.ErrCancelled) {
				return false
			}
			attempts := 1
			if m.ret != nil {
				attempts = m.ret.attempts
			}
			ctx.FailSource(&SourceError{
				Table: m.s.Table, Site: m.s.Site,
				Attempts: attempts, Cause: err,
			})
			PutBatch(b)
			if ctx.Recovery.Mode != PartialOnSourceError {
				return false // query is being cancelled with the SourceError
			}
			m.abandoned = true
			return true
		}
		ctx.Stats.NetworkBytes.Add(int64(nbytes))
	}
	if len(kept) == 0 {
		PutBatch(b)
		return true
	}
	n := int64(len(kept))
	if !m.down.push(w, b) {
		return false
	}
	m.op.Out.Add(n)
	return true
}

func (m *mShip) done(w int) {
	// Mirrors the chan Ship: the point completes even after a partial-mode
	// abandonment (the stream is done; its state was already marked
	// incomplete by FailSource).
	if m.s.Point != nil {
		m.s.Point.done.Store(true)
		m.run.ctx.pointDone(m.s.Point)
	}
	m.down.done(w)
}

// ---------------------------------------------------------------------------
// Hash join

// The morsel join reuses the chan engine's joinInput for its side-level
// barrier state: pending is 1 (the input hold, released by the upstream done
// cascade) plus in-flight scatters, reaching zero exactly once after the
// input's last probe.

// mJoinPart is one radix partition: the shared joinCore (tables, ticket
// counter, spill state) and the drain-side scratch, all owned by whichever
// task holds the inbox claim.
type mJoinPart struct {
	inbox mInbox
	joinCore

	matches []types.Tuple
	arena   rowArena
	resC    *expr.Compiled
	ids     []int32 // batch kernel scratch: key ids per scatter lane
	added   []bool
}

// mJoinRoute is one worker id's routing scratch. A worker runs one push
// at a time, and every push flushes its buffered scatters before
// returning, so the buffers never mix sides.
type mJoinRoute struct {
	sc   ProbeScratch // batch key hashing + AIP probing, hash-once
	keep []int32      // surviving selection when filters are attached
	bufs []*scatter
}

type mJoin struct {
	run   *morselRun
	down  mChain
	P     int
	shift uint

	parts  []*mJoinPart
	inputs [2]*joinInput
	route  []mJoinRoute

	sidesDone atomic.Int32
}

func newMJoin(r *morselRun, j *HashJoin, down mChain) *mJoin {
	P := r.ctx.partitions()
	P = clampPartitions(P, pointEstRows(j.LPoint)+pointEstRows(j.RPoint))
	r.ctx.addMemParts(P)
	lop := r.ctx.Stats.NewOp("join:" + j.Name + ".left")
	rop := r.ctx.Stats.NewOp("join:" + j.Name + ".right")
	lop.SetPartitions(P)
	rop.SetPartitions(P)
	m := &mJoin{run: r, down: down, P: P, shift: partShift(P)}
	m.inputs[0] = &joinInput{side: 0, keys: j.LKeys, point: j.LPoint, op: lop}
	m.inputs[1] = &joinInput{side: 1, keys: j.RKeys, point: j.RPoint, op: rop}
	m.inputs[0].pending.Store(1)
	m.inputs[1].pending.Store(1)
	for _, in := range m.inputs {
		if in.point != nil {
			in.point.Op = in.op
		}
	}
	m.parts = make([]*mJoinPart, P)
	for p := range m.parts {
		pt := &mJoinPart{resC: expr.Compile(j.Residual)}
		for s, in := range m.inputs {
			if in.point != nil {
				pt.tables[s].reserve(int(in.point.EstRows) / P)
			}
		}
		pt.initAccount(r.ctx, [2]*stats.OpStats{lop, rop})
		m.parts[p] = pt
	}
	m.route = make([]mJoinRoute, r.nw)
	for i := range m.route {
		m.route[i].bufs = make([]*scatter, P)
	}
	return m
}

// mJoinSide binds one input side to the two-input join node.
type mJoinSide struct {
	j    *mJoin
	side int
}

func (s *mJoinSide) push(w int, b Batch) bool { return s.j.pushSide(w, s.side, b) }
func (s *mJoinSide) done(w int)               { s.j.sideDone(w, s.side) }

// pushSide is the router phase, run inline in the producing task: AIP
// probe, hash-once key encoding, scatter buffering, and per-partition
// enqueue. Each enqueued scatter counts against the side's pending
// barrier before the drain is scheduled.
func (m *mJoin) pushSide(w, side int, b Batch) bool {
	in := m.inputs[side]
	rs := &m.route[w]
	sel := b.Live()
	nIn := int64(len(sel))
	// Probe the AIP filters batch-at-a-time; ProbeBatch fills the scratch's
	// hash/key arrays for every live lane either way, so routing below
	// reuses the hash-once work.
	kept := sel
	if in.point != nil && in.point.Bank.Len() > 0 {
		kept = in.point.Bank.ProbeBatch(b.Tuples, in.keys, sel, rs.keep[:0], &rs.sc)
		rs.keep = kept
	} else {
		rs.sc.compute(b.Tuples, in.keys, sel)
	}
	for _, l := range kept {
		t := b.Tuples[l]
		h := rs.sc.hashes[l]
		p := int(h >> m.shift)
		buf := rs.bufs[p]
		if buf == nil {
			buf = getScatter(side)
			rs.bufs[p] = buf
		}
		buf.add(t, h, rs.sc.key(l))
		// The chan router owns working-set slot 0; here each worker id is
		// its own serialized slot (a worker runs one task at a time).
		if in.point != nil && in.point.OnStore != nil {
			in.point.OnStore(w, t)
		}
	}
	in.op.In.Add(nIn)
	in.op.Pruned.Add(nIn - int64(len(kept)))
	if in.point != nil {
		in.point.received.Add(nIn)
	}
	PutBatch(b)
	for p, sb := range rs.bufs {
		if sb == nil {
			continue
		}
		rs.bufs[p] = nil
		in.pending.Add(1)
		if m.parts[p].inbox.put(sb) {
			p := p
			m.run.pool.SubmitFrom(w, func(dw int) {
				m.parts[p].inbox.drainLoop(func(sb *scatter) bool {
					return m.processScatter(dw, p, sb)
				})
			})
		}
	}
	return m.run.ctx.Err() == nil
}

// processScatter is the chan join worker's body for one scatter: ticketed
// insert (unless the other side completed — the §VI-A short-circuit),
// probe, arena-backed emission through the residual, stats, release.
func (m *mJoin) processScatter(dw, p int, sb *scatter) bool {
	pt := m.parts[p]
	own, other := m.inputs[sb.side], m.inputs[1-sb.side]
	ownT, otherT := &pt.tables[sb.side], &pt.tables[1-sb.side]
	n := len(sb.tuples)
	base := pt.ticket
	pt.ticket += uint64(n)
	pt.ids = growI32(pt.ids, n)

	ctx := m.run.ctx
	var stored, storedBytes int64
	preBytes := ownT.memBytes()
	preTup := ownT.tupBytes
	if !other.done.Load() {
		if cap(pt.added) < n {
			pt.added = make([]bool, n)
		}
		ownT.insertBatch(sb, base, pt.ids, pt.added[:n])
		stored = int64(n)
		storedBytes = ownT.tupBytes - preTup
	} else if pt.run != nil {
		// Spilled partition: post-short-circuit arrivals may still match
		// evicted other-side entries, so they go to the run (current epoch)
		// instead of being dropped.
		if err := pt.spillArrivals(sb, base); err != nil {
			ctx.CancelCause(err)
			return false
		}
	} else if own.point != nil {
		own.point.stateIncomplete.Store(true)
	}
	if delta := ownT.memBytes() - preBytes; delta != 0 {
		ctx.account(delta)
		own.op.StateBytes.Add(delta)
		pt.bytes += delta
	}
	outBatch := GetBatch()
	emit := func() bool {
		if len(outBatch.Tuples) == 0 {
			return true
		}
		if pt.resC != nil {
			outBatch.Sel = pt.resC.EvalBool(outBatch.Tuples, identSel(len(outBatch.Tuples)), getSel())
			if len(outBatch.Sel) == 0 {
				PutBatch(outBatch)
				outBatch = GetBatch()
				return true
			}
		}
		nn := int64(outBatch.Len())
		if !m.down.push(dw, outBatch) {
			outBatch = Batch{}
			return false
		}
		own.op.Out.Add(nn)
		outBatch = GetBatch()
		return true
	}
	ownIsLeft := sb.side == 0
	ok := true
	// Resolve every probe key's id in one prefetching pass over the other
	// side's table, then walk the match chains per lane.
	otherT.idx.LookupBatch(sb.hashes, sb.keys, sb.offs, pt.ids)
scan:
	for i, t := range sb.tuples {
		pt.matches = otherT.probeID(pt.ids[i], base+uint64(i)+1, pt.matches[:0])
		for _, mt := range pt.matches {
			var row types.Tuple
			if ownIsLeft {
				row = pt.arena.concat(t, mt)
			} else {
				row = pt.arena.concat(mt, t)
			}
			outBatch.Tuples = append(outBatch.Tuples, row)
			if len(outBatch.Tuples) == BatchSize && !emit() {
				ok = false
				break scan
			}
		}
	}
	if ok {
		ok = emit()
	}
	if !ok {
		// Cancelled mid-emission: abandon without releasing, exactly like
		// the chan worker returning — the barrier never fires and no
		// partial state is published.
		return false
	}
	PutBatch(outBatch)

	// Pressure check runs after the probe: evicting first would wipe the
	// co-resident matches this scatter is entitled to emit (the merge skips
	// same-epoch pairs, so they would be lost for good).
	if ctx.memPressure(pt.bytes, m.P) {
		ops := [2]*stats.OpStats{m.inputs[0].op, m.inputs[1].op}
		if err := pt.evict(ctx, ops, [2]*Point{m.inputs[0].point, m.inputs[1].point}); err != nil {
			ctx.CancelCause(err)
			return false
		}
	}

	own.op.StateRows.Add(stored)
	pp := own.op.Part(p)
	pp.Rows.Add(stored)
	pp.Bytes.Add(storedBytes)
	if own.point != nil {
		own.point.stored.Add(stored)
	}
	putScatter(sb)
	m.release(dw, own)
	return true
}

// release drops one pending reference; the barrier fires exactly once,
// after the input's last probe.
func (m *mJoin) release(w int, in *joinInput) {
	if in.pending.Add(-1) == 0 && in.routed.Load() {
		m.finish(w, in)
	}
}

// sideDone is the upstream done cascade arriving at one input: it marks
// the input fully routed and releases the hold.
func (m *mJoin) sideDone(w, side int) {
	if m.run.ctx.Err() != nil {
		return
	}
	in := m.inputs[side]
	in.routed.Store(true)
	m.release(w, in)
}

// finish completes one input: publish the immutable per-partition state
// to the AIP point, enable the other side's short-circuit, and — once
// both inputs are done, after which nothing can emit — cascade done
// (via the spill merge task when any partition spilled).
func (m *mJoin) finish(w int, in *joinInput) {
	in.done.Store(true)
	if in.point != nil {
		side := in.side
		parts := m.parts
		in.point.setStateIter(func(emit func(types.Tuple) bool) {
			for _, pt := range parts {
				for i := range pt.tables[side].entries {
					if !emit(pt.tables[side].entries[i].t) {
						return
					}
				}
			}
		})
		in.point.done.Store(true)
		m.run.ctx.pointDone(in.point)
	}
	if m.sidesDone.Add(1) == 2 && m.run.ctx.Err() == nil {
		spilled := false
		for _, pt := range m.parts {
			if pt.run != nil {
				spilled = true
				break
			}
		}
		if !spilled {
			m.down.done(w)
			return
		}
		// One sequential merge task drains every spilled partition's run and
		// then cascades done; merging one partition at a time keeps a single
		// merge table inside the merge share. All drains finished (both
		// pending barriers hit zero), so the partitions' resC are free.
		m.run.pool.SubmitFrom(w, func(dw int) { m.mergeSpilled(dw) })
	}
}

// mergeSpilled is the morsel engine's spill-drain task: the chan closer's
// merge loop as one pool task, emitting through the downstream chain.
func (m *mJoin) mergeSpilled(dw int) {
	ctx := m.run.ctx
	ops := [2]*stats.OpStats{m.inputs[0].op, m.inputs[1].op}
	for _, pt := range m.parts {
		if pt.run == nil {
			continue
		}
		if !pt.mergeSpill(ctx, ops, ops[0].Name, pt.resC, func(b Batch) bool {
			n := int64(b.Len())
			if !m.down.push(dw, b) {
				return false
			}
			ops[0].Out.Add(n)
			return true
		}) {
			return
		}
	}
	if ctx.Err() == nil {
		m.down.done(dw)
	}
}

// ---------------------------------------------------------------------------
// Hash aggregation

// mAggRoute is one worker id's routing scratch for the aggregation. The
// AIP probe runs through the batch kernel (group-by keys are computed
// values, so filters encode through the scratch's alt arrays); the
// routing key is the evaluated group tuple, hashed per row.
type mAggRoute struct {
	keyHasher types.Hasher
	sc        ProbeScratch
	compiled  []*expr.Compiled
	gcols2    [][]types.Value
	gvals     types.Tuple
	keep      []int32
	bufs      []*scatter
}

// mAggPart is one partition of the group state plus its fold scratch,
// owned by the inbox claimant. The embedded aggCore carries the group
// table and the bucket-discard spill state shared with the chan engine.
type mAggPart struct {
	inbox mInbox
	aggCore
	gvals   types.Tuple
	argC    []*expr.Compiled
	argCols [][]types.Value
	ids     []int32 // batch kernel scratch: key ids per scatter lane
	added   []bool
}

type mAgg struct {
	run   *morselRun
	h     *HashAgg
	down  mChain
	op    *stats.OpStats
	P     int
	shift uint
	gcols []int

	parts []*mAggPart
	route []mAggRoute

	pending       atomic.Int64
	routed        atomic.Bool
	remainingEmit atomic.Int64
}

func newMAgg(r *morselRun, h *HashAgg, down mChain) *mAgg {
	P := r.ctx.partitions()
	P = clampPartitions(P, pointEstRows(h.Point))
	r.ctx.addMemParts(P)
	op := r.ctx.Stats.NewOp("agg:" + h.Name)
	op.SetPartitions(P)
	if h.Point != nil {
		h.Point.Op = op
	}
	m := &mAgg{run: r, h: h, down: down, op: op, P: P, shift: partShift(P)}
	m.pending.Store(1)
	m.gcols = make([]int, len(h.GroupBy))
	for i := range m.gcols {
		m.gcols[i] = i
	}
	m.parts = make([]*mAggPart, P)
	for p := range m.parts {
		pt := &mAggPart{
			aggCore: aggCore{accs: accAllocator{width: len(h.Aggs)}},
			gvals:   make(types.Tuple, len(h.GroupBy)),
			argC:    make([]*expr.Compiled, len(h.Aggs)),
			argCols: make([][]types.Value, len(h.Aggs)),
		}
		for k := range h.Aggs {
			pt.argC[k] = expr.Compile(h.Aggs[k].Arg) // nil Arg compiles to nil
		}
		m.parts[p] = pt
	}
	m.route = make([]mAggRoute, r.nw)
	for i := range m.route {
		rt := &m.route[i]
		rt.compiled = make([]*expr.Compiled, len(h.GroupBy))
		for j, g := range h.GroupBy {
			rt.compiled[j] = expr.Compile(g)
		}
		rt.gcols2 = make([][]types.Value, len(h.GroupBy))
		rt.gvals = make(types.Tuple, len(h.GroupBy))
		rt.bufs = make([]*scatter, P)
	}
	return m
}

func (m *mAgg) push(w int, b Batch) bool {
	rt := &m.route[w]
	sel := b.Live()
	nIn := int64(len(sel))
	rt.keep = rt.keep[:0]
	if m.h.Point != nil && m.h.Point.Bank.Len() > 0 {
		rt.keep = m.h.Point.Bank.ProbeBatch(b.Tuples, nil, sel, rt.keep, &rt.sc)
	} else {
		rt.keep = append(rt.keep, sel...)
	}
	pruned := nIn - int64(len(rt.keep))
	for i, c := range rt.compiled {
		rt.gcols2[i] = growVals(rt.gcols2[i], len(b.Tuples))
		c.EvalBatch(b.Tuples, rt.keep, rt.gcols2[i])
	}
	for _, l := range rt.keep {
		for i := range rt.compiled {
			rt.gvals[i] = rt.gcols2[i][l]
		}
		kh, key := rt.keyHasher.KeyCols(rt.gvals, m.gcols)
		p := int(kh >> m.shift)
		buf := rt.bufs[p]
		if buf == nil {
			buf = getScatter(0)
			rt.bufs[p] = buf
		}
		buf.add(b.Tuples[l], kh, key)
	}
	m.op.In.Add(nIn)
	m.op.Pruned.Add(pruned)
	if m.h.Point != nil {
		m.h.Point.received.Add(nIn)
	}
	PutBatch(b)
	m.flushRoute(w, rt)
	return m.run.ctx.Err() == nil
}

func (m *mAgg) flushRoute(w int, rt *mAggRoute) {
	for p, sb := range rt.bufs {
		if sb == nil {
			continue
		}
		rt.bufs[p] = nil
		m.pending.Add(1)
		if m.parts[p].inbox.put(sb) {
			p := p
			m.run.pool.SubmitFrom(w, func(dw int) {
				m.parts[p].inbox.drainLoop(func(sb *scatter) bool {
					return m.fold(dw, p, sb)
				})
			})
		}
	}
}

// fold is the chan agg worker's body for one scatter: vectorized argument
// columns, KeyTable insert, group creation with OnStore, accumulator
// updates, stats, release.
func (m *mAgg) fold(dw, p int, sb *scatter) bool {
	pt := m.parts[p]
	ctx := m.run.ctx
	var newGroups, newBytes int64
	preBytes := pt.memBytes()
	n := len(sb.tuples)
	ident := identSel(n)
	for k, c := range pt.argC {
		if c == nil {
			continue
		}
		pt.argCols[k] = growVals(pt.argCols[k], n)
		c.EvalBatch(sb.tuples, ident, pt.argCols[k])
	}
	pt.ids = growI32(pt.ids, n)
	if cap(pt.added) < n {
		pt.added = make([]bool, n)
	}
	// Resolve every group key's id in one prefetching pass; InsertBatch
	// assigns dense ids in lane order, so pt.groups grows in lockstep.
	pt.idx.InsertBatch(sb.hashes, sb.keys, sb.offs, pt.ids, pt.added[:n])
	for i, t := range sb.tuples {
		id := pt.ids[i]
		if pt.added[i] {
			for k, g := range m.h.GroupBy {
				pt.gvals[k] = g.Eval(t)
			}
			pt.groups = append(pt.groups, groupState{groupVals: pt.gvals.Clone(), accs: pt.accs.alloc()})
			newGroups++
			newBytes += int64(pt.gvals.MemSize()) + int64(48*len(m.h.Aggs))
			// Partition index as the OnStore slot: the inbox claim
			// serializes it (one drain at a time owns the partition).
			if m.h.Point != nil && m.h.Point.OnStore != nil {
				m.h.Point.OnStore(p, pt.groups[id].groupVals)
			}
		}
		gs := &pt.groups[id]
		for k := range m.h.Aggs {
			var v types.Value
			if pt.argC[k] != nil {
				v = pt.argCols[k][i]
			}
			gs.accs[k].add(m.h.Aggs[k].Func, v)
		}
	}
	pt.groupBytes += newBytes
	// Delta-based accounting over the full footprint (key index + groups),
	// mirroring the chan worker.
	if delta := pt.memBytes() - preBytes; delta != 0 {
		ctx.account(delta)
		m.op.StateBytes.Add(delta)
		pt.bytes += delta
	}
	m.op.StateRows.Add(newGroups)
	pp := m.op.Part(p)
	pp.Rows.Add(newGroups)
	pp.Bytes.Add(newBytes)
	if m.h.Point != nil {
		m.h.Point.stored.Add(newGroups)
	}
	if ctx.memPressure(pt.bytes, m.P) {
		if err := pt.evict(ctx, m.op, m.h.Point, m.h.Aggs); err != nil {
			ctx.CancelCause(err)
			return false
		}
	}
	putScatter(sb)
	m.release(dw)
	return true
}

func (m *mAgg) release(w int) {
	if m.pending.Add(-1) == 0 && m.routed.Load() {
		m.finalize(w)
	}
}

func (m *mAgg) done(w int) {
	if m.run.ctx.Err() != nil {
		return
	}
	m.routed.Store(true)
	m.release(w)
}

// finalize runs once, after the last fold of a fully routed input: the
// blocking aggregation's pipeline-breaker barrier. It publishes the AIP
// state and fans the result emission out as one task per partition; the
// last emission task cascades done.
func (m *mAgg) finalize(w int) {
	total := 0
	spilledCount := 0
	for _, pt := range m.parts {
		total += len(pt.groups)
		if pt.run != nil {
			spilledCount++
		}
	}
	// SQL semantics: a global aggregate over empty input yields one row.
	// Appended before the state iterator is published, as in the chan
	// finisher: once the point is Done the group state is immutable. A
	// spilled run means the input was not empty — its groups live on disk.
	if total == 0 && len(m.h.GroupBy) == 0 && spilledCount == 0 {
		m.parts[0].groups = append(m.parts[0].groups, groupState{accs: make([]aggAcc, len(m.h.Aggs))})
	}
	if m.h.Point != nil {
		parts := m.parts
		m.h.Point.setStateIter(func(emit func(types.Tuple) bool) {
			for _, pt := range parts {
				for i := range pt.groups {
					if !emit(pt.groups[i].groupVals) {
						return
					}
				}
			}
		})
		m.h.Point.done.Store(true)
		m.run.ctx.pointDone(m.h.Point)
	}
	// Unspilled partitions emit in parallel as before; all spilled
	// partitions drain through one sequential task so at most one rebuilt
	// sub-bucket table occupies the merge share at a time.
	n := int64(m.P - spilledCount)
	if spilledCount > 0 {
		n++
	}
	m.remainingEmit.Store(n)
	for p := range m.parts {
		if m.parts[p].run != nil {
			continue
		}
		p := p
		m.run.pool.SubmitFrom(w, func(dw int) { m.emitPart(dw, p) })
	}
	if spilledCount > 0 {
		m.run.pool.SubmitFrom(w, func(dw int) { m.emitSpilled(dw) })
	}
}

// emitSpilled drains every spilled partition's run sequentially; the last
// emission task (this one or a parallel emitPart) cascades done.
func (m *mAgg) emitSpilled(dw int) {
	ctx := m.run.ctx
	for _, pt := range m.parts {
		if pt.run == nil {
			continue
		}
		if !pt.mergeSpill(ctx, m.op, len(m.h.GroupBy), m.h.Aggs, func(b Batch) bool {
			n := int64(b.Len())
			if !m.down.push(dw, b) {
				return false
			}
			m.op.Out.Add(n)
			return true
		}) {
			return
		}
	}
	if m.remainingEmit.Add(-1) == 0 && ctx.Err() == nil {
		m.down.done(dw)
	}
}

func (m *mAgg) emitPart(dw, p int) {
	pt := m.parts[p]
	var arena rowArena
	batch := GetBatch()
	flush := func() bool {
		if len(batch.Tuples) == 0 {
			return true
		}
		n := int64(len(batch.Tuples))
		if !m.down.push(dw, batch) {
			batch = Batch{}
			return false
		}
		m.op.Out.Add(n)
		batch = GetBatch()
		return true
	}
	for gi := range pt.groups {
		gs := &pt.groups[gi]
		row := arena.alloc(len(gs.groupVals) + len(m.h.Aggs))
		copy(row, gs.groupVals)
		for i := range m.h.Aggs {
			argKind := types.KindFloat
			if m.h.Aggs[i].Arg != nil {
				argKind = m.h.Aggs[i].Arg.Kind()
			}
			row[len(gs.groupVals)+i] = gs.accs[i].result(m.h.Aggs[i].Func, argKind)
		}
		batch.Tuples = append(batch.Tuples, row)
		if len(batch.Tuples) == BatchSize && !flush() {
			return
		}
	}
	if !flush() {
		return
	}
	PutBatch(batch)
	if m.remainingEmit.Add(-1) == 0 && m.run.ctx.Err() == nil {
		m.down.done(dw)
	}
}

// ---------------------------------------------------------------------------
// Distinct

// mDistRoute is one worker id's routing scratch for distinct.
type mDistRoute struct {
	sc   ProbeScratch // batch key hashing + AIP probing, hash-once
	keep []int32      // surviving selection when filters are attached
	bufs []*scatter
}

// mDistinctPart is one partition of the seen-set. The embedded
// distinctCore carries the set and the bucket-discard spill state shared
// with the chan engine.
type mDistinctPart struct {
	inbox mInbox
	distinctCore
	ids   []int32 // batch kernel scratch: key ids per scatter lane
	added []bool
}

type mDistinct struct {
	run     *morselRun
	d       *Distinct
	down    mChain
	op      *stats.OpStats
	P       int
	shift   uint
	allCols []int

	parts []*mDistinctPart
	route []mDistRoute

	pending atomic.Int64
	routed  atomic.Bool
}

func newMDistinct(r *morselRun, d *Distinct, down mChain) *mDistinct {
	P := r.ctx.partitions()
	P = clampPartitions(P, pointEstRows(d.Point))
	r.ctx.addMemParts(P)
	op := r.ctx.Stats.NewOp("distinct:" + d.Name)
	op.SetPartitions(P)
	if d.Point != nil {
		d.Point.Op = op
	}
	m := &mDistinct{run: r, d: d, down: down, op: op, P: P, shift: partShift(P)}
	m.pending.Store(1)
	m.allCols = make([]int, d.Child.Schema().Len())
	for i := range m.allCols {
		m.allCols[i] = i
	}
	m.parts = make([]*mDistinctPart, P)
	for p := range m.parts {
		m.parts[p] = &mDistinctPart{}
	}
	m.route = make([]mDistRoute, r.nw)
	for i := range m.route {
		m.route[i].bufs = make([]*scatter, P)
	}
	return m
}

func (m *mDistinct) push(w int, b Batch) bool {
	rt := &m.route[w]
	sel := b.Live()
	nIn := int64(len(sel))
	// ProbeBatch fills the scratch's hash/key arrays for every live lane
	// either way, so routing below reuses the hash-once work.
	kept := sel
	if m.d.Point != nil && m.d.Point.Bank.Len() > 0 {
		kept = m.d.Point.Bank.ProbeBatch(b.Tuples, m.allCols, sel, rt.keep[:0], &rt.sc)
		rt.keep = kept
	} else {
		rt.sc.compute(b.Tuples, m.allCols, sel)
	}
	for _, l := range kept {
		t := b.Tuples[l]
		kh := rt.sc.hashes[l]
		p := int(kh >> m.shift)
		buf := rt.bufs[p]
		if buf == nil {
			buf = getScatter(0)
			rt.bufs[p] = buf
		}
		buf.add(t, kh, rt.sc.key(l))
	}
	m.op.In.Add(nIn)
	m.op.Pruned.Add(nIn - int64(len(kept)))
	if m.d.Point != nil {
		m.d.Point.received.Add(nIn)
	}
	PutBatch(b)
	for p, sb := range rt.bufs {
		if sb == nil {
			continue
		}
		rt.bufs[p] = nil
		m.pending.Add(1)
		if m.parts[p].inbox.put(sb) {
			p := p
			m.run.pool.SubmitFrom(w, func(dw int) {
				m.parts[p].inbox.drainLoop(func(sb *scatter) bool {
					return m.dedup(dw, p, sb)
				})
			})
		}
	}
	return m.run.ctx.Err() == nil
}

// dedup is the chan distinct worker's body for one scatter: first
// occurrences are cloned into the seen-set (OnStore on the partition
// slot) and forwarded immediately — distinct stays pipelined.
func (m *mDistinct) dedup(dw, p int, sb *scatter) bool {
	pt := m.parts[p]
	ctx := m.run.ctx
	var stored, storedBytes int64
	preBytes := pt.memBytes()
	n := len(sb.tuples)
	pt.ids = growI32(pt.ids, n)
	if cap(pt.added) < n {
		pt.added = make([]bool, n)
	}
	pt.idx.InsertBatch(sb.hashes, sb.keys, sb.offs, pt.ids, pt.added[:n])
	fresh := GetBatch()
	for i, t := range sb.tuples {
		if pt.added[i] {
			pt.seen = append(pt.seen, t.Clone())
			stored++
			storedBytes += int64(t.MemSize())
			if m.d.Point != nil && m.d.Point.OnStore != nil {
				m.d.Point.OnStore(p, t)
			}
			// A spilled partition defers: this may duplicate an evicted
			// key, so the finalize replay decides.
			if !pt.deferred {
				fresh.Tuples = append(fresh.Tuples, t)
			}
		}
	}
	pt.tupBytes += storedBytes
	if delta := pt.memBytes() - preBytes; delta != 0 {
		ctx.account(delta)
		m.op.StateBytes.Add(delta)
		pt.bytes += delta
	}
	m.op.StateRows.Add(stored)
	pp := m.op.Part(p)
	pp.Rows.Add(stored)
	pp.Bytes.Add(storedBytes)
	if m.d.Point != nil {
		m.d.Point.stored.Add(stored)
	}
	if len(fresh.Tuples) == 0 {
		PutBatch(fresh)
	} else {
		n := int64(len(fresh.Tuples))
		if !m.down.push(dw, fresh) {
			// Cancelled: abandon without release (the chan engine's failed
			// flag) so the partial seen-state is never published.
			return false
		}
		m.op.Out.Add(n)
	}
	if ctx.memPressure(pt.bytes, m.P) {
		if err := pt.evict(ctx, m.op, m.d.Point); err != nil {
			ctx.CancelCause(err)
			return false
		}
	}
	putScatter(sb)
	m.release(dw)
	return true
}

func (m *mDistinct) release(w int) {
	if m.pending.Add(-1) == 0 && m.routed.Load() {
		m.finalize(w)
	}
}

func (m *mDistinct) done(w int) {
	if m.run.ctx.Err() != nil {
		return
	}
	m.routed.Store(true)
	m.release(w)
}

func (m *mDistinct) finalize(w int) {
	// Merge phase: spilled partitions replay their runs and emit the
	// deferred pending tuples whose keys were never claimed. Sequential, and
	// inline in the last release's task — it is the pipeline's tail work.
	ctx := m.run.ctx
	for _, pt := range m.parts {
		if pt.run == nil {
			continue
		}
		if !pt.mergeSpill(ctx, m.op, func(b Batch) bool {
			n := int64(b.Len())
			if !m.down.push(w, b) {
				return false
			}
			m.op.Out.Add(n)
			return true
		}) {
			return
		}
	}
	if m.d.Point != nil {
		parts := m.parts
		m.d.Point.setStateIter(func(emit func(types.Tuple) bool) {
			for _, pt := range parts {
				for _, t := range pt.seen {
					if !emit(t) {
						return
					}
				}
			}
		})
		m.d.Point.done.Store(true)
		m.run.ctx.pointDone(m.d.Point)
	}
	if m.run.ctx.Err() == nil {
		m.down.done(w)
	}
}

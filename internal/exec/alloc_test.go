package exec

import (
	"testing"

	"repro/internal/bloom"
	"repro/internal/filter"
	"repro/internal/types"
)

// TestJoinProbeZeroAllocs is the hot-path allocation regression gate: once
// the hasher scratch and probe buffers are warm, hashing a tuple's key,
// probing the AIP filter bank, and probing the open-addressing join table
// must not allocate at all. This is the per-probed-tuple path of
// HashJoin.Start's consume loop.
func TestJoinProbeZeroAllocs(t *testing.T) {
	keys := []int{0}

	// A populated join table with a realistic mix of hit and miss keys.
	var jt joinTable
	var build types.Hasher
	for i := 0; i < 1024; i++ {
		tup := types.Tuple{types.Int(int64(i)), types.Int(int64(i * 2))}
		h, key := build.KeyCols(tup, keys)
		jt.insert(h, key, tup, uint64(i+1))
	}

	// An AIP bank with both summary kinds attached over the key column.
	bank := NewFilterBank()
	bf := bloom.New(1024, 0.05)
	hs := filter.NewHashSet(64)
	for i := 0; i < 1024; i++ {
		key := types.Tuple{types.Int(int64(i))}.AppendKeyCols(nil, []int{0})
		bf.Add(key)
		hs.Add(key)
	}
	bank.Attach([]int{0}, filter.Bloom{F: bf})
	bank.Attach([]int{0}, hs)

	probes := make([]types.Tuple, 256)
	for i := range probes {
		probes[i] = types.Tuple{types.Int(int64(i * 3)), types.Int(0)}
	}

	var keyHasher, bankHasher types.Hasher
	matchBuf := make([]types.Tuple, 0, 4096)
	sink := 0
	allocs := testing.AllocsPerRun(100, func() {
		matchBuf = matchBuf[:0]
		for _, tup := range probes {
			h, key := keyHasher.KeyCols(tup, keys)
			if !bank.ProbeHashed(tup, keys, h, key, &bankHasher) {
				continue
			}
			matchBuf = jt.probe(h, key, ^uint64(0), matchBuf)
		}
		sink += len(matchBuf)
	})
	if sink == 0 {
		t.Fatal("probe loop matched nothing — test is vacuous")
	}
	if allocs != 0 {
		t.Fatalf("join probe hot path allocates %.1f times per 256 tuples, want 0", allocs)
	}
}

// TestKeyTableLookupZeroAllocs pins the table probe itself.
func TestKeyTableLookupZeroAllocs(t *testing.T) {
	kt := types.NewKeyTable(512)
	var h types.Hasher
	for i := 0; i < 512; i++ {
		hash, key := h.KeyCols(types.Tuple{types.Int(int64(i))}, []int{0})
		kt.Insert(hash, key)
	}
	var probe types.Hasher
	hits := 0
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1024; i++ {
			hash, key := probe.KeyCols(types.Tuple{types.Int(int64(i))}, []int{0})
			if kt.Lookup(hash, key) >= 0 {
				hits++
			}
		}
	})
	if hits == 0 {
		t.Fatal("no hits — test is vacuous")
	}
	if allocs != 0 {
		t.Fatalf("KeyTable lookup allocates %.1f times per 1024 probes, want 0", allocs)
	}
}

// TestJoinTableShortCircuitInterplay exercises the open-addressing table
// against the §VI-A short-circuit: the drained side keeps probing the
// completed side's table and must still see every earlier-ticket match,
// while its own table stays empty.
func TestJoinTableShortCircuitInterplay(t *testing.T) {
	var completed joinTable
	var build types.Hasher
	for i := 0; i < 100; i++ {
		tup := types.Tuple{types.Int(int64(i % 10)), types.Int(int64(i))}
		h, key := build.KeyCols(tup, []int{0})
		completed.insert(h, key, tup, uint64(i+1))
	}
	// Probing with a later ticket sees all 10 stored duplicates per key;
	// probing with ticket 1 sees none (nothing was stored earlier).
	var probe types.Hasher
	h, key := probe.KeyCols(types.Tuple{types.Int(3), types.Int(0)}, []int{0})
	if got := len(completed.probe(h, key, ^uint64(0), nil)); got != 10 {
		t.Fatalf("late probe saw %d matches, want 10", got)
	}
	if got := len(completed.probe(h, key, 1, nil)); got != 0 {
		t.Fatalf("ticket-1 probe saw %d matches, want 0", got)
	}
	// Ticket cutoffs fall mid-chain: key 3 is stored at tickets 4, 14, …, 94.
	if got := len(completed.probe(h, key, 15, nil)); got != 2 {
		t.Fatalf("ticket-15 probe saw %d matches, want 2", got)
	}
}

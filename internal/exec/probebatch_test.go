package exec

import (
	"math/rand"
	"testing"

	"repro/internal/bloom"
	"repro/internal/filter"
	"repro/internal/types"
)

// probeBatchFixture builds a bank with three summaries — a blocked filter
// over the probing key columns, a flat filter over a different column set,
// and an exact hash set over the key columns — so a batch probe exercises
// the primary arrays, the alt-compute fallback, and the keyAt path at once.
func probeBatchFixture(rng *rand.Rand, nPresent int) (*FilterBank, []int, []types.Tuple) {
	keyCols := []int{0}
	altCols := []int{1}
	blocked := bloom.NewBlocked(nPresent, bloom.DefaultFPR)
	flat := bloom.New(nPresent, bloom.DefaultFPR)
	hs := filter.NewHashSet(64)
	var kb []byte
	for i := 0; i < nPresent; i++ {
		key := types.Tuple{types.Int(int64(i))}
		kb = key.AppendKeyCols(kb[:0], []int{0})
		h := types.Hash64(kb, 0)
		blocked.AddHash(h)
		hs.AddHash(h, kb)
		alt := types.Tuple{types.Int(int64(i * 3))}
		kb = alt.AppendKeyCols(kb[:0], []int{0})
		flat.AddHash(types.Hash64(kb, 0))
	}
	bank := NewFilterBank()
	bank.Attach(keyCols, filter.Blocked{F: blocked})
	bank.Attach(altCols, filter.Bloom{F: flat})
	bank.Attach(keyCols, hs)
	tuples := make([]types.Tuple, 4096)
	for i := range tuples {
		v := int64(rng.Intn(nPresent * 2))
		tuples[i] = types.Tuple{types.Int(v), types.Int(v * 3)}
	}
	return bank, keyCols, tuples
}

// TestProbeBatchMatchesProbeHashed is the batch-vs-scalar differential at
// the FilterBank level: the batch path must keep exactly the tuples the
// scalar path keeps, for every selection shape.
func TestProbeBatchMatchesProbeHashed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bank, keyCols, tuples := probeBatchFixture(rng, 2000)

	var hasher types.Hasher
	scalar := func(sel []int32) []int32 {
		var want []int32
		for _, i := range sel {
			h, key := hasher.KeyCols(tuples[i], keyCols)
			if bank.ProbeHashed(tuples[i], keyCols, h, key, &hasher) {
				want = append(want, i)
			}
		}
		return want
	}

	full := make([]int32, len(tuples))
	for i := range full {
		full[i] = int32(i)
	}
	var sub []int32
	for _, i := range full {
		if rng.Intn(4) == 0 {
			sub = append(sub, i)
		}
	}
	var sc ProbeScratch
	for _, tc := range []struct {
		name string
		sel  []int32
	}{
		{"full", full},
		{"subset", sub},
		{"empty", nil},
		{"single", full[:1]},
	} {
		want := scalar(tc.sel)
		got := bank.ProbeBatch(tuples, keyCols, tc.sel, nil, &sc)
		if len(got) != len(want) {
			t.Fatalf("%s: batch kept %d lanes, scalar kept %d", tc.name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: lane %d: batch %d, scalar %d", tc.name, i, got[i], want[i])
			}
		}
	}

	// All-fail: a bank whose only filter is empty prunes every lane.
	emptyBank := NewFilterBank()
	emptyBank.Attach(keyCols, filter.Blocked{F: bloom.NewBlocked(10, bloom.DefaultFPR)})
	if got := emptyBank.ProbeBatch(tuples, keyCols, full, nil, &sc); len(got) != 0 {
		t.Fatalf("empty filter passed %d lanes", len(got))
	}
	// No filters attached: ProbeBatch passes everything through.
	if got := NewFilterBank().ProbeBatch(tuples, keyCols, full, nil, &sc); len(got) != len(full) {
		t.Fatalf("no-filter bank kept %d of %d", len(got), len(full))
	}
}

// TestProbeBatchZeroAllocs pins the steady-state allocation count of the
// batch probe path at zero: the per-worker scratch and the caller-owned
// out vector must absorb every buffer need once warm.
func TestProbeBatchZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bank, keyCols, tuples := probeBatchFixture(rng, 2000)
	sel := make([]int32, len(tuples))
	for i := range sel {
		sel[i] = int32(i)
	}
	var sc ProbeScratch
	out := make([]int32, 0, len(sel))
	// Warm: first batch sizes the scratch arrays and binds keyAt.
	out = bank.ProbeBatch(tuples, keyCols, sel, out[:0], &sc)
	allocs := testing.AllocsPerRun(20, func() {
		out = bank.ProbeBatch(tuples, keyCols, sel, out[:0], &sc)
	})
	if allocs != 0 {
		t.Fatalf("ProbeBatch allocates %.1f objects per batch at steady state, want 0", allocs)
	}
}

// Probe-site benchmarks: the tuple-at-a-time scalar site the engine ran
// before batch probing vs the batch site it runs now, over the same bank
// and tuple stream (single blocked filter over the probing key columns —
// the common AIP shape).
func probeSiteBench() (*FilterBank, []int, []types.Tuple) {
	const n = 1 << 18
	keyCols := []int{0}
	var kb []byte
	f := bloom.NewBlocked(n, bloom.DefaultFPR)
	for i := 0; i < n; i++ {
		kb = types.Tuple{types.Int(int64(i))}.AppendKeyCols(kb[:0], keyCols)
		f.AddHash(types.Hash64(kb, 0))
	}
	bank := NewFilterBank()
	bank.Attach(keyCols, filter.Blocked{F: f})
	tuples := make([]types.Tuple, 1<<14)
	for i := range tuples {
		tuples[i] = types.Tuple{types.Int(int64(i * 7 % (2 * n)))}
	}
	return bank, keyCols, tuples
}

func BenchmarkProbeSiteScalar(b *testing.B) {
	bank, keyCols, tuples := probeSiteBench()
	var hasher types.Hasher
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		for j := range tuples {
			h, key := hasher.KeyCols(tuples[j], keyCols)
			if bank.ProbeHashed(tuples[j], keyCols, h, key, &hasher) {
				hits++
			}
		}
	}
	benchSink = hits
}

func BenchmarkProbeSiteBatch(b *testing.B) {
	bank, keyCols, tuples := probeSiteBench()
	var sc ProbeScratch
	const window = 4096
	sel := make([]int32, window)
	for i := range sel {
		sel[i] = int32(i)
	}
	out := make([]int32, 0, window)
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		for start := 0; start+window <= len(tuples); start += window {
			out = bank.ProbeBatch(tuples[start:start+window], keyCols, sel, out[:0], &sc)
			hits += len(out)
		}
	}
	benchSink = hits
}

var benchSink int

package exec

import (
	"sync"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/types"
)

// aggAcc accumulates one aggregate for one group.
type aggAcc struct {
	count int64
	sumF  float64
	sumI  int64
	isInt bool
	min   types.Value
	max   types.Value
	seen  bool
}

func (a *aggAcc) add(f plan.AggFunc, v types.Value) {
	if f == plan.AggCountStar {
		a.count++
		return
	}
	if v.IsNull() {
		return
	}
	a.count++
	switch f {
	case plan.AggSum, plan.AggAvg:
		if v.K == types.KindInt {
			a.sumI += v.I
		}
		fv, _ := v.AsFloat()
		a.sumF += fv
	case plan.AggMin:
		if !a.seen || types.Compare(v, a.min) < 0 {
			a.min = v
		}
	case plan.AggMax:
		if !a.seen || types.Compare(v, a.max) > 0 {
			a.max = v
		}
	}
	a.seen = true
}

func (a *aggAcc) result(f plan.AggFunc, argKind types.Kind) types.Value {
	switch f {
	case plan.AggCount, plan.AggCountStar:
		return types.Int(a.count)
	case plan.AggSum:
		if a.count == 0 {
			return types.Null()
		}
		if argKind == types.KindInt {
			return types.Int(a.sumI)
		}
		return types.Float(a.sumF)
	case plan.AggAvg:
		if a.count == 0 {
			return types.Null()
		}
		return types.Float(a.sumF / float64(a.count))
	case plan.AggMin:
		if !a.seen {
			return types.Null()
		}
		return a.min
	default:
		if !a.seen {
			return types.Null()
		}
		return a.max
	}
}

// groupState is the buffered state for one group.
type groupState struct {
	groupVals types.Tuple
	accs      []aggAcc
}

// HashAgg is the blocking hash-based aggregation operator. Its input is an
// AIP injection point: filters prune arriving tuples before they create or
// update groups, and once the input completes the set of group keys is
// available as AIP-set state (the paper's Example 3.2 builds a Bloom filter
// of PARTKEY "from the state in the aggregation operator").
//
// Groups live in an open-addressing KeyTable (hash-once group keys, no
// string allocation) with a dense groupState array; the state mutex is
// taken once per input batch and stats counters are flushed per batch.
type HashAgg struct {
	Name    string
	Child   Op
	GroupBy []expr.Expr
	Aggs    []plan.AggSpec
	Point   *Point

	sch *types.Schema
}

// NewHashAgg builds the operator; sch must be [group cols..., agg cols...].
func NewHashAgg(name string, child Op, groupBy []expr.Expr, aggs []plan.AggSpec, sch *types.Schema) *HashAgg {
	return &HashAgg{Name: name, Child: child, GroupBy: groupBy, Aggs: aggs, sch: sch}
}

// Schema returns the post-aggregation schema.
func (h *HashAgg) Schema() *types.Schema { return h.sch }

// accAllocator hands out aggAcc slices carved from chunked backing arrays,
// one allocation per ~256 groups instead of one per group.
type accAllocator struct {
	width int
	free  []aggAcc
}

func (a *accAllocator) alloc() []aggAcc {
	if a.width == 0 {
		return nil
	}
	if len(a.free) < a.width {
		a.free = make([]aggAcc, 256*a.width)
	}
	out := a.free[:a.width:a.width]
	a.free = a.free[a.width:]
	return out
}

// Start launches the aggregation goroutine.
func (h *HashAgg) Start(ctx *Context) <-chan Batch {
	in := h.Child.Start(ctx)
	out := make(chan Batch, 4)
	op := ctx.Stats.NewOp("agg:" + h.Name)

	go func() {
		defer close(out)
		var (
			mu         sync.Mutex
			idx        types.KeyTable
			groups     []groupState
			keyHasher  types.Hasher
			bankHasher types.Hasher
			accs       = accAllocator{width: len(h.Aggs)}
		)
		gvals := make(types.Tuple, len(h.GroupBy))
		gcols := make([]int, len(h.GroupBy))
		for i := range gcols {
			gcols[i] = i
		}

		for b := range in {
			nIn := int64(len(b))
			var pruned, newGroups, newBytes int64
			mu.Lock()
			for _, t := range b {
				if h.Point != nil && !h.Point.Bank.ProbeHashed(t, nil, 0, nil, &bankHasher) {
					pruned++
					continue
				}
				for i, g := range h.GroupBy {
					gvals[i] = g.Eval(t)
				}
				kh, key := keyHasher.KeyCols(gvals, gcols)
				id, added := idx.Insert(kh, key)
				if added {
					groups = append(groups, groupState{groupVals: gvals.Clone(), accs: accs.alloc()})
					newGroups++
					newBytes += int64(gvals.MemSize()) + int64(48*len(h.Aggs))
					if h.Point != nil && h.Point.OnStore != nil {
						h.Point.OnStore(groups[id].groupVals)
					}
				}
				gs := &groups[id]
				for i := range h.Aggs {
					var v types.Value
					if h.Aggs[i].Arg != nil {
						v = h.Aggs[i].Arg.Eval(t)
					}
					gs.accs[i].add(h.Aggs[i].Func, v)
				}
			}
			mu.Unlock()
			op.In.Add(nIn)
			op.Pruned.Add(pruned)
			op.StateRows.Add(newGroups)
			op.StateBytes.Add(newBytes)
			if h.Point != nil {
				h.Point.received.Add(nIn)
				h.Point.stored.Add(newGroups)
			}
			PutBatch(b)
		}

		// SQL semantics: a global aggregate (no GROUP BY) over empty input
		// yields exactly one row (count 0, sum/min/max/avg NULL). Appended
		// before the state iterator is published: once the point is Done
		// the groups slice must be immutable.
		if len(groups) == 0 && len(h.GroupBy) == 0 {
			groups = append(groups, groupState{accs: make([]aggAcc, len(h.Aggs))})
		}

		if h.Point != nil {
			h.Point.setStateIter(func(emit func(types.Tuple) bool) {
				mu.Lock()
				defer mu.Unlock()
				for i := range groups {
					if !emit(groups[i].groupVals) {
						return
					}
				}
			})
			h.Point.done.Store(true)
			ctx.pointDone(h.Point)
		}

		var arena rowArena
		var emitted int64
		batch := GetBatch()
		for gi := range groups {
			gs := &groups[gi]
			row := arena.alloc(len(gs.groupVals) + len(h.Aggs))
			copy(row, gs.groupVals)
			for i := range h.Aggs {
				argKind := types.KindFloat
				if h.Aggs[i].Arg != nil {
					argKind = h.Aggs[i].Arg.Kind()
				}
				row[len(gs.groupVals)+i] = gs.accs[i].result(h.Aggs[i].Func, argKind)
			}
			emitted++
			batch = append(batch, row)
			if len(batch) == BatchSize {
				if !send(ctx, out, batch) {
					return
				}
				batch = GetBatch()
			}
		}
		op.Out.Add(emitted)
		if len(batch) == 0 {
			PutBatch(batch)
		} else {
			send(ctx, out, batch)
		}
	}()
	return out
}

// Distinct is the pipelined duplicate eliminator: the first occurrence of a
// tuple is forwarded immediately; its state (the set of tuples seen) is AIP
// state like any other (the paper's Example 3.1 builds a hash set "from the
// state in the distinct operator").
type Distinct struct {
	Name  string
	Child Op
	Point *Point
}

// Schema returns the child schema.
func (d *Distinct) Schema() *types.Schema { return d.Child.Schema() }

// Start launches the distinct goroutine.
func (d *Distinct) Start(ctx *Context) <-chan Batch {
	in := d.Child.Start(ctx)
	out := make(chan Batch, 4)
	op := ctx.Stats.NewOp("distinct:" + d.Name)
	allCols := make([]int, d.Child.Schema().Len())
	for i := range allCols {
		allCols[i] = i
	}

	go func() {
		defer close(out)
		var (
			mu         sync.Mutex
			idx        types.KeyTable
			seen       []types.Tuple
			keyHasher  types.Hasher
			bankHasher types.Hasher
		)
		for b := range in {
			nIn := int64(len(b))
			var pruned, stored, storedBytes int64
			fresh := GetBatch()
			mu.Lock()
			for _, t := range b {
				kh, key := keyHasher.KeyCols(t, allCols)
				if d.Point != nil && !d.Point.Bank.ProbeHashed(t, allCols, kh, key, &bankHasher) {
					pruned++
					continue
				}
				if _, added := idx.Insert(kh, key); added {
					// Clone the retained tuple: distinct keeps a sparse
					// subset of its input forever, and retaining arena-backed
					// rows directly would pin their whole blocks.
					seen = append(seen, t.Clone())
					stored++
					storedBytes += int64(t.MemSize())
					if d.Point != nil && d.Point.OnStore != nil {
						d.Point.OnStore(t)
					}
					fresh = append(fresh, t)
				}
			}
			mu.Unlock()
			op.In.Add(nIn)
			op.Pruned.Add(pruned)
			op.Out.Add(int64(len(fresh)))
			op.StateRows.Add(stored)
			op.StateBytes.Add(storedBytes)
			if d.Point != nil {
				d.Point.received.Add(nIn)
				d.Point.stored.Add(stored)
			}
			if len(fresh) == 0 {
				PutBatch(fresh)
			} else if !send(ctx, out, fresh) {
				return
			}
			PutBatch(b)
		}
		if d.Point != nil {
			d.Point.setStateIter(func(emit func(types.Tuple) bool) {
				mu.Lock()
				defer mu.Unlock()
				for _, t := range seen {
					if !emit(t) {
						return
					}
				}
			})
			d.Point.done.Store(true)
			ctx.pointDone(d.Point)
		}
	}()
	return out
}

package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/types"
)

// aggAcc accumulates one aggregate for one group.
type aggAcc struct {
	count int64
	sumF  float64
	sumI  int64
	isInt bool
	min   types.Value
	max   types.Value
	seen  bool
}

func (a *aggAcc) add(f plan.AggFunc, v types.Value) {
	if f == plan.AggCountStar {
		a.count++
		return
	}
	if v.IsNull() {
		return
	}
	a.count++
	switch f {
	case plan.AggSum, plan.AggAvg:
		if v.K == types.KindInt {
			a.sumI += v.I
		}
		fv, _ := v.AsFloat()
		a.sumF += fv
	case plan.AggMin:
		if !a.seen || types.Compare(v, a.min) < 0 {
			a.min = v
		}
	case plan.AggMax:
		if !a.seen || types.Compare(v, a.max) > 0 {
			a.max = v
		}
	}
	a.seen = true
}

func (a *aggAcc) result(f plan.AggFunc, argKind types.Kind) types.Value {
	switch f {
	case plan.AggCount, plan.AggCountStar:
		return types.Int(a.count)
	case plan.AggSum:
		if a.count == 0 {
			return types.Null()
		}
		if argKind == types.KindInt {
			return types.Int(a.sumI)
		}
		return types.Float(a.sumF)
	case plan.AggAvg:
		if a.count == 0 {
			return types.Null()
		}
		return types.Float(a.sumF / float64(a.count))
	case plan.AggMin:
		if !a.seen {
			return types.Null()
		}
		return a.min
	default:
		if !a.seen {
			return types.Null()
		}
		return a.max
	}
}

// groupState is the buffered state for one group.
type groupState struct {
	groupVals types.Tuple
	accs      []aggAcc
}

// HashAgg is the blocking hash-based aggregation operator. Its input is an
// AIP injection point: filters prune arriving tuples before they create or
// update groups, and once the input completes the set of group keys is
// available as AIP-set state (the paper's Example 3.2 builds a Bloom filter
// of PARTKEY "from the state in the aggregation operator").
//
// Like the join, the operator is radix partitioned: a router evaluates the
// group-by keys, hashes them once, and scatters tuples to P partitions by
// the top hash bits; every partition's KeyTable and group array is owned by
// a single worker goroutine, so group maintenance for different partitions
// runs fully in parallel without locks (a group's key always routes to the
// same partition, so each group lives in exactly one).
type HashAgg struct {
	Name    string
	Child   Op
	GroupBy []expr.Expr
	Aggs    []plan.AggSpec
	Point   *Point

	sch *types.Schema
}

// NewHashAgg builds the operator; sch must be [group cols..., agg cols...].
func NewHashAgg(name string, child Op, groupBy []expr.Expr, aggs []plan.AggSpec, sch *types.Schema) *HashAgg {
	return &HashAgg{Name: name, Child: child, GroupBy: groupBy, Aggs: aggs, sch: sch}
}

// Schema returns the post-aggregation schema.
func (h *HashAgg) Schema() *types.Schema { return h.sch }

// accAllocator hands out aggAcc slices carved from chunked backing arrays,
// one allocation per ~256 groups instead of one per group. Each partition
// worker owns its own allocator.
type accAllocator struct {
	width int
	free  []aggAcc
}

func (a *accAllocator) alloc() []aggAcc {
	if a.width == 0 {
		return nil
	}
	if len(a.free) < a.width {
		a.free = make([]aggAcc, 256*a.width)
	}
	out := a.free[:a.width:a.width]
	a.free = a.free[a.width:]
	return out
}

// aggPart is one radix partition of the aggregation state, owned by its
// worker goroutine. The embedded aggCore carries the group table and the
// bucket-discard spill state shared with the morsel engine.
type aggPart struct {
	in chan *scatter
	aggCore
}

// Start launches the router and the per-partition fold workers.
func (h *HashAgg) Start(ctx *Context) <-chan Batch {
	in := h.Child.Start(ctx)
	out := make(chan Batch, ctx.pipeDepth())
	op := ctx.Stats.NewOp("agg:" + h.Name)
	if h.Point != nil {
		h.Point.Op = op
	}

	P := ctx.partitions()
	P = clampPartitions(P, pointEstRows(h.Point))
	ctx.addMemParts(P)
	op.SetPartitions(P)

	parts := make([]*aggPart, P)
	partIns := make([]chan *scatter, P)
	for p := range parts {
		parts[p] = &aggPart{in: make(chan *scatter, ctx.pipeDepth()),
			aggCore: aggCore{accs: accAllocator{width: len(h.Aggs)}}}
		partIns[p] = parts[p].in
	}

	gcols := make([]int, len(h.GroupBy))
	for i := range gcols {
		gcols[i] = i
	}

	// Router: probe AIP filters, evaluate the group-by expressions
	// batch-at-a-time through the vectorized kernels, hash each surviving
	// tuple's group key once, and scatter. Stats are accumulated in locals
	// and flushed once per batch. routed records a complete, uncancelled
	// pass over the input; the finisher publishes the AIP state only then
	// (partial state must not be presented as a completed input's summary).
	routerDone := make(chan struct{})
	routed := false
	ctx.Spawn(func() {
		defer close(routerDone)
		var (
			keyHasher types.Hasher
			sc        ProbeScratch // batch AIP probing over the input columns
			pr        = newPartitionRouter(0, P, partIns)
			keep      []int32         // lanes surviving the AIP filters
			gcols2    [][]types.Value // per group-by expr: lane-indexed column
		)
		compiled := make([]*expr.Compiled, len(h.GroupBy))
		for i, g := range h.GroupBy {
			compiled[i] = expr.Compile(g)
		}
		gcols2 = make([][]types.Value, len(compiled))
		gvals := make(types.Tuple, len(h.GroupBy))
		for b := range in {
			sel := b.Live()
			nIn := int64(len(sel))
			var pruned int64
			keep = keep[:0]
			if h.Point != nil && h.Point.Bank.Len() > 0 {
				// The routing key is the evaluated group-by tuple, not input
				// columns, so the filters encode through the alt scratch
				// (keyCols = nil) and the group keys are hashed below.
				keep = h.Point.Bank.ProbeBatch(b.Tuples, nil, sel, keep, &sc)
				pruned = nIn - int64(len(keep))
			} else {
				keep = append(keep, sel...)
			}
			// One vectorized pass per group-by expression over the
			// survivors, then assemble the per-lane key from the columns.
			for i, c := range compiled {
				gcols2[i] = growVals(gcols2[i], len(b.Tuples))
				c.EvalBatch(b.Tuples, keep, gcols2[i])
			}
			for _, l := range keep {
				for i := range compiled {
					gvals[i] = gcols2[i][l]
				}
				kh, key := keyHasher.KeyCols(gvals, gcols)
				pr.route(b.Tuples[l], kh, key)
			}
			op.In.Add(nIn)
			op.Pruned.Add(pruned)
			if h.Point != nil {
				h.Point.received.Add(nIn)
			}
			PutBatch(b)
			if !pr.flush(ctx, nil, nil) {
				return
			}
		}
		// A closed input channel under cancellation means the stream was
		// truncated upstream, not that the input completed.
		select {
		case <-ctx.Cancelled():
		default:
			routed = true
		}
	})

	// Workers: fold scattered tuples into the owned partition state. The
	// aggregate arguments are evaluated batch-at-a-time into lane-indexed
	// columns (one vectorized pass per argument per scatter) before the
	// fold loop; each worker compiles its own kernels.
	var workerWg sync.WaitGroup
	workerWg.Add(P)
	for p := 0; p < P; p++ {
		pidx := p
		ctx.Spawn(func() {
			defer workerWg.Done()
			pt := parts[pidx]
			gvals := make(types.Tuple, len(h.GroupBy))
			argC := make([]*expr.Compiled, len(h.Aggs))
			for k := range h.Aggs {
				argC[k] = expr.Compile(h.Aggs[k].Arg) // nil Arg compiles to nil
			}
			argCols := make([][]types.Value, len(h.Aggs))
			var (
				ids   []int32 // batch kernel scratch: group ids per lane
				added []bool
			)
			for sb := range pt.in {
				var newGroups, newBytes int64
				preBytes := pt.memBytes()
				n := len(sb.tuples)
				ident := identSel(n)
				for k, c := range argC {
					if c == nil {
						continue
					}
					argCols[k] = growVals(argCols[k], n)
					c.EvalBatch(sb.tuples, ident, argCols[k])
				}
				ids = growI32(ids, n)
				if cap(added) < n {
					added = make([]bool, n)
				}
				pt.idx.InsertBatch(sb.hashes, sb.keys, sb.offs, ids, added[:n])
				for i, t := range sb.tuples {
					id := ids[i]
					if added[i] {
						// Re-evaluate the group key to store it: cheaper
						// than shipping evaluated keys through the scatter,
						// since it runs once per group, not once per tuple.
						for k, g := range h.GroupBy {
							gvals[k] = g.Eval(t)
						}
						pt.groups = append(pt.groups, groupState{groupVals: gvals.Clone(), accs: pt.accs.alloc()})
						newGroups++
						newBytes += int64(gvals.MemSize()) + int64(48*len(h.Aggs))
						if h.Point != nil && h.Point.OnStore != nil {
							h.Point.OnStore(pidx, pt.groups[id].groupVals)
						}
					}
					gs := &pt.groups[id]
					for k := range h.Aggs {
						var v types.Value
						if argC[k] != nil {
							v = argCols[k][i]
						}
						gs.accs[k].add(h.Aggs[k].Func, v)
					}
				}
				pt.groupBytes += newBytes
				// Budget accounting is delta-based over the full footprint
				// (key index + groups), so the StateBytes gauge moves by the
				// same delta instead of the payload estimate alone.
				if delta := pt.memBytes() - preBytes; delta != 0 {
					ctx.account(delta)
					op.StateBytes.Add(delta)
					pt.bytes += delta
				}
				op.StateRows.Add(newGroups)
				pp := op.Part(pidx)
				pp.Rows.Add(newGroups)
				pp.Bytes.Add(newBytes)
				if h.Point != nil {
					h.Point.stored.Add(newGroups)
				}
				if ctx.memPressure(pt.bytes, P) {
					if err := pt.evict(ctx, op, h.Point, h.Aggs); err != nil {
						ctx.CancelCause(err)
						return
					}
				}
				putScatter(sb)
			}
		})
	}

	// Finisher: close the partition channels once routing ends, wait for the
	// folds, publish the AIP state, and emit the result rows.
	ctx.Spawn(func() {
		defer close(out)
		<-routerDone
		for _, pt := range parts {
			close(pt.in)
		}
		workerWg.Wait()
		if !routed { // cancelled mid-routing: state is partial, don't publish
			return
		}

		total := 0
		anySpilled := false
		for _, pt := range parts {
			total += len(pt.groups)
			if pt.run != nil {
				anySpilled = true
			}
		}
		// SQL semantics: a global aggregate (no GROUP BY) over empty input
		// yields exactly one row (count 0, sum/min/max/avg NULL). Appended
		// before the state iterator is published: once the point is Done
		// the group state must be immutable. A spilled run means the input
		// was not empty — its groups live on disk, not in total.
		if total == 0 && len(h.GroupBy) == 0 && !anySpilled {
			parts[0].groups = append(parts[0].groups, groupState{accs: make([]aggAcc, len(h.Aggs))})
		}

		if h.Point != nil {
			h.Point.setStateIter(func(emit func(types.Tuple) bool) {
				for _, pt := range parts {
					for i := range pt.groups {
						if !emit(pt.groups[i].groupVals) {
							return
						}
					}
				}
			})
			h.Point.done.Store(true)
			ctx.pointDone(h.Point)
		}

		// Out is counted per flushed batch at the send site (mirroring the
		// scan fix), so cancelled queries report exactly what was delivered.
		var arena rowArena
		batch := GetBatch()
		flush := func() bool {
			if len(batch.Tuples) == 0 {
				PutBatch(batch)
				return true
			}
			n := int64(len(batch.Tuples))
			if !send(ctx, out, batch) {
				return false
			}
			op.Out.Add(n)
			return true
		}
		for _, pt := range parts {
			if pt.run != nil {
				// Spilled partitions emit through the merge below; their
				// in-memory remainder joins the run there.
				continue
			}
			for gi := range pt.groups {
				gs := &pt.groups[gi]
				row := arena.alloc(len(gs.groupVals) + len(h.Aggs))
				copy(row, gs.groupVals)
				for i := range h.Aggs {
					argKind := types.KindFloat
					if h.Aggs[i].Arg != nil {
						argKind = h.Aggs[i].Arg.Kind()
					}
					row[len(gs.groupVals)+i] = gs.accs[i].result(h.Aggs[i].Func, argKind)
				}
				batch.Tuples = append(batch.Tuples, row)
				if len(batch.Tuples) == BatchSize {
					if !flush() {
						return
					}
					batch = GetBatch()
				}
			}
		}
		if !flush() {
			return
		}
		// Merge phase: sequential, so at most one rebuilt sub-bucket table
		// occupies the merge share at a time.
		for _, pt := range parts {
			if pt.run == nil {
				continue
			}
			if !pt.mergeSpill(ctx, op, len(h.GroupBy), h.Aggs, func(b Batch) bool {
				n := int64(b.Len())
				if !send(ctx, out, b) {
					return false
				}
				op.Out.Add(n)
				return true
			}) {
				return
			}
		}
	})
	return out
}

// Distinct is the pipelined duplicate eliminator: the first occurrence of a
// tuple is forwarded immediately; its state (the set of tuples seen) is AIP
// state like any other (the paper's Example 3.1 builds a hash set "from the
// state in the distinct operator"). It shares the join's radix partitioner:
// equal tuples always route to the same partition, so per-partition seen
// sets eliminate duplicates globally while running in parallel.
type Distinct struct {
	Name  string
	Child Op
	Point *Point
}

// Schema returns the child schema.
func (d *Distinct) Schema() *types.Schema { return d.Child.Schema() }

// distinctPart is one partition of the seen-set, owned by its worker. The
// embedded distinctCore carries the seen-set and the bucket-discard spill
// state shared with the morsel engine.
type distinctPart struct {
	in chan *scatter
	distinctCore
}

// Start launches the router and the per-partition dedup workers.
func (d *Distinct) Start(ctx *Context) <-chan Batch {
	in := d.Child.Start(ctx)
	out := make(chan Batch, ctx.pipeDepth())
	op := ctx.Stats.NewOp("distinct:" + d.Name)
	if d.Point != nil {
		d.Point.Op = op
	}

	P := ctx.partitions()
	P = clampPartitions(P, pointEstRows(d.Point))
	ctx.addMemParts(P)
	op.SetPartitions(P)

	allCols := make([]int, d.Child.Schema().Len())
	for i := range allCols {
		allCols[i] = i
	}

	parts := make([]*distinctPart, P)
	partIns := make([]chan *scatter, P)
	for p := range parts {
		parts[p] = &distinctPart{in: make(chan *scatter, ctx.pipeDepth())}
		partIns[p] = parts[p].in
	}

	// routed mirrors HashAgg: set only after a complete, uncancelled pass
	// over the input, gating the AIP state publication.
	routerDone := make(chan struct{})
	routed := false
	ctx.Spawn(func() {
		defer close(routerDone)
		var (
			sc   ProbeScratch // batch key hashing + AIP probing, hash-once
			keep = getSel()   // surviving selection when filters are attached
			pr   = newPartitionRouter(0, P, partIns)
		)
		defer func() { putSel(keep) }()
		for b := range in {
			sel := b.Live()
			nIn := int64(len(sel))
			kept := sel
			if d.Point != nil && d.Point.Bank.Len() > 0 {
				kept = d.Point.Bank.ProbeBatch(b.Tuples, allCols, sel, keep[:0], &sc)
				keep = kept
			} else {
				sc.compute(b.Tuples, allCols, sel)
			}
			for _, l := range kept {
				pr.route(b.Tuples[l], sc.hashes[l], sc.key(l))
			}
			op.In.Add(nIn)
			op.Pruned.Add(nIn - int64(len(kept)))
			if d.Point != nil {
				d.Point.received.Add(nIn)
			}
			PutBatch(b)
			if !pr.flush(ctx, nil, nil) {
				return
			}
		}
		select {
		case <-ctx.Cancelled(): // truncated upstream, input not complete
		default:
			routed = true
		}
	})

	// failed is set when a worker could not deliver its output (cancel):
	// the seen-state is then incomplete and must not be published.
	var failed atomic.Bool
	var workerWg sync.WaitGroup
	workerWg.Add(P)
	for p := 0; p < P; p++ {
		pidx := p
		ctx.Spawn(func() {
			defer workerWg.Done()
			pt := parts[pidx]
			var (
				ids   []int32
				added []bool
			)
			for sb := range pt.in {
				var stored, storedBytes int64
				preBytes := pt.memBytes()
				n := len(sb.tuples)
				ids = growI32(ids, n)
				if cap(added) < n {
					added = make([]bool, n)
				}
				pt.idx.InsertBatch(sb.hashes, sb.keys, sb.offs, ids, added[:n])
				fresh := GetBatch()
				for i, t := range sb.tuples {
					if added[i] {
						// Clone the retained tuple: distinct keeps a sparse
						// subset of its input forever, and retaining
						// arena-backed rows directly would pin their blocks.
						pt.seen = append(pt.seen, t.Clone())
						stored++
						storedBytes += int64(t.MemSize())
						if d.Point != nil && d.Point.OnStore != nil {
							d.Point.OnStore(pidx, t)
						}
						// A spilled partition defers: this may duplicate an
						// evicted key, so the finalize replay decides.
						if !pt.deferred {
							fresh.Tuples = append(fresh.Tuples, t)
						}
					}
				}
				pt.tupBytes += storedBytes
				if delta := pt.memBytes() - preBytes; delta != 0 {
					ctx.account(delta)
					op.StateBytes.Add(delta)
					pt.bytes += delta
				}
				op.StateRows.Add(stored)
				pp := op.Part(pidx)
				pp.Rows.Add(stored)
				pp.Bytes.Add(storedBytes)
				if d.Point != nil {
					d.Point.stored.Add(stored)
				}
				// Out per flushed batch at the send site.
				if len(fresh.Tuples) == 0 {
					PutBatch(fresh)
				} else {
					n := int64(len(fresh.Tuples))
					if !send(ctx, out, fresh) {
						failed.Store(true)
						return
					}
					op.Out.Add(n)
				}
				if ctx.memPressure(pt.bytes, P) {
					if err := pt.evict(ctx, op, d.Point); err != nil {
						ctx.CancelCause(err)
						failed.Store(true)
						return
					}
				}
				putScatter(sb)
			}
		})
	}

	ctx.Spawn(func() {
		defer close(out)
		<-routerDone
		for _, pt := range parts {
			close(pt.in)
		}
		workerWg.Wait()
		if !routed || failed.Load() { // cancelled: seen-state is partial
			return
		}
		// Merge phase: spilled partitions replay their runs and emit the
		// deferred pending tuples whose keys were never claimed.
		for _, pt := range parts {
			if pt.run == nil {
				continue
			}
			if !pt.mergeSpill(ctx, op, func(b Batch) bool {
				n := int64(b.Len())
				if !send(ctx, out, b) {
					return false
				}
				op.Out.Add(n)
				return true
			}) {
				return
			}
		}
		if d.Point != nil {
			d.Point.setStateIter(func(emit func(types.Tuple) bool) {
				for _, pt := range parts {
					for _, t := range pt.seen {
						if !emit(t) {
							return
						}
					}
				}
			})
			d.Point.done.Store(true)
			ctx.pointDone(d.Point)
		}
	})
	return out
}

package exec

import (
	"sync"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/types"
)

// aggAcc accumulates one aggregate for one group.
type aggAcc struct {
	count int64
	sumF  float64
	sumI  int64
	isInt bool
	min   types.Value
	max   types.Value
	seen  bool
}

func (a *aggAcc) add(f plan.AggFunc, v types.Value) {
	if f == plan.AggCountStar {
		a.count++
		return
	}
	if v.IsNull() {
		return
	}
	a.count++
	switch f {
	case plan.AggSum, plan.AggAvg:
		if v.K == types.KindInt {
			a.sumI += v.I
		}
		fv, _ := v.AsFloat()
		a.sumF += fv
	case plan.AggMin:
		if !a.seen || types.Compare(v, a.min) < 0 {
			a.min = v
		}
	case plan.AggMax:
		if !a.seen || types.Compare(v, a.max) > 0 {
			a.max = v
		}
	}
	a.seen = true
}

func (a *aggAcc) result(f plan.AggFunc, argKind types.Kind) types.Value {
	switch f {
	case plan.AggCount, plan.AggCountStar:
		return types.Int(a.count)
	case plan.AggSum:
		if a.count == 0 {
			return types.Null()
		}
		if argKind == types.KindInt {
			return types.Int(a.sumI)
		}
		return types.Float(a.sumF)
	case plan.AggAvg:
		if a.count == 0 {
			return types.Null()
		}
		return types.Float(a.sumF / float64(a.count))
	case plan.AggMin:
		if !a.seen {
			return types.Null()
		}
		return a.min
	default:
		if !a.seen {
			return types.Null()
		}
		return a.max
	}
}

// groupState is the buffered state for one group.
type groupState struct {
	groupVals types.Tuple
	accs      []aggAcc
}

// HashAgg is the blocking hash-based aggregation operator. Its input is an
// AIP injection point: filters prune arriving tuples before they create or
// update groups, and once the input completes the set of group keys is
// available as AIP-set state (the paper's Example 3.2 builds a Bloom filter
// of PARTKEY "from the state in the aggregation operator").
type HashAgg struct {
	Name    string
	Child   Op
	GroupBy []expr.Expr
	Aggs    []plan.AggSpec
	Point   *Point

	sch *types.Schema
}

// NewHashAgg builds the operator; sch must be [group cols..., agg cols...].
func NewHashAgg(name string, child Op, groupBy []expr.Expr, aggs []plan.AggSpec, sch *types.Schema) *HashAgg {
	return &HashAgg{Name: name, Child: child, GroupBy: groupBy, Aggs: aggs, sch: sch}
}

// Schema returns the post-aggregation schema.
func (h *HashAgg) Schema() *types.Schema { return h.sch }

// Start launches the aggregation goroutine.
func (h *HashAgg) Start(ctx *Context) <-chan Batch {
	in := h.Child.Start(ctx)
	out := make(chan Batch, 4)
	op := ctx.Stats.NewOp("agg:" + h.Name)

	go func() {
		defer close(out)
		var mu sync.Mutex
		groups := make(map[string]*groupState)
		var scratch []byte

		for b := range in {
			for _, t := range b {
				op.In.Inc()
				if h.Point != nil {
					h.Point.received.Add(1)
					var keep bool
					keep, scratch = h.Point.Bank.Probe(t, scratch)
					if !keep {
						op.Pruned.Inc()
						continue
					}
				}
				gvals := make(types.Tuple, len(h.GroupBy))
				scratch = scratch[:0]
				for i, g := range h.GroupBy {
					gvals[i] = g.Eval(t)
					scratch = gvals[i].AppendKey(scratch)
				}
				key := string(scratch)

				mu.Lock()
				gs, ok := groups[key]
				if !ok {
					gs = &groupState{groupVals: gvals, accs: make([]aggAcc, len(h.Aggs))}
					groups[key] = gs
					op.StateRows.Inc()
					op.StateBytes.Add(int64(gvals.MemSize()) + int64(48*len(h.Aggs)))
					if h.Point != nil {
						h.Point.stored.Add(1)
						if h.Point.OnStore != nil {
							h.Point.OnStore(gvals)
						}
					}
				}
				for i := range h.Aggs {
					var v types.Value
					if h.Aggs[i].Arg != nil {
						v = h.Aggs[i].Arg.Eval(t)
					}
					gs.accs[i].add(h.Aggs[i].Func, v)
				}
				mu.Unlock()
			}
		}

		if h.Point != nil {
			h.Point.setStateIter(func(emit func(types.Tuple) bool) {
				mu.Lock()
				defer mu.Unlock()
				for _, gs := range groups {
					if !emit(gs.groupVals) {
						return
					}
				}
			})
			h.Point.done.Store(true)
			ctx.pointDone(h.Point)
		}

		// SQL semantics: a global aggregate (no GROUP BY) over empty input
		// yields exactly one row (count 0, sum/min/max/avg NULL).
		if len(groups) == 0 && len(h.GroupBy) == 0 {
			groups[""] = &groupState{accs: make([]aggAcc, len(h.Aggs))}
		}

		batch := make(Batch, 0, BatchSize)
		for _, gs := range groups {
			row := make(types.Tuple, 0, len(gs.groupVals)+len(h.Aggs))
			row = append(row, gs.groupVals...)
			for i := range h.Aggs {
				argKind := types.KindFloat
				if h.Aggs[i].Arg != nil {
					argKind = h.Aggs[i].Arg.Kind()
				}
				row = append(row, gs.accs[i].result(h.Aggs[i].Func, argKind))
			}
			op.Out.Inc()
			batch = append(batch, row)
			if len(batch) == BatchSize {
				if !send(ctx, out, batch) {
					return
				}
				batch = make(Batch, 0, BatchSize)
			}
		}
		send(ctx, out, batch)
	}()
	return out
}

// Distinct is the pipelined duplicate eliminator: the first occurrence of a
// tuple is forwarded immediately; its state (the set of tuples seen) is AIP
// state like any other (the paper's Example 3.1 builds a hash set "from the
// state in the distinct operator").
type Distinct struct {
	Name  string
	Child Op
	Point *Point
}

// Schema returns the child schema.
func (d *Distinct) Schema() *types.Schema { return d.Child.Schema() }

// Start launches the distinct goroutine.
func (d *Distinct) Start(ctx *Context) <-chan Batch {
	in := d.Child.Start(ctx)
	out := make(chan Batch, 4)
	op := ctx.Stats.NewOp("distinct:" + d.Name)
	allCols := make([]int, d.Child.Schema().Len())
	for i := range allCols {
		allCols[i] = i
	}

	go func() {
		defer close(out)
		var mu sync.Mutex
		seen := make(map[string]types.Tuple)
		var scratch []byte
		for b := range in {
			fresh := make(Batch, 0, len(b))
			for _, t := range b {
				op.In.Inc()
				if d.Point != nil {
					d.Point.received.Add(1)
					var keep bool
					keep, scratch = d.Point.Bank.Probe(t, scratch)
					if !keep {
						op.Pruned.Inc()
						continue
					}
				}
				scratch = scratch[:0]
				scratch = t.AppendKeyCols(scratch, allCols)
				key := string(scratch)
				mu.Lock()
				_, dup := seen[key]
				if !dup {
					seen[key] = t
					op.StateRows.Inc()
					op.StateBytes.Add(int64(t.MemSize()))
					if d.Point != nil {
						d.Point.stored.Add(1)
						if d.Point.OnStore != nil {
							d.Point.OnStore(t)
						}
					}
				}
				mu.Unlock()
				if !dup {
					op.Out.Inc()
					fresh = append(fresh, t)
				}
			}
			if !send(ctx, out, fresh) {
				return
			}
		}
		if d.Point != nil {
			d.Point.setStateIter(func(emit func(types.Tuple) bool) {
				mu.Lock()
				defer mu.Unlock()
				for _, t := range seen {
					if !emit(t) {
						return
					}
				}
			})
			d.Point.done.Store(true)
			ctx.pointDone(d.Point)
		}
	}()
	return out
}

package exec

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/types"
)

// runSched executes a plan under an explicit scheduler and fan-out.
func runSched(op Op, parallelism int, scheduler string) ([]types.Tuple, *stats.Registry, error) {
	reg := stats.NewRegistry()
	ctx := NewContext(reg, nil)
	ctx.Parallelism = parallelism
	ctx.Scheduler = scheduler
	rows, err := Run(ctx, op)
	return rows, reg, err
}

// TestMorselDifferentialJoin is the central acceptance property: the morsel
// scheduler must produce exactly the chan scheduler's result multiset, at
// every fan-out, on a join with duplicate keys (multi-match chains) and a
// residual predicate.
func TestMorselDifferentialJoin(t *testing.T) {
	const n = 6000
	lrows := make([]types.Tuple, n)
	rrows := make([]types.Tuple, n)
	for i := 0; i < n; i++ {
		lrows[i] = types.Tuple{types.Int(int64(i % 200)), types.Int(int64(i))}
		rrows[i] = types.Tuple{types.Int(int64((n - 1 - i) % 200)), types.Int(int64(i))}
	}
	residual := &expr.Binary{Op: expr.OpLt,
		L: &expr.ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}},
		R: &expr.ColRef{Idx: 3, Col: types.Column{Kind: types.KindInt}}}
	build := func() *HashJoin {
		j := buildJoin(lrows, rrows)
		j.Residual = residual
		return j
	}
	want, _, err := runSched(build(), 1, SchedulerChan)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("baseline produced no rows — test is vacuous")
	}
	wantS := rowStrings(want)
	for _, p := range []int{1, 2, 4, 8} {
		got, reg, err := runSched(build(), p, SchedulerMorsel)
		if err != nil {
			t.Fatalf("morsel P=%d: %v", p, err)
		}
		sameRows(t, fmt.Sprintf("morsel P=%d", p), wantS, rowStrings(got))
		if reg.SchedMorsels.Load() == 0 {
			t.Fatalf("morsel P=%d: no scheduler tasks recorded", p)
		}
		// Per-partition counters must fold to the side totals, as on chan.
		for _, op := range reg.Ops() {
			if op.Class != "join" {
				continue
			}
			var partRows int64
			for i := 0; i < op.Partitions(); i++ {
				partRows += op.Part(i).Rows.Load()
			}
			if partRows != op.StateRows.Load() {
				t.Fatalf("morsel P=%d: op %s partition rows %d != state rows %d",
					p, op.Name, partRows, op.StateRows.Load())
			}
		}
	}
}

// TestMorselDifferentialAgg: identical groups and integer aggregates across
// schedulers and fan-outs (integer accumulators are order-independent).
func TestMorselDifferentialAgg(t *testing.T) {
	const n = 8000
	rows := make([]types.Tuple, n)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i % 97)), types.Int(int64(i))}
	}
	build := func() *HashAgg {
		scan := &Scan{Name: "t", Rows: rows, Sch: intSchema("g", "v")}
		gb := []expr.Expr{&expr.ColRef{Idx: 0, Col: types.Column{Name: "g", Kind: types.KindInt}}}
		aggs := []plan.AggSpec{
			{Func: plan.AggSum, Arg: &expr.ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}}, Name: "s"},
			{Func: plan.AggCountStar, Name: "c"},
			{Func: plan.AggMin, Arg: &expr.ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}}, Name: "m"},
			{Func: plan.AggMax, Arg: &expr.ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}}, Name: "x"},
		}
		return NewHashAgg("agg", scan, gb, aggs, intSchema("g", "s", "c", "m", "x"))
	}
	want, _, err := runSched(build(), 1, SchedulerChan)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 97 {
		t.Fatalf("baseline groups = %d, want 97", len(want))
	}
	wantS := rowStrings(want)
	for _, p := range []int{1, 2, 4, 8} {
		got, _, err := runSched(build(), p, SchedulerMorsel)
		if err != nil {
			t.Fatalf("morsel P=%d: %v", p, err)
		}
		sameRows(t, fmt.Sprintf("morsel agg P=%d", p), wantS, rowStrings(got))
	}
}

// TestMorselDifferentialDistinct: global dedup identical across schedulers.
func TestMorselDifferentialDistinct(t *testing.T) {
	const n = 6000
	rows := make([]types.Tuple, n)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i % 173))}
	}
	build := func() *Distinct {
		scan := &Scan{Name: "t", Rows: rows, Sch: intSchema("a")}
		return &Distinct{Name: "d", Child: scan,
			Point: &Point{Name: "d", Bank: NewFilterBank(), Stateful: true, KeyCols: []int{0},
				EqIDs: []int{-1}, StateEqIDs: []int{-1}, DomainDistinct: []float64{0}}}
	}
	want, _, err := runSched(build(), 1, SchedulerChan)
	if err != nil {
		t.Fatal(err)
	}
	wantS := rowStrings(want)
	for _, p := range []int{1, 4} {
		d := build()
		got, _, err := runSched(d, p, SchedulerMorsel)
		if err != nil {
			t.Fatalf("morsel P=%d: %v", p, err)
		}
		sameRows(t, fmt.Sprintf("morsel distinct P=%d", p), wantS, rowStrings(got))
		if d.Point.StoredRows() != 173 {
			t.Fatalf("morsel distinct P=%d stored %d, want 173", p, d.Point.StoredRows())
		}
		var iterSeen int
		d.Point.IterState(func(types.Tuple) bool { iterSeen++; return true })
		if iterSeen != 173 {
			t.Fatalf("morsel distinct P=%d state iter saw %d, want 173", p, iterSeen)
		}
	}
}

// TestMorselDifferentialDeepPlan pushes a filter→join→project→agg pipeline
// through both schedulers: fused stateless stages, two scan inputs, a
// partitioned join feeding a partitioned aggregation.
func TestMorselDifferentialDeepPlan(t *testing.T) {
	const n = 5000
	lrows := make([]types.Tuple, n)
	rrows := make([]types.Tuple, n)
	for i := 0; i < n; i++ {
		lrows[i] = types.Tuple{types.Int(int64(i % 150)), types.Int(int64(i))}
		rrows[i] = types.Tuple{types.Int(int64(i % 150)), types.Int(int64(i % 13))}
	}
	build := func() Op {
		l := &Filter{Name: "f", Child: &Scan{Name: "l", Rows: lrows, Sch: intSchema("a", "x")},
			Pred: &expr.Binary{Op: expr.OpLt,
				L: &expr.ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}},
				R: &expr.Const{V: types.Int(4000)}}}
		r := &Scan{Name: "r", Rows: rrows, Sch: intSchema("a", "y")}
		j := NewHashJoin("j", l, r, []int{0}, []int{0}, nil)
		pr := &Project{Name: "p", Child: j, Sch: intSchema("a", "y2"),
			Exprs: []expr.Expr{
				&expr.ColRef{Idx: 0, Col: types.Column{Kind: types.KindInt}},
				&expr.Binary{Op: expr.OpMul,
					L: &expr.ColRef{Idx: 3, Col: types.Column{Kind: types.KindInt}},
					R: &expr.Const{V: types.Int(2)}},
			}}
		gb := []expr.Expr{&expr.ColRef{Idx: 0, Col: types.Column{Name: "a", Kind: types.KindInt}}}
		aggs := []plan.AggSpec{
			{Func: plan.AggSum, Arg: &expr.ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}}, Name: "s"},
			{Func: plan.AggCountStar, Name: "c"},
		}
		return NewHashAgg("agg", pr, gb, aggs, intSchema("a", "s", "c"))
	}
	want, _, err := runSched(build(), 2, SchedulerChan)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("baseline produced no rows — test is vacuous")
	}
	wantS := rowStrings(want)
	for _, p := range []int{1, 4} {
		got, _, err := runSched(build(), p, SchedulerMorsel)
		if err != nil {
			t.Fatalf("morsel P=%d: %v", p, err)
		}
		sameRows(t, fmt.Sprintf("morsel deep P=%d", p), wantS, rowStrings(got))
	}
}

// TestMorselRangeScanSplits pins the parallel-scan tentpole: a large table
// is range-split into morselScanRows chunks (visible as pool tasks), and a
// fused filter sees every row exactly once.
func TestMorselRangeScanSplits(t *testing.T) {
	const n = 50000
	rows := make([]types.Tuple, n)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i))}
	}
	f := &Filter{Name: "f", Child: &Scan{Name: "t", Rows: rows, Sch: intSchema("a")},
		Pred: &expr.Binary{Op: expr.OpLt,
			L: &expr.ColRef{Idx: 0, Col: types.Column{Kind: types.KindInt}},
			R: &expr.Const{V: types.Int(n / 2)}}}
	got, reg, err := runSched(f, 4, SchedulerMorsel)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n/2 {
		t.Fatalf("filter passed %d rows, want %d", len(got), n/2)
	}
	minChunks := int64(n / morselScanRows)
	if m := reg.SchedMorsels.Load(); m < minChunks {
		t.Fatalf("scheduler ran %d tasks; a range-split scan of %d rows must yield >= %d",
			m, n, minChunks)
	}
	for _, op := range reg.Ops() {
		if op.Class == "scan" && op.Out.Load() != n {
			t.Fatalf("scan Out = %d, want %d", op.Out.Load(), n)
		}
	}
}

// TestMorselStealingDeterminism re-runs a heavy multi-key join many times
// at a high fan-out: steal order varies between runs, the result must not.
// (The exactly-once count 100 keys × 40×40 pairs is itself the invariant.)
func TestMorselStealingDeterminism(t *testing.T) {
	const n = 4000
	lrows := make([]types.Tuple, n)
	rrows := make([]types.Tuple, n)
	for i := 0; i < n; i++ {
		lrows[i] = types.Tuple{types.Int(int64(i % 100)), types.Int(int64(i))}
		rrows[i] = types.Tuple{types.Int(int64(i % 100)), types.Int(int64(i))}
	}
	var want []string
	for trial := 0; trial < 6; trial++ {
		rows, _, err := runSched(buildJoin(lrows, rrows), 4, SchedulerMorsel)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(rows) != 100*40*40 {
			t.Fatalf("trial %d: join produced %d rows, want %d", trial, len(rows), 100*40*40)
		}
		got := rowStrings(rows)
		if trial == 0 {
			want = got
			continue
		}
		sameRows(t, fmt.Sprintf("trial %d", trial), want, got)
	}
}

// TestMorselShortCircuit verifies the §VI-A short-circuit on the morsel
// path: once the small side completes, partitions stop buffering the big
// (delayed) side and its state is marked incomplete.
func TestMorselShortCircuit(t *testing.T) {
	small := intRows([]int64{1, 0})
	big := make([]types.Tuple, 5000)
	for i := range big {
		big[i] = types.Tuple{types.Int(int64(i)), types.Int(0)}
	}
	l := &Scan{Name: "l", Rows: small, Sch: intSchema("a", "x")}
	// The delayed big side runs as a sequential source whose initial pause
	// dwarfs the 2-tuple small side's completion by orders of magnitude.
	r := &Scan{Name: "r", Rows: big, Sch: intSchema("a", "y"),
		Delay: &DelayConfig{Initial: 300 * time.Millisecond}}
	j := NewHashJoin("j", l, r, []int{0}, []int{0}, nil)
	j.LPoint = &Point{Name: "l", Bank: NewFilterBank(), Stateful: true, KeyCols: []int{0},
		EqIDs: []int{0, -1}, StateEqIDs: []int{0, -1}, DomainDistinct: []float64{0, 0}}
	j.RPoint = &Point{Name: "r", Bank: NewFilterBank(), Stateful: true, KeyCols: []int{0},
		EqIDs: []int{0, -1}, StateEqIDs: []int{0, -1}, DomainDistinct: []float64{0, 0}}
	rows, _, err := runSched(j, 4, SchedulerMorsel)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	if j.RPoint.StoredRows() != 0 {
		t.Fatalf("short-circuit failed: big side stored %d rows", j.RPoint.StoredRows())
	}
	if j.RPoint.StateComplete() {
		t.Fatal("short-circuited state must be marked incomplete")
	}
	if !j.LPoint.StateComplete() {
		t.Fatal("completed small side must have complete state")
	}
	var seen int
	j.LPoint.IterState(func(types.Tuple) bool { seen++; return true })
	if seen != 1 {
		t.Fatalf("state iter saw %d tuples, want 1", seen)
	}
}

// TestMorselCancellationNoLeakExactStats cancels a morsel-scheduled join
// mid-stream and asserts (a) every pool worker and supervisor goroutine
// exits, and (b) the Out counters equal exactly the delivered tuples.
func TestMorselCancellationNoLeakExactStats(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const n = 20000
	lrows := make([]types.Tuple, n)
	rrows := make([]types.Tuple, n)
	for i := 0; i < n; i++ {
		lrows[i] = types.Tuple{types.Int(int64(i % 50)), types.Int(int64(i))}
		rrows[i] = types.Tuple{types.Int(int64(i % 50)), types.Int(int64(i))}
	}
	j := buildJoin(lrows, rrows)
	reg := stats.NewRegistry()
	ctx := NewContext(reg, nil)
	ctx.Parallelism = 4
	ctx.Scheduler = SchedulerMorsel
	out := StartPlan(ctx, j)

	drained := int64(0)
	got := 0
	for b := range out {
		drained += int64(b.Len())
		got++
		if got == 3 {
			ctx.Cancel()
		}
		PutBatch(b)
	}
	waitGoroutines(t, baseline)

	var emitted int64
	for _, op := range reg.Ops() {
		if op.Class == "join" {
			emitted += op.Out.Load()
		}
	}
	if emitted != drained {
		t.Fatalf("join Out counters = %d, drained %d: counters must match delivered tuples exactly",
			emitted, drained)
	}
	if drained == 0 {
		t.Fatal("nothing drained — test is vacuous")
	}
}

// TestMorselCancelMidRoutingDoesNotPublishState: a cancelled morsel
// aggregation must never mark its AIP point Done (partial state published
// as complete would give filters false negatives).
func TestMorselCancelMidRoutingDoesNotPublishState(t *testing.T) {
	baseline := runtime.NumGoroutine()
	rows := make([]types.Tuple, 100000)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i)), types.Int(int64(i))}
	}
	scan := &Scan{Name: "t", Rows: rows, Sch: intSchema("g", "v"),
		Delay: &DelayConfig{EveryN: 256, Pause: time.Millisecond}}
	gb := []expr.Expr{&expr.ColRef{Idx: 0, Col: types.Column{Name: "g", Kind: types.KindInt}}}
	aggs := []plan.AggSpec{{Func: plan.AggCountStar, Name: "c"}}
	h := NewHashAgg("agg", scan, gb, aggs, intSchema("g", "c"))
	h.Point = &Point{Name: "agg", Bank: NewFilterBank(), Stateful: true, KeyCols: []int{0},
		EqIDs: []int{0, -1}, StateEqIDs: []int{0}, DomainDistinct: []float64{0}}

	ctx := NewContext(stats.NewRegistry(), nil)
	ctx.Parallelism = 4
	ctx.Scheduler = SchedulerMorsel
	out := StartPlan(ctx, h)
	time.Sleep(5 * time.Millisecond) // let some batches route
	ctx.Cancel()
	for b := range out {
		PutBatch(b)
	}
	waitGoroutines(t, baseline)
	if h.Point.Done() {
		t.Fatal("cancelled aggregation must not mark its point Done: state is partial")
	}
	if h.Point.Received() == 0 {
		t.Fatal("nothing routed before cancel — test is vacuous")
	}
}

// TestMorselDeadlineNoLeak binds a short std-context deadline to a paced
// morsel execution: the query must surface the deadline and reclaim every
// goroutine (pool workers, sequential source, supervisor, watcher).
func TestMorselDeadlineNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	rows := make([]types.Tuple, 200000)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i))}
	}
	scan := &Scan{Name: "t", Rows: rows, Sch: intSchema("a"),
		Delay: &DelayConfig{EveryN: 128, Pause: time.Millisecond}}
	reg := stats.NewRegistry()
	ctx := NewContext(reg, nil)
	ctx.Parallelism = 4
	ctx.Scheduler = SchedulerMorsel
	go func() {
		time.Sleep(10 * time.Millisecond)
		ctx.Cancel()
	}()
	_, err := Run(ctx, scan)
	if err == nil {
		t.Fatal("cancelled run must report its cause")
	}
	waitGoroutines(t, baseline)
}

// TestMorselFallback pins the transparent chan fallback: a plan containing
// an operator the morsel compiler does not know (the test-only gated op)
// still executes, on the chan engine, with identical results.
func TestMorselFallback(t *testing.T) {
	rows := intRows([]int64{1}, []int64{2}, []int64{3})
	g := &gated{child: &Scan{Name: "t", Rows: rows, Sch: intSchema("a")},
		cond: func() bool { return true }}
	got, reg, err := runSched(g, 2, SchedulerMorsel)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("fallback run produced %d rows, want 3", len(got))
	}
	if reg.SchedMorsels.Load() != 0 {
		t.Fatal("fallback run must not record morsel scheduler activity")
	}
}

// TestMorselSequentialSourceDifferential: a delayed (sequential-source)
// scan joined to a plain one produces the chan engine's exact rows.
func TestMorselSequentialSourceDifferential(t *testing.T) {
	const n = 3000
	lrows := make([]types.Tuple, n)
	rrows := make([]types.Tuple, n)
	for i := 0; i < n; i++ {
		lrows[i] = types.Tuple{types.Int(int64(i % 80)), types.Int(int64(i))}
		rrows[i] = types.Tuple{types.Int(int64(i % 80)), types.Int(int64(i))}
	}
	build := func() *HashJoin {
		j := buildJoin(lrows, rrows)
		j.Left.(*Scan).Delay = &DelayConfig{EveryN: 500, Pause: time.Millisecond}
		return j
	}
	want, _, err := runSched(build(), 2, SchedulerChan)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := runSched(build(), 2, SchedulerMorsel)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "delayed-source", rowStrings(want), rowStrings(got))
}

// TestMorselSchedStats: a morsel run records pool width, busy times, and
// task counts in the registry, and Report prints the sched line.
func TestMorselSchedStats(t *testing.T) {
	const n = 20000
	rows := make([]types.Tuple, n)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i % 97)), types.Int(int64(i))}
	}
	scan := &Scan{Name: "t", Rows: rows, Sch: intSchema("g", "v")}
	gb := []expr.Expr{&expr.ColRef{Idx: 0, Col: types.Column{Name: "g", Kind: types.KindInt}}}
	aggs := []plan.AggSpec{{Func: plan.AggCountStar, Name: "c"}}
	h := NewHashAgg("agg", scan, gb, aggs, intSchema("g", "c"))
	_, reg, err := runSched(h, 4, SchedulerMorsel)
	if err != nil {
		t.Fatal(err)
	}
	if reg.SchedMorsels.Load() == 0 {
		t.Fatal("no morsels recorded")
	}
	workers, busy := reg.SchedBusy()
	if workers < 1 || len(busy) != workers {
		t.Fatalf("sched busy shape: workers=%d len(busy)=%d", workers, len(busy))
	}
	var total time.Duration
	for _, d := range busy {
		total += d
	}
	if total <= 0 {
		t.Fatal("no busy time accounted")
	}
	rep := reg.Report()
	if !contains(rep, "sched: workers=") {
		t.Fatalf("Report missing sched line:\n%s", rep)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestMorselEmptyInputs: empty tables still complete every barrier — the
// empty-scan task, the router holds, the agg's empty-global row.
func TestMorselEmptyInputs(t *testing.T) {
	j := buildJoin(nil, nil)
	rows, _, err := runSched(j, 4, SchedulerMorsel)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("empty join produced %d rows", len(rows))
	}

	scan := &Scan{Name: "t", Rows: nil, Sch: intSchema("v")}
	aggs := []plan.AggSpec{{Func: plan.AggCountStar, Name: "c"}}
	res, _, err := runSched(NewHashAgg("agg", scan, nil, aggs, intSchema("c")), 4, SchedulerMorsel)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("global agg over empty input emitted %d rows, want 1", len(res))
	}
	if c, _ := res[0][0].AsInt(); c != 0 {
		t.Fatalf("count = %d, want 0", c)
	}
}

// TestMorselAdaptiveLoadDegradation: the pool width divides by the
// engine-reported load instead of oversubscribing.
func TestMorselAdaptiveLoadDegradation(t *testing.T) {
	const n = 30000
	rows := make([]types.Tuple, n)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i))}
	}
	scan := &Scan{Name: "t", Rows: rows, Sch: intSchema("a")}
	reg := stats.NewRegistry()
	ctx := NewContext(reg, nil)
	ctx.Parallelism = 8
	ctx.Scheduler = SchedulerMorsel
	ctx.Load = func() int { return 4 } // heavily loaded server
	if _, err := Run(ctx, scan); err != nil {
		t.Fatal(err)
	}
	workers, _ := reg.SchedBusy()
	if workers != 2 {
		t.Fatalf("pool width under load 4 with P=8: %d workers, want 2", workers)
	}
}

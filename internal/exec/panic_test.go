package exec

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/types"
)

// panicOp panics on a tracked operator goroutine after forwarding its
// child's first batch, modeling a bug deep inside a running pipeline.
type panicOp struct {
	child Op
}

func (p *panicOp) Schema() *types.Schema { return p.child.Schema() }

func (p *panicOp) Start(ctx *Context) <-chan Batch {
	in := p.child.Start(ctx)
	out := make(chan Batch, 1)
	ctx.Spawn(func() {
		defer close(out)
		for b := range in {
			select {
			case out <- b:
			case <-ctx.Cancelled():
				PutBatch(b)
				return
			}
			panic("operator bug")
		}
	})
	return out
}

// TestPanicContained: a panic inside an operator goroutine fails only that
// query, with a typed *PanicError carrying the value and stack; the plan's
// goroutines all drain (Wait returns) and the process keeps serving.
func TestPanicContained(t *testing.T) {
	for _, sched := range []string{SchedulerChan, SchedulerMorsel} {
		ctx := NewContext(stats.NewRegistry(), nil)
		ctx.Scheduler = sched
		rows := intRows([]int64{1}, []int64{2}, []int64{3})
		op := &panicOp{child: &Scan{Name: "t", Rows: rows, Sch: intSchema("a")}}
		_, err := Run(ctx, op)
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: err = %v, want *PanicError", sched, err)
		}
		if pe.Val != "operator bug" {
			t.Fatalf("%s: recovered value = %v", sched, pe.Val)
		}
		if len(pe.Stack) == 0 || !strings.Contains(err.Error(), "panic") {
			t.Fatalf("%s: PanicError carries no stack: %v", sched, err)
		}
		ctx.Wait() // quiescence: no goroutine outlives the failed query
		ctx.Cleanup()

		// The process (and a fresh query) keeps working after containment.
		got := runOp(t, &Scan{Name: "t", Rows: rows, Sch: intSchema("a")}, nil)
		if len(got) != 3 {
			t.Fatalf("%s: follow-up query returned %d rows", sched, len(got))
		}
	}
}

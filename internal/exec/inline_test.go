package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/expr"
	"repro/internal/stats"
	"repro/internal/types"
)

func intCol(idx int) expr.Expr {
	return &expr.ColRef{Idx: idx, Col: types.Column{Kind: types.KindInt}}
}

func rowKeys(rows []types.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%v", r)
	}
	sort.Strings(out)
	return out
}

// inlineJoinPlan is the full shape the inline fast path accepts: a Project
// over a Filter over a HashJoin with a residual, whose left input is a
// Filter over a Scan and whose right input is a bare Scan.
func inlineJoinPlan(rng *rand.Rand, n int) Op {
	lrows := make([]types.Tuple, n)
	rrows := make([]types.Tuple, n)
	for i := range lrows {
		lrows[i] = types.Tuple{types.Int(int64(rng.Intn(n / 2))), types.Int(int64(i))}
		rrows[i] = types.Tuple{types.Int(int64(rng.Intn(n / 2))), types.Int(int64(i * 2))}
	}
	l := &Scan{Name: "l", Rows: lrows, Sch: intSchema("a", "x")}
	r := &Scan{Name: "r", Rows: rrows, Sch: intSchema("a", "y")}
	lf := &Filter{Child: l, Name: "lf", Pred: &expr.Binary{
		Op: expr.OpGt, L: intCol(1), R: &expr.Const{V: types.Int(2)}}}
	j := NewHashJoin("j", lf, r, []int{0}, []int{0}, &expr.Binary{
		Op: expr.OpLt, L: intCol(1), R: intCol(3)})
	above := &Filter{Child: j, Name: "jf", Pred: &expr.Binary{
		Op: expr.OpGt, L: intCol(3), R: &expr.Const{V: types.Int(4)}}}
	return &Project{Child: above, Name: "p",
		Exprs: []expr.Expr{intCol(0), &expr.Binary{Op: expr.OpAdd, L: intCol(1), R: intCol(3)}},
		Sch:   intSchema("a", "s")}
}

// TestInlineJoinMatchesPipelined is the single-join fast-path differential:
// TryRunInline must accept the Project/Filter/HashJoin(Filter/Scan, Scan)
// shape and produce exactly the pipelined executor's result set.
func TestInlineJoinMatchesPipelined(t *testing.T) {
	for _, n := range []int{8, 64, 512} {
		plan := inlineJoinPlan(rand.New(rand.NewSource(int64(n))), n)
		ictx := NewContext(stats.NewRegistry(), nil)
		got, ok := TryRunInline(ictx, plan)
		if !ok {
			t.Fatalf("n=%d: inline path rejected an eligible single-join plan", n)
		}
		want, err := Run(NewContext(stats.NewRegistry(), nil), plan)
		if err != nil {
			t.Fatalf("n=%d: pipelined run: %v", n, err)
		}
		g, w := rowKeys(got), rowKeys(want)
		if len(g) != len(w) {
			t.Fatalf("n=%d: inline %d rows, pipelined %d", n, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("n=%d: row %d: inline %s, pipelined %s", n, i, g[i], w[i])
			}
		}
	}
}

// TestInlineJoinRejections pins the shapes the fast path must refuse, since
// a wrongly accepted plan silently skips AIP and pacing semantics.
func TestInlineJoinRejections(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mk := func() *HashJoin { return inlineJoinPlan(rng, 8).(*Project).Child.(*Filter).Child.(*HashJoin) }

	deep := mk()
	deep.Left = mk() // join under join
	deep.sch = deep.Left.Schema().Concat(deep.Right.Schema())
	if _, ok := TryRunInline(NewContext(stats.NewRegistry(), nil), deep); ok {
		t.Fatal("inline accepted a two-join tree")
	}

	paced := mk()
	paced.Right.(*Scan).BytesPerSec = 1 << 20
	if _, ok := TryRunInline(NewContext(stats.NewRegistry(), nil), paced); ok {
		t.Fatal("inline accepted a paced scan leaf")
	}

	big := mk()
	big.Right.(*Scan).Rows = make([]types.Tuple, InlineMaxRows+1)
	if _, ok := TryRunInline(NewContext(stats.NewRegistry(), nil), big); ok {
		t.Fatal("inline accepted an oversized scan leaf")
	}

	// Any AIP controller forces the pipelined lifecycle.
	underAIP := mk()
	if _, ok := TryRunInline(NewContext(stats.NewRegistry(), &controllerRecorder{}), underAIP); ok {
		t.Fatal("inline accepted a plan running under an AIP controller")
	}
}

package exec

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/types"
)

// spillJoin builds a join whose state is dominated by a wide string payload
// column, with duplicate keys (multi-match chains) and a residual predicate,
// so the spill path is exercised on the same shape the differential morsel
// tests use.
func spillJoin(n, pad int) *HashJoin {
	sch := types.NewSchema(
		types.Column{Table: "t", Name: "a", Kind: types.KindInt},
		types.Column{Table: "t", Name: "x", Kind: types.KindString},
		types.Column{Table: "t", Name: "p", Kind: types.KindInt},
	)
	filler := strings.Repeat("x", pad)
	lrows := make([]types.Tuple, n)
	rrows := make([]types.Tuple, n)
	for i := 0; i < n; i++ {
		lrows[i] = types.Tuple{types.Int(int64(i % 211)), types.Str(filler), types.Int(int64(i))}
		rrows[i] = types.Tuple{types.Int(int64((n - 1 - i) % 211)), types.Str(filler), types.Int(int64(i))}
	}
	l := &Scan{Name: "l", Rows: lrows, Sch: sch}
	r := &Scan{Name: "r", Rows: rrows, Sch: sch}
	res := &expr.Binary{Op: expr.OpLt,
		L: &expr.ColRef{Idx: 2, Col: types.Column{Kind: types.KindInt}},
		R: &expr.ColRef{Idx: 5, Col: types.Column{Kind: types.KindInt}},
	}
	return NewHashJoin("j", l, r, []int{0}, []int{0}, res)
}

// runSpill runs op under the given scheduler and memory budget, returning
// the rows and the Context so callers can read the accounting counters.
func runSpill(op Op, budget int64, parallelism int, scheduler string) ([]types.Tuple, *Context, error) {
	ctx := NewContext(stats.NewRegistry(), nil)
	ctx.Parallelism = parallelism
	ctx.Scheduler = scheduler
	ctx.MemBudget = budget
	rows, err := Run(ctx, op)
	ctx.Cleanup()
	return rows, ctx, err
}

// TestJoinSpillDifferential is the core out-of-core acceptance property:
// a budget-capped run must produce byte-identical results to the unbounded
// run, on both schedulers, while actually spilling, and with the tracked
// peak held near the budget.
func TestJoinSpillDifferential(t *testing.T) {
	const n = 4000
	want, base, err := runSpill(spillJoin(n, 64), 0, 4, SchedulerChan)
	if err != nil {
		t.Fatalf("unbounded run: %v", err)
	}
	if base.SpillEvents() != 0 {
		t.Fatalf("unbounded run spilled %d times", base.SpillEvents())
	}
	peak := base.PeakTrackedBytes()
	if peak == 0 {
		t.Fatal("unbounded run tracked no state bytes")
	}
	wantS := rowStrings(want)

	for _, sched := range []string{SchedulerChan, SchedulerMorsel} {
		for _, div := range []int64{4, 16} {
			budget := peak / div
			got, ctx, err := runSpill(spillJoin(n, 64), budget, 4, sched)
			if err != nil {
				t.Fatalf("%s budget=peak/%d: %v", sched, div, err)
			}
			sameRows(t, sched, wantS, rowStrings(got))
			if ctx.SpillEvents() == 0 {
				t.Fatalf("%s budget=peak/%d: no spill events at budget %d (peak %d)",
					sched, div, budget, peak)
			}
			if ctx.SpillBytes() == 0 {
				t.Fatalf("%s budget=peak/%d: spill events but no spill bytes", sched, div)
			}
			// The budget is honored up to one batch of transient growth per
			// partition (growth is checked after each scatter is absorbed).
			slack := budget/2 + 128<<10
			if p := ctx.PeakTrackedBytes(); p > budget+slack {
				t.Fatalf("%s budget=peak/%d: peak tracked %d exceeds budget %d + slack %d",
					sched, div, p, budget, slack)
			}
		}
	}
}

// spillAgg builds a grouped aggregation whose state is dominated by wide
// string group keys, with sum/count/min/max/avg accumulators.
func spillAgg(n, groups int) *HashAgg {
	sch := types.NewSchema(
		types.Column{Table: "t", Name: "g", Kind: types.KindInt},
		types.Column{Table: "t", Name: "s", Kind: types.KindString},
		types.Column{Table: "t", Name: "v", Kind: types.KindInt},
	)
	keys := make([]string, groups)
	for i := range keys {
		keys[i] = fmt.Sprintf("group-%04d-%s", i, strings.Repeat("k", 64))
	}
	rows := make([]types.Tuple, n)
	for i := 0; i < n; i++ {
		g := i % groups
		rows[i] = types.Tuple{types.Int(int64(g)), types.Str(keys[g]), types.Int(int64(i % 1000))}
	}
	scan := &Scan{Name: "t", Rows: rows, Sch: sch}
	gb := []expr.Expr{
		&expr.ColRef{Idx: 0, Col: types.Column{Name: "g", Kind: types.KindInt}},
		&expr.ColRef{Idx: 1, Col: types.Column{Name: "s", Kind: types.KindString}},
	}
	v := func() expr.Expr { return &expr.ColRef{Idx: 2, Col: types.Column{Kind: types.KindInt}} }
	aggs := []plan.AggSpec{
		{Func: plan.AggSum, Arg: v(), Name: "sum"},
		{Func: plan.AggCountStar, Name: "cnt"},
		{Func: plan.AggMin, Arg: v(), Name: "min"},
		{Func: plan.AggMax, Arg: v(), Name: "max"},
		{Func: plan.AggAvg, Arg: v(), Name: "avg"},
	}
	osch := types.NewSchema(
		types.Column{Name: "g", Kind: types.KindInt},
		types.Column{Name: "s", Kind: types.KindString},
		types.Column{Name: "sum", Kind: types.KindInt},
		types.Column{Name: "cnt", Kind: types.KindInt},
		types.Column{Name: "min", Kind: types.KindInt},
		types.Column{Name: "max", Kind: types.KindInt},
		types.Column{Name: "avg", Kind: types.KindFloat},
	)
	return NewHashAgg("a", scan, gb, aggs, osch)
}

// spillDistinct builds a dedup over wide two-column tuples with duplicates.
func spillDistinct(n, uniq int) *Distinct {
	sch := types.NewSchema(
		types.Column{Table: "t", Name: "a", Kind: types.KindInt},
		types.Column{Table: "t", Name: "s", Kind: types.KindString},
	)
	keys := make([]string, uniq)
	for i := range keys {
		keys[i] = fmt.Sprintf("val-%04d-%s", i, strings.Repeat("d", 64))
	}
	rows := make([]types.Tuple, n)
	for i := 0; i < n; i++ {
		u := i % uniq
		rows[i] = types.Tuple{types.Int(int64(u)), types.Str(keys[u])}
	}
	return &Distinct{Name: "d", Child: &Scan{Name: "t", Rows: rows, Sch: sch}}
}

// TestAggSpillDifferential: capped aggregation must merge spilled group
// snapshots back to exactly the unbounded result, on both schedulers.
func TestAggSpillDifferential(t *testing.T) {
	const n, groups = 24000, 1500
	want, base, err := runSpill(spillAgg(n, groups), 0, 4, SchedulerChan)
	if err != nil {
		t.Fatalf("unbounded run: %v", err)
	}
	if len(want) != groups {
		t.Fatalf("baseline groups = %d, want %d", len(want), groups)
	}
	peak := base.PeakTrackedBytes()
	if peak == 0 {
		t.Fatal("unbounded run tracked no state bytes")
	}
	wantS := rowStrings(want)
	for _, sched := range []string{SchedulerChan, SchedulerMorsel} {
		for _, div := range []int64{4, 16} {
			budget := peak / div
			got, ctx, err := runSpill(spillAgg(n, groups), budget, 4, sched)
			if err != nil {
				t.Fatalf("%s budget=peak/%d: %v", sched, div, err)
			}
			sameRows(t, sched, wantS, rowStrings(got))
			if ctx.SpillEvents() == 0 {
				t.Fatalf("%s budget=peak/%d: no spill events at budget %d (peak %d)",
					sched, div, budget, peak)
			}
			slack := budget/2 + 128<<10
			if p := ctx.PeakTrackedBytes(); p > budget+slack {
				t.Fatalf("%s budget=peak/%d: peak tracked %d exceeds budget %d + slack %d",
					sched, div, p, budget, slack)
			}
		}
	}
}

// TestDistinctSpillDifferential: capped dedup must emit each distinct tuple
// exactly once — pipelined before the first eviction, replayed from the run
// after — on both schedulers.
func TestDistinctSpillDifferential(t *testing.T) {
	const n, uniq = 20000, 2500
	want, base, err := runSpill(spillDistinct(n, uniq), 0, 4, SchedulerChan)
	if err != nil {
		t.Fatalf("unbounded run: %v", err)
	}
	if len(want) != uniq {
		t.Fatalf("baseline distinct = %d, want %d", len(want), uniq)
	}
	peak := base.PeakTrackedBytes()
	wantS := rowStrings(want)
	for _, sched := range []string{SchedulerChan, SchedulerMorsel} {
		for _, div := range []int64{4, 16} {
			budget := peak / div
			got, ctx, err := runSpill(spillDistinct(n, uniq), budget, 4, sched)
			if err != nil {
				t.Fatalf("%s budget=peak/%d: %v", sched, div, err)
			}
			sameRows(t, sched, wantS, rowStrings(got))
			if ctx.SpillEvents() == 0 {
				t.Fatalf("%s budget=peak/%d: no spill events at budget %d (peak %d)",
					sched, div, budget, peak)
			}
			slack := budget/2 + 128<<10
			if p := ctx.PeakTrackedBytes(); p > budget+slack {
				t.Fatalf("%s budget=peak/%d: peak tracked %d exceeds budget %d + slack %d",
					sched, div, p, budget, slack)
			}
		}
	}
}

// TestAggSpillTinyBudget: grouped aggregation under an unworkable budget
// fails with the typed error on both schedulers.
func TestAggSpillTinyBudget(t *testing.T) {
	for _, sched := range []string{SchedulerChan, SchedulerMorsel} {
		_, _, err := runSpill(spillAgg(24000, 1500), 2<<10, 4, sched)
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("%s: err = %v, want *BudgetError", sched, err)
		}
	}
}

// TestDistinctSpillTinyBudget: dedup under an unworkable budget fails with
// the typed error on both schedulers.
func TestDistinctSpillTinyBudget(t *testing.T) {
	for _, sched := range []string{SchedulerChan, SchedulerMorsel} {
		_, _, err := runSpill(spillDistinct(20000, 2500), 1<<10, 4, sched)
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("%s: err = %v, want *BudgetError", sched, err)
		}
	}
}

// TestJoinSpillTinyBudget: a budget too small for even the maximum merge
// fan-out must fail promptly with a typed *BudgetError, not thrash.
func TestJoinSpillTinyBudget(t *testing.T) {
	for _, sched := range []string{SchedulerChan, SchedulerMorsel} {
		rows, ctx, err := runSpill(spillJoin(3000, 128), 4<<10, 4, sched)
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("%s: err = %v, want *BudgetError (rows=%d spills=%d spillBytes=%d peak=%d)",
				sched, err, len(rows), ctx.SpillEvents(), ctx.SpillBytes(), ctx.PeakTrackedBytes())
		}
		if be.Need <= 4<<10 {
			t.Fatalf("%s: BudgetError.Need = %d, not above the budget", sched, be.Need)
		}
	}
}

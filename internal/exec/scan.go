package exec

import (
	"time"

	"repro/internal/expr"
	"repro/internal/stats"
	"repro/internal/types"
)

// DelayConfig reproduces the paper's §VI-B source-delay model: an initial
// delay before the first tuple, then a fixed pause every N tuples ("delayed
// by 100msec and rate-limited by injecting a 5msec delay every 1000
// tuples").
type DelayConfig struct {
	Initial time.Duration
	EveryN  int
	Pause   time.Duration
}

// Scan streams a base table.
type Scan struct {
	Name  string
	Rows  []types.Tuple
	Sch   *types.Schema
	Delay *DelayConfig

	// BytesPerSec paces the scan like a disk or source stream (the paper's
	// non-delayed experiments "streamed data directly from disk"): large
	// relations finish proportionally later than small ones, which is what
	// staggers subexpression completion times. Zero means unpaced.
	BytesPerSec int64

	op *stats.OpStats
}

// Schema returns the scan's output schema.
func (s *Scan) Schema() *types.Schema { return s.Sch }

// Start launches the scan goroutine.
func (s *Scan) Start(ctx *Context) <-chan Batch {
	out := make(chan Batch, 4)
	s.op = ctx.Stats.NewOp("scan:" + s.Name)
	go func() {
		defer close(out)
		if s.Delay != nil && s.Delay.Initial > 0 {
			select {
			case <-time.After(s.Delay.Initial):
			case <-ctx.Cancelled():
				return
			}
		}
		batch := GetBatch()
		count := 0
		var cumBytes int64
		start := time.Now()
		// flush sends the current batch (counting output per flushed batch,
		// so cancelled or short-circuited scans still report what they
		// emitted) and pays any accumulated pacing debt. The final flush
		// passes last=true to recycle instead of refilling the batch.
		flush := func(last bool) bool {
			if len(batch) == 0 {
				// Pacing debt was settled by the preceding non-empty flush
				// (cumBytes is unchanged since), so just recycle.
				if last {
					PutBatch(batch)
				}
				return true
			}
			n := int64(len(batch))
			if !send(ctx, out, batch) {
				return false
			}
			s.op.Out.Add(n)
			if s.BytesPerSec > 0 {
				// Pace against a cumulative deadline; sleeping only when
				// the debt exceeds a couple of milliseconds keeps the rate
				// accurate despite coarse timer granularity.
				target := time.Duration(float64(cumBytes) / float64(s.BytesPerSec) * float64(time.Second))
				if debt := target - time.Since(start); debt > 2*time.Millisecond {
					select {
					case <-time.After(debt):
					case <-ctx.Cancelled():
						return false
					}
				}
			}
			if last {
				batch = nil
			} else {
				batch = GetBatch()
			}
			return true
		}
		for _, t := range s.Rows {
			batch = append(batch, t)
			count++
			if s.BytesPerSec > 0 {
				cumBytes += int64(t.MemSize())
			}
			if s.Delay != nil && s.Delay.EveryN > 0 && count%s.Delay.EveryN == 0 {
				if !flush(false) {
					return
				}
				select {
				case <-time.After(s.Delay.Pause):
				case <-ctx.Cancelled():
					return
				}
				continue
			}
			if len(batch) == BatchSize {
				if !flush(false) {
					return
				}
			}
		}
		flush(true)
	}()
	return out
}

// Filter applies a predicate. Stats are flushed once per batch.
type Filter struct {
	Child Op
	Pred  expr.Expr
	Name  string
}

// Schema returns the child schema.
func (f *Filter) Schema() *types.Schema { return f.Child.Schema() }

// Start launches the filter goroutine.
func (f *Filter) Start(ctx *Context) <-chan Batch {
	in := f.Child.Start(ctx)
	out := make(chan Batch, 4)
	op := ctx.Stats.NewOp("filter:" + f.Name)
	go func() {
		defer close(out)
		for b := range in {
			kept := GetBatch()
			for _, t := range b {
				if f.Pred.Eval(t).Truth() {
					kept = append(kept, t)
				}
			}
			op.In.Add(int64(len(b)))
			if len(kept) == 0 {
				PutBatch(kept)
			} else {
				n := int64(len(kept))
				if !send(ctx, out, kept) {
					return
				}
				op.Out.Add(n)
			}
			PutBatch(b)
		}
	}()
	return out
}

// Project computes output expressions. Output rows are carved from a
// batch-sized arena: one allocation per batch rather than one per row.
type Project struct {
	Child Op
	Exprs []expr.Expr
	Sch   *types.Schema
	Name  string
}

// Schema returns the projection schema.
func (p *Project) Schema() *types.Schema { return p.Sch }

// Start launches the projection goroutine.
func (p *Project) Start(ctx *Context) <-chan Batch {
	in := p.Child.Start(ctx)
	out := make(chan Batch, 4)
	op := ctx.Stats.NewOp("project:" + p.Name)
	go func() {
		defer close(out)
		var arena rowArena
		for b := range in {
			res := GetBatch()
			for _, t := range b {
				row := arena.alloc(len(p.Exprs))
				for j, e := range p.Exprs {
					row[j] = e.Eval(t)
				}
				res = append(res, row)
			}
			op.In.Add(int64(len(b)))
			if len(res) == 0 {
				PutBatch(res)
			} else {
				n := int64(len(res))
				if !send(ctx, out, res) {
					return
				}
				op.Out.Add(n)
			}
			PutBatch(b)
		}
	}()
	return out
}

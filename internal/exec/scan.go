package exec

import (
	"errors"
	"time"

	"repro/internal/expr"
	"repro/internal/network"
	"repro/internal/types"
)

// DelayConfig reproduces the paper's §VI-B source-delay model: an initial
// delay before the first tuple, then a fixed pause every N tuples ("delayed
// by 100msec and rate-limited by injecting a 5msec delay every 1000
// tuples"). The Burst and Fault fields extend the model to flaky sources:
// bursty silence and injected failures the recovery policy must outlast.
type DelayConfig struct {
	Initial time.Duration
	EveryN  int
	Pause   time.Duration

	// BurstEveryN / BurstPause model a bursty source: after every
	// BurstEveryN tuples the stream goes quiet for BurstPause — coarse
	// stop-and-go on top of EveryN's fine-grained rate limit.
	BurstEveryN int
	BurstPause  time.Duration

	// Fault, when active, injects per-batch source failures (transient
	// errors, stalls) drawn deterministically from the profile's seed. The
	// Context's Recovery policy drives retries; an exhausted source fails
	// the query or degrades it to a partial result per the FailureMode.
	Fault *network.FaultProfile
}

// Scan streams a base table.
type Scan struct {
	Name  string
	Rows  []types.Tuple
	Sch   *types.Schema
	Delay *DelayConfig

	// Table is the base table this scan streams; it names the source in
	// SourceError and ties the scan to the abandoned-source set under
	// PartialOnSourceError. Empty for synthetic scans.
	Table string
	// Site is the executing node, keying the per-site circuit breaker.
	Site int

	// BytesPerSec paces the scan like a disk or source stream (the paper's
	// non-delayed experiments "streamed data directly from disk"): large
	// relations finish proportionally later than small ones, which is what
	// staggers subexpression completion times. Zero means unpaced.
	BytesPerSec int64
}

// Schema returns the scan's output schema.
func (s *Scan) Schema() *types.Schema { return s.Sch }

// Start launches the scan goroutine. All per-run state (the stats handle
// included) lives in the goroutine, so one Scan value can back many
// concurrent executions of a prepared plan.
func (s *Scan) Start(ctx *Context) <-chan Batch {
	out := make(chan Batch, ctx.pipeDepth())
	op := ctx.Stats.NewOp("scan:" + s.Name)
	// Fault plumbing: one deterministic injector and one retry driver per
	// run, both derived from the scan's name so (plan, seed) reproduces the
	// same failure sequence.
	var inj *network.FaultInjector
	var ret *retrier
	if s.Delay != nil && s.Delay.Fault.Active() {
		inj = s.Delay.Fault.Injector("scan:" + s.Name)
		ret = newRetrier(ctx, op, s.Site, "scan:"+s.Name)
	}
	partialMode := ctx.Recovery.Mode == PartialOnSourceError && s.Table != ""
	ctx.Spawn(func() {
		defer close(out)
		if s.Delay != nil && s.Delay.Initial > 0 {
			select {
			case <-time.After(s.Delay.Initial):
			case <-ctx.Cancelled():
				return
			}
		}
		batch := GetBatch()
		count := 0
		var cumBytes int64
		start := time.Now()
		// readAttempt models one read from the flaky source: it draws the
		// injected fault decision for this attempt. A stalled read blocks on
		// the retrier's stop channel (per-attempt timeout or cancellation).
		readAttempt := func(stop <-chan struct{}) error {
			switch k := inj.Next(); k {
			case network.FaultNone:
				return nil
			case network.FaultStall:
				<-stop
				return network.ErrCancelled // timeout converts this to ErrAttemptTimeout
			default:
				return &network.FaultError{Kind: k}
			}
		}
		// flush sends the current batch (counting output per flushed batch,
		// so cancelled or short-circuited scans still report what they
		// emitted) and pays any accumulated pacing debt. The final flush
		// passes last=true to recycle instead of refilling the batch.
		flush := func(last bool) bool {
			if len(batch.Tuples) == 0 {
				// Pacing debt was settled by the preceding non-empty flush
				// (cumBytes is unchanged since), so just recycle.
				if last {
					PutBatch(batch)
				}
				return true
			}
			// A sibling stream of the same table may have been abandoned;
			// stop producing rather than feed a query that gave up on us.
			if partialMode && ctx.SourceAbandoned(s.Table) {
				PutBatch(batch)
				batch = Batch{}
				return false
			}
			if ret != nil {
				if err := ret.do(readAttempt); err != nil {
					PutBatch(batch)
					batch = Batch{}
					if !errors.Is(err, network.ErrCancelled) {
						ctx.FailSource(&SourceError{
							Table: s.Table, Site: s.Site,
							Attempts: ret.attempts, Cause: err,
						})
					}
					return false
				}
			}
			n := int64(len(batch.Tuples))
			if !send(ctx, out, batch) {
				return false
			}
			op.Out.Add(n)
			if s.BytesPerSec > 0 {
				// Pace against a cumulative deadline; sleeping only when
				// the debt exceeds a couple of milliseconds keeps the rate
				// accurate despite coarse timer granularity.
				target := time.Duration(float64(cumBytes) / float64(s.BytesPerSec) * float64(time.Second))
				if debt := target - time.Since(start); debt > 2*time.Millisecond {
					select {
					case <-time.After(debt):
					case <-ctx.Cancelled():
						return false
					}
				}
			}
			if last {
				batch = Batch{}
			} else {
				batch = GetBatch()
			}
			return true
		}
		for _, t := range s.Rows {
			batch.Tuples = append(batch.Tuples, t)
			count++
			if s.BytesPerSec > 0 {
				cumBytes += int64(t.MemSize())
			}
			if s.Delay != nil && s.Delay.EveryN > 0 && count%s.Delay.EveryN == 0 {
				if !flush(false) {
					return
				}
				select {
				case <-time.After(s.Delay.Pause):
				case <-ctx.Cancelled():
					return
				}
				continue
			}
			if s.Delay != nil && s.Delay.BurstEveryN > 0 && count%s.Delay.BurstEveryN == 0 {
				if !flush(false) {
					return
				}
				select {
				case <-time.After(s.Delay.BurstPause):
				case <-ctx.Cancelled():
					return
				}
				continue
			}
			if len(batch.Tuples) == BatchSize {
				if !flush(false) {
					return
				}
			}
		}
		flush(true)
	})
	return out
}

// Filter applies a predicate by narrowing each batch's selection vector:
// survivors are marked, not copied, so the tuple slice flows through
// untouched and the steady-state filter path performs zero allocations per
// batch. The predicate runs through the vectorized EvalBool kernels; stats
// are flushed once per batch.
type Filter struct {
	Child Op
	Pred  expr.Expr
	Name  string
}

// Schema returns the child schema.
func (f *Filter) Schema() *types.Schema { return f.Child.Schema() }

// Start launches the filter goroutine.
func (f *Filter) Start(ctx *Context) <-chan Batch {
	in := f.Child.Start(ctx)
	out := make(chan Batch, ctx.pipeDepth())
	op := ctx.Stats.NewOp("filter:" + f.Name)
	pred := expr.Compile(f.Pred)
	ctx.Spawn(func() {
		defer close(out)
		for b := range in {
			op.In.Add(int64(b.Len()))
			var sel []int32
			if b.Sel != nil {
				// Narrow the incoming selection in place: EvalBool only
				// appends lanes it has already read, so the output may share
				// the input's backing array.
				sel = pred.EvalBool(b.Tuples, b.Sel, b.Sel)
			} else {
				sel = pred.EvalBool(b.Tuples, identSel(len(b.Tuples)), getSel())
			}
			b.Sel = sel
			if len(sel) == 0 {
				PutBatch(b)
				continue
			}
			n := int64(len(sel))
			if !send(ctx, out, b) {
				return
			}
			op.Out.Add(n)
		}
	})
	return out
}

// Project computes output expressions one expression at a time over the
// whole batch (vectorized EvalBatch into a lane-indexed column scratch),
// then scatters the column into arena-backed output rows: one backing
// allocation per ~BatchSize rows rather than one per row, and no per-tuple
// expression-tree walks.
type Project struct {
	Child Op
	Exprs []expr.Expr
	Sch   *types.Schema
	Name  string
}

// Schema returns the projection schema.
func (p *Project) Schema() *types.Schema { return p.Sch }

// Start launches the projection goroutine.
func (p *Project) Start(ctx *Context) <-chan Batch {
	in := p.Child.Start(ctx)
	out := make(chan Batch, ctx.pipeDepth())
	op := ctx.Stats.NewOp("project:" + p.Name)
	compiled := make([]*expr.Compiled, len(p.Exprs))
	for i, e := range p.Exprs {
		compiled[i] = expr.Compile(e)
	}
	ctx.Spawn(func() {
		defer close(out)
		var (
			arena rowArena
			col   []types.Value // lane-indexed column scratch
			rows  []types.Tuple // per-batch output row scratch
		)
		width := len(compiled)
		for b := range in {
			sel := b.Live()
			n := len(sel)
			op.In.Add(int64(n))
			if n == 0 {
				PutBatch(b)
				continue
			}
			rows = rows[:0]
			for k := 0; k < n; k++ {
				rows = append(rows, arena.alloc(width))
			}
			col = growVals(col, len(b.Tuples))
			for j, c := range compiled {
				c.EvalBatch(b.Tuples, sel, col)
				for k, lane := range sel {
					rows[k][j] = col[lane]
				}
			}
			res := GetBatch()
			res.Tuples = append(res.Tuples, rows...)
			PutBatch(b)
			if !send(ctx, out, res) {
				return
			}
			op.Out.Add(int64(n))
		}
	})
	return out
}

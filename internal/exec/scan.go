package exec

import (
	"time"

	"repro/internal/expr"
	"repro/internal/types"
)

// DelayConfig reproduces the paper's §VI-B source-delay model: an initial
// delay before the first tuple, then a fixed pause every N tuples ("delayed
// by 100msec and rate-limited by injecting a 5msec delay every 1000
// tuples").
type DelayConfig struct {
	Initial time.Duration
	EveryN  int
	Pause   time.Duration
}

// Scan streams a base table.
type Scan struct {
	Name  string
	Rows  []types.Tuple
	Sch   *types.Schema
	Delay *DelayConfig

	// BytesPerSec paces the scan like a disk or source stream (the paper's
	// non-delayed experiments "streamed data directly from disk"): large
	// relations finish proportionally later than small ones, which is what
	// staggers subexpression completion times. Zero means unpaced.
	BytesPerSec int64
}

// Schema returns the scan's output schema.
func (s *Scan) Schema() *types.Schema { return s.Sch }

// Start launches the scan goroutine. All per-run state (the stats handle
// included) lives in the goroutine, so one Scan value can back many
// concurrent executions of a prepared plan.
func (s *Scan) Start(ctx *Context) <-chan Batch {
	out := make(chan Batch, ctx.pipeDepth())
	op := ctx.Stats.NewOp("scan:" + s.Name)
	go func() {
		defer close(out)
		if s.Delay != nil && s.Delay.Initial > 0 {
			select {
			case <-time.After(s.Delay.Initial):
			case <-ctx.Cancelled():
				return
			}
		}
		batch := GetBatch()
		count := 0
		var cumBytes int64
		start := time.Now()
		// flush sends the current batch (counting output per flushed batch,
		// so cancelled or short-circuited scans still report what they
		// emitted) and pays any accumulated pacing debt. The final flush
		// passes last=true to recycle instead of refilling the batch.
		flush := func(last bool) bool {
			if len(batch.Tuples) == 0 {
				// Pacing debt was settled by the preceding non-empty flush
				// (cumBytes is unchanged since), so just recycle.
				if last {
					PutBatch(batch)
				}
				return true
			}
			n := int64(len(batch.Tuples))
			if !send(ctx, out, batch) {
				return false
			}
			op.Out.Add(n)
			if s.BytesPerSec > 0 {
				// Pace against a cumulative deadline; sleeping only when
				// the debt exceeds a couple of milliseconds keeps the rate
				// accurate despite coarse timer granularity.
				target := time.Duration(float64(cumBytes) / float64(s.BytesPerSec) * float64(time.Second))
				if debt := target - time.Since(start); debt > 2*time.Millisecond {
					select {
					case <-time.After(debt):
					case <-ctx.Cancelled():
						return false
					}
				}
			}
			if last {
				batch = Batch{}
			} else {
				batch = GetBatch()
			}
			return true
		}
		for _, t := range s.Rows {
			batch.Tuples = append(batch.Tuples, t)
			count++
			if s.BytesPerSec > 0 {
				cumBytes += int64(t.MemSize())
			}
			if s.Delay != nil && s.Delay.EveryN > 0 && count%s.Delay.EveryN == 0 {
				if !flush(false) {
					return
				}
				select {
				case <-time.After(s.Delay.Pause):
				case <-ctx.Cancelled():
					return
				}
				continue
			}
			if len(batch.Tuples) == BatchSize {
				if !flush(false) {
					return
				}
			}
		}
		flush(true)
	}()
	return out
}

// Filter applies a predicate by narrowing each batch's selection vector:
// survivors are marked, not copied, so the tuple slice flows through
// untouched and the steady-state filter path performs zero allocations per
// batch. The predicate runs through the vectorized EvalBool kernels; stats
// are flushed once per batch.
type Filter struct {
	Child Op
	Pred  expr.Expr
	Name  string
}

// Schema returns the child schema.
func (f *Filter) Schema() *types.Schema { return f.Child.Schema() }

// Start launches the filter goroutine.
func (f *Filter) Start(ctx *Context) <-chan Batch {
	in := f.Child.Start(ctx)
	out := make(chan Batch, ctx.pipeDepth())
	op := ctx.Stats.NewOp("filter:" + f.Name)
	pred := expr.Compile(f.Pred)
	go func() {
		defer close(out)
		for b := range in {
			op.In.Add(int64(b.Len()))
			var sel []int32
			if b.Sel != nil {
				// Narrow the incoming selection in place: EvalBool only
				// appends lanes it has already read, so the output may share
				// the input's backing array.
				sel = pred.EvalBool(b.Tuples, b.Sel, b.Sel)
			} else {
				sel = pred.EvalBool(b.Tuples, identSel(len(b.Tuples)), getSel())
			}
			b.Sel = sel
			if len(sel) == 0 {
				PutBatch(b)
				continue
			}
			n := int64(len(sel))
			if !send(ctx, out, b) {
				return
			}
			op.Out.Add(n)
		}
	}()
	return out
}

// Project computes output expressions one expression at a time over the
// whole batch (vectorized EvalBatch into a lane-indexed column scratch),
// then scatters the column into arena-backed output rows: one backing
// allocation per ~BatchSize rows rather than one per row, and no per-tuple
// expression-tree walks.
type Project struct {
	Child Op
	Exprs []expr.Expr
	Sch   *types.Schema
	Name  string
}

// Schema returns the projection schema.
func (p *Project) Schema() *types.Schema { return p.Sch }

// Start launches the projection goroutine.
func (p *Project) Start(ctx *Context) <-chan Batch {
	in := p.Child.Start(ctx)
	out := make(chan Batch, ctx.pipeDepth())
	op := ctx.Stats.NewOp("project:" + p.Name)
	compiled := make([]*expr.Compiled, len(p.Exprs))
	for i, e := range p.Exprs {
		compiled[i] = expr.Compile(e)
	}
	go func() {
		defer close(out)
		var (
			arena rowArena
			col   []types.Value // lane-indexed column scratch
			rows  []types.Tuple // per-batch output row scratch
		)
		width := len(compiled)
		for b := range in {
			sel := b.Live()
			n := len(sel)
			op.In.Add(int64(n))
			if n == 0 {
				PutBatch(b)
				continue
			}
			rows = rows[:0]
			for k := 0; k < n; k++ {
				rows = append(rows, arena.alloc(width))
			}
			col = growVals(col, len(b.Tuples))
			for j, c := range compiled {
				c.EvalBatch(b.Tuples, sel, col)
				for k, lane := range sel {
					rows[k][j] = col[lane]
				}
			}
			res := GetBatch()
			res.Tuples = append(res.Tuples, rows...)
			PutBatch(b)
			if !send(ctx, out, res) {
				return
			}
			op.Out.Add(int64(n))
		}
	}()
	return out
}

package exec

import (
	"repro/internal/plan"
	"repro/internal/spill"
	"repro/internal/stats"
	"repro/internal/types"
)

// Bucket-discard spill for the blocking aggregation and the pipelined
// distinct, shared by the chan and morsel engines through the cores
// embedded in their partition structs.
//
// Aggregation state is mergeable: a group's accumulators serialize to a
// fixed-width value block (count, integer and float sums, seen flag, min,
// max) that a later pass folds back together with aggAcc.merge, so unlike
// the join no arrival ordering needs to be preserved — evicting a partition
// just snapshots its groups to the run, and the finalize pass re-partitions
// the run into F hash sub-buckets, merging duplicate group keys as it
// rebuilds each one within the merge share.
//
// Distinct is emit-once rather than mergeable, which changes the discipline:
// before the first eviction, first occurrences are forwarded immediately (the
// operator stays pipelined). The first eviction writes a key-only "claimed"
// record (side 1) for every key seen so far — those tuples were already
// forwarded — and flips the partition into deferred mode: from then on fresh
// first occurrences are buffered but NOT forwarded, because the in-memory
// set can no longer prove a tuple was never seen. Later evictions and the
// finalize remainder write the buffered pending tuples as side-0 records.
// The finalize pass scans the run in chronological order per sub-bucket:
// the first record to claim a key wins, and only a winning side-0 record
// emits its tuple — claims always precede the pendings they shadow because
// side-1 records are written before any side-0 record exists.

// aggAccRecWidth is the number of serialized values per accumulator.
const aggAccRecWidth = 6

// aggAccBytes estimates one accumulator's in-memory footprint, matching the
// 48-byte-per-agg estimate the fold loops already charge to StateBytes.
const aggAccBytes = 48

// merge folds a deserialized accumulator snapshot into a. Counts and sums
// add unconditionally (they are zero when never touched); min/max only
// apply when the snapshot had seen a value.
func (a *aggAcc) merge(f plan.AggFunc, count, sumI int64, sumF float64, seen bool, min, max types.Value) {
	a.count += count
	a.sumI += sumI
	a.sumF += sumF
	if !seen {
		return
	}
	switch f {
	case plan.AggMin:
		if !a.seen || types.Compare(min, a.min) < 0 {
			a.min = min
		}
	case plan.AggMax:
		if !a.seen || types.Compare(max, a.max) > 0 {
			a.max = max
		}
	}
	a.seen = true
}

// aggCore is the partition-local aggregation state shared by the chan and
// morsel engines, plus the bucket-discard spill state.
type aggCore struct {
	idx    types.KeyTable
	groups []groupState
	accs   accAllocator

	groupBytes int64      // accumulated per-group payload estimate
	bytes      int64      // accounted footprint of this partition
	run        *spill.Run // nil until the first eviction
	spilled    int64      // cumulative spilled group payload bytes
}

// memBytes approximates the partition's accounted footprint.
func (ac *aggCore) memBytes() int64 {
	return int64(ac.idx.MemSize()) + ac.groupBytes
}

// writeGroups appends every group to the run as one record — group values
// followed by aggAccRecWidth serialized values per accumulator — and resets
// the in-memory state. Group ids are KeyTable-dense, so groups[id] is the
// state for key id.
func (ac *aggCore) writeGroups(aggs []plan.AggSpec) error {
	var rec spill.Record
	scratch := make(types.Tuple, 0, 8)
	for id := int32(0); id < int32(ac.idx.Len()); id++ {
		gs := &ac.groups[id]
		t := append(scratch[:0], gs.groupVals...)
		for k := range aggs {
			a := &gs.accs[k]
			t = append(t, types.Int(a.count), types.Int(a.sumI), types.Float(a.sumF),
				types.Bool(a.seen), a.min, a.max)
		}
		rec.Hash = ac.idx.Hash(id)
		rec.Key = ac.idx.Key(id)
		rec.Tuple = t
		if err := ac.run.Append(&rec); err != nil {
			return err
		}
		ac.spilled += int64(gs.groupVals.MemSize()) + int64(aggAccBytes*len(aggs))
		scratch = t
	}
	ac.idx = types.KeyTable{}
	ac.groups = nil
	ac.accs.free = nil
	ac.groupBytes = 0
	return nil
}

// evict is one bucket-discard of the aggregation partition.
func (ac *aggCore) evict(ctx *Context, op *stats.OpStats, point *Point, aggs []plan.AggSpec) error {
	if ac.run == nil {
		dir, err := ctx.SpillDir()
		if err != nil {
			return err
		}
		run, err := spill.NewRun(dir, "agg")
		if err != nil {
			return err
		}
		ac.run = run
	}
	pre := ac.run.Bytes()
	if err := ac.writeGroups(aggs); err != nil {
		return err
	}
	if err := ac.run.Flush(); err != nil {
		return err
	}
	ctx.account(-ac.bytes)
	op.StateBytes.Add(-ac.bytes)
	ac.bytes = 0
	n := ac.run.Bytes() - pre
	ctx.noteSpill(n)
	op.SpillBytes.Add(n)
	op.SpillEvents.Inc()
	if point != nil {
		point.stateIncomplete.Store(true)
	}
	return nil
}

// mergeSpill drains a spilled aggregation partition after input-done: the
// in-memory remainder joins the run, then F sub-bucket passes rebuild and
// merge the groups within the merge share and emit the finished rows.
// Returns false when the query failed or was cancelled; the run is closed
// and removed either way. emit does not count Out — the caller's callback
// owns downstream delivery and stats.
func (ac *aggCore) mergeSpill(ctx *Context, op *stats.OpStats, gw int, aggs []plan.AggSpec, emit func(Batch) bool) bool {
	if ac.run == nil {
		return true
	}
	defer func() {
		ac.run.Close()
		ac.run = nil
	}()

	pre := ac.run.Bytes()
	if err := ac.writeGroups(aggs); err != nil {
		ctx.CancelCause(err)
		return false
	}
	if err := ac.run.Flush(); err != nil {
		ctx.CancelCause(err)
		return false
	}
	ctx.account(-ac.bytes)
	op.StateBytes.Add(-ac.bytes)
	ac.bytes = 0
	if n := ac.run.Bytes() - pre; n > 0 {
		ctx.spillBytes.Add(n)
		op.SpillBytes.Add(n)
	}

	// ac.spilled counts every snapshot of a group, so when evicted groups
	// re-accumulate it overstates the merged size: F is a sizing hint, not
	// a gate. The build pass enforces the budget on the actual merged table
	// and fails typed when even the maximum fan-out cannot fit one pass.
	share := ctx.mergeShare()
	F := 1
	for F < spillMaxFanout && 2*ac.spilled/int64(F) > share {
		F <<= 1
	}

	argKinds := make([]types.Kind, len(aggs))
	for i := range aggs {
		argKinds[i] = types.KindFloat
		if aggs[i].Arg != nil {
			argKinds[i] = aggs[i].Arg.Kind()
		}
	}

	var passLimit int64
	if ctx.MemBudget > 0 {
		passLimit = 2 * share
	}
	perGroup := int64(aggAccBytes*len(aggs) + gw*16)

	outBatch := GetBatch()
	fail := func(err error) bool {
		ctx.CancelCause(err)
		PutBatch(outBatch)
		return false
	}
	var arena rowArena
	var rec spill.Record
	for f := 0; f < F; f++ {
		if ctx.Err() != nil {
			PutBatch(outBatch)
			return false
		}
		// Rebuild this sub-bucket's groups, merging duplicate keys. The
		// selector uses middle hash bits — top bits picked the partition,
		// low bits index the KeyTable's slots.
		var (
			idx    types.KeyTable
			groups []groupState
			alloc  = accAllocator{width: len(aggs)}
		)
		rd, err := ac.run.Reader()
		if err != nil {
			return fail(err)
		}
		for {
			ok, err := rd.Next(&rec)
			if err != nil {
				rd.Close()
				return fail(err)
			}
			if !ok {
				break
			}
			if int((rec.Hash>>32)&uint64(F-1)) != f {
				continue
			}
			id, added := idx.Insert(rec.Hash, rec.Key)
			if added {
				// rec.Tuple is freshly allocated per record, so the group
				// values slice can be retained directly.
				groups = append(groups, groupState{groupVals: rec.Tuple[:gw:gw], accs: alloc.alloc()})
				if sz := int64(idx.MemSize()) + int64(len(groups))*perGroup; passLimit > 0 && sz > passLimit {
					rd.Close()
					return fail(&BudgetError{Op: op.Name, Budget: ctx.MemBudget, Need: 8 * sz})
				}
			}
			gs := &groups[id]
			for k := range aggs {
				o := gw + k*aggAccRecWidth
				gs.accs[k].merge(aggs[k].Func,
					rec.Tuple[o].I, rec.Tuple[o+1].I, rec.Tuple[o+2].F,
					rec.Tuple[o+3].I != 0, rec.Tuple[o+4], rec.Tuple[o+5])
			}
		}
		rd.Close()
		passBytes := int64(idx.MemSize()) + int64(len(groups))*int64(aggAccBytes*len(aggs)+gw*16)
		ctx.account(passBytes)
		op.StateBytes.Add(passBytes)

		for gi := range groups {
			gs := &groups[gi]
			row := arena.alloc(gw + len(aggs))
			copy(row, gs.groupVals)
			for i := range aggs {
				row[gw+i] = gs.accs[i].result(aggs[i].Func, argKinds[i])
			}
			outBatch.Tuples = append(outBatch.Tuples, row)
			if len(outBatch.Tuples) == BatchSize {
				if !emit(outBatch) {
					ctx.account(-passBytes)
					op.StateBytes.Add(-passBytes)
					return false
				}
				outBatch = GetBatch()
			}
		}
		ctx.account(-passBytes)
		op.StateBytes.Add(-passBytes)
	}
	if len(outBatch.Tuples) > 0 {
		if !emit(outBatch) {
			return false
		}
	} else {
		PutBatch(outBatch)
	}
	return true
}

// distinctCore is the partition-local distinct state shared by the chan and
// morsel engines, plus the bucket-discard spill state.
type distinctCore struct {
	idx  types.KeyTable
	seen []types.Tuple

	tupBytes int64      // retained tuple payload bytes
	bytes    int64      // accounted footprint of this partition
	run      *spill.Run // nil until the first eviction
	spilled  int64      // cumulative spilled key bytes (sizes finalize passes)
	deferred bool       // true once evicted: fresh firsts buffer, not forward
}

// memBytes approximates the partition's accounted footprint.
func (dc *distinctCore) memBytes() int64 {
	return int64(dc.idx.MemSize()) + dc.tupBytes + int64(cap(dc.seen))*24
}

// writeSeen appends the in-memory state to the run and resets it. The first
// eviction writes key-only claims (side 1: already forwarded); every later
// write carries the buffered pending tuples (side 0: not yet forwarded).
// Dense KeyTable ids align with the seen slice.
func (dc *distinctCore) writeSeen() error {
	var rec spill.Record
	claimed := !dc.deferred
	for id := int32(0); id < int32(dc.idx.Len()); id++ {
		rec.Hash = dc.idx.Hash(id)
		rec.Key = dc.idx.Key(id)
		if claimed {
			rec.Side = 1
			rec.Tuple = nil
		} else {
			rec.Side = 0
			rec.Tuple = dc.seen[id]
		}
		if err := dc.run.Append(&rec); err != nil {
			return err
		}
		dc.spilled += int64(len(rec.Key)) + 48
	}
	dc.idx = types.KeyTable{}
	dc.seen = nil
	dc.tupBytes = 0
	dc.deferred = true
	return nil
}

// evict is one bucket-discard of the distinct partition.
func (dc *distinctCore) evict(ctx *Context, op *stats.OpStats, point *Point) error {
	if dc.run == nil {
		dir, err := ctx.SpillDir()
		if err != nil {
			return err
		}
		run, err := spill.NewRun(dir, "distinct")
		if err != nil {
			return err
		}
		dc.run = run
	}
	pre := dc.run.Bytes()
	if err := dc.writeSeen(); err != nil {
		return err
	}
	if err := dc.run.Flush(); err != nil {
		return err
	}
	ctx.account(-dc.bytes)
	op.StateBytes.Add(-dc.bytes)
	dc.bytes = 0
	n := dc.run.Bytes() - pre
	ctx.noteSpill(n)
	op.SpillBytes.Add(n)
	op.SpillEvents.Inc()
	if point != nil {
		point.stateIncomplete.Store(true)
	}
	return nil
}

// mergeSpill drains a spilled distinct partition after input-done: the
// pending remainder joins the run, then F sub-bucket passes replay the run
// in write order — the first record to claim a key wins, and only a winning
// pending (side 0) record emits its tuple. Each pass holds only a KeyTable
// of the sub-bucket's keys. Returns false when the query failed or was
// cancelled; the run is closed and removed either way.
func (dc *distinctCore) mergeSpill(ctx *Context, op *stats.OpStats, emit func(Batch) bool) bool {
	if dc.run == nil {
		return true
	}
	defer func() {
		dc.run.Close()
		dc.run = nil
	}()

	pre := dc.run.Bytes()
	if err := dc.writeSeen(); err != nil {
		ctx.CancelCause(err)
		return false
	}
	if err := dc.run.Flush(); err != nil {
		ctx.CancelCause(err)
		return false
	}
	ctx.account(-dc.bytes)
	op.StateBytes.Add(-dc.bytes)
	dc.bytes = 0
	if n := dc.run.Bytes() - pre; n > 0 {
		ctx.spillBytes.Add(n)
		op.SpillBytes.Add(n)
	}

	// dc.spilled re-counts a key each time it is re-claimed or re-buffered
	// after an eviction, so it overstates the deduped size: F is a sizing
	// hint, not a gate. The replay pass enforces the budget on the actual
	// per-sub-bucket key table and fails typed when it cannot fit.
	share := ctx.mergeShare()
	F := 1
	for F < spillMaxFanout && 2*dc.spilled/int64(F) > share {
		F <<= 1
	}
	var passLimit int64
	if ctx.MemBudget > 0 {
		passLimit = 2 * share
	}

	outBatch := GetBatch()
	var rec spill.Record
	for f := 0; f < F; f++ {
		if ctx.Err() != nil {
			PutBatch(outBatch)
			return false
		}
		var idx types.KeyTable
		rd, err := dc.run.Reader()
		if err != nil {
			ctx.CancelCause(err)
			PutBatch(outBatch)
			return false
		}
		for {
			ok, err := rd.Next(&rec)
			if err != nil {
				rd.Close()
				ctx.CancelCause(err)
				PutBatch(outBatch)
				return false
			}
			if !ok {
				break
			}
			if int((rec.Hash>>32)&uint64(F-1)) != f {
				continue
			}
			_, added := idx.Insert(rec.Hash, rec.Key)
			if added && passLimit > 0 && int64(idx.MemSize()) > passLimit {
				rd.Close()
				ctx.CancelCause(&BudgetError{Op: op.Name, Budget: ctx.MemBudget, Need: 8 * int64(idx.MemSize())})
				PutBatch(outBatch)
				return false
			}
			if added && rec.Side == 0 {
				// rec.Tuple is freshly allocated per record: safe downstream.
				outBatch.Tuples = append(outBatch.Tuples, rec.Tuple)
				if len(outBatch.Tuples) == BatchSize {
					if !emit(outBatch) {
						rd.Close()
						return false
					}
					outBatch = GetBatch()
				}
			}
		}
		rd.Close()
		// The pass table peaks once per sub-bucket; charge it at its final
		// size so the high-water mark reflects the pass.
		passBytes := int64(idx.MemSize())
		ctx.account(passBytes)
		ctx.account(-passBytes)
	}
	if len(outBatch.Tuples) > 0 {
		if !emit(outBatch) {
			return false
		}
	} else {
		PutBatch(outBatch)
	}
	return true
}

package exec

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/network"
	"repro/internal/stats"
)

// FailureMode selects what the engine does when a source stays dead after
// the recovery policy is exhausted.
type FailureMode int

const (
	// FailOnSourceError (the default): the query is cancelled with a typed
	// *SourceError naming the dead source; Run / Rows.Err surface it.
	FailOnSourceError FailureMode = iota
	// PartialOnSourceError: the query completes without the dead source's
	// remaining tuples. The affected base tables are reported as incomplete
	// (Context.IncompleteSources, surfaced on the public Result/Rows), and
	// every injection point fed by them is marked state-incomplete so the
	// AIP controllers never publish a partial input as a complete set —
	// degraded results may miss tuples but are never silently wrong about
	// what they pruned.
	PartialOnSourceError
)

// String names the mode.
func (m FailureMode) String() string {
	if m == PartialOnSourceError {
		return "partial"
	}
	return "fail"
}

// SourceError reports a source that stayed dead through the whole recovery
// policy: every attempt (including retries) failed, or its site's circuit
// breaker kept rejecting. It is the typed failure of FailOnSourceError and
// the per-table annotation of PartialOnSourceError.
type SourceError struct {
	Table    string // base table whose stream failed
	Site     int    // executing site (0 = master)
	Attempts int    // attempts made before giving up
	Cause    error  // the last attempt's error
}

// Error renders the failure.
func (e *SourceError) Error() string {
	return fmt.Sprintf("source %q at site %d failed after %d attempts: %v",
		e.Table, e.Site, e.Attempts, e.Cause)
}

// Unwrap exposes the last attempt's error to errors.Is/As.
func (e *SourceError) Unwrap() error { return e.Cause }

// ErrAttemptTimeout reports one attempt abandoned by the per-attempt
// timeout. It is retryable: the next attempt may find the source healthy.
var ErrAttemptTimeout = errors.New("exec: attempt timed out")

// Recovery is the per-query recovery configuration carried on the Context.
// The zero value retries with the default policy and fails the query on an
// exhausted source.
type Recovery struct {
	// Policy bounds the attempt loop of every remote interaction. Zero
	// fields mean their network.RetryPolicy defaults.
	Policy network.RetryPolicy
	// Breakers holds the per-site circuit breakers; nil disables breaking.
	// Sharing one set across queries carries breaker state (an open site
	// stays open) into subsequent queries, serving-tier style.
	Breakers *network.BreakerSet
	// Mode selects fail-fast or graceful partial results.
	Mode FailureMode
}

// sourceFailure is one recorded dead source (PartialOnSourceError).
type sourceFailure struct {
	err *SourceError
}

// Spawn runs f on a tracked goroutine. Every operator goroutine of a query
// must go through Spawn so Wait can prove quiescence: pooled stats
// registries are recycled only after Wait, when no goroutine can still
// touch a counter.
//
// A panic inside f is contained to the query: f's own deferred cleanup
// (channel closes, WaitGroup decrements) runs during the unwind, then the
// recover here cancels the query with a typed *PanicError — the process
// and every other in-flight query keep running, and the failed query's
// remaining goroutines drain through the normal cancellation paths.
func (c *Context) Spawn(f func()) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				c.CancelCause(&PanicError{Val: r, Stack: debug.Stack()})
			}
		}()
		f()
	}()
}

// Wait blocks until every goroutine started via Spawn has exited. Valid
// only after the plan's output channel closed (operators exit on EOF or
// cancellation; Wait does not itself cancel anything).
func (c *Context) Wait() { c.wg.Wait() }

// FailSource records that a source stayed dead after recovery was
// exhausted. Under FailOnSourceError it cancels the query with the typed
// error; under PartialOnSourceError it marks the table incomplete, flags
// every injection point fed by the table as state-incomplete (so AIP
// controllers never treat partial state as a complete set), and abandons
// the table's scans so they stop producing promptly.
func (c *Context) FailSource(err *SourceError) {
	if c.Recovery.Mode != PartialOnSourceError {
		c.CancelCause(err)
		return
	}
	c.incMu.Lock()
	if c.incomplete == nil {
		c.incomplete = make(map[string]*SourceError)
	}
	if _, dup := c.incomplete[err.Table]; !dup {
		c.incomplete[err.Table] = err
	}
	c.incMu.Unlock()
	for _, p := range c.Points() {
		for _, t := range p.Tables {
			if t == err.Table {
				p.stateIncomplete.Store(true)
				break
			}
		}
	}
}

// SourceAbandoned reports whether a table's stream has been given up on
// (PartialOnSourceError); its scans stop producing once they observe it.
func (c *Context) SourceAbandoned(table string) bool {
	c.incMu.Lock()
	defer c.incMu.Unlock()
	_, ok := c.incomplete[table]
	return ok
}

// IncompleteSources returns the dead sources a partial-mode query completed
// without, sorted by table name. Empty for complete results.
func (c *Context) IncompleteSources() []*SourceError {
	c.incMu.Lock()
	defer c.incMu.Unlock()
	if len(c.incomplete) == 0 {
		return nil
	}
	out := make([]*SourceError, 0, len(c.incomplete))
	for _, e := range c.incomplete {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

// FilterShipper returns a filter-transfer hook bound to this context: each
// call ships nbytes over link under the query's recovery policy (per-site
// breaker, per-attempt timeout, backoff), accounting attempts, retries, and
// wasted bytes on op. The engine installs it as the AIP controllers'
// shipping hook so remote filter shipments share the query's retry
// machinery. Calls serialize on an internal lock — filter shipments are
// rare, and serializing keeps the retry state deterministic.
func (c *Context) FilterShipper(op *stats.OpStats) func(link *network.Link, site int, nbytes int) error {
	var mu sync.Mutex
	retriers := map[int]*retrier{}
	return func(link *network.Link, site int, nbytes int) error {
		if !link.Faults.Active() && c.Recovery.Breakers == nil {
			// Reliable link, no breakers: only cancellation can interrupt.
			return link.Transfer(nbytes, c.Cancelled())
		}
		mu.Lock()
		defer mu.Unlock()
		ret := retriers[site]
		if ret == nil {
			ret = newRetrier(c, op, site, fmt.Sprintf("aipfilter:%d", site))
			retriers[site] = ret
		}
		return ret.do(func(stop <-chan struct{}) error {
			err := link.Transfer(nbytes, stop)
			var fe *network.FaultError
			if errors.As(err, &fe) && fe.Sent > 0 {
				op.WastedBytes.Add(int64(fe.Sent))
			}
			return err
		})
	}
}

// retrySeed mixes the policy seed with a stream name so every retry loop
// jitters deterministically but differently.
func retrySeed(seed int64, stream string) int64 {
	for _, c := range []byte(stream) {
		seed = seed*131 + int64(c)
	}
	return seed
}

// retrier drives the attempt loop of one logical stream's remote
// interactions: breaker gating, per-attempt timeout, capped backoff with
// jitter, and stats. One retrier per operator goroutine; not concurrency-
// safe (each stream retries on its own).
type retrier struct {
	ctx      *Context
	op       *stats.OpStats
	pol      network.RetryPolicy
	breaker  *network.Breaker
	rng      *rand.Rand
	attempts int // total attempts across the stream (SourceError.Attempts)
}

// newRetrier builds the retry driver for one stream (a scan or ship
// instance). stream seeds the backoff jitter deterministically.
func newRetrier(ctx *Context, op *stats.OpStats, site int, stream string) *retrier {
	pol := ctx.Recovery.Policy.WithDefaults()
	r := &retrier{ctx: ctx, op: op, pol: pol}
	if ctx.Recovery.Breakers != nil {
		r.breaker = ctx.Recovery.Breakers.For(site)
	}
	if pol.Jitter > 0 {
		r.rng = rand.New(rand.NewSource(retrySeed(pol.Seed, stream)))
	}
	return r
}

// attemptStop builds the stop channel for one attempt: it closes when the
// per-attempt timeout fires or the query is cancelled. finish tears the
// plumbing down and reports whether the timeout (not cancellation) fired.
// With no timeout configured the query's own cancel channel is used
// directly and no goroutine or timer is allocated.
func (r *retrier) attemptStop() (stop <-chan struct{}, finish func() bool) {
	if r.pol.AttemptTimeout <= 0 {
		return r.ctx.Cancelled(), func() bool { return false }
	}
	ch := make(chan struct{})
	var once sync.Once
	closeCh := func() { once.Do(func() { close(ch) }) }
	var timedOut atomic.Bool
	timer := time.AfterFunc(r.pol.AttemptTimeout, func() {
		timedOut.Store(true)
		closeCh()
	})
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-r.ctx.Cancelled():
			closeCh()
		case <-quit:
		}
	}()
	return ch, func() bool {
		timer.Stop()
		close(quit)
		<-done
		return timedOut.Load() && r.ctx.Err() == nil
	}
}

// do runs attempt under the recovery policy. attempt receives a stop
// channel (per-attempt timeout merged with query cancellation) and returns
// nil on success or the attempt's error; network.ErrCancelled from a
// timed-out attempt is converted to the retryable ErrAttemptTimeout.
//
// do returns nil on success, network.ErrCancelled when the query was
// cancelled, or the last attempt's error once retries are exhausted (the
// caller wraps it in a SourceError / fails the interaction).
func (r *retrier) do(attempt func(stop <-chan struct{}) error) error {
	var lastErr error
	for try := 0; ; try++ {
		select {
		case <-r.ctx.Cancelled():
			return network.ErrCancelled
		default:
		}
		var err error
		if r.breaker != nil && !r.breaker.Allow(time.Now()) {
			err = network.ErrBreakerOpen
		} else {
			r.attempts++
			r.op.Attempts.Inc()
			stop, finish := r.attemptStop()
			err = attempt(stop)
			if timedOut := finish(); timedOut && errors.Is(err, network.ErrCancelled) {
				err = ErrAttemptTimeout
			}
			if r.breaker != nil {
				if err == nil {
					r.breaker.Success()
				} else if !errors.Is(err, network.ErrCancelled) {
					r.breaker.Failure(time.Now())
				}
			}
		}
		if err == nil {
			return nil
		}
		if errors.Is(err, network.ErrCancelled) {
			return network.ErrCancelled
		}
		lastErr = err
		if try >= r.pol.MaxRetries {
			return lastErr
		}
		r.op.Retries.Inc()
		// Interruptible backoff: cancellation mid-backoff returns promptly
		// instead of sleeping the delay out.
		if d := r.pol.Backoff(try, r.rng); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-r.ctx.Cancelled():
				t.Stop()
				return network.ErrCancelled
			}
		}
	}
}

package exec

import (
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/filter"
	"repro/internal/network"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/types"
)

func intSchema(names ...string) *types.Schema {
	cols := make([]types.Column, len(names))
	for i, n := range names {
		cols[i] = types.Column{Table: "t", Name: n, Kind: types.KindInt}
	}
	return types.NewSchema(cols...)
}

func intRows(vals ...[]int64) []types.Tuple {
	out := make([]types.Tuple, len(vals))
	for i, row := range vals {
		t := make(types.Tuple, len(row))
		for j, v := range row {
			t[j] = types.Int(v)
		}
		out[i] = t
	}
	return out
}

func runOp(t *testing.T, op Op, ctl Controller) []types.Tuple {
	t.Helper()
	ctx := NewContext(stats.NewRegistry(), ctl)
	rows, err := Run(ctx, op)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rows
}

func sortedInts(rows []types.Tuple, col int) []int64 {
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i], _ = r[col].AsInt()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestScanEmitsAll(t *testing.T) {
	rows := intRows([]int64{1}, []int64{2}, []int64{3})
	got := runOp(t, &Scan{Name: "t", Rows: rows, Sch: intSchema("a")}, nil)
	if len(got) != 3 {
		t.Fatalf("scan emitted %d rows", len(got))
	}
}

func TestScanLargeBatches(t *testing.T) {
	n := BatchSize*3 + 17
	rows := make([]types.Tuple, n)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i))}
	}
	got := runOp(t, &Scan{Name: "t", Rows: rows, Sch: intSchema("a")}, nil)
	if len(got) != n {
		t.Fatalf("scan emitted %d of %d rows", len(got), n)
	}
}

func TestScanDelay(t *testing.T) {
	rows := make([]types.Tuple, 50)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i))}
	}
	s := &Scan{Name: "t", Rows: rows, Sch: intSchema("a"),
		Delay: &DelayConfig{Initial: 30 * time.Millisecond, EveryN: 10, Pause: 5 * time.Millisecond}}
	start := time.Now()
	got := runOp(t, s, nil)
	elapsed := time.Since(start)
	if len(got) != 50 {
		t.Fatalf("delayed scan lost rows: %d", len(got))
	}
	// 30ms initial + 5 pauses × 5ms = 55ms minimum.
	if elapsed < 50*time.Millisecond {
		t.Fatalf("delay not applied: %v", elapsed)
	}
}

func TestScanPacing(t *testing.T) {
	rows := make([]types.Tuple, 2000)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i))}
	}
	var bytes int64
	for _, r := range rows {
		bytes += int64(r.MemSize())
	}
	rate := bytes * 10 // whole table in ~100ms
	s := &Scan{Name: "t", Rows: rows, Sch: intSchema("a"), BytesPerSec: rate}
	start := time.Now()
	got := runOp(t, s, nil)
	elapsed := time.Since(start)
	if len(got) != 2000 {
		t.Fatalf("paced scan lost rows")
	}
	if elapsed < 60*time.Millisecond || elapsed > 500*time.Millisecond {
		t.Fatalf("pacing off target: %v (want ≈100ms)", elapsed)
	}
}

func TestFilterAndProject(t *testing.T) {
	rows := intRows([]int64{1, 10}, []int64{2, 20}, []int64{3, 30})
	scan := &Scan{Name: "t", Rows: rows, Sch: intSchema("a", "b")}
	f := &Filter{Child: scan, Name: "f", Pred: &expr.Binary{
		Op: expr.OpGt,
		L:  &expr.ColRef{Idx: 0, Col: types.Column{Kind: types.KindInt}},
		R:  &expr.Const{V: types.Int(1)},
	}}
	p := &Project{Child: f, Name: "p",
		Exprs: []expr.Expr{&expr.Binary{
			Op: expr.OpMul,
			L:  &expr.ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}},
			R:  &expr.Const{V: types.Int(2)},
		}},
		Sch: intSchema("b2")}
	got := runOp(t, p, nil)
	vals := sortedInts(got, 0)
	if len(vals) != 2 || vals[0] != 40 || vals[1] != 60 {
		t.Fatalf("filter+project = %v", vals)
	}
}

func buildJoin(lrows, rrows []types.Tuple) *HashJoin {
	l := &Scan{Name: "l", Rows: lrows, Sch: intSchema("a", "x")}
	r := &Scan{Name: "r", Rows: rrows, Sch: intSchema("a", "y")}
	j := NewHashJoin("j", l, r, []int{0}, []int{0}, nil)
	j.LPoint = &Point{Name: "l", Bank: NewFilterBank(), Stateful: true,
		EqIDs: []int{0, -1}, StateEqIDs: []int{0, -1}, KeyCols: []int{0},
		Schema: l.Sch, DomainDistinct: []float64{10, 0}}
	j.RPoint = &Point{Name: "r", Bank: NewFilterBank(), Stateful: true,
		EqIDs: []int{0, -1}, StateEqIDs: []int{0, -1}, KeyCols: []int{0},
		Schema: r.Sch, DomainDistinct: []float64{10, 0}}
	return j
}

func TestSymmetricJoinBasic(t *testing.T) {
	l := intRows([]int64{1, 100}, []int64{2, 200}, []int64{2, 201})
	r := intRows([]int64{2, 7}, []int64{3, 8})
	got := runOp(t, buildJoin(l, r), nil)
	// key 2: two left × one right = 2 results.
	if len(got) != 2 {
		t.Fatalf("join produced %d rows, want 2", len(got))
	}
	for _, row := range got {
		a, _ := row[0].AsInt()
		y, _ := row[3].AsInt()
		if a != 2 || y != 7 {
			t.Fatalf("bad join row: %v", row)
		}
	}
}

// TestSymmetricJoinExactlyOnce is the central concurrency property: every
// matching pair is produced exactly once regardless of arrival interleaving.
func TestSymmetricJoinExactlyOnce(t *testing.T) {
	const n = 4000
	lrows := make([]types.Tuple, n)
	rrows := make([]types.Tuple, n)
	for i := 0; i < n; i++ {
		lrows[i] = types.Tuple{types.Int(int64(i % 100)), types.Int(int64(i))}
		rrows[i] = types.Tuple{types.Int(int64(i % 100)), types.Int(int64(i))}
	}
	for trial := 0; trial < 5; trial++ {
		got := runOp(t, buildJoin(lrows, rrows), nil)
		// Each key appears 40 times on each side → 100 keys × 40×40 pairs.
		want := 100 * 40 * 40
		if len(got) != want {
			t.Fatalf("trial %d: join produced %d rows, want %d", trial, len(got), want)
		}
	}
}

func TestJoinResidual(t *testing.T) {
	l := intRows([]int64{1, 5}, []int64{1, 50})
	r := intRows([]int64{1, 10})
	j := buildJoin(l, r)
	// residual: l.x < r.y  (cols 1 and 3 of the concat schema)
	j.Residual = &expr.Binary{Op: expr.OpLt,
		L: &expr.ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}},
		R: &expr.ColRef{Idx: 3, Col: types.Column{Kind: types.KindInt}}}
	got := runOp(t, j, nil)
	if len(got) != 1 {
		t.Fatalf("residual join rows = %d, want 1", len(got))
	}
	if v, _ := got[0][1].AsInt(); v != 5 {
		t.Fatalf("wrong row survived: %v", got[0])
	}
}

func TestJoinFilterBankPrunes(t *testing.T) {
	l := intRows([]int64{1, 0}, []int64{2, 0}, []int64{3, 0})
	r := intRows([]int64{1, 0}, []int64{2, 0}, []int64{3, 0})
	j := buildJoin(l, r)
	// Attach a summary to the left input admitting only key 2.
	hs := filter.NewHashSet(8)
	hs.Add(types.Int(2).AppendKey(nil))
	j.LPoint.Bank.Attach([]int{0}, hs)
	got := runOp(t, j, nil)
	if len(got) != 1 {
		t.Fatalf("filtered join rows = %d, want 1", len(got))
	}
	if j.LPoint.Received() != 3 {
		t.Fatalf("received = %d", j.LPoint.Received())
	}
	if j.LPoint.StoredRows() >= 3 {
		t.Fatalf("stored = %d, pruning did not reduce state", j.LPoint.StoredRows())
	}
}

// TestJoinShortCircuit verifies the §VI-A optimization: after one side
// completes, the other stops buffering and marks its state incomplete.
func TestJoinShortCircuit(t *testing.T) {
	small := intRows([]int64{1, 0})
	big := make([]types.Tuple, 5000)
	for i := range big {
		big[i] = types.Tuple{types.Int(int64(i)), types.Int(0)}
	}
	l := &Scan{Name: "l", Rows: small, Sch: intSchema("a", "x")}
	// Gate the big side on the small side's completion so it definitely
	// finishes first, regardless of scheduler load.
	var lp *Point
	r := &gated{child: &Scan{Name: "r", Rows: big, Sch: intSchema("a", "y")},
		cond: func() bool { return lp.Done() }}
	j := NewHashJoin("j", l, r, []int{0}, []int{0}, nil)
	j.LPoint = &Point{Name: "l", Bank: NewFilterBank(), Stateful: true, KeyCols: []int{0}, EqIDs: []int{0, -1}, StateEqIDs: []int{0, -1}, DomainDistinct: []float64{0, 0}}
	lp = j.LPoint
	j.RPoint = &Point{Name: "r", Bank: NewFilterBank(), Stateful: true, KeyCols: []int{0}, EqIDs: []int{0, -1}, StateEqIDs: []int{0, -1}, DomainDistinct: []float64{0, 0}}
	got := runOp(t, j, nil)
	if len(got) != 1 {
		t.Fatalf("rows = %d", len(got))
	}
	if j.RPoint.StoredRows() != 0 {
		t.Fatalf("short-circuit failed: big side stored %d rows", j.RPoint.StoredRows())
	}
	if j.RPoint.StateComplete() {
		t.Fatal("short-circuited state must be marked incomplete")
	}
	if !j.LPoint.StateComplete() {
		t.Fatal("completed small side must have complete state")
	}
}

func TestHashAggSumMinCount(t *testing.T) {
	rows := intRows([]int64{1, 10}, []int64{1, 20}, []int64{2, 5})
	scan := &Scan{Name: "t", Rows: rows, Sch: intSchema("g", "v")}
	gb := []expr.Expr{&expr.ColRef{Idx: 0, Col: types.Column{Name: "g", Kind: types.KindInt}}}
	aggs := []plan.AggSpec{
		{Func: plan.AggSum, Arg: &expr.ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}}, Name: "s"},
		{Func: plan.AggMin, Arg: &expr.ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}}, Name: "m"},
		{Func: plan.AggCountStar, Name: "c"},
		{Func: plan.AggAvg, Arg: &expr.ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}}, Name: "a"},
		{Func: plan.AggMax, Arg: &expr.ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}}, Name: "x"},
	}
	sch := intSchema("g", "s", "m", "c", "a", "x")
	got := runOp(t, NewHashAgg("agg", scan, gb, aggs, sch), nil)
	if len(got) != 2 {
		t.Fatalf("groups = %d", len(got))
	}
	byG := map[int64]types.Tuple{}
	for _, r := range got {
		g, _ := r[0].AsInt()
		byG[g] = r
	}
	g1 := byG[1]
	if s, _ := g1[1].AsInt(); s != 30 {
		t.Fatalf("sum = %v", g1[1])
	}
	if m, _ := g1[2].AsInt(); m != 10 {
		t.Fatalf("min = %v", g1[2])
	}
	if c, _ := g1[3].AsInt(); c != 2 {
		t.Fatalf("count = %v", g1[3])
	}
	if a, _ := g1[4].AsFloat(); a != 15 {
		t.Fatalf("avg = %v", g1[4])
	}
	if x, _ := g1[5].AsInt(); x != 20 {
		t.Fatalf("max = %v", g1[5])
	}
}

func TestHashAggEmptyInput(t *testing.T) {
	scan := &Scan{Name: "t", Rows: nil, Sch: intSchema("g", "v")}
	gb := []expr.Expr{&expr.ColRef{Idx: 0, Col: types.Column{Kind: types.KindInt}}}
	aggs := []plan.AggSpec{{Func: plan.AggSum, Arg: &expr.ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}}, Name: "s"}}
	got := runOp(t, NewHashAgg("agg", scan, gb, aggs, intSchema("g", "s")), nil)
	if len(got) != 0 {
		t.Fatalf("empty input produced %d groups", len(got))
	}
}

func TestHashAggNullHandling(t *testing.T) {
	rows := []types.Tuple{
		{types.Int(1), types.Null()},
		{types.Int(1), types.Int(5)},
	}
	scan := &Scan{Name: "t", Rows: rows, Sch: intSchema("g", "v")}
	gb := []expr.Expr{&expr.ColRef{Idx: 0, Col: types.Column{Kind: types.KindInt}}}
	aggs := []plan.AggSpec{
		{Func: plan.AggSum, Arg: &expr.ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}}, Name: "s"},
		{Func: plan.AggCount, Arg: &expr.ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}}, Name: "c"},
	}
	got := runOp(t, NewHashAgg("agg", scan, gb, aggs, intSchema("g", "s", "c")), nil)
	if s, _ := got[0][1].AsInt(); s != 5 {
		t.Fatalf("sum over null = %v", got[0][1])
	}
	if c, _ := got[0][2].AsInt(); c != 1 {
		t.Fatalf("count must skip nulls: %v", got[0][2])
	}
}

func TestDistinctPipelined(t *testing.T) {
	rows := intRows([]int64{1}, []int64{2}, []int64{1}, []int64{3}, []int64{2})
	scan := &Scan{Name: "t", Rows: rows, Sch: intSchema("a")}
	d := &Distinct{Name: "d", Child: scan,
		Point: &Point{Name: "d", Bank: NewFilterBank(), Stateful: true, KeyCols: []int{0}, EqIDs: []int{-1}, StateEqIDs: []int{-1}, DomainDistinct: []float64{0}}}
	got := runOp(t, d, nil)
	vals := sortedInts(got, 0)
	if len(vals) != 3 || vals[0] != 1 || vals[2] != 3 {
		t.Fatalf("distinct = %v", vals)
	}
	if d.Point.StoredRows() != 3 {
		t.Fatalf("distinct state = %d", d.Point.StoredRows())
	}
}

func TestShipChargesNetwork(t *testing.T) {
	rows := intRows([]int64{1}, []int64{2})
	link := &network.Link{BytesPerSec: 1 << 20, Latency: 5 * time.Millisecond}
	s := &Ship{Name: "s", Child: &Scan{Name: "t", Rows: rows, Sch: intSchema("a")}, Link: link}
	reg := stats.NewRegistry()
	ctx := NewContext(reg, nil)
	got, err := Run(ctx, s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("ship lost rows: %d", len(got))
	}
	if reg.NetworkBytes.Load() == 0 || link.SentBytes() == 0 {
		t.Fatal("network traffic not accounted")
	}
}

func TestShipFilterPrunesBeforeWire(t *testing.T) {
	rows := intRows([]int64{1}, []int64{2}, []int64{3}, []int64{4})
	link := &network.Link{BytesPerSec: 1 << 30}
	pt := &Point{Name: "ship", Bank: NewFilterBank(), EqIDs: []int{0}, StateEqIDs: []int{0}, DomainDistinct: []float64{4}, Site: 1}
	hs := filter.NewHashSet(4)
	hs.Add(types.Int(2).AppendKey(nil))
	pt.Bank.Attach([]int{0}, hs)
	s := &Ship{Name: "s", Child: &Scan{Name: "t", Rows: rows, Sch: intSchema("a")}, Link: link, Point: pt}
	reg := stats.NewRegistry()
	got, err := Run(NewContext(reg, nil), s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("ship filter kept %d rows", len(got))
	}
	one := types.Tuple{types.Int(2)}.MemSize()
	if link.SentBytes() != int64(one) {
		t.Fatalf("sent %d bytes, want %d (only the surviving tuple)", link.SentBytes(), one)
	}
}

func TestCancellation(t *testing.T) {
	rows := make([]types.Tuple, 100000)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i))}
	}
	scan := &Scan{Name: "t", Rows: rows, Sch: intSchema("a"),
		Delay: &DelayConfig{EveryN: 100, Pause: time.Millisecond}}
	ctx := NewContext(stats.NewRegistry(), nil)
	out := scan.Start(ctx)
	<-out // take one batch
	ctx.Cancel()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-out:
			if !ok {
				return // channel closed: scan stopped promptly
			}
		case <-deadline:
			t.Fatal("scan did not stop after cancellation")
		}
	}
}

func TestFilterBankAttachReplace(t *testing.T) {
	b := NewFilterBank()
	h1 := filter.NewHashSet(4)
	h1.Add(types.Int(1).AppendKey(nil))
	h2 := filter.NewHashSet(4)
	h2.Add(types.Int(2).AppendKey(nil))

	b.Attach([]int{0}, h1)
	b.Attach([]int{0}, h1) // duplicate ignored
	if b.Len() != 1 {
		t.Fatalf("bank len = %d", b.Len())
	}
	keep := b.Probe(types.Tuple{types.Int(1)})
	if !keep {
		t.Fatal("member pruned")
	}
	keep = b.Probe(types.Tuple{types.Int(2)})
	if keep {
		t.Fatal("non-member passed")
	}
	b.Replace([]int{0}, h1, h2)
	if b.Len() != 1 {
		t.Fatalf("replace changed count: %d", b.Len())
	}
	keep = b.Probe(types.Tuple{types.Int(2)})
	if !keep {
		t.Fatal("replacement not effective")
	}
	// Replace of a missing summary attaches.
	h3 := filter.NewHashSet(4)
	b.Replace([]int{1}, h1, h3)
	if b.Len() != 2 {
		t.Fatalf("replace-miss should attach: %d", b.Len())
	}
}

func TestPointStateIter(t *testing.T) {
	l := intRows([]int64{1, 0}, []int64{2, 0})
	r := intRows([]int64{9, 0})
	j := buildJoin(l, r)
	// Gate the right input on the left side's completion so the left side
	// is fully buffered before the right side's completion can trigger the
	// short-circuit optimization.
	j.Right = &gated{child: j.Right, cond: func() bool { return j.LPoint.Done() }}
	runOp(t, j, nil)
	var seen []int64
	j.LPoint.IterState(func(tp types.Tuple) bool {
		v, _ := tp[0].AsInt()
		seen = append(seen, v)
		return true
	})
	sort.Slice(seen, func(i, k int) bool { return seen[i] < seen[k] })
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("state iter = %v", seen)
	}
	// Early stop.
	count := 0
	j.LPoint.IterState(func(types.Tuple) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop ignored: %d", count)
	}
}

// controllerRecorder verifies the Controller lifecycle ordering.
type controllerRecorder struct {
	mu     sync.Mutex
	events []string
}

func (c *controllerRecorder) add(e string) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *controllerRecorder) RegisterPoint(p *Point) { c.add("reg:" + p.Name) }
func (c *controllerRecorder) Begin()                 { c.add("begin") }
func (c *controllerRecorder) PointDone(p *Point)     { c.add("done:" + p.Name) }
func (c *controllerRecorder) End()                   { c.add("end") }

func TestControllerLifecycle(t *testing.T) {
	j := buildJoin(intRows([]int64{1, 0}), intRows([]int64{1, 0}))
	rec := &controllerRecorder{}
	ctx := NewContext(stats.NewRegistry(), rec)
	ctx.Register(j.LPoint)
	ctx.Register(j.RPoint)
	if _, err := Run(ctx, j); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rec.events) < 5 {
		t.Fatalf("events = %v", rec.events)
	}
	if rec.events[0] != "reg:l" || rec.events[1] != "reg:r" || rec.events[2] != "begin" {
		t.Fatalf("setup ordering wrong: %v", rec.events)
	}
	if rec.events[len(rec.events)-1] != "end" {
		t.Fatalf("missing end: %v", rec.events)
	}
	if len(ctx.Points()) != 2 {
		t.Fatal("points not registered")
	}
}

func TestBushyPlanEndToEnd(t *testing.T) {
	// (A ⋈ B) ⋈ (C ⋈ D): four scans joined pairwise, then together.
	mk := func(name string, keyStart int64) *Scan {
		rows := make([]types.Tuple, 10)
		for i := range rows {
			rows[i] = types.Tuple{types.Int(keyStart + int64(i)), types.Int(int64(i))}
		}
		return &Scan{Name: name, Rows: rows, Sch: intSchema("k", name)}
	}
	ab := NewHashJoin("ab", mk("a", 0), mk("b", 0), []int{0}, []int{0}, nil)
	cd := NewHashJoin("cd", mk("c", 5), mk("d", 5), []int{0}, []int{0}, nil)
	top := NewHashJoin("top", ab, cd, []int{0}, []int{0}, nil)
	got := runOp(t, top, nil)
	// Keys 5..9 overlap: ab has 0..9, cd has 5..14 → 5 results.
	if len(got) != 5 {
		t.Fatalf("bushy join rows = %d, want 5", len(got))
	}
}

func TestStatsCounts(t *testing.T) {
	j := buildJoin(intRows([]int64{1, 0}, []int64{2, 0}), intRows([]int64{1, 0}))
	reg := stats.NewRegistry()
	ctx := NewContext(reg, nil)
	rows, err := Run(ctx, j)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rows) != 1 {
		t.Fatal("unexpected result")
	}
	var stateRows int64
	for _, op := range reg.Ops() {
		stateRows += op.StateRows.Load()
	}
	// At most 3 tuples buffered; the short-circuit optimization may skip
	// some, but at least one side must have buffered.
	if stateRows < 1 || stateRows > 3 {
		t.Fatalf("state rows = %d, want 1..3", stateRows)
	}
	if reg.PeakStateBytes() <= 0 {
		t.Fatal("peak state must be positive")
	}
}

func TestManyKeysStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const n = 20000
	lrows := make([]types.Tuple, n)
	rrows := make([]types.Tuple, n)
	for i := 0; i < n; i++ {
		lrows[i] = types.Tuple{types.Int(int64(i)), types.Int(0)}
		rrows[i] = types.Tuple{types.Int(int64(n - 1 - i)), types.Int(0)}
	}
	got := runOp(t, buildJoin(lrows, rrows), nil)
	if len(got) != n {
		t.Fatalf("stress join rows = %d, want %d", len(got), n)
	}
}

func TestJoinOnStoreCoversShortCircuitedTuples(t *testing.T) {
	// Even when buffering stops, OnStore must see every passing tuple so
	// Feed-Forward working sets stay complete.
	small := intRows([]int64{1, 0})
	big := make([]types.Tuple, 1000)
	for i := range big {
		big[i] = types.Tuple{types.Int(int64(i)), types.Int(0)}
	}
	var lp *Point
	l := &Scan{Name: "l", Rows: small, Sch: intSchema("a", "x")}
	r := &gated{child: &Scan{Name: "r", Rows: big, Sch: intSchema("a", "y")},
		cond: func() bool { return lp.Done() }}
	j := NewHashJoin("j", l, r, []int{0}, []int{0}, nil)
	j.LPoint = &Point{Name: "l", Bank: NewFilterBank(), Stateful: true, KeyCols: []int{0}, EqIDs: []int{0, -1}, StateEqIDs: []int{0, -1}, DomainDistinct: []float64{0, 0}}
	lp = j.LPoint
	var rSeen int64
	j.RPoint = &Point{Name: "r", Bank: NewFilterBank(), Stateful: true, KeyCols: []int{0}, EqIDs: []int{0, -1}, StateEqIDs: []int{0, -1}, DomainDistinct: []float64{0, 0}}
	j.RPoint.OnStore = func(int, types.Tuple) { rSeen++ }
	runOp(t, j, nil)
	if rSeen != 1000 {
		t.Fatalf("OnStore saw %d of 1000 tuples", rSeen)
	}
	if j.RPoint.StoredRows() != 0 {
		t.Fatalf("expected short-circuit, stored %d", j.RPoint.StoredRows())
	}
}

func TestScanStatsName(t *testing.T) {
	reg := stats.NewRegistry()
	ctx := NewContext(reg, nil)
	if _, err := Run(ctx, &Scan{Name: "part", Rows: intRows([]int64{1}), Sch: intSchema("a")}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	found := false
	for _, op := range reg.Ops() {
		if op.Name == "scan:part" {
			found = true
			if op.Out.Load() != 1 {
				t.Fatalf("scan out = %d", op.Out.Load())
			}
		}
	}
	if !found {
		t.Fatal("scan stats missing")
	}
}

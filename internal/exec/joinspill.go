package exec

import (
	"sort"

	"repro/internal/expr"
	"repro/internal/spill"
	"repro/internal/stats"
	"repro/internal/types"
)

// Bucket-discard spill for the symmetric hash join, shared by the chan and
// morsel engines through the joinCore embedded in their partition structs.
//
// # Eviction
//
// When a partition's accounted state crosses its share of the query budget
// (Context.memPressure), the whole partition — both side tables together —
// is serialized to its spill run and the memory reclaimed. The partition's
// ticket clock at each eviction is recorded as an epoch boundary: an entry's
// epoch is the number of boundaries smaller than its ticket, so two entries
// share an epoch exactly when they were co-resident in memory (both sides
// are always evicted together). Evicting invalidates the in-memory state as
// an input summary, so both AIP points are marked state-incomplete.
//
// # Exactly-once across phases
//
// Phase 1 (arrival-driven probing) emits precisely the match pairs whose two
// members were co-resident — same epoch. The merge phase re-scans the run
// and emits only pairs whose epochs differ. The union is every match pair;
// the intersection is empty; each pair is considered exactly once in the
// merge because its members sit on opposite sides. The §VI-A short-circuit
// changes shape on a spilled partition: a tuple arriving after the other
// input completed may still match evicted entries, so instead of being
// dropped it is appended to the run under the current epoch (its in-memory
// matches were already emitted by its phase-1 probe, and they flush under
// the same epoch, so the merge skips them).
//
// # Merge
//
// After both inputs are done, each spilled partition flushes its in-memory
// remainder (final epoch) and is drained as a plain hash join over the run:
// the side that spilled fewer payload bytes is built, fanned out into F hash
// sub-buckets so one build table fits the merge share (Context.mergeShare),
// and the other side streams past it. F is capped at spillMaxFanout; a
// budget too small for even the maximum fan-out fails the query with a
// typed *BudgetError instead of thrashing.

// joinEntryBytes approximates the fixed per-entry footprint of a joinTable
// entry: tuple header, ticket, chain link, padding.
const joinEntryBytes = 40

// spillMaxFanout bounds the merge phase's sub-bucket fan-out. Beyond it the
// budget is declared unworkable (*BudgetError) rather than thrashed against.
const spillMaxFanout = 64

// memBytes approximates the table's accounted footprint: key index, chain
// arrays, and stored tuple payloads.
func (jt *joinTable) memBytes() int64 {
	return int64(jt.idx.MemSize()) + int64(cap(jt.heads))*4 +
		int64(cap(jt.entries))*joinEntryBytes + jt.tupBytes
}

// joinCore is the partition-local join state shared by the chan and morsel
// engines: the two side tables, the arrival-ticket clock, and the
// bucket-discard spill state.
type joinCore struct {
	tables [2]joinTable // indexed by side
	ticket uint64

	bytes      int64      // accounted in-memory state bytes of this partition
	run        *spill.Run // nil until the first eviction
	boundaries []uint64   // ticket clock at each eviction, ascending
	spilled    [2]int64   // cumulative spilled tuple payload bytes per side
}

// memBytes is the partition's current accounted footprint.
func (jc *joinCore) memBytes() int64 {
	return jc.tables[0].memBytes() + jc.tables[1].memBytes()
}

// initAccount charges the reserved (pre-sized) tables to the query budget so
// the invariant bytes == memBytes() holds from the first batch on.
func (jc *joinCore) initAccount(ctx *Context, ops [2]*stats.OpStats) {
	for s := range jc.tables {
		if d := jc.tables[s].memBytes(); d > 0 {
			ctx.account(d)
			ops[s].StateBytes.Add(d)
			jc.bytes += d
		}
	}
}

// epochOf returns the eviction epoch of a ticket: the number of boundaries
// recorded before the entry was stored.
func epochOf(boundaries []uint64, seq uint64) int {
	return sort.Search(len(boundaries), func(i int) bool { return boundaries[i] >= seq })
}

// ensureRun lazily creates the partition's spill run.
func (jc *joinCore) ensureRun(ctx *Context, pattern string) error {
	if jc.run != nil {
		return nil
	}
	dir, err := ctx.SpillDir()
	if err != nil {
		return err
	}
	run, err := spill.NewRun(dir, pattern)
	if err != nil {
		return err
	}
	jc.run = run
	return nil
}

// writeTables appends both side tables to the run and resets them. The
// caller owns boundary bookkeeping and byte accounting.
func (jc *joinCore) writeTables() error {
	var rec spill.Record
	for s := range jc.tables {
		t := &jc.tables[s]
		rec.Side = uint8(s)
		for id := int32(0); id < int32(t.idx.Len()); id++ {
			rec.Hash = t.idx.Hash(id)
			rec.Key = t.idx.Key(id)
			for e := t.heads[id]; e != 0; {
				ent := &t.entries[e-1]
				rec.Seq = ent.seq
				rec.Tuple = ent.t
				if err := jc.run.Append(&rec); err != nil {
					return err
				}
				e = ent.next
			}
		}
		jc.spilled[s] += t.tupBytes
		jc.tables[s] = joinTable{}
	}
	return nil
}

// evict is one bucket-discard: both side tables go to the run under a new
// epoch boundary, the memory is released, and both AIP points are marked
// state-incomplete (the in-memory state no longer summarizes the inputs).
func (jc *joinCore) evict(ctx *Context, ops [2]*stats.OpStats, points [2]*Point) error {
	if err := jc.ensureRun(ctx, "join"); err != nil {
		return err
	}
	pre := jc.run.Bytes()
	for s := range jc.tables {
		ops[s].StateBytes.Add(-jc.tables[s].memBytes())
	}
	if err := jc.writeTables(); err != nil {
		return err
	}
	if err := jc.run.Flush(); err != nil {
		return err
	}
	jc.boundaries = append(jc.boundaries, jc.ticket)
	ctx.account(-jc.bytes)
	jc.bytes = 0
	n := jc.run.Bytes() - pre
	ctx.noteSpill(n)
	ops[0].SpillBytes.Add(n)
	ops[0].SpillEvents.Inc()
	for _, p := range points {
		if p != nil {
			p.stateIncomplete.Store(true)
		}
	}
	return nil
}

// spillArrivals appends one scatter straight to the run under the current
// epoch: the partition has spilled, so these post-short-circuit arrivals may
// still match evicted other-side entries in the merge. Their in-memory
// matches were already emitted by the caller's phase-1 probe.
func (jc *joinCore) spillArrivals(sb *scatter, base uint64) error {
	var rec spill.Record
	rec.Side = uint8(sb.side)
	for i, t := range sb.tuples {
		rec.Seq = base + uint64(i) + 1
		rec.Hash = sb.hashes[i]
		rec.Key = sb.key(i)
		rec.Tuple = t
		if err := jc.run.Append(&rec); err != nil {
			return err
		}
		// Count toward the side's spilled payload: the merge sizes its build
		// table and fan-out from these totals, and these records land in the
		// run just like evicted entries do.
		jc.spilled[sb.side] += int64(t.MemSize())
	}
	return nil
}

// mergeSpill drains a spilled partition after input-done, emitting exactly
// the cross-epoch match pairs phase 1 could not see. emit receives dense or
// selection-carrying batches ready to send downstream (residual already
// applied) and reports false on cancellation. mergeSpill returns false when
// the query failed or was cancelled; it closes and removes the run either
// way. Callers pass their own compiled residual (expr.Compiled carries
// scratch and is not concurrency-safe).
func (jc *joinCore) mergeSpill(ctx *Context, ops [2]*stats.OpStats, opName string, resC *expr.Compiled, emit func(Batch) bool) bool {
	if jc.run == nil {
		return true
	}
	defer func() {
		jc.run.Close()
		jc.run = nil
	}()

	// Flush the in-memory remainder under the final epoch (no new boundary:
	// these entries share their epoch with any post-short-circuit arrivals
	// already appended, whose phase-1 probes saw them in memory).
	pre := jc.run.Bytes()
	for s := range jc.tables {
		ops[s].StateBytes.Add(-jc.tables[s].memBytes())
	}
	if err := jc.writeTables(); err != nil {
		ctx.CancelCause(err)
		return false
	}
	if err := jc.run.Flush(); err != nil {
		ctx.CancelCause(err)
		return false
	}
	ctx.account(-jc.bytes)
	jc.bytes = 0
	if n := jc.run.Bytes() - pre; n > 0 {
		ctx.spillBytes.Add(n)
		ops[0].SpillBytes.Add(n)
	}

	// Build over the side that spilled fewer payload bytes, fanned out into
	// F hash sub-buckets sized so one rebuilt table (~2x payload, counting
	// index and chain overhead) fits the merge share.
	build := 0
	if jc.spilled[1] < jc.spilled[0] {
		build = 1
	}
	share := ctx.mergeShare()
	F := 1
	for F < spillMaxFanout && 2*jc.spilled[build]/int64(F) > share {
		F <<= 1
	}
	if 2*jc.spilled[build]/int64(F) > share {
		need := jc.spilled[build]/8 + 1 // budget/4/64*2 >= spilled ⇒ budget >= spilled/8
		ctx.CancelCause(&BudgetError{Op: opName, Budget: ctx.MemBudget, Need: need})
		return false
	}

	buildIsLeft := build == 0
	probe := 1 - build
	outBatch := GetBatch()
	flush := func() bool {
		if len(outBatch.Tuples) == 0 {
			return true
		}
		if resC != nil {
			outBatch.Sel = resC.EvalBool(outBatch.Tuples, identSel(len(outBatch.Tuples)), getSel())
			if len(outBatch.Sel) == 0 {
				PutBatch(outBatch)
				outBatch = GetBatch()
				return true
			}
		}
		if !emit(outBatch) {
			outBatch = Batch{}
			return false
		}
		outBatch = GetBatch()
		return true
	}
	fail := func(err error) bool {
		ctx.CancelCause(err)
		PutBatch(outBatch)
		return false
	}

	var arena rowArena
	var rec spill.Record
	for f := 0; f < F; f++ {
		if ctx.Err() != nil {
			PutBatch(outBatch)
			return false
		}
		// Pass 1: build this sub-bucket's table from the build side. The
		// sub-bucket selector uses middle hash bits — the top bits picked the
		// partition and the low bits index the KeyTable's slots.
		var bt joinTable
		rd, err := jc.run.Reader()
		if err != nil {
			return fail(err)
		}
		for {
			ok, err := rd.Next(&rec)
			if err != nil {
				rd.Close()
				return fail(err)
			}
			if !ok {
				break
			}
			if int(rec.Side) != build || int((rec.Hash>>32)&uint64(F-1)) != f {
				continue
			}
			bt.insert(rec.Hash, rec.Key, rec.Tuple, rec.Seq)
		}
		rd.Close()
		passBytes := bt.memBytes()
		ctx.account(passBytes)
		ops[build].StateBytes.Add(passBytes)

		// Pass 2: stream the probe side past it, emitting cross-epoch pairs.
		// Chains are walked directly (not probeID) because the epoch check
		// needs each entry's ticket, not just a ticket ceiling.
		rd, err = jc.run.Reader()
		if err == nil {
			for {
				var ok bool
				ok, err = rd.Next(&rec)
				if err != nil || !ok {
					break
				}
				if int(rec.Side) != probe || int((rec.Hash>>32)&uint64(F-1)) != f {
					continue
				}
				pe := epochOf(jc.boundaries, rec.Seq)
				id := bt.idx.Lookup(rec.Hash, rec.Key)
				if id < 0 {
					continue
				}
				for e := bt.heads[id]; e != 0; {
					ent := &bt.entries[e-1]
					if epochOf(jc.boundaries, ent.seq) != pe {
						var row types.Tuple
						if buildIsLeft {
							row = arena.concat(ent.t, rec.Tuple)
						} else {
							row = arena.concat(rec.Tuple, ent.t)
						}
						outBatch.Tuples = append(outBatch.Tuples, row)
						if len(outBatch.Tuples) == BatchSize && !flush() {
							rd.Close()
							ctx.account(-passBytes)
							ops[build].StateBytes.Add(-passBytes)
							return false
						}
					}
					e = ent.next
				}
			}
			rd.Close()
		}
		ctx.account(-passBytes)
		ops[build].StateBytes.Add(-passBytes)
		if err != nil {
			return fail(err)
		}
	}
	if !flush() {
		return false
	}
	PutBatch(outBatch)
	return true
}

package exec

import (
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/types"
)

// gated delays its child's stream until cond holds (with a liberal safety
// deadline), making completion-order tests — short-circuit, state
// iterators — deterministic instead of sleep-calibrated: under heavy CPU
// oversubscription a fixed delay can elapse before the other input's
// completion has propagated through router and workers.
type gated struct {
	child Op
	cond  func() bool
}

func (g *gated) Schema() *types.Schema { return g.child.Schema() }

func (g *gated) Start(ctx *Context) <-chan Batch {
	in := g.child.Start(ctx)
	out := make(chan Batch, 1)
	go func() {
		defer close(out)
		deadline := time.Now().Add(10 * time.Second)
		for !g.cond() && time.Now().Before(deadline) {
			select {
			case <-time.After(time.Millisecond):
			case <-ctx.Cancelled():
				return
			}
		}
		for b := range in {
			if !send(ctx, out, b) {
				return
			}
		}
	}()
	return out
}

// runParallel executes a plan at an explicit partition fan-out and returns
// the rows together with the stats registry.
func runParallel(op Op, parallelism int) ([]types.Tuple, *stats.Registry) {
	reg := stats.NewRegistry()
	ctx := NewContext(reg, nil)
	ctx.Parallelism = parallelism
	rows, _ := Run(ctx, op)
	return rows, reg
}

func rowStrings(rows []types.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func sameRows(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: row %d = %s, want %s", label, i, got[i], want[i])
		}
	}
}

// TestJoinPartitionDeterminism is the acceptance property of the radix
// partitioned join: every partition fan-out produces exactly the same
// result multiset as the single-partition path, on a shape with duplicate
// keys (multi-match chains) and a residual predicate.
func TestJoinPartitionDeterminism(t *testing.T) {
	const n = 3000
	lrows := make([]types.Tuple, n)
	rrows := make([]types.Tuple, n)
	for i := 0; i < n; i++ {
		lrows[i] = types.Tuple{types.Int(int64(i % 200)), types.Int(int64(i))}
		rrows[i] = types.Tuple{types.Int(int64((n - 1 - i) % 200)), types.Int(int64(i))}
	}
	residual := &expr.Binary{Op: expr.OpLt,
		L: &expr.ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}},
		R: &expr.ColRef{Idx: 3, Col: types.Column{Kind: types.KindInt}}}

	var want []string
	for _, p := range []int{1, 2, 4, 8} {
		j := buildJoin(lrows, rrows)
		j.Residual = residual
		rows, reg := runParallel(j, p)
		got := rowStrings(rows)
		if p == 1 {
			want = got
			if len(want) == 0 {
				t.Fatal("baseline produced no rows — test is vacuous")
			}
			continue
		}
		sameRows(t, fmt.Sprintf("P=%d", p), want, got)

		// The per-partition counters must fold to the side totals.
		for _, op := range reg.Ops() {
			if op.Class != "join" {
				continue
			}
			if op.Partitions() != p {
				t.Fatalf("P=%d: op %s has %d partitions", p, op.Name, op.Partitions())
			}
			var partRows int64
			for i := 0; i < op.Partitions(); i++ {
				partRows += op.Part(i).Rows.Load()
			}
			if partRows != op.StateRows.Load() {
				t.Fatalf("P=%d: op %s partition rows %d != state rows %d",
					p, op.Name, partRows, op.StateRows.Load())
			}
		}
	}
}

// TestJoinExactlyOncePartitioned re-runs the central exactly-once property
// at a multi-partition fan-out: 100 keys × 40 duplicates per side must
// yield exactly 40×40 pairs per key, every trial.
func TestJoinExactlyOncePartitioned(t *testing.T) {
	const n = 4000
	lrows := make([]types.Tuple, n)
	rrows := make([]types.Tuple, n)
	for i := 0; i < n; i++ {
		lrows[i] = types.Tuple{types.Int(int64(i % 100)), types.Int(int64(i))}
		rrows[i] = types.Tuple{types.Int(int64(i % 100)), types.Int(int64(i))}
	}
	for trial := 0; trial < 5; trial++ {
		rows, _ := runParallel(buildJoin(lrows, rrows), 4)
		if want := 100 * 40 * 40; len(rows) != want {
			t.Fatalf("trial %d: join produced %d rows, want %d", trial, len(rows), want)
		}
	}
}

// TestJoinShortCircuitPartitioned verifies the §VI-A optimization across
// partitions: after the small side completes (router finished AND all
// scattered messages drained), no partition buffers the big side.
func TestJoinShortCircuitPartitioned(t *testing.T) {
	small := intRows([]int64{1, 0})
	big := make([]types.Tuple, 5000)
	for i := range big {
		big[i] = types.Tuple{types.Int(int64(i)), types.Int(0)}
	}
	l := &Scan{Name: "l", Rows: small, Sch: intSchema("a", "x")}
	// Gate the big side on the small side's completion: the short-circuit
	// is then guaranteed, not a race against a sleep.
	var lp *Point
	r := &gated{child: &Scan{Name: "r", Rows: big, Sch: intSchema("a", "y")},
		cond: func() bool { return lp.Done() }}
	j := NewHashJoin("j", l, r, []int{0}, []int{0}, nil)
	j.LPoint = &Point{Name: "l", Bank: NewFilterBank(), Stateful: true, KeyCols: []int{0}, EqIDs: []int{0, -1}, StateEqIDs: []int{0, -1}, DomainDistinct: []float64{0, 0}}
	lp = j.LPoint
	j.RPoint = &Point{Name: "r", Bank: NewFilterBank(), Stateful: true, KeyCols: []int{0}, EqIDs: []int{0, -1}, StateEqIDs: []int{0, -1}, DomainDistinct: []float64{0, 0}}
	rows, _ := runParallel(j, 4)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if j.RPoint.StoredRows() != 0 {
		t.Fatalf("short-circuit failed: big side stored %d rows", j.RPoint.StoredRows())
	}
	if j.RPoint.StateComplete() {
		t.Fatal("short-circuited state must be marked incomplete")
	}
	if !j.LPoint.StateComplete() {
		t.Fatal("completed small side must have complete state")
	}
	// The small side's state iterator walks every partition.
	var seen int
	j.LPoint.IterState(func(types.Tuple) bool { seen++; return true })
	if seen != 1 {
		t.Fatalf("state iter saw %d tuples, want 1", seen)
	}
}

// TestAggPartitionDeterminism checks that partitioned aggregation produces
// identical groups and (integer) aggregates at every fan-out.
func TestAggPartitionDeterminism(t *testing.T) {
	const n = 5000
	rows := make([]types.Tuple, n)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i % 97)), types.Int(int64(i))}
	}
	build := func() *HashAgg {
		scan := &Scan{Name: "t", Rows: rows, Sch: intSchema("g", "v")}
		gb := []expr.Expr{&expr.ColRef{Idx: 0, Col: types.Column{Name: "g", Kind: types.KindInt}}}
		aggs := []plan.AggSpec{
			{Func: plan.AggSum, Arg: &expr.ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}}, Name: "s"},
			{Func: plan.AggCountStar, Name: "c"},
			{Func: plan.AggMin, Arg: &expr.ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}}, Name: "m"},
			{Func: plan.AggMax, Arg: &expr.ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}}, Name: "x"},
		}
		return NewHashAgg("agg", scan, gb, aggs, intSchema("g", "s", "c", "m", "x"))
	}
	var want []string
	for _, p := range []int{1, 2, 4, 8} {
		res, reg := runParallel(build(), p)
		got := rowStrings(res)
		if p == 1 {
			want = got
			if len(want) != 97 {
				t.Fatalf("baseline groups = %d, want 97", len(want))
			}
			continue
		}
		sameRows(t, fmt.Sprintf("agg P=%d", p), want, got)
		for _, op := range reg.Ops() {
			if op.Class != "agg" {
				continue
			}
			var partRows int64
			for i := 0; i < op.Partitions(); i++ {
				partRows += op.Part(i).Rows.Load()
			}
			if partRows != 97 || op.StateRows.Load() != 97 {
				t.Fatalf("agg P=%d: partition rows %d / state rows %d, want 97",
					p, partRows, op.StateRows.Load())
			}
		}
	}
}

// TestAggGlobalEmptyPartitioned pins the SQL edge case at a multi-partition
// fan-out: a global aggregate over empty input emits exactly one row.
func TestAggGlobalEmptyPartitioned(t *testing.T) {
	scan := &Scan{Name: "t", Rows: nil, Sch: intSchema("v")}
	aggs := []plan.AggSpec{{Func: plan.AggCountStar, Name: "c"}}
	res, _ := runParallel(NewHashAgg("agg", scan, nil, aggs, intSchema("c")), 8)
	if len(res) != 1 {
		t.Fatalf("global agg over empty input emitted %d rows, want 1", len(res))
	}
	if c, _ := res[0][0].AsInt(); c != 0 {
		t.Fatalf("count = %d, want 0", c)
	}
}

// TestDistinctPartitionDeterminism checks global dedup across partitions:
// equal tuples always route to the same partition, so per-partition seen
// sets are globally exact at every fan-out.
func TestDistinctPartitionDeterminism(t *testing.T) {
	const n = 4000
	rows := make([]types.Tuple, n)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i % 173))}
	}
	var want []string
	for _, p := range []int{1, 2, 4, 8} {
		scan := &Scan{Name: "t", Rows: rows, Sch: intSchema("a")}
		d := &Distinct{Name: "d", Child: scan,
			Point: &Point{Name: "d", Bank: NewFilterBank(), Stateful: true, KeyCols: []int{0}, EqIDs: []int{-1}, StateEqIDs: []int{-1}, DomainDistinct: []float64{0}}}
		res, _ := runParallel(d, p)
		got := rowStrings(res)
		if p == 1 {
			want = got
			if len(want) != 173 {
				t.Fatalf("baseline distinct = %d, want 173", len(want))
			}
			continue
		}
		sameRows(t, fmt.Sprintf("distinct P=%d", p), want, got)
		if d.Point.StoredRows() != 173 {
			t.Fatalf("distinct P=%d stored %d, want 173", p, d.Point.StoredRows())
		}
		var iterSeen int
		d.Point.IterState(func(types.Tuple) bool { iterSeen++; return true })
		if iterSeen != 173 {
			t.Fatalf("distinct P=%d state iter saw %d, want 173", p, iterSeen)
		}
	}
}

// waitGoroutines polls until the live goroutine count drops back to the
// baseline (small slack for runtime helpers) or the deadline passes.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJoinCancellationExactStats cancels a high-fan-out join mid-stream,
// drains what was already emitted, and asserts (a) every join goroutine
// exits — no leak — and (b) the Out counters equal exactly the tuples that
// were delivered, which holds only because Out is counted per flushed
// batch at the send site.
func TestJoinCancellationExactStats(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const n = 20000
	lrows := make([]types.Tuple, n)
	rrows := make([]types.Tuple, n)
	for i := 0; i < n; i++ {
		lrows[i] = types.Tuple{types.Int(int64(i % 50)), types.Int(int64(i))}
		rrows[i] = types.Tuple{types.Int(int64(i % 50)), types.Int(int64(i))}
	}
	j := buildJoin(lrows, rrows) // 50 keys × 400×400 pairs: far more than the test drains
	reg := stats.NewRegistry()
	ctx := NewContext(reg, nil)
	ctx.Parallelism = 4
	out := j.Start(ctx)

	drained := int64(0)
	got := 0
	for b := range out {
		drained += int64(b.Len())
		got++
		if got == 3 {
			ctx.Cancel()
		}
		PutBatch(b)
	}
	waitGoroutines(t, baseline)

	var emitted int64
	for _, op := range reg.Ops() {
		if op.Class == "join" {
			emitted += op.Out.Load()
		}
	}
	if emitted != drained {
		t.Fatalf("join Out counters = %d, drained %d: counters must match delivered tuples exactly",
			emitted, drained)
	}
	if drained == 0 {
		t.Fatal("nothing drained — test is vacuous")
	}
}

// TestAggCancellationExactStats is the same property for the aggregation's
// emission phase (the pre-fix code flushed Out before the final send).
func TestAggCancellationExactStats(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const n = 20000
	rows := make([]types.Tuple, n)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i)), types.Int(int64(i))} // n groups: many output batches
	}
	scan := &Scan{Name: "t", Rows: rows, Sch: intSchema("g", "v")}
	gb := []expr.Expr{&expr.ColRef{Idx: 0, Col: types.Column{Name: "g", Kind: types.KindInt}}}
	aggs := []plan.AggSpec{{Func: plan.AggCountStar, Name: "c"}}
	h := NewHashAgg("agg", scan, gb, aggs, intSchema("g", "c"))

	reg := stats.NewRegistry()
	ctx := NewContext(reg, nil)
	ctx.Parallelism = 4
	out := h.Start(ctx)

	drained := int64(0)
	got := 0
	for b := range out {
		drained += int64(b.Len())
		got++
		if got == 2 {
			ctx.Cancel()
		}
		PutBatch(b)
	}
	waitGoroutines(t, baseline)

	var emitted int64
	for _, op := range reg.Ops() {
		if op.Class == "agg" {
			emitted += op.Out.Load()
		}
	}
	if emitted != drained {
		t.Fatalf("agg Out counter = %d, drained %d: counters must match delivered tuples exactly",
			emitted, drained)
	}
	if drained == 0 || drained >= n {
		t.Fatalf("drained %d of %d — cancellation did not interrupt emission", drained, n)
	}
}

// TestAggCancelMidRoutingDoesNotPublishState cancels an aggregation while
// its input is still streaming and asserts the AIP point is never marked
// Done: partial group state must not be published as a completed input's
// summary (a filter built from it would have false negatives).
func TestAggCancelMidRoutingDoesNotPublishState(t *testing.T) {
	baseline := runtime.NumGoroutine()
	rows := make([]types.Tuple, 100000)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i)), types.Int(int64(i))}
	}
	// Pace the scan so cancellation reliably lands mid-stream.
	scan := &Scan{Name: "t", Rows: rows, Sch: intSchema("g", "v"),
		Delay: &DelayConfig{EveryN: 256, Pause: time.Millisecond}}
	gb := []expr.Expr{&expr.ColRef{Idx: 0, Col: types.Column{Name: "g", Kind: types.KindInt}}}
	aggs := []plan.AggSpec{{Func: plan.AggCountStar, Name: "c"}}
	h := NewHashAgg("agg", scan, gb, aggs, intSchema("g", "c"))
	h.Point = &Point{Name: "agg", Bank: NewFilterBank(), Stateful: true, KeyCols: []int{0},
		EqIDs: []int{0, -1}, StateEqIDs: []int{0}, DomainDistinct: []float64{0}}

	ctx := NewContext(stats.NewRegistry(), nil)
	ctx.Parallelism = 4
	out := h.Start(ctx)
	time.Sleep(5 * time.Millisecond) // let some batches route
	ctx.Cancel()
	for b := range out {
		PutBatch(b)
	}
	waitGoroutines(t, baseline)
	if h.Point.Done() {
		t.Fatal("cancelled aggregation must not mark its point Done: state is partial")
	}
	if h.Point.Received() == 0 {
		t.Fatal("nothing routed before cancel — test is vacuous")
	}
}

// TestDistinctCancellationNoLeak cancels a partitioned distinct mid-stream
// and asserts all workers and the router exit.
func TestDistinctCancellationNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const n = 50000
	rows := make([]types.Tuple, n)
	for i := range rows {
		rows[i] = types.Tuple{types.Int(int64(i))}
	}
	scan := &Scan{Name: "t", Rows: rows, Sch: intSchema("a")}
	d := &Distinct{Name: "d", Child: scan}
	reg := stats.NewRegistry()
	ctx := NewContext(reg, nil)
	ctx.Parallelism = 4
	out := d.Start(ctx)

	drained := int64(0)
	got := 0
	for b := range out {
		drained += int64(b.Len())
		got++
		if got == 2 {
			ctx.Cancel()
		}
		PutBatch(b)
	}
	waitGoroutines(t, baseline)

	var emitted int64
	for _, op := range reg.Ops() {
		if op.Class == "distinct" {
			emitted += op.Out.Load()
		}
	}
	if emitted != drained {
		t.Fatalf("distinct Out counter = %d, drained %d", emitted, drained)
	}
}

// TestContextPartitionRounding pins the Parallelism-to-partition mapping:
// powers of two pass through, other values round down, and the cap holds.
func TestContextPartitionRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 2}, {4, 4}, {7, 4}, {8, 8}, {63, 32},
		{MaxPartitions, MaxPartitions}, {MaxPartitions + 100, MaxPartitions},
	}
	for _, c := range cases {
		ctx := NewContext(stats.NewRegistry(), nil)
		ctx.Parallelism = c.in
		if got := ctx.partitions(); got != c.want {
			t.Fatalf("partitions(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	// Unset falls back to GOMAXPROCS, still a power of two.
	ctx := NewContext(stats.NewRegistry(), nil)
	if p := ctx.partitions(); p < 1 || p&(p-1) != 0 {
		t.Fatalf("default partitions = %d, want a positive power of two", p)
	}
	// The cardinality clamp halves the fan-out for small estimates and
	// leaves estimate-free plans (est <= 0) at the requested fan-out.
	clamps := []struct {
		p    int
		est  float64
		want int
	}{
		{8, 0, 8}, {8, -1, 8},
		{8, 100, 1}, {8, 2 * minPartitionRows, 2},
		{8, 8 * minPartitionRows, 8}, {1, 5, 1},
	}
	for _, c := range clamps {
		if got := clampPartitions(c.p, c.est); got != c.want {
			t.Fatalf("clampPartitions(%d, %.0f) = %d, want %d", c.p, c.est, got, c.want)
		}
	}
}

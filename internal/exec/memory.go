package exec

import (
	"fmt"
	"os"
)

// Memory accounting and the spill-file lifecycle for one query.
//
// Every partitioned stateful operator accounts its state bytes — KeyTable
// footprint, buffered tuple arenas, aggregation accumulators — through
// Context.account as it grows and shrinks, unconditionally (an unbounded
// run pays the same few atomic adds, and its measured peak is what sizing
// tools like sipbench -spillbench derive caps from). Under a positive
// MemBudget the operators additionally consult memPressure after each batch
// of growth and run the bucket-discard eviction when it fires.

// account adds delta (possibly negative) to the query's tracked state bytes
// and maintains the high-water mark.
func (c *Context) account(delta int64) {
	cur := c.tracked.Add(delta)
	for {
		peak := c.trackedPeak.Load()
		if cur <= peak || c.trackedPeak.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// TrackedBytes returns the currently accounted operator-state bytes.
func (c *Context) TrackedBytes() int64 { return c.tracked.Load() }

// PeakTrackedBytes returns the high-water mark of accounted state bytes.
func (c *Context) PeakTrackedBytes() int64 { return c.trackedPeak.Load() }

// SpillBytes returns the total bytes written to spill runs.
func (c *Context) SpillBytes() int64 { return c.spillBytes.Load() }

// SpillEvents returns the number of bucket-discard evictions.
func (c *Context) SpillEvents() int64 { return c.spillEvents.Load() }

// noteSpill records one eviction (or merge write-back) of n run bytes.
func (c *Context) noteSpill(n int64) {
	c.spillBytes.Add(n)
	c.spillEvents.Add(1)
}

// addMemParts registers n budget-accounted partitions: every stateful
// operator (join, aggregation, distinct) declares its partition count at
// start so memPressure can size the eviction floor against the plan's
// total number of state holders, not just one operator's.
func (c *Context) addMemParts(n int) { c.memParts.Add(int64(n)) }

// memPressure reports whether a partition holding partBytes of state should
// evict: the query is over budget AND this partition holds a meaningful
// share. The floor — budget/(2·totalParts), over every registered stateful
// partition in the plan — is pigeonhole-sound: if every partition were
// under it, the query would be under half its budget, so whenever tracked
// exceeds the budget at least one partition qualifies, and tiny partitions
// never thrash through pointless evictions. parts is the caller's own
// count, a fallback for contexts whose operators never registered.
func (c *Context) memPressure(partBytes int64, parts int) bool {
	b := c.MemBudget
	if b <= 0 || c.tracked.Load() <= b {
		return false
	}
	if total := c.memParts.Load(); total > int64(parts) {
		parts = int(total)
	}
	floor := b / int64(2*parts)
	return partBytes >= floor
}

// mergeShare is the per-pass state allowance of a spill merge: budget/4,
// leaving room for the partitions still buffering plus the merge table
// itself.
func (c *Context) mergeShare() int64 {
	if c.MemBudget <= 0 {
		return 1 << 62
	}
	s := c.MemBudget / 4
	if s < 1 {
		s = 1
	}
	return s
}

// SpillDir returns the query's spill directory, creating it on first use.
func (c *Context) SpillDir() (string, error) {
	c.spillMu.Lock()
	defer c.spillMu.Unlock()
	if c.spillDir == "" {
		dir, err := os.MkdirTemp("", "sipspill-")
		if err != nil {
			return "", fmt.Errorf("exec: spill dir: %w", err)
		}
		c.spillDir = dir
	}
	return c.spillDir, nil
}

// Cleanup removes the query's spill directory and everything in it. Call
// after every operator goroutine has exited; safe to call when nothing
// spilled, and more than once.
func (c *Context) Cleanup() {
	c.spillMu.Lock()
	dir := c.spillDir
	c.spillDir = ""
	c.spillMu.Unlock()
	if dir != "" {
		os.RemoveAll(dir)
	}
}

// BudgetError is the typed failure of a query whose MemBudget is too small
// for the spill merge phase to converge: even the maximum sub-bucket
// fan-out cannot fit one merge pass of Op's state into the budget's merge
// share. The query fails promptly with this error instead of thrashing.
type BudgetError struct {
	Op     string // operator whose merge could not fit
	Budget int64  // the configured MemBudget
	Need   int64  // smallest budget the merge would have accepted
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("exec: memory budget %d B too small for %s spill merge (need ≥ %d B)",
		e.Budget, e.Op, e.Need)
}

// PanicError wraps a panic recovered inside a query's operator goroutines
// or scheduler workers: the query fails with this typed error while the
// process (and every other in-flight query) keeps running.
type PanicError struct {
	Val   any    // the recovered panic value
	Stack []byte // the panicking goroutine's stack
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: query panicked: %v", e.Val)
}

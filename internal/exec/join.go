package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/stats"
	"repro/internal/types"
)

// HashJoin is the pipelined (symmetric) hash join of the paper: each input
// is consumed by its own goroutine; an arriving tuple is inserted into its
// side's hash table and immediately probed against the other side's table,
// so results stream as soon as both matching tuples have arrived,
// independent of input order or delays.
//
// Concurrency: the two sides use independent locks so that a fast input
// never serializes against a slow one (Tukwila's per-input threads are
// likewise independent), and each lock is taken once per batch, not once
// per tuple. Exactly-once match emission is guaranteed by insertion
// sequence numbers: every stored tuple takes a ticket from a shared counter
// inside its side's critical section, and a probing tuple emits only the
// matches whose ticket is smaller than its own. For any result pair, the
// later-ticketed tuple is guaranteed to see the earlier one in its probe
// (the earlier insert's critical section completed before the later probe
// could acquire that side's lock — otherwise the ticket order would be
// reversed), and the earlier tuple — whether or not it observes the later
// one — never emits it. This argument is per tuple pair, so batching the
// critical sections does not change it.
//
// It also implements the "short-circuit" optimization the paper describes
// in §VI-A: once one input completes, the other side stops buffering,
// since nothing will ever probe its table.
type HashJoin struct {
	Name        string
	Left, Right Op
	LKeys       []int     // equi-key columns of the left schema
	RKeys       []int     // equi-key columns of the right schema
	Residual    expr.Expr // evaluated over the concatenated schema, may be nil

	// LPoint and RPoint are the AIP injection points for the two inputs.
	LPoint, RPoint *Point

	sch *types.Schema
}

// NewHashJoin wires up the join.
func NewHashJoin(name string, left, right Op, lkeys, rkeys []int, residual expr.Expr) *HashJoin {
	return &HashJoin{
		Name: name, Left: left, Right: right,
		LKeys: lkeys, RKeys: rkeys, Residual: residual,
		sch: left.Schema().Concat(right.Schema()),
	}
}

// Schema returns the concatenated output schema.
func (j *HashJoin) Schema() *types.Schema { return j.sch }

// joinEntry is one stored tuple with its insertion ticket, chained to the
// next-older tuple of the same key.
type joinEntry struct {
	t    types.Tuple
	seq  uint64
	next int32 // 1-based index of the next entry in the chain, 0 = end
}

// joinTable is the open-addressing hash table of one join side: a KeyTable
// maps the key hash + bytes to a dense id, heads[id] starts the per-key
// chain through entries. Inserting a tuple costs no allocation beyond
// amortized slice growth — in particular no string key and no per-key
// bucket slice.
type joinTable struct {
	idx     types.KeyTable
	heads   []int32 // per key id: 1-based index of the newest entry
	entries []joinEntry
}

// reserve pre-sizes the table for about n stored tuples (the optimizer's
// cardinality estimate), avoiding most doubling-growth garbage on the
// insert path. n = 0 leaves the lazy defaults.
func (jt *joinTable) reserve(n int) {
	if n <= 0 {
		return
	}
	const maxHint = 1 << 20 // cap mis-estimates: 1M entries ≈ 40MB
	if n > maxHint {
		n = maxHint
	}
	jt.idx = *types.NewKeyTable(n)
	jt.heads = make([]int32, 0, n)
	jt.entries = make([]joinEntry, 0, n)
}

func (jt *joinTable) insert(h uint64, key []byte, t types.Tuple, seq uint64) {
	id, added := jt.idx.Insert(h, key)
	if added {
		jt.heads = append(jt.heads, 0)
	}
	jt.entries = append(jt.entries, joinEntry{t: t, seq: seq, next: jt.heads[id]})
	jt.heads[id] = int32(len(jt.entries))
}

// probe appends to dst every stored tuple matching (h, key) whose ticket is
// smaller than maxSeq, and returns dst.
func (jt *joinTable) probe(h uint64, key []byte, maxSeq uint64, dst []types.Tuple) []types.Tuple {
	id := jt.idx.Lookup(h, key)
	if id < 0 {
		return dst
	}
	for e := jt.heads[id]; e != 0; {
		ent := &jt.entries[e-1]
		if ent.seq < maxSeq {
			dst = append(dst, ent.t)
		}
		e = ent.next
	}
	return dst
}

// joinSide is the per-input state of the symmetric join.
type joinSide struct {
	mu    sync.Mutex
	keys  []int
	table joinTable
	done  atomic.Bool
	point *Point
}

// Start launches one goroutine per input; each emits its own matches, so
// with Go's scheduler the operator behaves like Tukwila's three-thread
// join with the output thread folded into the producers.
func (j *HashJoin) Start(ctx *Context) <-chan Batch {
	lin := j.Left.Start(ctx)
	rin := j.Right.Start(ctx)
	out := make(chan Batch, 4)

	lop := ctx.Stats.NewOp("join:" + j.Name + ".left")
	rop := ctx.Stats.NewOp("join:" + j.Name + ".right")

	var ticket atomic.Uint64
	left := &joinSide{keys: j.LKeys, point: j.LPoint}
	right := &joinSide{keys: j.RKeys, point: j.RPoint}
	if j.LPoint != nil {
		left.table.reserve(int(j.LPoint.EstRows))
	}
	if j.RPoint != nil {
		right.table.reserve(int(j.RPoint.EstRows))
	}

	var wg sync.WaitGroup
	wg.Add(2)

	// consume processes one input batch-at-a-time in four phases:
	//  1. lock-free: probe AIP filters, hash each surviving tuple's key once
	//  2. one critical section on the own side: ticket + insert the batch
	//  3. one critical section on the other side: probe the batch
	//  4. lock-free: materialize result rows (arena-backed) and emit
	// Stats are accumulated in locals and flushed once per batch.
	consume := func(in <-chan Batch, own, other *joinSide, ownIsLeft bool, op *stats.OpStats) {
		defer wg.Done()
		var (
			keyHasher  types.Hasher // own-key encoding, hashed once per tuple
			bankHasher types.Hasher // scratch for filters over other columns
			kept       []types.Tuple
			hashes     []uint64
			keyOffs    []int32 // per kept tuple: start of its key in keyBuf
			keyBuf     []byte
			seqs       []uint64
			matches    []types.Tuple
			matchEnds  []int32 // per kept tuple: end of its range in matches
			arena      rowArena
		)
		for b := range in {
			nIn := int64(len(b))
			var pruned int64
			kept = kept[:0]
			hashes = hashes[:0]
			keyOffs = keyOffs[:0]
			keyBuf = keyBuf[:0]
			seqs = seqs[:0]

			// Phase 1: AIP filter probes and hash-once key encoding.
			for _, t := range b {
				h, key := keyHasher.KeyCols(t, own.keys)
				if own.point != nil && !own.point.Bank.ProbeHashed(t, own.keys, h, key, &bankHasher) {
					pruned++
					continue
				}
				kept = append(kept, t)
				hashes = append(hashes, h)
				keyOffs = append(keyOffs, int32(len(keyBuf)))
				keyBuf = append(keyBuf, key...)
			}
			keyOffs = append(keyOffs, int32(len(keyBuf)))
			keyAt := func(i int) []byte { return keyBuf[keyOffs[i]:keyOffs[i+1]] }

			// Phase 2: insert the batch into the own table (unless the other
			// side already finished: short-circuit) and take tickets.
			var stored, storedBytes int64
			own.mu.Lock()
			// One ticket-range reservation per batch: the whole contiguous
			// block is fetched inside this critical section, so the
			// exactly-once ordering argument applies to each ticket in it.
			base := ticket.Add(uint64(len(kept))) - uint64(len(kept))
			for i, t := range kept {
				seqs = append(seqs, base+uint64(i)+1)
				if !other.done.Load() {
					own.table.insert(hashes[i], keyAt(i), t, seqs[i])
					stored++
					storedBytes += int64(t.MemSize())
				} else if own.point != nil {
					// The buffered state no longer reflects the full input;
					// Cost-Based AIP must not build a set from it.
					own.point.stateIncomplete.Store(true)
				}
			}
			own.mu.Unlock()

			// The working AIP set covers every tuple that passed the
			// filters, whether or not it was buffered (Feed-Forward
			// publishes it as a complete summary of this input).
			if own.point != nil {
				own.point.received.Add(nIn)
				own.point.stored.Add(stored)
				if own.point.OnStore != nil {
					for _, t := range kept {
						own.point.OnStore(t)
					}
				}
			}

			// Phase 3: probe the other side for the whole batch.
			matches = matches[:0]
			matchEnds = matchEnds[:0]
			other.mu.Lock()
			for i := range kept {
				matches = other.table.probe(hashes[i], keyAt(i), seqs[i], matches)
				matchEnds = append(matchEnds, int32(len(matches)))
			}
			other.mu.Unlock()

			// Phase 4: materialize and emit earlier-ticket matches.
			var emitted int64
			outBatch := GetBatch()
			start := int32(0)
			for i, t := range kept {
				for _, m := range matches[start:matchEnds[i]] {
					var row types.Tuple
					if ownIsLeft {
						row = arena.concat(t, m)
					} else {
						row = arena.concat(m, t)
					}
					if j.Residual != nil && !j.Residual.Eval(row).Truth() {
						arena.release(row)
						continue
					}
					emitted++
					outBatch = append(outBatch, row)
					if len(outBatch) == BatchSize {
						if !send(ctx, out, outBatch) {
							return
						}
						outBatch = GetBatch()
					}
				}
				start = matchEnds[i]
			}

			// Batch-grained stats flush.
			op.In.Add(nIn)
			op.Pruned.Add(pruned)
			op.Out.Add(emitted)
			op.StateRows.Add(stored)
			op.StateBytes.Add(storedBytes)

			if len(outBatch) == 0 {
				PutBatch(outBatch)
			} else if !send(ctx, out, outBatch) {
				return
			}
			PutBatch(b)
		}
		// Input exhausted: let the other side short-circuit, then expose
		// this side's state to the AIP runtime.
		own.mu.Lock()
		own.done.Store(true)
		own.mu.Unlock()
		if own.point != nil {
			own.point.setStateIter(func(emit func(types.Tuple) bool) {
				own.mu.Lock()
				defer own.mu.Unlock()
				for i := range own.table.entries {
					if !emit(own.table.entries[i].t) {
						return
					}
				}
			})
			own.point.done.Store(true)
			ctx.pointDone(own.point)
		}
	}

	go consume(lin, left, right, true, lop)
	go consume(rin, right, left, false, rop)
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/stats"
	"repro/internal/types"
)

// HashJoin is the pipelined (symmetric) hash join of the paper: each input
// is consumed by its own goroutine; an arriving tuple is inserted into its
// side's hash table and immediately probed against the other side's table,
// so results stream as soon as both matching tuples have arrived,
// independent of input order or delays.
//
// Concurrency: the two sides use independent locks so that a fast input
// never serializes against a slow one (Tukwila's per-input threads are
// likewise independent). Exactly-once match emission is guaranteed by
// insertion sequence numbers: every stored tuple takes a ticket from a
// shared counter inside its side's critical section, and a probing tuple
// emits only the matches whose ticket is smaller than its own. For any
// result pair, the later-inserted tuple is guaranteed to see the earlier
// one in its probe (the earlier insert completed before the later probe
// can acquire that side's lock), and the earlier tuple — whether or not it
// observes the later one — never emits it.
//
// It also implements the "short-circuit" optimization the paper describes
// in §VI-A: once one input completes, the other side stops buffering,
// since nothing will ever probe its table.
type HashJoin struct {
	Name        string
	Left, Right Op
	LKeys       []int     // equi-key columns of the left schema
	RKeys       []int     // equi-key columns of the right schema
	Residual    expr.Expr // evaluated over the concatenated schema, may be nil

	// LPoint and RPoint are the AIP injection points for the two inputs.
	LPoint, RPoint *Point

	sch *types.Schema
}

// NewHashJoin wires up the join.
func NewHashJoin(name string, left, right Op, lkeys, rkeys []int, residual expr.Expr) *HashJoin {
	return &HashJoin{
		Name: name, Left: left, Right: right,
		LKeys: lkeys, RKeys: rkeys, Residual: residual,
		sch: left.Schema().Concat(right.Schema()),
	}
}

// Schema returns the concatenated output schema.
func (j *HashJoin) Schema() *types.Schema { return j.sch }

// seqTuple is one stored tuple with its insertion ticket.
type seqTuple struct {
	t   types.Tuple
	seq uint64
}

// joinSide is the per-input state of the symmetric join.
type joinSide struct {
	mu    sync.Mutex
	keys  []int
	table map[string][]seqTuple
	done  atomic.Bool
	point *Point
}

// Start launches one goroutine per input; each emits its own matches, so
// with Go's scheduler the operator behaves like Tukwila's three-thread
// join with the output thread folded into the producers.
func (j *HashJoin) Start(ctx *Context) <-chan Batch {
	lin := j.Left.Start(ctx)
	rin := j.Right.Start(ctx)
	out := make(chan Batch, 4)

	lop := ctx.Stats.NewOp("join:" + j.Name + ".left")
	rop := ctx.Stats.NewOp("join:" + j.Name + ".right")

	var ticket atomic.Uint64
	left := &joinSide{keys: j.LKeys, table: make(map[string][]seqTuple), point: j.LPoint}
	right := &joinSide{keys: j.RKeys, table: make(map[string][]seqTuple), point: j.RPoint}

	var wg sync.WaitGroup
	wg.Add(2)

	consume := func(in <-chan Batch, own, other *joinSide, ownIsLeft bool, op *stats.OpStats) {
		defer wg.Done()
		var scratch []byte
		var matchBuf []seqTuple
		for b := range in {
			outBatch := make(Batch, 0, BatchSize)
			for _, t := range b {
				op.In.Inc()
				if own.point != nil {
					own.point.received.Add(1)
					var keep bool
					keep, scratch = own.point.Bank.Probe(t, scratch)
					if !keep {
						op.Pruned.Inc()
						continue
					}
				}
				scratch = scratch[:0]
				scratch = t.AppendKeyCols(scratch, own.keys)
				key := string(scratch)

				// Insert into own table (unless the other side already
				// finished: short-circuit) and take a ticket.
				own.mu.Lock()
				mySeq := ticket.Add(1)
				if !other.done.Load() {
					own.table[key] = append(own.table[key], seqTuple{t: t, seq: mySeq})
					if own.point != nil {
						own.point.stored.Add(1)
					}
					op.StateRows.Inc()
					op.StateBytes.Add(int64(t.MemSize()))
				} else if own.point != nil {
					// The buffered state no longer reflects the full
					// input; Cost-Based AIP must not build a set from it.
					own.point.stateIncomplete.Store(true)
				}
				own.mu.Unlock()

				// The working AIP set covers every tuple that passed the
				// filters, whether or not it was buffered (Feed-Forward
				// publishes it as a complete summary of this input).
				if own.point != nil && own.point.OnStore != nil {
					own.point.OnStore(t)
				}

				// Probe the other side; emit only earlier-ticket matches.
				other.mu.Lock()
				bucket := other.table[key]
				matchBuf = matchBuf[:0]
				for _, m := range bucket {
					if m.seq < mySeq {
						matchBuf = append(matchBuf, m)
					}
				}
				other.mu.Unlock()

				for _, m := range matchBuf {
					var row types.Tuple
					if ownIsLeft {
						row = types.Concat(t, m.t)
					} else {
						row = types.Concat(m.t, t)
					}
					if j.Residual != nil && !j.Residual.Eval(row).Truth() {
						continue
					}
					op.Out.Inc()
					outBatch = append(outBatch, row)
					if len(outBatch) == BatchSize {
						if !send(ctx, out, outBatch) {
							return
						}
						outBatch = make(Batch, 0, BatchSize)
					}
				}
			}
			if !send(ctx, out, outBatch) {
				return
			}
		}
		// Input exhausted: let the other side short-circuit, then expose
		// this side's state to the AIP runtime.
		own.mu.Lock()
		own.done.Store(true)
		own.mu.Unlock()
		if own.point != nil {
			own.point.setStateIter(func(emit func(types.Tuple) bool) {
				own.mu.Lock()
				defer own.mu.Unlock()
				for _, bucket := range own.table {
					for _, m := range bucket {
						if !emit(m.t) {
							return
						}
					}
				}
			})
			own.point.done.Store(true)
			ctx.pointDone(own.point)
		}
	}

	go consume(lin, left, right, true, lop)
	go consume(rin, right, left, false, rop)
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

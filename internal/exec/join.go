package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/stats"
	"repro/internal/types"
)

// HashJoin is the pipelined (symmetric) hash join of the paper: an arriving
// tuple is inserted into its side's hash table and immediately probed
// against the other side's table, so results stream as soon as both
// matching tuples have arrived, independent of input order or delays.
//
// Concurrency: the operator is radix partitioned (see the package comment).
// One router goroutine per input performs the lock-free phase — AIP filter
// probe and hash-once key encoding — and scatters surviving tuples to P
// partitions by the top bits of their key hash; tuples with equal keys land
// in the same partition. Each partition owns an independent pair of tables
// and a ticket counter, and is driven by exactly one worker goroutine, so
// inserts and probes for different partitions never contend and a single
// join saturates all cores rather than two.
//
// Exactly-once match emission holds per partition: every buffered tuple
// takes a ticket from its partition's counter, and a probing tuple emits
// only the matches whose ticket is smaller than its own. Because one worker
// serializes each partition, for any result pair the later-ticketed tuple
// is guaranteed to see the earlier one in its probe, and the earlier tuple
// never emits the later one. Tuples of different partitions never match
// (different key hashes), so the argument composes across partitions.
//
// It also implements the "short-circuit" optimization the paper describes
// in §VI-A: once one input completes — its router has finished and every
// scattered message has been drained, i.e. its last probe has happened —
// the other side stops buffering, since nothing will ever probe its table.
type HashJoin struct {
	Name        string
	Left, Right Op
	LKeys       []int     // equi-key columns of the left schema
	RKeys       []int     // equi-key columns of the right schema
	Residual    expr.Expr // evaluated over the concatenated schema, may be nil

	// LPoint and RPoint are the AIP injection points for the two inputs.
	LPoint, RPoint *Point

	sch *types.Schema
}

// NewHashJoin wires up the join.
func NewHashJoin(name string, left, right Op, lkeys, rkeys []int, residual expr.Expr) *HashJoin {
	return &HashJoin{
		Name: name, Left: left, Right: right,
		LKeys: lkeys, RKeys: rkeys, Residual: residual,
		sch: left.Schema().Concat(right.Schema()),
	}
}

// Schema returns the concatenated output schema.
func (j *HashJoin) Schema() *types.Schema { return j.sch }

// joinEntry is one stored tuple with its insertion ticket, chained to the
// next-older tuple of the same key.
type joinEntry struct {
	t    types.Tuple
	seq  uint64
	next int32 // 1-based index of the next entry in the chain, 0 = end
}

// joinTable is the open-addressing hash table of one join side within one
// partition: a KeyTable maps the key hash + bytes to a dense id, heads[id]
// starts the per-key chain through entries. Inserting a tuple costs no
// allocation beyond amortized slice growth — in particular no string key
// and no per-key bucket slice.
type joinTable struct {
	idx      types.KeyTable
	heads    []int32 // per key id: 1-based index of the newest entry
	entries  []joinEntry
	tupBytes int64 // Σ MemSize of stored tuples, for state accounting
}

// reserve pre-sizes the table for about n stored tuples (the optimizer's
// cardinality estimate divided by the partition count), avoiding most
// doubling-growth garbage on the insert path. n <= 0 leaves the lazy
// defaults.
func (jt *joinTable) reserve(n int) {
	if n <= 0 {
		return
	}
	const maxHint = 1 << 20 // cap mis-estimates: 1M entries ≈ 40MB
	if n > maxHint {
		n = maxHint
	}
	jt.idx.Reserve(n)
	jt.heads = make([]int32, 0, n)
	jt.entries = make([]joinEntry, 0, n)
}

func (jt *joinTable) insert(h uint64, key []byte, t types.Tuple, seq uint64) {
	id, added := jt.idx.Insert(h, key)
	if added {
		jt.heads = append(jt.heads, 0)
	}
	jt.entries = append(jt.entries, joinEntry{t: t, seq: seq, next: jt.heads[id]})
	jt.heads[id] = int32(len(jt.entries))
	jt.tupBytes += int64(t.MemSize())
}

// insertBatch inserts a whole scatter with consecutive tickets starting at
// baseSeq+1, resolving the key ids through the KeyTable's prefetching batch
// kernel. ids/added are caller scratch of the scatter's length. Lanes are
// chained in lane order, which matches the id order InsertBatch assigns, so
// heads grows in lockstep with the dense id space.
func (jt *joinTable) insertBatch(sb *scatter, baseSeq uint64, ids []int32, added []bool) {
	jt.idx.InsertBatch(sb.hashes, sb.keys, sb.offs, ids, added)
	for i, t := range sb.tuples {
		id := ids[i]
		if added[i] {
			jt.heads = append(jt.heads, 0)
		}
		jt.entries = append(jt.entries, joinEntry{t: t, seq: baseSeq + uint64(i) + 1, next: jt.heads[id]})
		jt.heads[id] = int32(len(jt.entries))
		jt.tupBytes += int64(t.MemSize())
	}
}

// probe appends to dst every stored tuple matching (h, key) whose ticket is
// smaller than maxSeq, and returns dst.
func (jt *joinTable) probe(h uint64, key []byte, maxSeq uint64, dst []types.Tuple) []types.Tuple {
	return jt.probeID(jt.idx.Lookup(h, key), maxSeq, dst)
}

// probeID is probe for an already-resolved key id (LookupBatch output).
func (jt *joinTable) probeID(id int32, maxSeq uint64, dst []types.Tuple) []types.Tuple {
	if id < 0 {
		return dst
	}
	for e := jt.heads[id]; e != 0; {
		ent := &jt.entries[e-1]
		if ent.seq < maxSeq {
			dst = append(dst, ent.t)
		}
		e = ent.next
	}
	return dst
}

// joinInput is the side-level shared state of one join input.
type joinInput struct {
	side  int // 0 = left, 1 = right
	keys  []int
	point *Point
	op    *stats.OpStats

	// pending is 1 (the router's hold, released when the input channel
	// closes) plus the number of scattered messages not yet fully processed
	// by a worker. It reaches 0 exactly once, after the input's last probe.
	pending atomic.Int64
	// routed is set when the router consumed its whole input without being
	// cancelled; completion runs only for fully routed inputs.
	routed atomic.Bool
	// done is set by the completion step: nothing of this side will ever
	// probe again, so the other side may stop buffering (§VI-A).
	done atomic.Bool
}

// joinPart is one radix partition. Its tables, ticket counter, and spill
// state (the embedded joinCore) are owned exclusively by the worker
// goroutine draining in; single-owner processing replaces the per-side lock
// of the pre-partitioned engine.
type joinPart struct {
	in chan *scatter
	joinCore
}

// Start launches one router goroutine per input and one worker per
// partition; workers emit their own matches, so the operator behaves like
// Tukwila's multithreaded join with the output thread folded in.
func (j *HashJoin) Start(ctx *Context) <-chan Batch {
	lin := j.Left.Start(ctx)
	rin := j.Right.Start(ctx)
	out := make(chan Batch, ctx.pipeDepth())

	P := ctx.partitions()
	P = clampPartitions(P, pointEstRows(j.LPoint)+pointEstRows(j.RPoint))
	ctx.addMemParts(P)

	lop := ctx.Stats.NewOp("join:" + j.Name + ".left")
	rop := ctx.Stats.NewOp("join:" + j.Name + ".right")
	lop.SetPartitions(P)
	rop.SetPartitions(P)

	inputs := [2]*joinInput{
		{side: 0, keys: j.LKeys, point: j.LPoint, op: lop},
		{side: 1, keys: j.RKeys, point: j.RPoint, op: rop},
	}
	inputs[0].pending.Store(1)
	inputs[1].pending.Store(1)
	for _, in := range inputs {
		if in.point != nil {
			in.point.Op = in.op
		}
	}

	ops := [2]*stats.OpStats{lop, rop}
	parts := make([]*joinPart, P)
	partIns := make([]chan *scatter, P)
	for p := range parts {
		parts[p] = &joinPart{in: make(chan *scatter, ctx.pipeDepth())}
		partIns[p] = parts[p].in
		for s, in := range inputs {
			if in.point != nil {
				parts[p].tables[s].reserve(int(in.point.EstRows) / P)
			}
		}
		parts[p].initAccount(ctx, ops)
	}

	// finish marks one input complete: its state is immutable from here on
	// (all inserts happened before the pending counter reached zero), so the
	// AIP state iterator walks the partitions without locks.
	finish := func(own *joinInput) {
		own.done.Store(true)
		if own.point != nil {
			side := own.side
			own.point.setStateIter(func(emit func(types.Tuple) bool) {
				for _, pt := range parts {
					for i := range pt.tables[side].entries {
						if !emit(pt.tables[side].entries[i].t) {
							return
						}
					}
				}
			})
			own.point.done.Store(true)
			ctx.pointDone(own.point)
		}
	}

	// release drops one pending reference and runs completion when the
	// input's routing finished and its last scattered message is drained.
	release := func(own *joinInput) {
		if own.pending.Add(-1) == 0 && own.routed.Load() {
			finish(own)
		}
	}

	var routers atomic.Int32
	routers.Store(2)

	// router consumes one input batch-at-a-time: probes the AIP filters,
	// hashes each surviving tuple's key once, and scatters it to its
	// partition. Stats are accumulated in locals and flushed once per batch.
	router := func(in <-chan Batch, own *joinInput) {
		defer func() {
			if routers.Add(-1) == 0 {
				for _, pt := range parts {
					close(pt.in)
				}
			}
		}()
		var (
			sc   ProbeScratch // batch key hashing + AIP probing, hash-once
			keep = getSel()   // surviving selection when filters are attached
			pr   = newPartitionRouter(own.side, P, partIns)
		)
		defer func() { putSel(keep) }()
		for b := range in {
			sel := b.Live()
			nIn := int64(len(sel))
			// Probe the AIP filters batch-at-a-time; ProbeBatch fills the
			// scratch's hash/key arrays for every live lane either way, so
			// routing below reuses the hash-once work.
			kept := sel
			if own.point != nil && own.point.Bank.Len() > 0 {
				kept = own.point.Bank.ProbeBatch(b.Tuples, own.keys, sel, keep[:0], &sc)
				keep = kept
			} else {
				sc.compute(b.Tuples, own.keys, sel)
			}
			for _, l := range kept {
				t := b.Tuples[l]
				pr.route(t, sc.hashes[l], sc.key(l))
				// The working AIP set covers every tuple that passed the
				// filters, whether or not a worker buffers it (Feed-Forward
				// publishes it as a complete summary of this input). The
				// router is the point's only OnStore caller, so it owns
				// working-set slot 0.
				if own.point != nil && own.point.OnStore != nil {
					own.point.OnStore(0, t)
				}
			}
			own.op.In.Add(nIn)
			own.op.Pruned.Add(nIn - int64(len(kept)))
			if own.point != nil {
				own.point.received.Add(nIn)
			}
			PutBatch(b)
			// Flush this batch's routed tuples to their partition workers,
			// counting each message in-flight for the completion protocol.
			if !pr.flush(ctx,
				func() { own.pending.Add(1) },
				func() { own.pending.Add(-1) }) {
				return
			}
		}
		// The input channel closing means either a fully consumed input or
		// an upstream cancellation truncating the stream; only the former
		// is a completed input whose state may be published.
		select {
		case <-ctx.Cancelled():
			return
		default:
		}
		// Input exhausted: release the router's hold; completion runs here
		// or on whichever worker drains the last message.
		own.routed.Store(true)
		release(own)
	}

	var workerWg sync.WaitGroup
	workerWg.Add(P)

	// worker owns one partition. For each scattered message it inserts the
	// batch into the sending side's table (unless the other input already
	// completed: short-circuit) with fresh tickets, probes the other side's
	// table, and materializes earlier-ticket matches into arena-backed rows.
	// The residual predicate is applied batch-at-a-time over the
	// materialized rows via the vectorized EvalBool, marking survivors with
	// a selection vector; rejected rows stay dead in their arena block
	// until the batch is recycled downstream. Each worker compiles its own
	// residual (Compiled carries scratch and is not goroutine-safe).
	worker := func(pidx int) {
		defer workerWg.Done()
		pt := parts[pidx]
		var (
			matches []types.Tuple
			arena   rowArena
			resC    = expr.Compile(j.Residual)
			ids     []int32 // batch kernel scratch: key ids per scatter lane
			added   []bool
		)
		for sb := range pt.in {
			own, other := inputs[sb.side], inputs[1-sb.side]
			ownT, otherT := &pt.tables[sb.side], &pt.tables[1-sb.side]
			n := len(sb.tuples)
			base := pt.ticket
			pt.ticket += uint64(n)
			ids = growI32(ids, n)

			var stored, storedBytes int64
			preBytes := ownT.memBytes()
			preTup := ownT.tupBytes
			if !other.done.Load() {
				if cap(added) < n {
					added = make([]bool, n)
				}
				ownT.insertBatch(sb, base, ids, added[:n])
				stored = int64(n)
				storedBytes = ownT.tupBytes - preTup
			} else if pt.run != nil {
				// The partition has spilled: evicted other-side entries may
				// still match these arrivals, so instead of the plain §VI-A
				// drop they go to the run under the current epoch.
				if err := pt.spillArrivals(sb, base); err != nil {
					ctx.CancelCause(err)
					return
				}
			} else if own.point != nil {
				// The buffered state no longer reflects the full input;
				// Cost-Based AIP must not build a set from it.
				own.point.stateIncomplete.Store(true)
			}
			if delta := ownT.memBytes() - preBytes; delta != 0 {
				ctx.account(delta)
				own.op.StateBytes.Add(delta)
				pt.bytes += delta
			}

			// Probe the other side's partition table and emit. Out is
			// counted per flushed batch at the send site, so cancelled
			// queries report exactly the tuples that were delivered.
			outBatch := GetBatch()
			// emit runs the residual over the accumulated candidate rows
			// (one EvalBool per batch instead of one Eval per row) and
			// sends the surviving selection.
			emit := func() bool {
				if len(outBatch.Tuples) == 0 {
					return true
				}
				if resC != nil {
					outBatch.Sel = resC.EvalBool(outBatch.Tuples, identSel(len(outBatch.Tuples)), getSel())
					if len(outBatch.Sel) == 0 {
						PutBatch(outBatch)
						outBatch = GetBatch()
						return true
					}
				}
				n := int64(outBatch.Len())
				if !send(ctx, out, outBatch) {
					return false
				}
				own.op.Out.Add(n)
				outBatch = GetBatch()
				return true
			}
			ownIsLeft := sb.side == 0
			// Resolve every probe key's id in one prefetching pass over the
			// other side's table, then walk the match chains per lane.
			otherT.idx.LookupBatch(sb.hashes, sb.keys, sb.offs, ids)
			for i, t := range sb.tuples {
				matches = otherT.probeID(ids[i], base+uint64(i)+1, matches[:0])
				for _, m := range matches {
					var row types.Tuple
					if ownIsLeft {
						row = arena.concat(t, m)
					} else {
						row = arena.concat(m, t)
					}
					outBatch.Tuples = append(outBatch.Tuples, row)
					if len(outBatch.Tuples) == BatchSize {
						if !emit() {
							return
						}
					}
				}
			}
			if !emit() {
				return
			}
			PutBatch(outBatch)

			// Pressure check runs after the probe: evicting first would wipe
			// the co-resident matches this batch is entitled to emit (the
			// merge skips same-epoch pairs, so they would be lost for good).
			if ctx.memPressure(pt.bytes, P) {
				if err := pt.evict(ctx, ops, [2]*Point{j.LPoint, j.RPoint}); err != nil {
					ctx.CancelCause(err)
					return
				}
			}

			// Batch-grained stats flush, folded into the side totals and the
			// per-partition skew counters. StateBytes was already moved by
			// the accounting delta above.
			own.op.StateRows.Add(stored)
			pp := own.op.Part(pidx)
			pp.Rows.Add(stored)
			pp.Bytes.Add(storedBytes)
			if own.point != nil {
				own.point.stored.Add(stored)
			}
			putScatter(sb)
			release(own)
		}
	}

	ctx.Spawn(func() { router(lin, inputs[0]) })
	ctx.Spawn(func() { router(rin, inputs[1]) })
	for p := 0; p < P; p++ {
		p := p
		ctx.Spawn(func() { worker(p) })
	}
	ctx.Spawn(func() {
		workerWg.Wait()
		// Merge phase: spilled partitions re-scan their runs and emit the
		// cross-epoch matches phase 1 could not see. Sequential, so at most
		// one merge table occupies the merge share at a time; merged rows
		// are attributed to the left op like the spill counters.
		var resC *expr.Compiled
		for _, pt := range parts {
			if pt.run == nil {
				continue
			}
			if resC == nil {
				resC = expr.Compile(j.Residual)
			}
			if !pt.mergeSpill(ctx, ops, lop.Name, resC, func(b Batch) bool {
				n := int64(b.Len())
				if !send(ctx, out, b) {
					return false
				}
				lop.Out.Add(n)
				return true
			}) {
				break
			}
		}
		close(out)
	})
	return out
}

package exec

import (
	"sync"

	"repro/internal/types"
)

// Batches flow through single-consumer channels, so each batch has exactly
// one owner at a time: the producer owns it until send, the consumer owns it
// after receive. Consumers return exhausted batches with PutBatch once they
// no longer reference the slice (the Tuples inside may be retained — they
// are independent of the Batch backing array).
//
// Slices can't go into a sync.Pool without boxing; to keep the Get/Put
// cycle allocation-free the empty boxes are recycled through a second pool
// instead of being reallocated on every Put.
type batchBox struct{ b Batch }

var batchPool = sync.Pool{
	New: func() any {
		return &batchBox{b: make(Batch, 0, BatchSize)}
	},
}

var boxPool = sync.Pool{New: func() any { return new(batchBox) }}

// GetBatch returns an empty batch with BatchSize capacity from the pool.
func GetBatch() Batch {
	bb := batchPool.Get().(*batchBox)
	b := bb.b[:0]
	bb.b = nil
	boxPool.Put(bb)
	return b
}

// PutBatch recycles a batch. The caller must not use the slice afterwards.
// Tuple references are cleared so recycled batches do not pin row memory.
func PutBatch(b Batch) {
	if cap(b) < BatchSize {
		return // undersized one-off, let the GC have it
	}
	b = b[:cap(b)]
	for i := range b {
		b[i] = nil
	}
	bb := boxPool.Get().(*batchBox)
	bb.b = b[:0]
	batchPool.Put(bb)
}

// rowArena allocates output tuples in batch-sized blocks: one []types.Value
// allocation amortized over ~BatchSize rows instead of one per row. Rows are
// handed out as capacity-capped subslices, so they can escape downstream
// (and be retained indefinitely) while the arena keeps filling; when a block
// fills up the arena simply starts a new one and the GC tracks old blocks
// through the escaped rows. Not safe for concurrent use.
//
// Retention caveat: a retained row pins its whole block. That is fine for
// dense retention (a join buffering most of an input) but operators that
// keep a sparse subset of arriving rows indefinitely must clone what they
// keep (Distinct clones; HashAgg clones its group keys), or real memory can
// exceed accounted state by up to the rows-per-block factor.
type rowArena struct {
	buf []types.Value
}

// alloc returns a zeroed row of width w.
func (a *rowArena) alloc(w int) types.Tuple {
	if cap(a.buf)-len(a.buf) < w {
		n := BatchSize * w
		if n < w {
			n = w
		}
		a.buf = make([]types.Value, 0, n)
	}
	start := len(a.buf)
	a.buf = a.buf[:start+w]
	return a.buf[start : start+w : start+w]
}

// concat builds the concatenation of l and r in the arena, the join's
// replacement for types.Concat on the hot path.
func (a *rowArena) concat(l, r types.Tuple) types.Tuple {
	row := a.alloc(len(l) + len(r))
	copy(row, l)
	copy(row[len(l):], r)
	return row
}

// release returns the most recently allocated row to the arena; only valid
// immediately after alloc/concat, before the next allocation. The join uses
// it to reclaim rows rejected by the residual predicate.
func (a *rowArena) release(row types.Tuple) {
	a.buf = a.buf[:len(a.buf)-len(row)]
}

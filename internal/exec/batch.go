package exec

import (
	"sync"

	"repro/internal/types"
)

// Batches flow through single-consumer channels, so each batch has exactly
// one owner at a time: the producer owns it until send, the consumer owns it
// after receive. Consumers return exhausted batches with PutBatch once they
// no longer reference the slices (the Tuples inside may be retained — they
// are independent of the Batch backing arrays).
//
// A batch may carry a selection vector (Sel): the ascending lane indices of
// Tuples that are live. Filtering operators narrow Sel instead of copying
// survivors into a fresh batch; every consumer must iterate live lanes only
// (Live returns them uniformly). Materializing operators — Project, the
// join's row builder, aggregation — emit dense batches (Sel == nil), so a
// selection never survives past the next materialization point. Both the
// tuple slice and the selection vector are owned by the batch and recycled
// together by PutBatch.
//
// Slices can't go into a sync.Pool without boxing; to keep the Get/Put
// cycle allocation-free the empty boxes are recycled through a second pool
// instead of being reallocated on every Put.
type batchBox struct{ b []types.Tuple }

var batchPool = sync.Pool{
	New: func() any {
		return &batchBox{b: make([]types.Tuple, 0, BatchSize)}
	},
}

var boxPool = sync.Pool{New: func() any { return new(batchBox) }}

// GetBatch returns an empty dense batch with BatchSize tuple capacity from
// the pool.
func GetBatch() Batch {
	bb := batchPool.Get().(*batchBox)
	b := bb.b[:0]
	bb.b = nil
	boxPool.Put(bb)
	return Batch{Tuples: b}
}

// PutBatch recycles a batch's tuple slice and selection vector. The caller
// must not use either afterwards. Tuple references are cleared so recycled
// batches do not pin row memory.
func PutBatch(b Batch) {
	if b.Sel != nil {
		putSel(b.Sel)
	}
	t := b.Tuples
	if cap(t) < BatchSize {
		return // undersized one-off, let the GC have it
	}
	t = t[:cap(t)]
	for i := range t {
		t[i] = nil
	}
	bb := boxPool.Get().(*batchBox)
	bb.b = t[:0]
	batchPool.Put(bb)
}

// selBox recycles selection vectors the same way batchBox recycles tuple
// slices.
type selBox struct{ s []int32 }

var selPool = sync.Pool{
	New: func() any { return &selBox{s: make([]int32, 0, BatchSize)} },
}

var selBoxPool = sync.Pool{New: func() any { return new(selBox) }}

// getSel returns an empty selection vector with BatchSize capacity.
func getSel() []int32 {
	sb := selPool.Get().(*selBox)
	s := sb.s[:0]
	sb.s = nil
	selBoxPool.Put(sb)
	return s
}

// putSel recycles a selection vector.
func putSel(s []int32) {
	if cap(s) < BatchSize {
		return
	}
	sb := selBoxPool.Get().(*selBox)
	sb.s = s[:0]
	selPool.Put(sb)
}

// identTab is the shared identity selection [0, BatchSize); Live hands out
// prefixes of it for dense batches. Read-only: callers must never write
// through a selection they did not allocate.
var identTab = func() []int32 {
	s := make([]int32, BatchSize)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}()

// identSel returns the identity selection [0, n). For n ≤ BatchSize the
// shared read-only table is returned; oversized batches (rare) allocate.
func identSel(n int) []int32 {
	if n <= len(identTab) {
		return identTab[:n]
	}
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}

// growVals resizes a lane-indexed scratch vector to n lanes, reusing the
// backing array when possible.
func growVals(v []types.Value, n int) []types.Value {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]types.Value, n)
}

// growU64 and growI32 are growVals for the hash and selection scratch of
// the batch probe kernels.
func growU64(v []uint64, n int) []uint64 {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]uint64, n)
}

func growI32(v []int32, n int) []int32 {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]int32, n)
}

// scatter is a pooled buffer carrying the tuples of one input batch that
// route to one partition of a partitioned operator, together with their
// hash-once keys so the receiving worker never re-encodes or re-hashes.
// Like batches, a scatter has exactly one owner: the router owns it until
// the channel send, the partition worker owns it after receive and recycles
// it with putScatter.
type scatter struct {
	side   int           // producing input (join: 0 = left, 1 = right)
	tuples []types.Tuple // routed tuples, in arrival order
	hashes []uint64      // per tuple: Hash64 of its canonical key
	offs   []int32       // offs[i]:offs[i+1] bound key i in keys; len = len(tuples)+1
	keys   []byte        // concatenated canonical key encodings
}

var scatterPool = sync.Pool{New: func() any {
	return &scatter{offs: make([]int32, 1, BatchSize+1)}
}}

// getScatter returns an empty scatter buffer from the pool.
func getScatter(side int) *scatter {
	s := scatterPool.Get().(*scatter)
	s.side = side
	return s
}

// putScatter recycles a scatter buffer; tuple references are cleared so
// recycled buffers do not pin row memory.
func putScatter(s *scatter) {
	for i := range s.tuples {
		s.tuples[i] = nil
	}
	s.tuples = s.tuples[:0]
	s.hashes = s.hashes[:0]
	s.offs = s.offs[:1]
	s.keys = s.keys[:0]
	scatterPool.Put(s)
}

// add appends one routed tuple with its precomputed hash and key bytes
// (copied, so the caller's hasher scratch can be reused immediately).
func (s *scatter) add(t types.Tuple, h uint64, key []byte) {
	s.tuples = append(s.tuples, t)
	s.hashes = append(s.hashes, h)
	s.keys = append(s.keys, key...)
	s.offs = append(s.offs, int32(len(s.keys)))
}

// key returns the canonical key bytes of tuple i.
func (s *scatter) key(i int) []byte { return s.keys[s.offs[i]:s.offs[i+1]] }

// partitionRouter is the scatter side of a partitioned operator: it buffers
// hashed tuples per partition and flushes the buffers to the partition
// workers once per input batch. One router per producer goroutine.
type partitionRouter struct {
	side  int
	shift uint
	outs  []chan *scatter
	bufs  []*scatter
}

func newPartitionRouter(side, parallelism int, outs []chan *scatter) partitionRouter {
	return partitionRouter{side: side, shift: partShift(parallelism), outs: outs, bufs: make([]*scatter, len(outs))}
}

// route buffers one tuple for the partition selected by the top bits of its
// key hash, so equal keys always land in the same partition.
func (r *partitionRouter) route(t types.Tuple, h uint64, key []byte) {
	p := int(h >> r.shift)
	if r.bufs[p] == nil {
		r.bufs[p] = getScatter(r.side)
	}
	r.bufs[p].add(t, h, key)
}

// flush delivers the buffered scatters to their partition workers.
// beforeSend/onCancel (either may be nil) bracket each delivery attempt:
// the join counts in-flight messages there. flush reports false when the
// query was cancelled mid-delivery; the undelivered buffer is recycled.
func (r *partitionRouter) flush(ctx *Context, beforeSend, onCancel func()) bool {
	for p, sb := range r.bufs {
		if sb == nil {
			continue
		}
		r.bufs[p] = nil
		if beforeSend != nil {
			beforeSend()
		}
		select {
		case r.outs[p] <- sb:
		case <-ctx.Cancelled():
			if onCancel != nil {
				onCancel()
			}
			putScatter(sb)
			return false
		}
	}
	return true
}

// rowArena allocates output tuples in batch-sized blocks: one []types.Value
// allocation amortized over ~BatchSize rows instead of one per row. Rows are
// handed out as capacity-capped subslices, so they can escape downstream
// (and be retained indefinitely) while the arena keeps filling; when a block
// fills up the arena simply starts a new one and the GC tracks old blocks
// through the escaped rows. Not safe for concurrent use.
//
// Retention caveat: a retained row pins its whole block. That is fine for
// dense retention (a join buffering most of an input) but operators that
// keep a sparse subset of arriving rows indefinitely must clone what they
// keep (Distinct clones; HashAgg clones its group keys), or real memory can
// exceed accounted state by up to the rows-per-block factor.
type rowArena struct {
	buf []types.Value
}

// alloc returns a zeroed row of width w.
func (a *rowArena) alloc(w int) types.Tuple {
	if cap(a.buf)-len(a.buf) < w {
		n := BatchSize * w
		if n < w {
			n = w
		}
		a.buf = make([]types.Value, 0, n)
	}
	start := len(a.buf)
	a.buf = a.buf[:start+w]
	return a.buf[start : start+w : start+w]
}

// concat builds the concatenation of l and r in the arena, the join's
// replacement for types.Concat on the hot path.
func (a *rowArena) concat(l, r types.Tuple) types.Tuple {
	row := a.alloc(len(l) + len(r))
	copy(row, l)
	copy(row[len(l):], r)
	return row
}

// release returns the most recently allocated row to the arena; only valid
// immediately after alloc/concat, before the next allocation. The join uses
// it to reclaim rows rejected by the residual predicate.
func (a *rowArena) release(row types.Tuple) {
	a.buf = a.buf[:len(a.buf)-len(row)]
}

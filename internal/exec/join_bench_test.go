package exec

import (
	"fmt"
	"testing"

	"repro/internal/stats"
	"repro/internal/types"
)

// benchJoinRows builds two inputs of n tuples each over nkeys distinct join
// keys, the shape of the symmetric-hash-join hot path: every tuple is
// bank-probed, hashed, inserted, and probed against the other side.
func benchJoinRows(n, nkeys int) (lrows, rrows []types.Tuple) {
	lrows = make([]types.Tuple, n)
	rrows = make([]types.Tuple, n)
	for i := 0; i < n; i++ {
		lrows[i] = types.Tuple{types.Int(int64(i % nkeys)), types.Int(int64(i))}
		rrows[i] = types.Tuple{types.Int(int64((n - 1 - i) % nkeys)), types.Int(int64(i))}
	}
	return lrows, rrows
}

func benchmarkJoin(b *testing.B, n, nkeys, parallelism int) {
	lrows, rrows := benchJoinRows(n, nkeys)
	b.ReportAllocs()
	b.ResetTimer()
	var rows int
	for i := 0; i < b.N; i++ {
		l := &Scan{Name: "l", Rows: lrows, Sch: intSchema("a", "x")}
		r := &Scan{Name: "r", Rows: rrows, Sch: intSchema("a", "y")}
		j := NewHashJoin("j", l, r, []int{0}, []int{0}, nil)
		j.LPoint = &Point{Name: "l", Bank: NewFilterBank(), Stateful: true,
			EqIDs: []int{0, -1}, StateEqIDs: []int{0, -1}, KeyCols: []int{0},
			Schema: l.Sch, DomainDistinct: []float64{float64(nkeys), 0}, EstRows: float64(n)}
		j.RPoint = &Point{Name: "r", Bank: NewFilterBank(), Stateful: true,
			EqIDs: []int{0, -1}, StateEqIDs: []int{0, -1}, KeyCols: []int{0},
			Schema: r.Sch, DomainDistinct: []float64{float64(nkeys), 0}, EstRows: float64(n)}
		ctx := NewContext(stats.NewRegistry(), nil)
		ctx.Parallelism = parallelism
		jrows, err := Run(ctx, j)
		if err != nil {
			b.Fatalf("Run: %v", err)
		}
		rows = len(jrows)
	}
	b.StopTimer()
	if rows == 0 {
		b.Fatal("join produced no rows")
	}
	b.ReportMetric(float64(2*n)*float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
}

// BenchmarkJoin measures the symmetric hash join end to end: tuples/sec is
// input tuples consumed per wall-clock second; allocs/op come from -benchmem.
// Unique is the 1:1 foreign-key shape (one match per tuple), where the
// per-input-tuple path — bank probe, hash, insert, probe — dominates;
// Dup8x8 joins 8 duplicates per key on each side (64 output rows per key),
// where output materialization dominates.
func BenchmarkJoin(b *testing.B) {
	b.Run("Unique", func(b *testing.B) { benchmarkJoin(b, 1<<15, 1<<15, 1) })
	b.Run("Dup8x8", func(b *testing.B) { benchmarkJoin(b, 1<<15, 1<<12, 1) })
}

// BenchmarkJoinParallel is the scaling curve of the radix-partitioned
// join on the Unique shape: tuples/sec at P partitions. On a machine with
// fewer cores than P the curve flattens (partitioning still pays for the
// smaller, cache-resident per-partition tables but adds scatter overhead);
// BENCH_joins.json records the measuring machine's core count alongside.
func BenchmarkJoinParallel(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("Unique/P%d", p), func(b *testing.B) { benchmarkJoin(b, 1<<15, 1<<15, p) })
	}
}

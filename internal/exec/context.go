// Package exec is the push-style execution engine modeled on Tukwila
// (§V-A): multithreaded, with pipelined (symmetric) hash joins that run one
// goroutine per input, hash-based aggregation, bushy plans, per-operator
// cardinality counters, and support for on-the-fly registration of semijoin
// filters ("we extended our join and group-by implementations to support
// registration of new semijoin operators on the fly; these semijoins are
// called when a tuple is received and before it is processed internally").
//
// # Data-path design
//
// The engine is batch-at-a-time and hash-once:
//
//   - BatchSize (128) tuples move per channel send. Operator locks are
//     taken once per batch and per-operator stat counters are accumulated
//     in goroutine-locals and flushed once per batch, so the per-tuple path
//     has no mutex or atomic traffic.
//   - Predicates and projections are evaluated batch-at-a-time through the
//     compiled kernels of internal/expr (expr.Compile): Filter narrows a
//     batch's selection vector in place instead of copying survivors,
//     Project evaluates expression-at-a-time into arena rows, and the join
//     residual and aggregation argument paths consume the same EvalBatch /
//     EvalBool API. See the Batch type for the selection-vector ownership
//     contract; scalar expr.Eval remains the reference semantics.
//   - Every tuple key is canonically encoded and hashed exactly once per
//     (tuple, column set) via types.Hasher. The resulting 64-bit hash
//     drives the join/aggregation/distinct tables (types.KeyTable, open
//     addressing with inline key-byte verification — no string(key)
//     allocations), the Bloom filter fast path (bloom.AddHash /
//     bloom.ProbeHash), and the exact hash-set summary
//     (filter.Summary.MayContainHash).
//   - Batch slices are pooled (GetBatch / PutBatch): a batch has exactly
//     one owner; the consumer recycles it after use. Join and projection
//     output rows are carved from per-batch arenas (rowArena), one backing
//     allocation per ~BatchSize rows instead of one per row.
//
// Steady state, the join hot path performs zero allocations per probed
// tuple (asserted by testing.AllocsPerRun regression tests).
//
// # Partitioned parallelism
//
// The stateful operators (HashJoin, HashAgg, Distinct) are radix
// partitioned so a single operator saturates all cores, not one core per
// input. A router goroutine per input performs the lock-free phase —
// AIP-filter probe and hash-once key encoding — and routes each surviving
// tuple to one of P partitions by the top bits of its 64-bit key hash
// (P = Context.Parallelism rounded down to a power of two). Tuples with
// equal keys therefore always land in the same partition, so partitions
// are independent sub-problems.
//
// Each partition's state (a pair of joinTables for the join, a
// KeyTable+groups array for agg/distinct) is owned by exactly one worker
// goroutine, which serializes all inserts and probes for that partition;
// ownership replaces the per-side lock of the pre-partitioned engine, and
// insert/probe for different partitions never contend. The symmetric
// join's exactly-once argument holds per partition: every buffered tuple
// takes a ticket from the partition's counter, a probing tuple emits only
// matches with smaller tickets, and because one worker serializes the
// partition, for any result pair the later-ticketed tuple observes the
// earlier one and the earlier never emits the later. Side-level completion
// (the paper's §VI-A short-circuit, Point.Done, state iterators) is
// detected with a per-input pending-message counter: the input is done
// only after its router has finished AND every scattered message has been
// drained by the workers, i.e. after the input's last probe.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
	"repro/internal/types"
)

// BatchSize is the number of tuples moved per channel send.
const BatchSize = 128

// Batch is a group of tuples flowing between operators, with an optional
// selection vector.
//
// When Sel is nil every tuple in Tuples is live. When Sel is non-nil it
// lists the live lane indices of Tuples in strictly ascending order, and
// dead lanes must be ignored: filtering operators mark survivors by
// narrowing Sel instead of compacting Tuples. Whoever holds the batch owns
// both slices; PutBatch recycles them together. Operators that materialize
// rows (Project, the join's output builder, aggregation) emit dense
// batches, so selections never pile up across pipeline stages.
type Batch struct {
	Tuples []types.Tuple
	Sel    []int32
}

// Len returns the number of live tuples.
func (b Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return len(b.Tuples)
}

// Live returns the batch's live lanes: Sel when present, else the shared
// identity selection. The returned slice is read-only for dense batches —
// mutating consumers must use Sel directly or allocate their own.
func (b Batch) Live() []int32 {
	if b.Sel != nil {
		return b.Sel
	}
	return identSel(len(b.Tuples))
}

// Controller is the runtime hook set implemented by the AIP strategies in
// internal/core. A nil Controller runs the baseline engine.
type Controller interface {
	// RegisterPoint is called once per injection point while the physical
	// plan is instantiated, before execution starts.
	RegisterPoint(p *Point)
	// Begin is called after all points are registered, before data flows.
	Begin()
	// PointDone is called when an input has consumed all of its data; for
	// stateful points the buffered state is final at this moment.
	PointDone(p *Point)
	// End is called after the query completes.
	End()
}

// MaxPartitions caps the partition fan-out of parallel operators; beyond
// this, scatter/channel overhead dominates any added concurrency.
const MaxPartitions = 64

// Scheduler values for Context.Scheduler.
const (
	// SchedulerChan is the channel engine: one goroutine per operator per
	// partition, glued by buffered channels. The default.
	SchedulerChan = "chan"
	// SchedulerMorsel is the morsel-driven work-stealing engine
	// (internal/sched): a per-query worker pool runs the plan as small
	// push-style tasks, scans range-split across workers, and stateless
	// stages fuse into the producing task. Plans the morsel compiler does
	// not support transparently fall back to the chan engine.
	SchedulerMorsel = "morsel"
)

// Context carries per-query runtime state shared by all operators.
type Context struct {
	Stats *stats.Registry
	Ctl   Controller

	// Parallelism is the partition fan-out of the parallel stateful
	// operators (hash join, aggregation, distinct). Zero or negative means
	// runtime.GOMAXPROCS(0); the effective value is rounded down to a power
	// of two and capped at MaxPartitions. One partition reproduces the
	// pre-partitioned single-owner data path exactly.
	Parallelism int

	// PipelineDepth is the buffer, in batches, of every inter-operator
	// channel (pipeline edges and partition scatter channels). Deeper
	// buffers absorb producer/consumer rate jitter at the cost of more
	// in-flight batches; zero or negative means DefaultPipelineDepth.
	//
	// This is a chan-scheduler knob: the morsel engine has no internal
	// channels (operators fuse into tasks and partition handoff is an
	// unbounded actor inbox drained as fast as workers allow) and uses
	// PipelineDepth only for the root output edge feeding the consumer.
	PipelineDepth int

	// Scheduler selects the execution engine: SchedulerChan (default,
	// also for "") or SchedulerMorsel. See StartPlan.
	Scheduler string

	// Load optionally reports the engine's concurrent-query load; the
	// morsel scheduler divides its worker-pool size by it so a saturated
	// server degrades parallelism instead of oversubscribing goroutines.
	// Nil means a dedicated query.
	Load func() int

	// Recovery configures retries, timeouts, circuit breaking, and the
	// failure mode for unreliable sources. The zero value uses the default
	// retry policy, no breakers, and fail-fast semantics.
	Recovery Recovery

	// MemBudget caps the query's tracked operator state (join tables, agg
	// accumulators, distinct sets) in bytes. Zero or negative runs
	// unbounded. Under a budget the partitioned stateful operators run the
	// paper's bucket-discard policy: a partition over its share evicts its
	// hash state to a spill run (internal/spill) and a merge/rescan phase
	// after input-done recovers the evicted matches, so results are
	// identical to an unbounded run. A budget too small for the merge phase
	// to converge fails the query with a *BudgetError instead of
	// thrashing. See the accounting methods in memory.go.
	MemBudget int64

	cancel    chan struct{}
	cancelOne sync.Once
	cause     atomic.Pointer[error]

	tracked     atomic.Int64 // current accounted operator-state bytes
	trackedPeak atomic.Int64 // high-water mark of tracked
	memParts    atomic.Int64 // registered budget-accounted partitions (addMemParts)
	spillBytes  atomic.Int64 // total bytes written to spill runs
	spillEvents atomic.Int64 // bucket-discard evictions

	spillMu  sync.Mutex
	spillDir string // lazily created per-query temp dir for spill runs

	mu     sync.Mutex
	points []*Point
	nextID int

	wg sync.WaitGroup // goroutines started via Spawn

	incMu      sync.Mutex
	incomplete map[string]*SourceError // dead sources (PartialOnSourceError)
}

// NewContext creates an execution context. reg must be non-nil; ctl may be
// nil for baseline execution.
func NewContext(reg *stats.Registry, ctl Controller) *Context {
	return &Context{Stats: reg, Ctl: ctl, cancel: make(chan struct{})}
}

// partitions resolves the effective partition count: Parallelism (or
// GOMAXPROCS when unset) rounded down to a power of two, in [1, MaxPartitions].
func (c *Context) partitions() int {
	p := c.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > MaxPartitions {
		p = MaxPartitions
	}
	for p&(p-1) != 0 { // clear low one-bits down to a power of two
		p &= p - 1
	}
	return p
}

// DefaultPipelineDepth is the default per-edge channel buffer in batches:
// deep enough to keep a producer from stalling on a momentarily busy
// consumer, shallow enough that a query holds O(operators) batches in
// flight.
const DefaultPipelineDepth = 4

// pipeDepth resolves the effective per-edge channel buffer.
func (c *Context) pipeDepth() int {
	if c.PipelineDepth > 0 {
		return c.PipelineDepth
	}
	return DefaultPipelineDepth
}

// minPartitionRows is the estimated row count below which an extra
// partition is not worth its worker goroutine and scatter channel.
const minPartitionRows = 1024

// clampPartitions halves p until the optimizer's cardinality estimate
// keeps every partition meaningfully loaded, so tiny inputs run on the
// cheap single-owner path even on wide machines. An absent estimate
// (est <= 0) leaves p untouched — explicit Parallelism settings and
// estimate-free plans keep their fan-out.
func clampPartitions(p int, est float64) int {
	if est <= 0 {
		return p
	}
	for p > 1 && est < float64(p)*minPartitionRows {
		p >>= 1
	}
	return p
}

// pointEstRows reads a possibly-absent injection point's cardinality
// estimate, so operators can clamp on whatever estimates the plan carries.
func pointEstRows(p *Point) float64 {
	if p == nil {
		return 0
	}
	return p.EstRows
}

// partShift converts a partition count to the right-shift that maps a
// 64-bit key hash to its partition index (top-bits radix).
func partShift(p int) uint {
	s := uint(64)
	for p > 1 {
		p >>= 1
		s--
	}
	return s
}

// Cancel aborts the query; operators drain and stop promptly. The recorded
// cause is context.Canceled.
func (c *Context) Cancel() { c.CancelCause(context.Canceled) }

// CancelCause aborts the query recording why; the first cause wins. A nil
// err is recorded as context.Canceled.
func (c *Context) CancelCause(err error) {
	c.cancelOne.Do(func() {
		if err == nil {
			err = context.Canceled
		}
		c.cause.Store(&err)
		close(c.cancel)
	})
}

// Err returns the cancellation cause, or nil while the query has not been
// cancelled. A completed, uncancelled query always reports nil.
func (c *Context) Err() error {
	if p := c.cause.Load(); p != nil {
		return *p
	}
	return nil
}

// Cancelled returns the cancellation channel.
func (c *Context) Cancelled() <-chan struct{} { return c.cancel }

// BindStd ties the execution context to a standard context.Context: a
// watcher goroutine forwards std's deadline or cancellation to CancelCause
// (so Err reports context.Canceled / context.DeadlineExceeded) and exits as
// soon as the query is cancelled from either side. The returned stop
// function tears the watcher down and waits for it to exit; callers must
// invoke it once the query completes so no goroutine outlives the query.
func (c *Context) BindStd(std context.Context) (stop func()) {
	if std == nil || std.Done() == nil {
		return func() {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-std.Done():
			c.CancelCause(context.Cause(std))
		case <-quit:
		case <-c.cancel:
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(quit) })
		<-done
	}
}

// Register assigns an id to a point, records it, and forwards it to the
// controller. All points must be registered before Run starts the plan.
func (c *Context) Register(p *Point) {
	c.mu.Lock()
	p.ID = c.nextID
	c.nextID++
	c.points = append(c.points, p)
	c.mu.Unlock()
	if c.Ctl != nil {
		c.Ctl.RegisterPoint(p)
	}
}

// Points returns all registered injection points.
func (c *Context) Points() []*Point {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Point, len(c.points))
	copy(out, c.points)
	return out
}

// pointDone notifies the controller.
func (c *Context) pointDone(p *Point) {
	if c.Ctl != nil {
		c.Ctl.PointDone(p)
	}
}

// send delivers a batch unless the query was cancelled; it reports whether
// the send happened.
func send(ctx *Context, out chan<- Batch, b Batch) bool {
	if b.Len() == 0 {
		return true
	}
	select {
	case out <- b:
		return true
	case <-ctx.Cancelled():
		return false
	}
}

// Op is a physical operator. Start launches the operator's goroutines and
// returns its output channel; the channel is closed when the operator
// finishes or the context is cancelled.
type Op interface {
	Schema() *types.Schema
	Start(ctx *Context) <-chan Batch
}

// StartPlan launches a plan under the context's selected scheduler and
// returns the root output channel. SchedulerMorsel compiles the plan onto
// the work-stealing pool; plans it cannot run (unsupported operators,
// worker-id overflow) fall back to the chan engine, so the result stream
// is identical either way.
func StartPlan(ctx *Context, root Op) <-chan Batch {
	if ctx.Scheduler == SchedulerMorsel {
		if out, ok := startMorsel(ctx, root); ok {
			return out
		}
	}
	return root.Start(ctx)
}

// Run executes a plan to completion and collects all output tuples. When
// the context was cancelled (Cancel, CancelCause, or a bound standard
// context firing) the possibly-truncated rows are returned alongside the
// cancellation cause, so callers can distinguish a complete result from a
// cut-off one.
func Run(ctx *Context, root Op) ([]types.Tuple, error) {
	if ctx.Ctl != nil {
		ctx.Ctl.Begin()
	}
	rows := Collect(StartPlan(ctx, root))
	if ctx.Ctl != nil {
		ctx.Ctl.End()
	}
	return rows, ctx.Err()
}

// Collect drains a batch channel into an exactly-sized tuple slice,
// honoring selection vectors and recycling every batch. Batches are
// collected first, then copied once: appending tuple-by-tuple would
// reallocate and re-copy the result log₂(n) times for large outputs. It is
// the shared materialization step of Run and the public blocking Query
// path.
func Collect(out <-chan Batch) []types.Tuple {
	var batches []Batch
	total := 0
	for b := range out {
		batches = append(batches, b)
		total += b.Len()
	}
	rows := make([]types.Tuple, 0, total)
	for _, b := range batches {
		if b.Sel == nil {
			rows = append(rows, b.Tuples...)
		} else {
			for _, l := range b.Sel {
				rows = append(rows, b.Tuples[l])
			}
		}
		PutBatch(b)
	}
	return rows
}

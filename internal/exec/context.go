// Package exec is the push-style execution engine modeled on Tukwila
// (§V-A): multithreaded, with pipelined (symmetric) hash joins that run one
// goroutine per input, hash-based aggregation, bushy plans, per-operator
// cardinality counters, and support for on-the-fly registration of semijoin
// filters ("we extended our join and group-by implementations to support
// registration of new semijoin operators on the fly; these semijoins are
// called when a tuple is received and before it is processed internally").
//
// # Data-path design
//
// The engine is batch-at-a-time and hash-once:
//
//   - BatchSize (128) tuples move per channel send. Operator locks are
//     taken once per batch and per-operator stat counters are accumulated
//     in goroutine-locals and flushed once per batch, so the per-tuple path
//     has no mutex or atomic traffic.
//   - Every tuple key is canonically encoded and hashed exactly once per
//     (tuple, column set) via types.Hasher. The resulting 64-bit hash
//     drives the join/aggregation/distinct tables (types.KeyTable, open
//     addressing with inline key-byte verification — no string(key)
//     allocations), the Bloom filter fast path (bloom.AddHash /
//     bloom.ProbeHash), and the exact hash-set summary
//     (filter.Summary.MayContainHash).
//   - Batch slices are pooled (GetBatch / PutBatch): a batch has exactly
//     one owner; the consumer recycles it after use. Join and projection
//     output rows are carved from per-batch arenas (rowArena), one backing
//     allocation per ~BatchSize rows instead of one per row.
//
// Steady state, the join hot path performs zero allocations per probed
// tuple (asserted by testing.AllocsPerRun regression tests).
package exec

import (
	"sync"

	"repro/internal/stats"
	"repro/internal/types"
)

// BatchSize is the number of tuples moved per channel send.
const BatchSize = 128

// Batch is a group of tuples flowing between operators.
type Batch []types.Tuple

// Controller is the runtime hook set implemented by the AIP strategies in
// internal/core. A nil Controller runs the baseline engine.
type Controller interface {
	// RegisterPoint is called once per injection point while the physical
	// plan is instantiated, before execution starts.
	RegisterPoint(p *Point)
	// Begin is called after all points are registered, before data flows.
	Begin()
	// PointDone is called when an input has consumed all of its data; for
	// stateful points the buffered state is final at this moment.
	PointDone(p *Point)
	// End is called after the query completes.
	End()
}

// Context carries per-query runtime state shared by all operators.
type Context struct {
	Stats *stats.Registry
	Ctl   Controller

	cancel    chan struct{}
	cancelOne sync.Once

	mu     sync.Mutex
	points []*Point
	nextID int
}

// NewContext creates an execution context. reg must be non-nil; ctl may be
// nil for baseline execution.
func NewContext(reg *stats.Registry, ctl Controller) *Context {
	return &Context{Stats: reg, Ctl: ctl, cancel: make(chan struct{})}
}

// Cancel aborts the query; operators drain and stop promptly.
func (c *Context) Cancel() { c.cancelOne.Do(func() { close(c.cancel) }) }

// Cancelled returns the cancellation channel.
func (c *Context) Cancelled() <-chan struct{} { return c.cancel }

// Register assigns an id to a point, records it, and forwards it to the
// controller. All points must be registered before Run starts the plan.
func (c *Context) Register(p *Point) {
	c.mu.Lock()
	p.ID = c.nextID
	c.nextID++
	c.points = append(c.points, p)
	c.mu.Unlock()
	if c.Ctl != nil {
		c.Ctl.RegisterPoint(p)
	}
}

// Points returns all registered injection points.
func (c *Context) Points() []*Point {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Point, len(c.points))
	copy(out, c.points)
	return out
}

// pointDone notifies the controller.
func (c *Context) pointDone(p *Point) {
	if c.Ctl != nil {
		c.Ctl.PointDone(p)
	}
}

// send delivers a batch unless the query was cancelled; it reports whether
// the send happened.
func send(ctx *Context, out chan<- Batch, b Batch) bool {
	if len(b) == 0 {
		return true
	}
	select {
	case out <- b:
		return true
	case <-ctx.Cancelled():
		return false
	}
}

// Op is a physical operator. Start launches the operator's goroutines and
// returns its output channel; the channel is closed when the operator
// finishes or the context is cancelled.
type Op interface {
	Schema() *types.Schema
	Start(ctx *Context) <-chan Batch
}

// Run executes a plan to completion and collects all output tuples.
func Run(ctx *Context, root Op) []types.Tuple {
	if ctx.Ctl != nil {
		ctx.Ctl.Begin()
	}
	out := root.Start(ctx)
	// Collect batches first, then copy once into an exactly-sized result:
	// appending tuple-by-tuple would reallocate and re-copy the result
	// log₂(n) times for large outputs.
	var batches []Batch
	total := 0
	for b := range out {
		batches = append(batches, b)
		total += len(b)
	}
	rows := make([]types.Tuple, 0, total)
	for _, b := range batches {
		rows = append(rows, b...)
		PutBatch(b)
	}
	if ctx.Ctl != nil {
		ctx.Ctl.End()
	}
	return rows
}

package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/filter"
	"repro/internal/stats"
	"repro/internal/types"
)

// attachedFilter is one injected semijoin: probe the summary with the key
// built from cols.
type attachedFilter struct {
	cols []int
	sum  filter.Summary
}

// FilterBank holds the semijoin filters injected into one operator input.
// Probes are lock-free (copy-on-write snapshot); attachment is rare.
type FilterBank struct {
	mu  sync.Mutex
	cur atomic.Pointer[[]attachedFilter]
}

// NewFilterBank returns an empty bank.
func NewFilterBank() *FilterBank {
	b := &FilterBank{}
	empty := []attachedFilter{}
	b.cur.Store(&empty)
	return b
}

// Attach injects a filter over the given input columns. Duplicate
// attachments of the same summary are ignored.
func (b *FilterBank) Attach(cols []int, sum filter.Summary) {
	b.mu.Lock()
	defer b.mu.Unlock()
	old := *b.cur.Load()
	for _, a := range old {
		if a.sum == sum && equalInts(a.cols, cols) {
			return
		}
	}
	next := make([]attachedFilter, len(old)+1)
	copy(next, old)
	next[len(old)] = attachedFilter{cols: append([]int(nil), cols...), sum: sum}
	b.cur.Store(&next)
}

// Replace swaps out an existing summary for a strictly stronger one over
// the same columns (paper §IV-B: "in the case of a filter with strictly
// weaker constraints, directly replaced"). If the old summary is absent the
// new one is attached.
func (b *FilterBank) Replace(cols []int, oldSum, newSum filter.Summary) {
	b.mu.Lock()
	defer b.mu.Unlock()
	old := *b.cur.Load()
	next := make([]attachedFilter, 0, len(old)+1)
	replaced := false
	for _, a := range old {
		if a.sum == oldSum && equalInts(a.cols, cols) {
			next = append(next, attachedFilter{cols: a.cols, sum: newSum})
			replaced = true
			continue
		}
		next = append(next, a)
	}
	if !replaced {
		next = append(next, attachedFilter{cols: append([]int(nil), cols...), sum: newSum})
	}
	b.cur.Store(&next)
}

// Len returns the number of attached filters.
func (b *FilterBank) Len() int { return len(*b.cur.Load()) }

// Probe runs the tuple through every attached filter; false means prune.
// It is the cold-path form of ProbeHashed (one implementation, so the two
// cannot diverge); hot paths keep a Hasher per goroutine instead.
func (b *FilterBank) Probe(t types.Tuple) bool {
	return b.ProbeHashed(t, nil, 0, nil, new(types.Hasher))
}

// ProbeHashed is the hash-once fast path of Probe. keyCols, keyHash, and key
// are the probing operator's own key columns with their canonical encoding
// and Hash64 — AIP filters are usually attached over exactly those columns,
// in which case the precomputed hash is reused and the summary is probed
// without touching the key bytes again. Filters over other column sets fall
// back to one encoding pass through scratch. Callers without a precomputed
// key pass keyCols = nil. False means prune.
//
// key may alias scratch's buffer (the usual case: the caller produced it
// with scratch.KeyCols), so foreign-column encodings append behind it via
// KeyColsTail rather than resetting the buffer — an exact summary probed
// after a foreign-column filter still sees the caller's key bytes intact.
func (b *FilterBank) ProbeHashed(t types.Tuple, keyCols []int, keyHash uint64, key []byte, scratch *types.Hasher) bool {
	filters := *b.cur.Load()
	for i := range filters {
		h, kb := keyHash, key
		if keyCols == nil || !equalInts(filters[i].cols, keyCols) {
			h, kb = scratch.KeyColsTail(t, filters[i].cols)
		}
		if !filters[i].sum.MayContainHash(h, kb) {
			return false
		}
	}
	return true
}

// ProbeScratch is the per-worker working state of FilterBank.ProbeBatch:
// lane-indexed key hashes and encodings plus the reusable buffers the
// kernel narrows selections through. All slices are reused across batches
// (zero allocations once warm) and invalidated by the next ProbeBatch or
// compute call on the same scratch. One scratch per goroutine, like
// types.Hasher.
type ProbeScratch struct {
	// Primary arrays: the probing operator's own key columns, filled by
	// compute. Routers read hashes/key after ProbeBatch returns, so the
	// hash-once discipline spans probing AND routing.
	hashes []uint64
	starts []int32
	ends   []int32
	keyBuf []byte
	keyAt  func(int32) []byte // bound once; resolves a lane in the primary arrays

	// Alt arrays: filters attached over a different column set than the
	// operator's own keys encode through these instead.
	altHashes []uint64
	altStarts []int32
	altEnds   []int32
	altKeyBuf []byte
	altKeyAt  func(int32) []byte

	// Deferred-materialization state: while computeHashes has skipped the
	// key-byte pass, exact summaries resolve lanes through lazyKey.
	lazyTuples []types.Tuple
	lazyCol    int
	lazyBuf    []byte
	lazyAt     func(int32) []byte
}

// compute fills the primary arrays for the listed lanes: one canonical
// encoding and one Hash64 per live lane, exactly what the scalar path's
// Hasher.KeyCols did per tuple.
func (sc *ProbeScratch) compute(tuples []types.Tuple, cols []int, sel []int32) {
	n := len(tuples)
	sc.hashes = growU64(sc.hashes, n)
	sc.starts = growI32(sc.starts, n)
	sc.ends = growI32(sc.ends, n)
	sc.keyBuf = sc.keyBuf[:0]
	for _, i := range sel {
		start := len(sc.keyBuf)
		sc.keyBuf = tuples[i].AppendKeyCols(sc.keyBuf, cols)
		sc.hashes[i] = types.Hash64(sc.keyBuf[start:], 0)
		sc.starts[i] = int32(start)
		sc.ends[i] = int32(len(sc.keyBuf))
	}
}

// computeHashes fills only the hash array, deferring key-byte
// materialization: for a single integer-backed key column (the dominant
// equijoin shape) each lane is one register hash (types.HashIntKey) with
// zero byte stores, so probing writes nothing to the key buffer for lanes
// a filter will prune anyway. Returns true when it succeeded and bytes are
// deferred; on any other key shape it falls back to compute and returns
// false. Mixed-kind columns restart at the first non-integer lane, so the
// fallback cost is only paid by genuinely mixed batches.
func (sc *ProbeScratch) computeHashes(tuples []types.Tuple, cols []int, sel []int32) bool {
	if len(cols) != 1 {
		sc.compute(tuples, cols, sel)
		return false
	}
	c := cols[0]
	sc.hashes = growU64(sc.hashes, len(tuples))
	for _, i := range sel {
		v := tuples[i][c]
		if v.K != types.KindInt && v.K != types.KindDate && v.K != types.KindBool {
			sc.compute(tuples, cols, sel)
			return false
		}
		sc.hashes[i] = types.HashIntKey(v.I)
	}
	return true
}

// materialize back-fills the key bytes computeHashes deferred, for the
// listed (surviving) lanes only. Only called when computeHashes succeeded,
// so every lane is integer-backed.
func (sc *ProbeScratch) materialize(tuples []types.Tuple, c int, sel []int32) {
	n := len(tuples)
	sc.starts = growI32(sc.starts, n)
	sc.ends = growI32(sc.ends, n)
	sc.keyBuf = sc.keyBuf[:0]
	for _, i := range sel {
		start := len(sc.keyBuf)
		sc.keyBuf = types.AppendIntKey(sc.keyBuf, tuples[i][c].I)
		sc.starts[i] = int32(start)
		sc.ends[i] = int32(len(sc.keyBuf))
	}
}

func (sc *ProbeScratch) altCompute(tuples []types.Tuple, cols []int, sel []int32) {
	n := len(tuples)
	sc.altHashes = growU64(sc.altHashes, n)
	sc.altStarts = growI32(sc.altStarts, n)
	sc.altEnds = growI32(sc.altEnds, n)
	sc.altKeyBuf = sc.altKeyBuf[:0]
	for _, i := range sel {
		start := len(sc.altKeyBuf)
		sc.altKeyBuf = tuples[i].AppendKeyCols(sc.altKeyBuf, cols)
		sc.altHashes[i] = types.Hash64(sc.altKeyBuf[start:], 0)
		sc.altStarts[i] = int32(start)
		sc.altEnds[i] = int32(len(sc.altKeyBuf))
	}
}

// key returns lane i's canonical key bytes from the primary arrays; valid
// until the next compute/ProbeBatch on this scratch.
func (sc *ProbeScratch) key(i int32) []byte { return sc.keyBuf[sc.starts[i]:sc.ends[i]] }

func (sc *ProbeScratch) primaryKeyAt() func(int32) []byte {
	if sc.keyAt == nil {
		sc.keyAt = sc.key
	}
	return sc.keyAt
}

func (sc *ProbeScratch) altKey(i int32) []byte { return sc.altKeyBuf[sc.altStarts[i]:sc.altEnds[i]] }

func (sc *ProbeScratch) altPrimaryKeyAt() func(int32) []byte {
	if sc.altKeyAt == nil {
		sc.altKeyAt = sc.altKey
	}
	return sc.altKeyAt
}

// lazyKey encodes lane i's key on demand while key bytes are deferred
// (computeHashes mode): exact summaries probed mid-batch still see the
// canonical bytes, one transient lane at a time. The returned slice is
// valid until the next lazyKey call.
func (sc *ProbeScratch) lazyKey(i int32) []byte {
	sc.lazyBuf = types.AppendIntKey(sc.lazyBuf[:0], sc.lazyTuples[i][sc.lazyCol].I)
	return sc.lazyBuf
}

func (sc *ProbeScratch) lazyPrimaryKeyAt() func(int32) []byte {
	if sc.lazyAt == nil {
		sc.lazyAt = sc.lazyKey
	}
	return sc.lazyAt
}

// ProbeBatch is the batch form of ProbeHashed: it runs the live lanes of a
// batch through every attached filter and returns the surviving selection,
// mirroring the expr kernels' Sel contract. sel lists the live lanes in
// ascending order; survivors are appended to out, which the caller owns
// and passes with length 0. out may share sel's backing array (out =
// sel[:0]) for in-place narrowing — implementations only append behind
// their read cursor — but must otherwise not overlap sel.
//
// keyCols are the operator's own key columns, or nil when it has none:
// when non-nil the hash array is filled for every lane of sel (even ones a
// filter later prunes), so after the call sc.hashes[i] and sc.key(i) are
// valid for every surviving lane and the caller can route on them without
// re-hashing. Key BYTES are materialized only for survivors when the key
// shape allows it (single integer-backed column): pruned lanes never touch
// the key buffer, and exact summaries probed mid-batch resolve lanes
// through a transient per-lane encode. Filters over other column sets
// encode through the alt arrays, narrowed-lanes only. The caller must
// check Len() > 0 first; with no filters attached a probe would be a
// pointless copy.
func (b *FilterBank) ProbeBatch(tuples []types.Tuple, keyCols []int, sel []int32, out []int32, sc *ProbeScratch) []int32 {
	filters := *b.cur.Load()
	if len(filters) == 0 {
		return append(out, sel...)
	}
	deferred := false
	if keyCols != nil {
		deferred = sc.computeHashes(tuples, keyCols, sel)
	}
	live := sel
	out = out[:0]
	for i := range filters {
		var hashes []uint64
		var keyAt func(int32) []byte
		if keyCols != nil && equalInts(filters[i].cols, keyCols) {
			hashes = sc.hashes
			if deferred {
				sc.lazyTuples, sc.lazyCol = tuples, keyCols[0]
				keyAt = sc.lazyPrimaryKeyAt()
			} else {
				keyAt = sc.primaryKeyAt()
			}
		} else {
			sc.altCompute(tuples, filters[i].cols, live)
			hashes, keyAt = sc.altHashes, sc.altPrimaryKeyAt()
		}
		if i == 0 {
			out = filters[i].sum.MayContainHashBatch(hashes, live, out, keyAt)
		} else {
			out = filters[i].sum.MayContainHashBatch(hashes, out, out[:0], keyAt)
		}
		live = out
		if len(out) == 0 {
			break
		}
	}
	if deferred {
		sc.materialize(tuples, keyCols[0], out)
		sc.lazyTuples = nil
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Point is one AIP injection point: an operator input that can consume
// injected semijoin filters and, when stateful, produce AIP sets from its
// buffered state. The physical planner creates points with plan metadata;
// the executor drives the runtime callbacks; the controllers in
// internal/core do the decision making.
type Point struct {
	ID   int
	Name string

	// EqIDs maps each input column to its attribute equivalence class in
	// the query's source-predicate graph, or -1 when the column is a
	// computed value that participates in no cross-expression predicate.
	EqIDs []int

	// StateEqIDs maps each column of the tuples exposed by IterState and
	// OnStore to its equivalence class. For hash-join inputs and distinct
	// this equals EqIDs (state tuples are input tuples); for group-by the
	// state tuples are the group keys, whose classes come from the
	// group-by expressions.
	StateEqIDs []int

	// Schema of the tuples arriving at this input.
	Schema *types.Schema

	// Bank receives injected filters; the owning operator probes it for
	// every arriving tuple before processing.
	Bank *FilterBank

	// Stateful marks inputs whose tuples are buffered (hash-join inputs,
	// group-by, distinct); only these produce AIP sets.
	Stateful bool

	// KeyCols are the state-schema columns the operator hashes its state
	// on (join keys, group-by keys, the full tuple for distinct). AIP sets
	// are produced over these columns only: they are the attributes the
	// operator's state is organized by, and building working summaries of
	// every carried column would cost far more than it prunes.
	KeyCols []int

	// Site is the executing node (0 = master). Filters attached to a
	// remote point must be shipped; the harness models that cost.
	Site int

	// Tables lists the base tables feeding this input. When a source is
	// abandoned under PartialOnSourceError, every point fed by its table is
	// marked state-incomplete so AIP controllers never publish the partial
	// state as a complete set.
	Tables []string

	// Depth is the input's depth in the physical plan tree (root joins are
	// depth 0); ESTIMATEBENEFIT visits candidate users bottom-up.
	Depth int

	// Ancestors lists the points on the path from this input up to the
	// plan root, nearest first. Used to avoid double-counting benefits.
	Ancestors []*Point

	// EstRows is the optimizer's cardinality estimate for this input.
	EstRows float64

	// DomainDistinct estimates, per input column, the number of distinct
	// values in the column's attribute domain (used for filter
	// selectivity estimation); 0 means unknown.
	DomainDistinct []float64

	// Op is the owning operator's stats block, set by the operator at Start
	// before any tuple flows (so every OnStore call observes it).
	// Controllers attribute per-operator filter memory — published summary
	// bytes and in-progress working-set bytes — through it; nil skips the
	// per-operator accounting (registry totals are still kept).
	Op *stats.OpStats

	// Runtime counters maintained by the owning operator.
	received        atomic.Int64
	stored          atomic.Int64
	done            atomic.Bool
	stateIncomplete atomic.Bool

	// OnStore, when set by a controller, is invoked for every tuple the
	// operator buffers into its state (Feed-Forward builds its working
	// AIP sets here). It must be set before execution begins.
	//
	// slot identifies the calling goroutine's partition: partitioned
	// operators pass their partition index, single-goroutine callers (the
	// join router) pass 0, and slot is always < MaxPartitions. Calls with
	// the same slot are serialized by the owning goroutine, while calls
	// with different slots may run concurrently — implementations can
	// therefore keep lock-free per-slot working state and merge it when
	// the point completes (all OnStore calls happen-before PointDone).
	OnStore func(slot int, t types.Tuple)

	// state gives controllers access to the operator's buffered tuples
	// once the input is done (Cost-Based scans it to build AIP sets).
	stateMu   sync.Mutex
	stateIter func(emit func(t types.Tuple) bool)
}

// CloneForRun returns a fresh Point carrying the same plan metadata (name,
// schema, equivalence classes, key columns, estimates, site, depth) with
// zeroed runtime state: a new empty FilterBank, no counters, no OnStore
// hook, no state iterator. Ancestors are NOT remapped — they still point at
// the template's points; callers instantiating a whole plan must rewrite
// them against their own clone map. This is what lets one optimized plan
// template back many concurrent executions.
func (p *Point) CloneForRun() *Point {
	return &Point{
		Name:           p.Name,
		EqIDs:          append([]int(nil), p.EqIDs...),
		StateEqIDs:     append([]int(nil), p.StateEqIDs...),
		Schema:         p.Schema,
		Bank:           NewFilterBank(),
		Stateful:       p.Stateful,
		KeyCols:        append([]int(nil), p.KeyCols...),
		Site:           p.Site,
		Tables:         append([]string(nil), p.Tables...),
		Depth:          p.Depth,
		Ancestors:      append([]*Point(nil), p.Ancestors...),
		EstRows:        p.EstRows,
		DomainDistinct: append([]float64(nil), p.DomainDistinct...),
	}
}

// Received returns the number of tuples that have arrived at this input.
func (p *Point) Received() int64 { return p.received.Load() }

// StoredRows returns the number of tuples buffered into operator state.
func (p *Point) StoredRows() int64 { return p.stored.Load() }

// Done reports whether the input has been fully consumed.
func (p *Point) Done() bool { return p.done.Load() }

// StateComplete reports whether the buffered state reflects the entire
// input; it is false after the join's short-circuit optimization stopped
// buffering. AIP sets may only be built from complete state.
func (p *Point) StateComplete() bool { return !p.stateIncomplete.Load() }

// MarkDoneForTest flips the done flag without running an operator; tests of
// the AIP controllers use it to simulate input completion.
func (p *Point) MarkDoneForTest() { p.done.Store(true) }

// setStateIter installs the operator's state iterator.
func (p *Point) setStateIter(f func(emit func(t types.Tuple) bool)) {
	p.stateMu.Lock()
	p.stateIter = f
	p.stateMu.Unlock()
}

// IterState streams the operator's buffered tuples to emit; it stops early
// when emit returns false. Valid once the point is Done (the state is then
// immutable); it is a no-op for stateless points.
func (p *Point) IterState(emit func(t types.Tuple) bool) {
	p.stateMu.Lock()
	f := p.stateIter
	p.stateMu.Unlock()
	if f != nil {
		f(emit)
	}
}

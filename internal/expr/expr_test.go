package expr

import (
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func colRef(i int, k types.Kind) *ColRef {
	return &ColRef{Idx: i, Col: types.Column{Name: "c", Kind: k}}
}

func evalOn(e Expr, vals ...types.Value) types.Value {
	return e.Eval(types.Tuple(vals))
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		op   BinOp
		l, r types.Value
		want types.Value
	}{
		{OpAdd, types.Int(2), types.Int(3), types.Int(5)},
		{OpSub, types.Int(2), types.Int(3), types.Int(-1)},
		{OpMul, types.Int(4), types.Int(3), types.Int(12)},
		{OpDiv, types.Int(7), types.Int(2), types.Float(3.5)},
		{OpAdd, types.Float(0.5), types.Int(1), types.Float(1.5)},
		{OpMul, types.Float(2), types.Float(0.25), types.Float(0.5)},
	}
	for _, c := range cases {
		got := evalOn(&Binary{Op: c.op, L: &Const{V: c.l}, R: &Const{V: c.r}})
		if !types.Equal(got, c.want) {
			t.Errorf("%v %v %v = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	got := evalOn(&Binary{Op: OpDiv, L: &Const{V: types.Int(1)}, R: &Const{V: types.Int(0)}})
	if !got.IsNull() {
		t.Fatalf("1/0 = %v, want NULL", got)
	}
}

func TestComparisons(t *testing.T) {
	two := &Const{V: types.Int(2)}
	three := &Const{V: types.Int(3)}
	cases := []struct {
		op   BinOp
		want bool
	}{
		{OpEq, false}, {OpNe, true}, {OpLt, true},
		{OpLe, true}, {OpGt, false}, {OpGe, false},
	}
	for _, c := range cases {
		got := evalOn(&Binary{Op: c.op, L: two, R: three})
		if got.Truth() != c.want {
			t.Errorf("2 %v 3 = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	null := &Const{V: types.Null()}
	one := &Const{V: types.Int(1)}
	// Comparisons with NULL are NULL.
	if got := evalOn(&Binary{Op: OpEq, L: null, R: one}); !got.IsNull() {
		t.Fatalf("NULL = 1 evaluated to %v", got)
	}
	// Arithmetic with NULL is NULL.
	if got := evalOn(&Binary{Op: OpAdd, L: null, R: one}); !got.IsNull() {
		t.Fatalf("NULL + 1 evaluated to %v", got)
	}
	// Three-valued AND/OR.
	tru := &Const{V: types.Bool(true)}
	fls := &Const{V: types.Bool(false)}
	if got := evalOn(&Binary{Op: OpAnd, L: fls, R: null}); got.Truth() || got.IsNull() {
		t.Fatalf("false AND NULL = %v, want false", got)
	}
	if got := evalOn(&Binary{Op: OpAnd, L: tru, R: null}); !got.IsNull() {
		t.Fatalf("true AND NULL = %v, want NULL", got)
	}
	if got := evalOn(&Binary{Op: OpOr, L: tru, R: null}); !got.Truth() {
		t.Fatalf("true OR NULL = %v, want true", got)
	}
	if got := evalOn(&Binary{Op: OpOr, L: fls, R: null}); !got.IsNull() {
		t.Fatalf("false OR NULL = %v, want NULL", got)
	}
	// NOT NULL is NULL.
	if got := evalOn(&Not{E: null}); !got.IsNull() {
		t.Fatalf("NOT NULL = %v", got)
	}
	if got := evalOn(&Not{E: tru}); got.Truth() {
		t.Fatal("NOT true must be false")
	}
}

func TestShortCircuitAnd(t *testing.T) {
	// false AND <would-panic> must not evaluate the right side.
	fls := &Const{V: types.Bool(false)}
	panicky := &Year{E: colRef(99, types.KindDate)} // out-of-range column
	got := evalOn(&Binary{Op: OpAnd, L: fls, R: panicky}, types.Int(0))
	if got.Truth() {
		t.Fatal("false AND x must be false")
	}
}

func TestLikeMatching(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"STANDARD BRUSHED TIN", "%TIN", true},
		{"STANDARD BRUSHED TIN", "%BRASS", false},
		{"abc", "abc", true},
		{"abc", "a_c", true},
		{"abc", "a_d", false},
		{"abc", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"black olive", "%black%", true},
		{"pitch blACk", "%black%", false}, // case-sensitive
		{"xazb", "x%z_", true},
		{"banana", "%an%an%", true},
		{"banana", "b%na", true},
		{"mississippi", "%iss%ppi", true},
		{"abc", "", false},
	}
	for _, c := range cases {
		e := &Like{E: &Const{V: types.Str(c.s)}, Pattern: c.pat}
		if got := evalOn(e).Truth(); got != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.pat, got, c.want)
		}
		neg := &Like{E: &Const{V: types.Str(c.s)}, Pattern: c.pat, Negate: true}
		if got := evalOn(neg).Truth(); got == c.want {
			t.Errorf("%q NOT LIKE %q = %v, want %v", c.s, c.pat, got, !c.want)
		}
	}
	// NULL input stays NULL.
	if got := evalOn(&Like{E: &Const{V: types.Null()}, Pattern: "%"}); !got.IsNull() {
		t.Fatal("NULL LIKE must be NULL")
	}
}

func TestYear(t *testing.T) {
	cases := map[string]int64{
		"1970-01-01": 1970,
		"1969-12-31": 1969,
		"1995-06-15": 1995,
		"2000-02-29": 2000,
		"1992-01-01": 1992,
		"1998-12-31": 1998,
		"2007-01-01": 2007,
	}
	for s, want := range cases {
		e := &Year{E: &Const{V: types.MustDate(s)}}
		got := evalOn(e)
		if y, _ := got.AsInt(); y != want {
			t.Errorf("year(%s) = %v, want %d", s, got, want)
		}
	}
	if got := evalOn(&Year{E: &Const{V: types.Null()}}); !got.IsNull() {
		t.Fatal("year(NULL) must be NULL")
	}
}

func TestQuickYearMatchesCivilCalendar(t *testing.T) {
	f := func(d int32) bool {
		days := int64(d % 100000)
		got := yearOfDays(days)
		// Verify via types's date rendering (time package based).
		want := types.Date(days).String()[:4]
		gotStr := intToStr(got)
		return gotStr == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func intToStr(v int64) string {
	out := make([]byte, 0, 4)
	if v < 0 {
		return "neg"
	}
	for _, div := range []int64{1000, 100, 10, 1} {
		out = append(out, byte('0'+(v/div)%10))
	}
	return string(out)
}

func TestAndHelper(t *testing.T) {
	if And() != nil {
		t.Fatal("And() must be nil")
	}
	one := &Const{V: types.Bool(true)}
	if And(one) != one {
		t.Fatal("And(x) must be x")
	}
	combined := And(one, nil, one)
	if len(SplitConjuncts(combined)) != 2 {
		t.Fatal("And must skip nils and SplitConjuncts must flatten")
	}
}

func TestSplitConjuncts(t *testing.T) {
	a := &Const{V: types.Bool(true)}
	b := &Const{V: types.Bool(false)}
	c := &Const{V: types.Bool(true)}
	e := &Binary{Op: OpAnd, L: &Binary{Op: OpAnd, L: a, R: b}, R: c}
	if got := SplitConjuncts(e); len(got) != 3 {
		t.Fatalf("SplitConjuncts = %d parts", len(got))
	}
	if SplitConjuncts(nil) != nil {
		t.Fatal("nil must split to nil")
	}
	// OR is not split.
	or := &Binary{Op: OpOr, L: a, R: b}
	if got := SplitConjuncts(or); len(got) != 1 {
		t.Fatal("OR must not be split")
	}
}

func TestCollectColsAndMaxCol(t *testing.T) {
	e := &Binary{Op: OpAdd,
		L: colRef(2, types.KindInt),
		R: &Year{E: colRef(5, types.KindDate)}}
	cols := CollectCols(e, nil)
	if len(cols) != 2 || cols[0] != 2 || cols[1] != 5 {
		t.Fatalf("CollectCols = %v", cols)
	}
	if MaxCol(e) != 5 {
		t.Fatalf("MaxCol = %d", MaxCol(e))
	}
	if MaxCol(&Const{V: types.Int(1)}) != -1 {
		t.Fatal("constants reference no columns")
	}
}

func TestRemap(t *testing.T) {
	e := &Binary{Op: OpEq, L: colRef(3, types.KindInt), R: &Const{V: types.Int(7)}}
	mapped, ok := Remap(e, map[int]int{3: 0})
	if !ok {
		t.Fatal("remap failed")
	}
	if got := evalOn(mapped, types.Int(7)); !got.Truth() {
		t.Fatal("remapped expression wrong")
	}
	if _, ok := Remap(e, map[int]int{5: 0}); ok {
		t.Fatal("remap with missing column must fail")
	}
	// All node kinds survive remapping.
	complexE := &Not{E: &Like{E: &ColRef{Idx: 1, Col: types.Column{Kind: types.KindString}}, Pattern: "x%"}}
	if _, ok := Remap(complexE, map[int]int{1: 0}); !ok {
		t.Fatal("remap of Not/Like failed")
	}
}

func TestShift(t *testing.T) {
	e := &Binary{Op: OpAdd, L: colRef(0, types.KindInt), R: colRef(1, types.KindInt)}
	shifted := Shift(e, 2)
	got := evalOn(shifted, types.Int(0), types.Int(0), types.Int(3), types.Int(4))
	if v, _ := got.AsInt(); v != 7 {
		t.Fatalf("shifted eval = %v", got)
	}
	if Shift(nil, 1) != nil {
		t.Fatal("Shift(nil) must be nil")
	}
}

func TestEquiPair(t *testing.T) {
	l := colRef(0, types.KindInt)
	r := colRef(1, types.KindInt)
	if _, _, ok := EquiPair(&Binary{Op: OpEq, L: l, R: r}); !ok {
		t.Fatal("col = col must be an equi pair")
	}
	if _, _, ok := EquiPair(&Binary{Op: OpLt, L: l, R: r}); ok {
		t.Fatal("col < col is not an equi pair")
	}
	if _, _, ok := EquiPair(&Binary{Op: OpEq, L: l, R: &Const{V: types.Int(1)}}); ok {
		t.Fatal("col = const is not an equi pair")
	}
}

func TestKindInference(t *testing.T) {
	if (&Binary{Op: OpDiv, L: colRef(0, types.KindInt), R: colRef(1, types.KindInt)}).Kind() != types.KindFloat {
		t.Fatal("int/int division must be float")
	}
	if (&Binary{Op: OpAdd, L: colRef(0, types.KindInt), R: colRef(1, types.KindInt)}).Kind() != types.KindInt {
		t.Fatal("int+int must be int")
	}
	if (&Binary{Op: OpEq, L: colRef(0, types.KindInt), R: colRef(1, types.KindInt)}).Kind() != types.KindBool {
		t.Fatal("comparison must be bool")
	}
	if (&Year{E: colRef(0, types.KindDate)}).Kind() != types.KindInt {
		t.Fatal("year must be int")
	}
}

func TestStringRendering(t *testing.T) {
	e := &Binary{Op: OpLt,
		L: &Binary{Op: OpMul, L: &Const{V: types.Int(2)}, R: colRef(0, types.KindFloat)},
		R: &Const{V: types.Str("x")}}
	if got := e.String(); got != "((2 * c) < 'x')" {
		t.Fatalf("String = %q", got)
	}
	if Describe(SplitConjuncts(e)) == "" {
		t.Fatal("Describe must render")
	}
}

func TestQuickLikeLiteralPatterns(t *testing.T) {
	// A pattern with no wildcards matches only itself.
	f := func(s string) bool {
		if s == "" {
			return true
		}
		clean := ""
		for _, r := range s {
			if r != '%' && r != '_' {
				clean += string(r)
			}
		}
		if clean == "" {
			return true
		}
		return likeMatch(clean, clean) && !likeMatch(clean+"!", clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLikePrefixSuffix(t *testing.T) {
	f := func(pre, suf string) bool {
		s := pre + "-mid-" + suf
		return likeMatch(s, pre+"%") && likeMatch(s, "%"+suf) && likeMatch(s, pre+"%"+suf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

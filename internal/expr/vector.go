// Vectorized (batch-at-a-time) expression evaluation.
//
// Compile translates a bound Expr into a tree of type-specialized kernels
// evaluated one expression node per batch instead of one tuple per call:
// the per-tuple interface dispatch, Value boxing, and operator switch of
// the scalar Eval path are paid once per batch. Evaluation is driven by a
// selection vector — an ascending list of live lane (row) indices — so a
// kernel only touches lanes that earlier predicates kept alive, and a
// predicate narrows the selection in place instead of copying tuples.
//
// Contract (shared with the executor's Batch type):
//
//   - A selection vector sel lists live lanes of the batch in strictly
//     ascending order. EvalBatch writes dst[lane] for every lane in sel and
//     leaves dead lanes untouched; dst must have length ≥ len(b).
//   - EvalBool(b, sel, out) returns the sub-selection of sel on which the
//     expression is TRUE (SQL semantics: NULL and false both drop the
//     lane). out is overwritten from position 0 and may share its backing
//     array with sel — kernels only append a lane after it has been read —
//     but must not alias a shared read-only selection such as the
//     executor's identity table.
//   - The scalar Eval remains the reference implementation: both paths
//     funnel binary operators through the same evalBin helper, and the
//     differential tests in vector_test.go assert lane-for-lane agreement.
//
// A Compiled carries per-node scratch vectors (reused across batches, so
// steady-state evaluation performs zero allocations) and is therefore NOT
// safe for concurrent use: each operator goroutine compiles its own.
package expr

import (
	"fmt"

	"repro/internal/types"
)

// Compiled is the vectorized form of an Expr. Compile once per goroutine;
// see the package comment for the selection-vector contract.
type Compiled struct {
	root vecNode
	pred predNode
	kind types.Kind
	str  string
}

// Compile builds the vectorized evaluator for e; a nil expression compiles
// to nil.
func Compile(e Expr) *Compiled {
	if e == nil {
		return nil
	}
	n := compileNode(e)
	return &Compiled{root: n, pred: asPred(n), kind: e.Kind(), str: e.String()}
}

// Kind returns the statically inferred result type.
func (c *Compiled) Kind() types.Kind { return c.kind }

// String renders the source expression.
func (c *Compiled) String() string { return c.str }

// EvalBatch evaluates the expression for every lane in sel, writing the
// result to dst[lane]. dst must have length ≥ len(b); dead lanes are left
// untouched.
func (c *Compiled) EvalBatch(b []types.Tuple, sel []int32, dst []types.Value) {
	c.root.eval(b, sel, dst)
}

// EvalBool narrows sel to the lanes on which the expression evaluates to
// TRUE, writing the survivors into out (overwritten from position 0, may
// alias sel's backing array) and returning them. The result preserves
// sel's ascending order.
func (c *Compiled) EvalBool(b []types.Tuple, sel []int32, out []int32) []int32 {
	return c.pred.sift(b, sel, out[:0])
}

// vecNode produces a value vector: eval writes the node's value for every
// lane in sel into dst[lane].
type vecNode interface {
	eval(b []types.Tuple, sel []int32, dst []types.Value)
}

// predNode narrows a selection: sift appends to out the lanes of sel on
// which the node is TRUE, in order. Implementations must only append a
// lane after reading it from sel, so out may share sel's backing array.
type predNode interface {
	sift(b []types.Tuple, sel []int32, out []int32) []int32
}

// asPred adapts a node for predicate use; nodes that cannot produce
// selections natively are wrapped in a Truth() filter.
func asPred(n vecNode) predNode {
	if p, ok := n.(predNode); ok {
		return p
	}
	return &truthNode{n: n}
}

// asAndOperand adapts a node for operand position inside AND's sift.
// Scalar AND rejects an operand only when it is bool-false or NULL — a
// non-boolean value passes (and the conjunction then yields TRUE), so
// wrapping in Truth() semantics would wrongly drop such lanes. Native
// predicate nodes only ever produce Bool/NULL values, for which the TRUE
// set and the pass set coincide, so they are used directly.
func asAndOperand(n vecNode) predNode {
	if p, ok := n.(predNode); ok {
		return p
	}
	return &passNode{n: n}
}

// grow resizes a lane-indexed scratch vector to n lanes, reusing the
// backing array when it is large enough.
func grow(v []types.Value, n int) []types.Value {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]types.Value, n)
}

// Per-lane combination helpers. They mirror the scalar evaluator exactly:
// comparisons and arithmetic share evalBin with Binary.Eval, and the
// three-valued connectives reproduce its AND/OR/NOT branches as pure
// functions of the operand values (evaluation order cannot matter because
// expression evaluation is side-effect free).

// andValue is three-valued AND of two evaluated operands.
func andValue(l, r types.Value) types.Value {
	if l.K == types.KindBool && l.I == 0 {
		return types.Bool(false)
	}
	if r.K == types.KindBool && r.I == 0 {
		return types.Bool(false)
	}
	if l.IsNull() || r.IsNull() {
		return types.Null()
	}
	return types.Bool(true)
}

// orValue is three-valued OR of two evaluated operands.
func orValue(l, r types.Value) types.Value {
	if l.Truth() || r.Truth() {
		return types.Bool(true)
	}
	if l.IsNull() || r.IsNull() {
		return types.Null()
	}
	return types.Bool(false)
}

// notValue is three-valued NOT.
func notValue(v types.Value) types.Value {
	if v.IsNull() {
		return v
	}
	return types.Bool(!v.Truth())
}

// cmpWants decomposes a comparison operator into which Compare outcomes
// (-1, 0, +1) satisfy it, so kernels test outcomes with three register
// flags instead of re-switching on the operator per lane.
func cmpWants(op BinOp) (lt, eq, gt bool) {
	switch op {
	case OpEq:
		return false, true, false
	case OpNe:
		return true, false, true
	case OpLt:
		return true, false, false
	case OpLe:
		return true, true, false
	case OpGt:
		return false, false, true
	default: // OpGe
		return false, true, true
	}
}

// mirrorCmp flips a comparison for swapped operands: c op x  ⇔  x mirror(op) c.
func mirrorCmp(op BinOp) BinOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return op
	}
}

// cmpLanes compares two non-NULL values the way evalBin does, with the
// all-integer fast path inlined.
func cmpLanes(l, r types.Value) int {
	if (l.K == types.KindInt && r.K == types.KindInt) || (l.K == types.KindDate && r.K == types.KindDate) {
		switch {
		case l.I < r.I:
			return -1
		case l.I > r.I:
			return 1
		default:
			return 0
		}
	}
	return types.Compare(l, r)
}

// arithLane applies an arithmetic operator to *lp and *rp, writing the
// result to *dst. Operands travel by pointer so the all-int and all-float
// fast paths read two struct fields instead of copying 40-byte Values;
// everything else (NULLs, mixed kinds, dates) defers to the shared evalBin
// and therefore cannot diverge from the scalar path.
func arithLane(op BinOp, lp, rp, dst *types.Value) {
	if lp.K == types.KindInt && rp.K == types.KindInt {
		switch op {
		case OpAdd:
			*dst = types.Value{K: types.KindInt, I: lp.I + rp.I}
			return
		case OpSub:
			*dst = types.Value{K: types.KindInt, I: lp.I - rp.I}
			return
		case OpMul:
			*dst = types.Value{K: types.KindInt, I: lp.I * rp.I}
			return
		case OpDiv:
			if rp.I == 0 {
				*dst = types.Value{}
				return
			}
			*dst = types.Value{K: types.KindFloat, F: float64(lp.I) / float64(rp.I)}
			return
		}
	}
	if lp.K == types.KindFloat && rp.K == types.KindFloat {
		switch op {
		case OpAdd:
			*dst = types.Value{K: types.KindFloat, F: lp.F + rp.F}
			return
		case OpSub:
			*dst = types.Value{K: types.KindFloat, F: lp.F - rp.F}
			return
		case OpMul:
			*dst = types.Value{K: types.KindFloat, F: lp.F * rp.F}
			return
		case OpDiv:
			if rp.F == 0 {
				*dst = types.Value{}
				return
			}
			*dst = types.Value{K: types.KindFloat, F: lp.F / rp.F}
			return
		}
	}
	*dst = evalBin(op, *lp, *rp)
}

// compileNode lowers one Expr node to its most specialized kernel.
func compileNode(e Expr) vecNode {
	switch v := e.(type) {
	case *ColRef:
		return &colNode{idx: v.Idx}
	case *Const:
		return &constNode{v: v.V}
	case *Binary:
		switch v.Op {
		case OpAnd:
			l, r := compileNode(v.L), compileNode(v.R)
			return &andNode{l: l, r: r, lp: asAndOperand(l), rp: asAndOperand(r)}
		case OpOr:
			l, r := compileNode(v.L), compileNode(v.R)
			return &orNode{l: l, r: r, lp: asPred(l), rp: asPred(r)}
		}
		if v.Op.IsComparison() {
			if lc, ok := v.L.(*ColRef); ok {
				if rc, ok := v.R.(*Const); ok {
					return &cmpColConst{op: v.Op, idx: lc.Idx, c: rc.V}
				}
				if rc, ok := v.R.(*ColRef); ok {
					return &cmpColCol{op: v.Op, li: lc.Idx, ri: rc.Idx}
				}
			}
			if lc, ok := v.L.(*Const); ok {
				if rc, ok := v.R.(*ColRef); ok {
					return &cmpColConst{op: mirrorCmp(v.Op), idx: rc.Idx, c: lc.V}
				}
			}
			return &cmpNode{op: v.Op, l: compileNode(v.L), r: compileNode(v.R)}
		}
		if lc, ok := v.L.(*ColRef); ok {
			if rc, ok := v.R.(*Const); ok {
				return &arithColConst{op: v.Op, idx: lc.Idx, c: rc.V}
			}
			if rc, ok := v.R.(*ColRef); ok {
				return &arithColCol{op: v.Op, li: lc.Idx, ri: rc.Idx}
			}
		}
		if lc, ok := v.L.(*Const); ok {
			if rc, ok := v.R.(*ColRef); ok {
				return &arithColConst{op: v.Op, idx: rc.Idx, c: lc.V, constLeft: true}
			}
		}
		return &arithNode{op: v.Op, l: compileNode(v.L), r: compileNode(v.R)}
	case *Not:
		return &notNode{n: compileNode(v.E)}
	case *Like:
		return &likeNode{n: compileNode(v.E), pattern: v.Pattern, negate: v.Negate}
	case *Year:
		return &yearNode{n: compileNode(v.E)}
	default:
		panic(fmt.Sprintf("expr: Compile on %T", e))
	}
}

// colNode reads one input column.
type colNode struct{ idx int }

func (c *colNode) eval(b []types.Tuple, sel []int32, dst []types.Value) {
	idx := c.idx
	for _, l := range sel {
		dst[l] = b[l][idx]
	}
}

// constNode broadcasts a literal.
type constNode struct{ v types.Value }

func (c *constNode) eval(_ []types.Tuple, sel []int32, dst []types.Value) {
	v := c.v
	for _, l := range sel {
		dst[l] = v
	}
}

// cmpColConst compares one column against a literal: the hottest filter
// shape, evaluated without materializing either operand vector.
type cmpColConst struct {
	op  BinOp
	idx int
	c   types.Value
}

func (n *cmpColConst) eval(b []types.Tuple, sel []int32, dst []types.Value) {
	idx, c := n.idx, n.c
	ltOK, eqOK, gtOK := cmpWants(n.op)
	if c.IsNull() {
		for _, l := range sel {
			dst[l] = types.Null()
		}
		return
	}
	for _, l := range sel {
		v := b[l][idx]
		if v.K == types.KindNull {
			dst[l] = types.Null()
			continue
		}
		var cmp int
		if v.K == types.KindInt && c.K == types.KindInt {
			switch {
			case v.I < c.I:
				cmp = -1
			case v.I > c.I:
				cmp = 1
			}
		} else {
			cmp = cmpLanes(v, c)
		}
		dst[l] = types.Bool(cmp < 0 && ltOK || cmp == 0 && eqOK || cmp > 0 && gtOK)
	}
}

func (n *cmpColConst) sift(b []types.Tuple, sel []int32, out []int32) []int32 {
	idx, c := n.idx, n.c
	if c.IsNull() {
		return out
	}
	ltOK, eqOK, gtOK := cmpWants(n.op)
	for _, l := range sel {
		v := b[l][idx]
		var cmp int
		if v.K == types.KindInt && c.K == types.KindInt {
			switch {
			case v.I < c.I:
				cmp = -1
			case v.I > c.I:
				cmp = 1
			}
		} else if v.K == types.KindNull {
			continue
		} else {
			cmp = cmpLanes(v, c)
		}
		if cmp < 0 && ltOK || cmp == 0 && eqOK || cmp > 0 && gtOK {
			out = append(out, l)
		}
	}
	return out
}

// cmpColCol compares two columns of the same batch (join residuals are
// usually this shape over the concatenated row).
type cmpColCol struct {
	op     BinOp
	li, ri int
}

func (n *cmpColCol) eval(b []types.Tuple, sel []int32, dst []types.Value) {
	ltOK, eqOK, gtOK := cmpWants(n.op)
	for _, l := range sel {
		t := b[l]
		lv, rv := t[n.li], t[n.ri]
		if lv.K == types.KindNull || rv.K == types.KindNull {
			dst[l] = types.Null()
			continue
		}
		cmp := cmpLanes(lv, rv)
		dst[l] = types.Bool(cmp < 0 && ltOK || cmp == 0 && eqOK || cmp > 0 && gtOK)
	}
}

func (n *cmpColCol) sift(b []types.Tuple, sel []int32, out []int32) []int32 {
	ltOK, eqOK, gtOK := cmpWants(n.op)
	for _, l := range sel {
		t := b[l]
		lv, rv := t[n.li], t[n.ri]
		if lv.K == types.KindNull || rv.K == types.KindNull {
			continue
		}
		cmp := cmpLanes(lv, rv)
		if cmp < 0 && ltOK || cmp == 0 && eqOK || cmp > 0 && gtOK {
			out = append(out, l)
		}
	}
	return out
}

// cmpNode is the general comparison: both operand vectors materialized,
// then combined lane-at-a-time.
type cmpNode struct {
	op     BinOp
	l, r   vecNode
	lv, rv []types.Value
}

func (n *cmpNode) eval(b []types.Tuple, sel []int32, dst []types.Value) {
	n.lv, n.rv = grow(n.lv, len(b)), grow(n.rv, len(b))
	n.l.eval(b, sel, n.lv)
	n.r.eval(b, sel, n.rv)
	ltOK, eqOK, gtOK := cmpWants(n.op)
	for _, l := range sel {
		lv, rv := n.lv[l], n.rv[l]
		if lv.K == types.KindNull || rv.K == types.KindNull {
			dst[l] = types.Null()
			continue
		}
		cmp := cmpLanes(lv, rv)
		dst[l] = types.Bool(cmp < 0 && ltOK || cmp == 0 && eqOK || cmp > 0 && gtOK)
	}
}

func (n *cmpNode) sift(b []types.Tuple, sel []int32, out []int32) []int32 {
	n.lv, n.rv = grow(n.lv, len(b)), grow(n.rv, len(b))
	n.l.eval(b, sel, n.lv)
	n.r.eval(b, sel, n.rv)
	ltOK, eqOK, gtOK := cmpWants(n.op)
	for _, l := range sel {
		lv, rv := n.lv[l], n.rv[l]
		if lv.K == types.KindNull || rv.K == types.KindNull {
			continue
		}
		cmp := cmpLanes(lv, rv)
		if cmp < 0 && ltOK || cmp == 0 && eqOK || cmp > 0 && gtOK {
			out = append(out, l)
		}
	}
	return out
}

// arithColConst applies an arithmetic operator between a column and a
// literal (constLeft selects "literal op column" for the non-commutative
// operators).
type arithColConst struct {
	op        BinOp
	idx       int
	c         types.Value
	constLeft bool
}

func (n *arithColConst) eval(b []types.Tuple, sel []int32, dst []types.Value) {
	idx, op := n.idx, n.op
	c := n.c
	if n.constLeft {
		for _, l := range sel {
			arithLane(op, &c, &b[l][idx], &dst[l])
		}
		return
	}
	for _, l := range sel {
		arithLane(op, &b[l][idx], &c, &dst[l])
	}
}

// arithColCol applies an arithmetic operator between two columns.
type arithColCol struct {
	op     BinOp
	li, ri int
}

func (n *arithColCol) eval(b []types.Tuple, sel []int32, dst []types.Value) {
	li, ri, op := n.li, n.ri, n.op
	for _, l := range sel {
		t := b[l]
		arithLane(op, &t[li], &t[ri], &dst[l])
	}
}

// arithNode is the general arithmetic kernel over materialized operands.
type arithNode struct {
	op     BinOp
	l, r   vecNode
	lv, rv []types.Value
}

func (n *arithNode) eval(b []types.Tuple, sel []int32, dst []types.Value) {
	n.lv, n.rv = grow(n.lv, len(b)), grow(n.rv, len(b))
	n.l.eval(b, sel, n.lv)
	n.r.eval(b, sel, n.rv)
	op := n.op
	for _, l := range sel {
		arithLane(op, &n.lv[l], &n.rv[l], &dst[l])
	}
}

// andNode: as a predicate it short-circuits with selection vectors — the
// right side only ever sees lanes the left side kept. As a value it
// materializes both sides (side-effect-free, so the result is identical to
// the scalar short-circuit).
type andNode struct {
	l, r   vecNode
	lp, rp predNode
	lv, rv []types.Value
}

func (n *andNode) eval(b []types.Tuple, sel []int32, dst []types.Value) {
	n.lv, n.rv = grow(n.lv, len(b)), grow(n.rv, len(b))
	n.l.eval(b, sel, n.lv)
	n.r.eval(b, sel, n.rv)
	for _, l := range sel {
		dst[l] = andValue(n.lv[l], n.rv[l])
	}
}

func (n *andNode) sift(b []types.Tuple, sel []int32, out []int32) []int32 {
	out = n.lp.sift(b, sel, out)
	return n.rp.sift(b, out, out[:0])
}

// orNode: as a predicate the right side is evaluated only on the lanes the
// left side rejected, and the two survivor lists are merged back into
// selection order.
type orNode struct {
	l, r   vecNode
	lp, rp predNode
	lv, rv []types.Value
	sa, sb []int32
}

func (n *orNode) eval(b []types.Tuple, sel []int32, dst []types.Value) {
	n.lv, n.rv = grow(n.lv, len(b)), grow(n.rv, len(b))
	n.l.eval(b, sel, n.lv)
	n.r.eval(b, sel, n.rv)
	for _, l := range sel {
		dst[l] = orValue(n.lv[l], n.rv[l])
	}
}

func (n *orNode) sift(b []types.Tuple, sel []int32, out []int32) []int32 {
	n.sa = n.lp.sift(b, sel, n.sa[:0])
	// Lanes the left side did not keep; both lists are ascending.
	rej := n.sb[:0]
	i := 0
	for _, l := range sel {
		if i < len(n.sa) && n.sa[i] == l {
			i++
			continue
		}
		rej = append(rej, l)
	}
	n.sb = n.rp.sift(b, rej, rej[:0])
	// Merge the two ascending survivor lists; sel has been fully read, so
	// out may reuse its backing array.
	a, c := n.sa, n.sb
	i, k := 0, 0
	for i < len(a) && k < len(c) {
		if a[i] < c[k] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, c[k])
			k++
		}
	}
	out = append(out, a[i:]...)
	return append(out, c[k:]...)
}

// notNode is three-valued NOT; as a predicate it keeps lanes whose operand
// is non-NULL and not true (matching Eval: NOT NULL is NULL, which drops).
type notNode struct {
	n    vecNode
	vals []types.Value
}

func (m *notNode) eval(b []types.Tuple, sel []int32, dst []types.Value) {
	m.vals = grow(m.vals, len(b))
	m.n.eval(b, sel, m.vals)
	for _, l := range sel {
		dst[l] = notValue(m.vals[l])
	}
}

func (m *notNode) sift(b []types.Tuple, sel []int32, out []int32) []int32 {
	m.vals = grow(m.vals, len(b))
	m.n.eval(b, sel, m.vals)
	for _, l := range sel {
		v := m.vals[l]
		if v.K != types.KindNull && !v.Truth() {
			out = append(out, l)
		}
	}
	return out
}

// likeNode matches a constant LIKE pattern.
type likeNode struct {
	n       vecNode
	pattern string
	negate  bool
	vals    []types.Value
}

func (m *likeNode) eval(b []types.Tuple, sel []int32, dst []types.Value) {
	m.vals = grow(m.vals, len(b))
	m.n.eval(b, sel, m.vals)
	for _, l := range sel {
		v := m.vals[l]
		if v.IsNull() {
			dst[l] = v
			continue
		}
		dst[l] = types.Bool(likeMatch(v.S, m.pattern) != m.negate)
	}
}

func (m *likeNode) sift(b []types.Tuple, sel []int32, out []int32) []int32 {
	m.vals = grow(m.vals, len(b))
	m.n.eval(b, sel, m.vals)
	for _, l := range sel {
		v := m.vals[l]
		if !v.IsNull() && likeMatch(v.S, m.pattern) != m.negate {
			out = append(out, l)
		}
	}
	return out
}

// yearNode extracts the calendar year of a date vector.
type yearNode struct {
	n    vecNode
	vals []types.Value
}

func (m *yearNode) eval(b []types.Tuple, sel []int32, dst []types.Value) {
	m.vals = grow(m.vals, len(b))
	m.n.eval(b, sel, m.vals)
	for _, l := range sel {
		v := m.vals[l]
		if v.IsNull() {
			dst[l] = v
			continue
		}
		days, _ := v.AsInt()
		dst[l] = types.Int(yearOfDays(days))
	}
}

// passNode keeps the lanes an AND conjunction does not reject: operand
// non-NULL and not bool-false (see asAndOperand; matches the scalar
// Binary.Eval AND branch exactly).
type passNode struct {
	n    vecNode
	vals []types.Value
}

func (m *passNode) eval(b []types.Tuple, sel []int32, dst []types.Value) {
	m.n.eval(b, sel, dst)
}

func (m *passNode) sift(b []types.Tuple, sel []int32, out []int32) []int32 {
	m.vals = grow(m.vals, len(b))
	m.n.eval(b, sel, m.vals)
	for _, l := range sel {
		v := m.vals[l]
		if v.K != types.KindNull && !(v.K == types.KindBool && v.I == 0) {
			out = append(out, l)
		}
	}
	return out
}

// truthNode adapts any value-producing node to predicate position: a lane
// survives iff the value is a true boolean (SQL WHERE semantics).
type truthNode struct {
	n    vecNode
	vals []types.Value
}

func (m *truthNode) eval(b []types.Tuple, sel []int32, dst []types.Value) {
	m.n.eval(b, sel, dst)
}

func (m *truthNode) sift(b []types.Tuple, sel []int32, out []int32) []int32 {
	m.vals = grow(m.vals, len(b))
	m.n.eval(b, sel, m.vals)
	for _, l := range sel {
		if m.vals[l].Truth() {
			out = append(out, l)
		}
	}
	return out
}

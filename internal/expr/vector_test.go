package expr

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

// The vectorized evaluator's acceptance property: EvalBatch / EvalBool
// agree lane-for-lane with the scalar reference Eval on randomized
// expression trees, batches (including NULLs and empty batches), and
// selection vectors (full, empty, strided, random, in-place).

// exprGen builds random well-typed expressions over a fixed test schema.
// Comparisons stay within a type family (numeric vs numeric, string vs
// string) — the binder enforces the same, and types.Compare panics on
// cross-family comparisons by design.
type exprGen struct{ r *rand.Rand }

// Test schema: column index → kind.
var genCols = []types.Kind{
	types.KindInt, types.KindInt, types.KindFloat, types.KindString,
	types.KindDate, types.KindBool, types.KindInt,
}

func (g *exprGen) colOf(k types.Kind) Expr {
	idxs := []int{}
	for i, ck := range genCols {
		if ck == k {
			idxs = append(idxs, i)
		}
	}
	i := idxs[g.r.Intn(len(idxs))]
	return &ColRef{Idx: i, Col: types.Column{Name: "c", Kind: k}}
}

func (g *exprGen) numeric(depth int) Expr {
	if depth <= 0 {
		switch g.r.Intn(4) {
		case 0:
			return g.colOf(types.KindInt)
		case 1:
			return g.colOf(types.KindFloat)
		case 2:
			return &Const{V: types.Int(int64(g.r.Intn(21) - 10))}
		default:
			return &Const{V: types.Float(float64(g.r.Intn(41)-20) / 4)}
		}
	}
	switch g.r.Intn(6) {
	case 0, 1, 2:
		ops := []BinOp{OpAdd, OpSub, OpMul, OpDiv}
		return &Binary{Op: ops[g.r.Intn(len(ops))], L: g.numeric(depth - 1), R: g.numeric(depth - 1)}
	case 3:
		return &Year{E: g.colOf(types.KindDate)}
	default:
		return g.numeric(0)
	}
}

func (g *exprGen) boolean(depth int) Expr {
	if depth <= 0 {
		if g.r.Intn(2) == 0 {
			return g.colOf(types.KindBool)
		}
		return &Const{V: types.Bool(g.r.Intn(2) == 0)}
	}
	cmps := []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	switch g.r.Intn(8) {
	case 0, 1:
		// Numeric comparison (dates and booleans are numeric for Compare).
		mk := func() Expr {
			switch g.r.Intn(3) {
			case 0:
				return g.numeric(depth - 1)
			case 1:
				return g.colOf(types.KindDate)
			default:
				return g.colOf(types.KindBool)
			}
		}
		return &Binary{Op: cmps[g.r.Intn(len(cmps))], L: mk(), R: mk()}
	case 2:
		// String comparison; constants exercise the col⊕const kernels.
		strs := []Expr{g.colOf(types.KindString), &Const{V: types.Str(randWord(g.r))}}
		l := strs[g.r.Intn(2)]
		r := strs[g.r.Intn(2)]
		return &Binary{Op: cmps[g.r.Intn(len(cmps))], L: l, R: r}
	case 3:
		return &Like{E: g.colOf(types.KindString), Pattern: randPattern(g.r), Negate: g.r.Intn(2) == 0}
	case 4:
		return &Not{E: g.boolean(depth - 1)}
	case 5, 6:
		op := OpAnd
		if g.r.Intn(2) == 0 {
			op = OpOr
		}
		// Occasionally feed a non-boolean operand: scalar AND rejects only
		// bool-false/NULL operands (a bare number passes), while OR keys on
		// Truth() — the vectorized connectives must reproduce both.
		mk := func() Expr {
			if g.r.Intn(4) == 0 {
				return g.numeric(depth - 1)
			}
			return g.boolean(depth - 1)
		}
		return &Binary{Op: op, L: mk(), R: mk()}
	default:
		return g.boolean(0)
	}
}

func randWord(r *rand.Rand) string {
	n := r.Intn(5)
	b := make([]byte, n)
	for i := range b {
		b[i] = "abx%"[r.Intn(4)]
	}
	return string(b)
}

func randPattern(r *rand.Rand) string {
	n := r.Intn(4)
	b := make([]byte, n)
	for i := range b {
		b[i] = "ab%_"[r.Intn(4)]
	}
	return string(b)
}

// randBatch builds n tuples over genCols with ~12% NULLs.
func randBatch(r *rand.Rand, n int) []types.Tuple {
	b := make([]types.Tuple, n)
	for i := range b {
		t := make(types.Tuple, len(genCols))
		for c, k := range genCols {
			if r.Intn(8) == 0 {
				t[c] = types.Null()
				continue
			}
			switch k {
			case types.KindInt:
				t[c] = types.Int(int64(r.Intn(21) - 10))
			case types.KindFloat:
				t[c] = types.Float(float64(r.Intn(41)-20) / 4)
			case types.KindString:
				t[c] = types.Str(randWord(r))
			case types.KindDate:
				t[c] = types.Date(int64(r.Intn(40000) - 5000))
			case types.KindBool:
				t[c] = types.Bool(r.Intn(2) == 0)
			}
		}
		b[i] = t
	}
	return b
}

// selVariants enumerates selection shapes over an n-lane batch.
func selVariants(r *rand.Rand, n int) [][]int32 {
	full := make([]int32, n)
	for i := range full {
		full[i] = int32(i)
	}
	var every2, sub []int32
	for i := 0; i < n; i += 2 {
		every2 = append(every2, int32(i))
	}
	for i := 0; i < n; i++ {
		if r.Intn(3) == 0 {
			sub = append(sub, int32(i))
		}
	}
	out := [][]int32{full, {}, every2, sub}
	if n > 0 {
		out = append(out, []int32{int32(r.Intn(n))})
	}
	return out
}

func valueEq(a, b types.Value) bool {
	if a.K != b.K {
		return false
	}
	if a.F != b.F && !(a.F != a.F && b.F != b.F) { // NaN-tolerant
		return false
	}
	return a.I == b.I && a.S == b.S
}

// poison marks lanes the evaluator must not touch.
var poison = types.Value{K: types.Kind(0xEE), I: -1}

func TestVectorizedEvalMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(0xAB5E11))
	g := &exprGen{r: r}
	for iter := 0; iter < 400; iter++ {
		var e Expr
		if iter%2 == 0 {
			e = g.boolean(3)
		} else {
			e = g.numeric(3)
		}
		c := Compile(e)
		for _, n := range []int{0, 1, 7, 128, 130} {
			b := randBatch(r, n)
			for _, sel := range selVariants(r, n) {
				// EvalBatch: selected lanes match scalar Eval, dead lanes
				// stay untouched.
				dst := make([]types.Value, n)
				for i := range dst {
					dst[i] = poison
				}
				c.EvalBatch(b, sel, dst)
				inSel := make(map[int32]bool, len(sel))
				for _, l := range sel {
					inSel[l] = true
					want := e.Eval(b[l])
					if !valueEq(want, dst[l]) {
						t.Fatalf("iter %d: %s lane %d = %v, scalar %v", iter, e, l, dst[l], want)
					}
				}
				for l := 0; l < n; l++ {
					if !inSel[int32(l)] && dst[l] != poison {
						t.Fatalf("iter %d: %s wrote dead lane %d", iter, e, l)
					}
				}

				// EvalBool: survivors are exactly the scalar-TRUE lanes, in
				// order — both into a fresh buffer and narrowing in place.
				var want []int32
				for _, l := range sel {
					if e.Eval(b[l]).Truth() {
						want = append(want, l)
					}
				}
				got := c.EvalBool(b, sel, nil)
				checkSel(t, e, "fresh", want, got)
				inPlace := append([]int32(nil), sel...)
				got = c.EvalBool(b, inPlace, inPlace)
				checkSel(t, e, "in-place", want, got)
			}
		}
	}
}

func checkSel(t *testing.T, e Expr, mode string, want, got []int32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s (%s): %d survivors, scalar %d (got %v want %v)", e, mode, len(got), len(want), got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s (%s): survivor[%d] = %d, scalar %d", e, mode, i, got[i], want[i])
		}
	}
}

// TestEvalBoolSteadyStateAllocs pins the filter hot path to zero
// allocations per batch once scratch has warmed up.
func TestEvalBoolSteadyStateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	b := randBatch(r, 128)
	pred := &Binary{Op: OpAnd,
		L: &Binary{Op: OpGt, L: &ColRef{Idx: 0, Col: types.Column{Kind: types.KindInt}}, R: &Const{V: types.Int(-5)}},
		R: &Binary{Op: OpOr,
			L: &Binary{Op: OpLt, L: &ColRef{Idx: 1, Col: types.Column{Kind: types.KindInt}}, R: &Const{V: types.Int(5)}},
			R: &Binary{Op: OpGe, L: &ColRef{Idx: 2, Col: types.Column{Kind: types.KindFloat}}, R: &Const{V: types.Float(0)}}}}
	c := Compile(pred)
	sel := make([]int32, 128)
	for i := range sel {
		sel[i] = int32(i)
	}
	out := make([]int32, 0, 128)
	c.EvalBool(b, sel, out) // warm scratch
	allocs := testing.AllocsPerRun(100, func() {
		c.EvalBool(b, sel, out)
	})
	if allocs != 0 {
		t.Fatalf("EvalBool steady state allocates %.1f per batch, want 0", allocs)
	}
}

// TestCompileNil mirrors the executor's convention: absent expressions
// compile to nil.
func TestCompileNil(t *testing.T) {
	if Compile(nil) != nil {
		t.Fatal("Compile(nil) != nil")
	}
}

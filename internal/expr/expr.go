// Package expr defines bound (position-resolved) scalar expressions: the
// executable form produced by the plan binder and evaluated by the push
// executor for selections, join residuals, projections, and aggregates.
//
// Expressions evaluate two ways. Expr.Eval is the scalar reference
// implementation: one tuple per call, used on cold paths and by the
// differential tests. Compile lowers an Expr into type-specialized
// vectorized kernels (EvalBatch / EvalBool) that process a batch of tuples
// per call under a selection vector; see vector.go for the
// selection-vector contract shared with the executor. Both paths funnel
// binary operators through one helper, so they cannot diverge
// semantically.
package expr

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Expr is an executable scalar expression over one input tuple.
type Expr interface {
	// Eval computes the expression's value for the tuple.
	Eval(t types.Tuple) types.Value
	// Kind is the statically inferred result type.
	Kind() types.Kind
	// String renders the expression for plan display.
	String() string
}

// ColRef reads column Idx of the input tuple.
type ColRef struct {
	Idx int
	Col types.Column
}

// Eval returns the referenced column's value.
func (c *ColRef) Eval(t types.Tuple) types.Value { return t[c.Idx] }

// Kind returns the column's declared type.
func (c *ColRef) Kind() types.Kind { return c.Col.Kind }

func (c *ColRef) String() string { return c.Col.QualifiedName() }

// Const is a literal value.
type Const struct{ V types.Value }

// Eval returns the literal.
func (c *Const) Eval(types.Tuple) types.Value { return c.V }

// Kind returns the literal's type.
func (c *Const) Kind() types.Kind { return c.V.K }

func (c *Const) String() string {
	if c.V.K == types.KindString {
		return "'" + c.V.S + "'"
	}
	return c.V.String()
}

// Param is a `?` placeholder of a prepared statement: position Idx in the
// argument list, with the type inferred at bind time from the expression it
// is compared against (KindInt when nothing constrains it). Params never
// reach execution — BindParams substitutes them with typed Const nodes
// before the plan is instantiated, so the vectorized const kernels
// (cmpColConst, arithColConst) are reused unchanged.
type Param struct {
	Idx int
	Knd types.Kind
}

// Eval panics: a parameter must be substituted before evaluation.
func (p *Param) Eval(types.Tuple) types.Value {
	panic(fmt.Sprintf("expr: unbound parameter ?%d evaluated", p.Idx+1))
}

// Kind returns the inferred parameter type (KindInt when unconstrained).
func (p *Param) Kind() types.Kind {
	if p.Knd == types.KindNull {
		return types.KindInt
	}
	return p.Knd
}

func (p *Param) String() string { return fmt.Sprintf("?%d", p.Idx+1) }

// BindParams substitutes every Param in e with a Const holding the
// corresponding argument, returning a new expression tree (shared subtrees
// without params are reused as-is). Arguments are coerced to the inferred
// parameter kind where the coercion is lossless: int→float, and
// 'YYYY-MM-DD' strings→date. A reference to an argument beyond len(args)
// is an error.
func BindParams(e Expr, args []types.Value) (Expr, error) {
	switch v := e.(type) {
	case nil:
		return nil, nil
	case *Param:
		if v.Idx < 0 || v.Idx >= len(args) {
			return nil, fmt.Errorf("expr: statement references parameter ?%d but only %d argument(s) were bound", v.Idx+1, len(args))
		}
		val, err := coerceParam(args[v.Idx], v.Kind())
		if err != nil {
			return nil, fmt.Errorf("expr: parameter ?%d: %w", v.Idx+1, err)
		}
		return &Const{V: val}, nil
	case *ColRef, *Const:
		return e, nil
	case *Binary:
		l, err := BindParams(v.L, args)
		if err != nil {
			return nil, err
		}
		r, err := BindParams(v.R, args)
		if err != nil {
			return nil, err
		}
		if l == v.L && r == v.R {
			return v, nil
		}
		return &Binary{Op: v.Op, L: l, R: r}, nil
	case *Not:
		inner, err := BindParams(v.E, args)
		if err != nil {
			return nil, err
		}
		if inner == v.E {
			return v, nil
		}
		return &Not{E: inner}, nil
	case *Like:
		inner, err := BindParams(v.E, args)
		if err != nil {
			return nil, err
		}
		if inner == v.E {
			return v, nil
		}
		return &Like{E: inner, Pattern: v.Pattern, Negate: v.Negate}, nil
	case *Year:
		inner, err := BindParams(v.E, args)
		if err != nil {
			return nil, err
		}
		if inner == v.E {
			return v, nil
		}
		return &Year{E: inner}, nil
	default:
		return nil, fmt.Errorf("expr: BindParams on %T", e)
	}
}

// coerceParam adapts an argument value to the parameter's inferred kind.
// Mixed numeric kinds pass through (comparisons define int vs float);
// anything else that does not match is an error — a wrongly-typed argument
// must not silently compare false on every row.
func coerceParam(v types.Value, want types.Kind) (types.Value, error) {
	if v.K == want || v.IsNull() {
		return v, nil
	}
	switch {
	case want == types.KindFloat && v.K == types.KindInt:
		return types.Float(float64(v.I)), nil
	case want == types.KindInt && v.K == types.KindFloat:
		return v, nil
	case want == types.KindDate && v.K == types.KindString:
		d, err := types.DateFromLooseString(v.S)
		if err != nil {
			return types.Null(), fmt.Errorf("argument %q is not a date", v.S)
		}
		return d, nil
	default:
		return types.Null(), fmt.Errorf("argument %s does not match the parameter's inferred type %s", v, want)
	}
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators: arithmetic, comparison, and boolean connectives.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR",
}

// String returns the SQL spelling of the operator.
func (op BinOp) String() string { return binOpNames[op] }

// IsComparison reports whether op is one of = <> < <= > >=.
func (op BinOp) IsComparison() bool { return op >= OpEq && op <= OpGe }

// Binary applies Op to L and R.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Eval evaluates the operands and applies the operator with SQL NULL
// semantics: any NULL operand yields NULL (and AND/OR use three-valued
// logic).
func (b *Binary) Eval(t types.Tuple) types.Value {
	switch b.Op {
	case OpAnd:
		l := b.L.Eval(t)
		if l.K == types.KindBool && l.I == 0 {
			return types.Bool(false)
		}
		r := b.R.Eval(t)
		if r.K == types.KindBool && r.I == 0 {
			return types.Bool(false)
		}
		if l.IsNull() || r.IsNull() {
			return types.Null()
		}
		return types.Bool(true)
	case OpOr:
		l := b.L.Eval(t)
		if l.Truth() {
			return types.Bool(true)
		}
		r := b.R.Eval(t)
		if r.Truth() {
			return types.Bool(true)
		}
		if l.IsNull() || r.IsNull() {
			return types.Null()
		}
		return types.Bool(false)
	}
	return evalBin(b.Op, b.L.Eval(t), b.R.Eval(t))
}

// evalBin applies a comparison or arithmetic operator to two evaluated
// operands. It is the single implementation behind both the scalar
// Binary.Eval and the vectorized kernels in vector.go, so the two paths
// cannot diverge on NULL, mixed-kind, or division-by-zero semantics.
func evalBin(op BinOp, l, r types.Value) types.Value {
	if l.IsNull() || r.IsNull() {
		return types.Null()
	}
	if op.IsComparison() {
		cmp := types.Compare(l, r)
		switch op {
		case OpEq:
			return types.Bool(cmp == 0)
		case OpNe:
			return types.Bool(cmp != 0)
		case OpLt:
			return types.Bool(cmp < 0)
		case OpLe:
			return types.Bool(cmp <= 0)
		case OpGt:
			return types.Bool(cmp > 0)
		default:
			return types.Bool(cmp >= 0)
		}
	}
	// Arithmetic: integer when both sides are integers (except division),
	// float otherwise.
	if l.K == types.KindInt && r.K == types.KindInt && op != OpDiv {
		switch op {
		case OpAdd:
			return types.Int(l.I + r.I)
		case OpSub:
			return types.Int(l.I - r.I)
		case OpMul:
			return types.Int(l.I * r.I)
		}
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return types.Null()
	}
	switch op {
	case OpAdd:
		return types.Float(lf + rf)
	case OpSub:
		return types.Float(lf - rf)
	case OpMul:
		return types.Float(lf * rf)
	case OpDiv:
		if rf == 0 {
			return types.Null()
		}
		return types.Float(lf / rf)
	default:
		panic(fmt.Sprintf("expr: unhandled operator %v", op))
	}
}

// Kind infers the static result type.
func (b *Binary) Kind() types.Kind {
	if b.Op.IsComparison() || b.Op == OpAnd || b.Op == OpOr {
		return types.KindBool
	}
	if b.Op != OpDiv && b.L.Kind() == types.KindInt && b.R.Kind() == types.KindInt {
		return types.KindInt
	}
	return types.KindFloat
}

func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Not negates a boolean expression with three-valued logic.
type Not struct{ E Expr }

// Eval negates; NULL stays NULL.
func (n *Not) Eval(t types.Tuple) types.Value {
	v := n.E.Eval(t)
	if v.IsNull() {
		return v
	}
	return types.Bool(!v.Truth())
}

// Kind returns boolean.
func (n *Not) Kind() types.Kind { return types.KindBool }

func (n *Not) String() string { return "NOT " + n.E.String() }

// Like implements SQL LIKE with % and _ wildcards over a constant pattern.
type Like struct {
	E       Expr
	Pattern string
	Negate  bool
}

// Eval matches the pattern.
func (l *Like) Eval(t types.Tuple) types.Value {
	v := l.E.Eval(t)
	if v.IsNull() {
		return v
	}
	m := likeMatch(v.S, l.Pattern)
	if l.Negate {
		m = !m
	}
	return types.Bool(m)
}

// Kind returns boolean.
func (l *Like) Kind() types.Kind { return types.KindBool }

func (l *Like) String() string {
	op := "LIKE"
	if l.Negate {
		op = "NOT LIKE"
	}
	return l.E.String() + " " + op + " '" + l.Pattern + "'"
}

// likeMatch implements %/_ glob matching without regexp, case-sensitive as
// in standard SQL.
func likeMatch(s, pat string) bool {
	// Iterative two-pointer algorithm with backtracking on %.
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star = pi
			match = si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// Year extracts the calendar year from a date expression (the paper's Q5
// uses year(o_orderdate)).
type Year struct{ E Expr }

// Eval converts days-since-epoch to a calendar year.
func (y *Year) Eval(t types.Tuple) types.Value {
	v := y.E.Eval(t)
	if v.IsNull() {
		return v
	}
	days, _ := v.AsInt()
	return types.Int(yearOfDays(days))
}

// Kind returns integer.
func (y *Year) Kind() types.Kind { return types.KindInt }

func (y *Year) String() string { return "year(" + y.E.String() + ")" }

// yearOfDays converts a day count since 1970-01-01 to a calendar year using
// civil-calendar arithmetic (no time package needed on the hot path).
func yearOfDays(days int64) int64 {
	// Shift epoch to 0000-03-01 (era-based algorithm, Howard Hinnant).
	z := days + 719468
	era := z / 146097
	if z < 0 {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	if mp >= 10 {
		return y + 1
	}
	return y
}

// And conjoins the expressions, returning nil for an empty list.
func And(exprs ...Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &Binary{Op: OpAnd, L: out, R: e}
		}
	}
	return out
}

// SplitConjuncts flattens nested ANDs into a conjunct list.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// CollectCols appends the column indices referenced by e to dst (with
// duplicates preserved in reference order).
func CollectCols(e Expr, dst []int) []int {
	switch v := e.(type) {
	case nil:
		return dst
	case *ColRef:
		return append(dst, v.Idx)
	case *Const, *Param:
		return dst
	case *Binary:
		return CollectCols(v.R, CollectCols(v.L, dst))
	case *Not:
		return CollectCols(v.E, dst)
	case *Like:
		return CollectCols(v.E, dst)
	case *Year:
		return CollectCols(v.E, dst)
	default:
		panic(fmt.Sprintf("expr: CollectCols on %T", e))
	}
}

// Remap rewrites every column reference through the mapping old→new
// position; a missing mapping returns ok=false (the expression references a
// column the new schema does not carry).
func Remap(e Expr, mapping map[int]int) (Expr, bool) {
	switch v := e.(type) {
	case nil:
		return nil, true
	case *ColRef:
		if ni, ok := mapping[v.Idx]; ok {
			return &ColRef{Idx: ni, Col: v.Col}, true
		}
		return nil, false
	case *Const:
		return v, true
	case *Param:
		return v, true
	case *Binary:
		l, ok := Remap(v.L, mapping)
		if !ok {
			return nil, false
		}
		r, ok := Remap(v.R, mapping)
		if !ok {
			return nil, false
		}
		return &Binary{Op: v.Op, L: l, R: r}, true
	case *Not:
		inner, ok := Remap(v.E, mapping)
		if !ok {
			return nil, false
		}
		return &Not{E: inner}, true
	case *Like:
		inner, ok := Remap(v.E, mapping)
		if !ok {
			return nil, false
		}
		return &Like{E: inner, Pattern: v.Pattern, Negate: v.Negate}, true
	case *Year:
		inner, ok := Remap(v.E, mapping)
		if !ok {
			return nil, false
		}
		return &Year{E: inner}, true
	default:
		panic(fmt.Sprintf("expr: Remap on %T", e))
	}
}

// Shift remaps all column references by a constant offset, used when an
// expression bound against a join's right input must run over concatenated
// join output.
func Shift(e Expr, offset int) Expr {
	switch v := e.(type) {
	case nil:
		return nil
	case *ColRef:
		return &ColRef{Idx: v.Idx + offset, Col: v.Col}
	case *Const, *Param:
		return e
	case *Binary:
		return &Binary{Op: v.Op, L: Shift(v.L, offset), R: Shift(v.R, offset)}
	case *Not:
		return &Not{E: Shift(v.E, offset)}
	case *Like:
		return &Like{E: Shift(v.E, offset), Pattern: v.Pattern, Negate: v.Negate}
	case *Year:
		return &Year{E: Shift(v.E, offset)}
	default:
		panic(fmt.Sprintf("expr: Shift on %T", e))
	}
}

// EquiPair extracts (leftCol, rightCol) when e is `col = col`; ok=false
// otherwise.
func EquiPair(e Expr) (l, r *ColRef, ok bool) {
	b, isBin := e.(*Binary)
	if !isBin || b.Op != OpEq {
		return nil, nil, false
	}
	lc, lok := b.L.(*ColRef)
	rc, rok := b.R.(*ColRef)
	if !lok || !rok {
		return nil, nil, false
	}
	return lc, rc, true
}

// MaxCol returns the largest column index referenced, or -1 for none.
func MaxCol(e Expr) int {
	max := -1
	for _, c := range CollectCols(e, nil) {
		if c > max {
			max = c
		}
	}
	return max
}

// Describe renders a conjunct list for debugging.
func Describe(conjuncts []Expr) string {
	parts := make([]string, len(conjuncts))
	for i, c := range conjuncts {
		parts[i] = c.String()
	}
	return strings.Join(parts, " AND ")
}

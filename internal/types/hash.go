package types

import (
	"encoding/binary"
	"math/bits"
)

// The engine hashes every tuple key exactly once: Hash64 over the canonical
// AppendKey encoding. The resulting 64-bit value is reused by the join and
// aggregation tables (internal/exec), the Bloom filter (bloom.AddHash /
// bloom.ProbeHash), and the exact hash-set summary, so no consumer ever
// re-encodes or re-hashes the key bytes.
//
// The function is a wyhash-style construction built on 64×64→128-bit
// multiplication folds; it is fast on short keys (the common case: one or
// two fixed-width columns) and well distributed enough to drive
// open-addressing tables and single-hash Bloom filters directly.

const (
	wyp0 = 0xa0761d6478bd642f
	wyp1 = 0xe7037ed1a0b428db
	wyp2 = 0x8ebc6af09c88c6e3
	wyp3 = 0x589965cc75374cc3
)

func wymix(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi ^ lo
}

// Hash64 hashes b with the given seed. Key hashes throughout the engine use
// seed 0; consumers needing independent bit streams (Bloom filters with
// nonzero seeds) derive them with Mix64 rather than rehashing the bytes.
func Hash64(b []byte, seed uint64) uint64 {
	n := len(b)
	seed ^= wyp0
	var a, c uint64
	switch {
	case n <= 16:
		// Two overlapping fixed-width loads cover every length in the
		// range; the 8-byte case (one or two fixed-width key columns —
		// the engine's hottest shape) pays two loads and nothing else.
		switch {
		case n >= 8:
			a = binary.LittleEndian.Uint64(b)
			c = binary.LittleEndian.Uint64(b[n-8:])
		case n >= 4:
			a = uint64(binary.LittleEndian.Uint32(b))
			c = uint64(binary.LittleEndian.Uint32(b[n-4:]))
		case n > 0:
			a = uint64(b[0])<<16 | uint64(b[n>>1])<<8 | uint64(b[n-1])
		}
	default:
		i := n
		p := b
		if i > 48 {
			s1, s2 := seed, seed
			for ; i > 48; i -= 48 {
				seed = wymix(binary.LittleEndian.Uint64(p)^wyp1, binary.LittleEndian.Uint64(p[8:])^seed)
				s1 = wymix(binary.LittleEndian.Uint64(p[16:])^wyp2, binary.LittleEndian.Uint64(p[24:])^s1)
				s2 = wymix(binary.LittleEndian.Uint64(p[32:])^wyp3, binary.LittleEndian.Uint64(p[40:])^s2)
				p = p[48:]
			}
			seed ^= s1 ^ s2
		}
		for ; i > 16; i -= 16 {
			seed = wymix(binary.LittleEndian.Uint64(p)^wyp1, binary.LittleEndian.Uint64(p[8:])^seed)
			p = p[16:]
		}
		a = binary.LittleEndian.Uint64(b[n-16:])
		c = binary.LittleEndian.Uint64(b[n-8:])
	}
	return wymix(wyp1^uint64(n), wymix(a^wyp1, c^seed))
}

// Mix64 folds two 64-bit values into a well-distributed result. It derives
// per-seed Bloom bit positions from an already-computed key hash without
// touching the key bytes again.
func Mix64(a, b uint64) uint64 {
	return wymix(a^wyp0, b^wyp1)
}

// HashIntKey returns Hash64(Int(v).AppendKey(nil), 0) computed entirely in
// registers: the canonical integer-kind encoding is the 0x01 tag followed
// by the big-endian payload, so the two overlapping 8-byte loads Hash64
// would perform on those 9 bytes are byte-reversals of v. Batch key kernels
// use it to hash single-integer keys without re-reading the bytes they just
// encoded; TestHashIntKeyMatchesHash64 pins the equivalence.
func HashIntKey(v int64) uint64 {
	r := bits.ReverseBytes64(uint64(v))
	return wymix(wyp1^9, wymix((r<<8|0x01)^wyp1, r^wyp0))
}

// Hasher computes hash-once tuple keys: one canonical encoding pass and one
// Hash64 per (tuple, column set). The internal buffer is reused across
// calls, so the hot path performs zero allocations once warm. A Hasher is
// not safe for concurrent use; operators keep one per goroutine.
type Hasher struct {
	buf []byte
}

// KeyCols encodes the listed columns of t and returns the key hash together
// with the encoded bytes. The byte slice aliases the Hasher's scratch buffer
// and is only valid until the next call; callers that retain the key must
// copy it.
func (h *Hasher) KeyCols(t Tuple, cols []int) (uint64, []byte) {
	if len(cols) == 1 {
		// Single integer-backed key column — the dominant equijoin shape:
		// encode through the shared fast append and hash from registers,
		// never re-reading the bytes just written.
		if v := t[cols[0]]; v.K == KindInt || v.K == KindDate || v.K == KindBool {
			h.buf = AppendIntKey(h.buf[:0], v.I)
			return HashIntKey(v.I), h.buf
		}
	}
	h.buf = t.AppendKeyCols(h.buf[:0], cols)
	return Hash64(h.buf, 0), h.buf
}

// KeyColsTail encodes like KeyCols but appends after the buffer's current
// contents instead of resetting it, so key slices returned by earlier
// calls on this Hasher stay intact. Probing code uses it to encode a
// filter's foreign column set mid-probe without clobbering the operator's
// own precomputed key; the tail is reclaimed by the next KeyCols call.
func (h *Hasher) KeyColsTail(t Tuple, cols []int) (uint64, []byte) {
	start := len(h.buf)
	h.buf = t.AppendKeyCols(h.buf, cols)
	kb := h.buf[start:]
	return Hash64(kb, 0), kb
}

package types

import (
	"encoding/binary"
	"math/bits"
)

// The engine hashes every tuple key exactly once: Hash64 over the canonical
// AppendKey encoding. The resulting 64-bit value is reused by the join and
// aggregation tables (internal/exec), the Bloom filter (bloom.AddHash /
// bloom.ProbeHash), and the exact hash-set summary, so no consumer ever
// re-encodes or re-hashes the key bytes.
//
// The function is a wyhash-style construction built on 64×64→128-bit
// multiplication folds; it is fast on short keys (the common case: one or
// two fixed-width columns) and well distributed enough to drive
// open-addressing tables and single-hash Bloom filters directly.

const (
	wyp0 = 0xa0761d6478bd642f
	wyp1 = 0xe7037ed1a0b428db
	wyp2 = 0x8ebc6af09c88c6e3
	wyp3 = 0x589965cc75374cc3
)

func wymix(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi ^ lo
}

// Hash64 hashes b with the given seed. Key hashes throughout the engine use
// seed 0; consumers needing independent bit streams (Bloom filters with
// nonzero seeds) derive them with Mix64 rather than rehashing the bytes.
func Hash64(b []byte, seed uint64) uint64 {
	n := len(b)
	seed ^= wyp0
	var a, c uint64
	switch {
	case n <= 16:
		if n >= 4 {
			a = uint64(binary.LittleEndian.Uint32(b))<<32 |
				uint64(binary.LittleEndian.Uint32(b[(n>>3)<<2:]))
			c = uint64(binary.LittleEndian.Uint32(b[n-4:]))<<32 |
				uint64(binary.LittleEndian.Uint32(b[n-4-((n>>3)<<2):]))
		} else if n > 0 {
			a = uint64(b[0])<<16 | uint64(b[n>>1])<<8 | uint64(b[n-1])
		}
	default:
		i := n
		p := b
		if i > 48 {
			s1, s2 := seed, seed
			for ; i > 48; i -= 48 {
				seed = wymix(binary.LittleEndian.Uint64(p)^wyp1, binary.LittleEndian.Uint64(p[8:])^seed)
				s1 = wymix(binary.LittleEndian.Uint64(p[16:])^wyp2, binary.LittleEndian.Uint64(p[24:])^s1)
				s2 = wymix(binary.LittleEndian.Uint64(p[32:])^wyp3, binary.LittleEndian.Uint64(p[40:])^s2)
				p = p[48:]
			}
			seed ^= s1 ^ s2
		}
		for ; i > 16; i -= 16 {
			seed = wymix(binary.LittleEndian.Uint64(p)^wyp1, binary.LittleEndian.Uint64(p[8:])^seed)
			p = p[16:]
		}
		a = binary.LittleEndian.Uint64(b[n-16:])
		c = binary.LittleEndian.Uint64(b[n-8:])
	}
	return wymix(wyp1^uint64(n), wymix(a^wyp1, c^seed))
}

// Mix64 folds two 64-bit values into a well-distributed result. It derives
// per-seed Bloom bit positions from an already-computed key hash without
// touching the key bytes again.
func Mix64(a, b uint64) uint64 {
	return wymix(a^wyp0, b^wyp1)
}

// Hasher computes hash-once tuple keys: one canonical encoding pass and one
// Hash64 per (tuple, column set). The internal buffer is reused across
// calls, so the hot path performs zero allocations once warm. A Hasher is
// not safe for concurrent use; operators keep one per goroutine.
type Hasher struct {
	buf []byte
}

// KeyCols encodes the listed columns of t and returns the key hash together
// with the encoded bytes. The byte slice aliases the Hasher's scratch buffer
// and is only valid until the next call; callers that retain the key must
// copy it.
func (h *Hasher) KeyCols(t Tuple, cols []int) (uint64, []byte) {
	h.buf = t.AppendKeyCols(h.buf[:0], cols)
	return Hash64(h.buf, 0), h.buf
}

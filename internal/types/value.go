// Package types defines the value, tuple, and schema representations shared
// by every layer of the engine: the data generator, expression evaluator,
// push-style executor, and the AIP runtime.
//
// Values are a compact tagged union rather than interface{} so that tuples
// can be hashed, compared, and copied without allocation. Dates are stored
// as days since the Unix epoch in the integer field.
package types

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the value types the engine supports. It is deliberately
// small: the TPC-H workload of the paper needs integers, decimals, strings,
// and dates only.
type Kind uint8

const (
	// KindNull is the SQL NULL marker.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer (also used for keys and booleans).
	KindInt
	// KindFloat is a 64-bit IEEE float standing in for SQL DECIMAL.
	KindFloat
	// KindString is a variable-length character string.
	KindString
	// KindDate is a calendar date stored as days since 1970-01-01.
	KindDate
	// KindBool is a boolean produced by predicate evaluation.
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "DECIMAL"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a tagged union holding one SQL value. The zero Value is NULL.
type Value struct {
	K Kind
	I int64   // KindInt, KindDate (days since epoch), KindBool (0/1)
	F float64 // KindFloat
	S string  // KindString
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Int wraps an int64.
func Int(v int64) Value { return Value{K: KindInt, I: v} }

// Float wraps a float64.
func Float(v float64) Value { return Value{K: KindFloat, F: v} }

// Str wraps a string.
func Str(v string) Value { return Value{K: KindString, S: v} }

// Bool wraps a boolean.
func Bool(v bool) Value {
	if v {
		return Value{K: KindBool, I: 1}
	}
	return Value{K: KindBool}
}

// Date wraps a day count since 1970-01-01.
func Date(days int64) Value { return Value{K: KindDate, I: days} }

// DateFromString parses a 'YYYY-MM-DD' literal into a date value.
func DateFromString(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null(), fmt.Errorf("types: bad date literal %q: %w", s, err)
	}
	return Date(t.Unix() / 86400), nil
}

// DateFromLooseString parses 'YYYY-MM-DD' and 'YYYY-M-D' forms (the paper's
// queries write '2007-1-1'). Both the binder's literal coercion and the
// prepared-statement argument coercion use it, so a date accepted inline is
// also accepted as a bound argument.
func DateFromLooseString(s string) (Value, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 3 {
		return Null(), fmt.Errorf("types: bad date literal %q", s)
	}
	norm := fmt.Sprintf("%04s-%02s-%02s", parts[0], parts[1], parts[2])
	norm = strings.ReplaceAll(norm, " ", "0")
	return DateFromString(norm)
}

// MustDate is DateFromString for literals known to be valid; it panics on
// malformed input and is intended for tests and static workload definitions.
func MustDate(s string) Value {
	v, err := DateFromString(s)
	if err != nil {
		panic(err)
	}
	return v
}

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Truth reports whether the value is a true boolean. NULL and false are both
// not-true, matching SQL WHERE semantics.
func (v Value) Truth() bool { return v.K == KindBool && v.I != 0 }

// AsFloat converts numeric values to float64 for arithmetic; NULL converts
// to 0 with ok=false.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.K {
	case KindInt, KindDate, KindBool:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	default:
		return 0, false
	}
}

// AsInt converts integer-backed values to int64; NULL converts to 0 with
// ok=false. Floats are truncated toward zero.
func (v Value) AsInt() (i int64, ok bool) {
	switch v.K {
	case KindInt, KindDate, KindBool:
		return v.I, true
	case KindFloat:
		return int64(v.F), true
	default:
		return 0, false
	}
}

// numericKind reports whether the kind participates in numeric comparison.
func numericKind(k Kind) bool {
	return k == KindInt || k == KindFloat || k == KindDate || k == KindBool
}

// Compare orders two values. NULLs sort before everything and compare equal
// to each other (this is used for grouping, not predicate evaluation —
// predicate NULL semantics live in the expression evaluator). Mixed numeric
// kinds compare by float value. Comparing a string to a number panics:
// the binder rejects such predicates before execution.
func Compare(a, b Value) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == b.K:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if numericKind(a.K) && numericKind(b.K) {
		if a.K == KindInt && b.K == KindInt || a.K == KindDate && b.K == KindDate {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			default:
				return 0
			}
		}
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.K == KindString && b.K == KindString {
		return strings.Compare(a.S, b.S)
	}
	panic(fmt.Sprintf("types: incomparable kinds %v and %v", a.K, b.K))
}

// Equal reports whether two values compare equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// String renders the value for display and debugging.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindDate:
		return time.Unix(v.I*86400, 0).UTC().Format("2006-01-02")
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("Value(kind=%d)", uint8(v.K))
	}
}

// AppendKey appends a canonical, injective byte encoding of the value to
// dst. It is used to build hash keys for joins, grouping, and AIP sets:
// values that compare Equal produce identical encodings, and values that
// differ produce different encodings. Numeric kinds are normalized to a
// common representation so an INTEGER 3 and a DECIMAL 3.0 hash identically.
func (v Value) AppendKey(dst []byte) []byte {
	switch v.K {
	case KindNull:
		return append(dst, 0x00)
	case KindInt, KindDate, KindBool:
		// Normalize integer-backed kinds through float when the value is
		// exactly representable, so cross-kind equijoins hash consistently.
		// Tag and payload go through one fixed-size append (a single
		// bounds check and copy) — this encode runs once per tuple on
		// every hash path, so the byte-at-a-time form showed up in probe
		// profiles.
		var tmp [9]byte
		tmp[0] = 0x01
		binary.BigEndian.PutUint64(tmp[1:], uint64(v.I))
		return append(dst, tmp[:]...)
	case KindFloat:
		if v.F == float64(int64(v.F)) {
			return Int(int64(v.F)).AppendKey(dst)
		}
		var tmp [9]byte
		tmp[0] = 0x02
		binary.BigEndian.PutUint64(tmp[1:], floatBits(v.F))
		return append(dst, tmp[:]...)
	case KindString:
		dst = append(dst, 0x03)
		dst = append(dst, v.S...)
		return append(dst, 0x00)
	default:
		panic(fmt.Sprintf("types: AppendKey on kind %v", v.K))
	}
}

// MemSize returns the approximate in-memory footprint of the value in
// bytes, used for intermediate-state accounting (Figures 7, 8, 11, 12, 14).
func (v Value) MemSize() int {
	// struct header: kind + int64 + float64 + string header.
	const base = 1 + 8 + 8 + 16
	return base + len(v.S)
}

package types

import "bytes"

// KeyTable is the open-addressing hash table behind the executor's join,
// aggregation, and distinct state. It maps (hash, canonical key bytes)
// pairs to dense int32 ids — 0, 1, 2, … in insertion order — which callers
// use to index their own parallel state arrays (tuple chains, group
// accumulators). Compared to a map[string]T it avoids the per-tuple
// string(key) allocation entirely: key bytes are copied once into a shared
// arena, probes verify candidates by comparing hashes first and key bytes
// inline second (hash collisions are tolerated, not trusted), and lookups
// never allocate.
//
// The zero value is an empty, ready-to-use table. KeyTable is not
// concurrency-safe; the executor serializes access per operator side.
type KeyTable struct {
	slots []int32 // 1-based id per slot, 0 = empty; len is a power of two
	mask  uint64

	hashes []uint64 // per id: the key's Hash64
	offs   []uint32 // per id: start of the key bytes in keys
	ends   []uint32 // per id: end of the key bytes in keys
	keys   []byte   // arena of all key bytes, appended on insert
}

// NewKeyTable returns a table pre-sized for about hint distinct keys.
func NewKeyTable(hint int) *KeyTable {
	kt := &KeyTable{}
	kt.Reserve(hint)
	if kt.slots == nil {
		kt.Reserve(1)
	}
	return kt
}

// Reserve pre-sizes the slot array for about hint distinct keys (an
// optimizer cardinality estimate, possibly divided across partitions),
// avoiding most doubling-growth garbage on the insert path. It is a no-op
// on a table that already holds keys or whose slots already cover the hint;
// hint <= 0 leaves the lazy defaults.
func (kt *KeyTable) Reserve(hint int) {
	if hint <= 0 || len(kt.hashes) > 0 {
		return
	}
	n := 16
	for n < hint*2 {
		n <<= 1
	}
	if n <= len(kt.slots) {
		return
	}
	kt.slots = make([]int32, n)
	kt.mask = uint64(n - 1)
}

// Len returns the number of distinct keys inserted.
func (kt *KeyTable) Len() int { return len(kt.hashes) }

// Key returns the canonical key bytes of an id. The slice aliases the
// table's arena and must not be modified.
func (kt *KeyTable) Key(id int32) []byte {
	return kt.keys[kt.offs[id]:kt.ends[id]]
}

// Hash returns the Hash64 the id was inserted under. Together with Key it
// lets a caller walk ids 0..Len() and re-serialize every entry — the
// executor's spill eviction writes whole buckets this way without
// re-hashing the key bytes.
func (kt *KeyTable) Hash(id int32) uint64 { return kt.hashes[id] }

// MemSize approximates the table's footprint in bytes for state accounting.
func (kt *KeyTable) MemSize() int {
	return len(kt.slots)*4 + len(kt.hashes)*16 + len(kt.keys)
}

// Lookup returns the id of the key, or -1 when absent. It never allocates.
func (kt *KeyTable) Lookup(h uint64, key []byte) int32 {
	if len(kt.slots) == 0 {
		return -1
	}
	i := h & kt.mask
	for {
		s := kt.slots[i]
		if s == 0 {
			return -1
		}
		if id := s - 1; kt.hashes[id] == h && bytes.Equal(kt.Key(id), key) {
			return id
		}
		i = (i + 1) & kt.mask
	}
}

// Insert returns the id of the key, adding it if absent; added reports
// whether a new id was created. The key bytes are copied into the arena, so
// callers may reuse their buffer immediately.
func (kt *KeyTable) Insert(h uint64, key []byte) (id int32, added bool) {
	if len(kt.hashes)*4 >= len(kt.slots)*3 { // load factor 3/4, also 0-cap init
		kt.grow()
	}
	i := h & kt.mask
	for {
		s := kt.slots[i]
		if s == 0 {
			id = int32(len(kt.hashes))
			kt.hashes = append(kt.hashes, h)
			kt.offs = append(kt.offs, uint32(len(kt.keys)))
			kt.keys = append(kt.keys, key...)
			kt.ends = append(kt.ends, uint32(len(kt.keys)))
			kt.slots[i] = id + 1
			return id, true
		}
		if cand := s - 1; kt.hashes[cand] == h && bytes.Equal(kt.Key(cand), key) {
			return cand, false
		}
		i = (i + 1) & kt.mask
	}
}

// ktChunk is the batch kernels' two-pass window: large enough to give the
// memory system a full set of independent slot loads, small enough that the
// per-chunk address arrays stay on the stack.
const ktChunk = 128

// LookupBatch resolves a batch of keys in scatter layout — key j is
// keys[offs[j]:offs[j+1]] with hash hashes[j] — writing the id (or -1) to
// ids[j]. Per chunk it runs two passes: the first computes every lane's
// home slot and loads it, so the loads overlap in the memory system and
// the line is warm for pass two, which finishes each probe from the cached
// slot value. The table must not be modified during the call.
func (kt *KeyTable) LookupBatch(hashes []uint64, keys []byte, offs []int32, ids []int32) {
	if len(kt.slots) == 0 {
		for j := range hashes {
			ids[j] = -1
		}
		return
	}
	var home [ktChunk]uint64
	var s0 [ktChunk]int32
	for start := 0; start < len(hashes); start += ktChunk {
		c := len(hashes) - start
		if c > ktChunk {
			c = ktChunk
		}
		for j := 0; j < c; j++ {
			i := hashes[start+j] & kt.mask
			home[j] = i
			s0[j] = kt.slots[i]
		}
		for j := 0; j < c; j++ {
			s := s0[j]
			if s == 0 {
				ids[start+j] = -1
				continue
			}
			h := hashes[start+j]
			key := keys[offs[start+j]:offs[start+j+1]]
			if id := s - 1; kt.hashes[id] == h && bytes.Equal(kt.Key(id), key) {
				ids[start+j] = id
				continue
			}
			ids[start+j] = kt.lookupFrom((home[j]+1)&kt.mask, h, key)
		}
	}
}

// lookupFrom continues a linear probe past a mismatched home slot.
func (kt *KeyTable) lookupFrom(i uint64, h uint64, key []byte) int32 {
	for {
		s := kt.slots[i]
		if s == 0 {
			return -1
		}
		if id := s - 1; kt.hashes[id] == h && bytes.Equal(kt.Key(id), key) {
			return id
		}
		i = (i + 1) & kt.mask
	}
}

// InsertBatch inserts a batch of keys in scatter layout, writing each
// lane's id to ids[j] and whether it was newly added to added[j]. The slot
// array is grown once up front for the worst case, so no rehash happens
// mid-batch and the warming pass's home-slot loads stay valid: a slot's
// value is write-once (0 → id+1), so a nonzero warm read is trusted while
// a zero one is re-read — an earlier lane of the same batch may have
// claimed the slot since.
func (kt *KeyTable) InsertBatch(hashes []uint64, keys []byte, offs []int32, ids []int32, added []bool) {
	for (len(kt.hashes)+len(hashes))*4 >= len(kt.slots)*3 {
		kt.grow()
	}
	var home [ktChunk]uint64
	var s0 [ktChunk]int32
	for start := 0; start < len(hashes); start += ktChunk {
		c := len(hashes) - start
		if c > ktChunk {
			c = ktChunk
		}
		for j := 0; j < c; j++ {
			i := hashes[start+j] & kt.mask
			home[j] = i
			s0[j] = kt.slots[i]
		}
		for j := 0; j < c; j++ {
			i := home[j]
			s := s0[j]
			if s == 0 {
				s = kt.slots[i]
			}
			ids[start+j], added[start+j] = kt.insertFrom(i, s,
				hashes[start+j], keys[offs[start+j]:offs[start+j+1]])
		}
	}
}

// insertFrom finishes an insert probe at slot i whose current value is s;
// the caller guarantees the slot array will not grow during the probe.
func (kt *KeyTable) insertFrom(i uint64, s int32, h uint64, key []byte) (id int32, added bool) {
	for {
		if s == 0 {
			id = int32(len(kt.hashes))
			kt.hashes = append(kt.hashes, h)
			kt.offs = append(kt.offs, uint32(len(kt.keys)))
			kt.keys = append(kt.keys, key...)
			kt.ends = append(kt.ends, uint32(len(kt.keys)))
			kt.slots[i] = id + 1
			return id, true
		}
		if cand := s - 1; kt.hashes[cand] == h && bytes.Equal(kt.Key(cand), key) {
			return cand, false
		}
		i = (i + 1) & kt.mask
		s = kt.slots[i]
	}
}

// grow doubles the slot array and re-places every id by its stored hash; key
// bytes are never touched.
func (kt *KeyTable) grow() {
	n := len(kt.slots) * 2
	if n == 0 {
		n = 16
	}
	slots := make([]int32, n)
	mask := uint64(n - 1)
	for id, h := range kt.hashes {
		i := h & mask
		for slots[i] != 0 {
			i = (i + 1) & mask
		}
		slots[i] = int32(id) + 1
	}
	kt.slots, kt.mask = slots, mask
}

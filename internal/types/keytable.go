package types

import "bytes"

// KeyTable is the open-addressing hash table behind the executor's join,
// aggregation, and distinct state. It maps (hash, canonical key bytes)
// pairs to dense int32 ids — 0, 1, 2, … in insertion order — which callers
// use to index their own parallel state arrays (tuple chains, group
// accumulators). Compared to a map[string]T it avoids the per-tuple
// string(key) allocation entirely: key bytes are copied once into a shared
// arena, probes verify candidates by comparing hashes first and key bytes
// inline second (hash collisions are tolerated, not trusted), and lookups
// never allocate.
//
// The zero value is an empty, ready-to-use table. KeyTable is not
// concurrency-safe; the executor serializes access per operator side.
type KeyTable struct {
	slots []int32 // 1-based id per slot, 0 = empty; len is a power of two
	mask  uint64

	hashes []uint64 // per id: the key's Hash64
	offs   []uint32 // per id: start of the key bytes in keys
	ends   []uint32 // per id: end of the key bytes in keys
	keys   []byte   // arena of all key bytes, appended on insert
}

// NewKeyTable returns a table pre-sized for about hint distinct keys.
func NewKeyTable(hint int) *KeyTable {
	kt := &KeyTable{}
	kt.Reserve(hint)
	if kt.slots == nil {
		kt.Reserve(1)
	}
	return kt
}

// Reserve pre-sizes the slot array for about hint distinct keys (an
// optimizer cardinality estimate, possibly divided across partitions),
// avoiding most doubling-growth garbage on the insert path. It is a no-op
// on a table that already holds keys or whose slots already cover the hint;
// hint <= 0 leaves the lazy defaults.
func (kt *KeyTable) Reserve(hint int) {
	if hint <= 0 || len(kt.hashes) > 0 {
		return
	}
	n := 16
	for n < hint*2 {
		n <<= 1
	}
	if n <= len(kt.slots) {
		return
	}
	kt.slots = make([]int32, n)
	kt.mask = uint64(n - 1)
}

// Len returns the number of distinct keys inserted.
func (kt *KeyTable) Len() int { return len(kt.hashes) }

// Key returns the canonical key bytes of an id. The slice aliases the
// table's arena and must not be modified.
func (kt *KeyTable) Key(id int32) []byte {
	return kt.keys[kt.offs[id]:kt.ends[id]]
}

// MemSize approximates the table's footprint in bytes for state accounting.
func (kt *KeyTable) MemSize() int {
	return len(kt.slots)*4 + len(kt.hashes)*16 + len(kt.keys)
}

// Lookup returns the id of the key, or -1 when absent. It never allocates.
func (kt *KeyTable) Lookup(h uint64, key []byte) int32 {
	if len(kt.slots) == 0 {
		return -1
	}
	i := h & kt.mask
	for {
		s := kt.slots[i]
		if s == 0 {
			return -1
		}
		if id := s - 1; kt.hashes[id] == h && bytes.Equal(kt.Key(id), key) {
			return id
		}
		i = (i + 1) & kt.mask
	}
}

// Insert returns the id of the key, adding it if absent; added reports
// whether a new id was created. The key bytes are copied into the arena, so
// callers may reuse their buffer immediately.
func (kt *KeyTable) Insert(h uint64, key []byte) (id int32, added bool) {
	if len(kt.hashes)*4 >= len(kt.slots)*3 { // load factor 3/4, also 0-cap init
		kt.grow()
	}
	i := h & kt.mask
	for {
		s := kt.slots[i]
		if s == 0 {
			id = int32(len(kt.hashes))
			kt.hashes = append(kt.hashes, h)
			kt.offs = append(kt.offs, uint32(len(kt.keys)))
			kt.keys = append(kt.keys, key...)
			kt.ends = append(kt.ends, uint32(len(kt.keys)))
			kt.slots[i] = id + 1
			return id, true
		}
		if cand := s - 1; kt.hashes[cand] == h && bytes.Equal(kt.Key(cand), key) {
			return cand, false
		}
		i = (i + 1) & kt.mask
	}
}

// grow doubles the slot array and re-places every id by its stored hash; key
// bytes are never touched.
func (kt *KeyTable) grow() {
	n := len(kt.slots) * 2
	if n == 0 {
		n = 16
	}
	slots := make([]int32, n)
	mask := uint64(n - 1)
	for id, h := range kt.hashes {
		i := h & mask
		for slots[i] != 0 {
			i = (i + 1) & mask
		}
		slots[i] = int32(id) + 1
	}
	kt.slots, kt.mask = slots, mask
}

package types

import (
	"strings"
	"testing"
)

func testSchema() *Schema {
	return NewSchema(
		Column{Table: "t", Name: "a", Kind: KindInt},
		Column{Table: "t", Name: "b", Kind: KindString},
		Column{Table: "u", Name: "a", Kind: KindInt},
	)
}

func TestTupleClone(t *testing.T) {
	orig := Tuple{Int(1), Str("x")}
	cp := orig.Clone()
	cp[0] = Int(2)
	if orig[0].I != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestTupleKeyAndConcat(t *testing.T) {
	a := Tuple{Int(1), Str("x")}
	b := Tuple{Int(2)}
	c := Concat(a, b)
	if len(c) != 3 || c[2].I != 2 {
		t.Fatalf("concat wrong: %v", c)
	}
	if a.Key([]int{0}) != (Tuple{Int(1), Str("y")}).Key([]int{0}) {
		t.Fatal("single-column keys must match across tuples")
	}
	if a.Key([]int{0, 1}) == a.Key([]int{1, 0}) {
		t.Fatal("column order must matter in keys")
	}
}

func TestTupleString(t *testing.T) {
	s := Tuple{Int(1), Str("x")}.String()
	if s != "(1, x)" {
		t.Fatalf("String() = %q", s)
	}
}

func TestSchemaResolve(t *testing.T) {
	s := testSchema()
	idx, err := s.Resolve("t", "b")
	if err != nil || idx != 1 {
		t.Fatalf("Resolve(t.b) = %d, %v", idx, err)
	}
	// Unqualified unique name resolves.
	if idx, err := s.Resolve("", "b"); err != nil || idx != 1 {
		t.Fatalf("Resolve(b) = %d, %v", idx, err)
	}
	// Ambiguous unqualified name errors.
	if _, err := s.Resolve("", "a"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("expected ambiguity error, got %v", err)
	}
	// Qualified ambiguous name disambiguates.
	if idx, err := s.Resolve("u", "a"); err != nil || idx != 2 {
		t.Fatalf("Resolve(u.a) = %d, %v", idx, err)
	}
	// Missing column errors.
	if _, err := s.Resolve("", "zzz"); err == nil {
		t.Fatal("expected unknown-column error")
	}
	// Case-insensitive.
	if idx, err := s.Resolve("T", "B"); err != nil || idx != 1 {
		t.Fatalf("Resolve(T.B) = %d, %v", idx, err)
	}
}

func TestSchemaConcatProjectIndexOf(t *testing.T) {
	s := testSchema()
	s2 := NewSchema(Column{Table: "v", Name: "c", Kind: KindFloat})
	cat := s.Concat(s2)
	if cat.Len() != 4 || cat.Cols[3].Name != "c" {
		t.Fatalf("concat wrong: %v", cat)
	}
	proj := cat.Project([]int{3, 0})
	if proj.Len() != 2 || proj.Cols[0].Name != "c" || proj.Cols[1].Name != "a" {
		t.Fatalf("project wrong: %v", proj)
	}
	if cat.IndexOf("v", "c") != 3 {
		t.Fatal("IndexOf failed")
	}
	if cat.IndexOf("v", "nope") != -1 {
		t.Fatal("IndexOf should return -1 when missing")
	}
}

func TestColumnQualifiedName(t *testing.T) {
	if (Column{Table: "t", Name: "x"}).QualifiedName() != "t.x" {
		t.Fatal("qualified name wrong")
	}
	if (Column{Name: "x"}).QualifiedName() != "x" {
		t.Fatal("unqualified name wrong")
	}
}

func TestTupleMemSize(t *testing.T) {
	small := Tuple{Int(1)}
	big := Tuple{Int(1), Str(strings.Repeat("x", 100))}
	if big.MemSize() <= small.MemSize() {
		t.Fatal("memory accounting must grow with contents")
	}
}
